# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# targets, so a green `make check` locally means a green pipeline.

GO      ?= go
BIN     := bin
CODVET  := $(BIN)/codvet
PKGS    := ./...
FUZZTIME ?= 10s

.PHONY: all build test race lint vet codvet codvet-path fmt fmt-check bench bench-check fuzz serve-smoke check clean

all: build

build:
	$(GO) build $(PKGS)

test:
	$(GO) test $(PKGS)

# The determinism-replay tests exercise the concurrent query and sampling
# paths, so running them under the race detector gates both contracts.
race:
	$(GO) test -race $(PKGS)

$(CODVET): $(wildcard internal/analysis/*.go internal/analysis/*/*.go cmd/codvet/*.go)
	@mkdir -p $(BIN)
	$(GO) build -o $(CODVET) ./cmd/codvet

codvet: $(CODVET)

# Absolute tool path for `go vet -vettool=$$(make -s codvet-path)`.
codvet-path: $(CODVET)
	@echo $(abspath $(CODVET))

vet:
	$(GO) vet $(PKGS)

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

lint: fmt-check vet $(CODVET)
	$(GO) vet -vettool=$(abspath $(CODVET)) $(PKGS)

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# One pass over the Fig benchmarks into a machine-readable JSON report,
# validated by codbench -check-bench. Fails loudly when the bench pipeline
# stops producing parseable output; no performance thresholds.
bench-check:
	sh scripts/bench_check.sh

# Short smoke of each parser fuzz target; regressions caught by the seed
# corpus and a few seconds of mutation. Raise FUZZTIME for a deeper run.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzRead$$ -fuzztime=$(FUZZTIME) ./internal/graph/
	$(GO) test -run=^$$ -fuzz=FuzzReadEdgeList$$ -fuzztime=$(FUZZTIME) ./internal/graph/
	$(GO) test -run=^$$ -fuzz=FuzzReadAttrFile$$ -fuzztime=$(FUZZTIME) ./internal/graph/

# Boots codserve on a random port and drives the serving contract end to
# end: readiness split, query endpoints, JSON errors, SIGTERM drain.
serve-smoke:
	sh scripts/serve_smoke.sh

check: build lint test race serve-smoke

clean:
	rm -rf $(BIN)
