# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# targets, so a green `make check` locally means a green pipeline.

GO      ?= go
BIN     := bin
CODVET  := $(BIN)/codvet
PKGS    := ./...
FUZZTIME ?= 10s

.PHONY: all build test race lint vet codvet codvet-path codvet-self fmt fmt-check bench bench-check cover-check fuzz serve-smoke check clean

all: build

build:
	$(GO) build $(PKGS)

test:
	$(GO) test $(PKGS)

# The determinism-replay tests exercise the concurrent query and sampling
# paths, so running them under the race detector gates both contracts.
race:
	$(GO) test -race $(PKGS)

$(CODVET): $(wildcard internal/analysis/*.go internal/analysis/*/*.go cmd/codvet/*.go)
	@mkdir -p $(BIN)
	$(GO) build -o $(CODVET) ./cmd/codvet

codvet: $(CODVET)

# Absolute tool path for `go vet -vettool=$$(make -s codvet-path)`.
codvet-path: $(CODVET)
	@echo $(abspath $(CODVET))

# vet gates on both toolchains: stock go vet and the repo's own analyzers.
# Any new codvet diagnostic fails the build; suppressions must be explicit
# //codvet:ignore directives (audited by unusedignore).
vet: $(CODVET)
	$(GO) vet $(PKGS)
	$(GO) vet -vettool=$(abspath $(CODVET)) $(PKGS)

# The analyzers analyzed by themselves: codvet over its own implementation
# and the commands that embed it. Keeps the suite honest — the checkers
# must satisfy the contracts they enforce (the interprocedural ones
# exercise their own facts plumbing doing it).
codvet-self: $(CODVET)
	$(GO) vet -vettool=$(abspath $(CODVET)) ./internal/analysis/... ./internal/query/... ./cmd/...

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

lint: fmt-check vet $(CODVET)
	$(GO) vet -vettool=$(abspath $(CODVET)) $(PKGS)

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# One pass over the Fig benchmarks into a machine-readable JSON report,
# validated by codbench -check-bench. Fails loudly when the bench pipeline
# stops producing parseable output; no performance thresholds.
bench-check:
	sh scripts/bench_check.sh

# Per-package coverage floors for the statistical packages (accuracy
# harness, influence sampling); no global gate.
cover-check:
	sh scripts/cover_check.sh

# Short smoke of each parser fuzz target; regressions caught by the seed
# corpus and a few seconds of mutation. Raise FUZZTIME for a deeper run.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzRead$$ -fuzztime=$(FUZZTIME) ./internal/graph/
	$(GO) test -run=^$$ -fuzz=FuzzReadEdgeList$$ -fuzztime=$(FUZZTIME) ./internal/graph/
	$(GO) test -run=^$$ -fuzz=FuzzReadAttrFile$$ -fuzztime=$(FUZZTIME) ./internal/graph/
	$(GO) test -run=^$$ -fuzz=FuzzManifestRoundTrip$$ -fuzztime=$(FUZZTIME) ./internal/blobstore/
	$(GO) test -run=^$$ -fuzz=FuzzParseQuery$$ -fuzztime=$(FUZZTIME) ./internal/query/

# Boots codserve on a random port and drives the serving contract end to
# end: readiness split, query endpoints, JSON errors, SIGTERM drain.
serve-smoke:
	sh scripts/serve_smoke.sh

check: build lint test race serve-smoke

clean:
	rm -rf $(BIN)
