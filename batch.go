package cod

import (
	"context"
	"sync"

	"github.com/codsearch/cod/internal/engine"
	"github.com/codsearch/cod/internal/graph"
	"github.com/codsearch/cod/internal/obs"
)

// Query pairs a node with a query attribute for batch discovery. Expr, when
// non-empty, replaces Attr with a full query expression (predicate, filters,
// knobs — see PreparedQuery); Node still supplies the query node unless the
// expression carries a node= knob. Queries with an empty Expr run the legacy
// single-attribute CODL path byte-identically.
type Query struct {
	Node NodeID
	Attr AttrID
	Expr string
}

// BatchResult is one query's outcome within DiscoverBatch.
type BatchResult struct {
	Query     Query
	Community Community
	Err       error
}

// DiscoverBatch answers many COD queries concurrently over the shared
// offline state (the hierarchy and HIMOR index are read-only at query
// time). Results are returned in input order. workers <= 0 picks one
// worker per query up to 8. Each query gets a deterministic seed derived
// from Options.Seed and its position, so results are reproducible
// regardless of scheduling.
func (s *Searcher) DiscoverBatch(queries []Query, workers int) []BatchResult {
	return s.DiscoverBatchCtx(context.Background(), queries, workers)
}

// DiscoverBatchCtx is DiscoverBatch with cancellation. All queries are
// validated up front with the same error shape as Discover (out-of-range
// nodes and attributes are reported identically and consume no query work).
// Workers check the context before starting each query and inside each
// query's sampling loops; when the context ends, queries already completed
// keep their results — per-item seeding makes them identical to an
// uncancelled run — and every unstarted or interrupted query reports an
// error wrapping the context error.
func (s *Searcher) DiscoverBatchCtx(ctx context.Context, queries []Query, workers int) []BatchResult {
	out := make([]BatchResult, len(queries))
	if len(queries) == 0 {
		return out
	}
	// Up-front validation: one error shape for node and attribute, applied
	// before any pipeline is consulted. Expression queries are prepared here
	// too — once per distinct expression — so workers never parse and a
	// malformed expression rejects before any query work.
	prepared := make(map[string]*PreparedQuery)
	specs := make([]*PreparedQuery, len(queries))
	for i, q := range queries {
		out[i].Query = q
		if q.Expr == "" {
			out[i].Err = s.validate(q.Node, q.Attr)
			continue
		}
		pq, ok := prepared[q.Expr]
		if !ok {
			var err error
			if pq, err = s.Prepare(q.Expr); err != nil {
				out[i].Err = err
				continue
			}
			prepared[q.Expr] = pq
		}
		specs[i] = pq
		node := q.Node
		if pq.hasNode {
			node = pq.node
		}
		out[i].Err = s.validate(node, pq.attr)
	}
	if workers <= 0 {
		workers = len(queries)
		if workers > 8 {
			workers = 8
		}
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	// One Recorder shared by every worker: counters are atomic and the trace
	// serializes span appends, so concurrent workers record safely. The batch
	// gets one trace ID derived statelessly from (Seed, batch size) — the
	// per-item streams stay untouched and the Searcher's query sequence is
	// not consumed, so batch instrumentation stays byte-invisible.
	rec := obs.FromContext(ctx)
	rec.EnsureTraceID(graph.ItemSeed(s.opts.Seed^0xba7c4, len(queries)))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Workers share the Searcher's engine: offline state is read-only
			// at query time and per-query scratch comes from the engine's pool,
			// so concurrent workers reuse arenas instead of allocating.
			for i := range jobs {
				if out[i].Err != nil {
					rec.CountQuery(out[i].Err) // rejected by up-front validation
					continue
				}
				if err := ctx.Err(); err != nil {
					out[i].Err = &CanceledError{Op: "cod: batch query", Done: 0, Total: 1, Cause: err}
					rec.CountQuery(out[i].Err)
					continue
				}
				q := queries[i]
				rng := graph.NewRand(graph.ItemSeed(s.opts.Seed, i))
				var pl *engine.Plan
				if pq := specs[i]; pq != nil {
					node := q.Node
					if pq.hasNode {
						node = pq.node
					}
					pl = s.eng.CompileSpec(pq.spec(node))
				} else {
					pl = s.eng.Compile(engine.VariantCODL, q.Node, q.Attr)
				}
				com, err := s.eng.Execute(ctx, pl, rng)
				rec.CountQuery(err)
				if err != nil {
					out[i].Err = err
					continue
				}
				out[i].Community = Community{Nodes: com.Nodes, Found: com.Found,
					FromIndex: com.FromIndex, Rank: com.Rank}
			}
		}()
	}
	for i := range queries {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}
