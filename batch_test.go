package cod

import "testing"

func TestDiscoverBatch(t *testing.T) {
	g := buildTestGraph(t)
	s, err := NewSearcher(g, Options{K: 5, Theta: 4, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	var queries []Query
	for v := NodeID(0); int(v) < g.N() && len(queries) < 12; v += 7 {
		if as := g.Attrs(v); len(as) > 0 {
			queries = append(queries, Query{Node: v, Attr: as[0]})
		}
	}
	queries = append(queries, Query{Node: -5, Attr: 0})         // bad node
	queries = append(queries, Query{Node: 0, Attr: AttrID(99)}) // bad attr
	results := s.DiscoverBatch(queries, 4)
	if len(results) != len(queries) {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results[:len(results)-2] {
		if r.Err != nil {
			t.Errorf("query %d errored: %v", i, r.Err)
			continue
		}
		if r.Query != queries[i] {
			t.Errorf("result %d out of order", i)
		}
		if r.Community.Found && !r.Community.Contains(queries[i].Node) {
			t.Errorf("query %d: community missing node", i)
		}
	}
	if results[len(results)-2].Err == nil {
		t.Error("bad node accepted")
	}
	if results[len(results)-1].Err == nil {
		t.Error("bad attr accepted")
	}
}

func TestDiscoverBatchDeterministicAcrossWorkerCounts(t *testing.T) {
	g := buildTestGraph(t)
	s, err := NewSearcher(g, Options{K: 3, Theta: 4, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	var queries []Query
	for v := NodeID(0); int(v) < g.N() && len(queries) < 8; v += 11 {
		if as := g.Attrs(v); len(as) > 0 {
			queries = append(queries, Query{Node: v, Attr: as[0]})
		}
	}
	r1 := s.DiscoverBatch(queries, 1)
	r4 := s.DiscoverBatch(queries, 4)
	for i := range queries {
		if r1[i].Community.Size() != r4[i].Community.Size() ||
			r1[i].Community.Found != r4[i].Community.Found {
			t.Errorf("query %d differs across worker counts: %+v vs %+v",
				i, r1[i].Community, r4[i].Community)
		}
	}
}

func TestDiscoverBatchEmpty(t *testing.T) {
	g := buildTestGraph(t)
	s, err := NewSearcher(g, Options{Theta: 2})
	if err != nil {
		t.Fatal(err)
	}
	if out := s.DiscoverBatch(nil, 3); len(out) != 0 {
		t.Error("non-empty result for empty batch")
	}
}
