package cod

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, plus micro-benchmarks for the core primitives and
// ablation benches for the design choices called out in DESIGN.md §7.
//
// The per-figure benches run reduced configurations (small datasets, few
// queries) so `go test -bench=.` finishes in minutes; cmd/codbench runs the
// full-scale versions. Key figures are emitted via b.ReportMetric so the
// shape of each result (who wins, by how much) is visible in bench output.

import (
	"context"
	"testing"
	"time"

	"github.com/codsearch/cod/internal/cohesion"
	"github.com/codsearch/cod/internal/core"
	"github.com/codsearch/cod/internal/dataset"
	"github.com/codsearch/cod/internal/dynamic"
	"github.com/codsearch/cod/internal/engine"
	"github.com/codsearch/cod/internal/eval"
	"github.com/codsearch/cod/internal/graph"
	"github.com/codsearch/cod/internal/hac"
	"github.com/codsearch/cod/internal/hier"
	"github.com/codsearch/cod/internal/influence"
)

func benchConfig(ds string, queries int) eval.Config {
	return eval.Config{
		Dataset:       ds,
		Seed:          42,
		NumQueries:    queries,
		Theta:         5,
		PrecisionSets: 50,
	}
}

// --- Table I ---------------------------------------------------------------

func BenchmarkTableINetworkStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := eval.RunNetworkStats(benchConfig("cora", 10))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.AvgHLen, "avg|H|")
		b.ReportMetric(float64(r.SumDepth), "sum-depth")
	}
}

// --- Fig. 4 ----------------------------------------------------------------

func BenchmarkFig4FiveDeepest(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := eval.RunFiveDeepest(benchConfig("cora", 10))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.AvgSize[eval.MethodCODU][4], "CODU-5th")
		b.ReportMetric(r.AvgSize[eval.MethodCODL][4], "CODL-5th")
	}
}

// --- Fig. 7 (one bench per measure row) --------------------------------------

func runEffectiveness(b *testing.B, metric func(eval.Measures) float64, unitCODL, unitACS string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := eval.RunEffectiveness(benchConfig("cora", 10))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(metric(r.PerMethod[eval.MethodCODL][5]), unitCODL)
		b.ReportMetric(metric(r.PerMethod[eval.MethodACQ][5]), unitACS)
	}
}

func BenchmarkFig7Size(b *testing.B) {
	runEffectiveness(b, func(m eval.Measures) float64 { return m.AvgSize }, "CODL|C*|", "ACQ|C*|")
}

func BenchmarkFig7TopologyDensity(b *testing.B) {
	runEffectiveness(b, func(m eval.Measures) float64 { return m.AvgTopoDensity }, "CODL-rho", "ACQ-rho")
}

func BenchmarkFig7AttributeDensity(b *testing.B) {
	runEffectiveness(b, func(m eval.Measures) float64 { return m.AvgAttrDensity }, "CODL-phi", "ACQ-phi")
}

func BenchmarkFig7QueryInfluence(b *testing.B) {
	runEffectiveness(b, func(m eval.Measures) float64 { return m.AvgQueryInfluence }, "CODL-I(q)", "ACQ-I(q)")
}

// --- Fig. 8 ----------------------------------------------------------------

func BenchmarkFig8CompressedVsIndependent(b *testing.B) {
	cfg := benchConfig("cora", 3)
	cfg.Thetas = []int{5, 10}
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunCompressedVsIndependent(cfg, 5, 0)
		if err != nil {
			b.Fatal(err)
		}
		var compT, indT time.Duration
		for _, r := range rows {
			if r.Theta != 10 {
				continue
			}
			switch r.Method {
			case eval.CompressedMethod:
				compT = r.AvgTime
			case eval.IndependentMethod:
				indT = r.AvgTime
			}
		}
		if compT > 0 {
			b.ReportMetric(float64(indT)/float64(compT), "speedup")
		}
	}
}

func BenchmarkFig8Precision(b *testing.B) {
	cfg := benchConfig("cora", 3)
	cfg.Thetas = []int{10}
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunCompressedVsIndependent(cfg, 5, 0)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Method == eval.CompressedMethod {
				b.ReportMetric(r.Precision, "precision")
			}
		}
	}
}

func BenchmarkFig8Size(b *testing.B) {
	cfg := benchConfig("citeseer", 3)
	cfg.Thetas = []int{10}
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunCompressedVsIndependent(cfg, 5, 0)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Method == eval.IndependentMethod {
				b.ReportMetric(r.AvgSize, "ind-avg-size")
			}
		}
	}
}

func BenchmarkFig8Time(b *testing.B) {
	cfg := benchConfig("citeseer", 3)
	cfg.Thetas = []int{10}
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunCompressedVsIndependent(cfg, 5, 0)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.AvgTime.Microseconds()), r.Method+"-us")
		}
	}
}

// --- Fig. 9 ----------------------------------------------------------------

func BenchmarkFig9Runtime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunRuntime(benchConfig("cora", 5), 5, time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		var codl, codr time.Duration
		for _, r := range rows {
			switch r.Method {
			case eval.MethodCODL:
				codl = r.AvgTime
			case eval.MethodCODR:
				codr = r.AvgTime
			}
			b.ReportMetric(float64(r.AvgTime.Microseconds()), r.Method+"-us")
		}
		if codl > 0 {
			b.ReportMetric(float64(codr)/float64(codl), "CODR/CODL")
		}
	}
}

// --- Table II ---------------------------------------------------------------

func BenchmarkTableIIIndexOverhead(b *testing.B) {
	for _, ds := range []string{"cora", "citeseer"} {
		b.Run(ds, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := eval.RunIndexOverhead(benchConfig(ds, 5))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.IndexMB, "index-MB")
				b.ReportMetric(float64(r.BuildTime.Milliseconds()), "build-ms")
			}
		})
	}
}

// --- micro-benchmarks --------------------------------------------------------

func loadBenchGraph(b *testing.B, name string) *graph.Graph {
	b.Helper()
	ds, err := dataset.Load(name, 42)
	if err != nil {
		b.Fatal(err)
	}
	return ds.G
}

func BenchmarkRRGraphGeneration(b *testing.B) {
	g := loadBenchGraph(b, "cora")
	s := influence.NewSampler(g, influence.NewWeightedCascade(g), graph.NewRand(1))
	b.ResetTimer()
	nodes := 0
	for i := 0; i < b.N; i++ {
		nodes += s.RRGraph().Len()
	}
	b.ReportMetric(float64(nodes)/float64(b.N), "nodes/rr")
}

func BenchmarkHACCluster(b *testing.B) {
	g := loadBenchGraph(b, "cora")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hac.Cluster(g, hac.UnweightedAverage); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLCA(b *testing.B) {
	g := loadBenchGraph(b, "cora")
	t, err := hac.Cluster(g, hac.UnweightedAverage)
	if err != nil {
		b.Fatal(err)
	}
	rng := graph.NewRand(2)
	n := t.NumVertices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = t.LCA(hier.Vertex(rng.IntN(n)), hier.Vertex(rng.IntN(n)))
	}
}

func BenchmarkCompressedEvaluate(b *testing.B) {
	g := loadBenchGraph(b, "cora")
	t, err := hac.Cluster(g, hac.UnweightedAverage)
	if err != nil {
		b.Fatal(err)
	}
	ch := core.ChainFromTree(t, 100)
	s := influence.NewSampler(g, influence.NewWeightedCascade(g), graph.NewRand(3))
	rrs := s.Batch(5 * g.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.CompressedEvaluate(ch, rrs, 5)
	}
}

func BenchmarkHimorBuild(b *testing.B) {
	g := loadBenchGraph(b, "cora")
	t, err := hac.Cluster(g, hac.UnweightedAverage)
	if err != nil {
		b.Fatal(err)
	}
	model := influence.NewWeightedCascade(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.BuildHimor(g, t, model, 5, graph.NewRand(uint64(i)))
	}
}

func BenchmarkCODLQuery(b *testing.B) {
	g := loadBenchGraph(b, "cora")
	codl, err := engine.NewCODL(g, engine.Params{K: 5, Theta: 5, Seed: 4})
	if err != nil {
		b.Fatal(err)
	}
	qs := dataset.Queries(g, 16, graph.NewRand(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		if _, err := codl.Query(q.Node, q.Attr, graph.NewRand(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCODLQueryAdaptive measures the realized-budget savings of
// bounded-error staged evaluation against the same engine with it off. Both
// modes share one offline build; θ is higher than BenchmarkCODLQuery's so
// the stage-1 pool is large enough for the concentration bound to certify
// (at toy budgets the radius never shrinks below ε and "on" degenerates to
// "off" plus the staging overhead).
func BenchmarkCODLQueryAdaptive(b *testing.B) {
	g := loadBenchGraph(b, "cora")
	p := engine.Params{K: 5, Theta: 20, Seed: 4}
	base, err := engine.Build(context.Background(), g, p, engine.Config{})
	if err != nil {
		b.Fatal(err)
	}
	qs := dataset.Queries(g, 16, graph.NewRand(5))
	for _, mode := range []struct {
		name string
		cfg  engine.Config
	}{
		{"off", engine.Config{}},
		{"on", engine.Config{Adaptive: engine.Adaptive{Enabled: true}}},
	} {
		eng := engine.New(g, base.Tree(), base.Index(), p, mode.cfg)
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := qs[i%len(qs)]
				if _, err := eng.Execute(context.Background(),
					eng.Compile(engine.VariantCODL, q.Node, q.Attr), graph.NewRand(uint64(i))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTrussDecomposition(b *testing.B) {
	g := loadBenchGraph(b, "cora")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchTrussSink = trussCount(g)
	}
}

var benchTrussSink int

func trussCount(g *graph.Graph) int {
	_, nodes := cohesion.KTruss(g, 3)
	return len(nodes)
}

// --- ablations ---------------------------------------------------------------

func BenchmarkAblationLinkage(b *testing.B) {
	g := loadBenchGraph(b, "cora")
	for _, l := range []hac.Linkage{hac.UnweightedAverage, hac.WeightedAverage, hac.Single} {
		b.Run(l.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t, err := hac.Cluster(g, l)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(t.SumLeafDepths())/float64(g.N()), "avg-depth")
			}
		})
	}
}

func BenchmarkAblationBeta(b *testing.B) {
	for _, beta := range []float64{0.5, 1, 2, 4} {
		b.Run(formatBeta(beta), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchConfig("tiny", 8)
				cfg.Beta = beta
				r, err := eval.RunEffectiveness(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.PerMethod[eval.MethodCODL][5].AvgAttrDensity, "phi")
			}
		})
	}
}

func formatBeta(beta float64) string {
	switch beta {
	case 0.5:
		return "beta=0.5"
	case 1:
		return "beta=1"
	case 2:
		return "beta=2"
	default:
		return "beta=4"
	}
}

// BenchmarkAblationBalance measures what heavy-path rebalancing buys on the
// hub-skewed retweet stand-in: Σ dep(v) (which drives HIMOR cost, Thm. 6)
// and the index build time, plain vs rebalanced.
func BenchmarkAblationBalance(b *testing.B) {
	ds, err := dataset.Load("retweet", 42)
	if err != nil {
		b.Fatal(err)
	}
	g := ds.G
	model := influence.NewWeightedCascade(g)
	for _, balanced := range []bool{false, true} {
		name := "plain"
		if balanced {
			name = "rebalanced"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var t *hier.Tree
				var err error
				if balanced {
					t, err = hac.ClusterBalanced(g, hac.UnweightedAverage)
				} else {
					t, err = hac.Cluster(g, hac.UnweightedAverage)
				}
				if err != nil {
					b.Fatal(err)
				}
				start := time.Now()
				idx := core.BuildHimor(g, t, model, 2, graph.NewRand(7))
				b.ReportMetric(float64(time.Since(start).Milliseconds()), "himor-ms")
				b.ReportMetric(float64(t.SumLeafDepths())/float64(g.N()), "avg-depth")
				b.ReportMetric(float64(idx.ApproxBytes())/(1<<20), "index-MB")
			}
		})
	}
}

func BenchmarkAblationLCA(b *testing.B) {
	g := loadBenchGraph(b, "cora")
	t, err := hac.Cluster(g, hac.UnweightedAverage)
	if err != nil {
		b.Fatal(err)
	}
	rng := graph.NewRand(6)
	n := t.NumVertices()
	naive := func(a, c hier.Vertex) hier.Vertex {
		da, dc := t.Depth(a), t.Depth(c)
		for da > dc {
			a = t.Parent(a)
			da--
		}
		for dc > da {
			c = t.Parent(c)
			dc--
		}
		for a != c {
			a, c = t.Parent(a), t.Parent(c)
		}
		return a
	}
	b.Run("sparse-table", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = t.LCA(hier.Vertex(rng.IntN(n)), hier.Vertex(rng.IntN(n)))
		}
	})
	b.Run("naive-climb", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = naive(hier.Vertex(rng.IntN(n)), hier.Vertex(rng.IntN(n)))
		}
	})
}

// --- extension benches --------------------------------------------------------

// BenchmarkDynamicFlush compares the local subtree splice against a full
// recluster for a single localized edge insertion.
func BenchmarkDynamicFlush(b *testing.B) {
	for _, strat := range []struct {
		name string
		s    dynamic.Strategy
	}{{"local", dynamic.RebuildLocal}, {"full", dynamic.RebuildFull}} {
		b.Run(strat.name, func(b *testing.B) {
			ds, err := dataset.Load("small", 42)
			if err != nil {
				b.Fatal(err)
			}
			u, err := dynamic.New(ds.G, engine.Params{Theta: 2, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			g := u.Graph()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a := graph.NodeID(i % g.N())
				c := graph.NodeID((i*7 + 1) % g.N())
				if a == c {
					c = (c + 1) % graph.NodeID(g.N())
				}
				if err := u.AddEdge(a, c); err != nil {
					b.Fatal(err)
				}
				if err := u.Flush(strat.s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDiscoverBatch measures batched query throughput at different
// worker counts over a shared offline state.
func BenchmarkDiscoverBatch(b *testing.B) {
	g, err := GenerateDataset("small", 42)
	if err != nil {
		b.Fatal(err)
	}
	s, err := NewSearcher(g, Options{K: 5, Theta: 3, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	var queries []Query
	for v := NodeID(0); int(v) < g.N() && len(queries) < 16; v += 31 {
		if as := g.Attrs(v); len(as) > 0 {
			queries = append(queries, Query{Node: v, Attr: as[0]})
		}
	}
	for _, workers := range []int{1, 4} {
		b.Run(map[int]string{1: "serial", 4: "workers4"}[workers], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out := s.DiscoverBatch(queries, workers)
				if len(out) != len(queries) {
					b.Fatal("bad batch")
				}
			}
		})
	}
}

// BenchmarkAdaptiveSampling compares fixed-Θ compressed evaluation with the
// stability-driven adaptive variant.
func BenchmarkAdaptiveSampling(b *testing.B) {
	gds := loadBenchGraph(b, "cora")
	tr, err := hac.Cluster(gds, hac.UnweightedAverage)
	if err != nil {
		b.Fatal(err)
	}
	ch := core.ChainFromTree(tr, 100)
	model := influence.NewWeightedCascade(gds)
	b.Run("fixed", func(b *testing.B) {
		s := influence.NewSampler(gds, model, graph.NewRand(1))
		for i := 0; i < b.N; i++ {
			pool := s.Batch(5 * gds.N())
			core.CompressedEvaluate(ch, pool, 5)
		}
	})
	b.Run("adaptive", func(b *testing.B) {
		s := influence.NewSampler(gds, model, graph.NewRand(1))
		for i := 0; i < b.N; i++ {
			res := core.CompressedEvaluateAdaptive(ch, s, 5, gds.N()/2, 5*gds.N())
			b.ReportMetric(float64(res.Samples), "samples")
		}
	})
}
