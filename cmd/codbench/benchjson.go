package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// BenchRun is one `go test -bench` result line. With -count=N the same
// benchmark name appears N times, once per run; consumers aggregate as they
// see fit.
type BenchRun struct {
	// Name is the full benchmark name including sub-benchmark path and the
	// GOMAXPROCS suffix, e.g. "BenchmarkFig7Effectiveness/cora-8".
	Name string `json:"name"`
	// Iterations is b.N for the run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit to value: the standard ns/op, B/op, allocs/op plus
	// any custom b.ReportMetric units the benchmark emits.
	Metrics map[string]float64 `json:"metrics"`
}

// BenchReport is the machine-readable envelope written to BENCH_*.json.
type BenchReport struct {
	GoVersion  string     `json:"go_version"`
	GOOS       string     `json:"goos"`
	GOARCH     string     `json:"goarch"`
	Benchmarks []BenchRun `json:"benchmarks"`
}

// parseBenchOutput converts the text output of `go test -bench` into
// structured runs. Non-benchmark lines (goos/goarch/pkg headers, PASS, ok)
// are skipped; a line that starts with "Benchmark" but does not parse is an
// error, and so is input containing no benchmark lines at all — silence is
// the classic failure mode of a bench pipeline and must fail loudly.
func parseBenchOutput(r io.Reader) ([]BenchRun, error) {
	var runs []BenchRun
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			return nil, fmt.Errorf("line %d: malformed benchmark line %q", lineNo, line)
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: iterations %q: %v", lineNo, fields[1], err)
		}
		run := BenchRun{Name: fields[0], Iterations: iters, Metrics: make(map[string]float64)}
		for i := 2; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: value %q for unit %q: %v", lineNo, fields[i], fields[i+1], err)
			}
			run.Metrics[fields[i+1]] = v
		}
		runs = append(runs, run)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(runs) == 0 {
		return nil, fmt.Errorf("no benchmark lines in input (did the bench run produce output?)")
	}
	return runs, nil
}

// writeBenchReport parses bench output from r and writes the JSON report to
// path ("-" or "" = stdout).
func writeBenchReport(r io.Reader, path string) error {
	runs, err := parseBenchOutput(r)
	if err != nil {
		return err
	}
	rep := BenchReport{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: runs,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "" || path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// checkBenchReport validates a committed BENCH_*.json: it must unmarshal,
// contain at least one benchmark, and every run must carry a name, positive
// iterations, and at least one finite metric. This is a well-formedness
// gate, not a performance gate — thresholds belong to humans reading trends.
func checkBenchReport(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep BenchReport
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rep); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	if rep.GoVersion == "" {
		return fmt.Errorf("%s: missing go_version", path)
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("%s: no benchmarks recorded", path)
	}
	for i, b := range rep.Benchmarks {
		if b.Name == "" {
			return fmt.Errorf("%s: benchmark %d has no name", path, i)
		}
		if b.Iterations <= 0 {
			return fmt.Errorf("%s: benchmark %q has non-positive iterations %d", path, b.Name, b.Iterations)
		}
		if len(b.Metrics) == 0 {
			return fmt.Errorf("%s: benchmark %q has no metrics", path, b.Name)
		}
		for unit, v := range b.Metrics {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return fmt.Errorf("%s: benchmark %q metric %q has invalid value %v", path, b.Name, unit, v)
			}
		}
	}
	return nil
}
