package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// BenchRun is one `go test -bench` result line. With -count=N the same
// benchmark name appears N times, once per run; consumers aggregate as they
// see fit.
type BenchRun struct {
	// Name is the full benchmark name including sub-benchmark path and the
	// GOMAXPROCS suffix, e.g. "BenchmarkFig7Effectiveness/cora-8".
	Name string `json:"name"`
	// Iterations is b.N for the run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit to value: the standard ns/op, B/op, allocs/op plus
	// any custom b.ReportMetric units the benchmark emits.
	Metrics map[string]float64 `json:"metrics"`
}

// BenchReport is the machine-readable envelope written to BENCH_*.json.
type BenchReport struct {
	GoVersion  string     `json:"go_version"`
	GOOS       string     `json:"goos"`
	GOARCH     string     `json:"goarch"`
	Benchmarks []BenchRun `json:"benchmarks"`
}

// parseBenchOutput converts the text output of `go test -bench` into
// structured runs. Non-benchmark lines (goos/goarch/pkg headers, PASS, ok)
// are skipped; a line that starts with "Benchmark" but does not parse is an
// error, and so is input containing no benchmark lines at all — silence is
// the classic failure mode of a bench pipeline and must fail loudly.
func parseBenchOutput(r io.Reader) ([]BenchRun, error) {
	var runs []BenchRun
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			return nil, fmt.Errorf("line %d: malformed benchmark line %q", lineNo, line)
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: iterations %q: %v", lineNo, fields[1], err)
		}
		run := BenchRun{Name: fields[0], Iterations: iters, Metrics: make(map[string]float64)}
		for i := 2; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: value %q for unit %q: %v", lineNo, fields[i], fields[i+1], err)
			}
			run.Metrics[fields[i+1]] = v
		}
		runs = append(runs, run)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(runs) == 0 {
		return nil, fmt.Errorf("no benchmark lines in input (did the bench run produce output?)")
	}
	return runs, nil
}

// writeBenchReport parses bench output from r and writes the JSON report to
// path ("-" or "" = stdout).
func writeBenchReport(r io.Reader, path string) error {
	runs, err := parseBenchOutput(r)
	if err != nil {
		return err
	}
	rep := BenchReport{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: runs,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "" || path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// readBenchReport loads and unmarshals a committed BENCH_*.json.
func readBenchReport(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep BenchReport
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &rep, nil
}

// Comparison noise floors: -benchtime=1x runs are single iterations, so
// sub-millisecond timings and small allocation counts are dominated by
// scheduler and runtime noise rather than code changes. Pairs below the
// floor are reported as notes, never as regressions.
const (
	compareNsFloor     = 1e6 // 1ms in ns/op
	compareAllocsFloor = 128 // allocs/op
)

// benchDelta is one per-benchmark, per-metric comparison result.
type benchDelta struct {
	name, unit         string
	oldV, newV, change float64 // change is (new-old)/old
	regressed          bool
}

// minByName aggregates -count=N runs to the minimum per benchmark name for
// the given unit — the run least disturbed by noise, the standard statistic
// for threshold comparison. Names without the unit are skipped.
func minByName(runs []BenchRun, unit string) map[string]float64 {
	out := make(map[string]float64)
	for _, r := range runs {
		v, ok := r.Metrics[unit]
		if !ok {
			continue
		}
		if best, ok := out[r.Name]; !ok || v < best {
			out[r.Name] = v
		}
	}
	return out
}

// compareBenchReports diffs newPath against the baseline at oldPath on
// ns/op and allocs/op, aggregating -count runs by minimum, and fails with
// an error when any shared benchmark regressed by more than threshold
// (0.25 = +25%) above the noise floor. Benchmarks present in only one
// report are printed as notes, not failures — the suite is allowed to grow
// and shrink across PRs; only shared names gate.
func compareBenchReports(w io.Writer, oldPath, newPath string, threshold float64) error {
	oldRep, err := readBenchReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := readBenchReport(newPath)
	if err != nil {
		return err
	}
	var (
		deltas     []benchDelta
		regressed  int
		onlyOld    []string
		onlyNew    []string
		seenShared = make(map[string]bool)
	)
	for _, unit := range []string{"ns/op", "allocs/op"} {
		floor := compareNsFloor
		if unit == "allocs/op" {
			floor = compareAllocsFloor
		}
		oldMin := minByName(oldRep.Benchmarks, unit)
		newMin := minByName(newRep.Benchmarks, unit)
		for name, ov := range oldMin {
			nv, ok := newMin[name]
			if !ok {
				continue
			}
			seenShared[name] = true
			d := benchDelta{name: name, unit: unit, oldV: ov, newV: nv}
			if ov > 0 {
				d.change = (nv - ov) / ov
			}
			d.regressed = ov >= floor && nv > ov*(1+threshold)
			if d.regressed {
				regressed++
			}
			deltas = append(deltas, d)
		}
	}
	for name := range minByName(oldRep.Benchmarks, "ns/op") {
		if _, ok := minByName(newRep.Benchmarks, "ns/op")[name]; !ok {
			onlyOld = append(onlyOld, name)
		}
	}
	for name := range minByName(newRep.Benchmarks, "ns/op") {
		if _, ok := minByName(oldRep.Benchmarks, "ns/op")[name]; !ok {
			onlyNew = append(onlyNew, name)
		}
	}
	sort.Slice(deltas, func(i, j int) bool {
		if deltas[i].name != deltas[j].name {
			return deltas[i].name < deltas[j].name
		}
		return deltas[i].unit < deltas[j].unit
	})
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)
	fmt.Fprintf(w, "comparing %s -> %s (threshold +%.0f%%, min of runs)\n",
		oldPath, newPath, threshold*100)
	for _, d := range deltas {
		mark := ""
		if d.regressed {
			mark = "  REGRESSED"
		}
		fmt.Fprintf(w, "  %-56s %-9s %14.0f -> %14.0f  %+7.1f%%%s\n",
			d.name, d.unit, d.oldV, d.newV, d.change*100, mark)
	}
	for _, name := range onlyOld {
		fmt.Fprintf(w, "  note: %s only in baseline %s\n", name, oldPath)
	}
	for _, name := range onlyNew {
		fmt.Fprintf(w, "  note: %s new in %s (no baseline)\n", name, newPath)
	}
	if len(seenShared) == 0 {
		return fmt.Errorf("no shared benchmarks between %s and %s", oldPath, newPath)
	}
	if regressed > 0 {
		return fmt.Errorf("%d benchmark metric(s) regressed more than %.0f%% vs %s",
			regressed, threshold*100, oldPath)
	}
	return nil
}

// checkBenchReport validates a committed BENCH_*.json: it must unmarshal,
// contain at least one benchmark, and every run must carry a name, positive
// iterations, and at least one finite metric. This is a well-formedness
// gate, not a performance gate — thresholds belong to humans reading trends.
func checkBenchReport(path string) error {
	rp, err := readBenchReport(path)
	if err != nil {
		return err
	}
	rep := *rp
	if rep.GoVersion == "" {
		return fmt.Errorf("%s: missing go_version", path)
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("%s: no benchmarks recorded", path)
	}
	for i, b := range rep.Benchmarks {
		if b.Name == "" {
			return fmt.Errorf("%s: benchmark %d has no name", path, i)
		}
		if b.Iterations <= 0 {
			return fmt.Errorf("%s: benchmark %q has non-positive iterations %d", path, b.Name, b.Iterations)
		}
		if len(b.Metrics) == 0 {
			return fmt.Errorf("%s: benchmark %q has no metrics", path, b.Name)
		}
		for unit, v := range b.Metrics {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return fmt.Errorf("%s: benchmark %q metric %q has invalid value %v", path, b.Name, unit, v)
			}
		}
	}
	return nil
}
