package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: github.com/codsearch/cod
cpu: Some CPU
BenchmarkFig7Size/cora-8                 1        12345678 ns/op               42.5 nodes
BenchmarkFig7Size/cora-8                 1        12345999 ns/op               42.5 nodes
BenchmarkFig9Runtime/cora/codl-8         2         6172839 ns/op            1024 B/op         17 allocs/op
PASS
ok      github.com/codsearch/cod        1.234s
`

func TestParseBenchOutput(t *testing.T) {
	runs, err := parseBenchOutput(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3 {
		t.Fatalf("got %d runs, want 3", len(runs))
	}
	if runs[0].Name != "BenchmarkFig7Size/cora-8" {
		t.Errorf("run 0 name = %q", runs[0].Name)
	}
	if runs[0].Iterations != 1 {
		t.Errorf("run 0 iterations = %d, want 1", runs[0].Iterations)
	}
	if got := runs[0].Metrics["ns/op"]; got != 12345678 {
		t.Errorf("run 0 ns/op = %v", got)
	}
	if got := runs[0].Metrics["nodes"]; got != 42.5 {
		t.Errorf("run 0 nodes = %v", got)
	}
	if got := runs[2].Metrics["allocs/op"]; got != 17 {
		t.Errorf("run 2 allocs/op = %v", got)
	}
}

func TestParseBenchOutputRejectsEmpty(t *testing.T) {
	for name, input := range map[string]string{
		"empty":       "",
		"no-benches":  "goos: linux\nPASS\nok pkg 0.1s\n",
		"fuzz-header": "fuzz: elapsed 3s\n",
	} {
		if _, err := parseBenchOutput(strings.NewReader(input)); err == nil {
			t.Errorf("%s: want error for input with no benchmark lines", name)
		}
	}
}

func TestParseBenchOutputRejectsMalformed(t *testing.T) {
	for name, line := range map[string]string{
		"odd-fields":     "BenchmarkX-8 1 100 ns/op extra",
		"bad-iterations": "BenchmarkX-8 one 100 ns/op",
		"bad-value":      "BenchmarkX-8 1 fast ns/op",
		"name-only":      "BenchmarkX-8 1",
	} {
		if _, err := parseBenchOutput(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("%s: want parse error for %q", name, line)
		}
	}
}

func TestWriteAndCheckBenchReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := writeBenchReport(strings.NewReader(sampleBenchOutput), path); err != nil {
		t.Fatal(err)
	}
	if err := checkBenchReport(path); err != nil {
		t.Errorf("round-tripped report failed validation: %v", err)
	}
}

func TestCheckBenchReportRejectsBad(t *testing.T) {
	for name, body := range map[string]string{
		"not-json":        "not json at all",
		"empty-benches":   `{"go_version":"go1.22","goos":"linux","goarch":"amd64","benchmarks":[]}`,
		"no-go-version":   `{"goos":"linux","goarch":"amd64","benchmarks":[{"name":"B","iterations":1,"metrics":{"ns/op":1}}]}`,
		"zero-iterations": `{"go_version":"go1.22","goos":"linux","goarch":"amd64","benchmarks":[{"name":"B","iterations":0,"metrics":{"ns/op":1}}]}`,
		"no-metrics":      `{"go_version":"go1.22","goos":"linux","goarch":"amd64","benchmarks":[{"name":"B","iterations":1,"metrics":{}}]}`,
		"negative-metric": `{"go_version":"go1.22","goos":"linux","goarch":"amd64","benchmarks":[{"name":"B","iterations":1,"metrics":{"ns/op":-5}}]}`,
		"unknown-field":   `{"go_version":"go1.22","goos":"linux","goarch":"amd64","surprise":true,"benchmarks":[{"name":"B","iterations":1,"metrics":{"ns/op":1}}]}`,
	} {
		path := filepath.Join(t.TempDir(), name+".json")
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := checkBenchReport(path); err == nil {
			t.Errorf("%s: want validation error", name)
		}
	}
}

func TestCheckCommittedBenchReport(t *testing.T) {
	// The committed BENCH_pr3.json must stay parseable by the checker the CI
	// script runs; a stale or hand-mangled file should fail here, not in CI.
	path := filepath.Join("..", "..", "BENCH_pr3.json")
	if _, err := os.Stat(path); err != nil {
		t.Skipf("no committed bench report: %v", err)
	}
	if err := checkBenchReport(path); err != nil {
		t.Errorf("committed report invalid: %v", err)
	}
}
