package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: github.com/codsearch/cod
cpu: Some CPU
BenchmarkFig7Size/cora-8                 1        12345678 ns/op               42.5 nodes
BenchmarkFig7Size/cora-8                 1        12345999 ns/op               42.5 nodes
BenchmarkFig9Runtime/cora/codl-8         2         6172839 ns/op            1024 B/op         17 allocs/op
PASS
ok      github.com/codsearch/cod        1.234s
`

func TestParseBenchOutput(t *testing.T) {
	runs, err := parseBenchOutput(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3 {
		t.Fatalf("got %d runs, want 3", len(runs))
	}
	if runs[0].Name != "BenchmarkFig7Size/cora-8" {
		t.Errorf("run 0 name = %q", runs[0].Name)
	}
	if runs[0].Iterations != 1 {
		t.Errorf("run 0 iterations = %d, want 1", runs[0].Iterations)
	}
	if got := runs[0].Metrics["ns/op"]; got != 12345678 {
		t.Errorf("run 0 ns/op = %v", got)
	}
	if got := runs[0].Metrics["nodes"]; got != 42.5 {
		t.Errorf("run 0 nodes = %v", got)
	}
	if got := runs[2].Metrics["allocs/op"]; got != 17 {
		t.Errorf("run 2 allocs/op = %v", got)
	}
}

func TestParseBenchOutputRejectsEmpty(t *testing.T) {
	for name, input := range map[string]string{
		"empty":       "",
		"no-benches":  "goos: linux\nPASS\nok pkg 0.1s\n",
		"fuzz-header": "fuzz: elapsed 3s\n",
	} {
		if _, err := parseBenchOutput(strings.NewReader(input)); err == nil {
			t.Errorf("%s: want error for input with no benchmark lines", name)
		}
	}
}

func TestParseBenchOutputRejectsMalformed(t *testing.T) {
	for name, line := range map[string]string{
		"odd-fields":     "BenchmarkX-8 1 100 ns/op extra",
		"bad-iterations": "BenchmarkX-8 one 100 ns/op",
		"bad-value":      "BenchmarkX-8 1 fast ns/op",
		"name-only":      "BenchmarkX-8 1",
	} {
		if _, err := parseBenchOutput(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("%s: want parse error for %q", name, line)
		}
	}
}

func TestWriteAndCheckBenchReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := writeBenchReport(strings.NewReader(sampleBenchOutput), path); err != nil {
		t.Fatal(err)
	}
	if err := checkBenchReport(path); err != nil {
		t.Errorf("round-tripped report failed validation: %v", err)
	}
}

func TestCheckBenchReportRejectsBad(t *testing.T) {
	for name, body := range map[string]string{
		"not-json":        "not json at all",
		"empty-benches":   `{"go_version":"go1.22","goos":"linux","goarch":"amd64","benchmarks":[]}`,
		"no-go-version":   `{"goos":"linux","goarch":"amd64","benchmarks":[{"name":"B","iterations":1,"metrics":{"ns/op":1}}]}`,
		"zero-iterations": `{"go_version":"go1.22","goos":"linux","goarch":"amd64","benchmarks":[{"name":"B","iterations":0,"metrics":{"ns/op":1}}]}`,
		"no-metrics":      `{"go_version":"go1.22","goos":"linux","goarch":"amd64","benchmarks":[{"name":"B","iterations":1,"metrics":{}}]}`,
		"negative-metric": `{"go_version":"go1.22","goos":"linux","goarch":"amd64","benchmarks":[{"name":"B","iterations":1,"metrics":{"ns/op":-5}}]}`,
		"unknown-field":   `{"go_version":"go1.22","goos":"linux","goarch":"amd64","surprise":true,"benchmarks":[{"name":"B","iterations":1,"metrics":{"ns/op":1}}]}`,
	} {
		path := filepath.Join(t.TempDir(), name+".json")
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := checkBenchReport(path); err == nil {
			t.Errorf("%s: want validation error", name)
		}
	}
}

func TestCheckCommittedBenchReport(t *testing.T) {
	// Every committed BENCH_*.json must stay parseable by the checker the CI
	// script runs; a stale or hand-mangled file should fail here, not in CI.
	paths, err := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Skip("no committed bench reports")
	}
	for _, path := range paths {
		if err := checkBenchReport(path); err != nil {
			t.Errorf("committed report invalid: %v", err)
		}
	}
}

// writeReport materializes a report with one run per (name, ns/op, allocs/op)
// triple for the comparison tests.
func writeReport(t *testing.T, dir, name string, runs []BenchRun) string {
	t.Helper()
	rep := BenchReport{GoVersion: "go1.22", GOOS: "linux", GOARCH: "amd64", Benchmarks: runs}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func run1(name string, ns, allocs float64) BenchRun {
	return BenchRun{Name: name, Iterations: 1, Metrics: map[string]float64{"ns/op": ns, "allocs/op": allocs}}
}

func TestCompareBenchReportsFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", []BenchRun{run1("BenchmarkA-8", 10e6, 1000)})
	newP := writeReport(t, dir, "new.json", []BenchRun{run1("BenchmarkA-8", 15e6, 1000)})
	var buf strings.Builder
	err := compareBenchReports(&buf, oldP, newP, 0.25)
	if err == nil {
		t.Fatalf("+50%% ns/op regression not reported; output:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "REGRESSED") {
		t.Errorf("comparison output does not mark the regression:\n%s", buf.String())
	}
}

func TestCompareBenchReportsAllocRegression(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", []BenchRun{run1("BenchmarkA-8", 10e6, 1000)})
	newP := writeReport(t, dir, "new.json", []BenchRun{run1("BenchmarkA-8", 10e6, 2000)})
	var buf strings.Builder
	if err := compareBenchReports(&buf, oldP, newP, 0.25); err == nil {
		t.Fatalf("+100%% allocs/op regression not reported; output:\n%s", buf.String())
	}
}

func TestCompareBenchReportsPassesWithinThreshold(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", []BenchRun{run1("BenchmarkA-8", 10e6, 1000)})
	newP := writeReport(t, dir, "new.json", []BenchRun{run1("BenchmarkA-8", 11e6, 1100)})
	var buf strings.Builder
	if err := compareBenchReports(&buf, oldP, newP, 0.25); err != nil {
		t.Fatalf("+10%% within a 25%% threshold failed: %v\n%s", err, buf.String())
	}
}

func TestCompareBenchReportsNoiseFloor(t *testing.T) {
	// Sub-floor values regress hugely in relative terms but are noise at
	// -benchtime=1x; they must not fail the gate.
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", []BenchRun{run1("BenchmarkTiny-8", 500, 10)})
	newP := writeReport(t, dir, "new.json", []BenchRun{run1("BenchmarkTiny-8", 5000, 100)})
	var buf strings.Builder
	if err := compareBenchReports(&buf, oldP, newP, 0.25); err != nil {
		t.Fatalf("sub-floor change failed the gate: %v\n%s", err, buf.String())
	}
}

func TestCompareBenchReportsUsesMinOfRuns(t *testing.T) {
	// One noisy slow run out of -count=3 must not fail the gate: the minimum
	// of the new runs is compared against the minimum of the old.
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", []BenchRun{
		run1("BenchmarkA-8", 10e6, 1000), run1("BenchmarkA-8", 30e6, 1000),
	})
	newP := writeReport(t, dir, "new.json", []BenchRun{
		run1("BenchmarkA-8", 40e6, 1000), run1("BenchmarkA-8", 10.5e6, 1000),
	})
	var buf strings.Builder
	if err := compareBenchReports(&buf, oldP, newP, 0.25); err != nil {
		t.Fatalf("min-of-runs comparison failed: %v\n%s", err, buf.String())
	}
}

func TestCompareBenchReportsDisjointNamesAreNotes(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", []BenchRun{
		run1("BenchmarkShared-8", 10e6, 1000), run1("BenchmarkGone-8", 10e6, 1000),
	})
	newP := writeReport(t, dir, "new.json", []BenchRun{
		run1("BenchmarkShared-8", 10e6, 1000), run1("BenchmarkNew-8", 99e6, 9000),
	})
	var buf strings.Builder
	if err := compareBenchReports(&buf, oldP, newP, 0.25); err != nil {
		t.Fatalf("disjoint benchmark names failed the gate: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "BenchmarkGone-8 only in baseline") {
		t.Errorf("missing note for benchmark dropped from the suite:\n%s", out)
	}
	if !strings.Contains(out, "BenchmarkNew-8 new in") {
		t.Errorf("missing note for benchmark added to the suite:\n%s", out)
	}
}

func TestCompareBenchReportsNoSharedNames(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", []BenchRun{run1("BenchmarkA-8", 10e6, 1000)})
	newP := writeReport(t, dir, "new.json", []BenchRun{run1("BenchmarkB-8", 10e6, 1000)})
	var buf strings.Builder
	if err := compareBenchReports(&buf, oldP, newP, 0.25); err == nil {
		t.Fatal("comparison with no shared benchmarks must fail rather than silently pass")
	}
}
