// Command codbench regenerates the paper's tables and figures on the
// synthetic stand-in datasets. Each experiment prints an aligned text table
// whose rows mirror the corresponding figure/table of the paper.
//
// Usage:
//
//	codbench -exp all                          # everything, default sizes
//	codbench -exp fig7 -datasets cora,citeseer -queries 100
//	codbench -exp fig8 -queries 20 -thetas 10,20,40,80
//	codbench -exp fig9 -datasets amazon,dblp -limit 5m
//	codbench -exp table2 -datasets all
//	codbench -exp scalability                  # CODL on livejournal
//
// Bench tooling (used by scripts/bench_check.sh):
//
//	go test -bench BenchmarkFig -benchtime=1x | codbench -parse-bench -bench-out BENCH_pr5.json
//	codbench -check-bench BENCH_pr5.json      # validate a committed report
//	codbench -check-bench BENCH_pr5.json -compare-bench BENCH_pr4.json
//	                                          # also diff ns/op + allocs/op vs the
//	                                          # baseline, failing on >25% regressions
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/codsearch/cod/internal/accuracy"
	"github.com/codsearch/cod/internal/dataset"
	"github.com/codsearch/cod/internal/eval"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment: table1|fig4|fig7|fig8|fig9|table2|case|scalability|all")
		datasets  = flag.String("datasets", "", "comma-separated dataset names (default: per-experiment paper set; 'all' = six effectiveness sets)")
		queries   = flag.Int("queries", 100, "number of query nodes")
		theta     = flag.Int("theta", 10, "RR graphs per node (θ)")
		thetas    = flag.String("thetas", "10,20,40,80", "θ sweep for fig8")
		k         = flag.Int("k", 5, "required influence rank k")
		seed      = flag.Uint64("seed", 42, "random seed")
		budget    = flag.Int("budget", 0, "Independent RR-set budget per query for fig8 (0 = unlimited)")
		limit     = flag.Duration("limit", 15*time.Minute, "per-method time limit for fig9")
		precision = flag.Int("precision", 1000, "ground-truth RR sets per community node")

		parseBench   = flag.Bool("parse-bench", false, "read `go test -bench` output on stdin and emit a JSON report")
		benchOut     = flag.String("bench-out", "", "path for the JSON report from -parse-bench (default stdout)")
		checkBench   = flag.String("check-bench", "", "validate an existing JSON bench report and exit")
		compareBench = flag.String("compare-bench", "",
			"baseline JSON report to diff the -check-bench report against (ns/op + allocs/op, min of runs)")
		compareThresh = flag.Float64("compare-threshold", 0.25,
			"fractional regression vs -compare-bench that fails the diff (0.25 = +25%)")

		accuracySweep = flag.Bool("accuracy", false,
			"run the bounded-error accuracy sweep (internal/accuracy) over -datasets at several (ε, δ); fails if any observed error rate exceeds its δ")
	)
	flag.Parse()

	if *accuracySweep {
		if err := runAccuracy(*datasets, *queries, *theta, *k, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "codbench:", err)
			os.Exit(1)
		}
		return
	}

	if *parseBench {
		if err := writeBenchReport(os.Stdin, *benchOut); err != nil {
			fmt.Fprintln(os.Stderr, "codbench:", err)
			os.Exit(1)
		}
		return
	}
	if *checkBench != "" {
		if err := checkBenchReport(*checkBench); err != nil {
			fmt.Fprintln(os.Stderr, "codbench:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: ok\n", *checkBench)
		if *compareBench != "" {
			if err := compareBenchReports(os.Stdout, *compareBench, *checkBench, *compareThresh); err != nil {
				fmt.Fprintln(os.Stderr, "codbench:", err)
				os.Exit(1)
			}
		}
		return
	}
	if *compareBench != "" {
		fmt.Fprintln(os.Stderr, "codbench: -compare-bench requires -check-bench (the report to compare)")
		os.Exit(1)
	}

	if err := run(*exp, *datasets, *queries, *theta, *thetas, *k, *seed, *budget, *limit, *precision); err != nil {
		fmt.Fprintln(os.Stderr, "codbench:", err)
		os.Exit(1)
	}
}

func run(exp, datasetsFlag string, queries, theta int, thetasFlag string, k int, seed uint64, budget int, limit time.Duration, precision int) error {
	parseSets := func(def []string) []string {
		switch datasetsFlag {
		case "":
			return def
		case "all":
			return dataset.EffectivenessNames()
		default:
			return strings.Split(datasetsFlag, ",")
		}
	}
	baseCfg := func(ds string) eval.Config {
		return eval.Config{
			Dataset:       ds,
			Seed:          seed,
			NumQueries:    queries,
			Theta:         theta,
			Beta:          1,
			PrecisionSets: precision,
			Thetas:        parseInts(thetasFlag),
		}
	}

	experiments := strings.Split(exp, ",")
	if exp == "all" {
		experiments = []string{"table1", "fig4", "fig7", "fig8", "fig9", "table2", "case"}
	}
	for _, e := range experiments {
		start := time.Now()
		switch e {
		case "table1":
			var rows []*eval.HierarchyStats
			for _, ds := range parseSets(dataset.Names()) {
				r, err := eval.RunNetworkStats(baseCfg(ds))
				if err != nil {
					return err
				}
				rows = append(rows, r)
			}
			eval.WriteTableI(os.Stdout, rows)
		case "fig4":
			for _, ds := range parseSets([]string{"cora", "citeseer", "pubmed", "retweet"}) {
				r, err := eval.RunFiveDeepest(baseCfg(ds))
				if err != nil {
					return err
				}
				eval.WriteFig4(os.Stdout, r)
			}
		case "fig7":
			for _, ds := range parseSets(dataset.EffectivenessNames()) {
				r, err := eval.RunEffectiveness(baseCfg(ds))
				if err != nil {
					return err
				}
				eval.WriteEffectiveness(os.Stdout, r)
			}
		case "fig8":
			for _, ds := range parseSets([]string{"cora", "citeseer"}) {
				rows, err := eval.RunCompressedVsIndependent(baseCfg(ds), k, budget)
				if err != nil {
					return err
				}
				eval.WriteFig8(os.Stdout, rows)
			}
		case "fig9":
			var rows []eval.Fig9Row
			for _, ds := range parseSets(dataset.EffectivenessNames()) {
				r, err := eval.RunRuntime(baseCfg(ds), k, limit)
				if err != nil {
					return err
				}
				rows = append(rows, r...)
			}
			eval.WriteFig9(os.Stdout, rows)
		case "scalability":
			rows, err := eval.RunRuntime(baseCfg("livejournal"), k, limit)
			if err != nil {
				return err
			}
			eval.WriteFig9(os.Stdout, rows)
		case "table2":
			var rows []*eval.TableIIRow
			for _, ds := range parseSets(dataset.Names()) {
				r, err := eval.RunIndexOverhead(baseCfg(ds))
				if err != nil {
					return err
				}
				rows = append(rows, r)
			}
			eval.WriteTableII(os.Stdout, rows)
		case "case":
			for _, ds := range parseSets([]string{"cora"}) {
				cfg := baseCfg(ds)
				cases, err := eval.RunCaseStudy(cfg, 2)
				if err != nil {
					return err
				}
				eval.WriteCaseStudies(os.Stdout, cases)
			}
		default:
			return fmt.Errorf("unknown experiment %q", e)
		}
		fmt.Printf("[%s done in %v]\n\n", e, time.Since(start).Round(10*time.Millisecond))
	}
	return nil
}

func parseInts(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		if v, err := strconv.Atoi(strings.TrimSpace(f)); err == nil {
			out = append(out, v)
		}
	}
	return out
}

// runAccuracy sweeps the bounded-error accuracy harness over datasets and a
// grid of (ε, δ), printing one summary line per cell. The sweep fails when
// any cell's observed rank-k error rate exceeds its δ — the statistical
// acceptance gate of the bounded-error evaluation contract (DESIGN.md §16).
func runAccuracy(datasetsFlag string, queries, theta, k int, seed uint64) error {
	sets := []string{"cora", "citeseer", "pubmed", "retweet"}
	switch datasetsFlag {
	case "":
	case "all":
		sets = dataset.EffectivenessNames()
	default:
		sets = strings.Split(datasetsFlag, ",")
	}
	grid := []struct{ eps, delta float64 }{
		{0.05, 0.05},
		{0.02, 0.05},
		{0.10, 0.10},
	}
	failed := false
	for _, ds := range sets {
		for _, cell := range grid {
			start := time.Now()
			r, err := accuracy.Run(context.Background(), accuracy.Config{
				Dataset: ds, Seed: seed, NumQueries: queries,
				K: k, Theta: theta, Eps: cell.eps, Delta: cell.delta})
			if err != nil {
				return err
			}
			status := "ok"
			if r.ErrorRate > r.Delta {
				status = "FAIL"
				failed = true
			}
			fmt.Printf("%s  [%s in %v]\n", r, status, time.Since(start).Round(10*time.Millisecond))
		}
	}
	if failed {
		return fmt.Errorf("accuracy sweep: observed error rate exceeded delta")
	}
	return nil
}
