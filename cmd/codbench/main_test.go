package main

import (
	"testing"
	"time"
)

func TestParseInts(t *testing.T) {
	got := parseInts("10, 20,40")
	want := []int{10, 20, 40}
	if len(got) != len(want) {
		t.Fatalf("parseInts = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseInts = %v", got)
		}
	}
	if out := parseInts("a,b"); out != nil {
		t.Errorf("garbage parsed: %v", out)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("blah", "tiny", 2, 2, "5", 3, 1, 0, time.Second, 10); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunTinyExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real experiments")
	}
	// The cheap experiments on the tiny dataset exercise the full plumbing.
	for _, exp := range []string{"table1", "fig4", "table2", "case"} {
		if err := run(exp, "tiny", 3, 2, "2", 2, 1, 0, time.Second, 10); err != nil {
			t.Errorf("%s: %v", exp, err)
		}
	}
	if err := run("fig9", "tiny", 2, 2, "2", 2, 1, 0, 30*time.Second, 10); err != nil {
		t.Errorf("fig9: %v", err)
	}
	if err := run("fig8", "tiny", 2, 2, "2,4", 2, 1, 0, time.Second, 10); err != nil {
		t.Errorf("fig8: %v", err)
	}
	if err := run("fig7", "tiny", 2, 2, "2", 2, 1, 0, time.Second, 10); err != nil {
		t.Errorf("fig7: %v", err)
	}
}
