// Command codlog analyzes the durable query-event log that codserve writes
// under -query-log: one JSONL wide event per query, size-rotated and
// crash-tolerant. It answers the questions the in-memory debug endpoints
// cannot once the process is gone — what ran, which predicate shapes are
// slow, and whether a logged query still reproduces.
//
//	codlog -log DIR tail [-f] [-n 20]       stream events (follow with -f)
//	codlog -log DIR top [-by pred] [-n 10]  hottest groups by count
//	codlog -log DIR percentiles             per-group latency percentiles
//	codlog -log DIR grep TRACE_ID           dump events matching a trace ID
//	codlog -log DIR replay TRACE_ID ...     re-run a logged query and diff it
//
// replay rebuilds a Searcher from the same build inputs the server used
// (-dataset/-graph, -k, -theta, -seed, -sample-cache, adaptive flags must
// match), re-executes the logged query with its logged per-query seed, and
// diffs the community fingerprint and the plan-step outcomes — a
// deterministic end-to-end check that the serving stack still computes what
// it logged.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"github.com/codsearch/cod/internal/obs/eventlog"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "codlog:", err)
		os.Exit(1)
	}
}

const usage = "usage: codlog -log DIR {tail|top|percentiles|grep|replay} [args]"

// run dispatches one codlog invocation; out receives all normal output so
// tests drive it without a process.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("codlog", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	logDir := fs.String("log", "", "query-event log directory (codserve's -query-log)")
	if err := fs.Parse(args); err != nil {
		return fmt.Errorf("%v\n%s", err, usage)
	}
	rest := fs.Args()
	if *logDir == "" {
		return errors.New("missing -log DIR\n" + usage)
	}
	if len(rest) == 0 {
		return errors.New(usage)
	}
	cmd, rest := rest[0], rest[1:]
	switch cmd {
	case "tail":
		return runTail(ctx, *logDir, rest, out)
	case "top":
		return runTop(*logDir, rest, out)
	case "percentiles":
		return runPercentiles(*logDir, rest, out)
	case "grep":
		return runGrep(*logDir, rest, out)
	case "replay":
		return runReplay(ctx, *logDir, rest, out)
	default:
		return fmt.Errorf("unknown command %q\n%s", cmd, usage)
	}
}

// writeEventText renders one event as a single log-style line.
func writeEventText(w io.Writer, e *eventlog.Event) {
	fmt.Fprintf(w, "%s %s trace=%s epoch=%d variant=%s pred=%s outcome=%s status=%d dur=%s",
		e.Time.Format(time.RFC3339Nano), e.Op, e.TraceID, e.Epoch,
		e.VariantKey(), e.PredKey(), e.Outcome, e.Status, e.Dur())
	if e.Expr != "" {
		fmt.Fprintf(w, " expr=%q", e.Expr)
	}
	if e.Cache != "" {
		fmt.Fprintf(w, " cache=%s", e.Cache)
	}
	if a := e.Adaptive; a != nil {
		fmt.Fprintf(w, " adaptive_stages=%d adaptive_gap=%.4f adaptive_early_stop=%t", a.Stages, a.Gap, a.EarlyStop)
	}
	if res := e.Result; res != nil {
		fmt.Fprintf(w, " found=%t size=%d nodes_fnv=%s", res.Found, res.Size, res.NodesFNV)
	}
	if e.Err != "" {
		fmt.Fprintf(w, " err=%q", e.Err)
	}
	fmt.Fprintln(w)
}

// runTail prints the log's events in write order; -n keeps only the last N,
// and -f then follows the log for new events until interrupted.
func runTail(ctx context.Context, dir string, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("codlog tail", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	follow := fs.Bool("f", false, "follow the log for new events until interrupted")
	lastN := fs.Int("n", 0, "print only the last N events of the existing log (0 = all)")
	poll := fs.Duration("poll", 250*time.Millisecond, "poll cadence while following")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *follow {
		return eventlog.Follow(ctx, dir, *poll, func(e *eventlog.Event) error {
			writeEventText(out, e)
			return nil
		})
	}
	var kept []*eventlog.Event
	st, err := eventlog.Scan(dir, func(e *eventlog.Event) error {
		kept = append(kept, e)
		if *lastN > 0 && len(kept) > *lastN {
			kept = kept[1:]
		}
		return nil
	})
	if err != nil {
		return err
	}
	for _, e := range kept {
		writeEventText(out, e)
	}
	if st.Torn > 0 || st.Corrupt > 0 {
		fmt.Fprintf(out, "# skipped: %d torn, %d corrupt line(s)\n", st.Torn, st.Corrupt)
	}
	return nil
}

// topKey extracts the grouping key of one event for `top -by`.
func topKey(e *eventlog.Event, by string) (string, error) {
	switch by {
	case "pred":
		return e.PredKey(), nil
	case "variant":
		return e.VariantKey(), nil
	case "outcome":
		return e.Outcome, nil
	case "op":
		return e.Op, nil
	case "expr":
		if e.Expr == "" {
			return "(none)", nil
		}
		return e.Expr, nil
	default:
		return "", fmt.Errorf("unknown -by %q (pred|variant|outcome|op|expr)", by)
	}
}

// runTop ranks groups by event count: which predicate shapes (or variants,
// outcomes, expressions) dominate the log.
func runTop(dir string, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("codlog top", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	by := fs.String("by", "pred", "group key: pred|variant|outcome|op|expr")
	n := fs.Int("n", 10, "groups to print")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if _, err := topKey(&eventlog.Event{}, *by); err != nil {
		return err
	}
	type agg struct {
		count  int64
		errs   int64
		sumSec float64
		maxSec float64
	}
	groups := map[string]*agg{}
	st, err := eventlog.Scan(dir, func(e *eventlog.Event) error {
		key, _ := topKey(e, *by)
		g := groups[key]
		if g == nil {
			g = &agg{}
			groups[key] = g
		}
		g.count++
		if e.Outcome != eventlog.OutcomeOK {
			g.errs++
		}
		sec := e.Dur().Seconds()
		g.sumSec += sec
		if sec > g.maxSec {
			g.maxSec = sec
		}
		return nil
	})
	if err != nil {
		return err
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if groups[keys[i]].count != groups[keys[j]].count {
			return groups[keys[i]].count > groups[keys[j]].count
		}
		return keys[i] < keys[j]
	})
	if len(keys) > *n {
		keys = keys[:*n]
	}
	fmt.Fprintf(out, "%-40s %8s %8s %10s %10s\n", strings.ToUpper(*by), "COUNT", "ERRS", "MEAN", "MAX")
	for _, k := range keys {
		g := groups[k]
		fmt.Fprintf(out, "%-40s %8d %8d %10s %10s\n", k, g.count, g.errs,
			secString(g.sumSec/float64(g.count)), secString(g.maxSec))
	}
	fmt.Fprintf(out, "%d event(s) in %d file(s)", st.Events, st.Files)
	if st.Torn > 0 || st.Corrupt > 0 {
		fmt.Fprintf(out, "; skipped %d torn, %d corrupt", st.Torn, st.Corrupt)
	}
	fmt.Fprintln(out)
	return nil
}

func secString(sec float64) string {
	return time.Duration(sec * float64(time.Second)).Round(time.Microsecond).String()
}

// runPercentiles replays the log through the same streaming aggregator that
// backs codserve's /debug/querystats and prints each (variant, pred,
// outcome) group's latency percentiles.
func runPercentiles(dir string, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("codlog percentiles", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	if err := fs.Parse(args); err != nil {
		return err
	}
	a := eventlog.NewAggregator()
	st, err := eventlog.Scan(dir, func(e *eventlog.Event) error {
		a.Observe(e)
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%-10s %-24s %-10s %8s %10s %10s %10s %10s\n",
		"VARIANT", "PRED", "OUTCOME", "COUNT", "P50", "P90", "P99", "MAX")
	for _, g := range a.Snapshot() {
		fmt.Fprintf(out, "%-10s %-24s %-10s %8d %10s %10s %10s %10s\n",
			g.Variant, g.Pred, g.Outcome, g.Count,
			msString(g.P50MS), msString(g.P90MS), msString(g.P99MS), msString(g.MaxMS))
	}
	fmt.Fprintf(out, "%d event(s) in %d file(s)", st.Events, st.Files)
	if st.Torn > 0 || st.Corrupt > 0 {
		fmt.Fprintf(out, "; skipped %d torn, %d corrupt", st.Torn, st.Corrupt)
	}
	fmt.Fprintln(out)
	return nil
}

func msString(ms float64) string {
	return time.Duration(ms * float64(time.Millisecond)).Round(time.Microsecond).String()
}

// findEvents returns the logged events whose trace ID equals id, or — when
// none matches exactly — those whose trace ID starts with id (operators
// paste prefixes).
func findEvents(dir, id string) ([]*eventlog.Event, error) {
	var exact, prefix []*eventlog.Event
	_, err := eventlog.Scan(dir, func(e *eventlog.Event) error {
		switch {
		case e.TraceID == id:
			exact = append(exact, e)
		case strings.HasPrefix(e.TraceID, id):
			prefix = append(prefix, e)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(exact) > 0 {
		return exact, nil
	}
	return prefix, nil
}

// runGrep dumps the events matching a trace ID (or unique prefix): the
// "find this query" primitive an exemplar or a flight record points at.
func runGrep(dir string, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("codlog grep", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	asJSON := fs.Bool("json", false, "dump matching events as pretty-printed JSON instead of text lines")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("usage: codlog -log DIR grep [-json] TRACE_ID")
	}
	id := fs.Arg(0)
	matches, err := findEvents(dir, id)
	if err != nil {
		return err
	}
	if len(matches) == 0 {
		return fmt.Errorf("no event with trace ID %s", id)
	}
	for _, e := range matches {
		if *asJSON {
			if err := writeEventJSON(out, e); err != nil {
				return err
			}
			continue
		}
		writeEventText(out, e)
		for _, st := range e.Steps {
			fmt.Fprintf(out, "  step %s/%s outcome=%s dur=%s", st.Variant, st.Kind, st.Outcome, time.Duration(st.DurNS))
			if st.Stages > 0 {
				fmt.Fprintf(out, " stages=%d gap=%.4f", st.Stages, st.Gap)
			}
			fmt.Fprintln(out)
		}
	}
	return nil
}
