package main

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/codsearch/cod"
	"github.com/codsearch/cod/internal/obs"
	"github.com/codsearch/cod/internal/obs/eventlog"
)

// writeLog persists events into a fresh log directory with sampling off.
func writeLog(t *testing.T, events ...*eventlog.Event) string {
	t.Helper()
	dir := t.TempDir()
	sink, err := eventlog.Open(eventlog.Options{Dir: dir, SampleRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		sink.Record(e)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func testEvent(i int, outcome string) *eventlog.Event {
	e := &eventlog.Event{
		TraceID: obs.SeedTraceID(uint64(i + 1)),
		Time:    time.Date(2026, 8, 8, 12, 0, i, 0, time.UTC),
		Op:      "/discover",
		Epoch:   3,
		Variant: "CODL",
		Pred:    "attr:1",
		Node:    int64(i),
		Attr:    1,
		Seed:    "7",
		Status:  200,
		Outcome: outcome,
		DurNS:   int64(i+1) * int64(time.Millisecond),
		Steps: []eventlog.Step{
			{Variant: "CODL", Kind: "weight", Outcome: "weighted", DurNS: 1000},
			{Variant: "CODL", Kind: "sample", Outcome: "cache_miss", DurNS: 2000},
		},
	}
	if outcome != eventlog.OutcomeOK {
		e.Status = 500
		e.Err = "boom"
	}
	return e
}

func runOut(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var sb strings.Builder
	err := run(context.Background(), args, &sb)
	return sb.String(), err
}

func TestTail(t *testing.T) {
	dir := writeLog(t, testEvent(0, eventlog.OutcomeOK), testEvent(1, eventlog.OutcomeOK), testEvent(2, eventlog.OutcomeError))
	out, err := runOut(t, "-log", dir, "tail")
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(out, "\n"); n != 3 {
		t.Fatalf("tail printed %d lines, want 3:\n%s", n, out)
	}
	for _, want := range []string{obs.SeedTraceID(1), "variant=CODL", "pred=attr:1", "epoch=3", `err="boom"`} {
		if !strings.Contains(out, want) {
			t.Errorf("tail output missing %q:\n%s", want, out)
		}
	}

	out, err = runOut(t, "-log", dir, "tail", "-n", "1")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "\n") != 1 || !strings.Contains(out, obs.SeedTraceID(3)) {
		t.Fatalf("tail -n 1 should print only the last event:\n%s", out)
	}
}

func TestTailFollowStopsOnContext(t *testing.T) {
	dir := writeLog(t, testEvent(0, eventlog.OutcomeOK))
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	var sb strings.Builder
	if err := run(ctx, []string{"-log", dir, "tail", "-f", "-poll", "20ms"}, &sb); err != nil {
		t.Fatalf("follow should end cleanly on context cancel: %v", err)
	}
	if !strings.Contains(sb.String(), obs.SeedTraceID(1)) {
		t.Fatalf("follow missed the existing event:\n%s", sb.String())
	}
}

func TestTopAndPercentiles(t *testing.T) {
	dir := writeLog(t, testEvent(0, eventlog.OutcomeOK), testEvent(1, eventlog.OutcomeOK), testEvent(2, eventlog.OutcomeError))

	out, err := runOut(t, "-log", dir, "top", "-by", "outcome")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "OUTCOME") || !strings.Contains(out, "ok") || !strings.Contains(out, "error") {
		t.Fatalf("top -by outcome output:\n%s", out)
	}
	if !strings.Contains(out, "3 event(s) in 1 file(s)") {
		t.Fatalf("top should report the scan summary:\n%s", out)
	}
	if _, err := runOut(t, "-log", dir, "top", "-by", "bogus"); err == nil {
		t.Fatal("top -by bogus should fail")
	}

	out, err = runOut(t, "-log", dir, "percentiles")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "CODL") || !strings.Contains(out, "attr:1") || !strings.Contains(out, "P99") {
		t.Fatalf("percentiles output:\n%s", out)
	}
}

func TestGrep(t *testing.T) {
	dir := writeLog(t, testEvent(0, eventlog.OutcomeOK), testEvent(1, eventlog.OutcomeOK))
	id := obs.SeedTraceID(2)

	out, err := runOut(t, "-log", dir, "grep", id)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "trace="+id) || strings.Contains(out, obs.SeedTraceID(1)) {
		t.Fatalf("grep should print exactly the matching event:\n%s", out)
	}
	if !strings.Contains(out, "step CODL/weight outcome=weighted") {
		t.Fatalf("grep should expand plan steps:\n%s", out)
	}

	// A prefix resolves too, and -json dumps the raw record.
	out, err = runOut(t, "-log", dir, "grep", "-json", id[:8])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"trace_id": "`+id+`"`) {
		t.Fatalf("grep -json output:\n%s", out)
	}

	if _, err := runOut(t, "-log", dir, "grep", "ffffffffffffffffffffffffffffffff"); err == nil {
		t.Fatal("grep of an unknown trace ID should fail")
	}
}

func TestRunDispatchErrors(t *testing.T) {
	if _, err := runOut(t, "tail"); err == nil || !strings.Contains(err.Error(), "-log") {
		t.Fatalf("missing -log should fail with guidance, got %v", err)
	}
	if _, err := runOut(t, "-log", t.TempDir(), "frobnicate"); err == nil || !strings.Contains(err.Error(), "unknown command") {
		t.Fatalf("unknown command error, got %v", err)
	}
	if _, err := runOut(t, "-log", t.TempDir()); err == nil {
		t.Fatal("bare invocation should print usage as an error")
	}
}

func TestReplayExprReconstruction(t *testing.T) {
	cases := []struct {
		e    eventlog.Event
		want string
	}{
		{eventlog.Event{Expr: "1 and node=4 and k=5", Node: 4}, "1 and node=4 and k=5"},
		{eventlog.Event{Expr: "lang", Node: 4}, "lang and node=4"},
		{eventlog.Event{Variant: "CODU", Node: 9}, "node=9 and variant=codu"},
		{eventlog.Event{Variant: "CODR", Node: 9, Attr: 2}, "2 and node=9 and variant=codr"},
		{eventlog.Event{Variant: "CODL", Node: 9, Attr: 2}, "2 and node=9"},
		{eventlog.Event{Variant: "CODL-", Node: 9, Attr: 2}, "2 and node=9"},
	}
	for _, c := range cases {
		got, err := replayExpr(&c.e)
		if err != nil {
			t.Errorf("replayExpr(%+v): %v", c.e, err)
			continue
		}
		if got != c.want {
			t.Errorf("replayExpr(%+v) = %q, want %q", c.e, got, c.want)
		}
	}
	for _, bad := range []eventlog.Event{
		{Node: -1},                           // nothing logged
		{Variant: "CODR", Node: 3, Attr: -1}, // CODR without an attribute
		{Variant: "batch", Node: 3},          // not a single-query variant
	} {
		if _, err := replayExpr(&bad); err == nil {
			t.Errorf("replayExpr(%+v) should fail", bad)
		}
	}
}

// TestReplayRoundTrip serves the acceptance criterion end to end in-process:
// a query executed the way codserve executes it is logged as a wide event,
// then `codlog replay` rebuilds the index from the same flags, re-runs the
// logged seed, and reports a byte-identical community with matching plan
// steps.
func TestReplayRoundTrip(t *testing.T) {
	g, err := cod.GenerateDataset("tiny", 42)
	if err != nil {
		t.Fatal(err)
	}
	s, err := cod.NewSearcherCtx(context.Background(), g, cod.Options{K: 2, Theta: 4, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	pq, err := s.Prepare("1 and node=0 and k=2")
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace()
	ctx := obs.WithRecorder(context.Background(), obs.NewRecorder(nil, tr))
	start := time.Now()
	com, err := pq.DiscoverCtx(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	ev := eventlog.New(tr, "/discover", start, time.Since(start), 200)
	ev.Expr = pq.Expr()
	ev.Node = 0
	ev.Result = &eventlog.Result{Found: com.Found, Rank: com.Rank, Size: len(com.Nodes), NodesFNV: eventlog.NodesSum(com.Nodes)}
	if ev.Seed == "" {
		t.Fatal("executed query left no seed on the trace")
	}
	dir := writeLog(t, ev)

	out, err := runOut(t, "-log", dir, "replay", "-dataset", "tiny", "-theta", "4", "-k", "2", "-seed", "42", ev.TraceID)
	if err != nil {
		t.Fatalf("replay diverged: %v\n%s", err, out)
	}
	for _, want := range []string{"result: byte-identical", "plan:", "step(s) match", "replay OK"} {
		if !strings.Contains(out, want) {
			t.Errorf("replay output missing %q:\n%s", want, out)
		}
	}

	// A wrong build seed must be detected, not silently accepted.
	out, err = runOut(t, "-log", dir, "replay", "-dataset", "tiny", "-theta", "4", "-k", "2", "-seed", "43", ev.TraceID)
	if err == nil {
		t.Fatalf("replay with a different index seed should diverge:\n%s", out)
	}
}
