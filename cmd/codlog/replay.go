package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/codsearch/cod"
	"github.com/codsearch/cod/internal/obs"
	"github.com/codsearch/cod/internal/obs/eventlog"
)

// writeEventJSON pretty-prints one event, the raw logged record.
func writeEventJSON(w io.Writer, e *eventlog.Event) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}

// replayExpr reconstructs the query expression to re-run for a logged event.
// Events from /discover?expr= carry the normalized expression verbatim;
// events from the legacy knob endpoints carry none, so the expression is
// rebuilt from the logged variant, node, and attribute.
func replayExpr(e *eventlog.Event) (string, error) {
	if e.Expr != "" {
		if strings.Contains(e.Expr, "node=") {
			return e.Expr, nil
		}
		if e.Node < 0 {
			return "", fmt.Errorf("event %s has expression %q but no logged query node", e.TraceID, e.Expr)
		}
		return fmt.Sprintf("%s and node=%d", e.Expr, e.Node), nil
	}
	if e.Node < 0 {
		return "", fmt.Errorf("event %s logs no expression and no query node; nothing to replay", e.TraceID)
	}
	switch e.Variant {
	case "CODU":
		return fmt.Sprintf("node=%d and variant=codu", e.Node), nil
	case "CODR":
		if e.Attr < 0 {
			return "", fmt.Errorf("event %s is CODR but logs no attribute", e.TraceID)
		}
		return fmt.Sprintf("%d and node=%d and variant=codr", e.Attr, e.Node), nil
	case "CODL", "CODL-":
		if e.Attr < 0 {
			return "", fmt.Errorf("event %s is %s but logs no attribute", e.TraceID, e.Variant)
		}
		return fmt.Sprintf("%d and node=%d", e.Attr, e.Node), nil
	}
	return "", fmt.Errorf("event %s: cannot reconstruct a query for variant %q", e.TraceID, e.Variant)
}

// stepSig reduces a step sequence to its replayable signature: the ordered
// (variant, kind, outcome) triples. Durations vary run to run, and
// index-swap steps belong to the serving process (an epoch flip mid-query),
// not to the query plan, so both are excluded from the comparison.
func stepSig(steps []eventlog.Step) []string {
	sig := make([]string, 0, len(steps))
	for _, s := range steps {
		if s.Variant == "index_swap" {
			continue
		}
		sig = append(sig, s.Variant+"/"+s.Kind+"="+s.Outcome)
	}
	return sig
}

func sigFromTrace(tr *obs.Trace) []string {
	recs := tr.Steps()
	steps := make([]eventlog.Step, len(recs))
	for i, r := range recs {
		steps[i] = eventlog.Step{Variant: r.Variant, Kind: r.Kind, Outcome: r.Outcome}
	}
	return stepSig(steps)
}

// runReplay re-executes a logged query against a locally built index and
// diffs the outcome against what was logged. The index build flags must
// match the serving process (same dataset or graph file, -k, -theta, -seed,
// -sample-cache, and adaptive settings), since those shape both the answer
// and the plan; the per-query randomness is replayed exactly from the
// event's logged seed.
func runReplay(ctx context.Context, dir string, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("codlog replay", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var (
		graphFile     = fs.String("graph", "", "graph file in cod text format (overrides -dataset)")
		datasetN      = fs.String("dataset", "cora", "built-in dataset name (must match the serving process)")
		k             = fs.Int("k", 5, "required influence rank k (must match)")
		theta         = fs.Int("theta", 10, "RR graphs per node (must match)")
		seed          = fs.Uint64("seed", 42, "index build seed (must match)")
		sampleCache   = fs.Int("sample-cache", 0, "per-attribute RR sample pools (must match)")
		adaptiveEps   = fs.Float64("adaptive-eps", 0.05, "adaptive sampling ε (must match)")
		adaptiveDelta = fs.Float64("adaptive-delta", 0, "adaptive sampling δ; > 0 enables staged evaluation (must match)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: codlog -log DIR replay [build flags] TRACE_ID")
	}
	id := fs.Arg(0)
	matches, err := findEvents(dir, id)
	if err != nil {
		return err
	}
	if len(matches) == 0 {
		return fmt.Errorf("no event with trace ID %s", id)
	}
	if len(matches) > 1 {
		return fmt.Errorf("trace ID prefix %s matches %d events; use the full ID", id, len(matches))
	}
	e := matches[0]

	expr, err := replayExpr(e)
	if err != nil {
		return err
	}
	if e.Seed == "" {
		return fmt.Errorf("event %s logs no per-query seed (pre-pipeline record?); cannot replay deterministically", e.TraceID)
	}
	qseed, err := strconv.ParseUint(e.Seed, 10, 64)
	if err != nil {
		return fmt.Errorf("event %s: bad seed %q: %v", e.TraceID, e.Seed, err)
	}

	g, err := loadGraph(*graphFile, *datasetN, *seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "replaying %s: expr=%q seed=%s\n", e.TraceID, expr, e.Seed)
	buildStart := time.Now()
	s, err := cod.NewSearcherCtx(ctx, g, cod.Options{
		K: *k, Theta: *theta, Seed: *seed,
		SampleCache: *sampleCache, CacheHierarchies: *sampleCache > 0,
		Adaptive: cod.AdaptiveOptions{Enabled: *adaptiveDelta > 0, Eps: *adaptiveEps, Delta: *adaptiveDelta},
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "index built: n=%d m=%d (%s)\n", g.N(), g.M(), time.Since(buildStart).Round(time.Millisecond))

	tr := obs.NewTrace()
	qctx := obs.WithRecorder(ctx, obs.NewRecorder(nil, tr))
	com, err := s.ReplaySeededCtx(qctx, expr, qseed)
	if err != nil {
		return fmt.Errorf("replay of %s failed: %w", e.TraceID, err)
	}

	// Diff 1: the community itself, via the same order-sensitive FNV
	// fingerprint the server logged.
	mismatches := 0
	if res := e.Result; res != nil {
		gotSum := eventlog.NodesSum(com.Nodes)
		if gotSum == res.NodesFNV && com.Found == res.Found && com.Rank == res.Rank && len(com.Nodes) == res.Size {
			fmt.Fprintf(out, "result: byte-identical (found=%t rank=%d size=%d nodes_fnv=%s)\n",
				com.Found, com.Rank, len(com.Nodes), gotSum)
		} else {
			mismatches++
			fmt.Fprintf(out, "result: MISMATCH\n")
			fmt.Fprintf(out, "  logged:   found=%t rank=%d size=%d nodes_fnv=%s\n", res.Found, res.Rank, res.Size, res.NodesFNV)
			fmt.Fprintf(out, "  replayed: found=%t rank=%d size=%d nodes_fnv=%s\n", com.Found, com.Rank, len(com.Nodes), gotSum)
		}
	} else {
		fmt.Fprintf(out, "result: event logs no result fingerprint (status %d); replay returned found=%t rank=%d size=%d\n",
			e.Status, com.Found, com.Rank, len(com.Nodes))
	}

	// Diff 2: the plan-step outcomes. Cache steps are compared too: a logged
	// cache_hit replaying as cache_miss (or vice versa) is a real divergence
	// in the serving configuration, worth surfacing.
	logged, replayed := stepSig(e.Steps), sigFromTrace(tr)
	if equalStrings(logged, replayed) {
		fmt.Fprintf(out, "plan: %d step(s) match\n", len(replayed))
	} else {
		mismatches++
		fmt.Fprintf(out, "plan: MISMATCH\n  logged:   %s\n  replayed: %s\n",
			strings.Join(logged, " "), strings.Join(replayed, " "))
	}
	if mismatches > 0 {
		return fmt.Errorf("replay of %s diverged (%d mismatch(es))", e.TraceID, mismatches)
	}
	fmt.Fprintln(out, "replay OK")
	return nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// loadGraph mirrors codserve's graph loading so replay rebuilds from the
// same inputs the serving process used.
func loadGraph(graphFile, datasetN string, seed uint64) (*cod.Graph, error) {
	if graphFile == "" {
		return cod.GenerateDataset(datasetN, seed)
	}
	f, err := os.Open(graphFile)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := cod.LoadGraph(f)
	if err != nil {
		return nil, fmt.Errorf("parsing %s: %w", graphFile, err)
	}
	return g, nil
}
