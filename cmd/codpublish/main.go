// Command codpublish runs the offline phase and publishes the resulting
// snapshot (graph + codindx2 index) to a blob store as one immutable epoch,
// for serving replicas to pick up with codserve -index-store. It is the
// builder half of the artifact-distribution contract (DESIGN.md §15): every
// artifact is CRC-recorded in a manifest, written with read-back
// verification, and the dataset's CURRENT pointer moves only after the whole
// epoch is in place.
//
//	codpublish -store /srv/cod-store -dataset cora -k 5
//	codpublish -store /srv/cod-store -dataset cora -graph data/mygraph.txt -epoch 7 -keep 3
//
// With -epoch 0 (the default) the next epoch number is derived from the
// store's CURRENT pointer. -keep N prunes all but the newest N epochs after
// a successful publish (the epoch CURRENT references always survives).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/codsearch/cod"
	"github.com/codsearch/cod/internal/blobstore"
)

func main() {
	var (
		storeDir  = flag.String("store", "", "blob store root directory (required)")
		dataset   = flag.String("dataset", "cora", "dataset name: the store namespace and, without -graph, the built-in dataset to generate")
		graphFile = flag.String("graph", "", "graph file in cod text format (overrides the built-in dataset)")
		epoch     = flag.Uint64("epoch", 0, "epoch number to publish (0 = one past the store's current epoch)")
		keep      = flag.Int("keep", 0, "after publishing, prune all but the newest N epochs (0 = keep everything)")
		k         = flag.Int("k", 5, "required influence rank k")
		theta     = flag.Int("theta", 10, "RR graphs per node (θ)")
		seed      = flag.Uint64("seed", 42, "random seed")
		workers   = flag.Int("workers", 0, "offline sampling workers (<=1 = sequential)")
		timeout   = flag.Duration("timeout", 10*time.Minute, "overall build+publish deadline")
	)
	flag.Parse()
	if err := run(*storeDir, *dataset, *graphFile, *epoch, *keep, *k, *theta, *seed, *workers, *timeout); err != nil {
		log.Fatal("codpublish: ", err)
	}
}

func run(storeDir, dataset, graphFile string, epoch uint64, keep, k, theta int, seed uint64, workers int, timeout time.Duration) error {
	if storeDir == "" {
		return fmt.Errorf("-store is required")
	}
	if !blobstore.ValidSegment(dataset) {
		return fmt.Errorf("invalid -dataset %q", dataset)
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	store, err := blobstore.NewFS(storeDir)
	if err != nil {
		return err
	}
	pol := blobstore.RetryPolicy{} // defaults: bounded attempts, capped backoff

	g, err := loadGraph(graphFile, dataset, seed)
	if err != nil {
		return err
	}
	log.Printf("graph loaded: n=%d m=%d attrs=%d", g.N(), g.M(), g.NumAttrs())

	if epoch == 0 {
		epoch, err = cod.NextEpoch(ctx, store, dataset, pol)
		if err != nil {
			return fmt.Errorf("deriving next epoch: %w", err)
		}
	}

	start := time.Now()
	s, err := cod.NewSearcherCtx(ctx, g, cod.Options{K: k, Theta: theta, Seed: seed, Workers: workers})
	if err != nil {
		return fmt.Errorf("offline phase: %w", err)
	}
	log.Printf("offline phase done in %v; index %.2f MB", time.Since(start).Round(time.Millisecond),
		float64(s.IndexBytes())/(1<<20))

	m, err := cod.PublishSnapshot(ctx, store, dataset, epoch, s, pol)
	if err != nil {
		return err
	}
	for _, a := range m.Artifacts {
		log.Printf("published %s (%d bytes, crc %08x)", blobstore.ArtifactKey(dataset, epoch, m.ParamsHash, a.Name), a.Bytes, a.CRC32)
	}
	log.Printf("epoch %d live: params hash %s, CURRENT updated", epoch, m.ParamsHash)

	if keep > 0 {
		removed, err := blobstore.Prune(ctx, store, dataset, keep, pol)
		if err != nil {
			return fmt.Errorf("pruning: %w", err)
		}
		for _, prefix := range removed {
			log.Printf("pruned %s", prefix)
		}
	}
	return nil
}

func loadGraph(graphFile, dataset string, seed uint64) (*cod.Graph, error) {
	if graphFile == "" {
		return cod.GenerateDataset(dataset, seed)
	}
	f, err := os.Open(graphFile)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := cod.LoadGraph(f)
	if err != nil {
		return nil, fmt.Errorf("parsing %s: %w", graphFile, err)
	}
	return g, nil
}
