package main

import (
	"context"
	"testing"
	"time"

	"github.com/codsearch/cod"
	"github.com/codsearch/cod/internal/blobstore"
)

func TestRunPublishesAndPrunes(t *testing.T) {
	dir := t.TempDir()
	// Two auto-numbered publishes, then one with -keep 1: only the newest
	// epoch survives and CURRENT still resolves.
	for i := 0; i < 2; i++ {
		if err := run(dir, "tiny", "", 0, 0, 4, 4, 7, 0, time.Minute); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	if err := run(dir, "tiny", "", 0, 1, 4, 4, 7, 0, time.Minute); err != nil {
		t.Fatalf("publish with keep: %v", err)
	}
	store, err := blobstore.NewFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, cur, err := cod.FetchSnapshot(context.Background(), store, "tiny", cod.Options{}, blobstore.RetryPolicy{})
	if err != nil {
		t.Fatalf("FetchSnapshot: %v", err)
	}
	if cur.Epoch != 3 {
		t.Fatalf("CURRENT epoch %d, want 3", cur.Epoch)
	}
	if s.Graph().N() == 0 {
		t.Fatal("empty graph")
	}
	keys, err := store.List(context.Background(), "tiny/epoch-")
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range keys {
		if got := blobstore.EpochPrefix("tiny", 3, cur.ParamsHash); len(key) < len(got) || key[:len(got)] != got {
			t.Fatalf("stale key survived prune: %s", key)
		}
	}
}

func TestRunValidatesInput(t *testing.T) {
	if err := run("", "tiny", "", 0, 0, 4, 4, 7, 0, time.Minute); err == nil {
		t.Fatal("missing -store accepted")
	}
	if err := run(t.TempDir(), "bad/name", "", 0, 0, 4, 4, 7, 0, time.Minute); err == nil {
		t.Fatal("invalid dataset accepted")
	}
}
