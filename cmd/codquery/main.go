// Command codquery answers a single COD query on a graph file or a built-in
// synthetic dataset and prints the characteristic community with its
// quality measures.
//
// Usage:
//
//	codquery -dataset cora -q 42 -attr 1 -k 5
//	codquery -graph mygraph.txt -q 10 -attr 0 -method codr
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/codsearch/cod"
	"github.com/codsearch/cod/internal/obs"
)

func main() {
	var (
		graphFile     = flag.String("graph", "", "graph file in cod text format (overrides -dataset)")
		datasetN      = flag.String("dataset", "cora", "built-in dataset name")
		q             = flag.Int("q", 0, "query node id")
		attr          = flag.Int("attr", -1, "query attribute id (-1: first attribute of q)")
		k             = flag.Int("k", 5, "required influence rank k")
		theta         = flag.Int("theta", 10, "RR graphs per node (θ)")
		seed          = flag.Uint64("seed", 42, "random seed")
		method        = flag.String("method", "codl", "codl|codu|codr")
		timeout       = flag.Duration("timeout", 0, "overall deadline for offline build + query (0 = none)")
		trace         = flag.Bool("trace", false, "print the query's plan-step trace (trace ID, step outcomes, stage spans)")
		adaptiveEps   = flag.Float64("adaptive-eps", 0.05, "indifference width ε for bounded-error adaptive sampling (used when -adaptive-delta > 0)")
		adaptiveDelta = flag.Float64("adaptive-delta", 0, "certification failure probability δ; > 0 enables bounded-error adaptive sampling")
	)
	flag.Parse()
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	adaptive := cod.AdaptiveOptions{Enabled: *adaptiveDelta > 0, Eps: *adaptiveEps, Delta: *adaptiveDelta}
	if err := run(ctx, *graphFile, *datasetN, *q, *attr, *k, *theta, *seed, *method, *trace, adaptive); err != nil {
		var ce *cod.CanceledError
		if errors.As(err, &ce) {
			fmt.Fprintf(os.Stderr, "codquery: deadline expired during %s after %d/%d samples\n",
				ce.Op, ce.Done, ce.Total)
		} else {
			fmt.Fprintln(os.Stderr, "codquery:", err)
		}
		os.Exit(1)
	}
}

func run(ctx context.Context, graphFile, datasetN string, q, attr, k, theta int, seed uint64, method string, trace bool, adaptive cod.AdaptiveOptions) error {
	var (
		g   *cod.Graph
		err error
	)
	if graphFile != "" {
		f, err := os.Open(graphFile)
		if err != nil {
			return err
		}
		defer f.Close()
		g, err = cod.LoadGraph(f)
		if err != nil {
			return err
		}
	} else {
		g, err = cod.GenerateDataset(datasetN, seed)
		if err != nil {
			return err
		}
	}
	if q < 0 || q >= g.N() {
		return fmt.Errorf("query node %d out of range [0,%d)", q, g.N())
	}
	node := cod.NodeID(q)
	if attr < 0 {
		attrs := g.Attrs(node)
		if len(attrs) == 0 {
			return fmt.Errorf("node %d has no attributes; pass -attr", q)
		}
		attr = int(attrs[0])
	}

	fmt.Printf("graph: n=%d m=%d attrs=%d\n", g.N(), g.M(), g.NumAttrs())
	start := time.Now()
	s, err := cod.NewSearcherCtx(ctx, g, cod.Options{K: k, Theta: theta, Seed: seed, Adaptive: adaptive})
	if err != nil {
		return err
	}
	fmt.Printf("offline (clustering + HIMOR): %v, index %0.2f MB\n",
		time.Since(start).Round(time.Millisecond), float64(s.IndexBytes())/(1<<20))

	// -trace attaches a trace-only Recorder for the query: the printed
	// breakdown is the same flight-recorder rendering codserve serves on
	// /debug/queries?format=text. Instrumentation never changes the answer.
	var tr *obs.Trace
	qctx := ctx
	if trace {
		tr = obs.NewTrace()
		qctx = obs.WithRecorder(ctx, obs.NewRecorder(nil, tr))
	}
	start = time.Now()
	var com cod.Community
	switch method {
	case "codl":
		com, err = s.DiscoverCtx(qctx, node, cod.AttrID(attr))
	case "codu":
		com, err = s.DiscoverUnattributedCtx(qctx, node)
	case "codr":
		com, err = s.DiscoverGlobalCtx(qctx, node, cod.AttrID(attr))
	default:
		return fmt.Errorf("unknown method %q", method)
	}
	elapsed := time.Since(start)
	if tr != nil {
		fmt.Println("query trace:")
		obs.NewQueryRecord(tr, method, fmt.Sprintf("q=%d attr=%d", q, attr), 0, start, elapsed, err).WriteText(os.Stdout)
	}
	if err != nil {
		return err
	}

	if !com.Found {
		fmt.Printf("no characteristic community: node %d is not top-%d influential in any hierarchy community (%v)\n", q, k, elapsed.Round(time.Microsecond))
		return nil
	}
	fmt.Printf("characteristic community of node %d (attr %d, k=%d, %s): %d nodes in %v\n",
		q, attr, k, method, com.Size(), elapsed.Round(time.Microsecond))
	fmt.Printf("  topology density  ρ = %.4f\n", g.TopologyDensity(com.Nodes))
	fmt.Printf("  attribute density φ = %.4f\n", g.AttributeDensity(com.Nodes, cod.AttrID(attr)))
	fmt.Printf("  conductance         = %.4f\n", g.Conductance(com.Nodes))
	if com.FromIndex {
		fmt.Println("  answered directly from the HIMOR index")
	}
	if com.Size() <= 40 {
		fmt.Printf("  members: %v\n", com.Nodes)
	}
	return nil
}
