// Command codquery answers a single COD query on a graph file or a built-in
// synthetic dataset and prints the characteristic community with its
// quality measures.
//
// The -q flag accepts either a numeric node id (legacy single-attribute
// mode, paired with -attr and -method) or a query expression in the
// attribute-predicate DSL, which carries its own node= knob:
//
//	codquery -dataset cora -q 42 -attr 1 -k 5
//	codquery -graph mygraph.txt -q 10 -attr 0 -method codr
//	codquery -dataset cora -q 'Neural_Networks and (Theory or 4) and size>=10 and node=42'
//	codquery -dataset tiny -q 'ML and node=5' -json
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"github.com/codsearch/cod"
	"github.com/codsearch/cod/internal/obs"
)

func main() {
	var o runOpts
	flag.StringVar(&o.graphFile, "graph", "", "graph file in cod text format (overrides -dataset)")
	flag.StringVar(&o.dataset, "dataset", "cora", "built-in dataset name")
	flag.StringVar(&o.query, "q", "0", "query node id, or a query expression (predicate, filters, node=/k=/variant= knobs)")
	flag.IntVar(&o.attr, "attr", -1, "query attribute id for a numeric -q (-1: first attribute of q)")
	flag.IntVar(&o.k, "k", 5, "required influence rank k")
	flag.IntVar(&o.theta, "theta", 10, "RR graphs per node (θ)")
	flag.Uint64Var(&o.seed, "seed", 42, "random seed")
	flag.StringVar(&o.method, "method", "codl", "codl|codu|codr (numeric -q only; expressions use variant=)")
	flag.BoolVar(&o.trace, "trace", false, "print the query's plan-step trace (trace ID, step outcomes, stage spans)")
	flag.BoolVar(&o.jsonOut, "json", false, "emit the result as one JSON object (community, rank, trace id)")
	timeout := flag.Duration("timeout", 0, "overall deadline for offline build + query (0 = none)")
	adaptiveEps := flag.Float64("adaptive-eps", 0.05, "indifference width ε for bounded-error adaptive sampling (used when -adaptive-delta > 0)")
	adaptiveDelta := flag.Float64("adaptive-delta", 0, "certification failure probability δ; > 0 enables bounded-error adaptive sampling")
	flag.Parse()
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	o.adaptive = cod.AdaptiveOptions{Enabled: *adaptiveDelta > 0, Eps: *adaptiveEps, Delta: *adaptiveDelta}
	if err := run(ctx, o); err != nil {
		var ce *cod.CanceledError
		var pe *cod.ParseError
		switch {
		case errors.As(err, &ce):
			fmt.Fprintf(os.Stderr, "codquery: deadline expired during %s after %d/%d samples\n",
				ce.Op, ce.Done, ce.Total)
		case errors.As(err, &pe):
			fmt.Fprintf(os.Stderr, "codquery: %v\n%s\n", pe, pe.Caret())
		default:
			fmt.Fprintln(os.Stderr, "codquery:", err)
		}
		os.Exit(1)
	}
}

// runOpts bundles codquery's invocation: flags plus the output sink (nil =
// stdout), so tests drive run without a process.
type runOpts struct {
	graphFile string
	dataset   string
	query     string // numeric node id or DSL expression
	attr      int
	k         int
	theta     int
	seed      uint64
	method    string
	trace     bool
	jsonOut   bool
	adaptive  cod.AdaptiveOptions
	out       io.Writer
}

// jsonResult is the -json output shape: one object per query.
type jsonResult struct {
	Query       int          `json:"query"`
	Expr        string       `json:"expr,omitempty"`
	Method      string       `json:"method"`
	Found       bool         `json:"found"`
	Rank        int          `json:"rank,omitempty"`
	TraceID     string       `json:"trace_id"`
	Size        int          `json:"size"`
	Nodes       []cod.NodeID `json:"nodes,omitempty"`
	Density     float64      `json:"density"`
	AttrDensity *float64     `json:"attr_density,omitempty"`
	Conductance float64      `json:"conductance"`
	FromIndex   bool         `json:"from_index,omitempty"`
	ElapsedMS   float64      `json:"elapsed_ms"`
	Adaptive    *adaptiveOut `json:"adaptive,omitempty"`
}

// adaptiveOut surfaces a bounded-error staged run's realized statistics:
// the stage the rank-k decision landed on, the certified normalized gap
// (the realized ε), whether it stopped early, and the RR samples it
// actually consumed against the full budget it was allowed.
type adaptiveOut struct {
	Stages        int     `json:"stages"`
	Gap           float64 `json:"gap"`
	EarlyStop     bool    `json:"early_stop"`
	SamplesUsed   int64   `json:"samples_used"`
	SamplesBudget int64   `json:"samples_budget"`
}

// adaptiveStats extracts the staged sample step's stats from the trace (nil
// when the query ran no staged step — adaptive off, or answered by an index
// probe before sampling).
func adaptiveStats(tr *obs.Trace, qm *obs.QueryMetrics) *adaptiveOut {
	if tr == nil {
		return nil
	}
	for _, st := range tr.Steps() {
		if st.Stages == 0 {
			continue
		}
		a := &adaptiveOut{Stages: st.Stages, Gap: st.Gap, EarlyStop: st.Outcome == "early_stop"}
		if qm != nil {
			a.SamplesUsed = qm.AdaptiveSamplesUsed.Value()
			a.SamplesBudget = qm.AdaptiveSamplesBudget.Value()
		}
		return a
	}
	return nil
}

func run(ctx context.Context, o runOpts) error {
	out := o.out
	if out == nil {
		out = os.Stdout
	}
	var (
		g   *cod.Graph
		err error
	)
	if o.graphFile != "" {
		f, err := os.Open(o.graphFile)
		if err != nil {
			return err
		}
		defer f.Close()
		g, err = cod.LoadGraph(f)
		if err != nil {
			return err
		}
	} else {
		g, err = cod.GenerateDataset(o.dataset, o.seed)
		if err != nil {
			return err
		}
	}

	// Dual-mode -q: an integer is the legacy node id; anything else is a
	// query expression (mode decided before any offline work).
	nodeArg, nodeErr := strconv.Atoi(o.query)
	legacy := nodeErr == nil
	attr := o.attr
	if legacy {
		if nodeArg < 0 || nodeArg >= g.N() {
			return fmt.Errorf("query node %d out of range [0,%d)", nodeArg, g.N())
		}
		if attr < 0 {
			attrs := g.Attrs(cod.NodeID(nodeArg))
			if len(attrs) == 0 {
				return fmt.Errorf("node %d has no attributes; pass -attr", nodeArg)
			}
			attr = int(attrs[0])
		}
		switch o.method {
		case "codl", "codu", "codr":
		default:
			return fmt.Errorf("unknown method %q", o.method)
		}
	}

	if !o.jsonOut {
		fmt.Fprintf(out, "graph: n=%d m=%d attrs=%d\n", g.N(), g.M(), g.NumAttrs())
	}
	start := time.Now()
	s, err := cod.NewSearcherCtx(ctx, g, cod.Options{K: o.k, Theta: o.theta, Seed: o.seed, Adaptive: o.adaptive})
	if err != nil {
		return err
	}
	if !o.jsonOut {
		fmt.Fprintf(out, "offline (clustering + HIMOR): %v, index %0.2f MB\n",
			time.Since(start).Round(time.Millisecond), float64(s.IndexBytes())/(1<<20))
	}

	method, expr := o.method, ""
	var pq *cod.PreparedQuery
	node := cod.NodeID(nodeArg)
	if !legacy {
		if pq, err = s.Prepare(o.query); err != nil {
			return err
		}
		n, ok := pq.Node()
		if !ok {
			return fmt.Errorf("query expression needs a node= knob (e.g. %q)", o.query+" and node=0")
		}
		node, expr = n, pq.Expr()
		method = toLowerASCII(pq.Variant())
	}

	// The trace is attached for -trace (printed breakdown) and for -json
	// (trace id field); instrumentation never changes the answer. The
	// metrics bundle rides along on a private registry so adaptive runs can
	// report their realized sample budget — it sees only this query.
	var tr *obs.Trace
	var qm *obs.QueryMetrics
	qctx := ctx
	if o.trace || o.jsonOut {
		tr = obs.NewTrace()
		qm = obs.NewQueryMetrics(obs.NewRegistry())
		qctx = obs.WithRecorder(ctx, obs.NewRecorder(qm, tr))
	}
	start = time.Now()
	var com cod.Community
	if pq != nil {
		com, err = pq.DiscoverCtx(qctx, node)
	} else {
		switch method {
		case "codl":
			com, err = s.DiscoverCtx(qctx, node, cod.AttrID(attr))
		case "codu":
			com, err = s.DiscoverUnattributedCtx(qctx, node)
		case "codr":
			com, err = s.DiscoverGlobalCtx(qctx, node, cod.AttrID(attr))
		}
	}
	elapsed := time.Since(start)
	if o.trace && tr != nil {
		fmt.Fprintln(out, "query trace:")
		detail := fmt.Sprintf("q=%d attr=%d", node, attr)
		if expr != "" {
			detail = fmt.Sprintf("q=%d expr=%s", node, expr)
		}
		obs.NewQueryRecord(tr, method, detail, 0, start, elapsed, err).WriteText(out)
		if a := adaptiveStats(tr, qm); a != nil {
			fmt.Fprintf(out, "adaptive: stages=%d realized_eps=%.4f early_stop=%t samples=%d/%d",
				a.Stages, a.Gap, a.EarlyStop, a.SamplesUsed, a.SamplesBudget)
			if a.SamplesBudget > 0 {
				fmt.Fprintf(out, " (%d%% of budget)", 100*a.SamplesUsed/a.SamplesBudget)
			}
			fmt.Fprintln(out)
		}
	}
	if err != nil {
		// Partial progress surfaces uniformly for every variant: the typed
		// *cod.CanceledError (with done/total sample counts) propagates to
		// main's printer whether the query ran CODL, CODU, CODR or a staged
		// adaptive plan.
		return err
	}

	if o.jsonOut {
		res := jsonResult{Query: int(node), Expr: expr, Method: method, Found: com.Found,
			Rank: com.Rank, TraceID: tr.ID(), Size: com.Size(), Nodes: com.Nodes,
			FromIndex: com.FromIndex, ElapsedMS: float64(elapsed.Microseconds()) / 1000,
			Adaptive: adaptiveStats(tr, qm)}
		if com.Found {
			res.Density = g.TopologyDensity(com.Nodes)
			res.Conductance = g.Conductance(com.Nodes)
			if legacy {
				ad := g.AttributeDensity(com.Nodes, cod.AttrID(attr))
				res.AttrDensity = &ad
			}
		}
		enc := json.NewEncoder(out)
		return enc.Encode(res)
	}

	if !com.Found {
		fmt.Fprintf(out, "no characteristic community: node %d is not top-%d influential in any hierarchy community (%v)\n", node, o.k, elapsed.Round(time.Microsecond))
		return nil
	}
	if expr != "" {
		fmt.Fprintf(out, "characteristic community of node %d (query %s, %s): %d nodes in %v\n",
			node, expr, method, com.Size(), elapsed.Round(time.Microsecond))
	} else {
		fmt.Fprintf(out, "characteristic community of node %d (attr %d, k=%d, %s): %d nodes in %v\n",
			node, attr, o.k, method, com.Size(), elapsed.Round(time.Microsecond))
	}
	fmt.Fprintf(out, "  topology density  ρ = %.4f\n", g.TopologyDensity(com.Nodes))
	if legacy {
		fmt.Fprintf(out, "  attribute density φ = %.4f\n", g.AttributeDensity(com.Nodes, cod.AttrID(attr)))
	}
	fmt.Fprintf(out, "  conductance         = %.4f\n", g.Conductance(com.Nodes))
	if com.Rank > 0 {
		fmt.Fprintf(out, "  influence rank      = %d\n", com.Rank)
	}
	if com.FromIndex {
		fmt.Fprintln(out, "  answered directly from the HIMOR index")
	}
	if com.Size() <= 40 {
		fmt.Fprintf(out, "  members: %v\n", com.Nodes)
	}
	return nil
}

func toLowerASCII(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}
