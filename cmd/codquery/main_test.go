package main

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/codsearch/cod"
)

func TestRunOnBuiltinDataset(t *testing.T) {
	if err := run(context.Background(), "", "tiny", 5, -1, 5, 3, 7, "codl", false, cod.AdaptiveOptions{}); err != nil {
		t.Fatalf("codl run: %v", err)
	}
	if err := run(context.Background(), "", "tiny", 5, 0, 5, 3, 7, "codu", false, cod.AdaptiveOptions{}); err != nil {
		t.Fatalf("codu run: %v", err)
	}
	if err := run(context.Background(), "", "tiny", 5, 0, 5, 3, 7, "codr", false, cod.AdaptiveOptions{}); err != nil {
		t.Fatalf("codr run: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(context.Background(), "", "no-such-dataset", 0, 0, 5, 3, 7, "codl", false, cod.AdaptiveOptions{}); err == nil {
		t.Error("unknown dataset accepted")
	}
	if err := run(context.Background(), "", "tiny", 10_000, 0, 5, 3, 7, "codl", false, cod.AdaptiveOptions{}); err == nil {
		t.Error("out-of-range query node accepted")
	}
	if err := run(context.Background(), "", "tiny", 5, 0, 5, 3, 7, "warp", false, cod.AdaptiveOptions{}); err == nil {
		t.Error("unknown method accepted")
	}
	if err := run(context.Background(), filepath.Join(t.TempDir(), "absent.txt"), "", 0, 0, 5, 3, 7, "codl", false, cod.AdaptiveOptions{}); err == nil {
		t.Error("missing graph file accepted")
	}
}

func TestRunOnGraphFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	content := "cod-graph 1\n4 4 1 0\ne 0 1\ne 1 2\ne 2 3\ne 0 2\na 0 0\na 1 0\na 2 0\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), path, "", 0, 0, 2, 20, 1, "codl", false, cod.AdaptiveOptions{}); err != nil {
		t.Fatalf("graph file run: %v", err)
	}
	// node without attributes and no -attr
	if err := run(context.Background(), path, "", 3, -1, 2, 20, 1, "codl", false, cod.AdaptiveOptions{}); err == nil {
		t.Error("attribute-less node without -attr accepted")
	}
}

// TestRunTimeoutSurfacesCancellation locks the -timeout contract: an expired
// deadline aborts the run with an error wrapping the context error, so main
// can distinguish a deadline from a bad query. (The typed *cod.CanceledError
// partial-progress shape for the query phase is locked by the root package's
// ctx tests; which stage reports first depends on where the deadline lands.)
func TestRunTimeoutSurfacesCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(ctx, "", "tiny", 5, -1, 5, 3, 7, "codl", false, cod.AdaptiveOptions{})
	if err == nil {
		t.Fatal("canceled run returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v (%T) does not wrap context.Canceled", err, err)
	}
}
