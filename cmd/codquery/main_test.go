package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunOnBuiltinDataset(t *testing.T) {
	if err := run("", "tiny", 5, -1, 5, 3, 7, "codl"); err != nil {
		t.Fatalf("codl run: %v", err)
	}
	if err := run("", "tiny", 5, 0, 5, 3, 7, "codu"); err != nil {
		t.Fatalf("codu run: %v", err)
	}
	if err := run("", "tiny", 5, 0, 5, 3, 7, "codr"); err != nil {
		t.Fatalf("codr run: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "no-such-dataset", 0, 0, 5, 3, 7, "codl"); err == nil {
		t.Error("unknown dataset accepted")
	}
	if err := run("", "tiny", 10_000, 0, 5, 3, 7, "codl"); err == nil {
		t.Error("out-of-range query node accepted")
	}
	if err := run("", "tiny", 5, 0, 5, 3, 7, "warp"); err == nil {
		t.Error("unknown method accepted")
	}
	if err := run(filepath.Join(t.TempDir(), "absent.txt"), "", 0, 0, 5, 3, 7, "codl"); err == nil {
		t.Error("missing graph file accepted")
	}
}

func TestRunOnGraphFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	content := "cod-graph 1\n4 4 1 0\ne 0 1\ne 1 2\ne 2 3\ne 0 2\na 0 0\na 1 0\na 2 0\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, "", 0, 0, 2, 20, 1, "codl"); err != nil {
		t.Fatalf("graph file run: %v", err)
	}
	// node without attributes and no -attr
	if err := run(path, "", 3, -1, 2, 20, 1, "codl"); err == nil {
		t.Error("attribute-less node without -attr accepted")
	}
}
