package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/codsearch/cod"
)

// opts builds a runOpts with the defaults the tests share; tests override
// fields inline.
func opts(q string) runOpts {
	return runOpts{dataset: "tiny", query: q, attr: -1, k: 5, theta: 3, seed: 7, method: "codl"}
}

func TestRunOnBuiltinDataset(t *testing.T) {
	if err := run(context.Background(), opts("5")); err != nil {
		t.Fatalf("codl run: %v", err)
	}
	o := opts("5")
	o.attr, o.method = 0, "codu"
	if err := run(context.Background(), o); err != nil {
		t.Fatalf("codu run: %v", err)
	}
	o.method = "codr"
	if err := run(context.Background(), o); err != nil {
		t.Fatalf("codr run: %v", err)
	}
}

func TestRunExpressionQuery(t *testing.T) {
	var buf bytes.Buffer
	o := opts("ML and node=5")
	o.out = &buf
	if err := run(context.Background(), o); err != nil {
		t.Fatalf("expression run: %v", err)
	}
	// The banner echoes the canonical expression ("ML" resolves to attr 0).
	if got := buf.String(); !strings.Contains(got, "query 0 and node=5") && !strings.Contains(got, "no characteristic community") {
		t.Errorf("output mentions neither the query expression nor a miss:\n%s", got)
	}

	buf.Reset()
	o = opts("(ML or DB) and size>=1 and node=5 and variant=codr")
	o.out, o.trace = &buf, true
	if err := run(context.Background(), o); err != nil {
		t.Fatalf("compound expression run: %v", err)
	}
	if got := buf.String(); !strings.Contains(got, "query trace:") {
		t.Errorf("-trace output missing trace section:\n%s", got)
	}
}

func TestRunExpressionErrors(t *testing.T) {
	// Syntax error surfaces as a *cod.ParseError so main prints the caret.
	err := run(context.Background(), opts("ML AND"))
	var pe *cod.ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("malformed expression returned %v (%T), want *cod.ParseError", err, err)
	}
	if pe.Caret() == "" {
		t.Error("ParseError has no caret rendering")
	}
	// Expressions must carry node= (the -q flag holds the expression).
	if err := run(context.Background(), opts("ML and size>=2")); err == nil || !strings.Contains(err.Error(), "node=") {
		t.Errorf("expression without node= returned %v, want node= hint", err)
	}
}

func TestRunJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	o := opts("5")
	o.jsonOut, o.out = true, &buf
	if err := run(context.Background(), o); err != nil {
		t.Fatalf("-json run: %v", err)
	}
	var res jsonResult
	if err := json.Unmarshal(buf.Bytes(), &res); err != nil {
		t.Fatalf("-json output is not one JSON object: %v\n%s", err, buf.String())
	}
	if res.Query != 5 || res.Method != "codl" {
		t.Errorf("json query/method = %d/%q, want 5/codl", res.Query, res.Method)
	}
	if res.TraceID == "" {
		t.Error("json output has no trace_id")
	}
	if res.Found {
		if res.Size != len(res.Nodes) || res.Size == 0 {
			t.Errorf("json size %d does not match %d nodes", res.Size, len(res.Nodes))
		}
		if res.Rank < 1 {
			t.Errorf("found community has rank %d, want >= 1", res.Rank)
		}
		if res.AttrDensity == nil {
			t.Error("legacy-mode json output missing attr_density")
		}
	}

	// Expression mode: expr echoed canonically, attr_density omitted for
	// compound predicates.
	buf.Reset()
	o = opts("(ML or DB) and node=5")
	o.jsonOut, o.out = true, &buf
	if err := run(context.Background(), o); err != nil {
		t.Fatalf("-json expression run: %v", err)
	}
	var res2 jsonResult
	if err := json.Unmarshal(buf.Bytes(), &res2); err != nil {
		t.Fatalf("bad json: %v\n%s", err, buf.String())
	}
	if res2.Expr != "(0|1) and node=5" {
		t.Errorf("json expr = %q, want canonical %q", res2.Expr, "(0|1) and node=5")
	}
	if res2.AttrDensity != nil {
		t.Error("compound-predicate json output carries attr_density")
	}
	if res2.TraceID == "" {
		t.Error("expression json output has no trace_id")
	}
}

func TestRunErrors(t *testing.T) {
	o := opts("0")
	o.dataset = "no-such-dataset"
	if err := run(context.Background(), o); err == nil {
		t.Error("unknown dataset accepted")
	}
	if err := run(context.Background(), opts("10000")); err == nil {
		t.Error("out-of-range query node accepted")
	}
	o = opts("5")
	o.attr, o.method = 0, "warp"
	if err := run(context.Background(), o); err == nil {
		t.Error("unknown method accepted")
	}
	o = opts("0")
	o.graphFile = filepath.Join(t.TempDir(), "absent.txt")
	if err := run(context.Background(), o); err == nil {
		t.Error("missing graph file accepted")
	}
}

func TestRunOnGraphFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	content := "cod-graph 1\n4 4 1 0\ne 0 1\ne 1 2\ne 2 3\ne 0 2\na 0 0\na 1 0\na 2 0\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	o := runOpts{graphFile: path, query: "0", attr: 0, k: 2, theta: 20, seed: 1, method: "codl"}
	if err := run(context.Background(), o); err != nil {
		t.Fatalf("graph file run: %v", err)
	}
	// node without attributes and no -attr
	o.query, o.attr = "3", -1
	if err := run(context.Background(), o); err == nil {
		t.Error("attribute-less node without -attr accepted")
	}
}

// TestRunTimeoutSurfacesCancellation locks the -timeout contract for every
// variant: an expired deadline aborts the run with an error wrapping the
// context error, so main can distinguish a deadline from a bad query. (The
// typed *cod.CanceledError partial-progress shape for the query phase is
// locked by the root package's ctx tests; which stage reports first depends
// on where the deadline lands.)
func TestRunTimeoutSurfacesCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, tc := range []struct {
		name string
		o    runOpts
	}{
		{"codl", opts("5")},
		{"codu", func() runOpts { o := opts("5"); o.attr, o.method = 0, "codu"; return o }()},
		{"codr", func() runOpts { o := opts("5"); o.attr, o.method = 0, "codr"; return o }()},
		{"expr", opts("ML and node=5")},
	} {
		err := run(ctx, tc.o)
		if err == nil {
			t.Fatalf("%s: canceled run returned no error", tc.name)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: error %v (%T) does not wrap context.Canceled", tc.name, err, err)
		}
	}
}
