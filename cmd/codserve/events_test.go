package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"

	"github.com/codsearch/cod/internal/obs/eventlog"
)

// TestQueryEventPipeline walks the full event path: a served query becomes
// one durable wide event, feeds the /debug/querystats aggregator, and shows
// up as an exemplar on the /metrics latency histogram.
func TestQueryEventPipeline(t *testing.T) {
	dir := t.TempDir()
	sink, err := eventlog.Open(eventlog.Options{Dir: dir, SampleRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	h, g := testHandler(t, Config{Events: sink})
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	q, attr := attributedQuery(t, g)

	// One expression-mode query and one legacy knob query.
	expr := attr + " and node=" + q
	var disc discoverResponse
	getJSON(t, srv.URL+"/discover?q="+url.QueryEscape(expr), http.StatusOK, &disc)
	getJSON(t, srv.URL+"/discover?q="+q+"&attr="+attr+"&method=codu", http.StatusOK, &disc)

	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	var events []*eventlog.Event
	st, err := eventlog.Scan(dir, func(e *eventlog.Event) error {
		events = append(events, e)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Torn != 0 || st.Corrupt != 0 || len(events) != 2 {
		t.Fatalf("scan: %d events (%d torn, %d corrupt), want 2 clean", len(events), st.Torn, st.Corrupt)
	}

	ev := events[0]
	if ev.TraceID == "" || ev.Seed == "" {
		t.Errorf("event lost its identity: trace=%q seed=%q", ev.TraceID, ev.Seed)
	}
	if ev.Op != "/discover" || ev.Status != 200 || ev.Outcome != eventlog.OutcomeOK {
		t.Errorf("event envelope = %s/%d/%s, want /discover/200/ok", ev.Op, ev.Status, ev.Outcome)
	}
	if ev.Variant != "CODL" && ev.Variant != "CODL-" {
		t.Errorf("expression query variant = %q, want CODL or CODL-", ev.Variant)
	}
	if !strings.Contains(ev.Expr, "node="+q) {
		t.Errorf("expression query event expr = %q, want the normalized expression", ev.Expr)
	}
	if ev.Pred != "attr:"+attr {
		t.Errorf("pred key = %q, want attr:%s", ev.Pred, attr)
	}
	if node, _ := strconv.Atoi(q); ev.Node != int64(node) {
		t.Errorf("event node = %d, want %s", ev.Node, q)
	}
	if len(ev.Steps) == 0 {
		t.Error("event carries no plan steps")
	}
	if ev.Result == nil || len(ev.Result.NodesFNV) != 16 {
		t.Errorf("event result = %+v, want a 16-hex community fingerprint", ev.Result)
	}
	if events[1].Variant != "CODU" || events[1].Pred != "none" {
		t.Errorf("legacy codu event = variant %q pred %q, want CODU/none", events[1].Variant, events[1].Pred)
	}

	// The streaming aggregator digests the same events.
	var stats struct {
		Groups []eventlog.GroupStats `json:"groups"`
	}
	getJSON(t, srv.URL+"/debug/querystats", http.StatusOK, &stats)
	if len(stats.Groups) != 2 {
		t.Fatalf("querystats groups = %d, want 2 (CODL + CODU)", len(stats.Groups))
	}
	for _, grp := range stats.Groups {
		if grp.Count != 1 || len(grp.Exemplars) == 0 {
			t.Errorf("group %+v missing counts or exemplars", grp)
		}
	}

	// /metrics renders the histogram with OpenMetrics-style exemplar
	// comments plus the sink's own gauges.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(body)
	for _, want := range []string{
		"# TYPE cod_query_event_seconds histogram",
		`cod_query_event_seconds_bucket{variant="` + ev.Variant + `"`,
		`# {trace_id="` + ev.TraceID + `"}`,
		"cod_query_events_written 2",
		"cod_query_events_dropped 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestQueryEventSamplingInHandler proves -query-log-sample drops OK events
// deterministically while the aggregator still sees everything.
func TestQueryEventSamplingInHandler(t *testing.T) {
	dir := t.TempDir()
	sink, err := eventlog.Open(eventlog.Options{Dir: dir, SampleRate: 0})
	if err != nil {
		t.Fatal(err)
	}
	h, g := testHandler(t, Config{Events: sink})
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	q, attr := attributedQuery(t, g)

	var disc discoverResponse
	getJSON(t, srv.URL+"/discover?q="+q+"&attr="+attr, http.StatusOK, &disc)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := eventlog.Scan(dir, func(e *eventlog.Event) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if st.Events != 0 {
		t.Errorf("rate-0 sink persisted %d events, want 0", st.Events)
	}
	if s := sink.Stats(); s.SampledOut != 1 || s.Written != 0 {
		t.Errorf("sink stats = %+v, want 1 sampled out, 0 written", s)
	}

	var stats struct {
		Groups []eventlog.GroupStats `json:"groups"`
	}
	getJSON(t, srv.URL+"/debug/querystats", http.StatusOK, &stats)
	if len(stats.Groups) != 1 || stats.Groups[0].Count != 1 {
		t.Errorf("aggregator should observe sampled-out events too: %+v", stats.Groups)
	}
}
