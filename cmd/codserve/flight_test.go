package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/codsearch/cod"
	"github.com/codsearch/cod/internal/obs"
)

// attributedQuery returns the first attributed node and its first attribute
// as URL query values.
func attributedQuery(t *testing.T, g *cod.Graph) (q, attr string) {
	t.Helper()
	for v := cod.NodeID(0); int(v) < g.N(); v++ {
		if as := g.Attrs(v); len(as) > 0 {
			return strconv.Itoa(int(v)), strconv.Itoa(int(as[0]))
		}
	}
	t.Fatal("no attributed node in test graph")
	return "", ""
}

type debugQueriesResponse struct {
	SlowAfter string             `json:"slow_after"`
	Recent    []*obs.QueryRecord `json:"recent"`
	Slow      []*obs.QueryRecord `json:"slow"`
}

func TestDebugQueriesRecordsTrace(t *testing.T) {
	srv, g := testServer(t)
	q, attr := attributedQuery(t, g)

	var disc discoverResponse
	getJSON(t, srv.URL+"/discover?q="+q+"&attr="+attr, http.StatusOK, &disc)

	var body debugQueriesResponse
	getJSON(t, srv.URL+"/debug/queries", http.StatusOK, &body)
	if len(body.Recent) == 0 {
		t.Fatal("no recent queries recorded after a served /discover")
	}
	rec := body.Recent[0]
	if rec.Op != "/discover" {
		t.Errorf("most recent record op = %q, want /discover", rec.Op)
	}
	if len(rec.TraceID) != 32 {
		t.Errorf("trace ID %q is not 32 hex chars", rec.TraceID)
	}
	if rec.Status != http.StatusOK {
		t.Errorf("record status = %d, want 200", rec.Status)
	}
	if len(rec.Steps) == 0 {
		t.Fatal("record carries no plan-step spans")
	}
	// Every executed plan step must carry its labels and outcome.
	for i, st := range rec.Steps {
		if st.Variant == "" || st.Kind == "" || st.Outcome == "" {
			t.Errorf("step %d = %+v missing variant/kind/outcome", i, st)
		}
	}
}

func TestDebugQueriesHonorsTraceparent(t *testing.T) {
	srv, g := testServer(t)
	q, attr := attributedQuery(t, g)
	const wantID = "4bf92f3577b34da6a3ce929d0e0e4736"

	req, err := http.NewRequest(http.MethodGet, srv.URL+"/discover?q="+q+"&attr="+attr, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", "00-"+wantID+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("discover status %d", resp.StatusCode)
	}

	var body debugQueriesResponse
	getJSON(t, srv.URL+"/debug/queries", http.StatusOK, &body)
	if len(body.Recent) == 0 {
		t.Fatal("no recent queries recorded")
	}
	if got := body.Recent[0].TraceID; got != wantID {
		t.Errorf("trace ID = %q, want the propagated traceparent %q", got, wantID)
	}
}

func TestDebugQueriesSlowRetention(t *testing.T) {
	// A 1ns threshold classifies every query slow: the slow ring must retain
	// them alongside the recent ring.
	h, g := testHandler(t, Config{SlowQuery: time.Nanosecond})
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	q, attr := attributedQuery(t, g)

	var disc discoverResponse
	getJSON(t, srv.URL+"/discover?q="+q+"&attr="+attr, http.StatusOK, &disc)

	var body debugQueriesResponse
	getJSON(t, srv.URL+"/debug/queries", http.StatusOK, &body)
	if body.SlowAfter != time.Nanosecond.String() {
		t.Errorf("slow_after = %q, want 1ns", body.SlowAfter)
	}
	if len(body.Slow) == 0 {
		t.Fatal("1ns-threshold query not retained in the slow ring")
	}
	if !body.Slow[0].Slow {
		t.Error("slow-ring record not flagged slow")
	}
	if body.Slow[0].TraceID == "" {
		t.Error("slow-ring record lost its trace ID")
	}
}

func TestDebugQueriesTextFormat(t *testing.T) {
	srv, g := testServer(t)
	q, attr := attributedQuery(t, g)
	var disc discoverResponse
	getJSON(t, srv.URL+"/discover?q="+q+"&attr="+attr, http.StatusOK, &disc)

	resp, err := http.Get(srv.URL + "/debug/queries?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type %q, want text/plain", ct)
	}
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(out)
	for _, want := range []string{"slow threshold:", "/discover", "trace=", "epoch=", "step "} {
		if !strings.Contains(text, want) {
			t.Errorf("text rendering missing %q:\n%s", want, text)
		}
	}
}

func TestDebugQueriesMethodNotAllowed(t *testing.T) {
	srv, _ := testServer(t)
	resp, err := http.Post(srv.URL+"/debug/queries", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /debug/queries status %d, want 405", resp.StatusCode)
	}
}

func TestDebugQueriesEmptyIsValidJSON(t *testing.T) {
	srv, _ := testServer(t)
	var body debugQueriesResponse
	getJSON(t, srv.URL+"/debug/queries", http.StatusOK, &body)
	if len(body.Recent) != 0 || len(body.Slow) != 0 {
		t.Errorf("fresh handler reports %d recent / %d slow, want 0/0",
			len(body.Recent), len(body.Slow))
	}
}
