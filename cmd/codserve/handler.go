package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"github.com/codsearch/cod"
)

// Handler serves COD queries over one Searcher. The Searcher is not safe
// for concurrent use (its per-query seed sequence and CODR cache mutate),
// so requests serialize on a mutex; the offline state dominates query cost
// anyway.
type Handler struct {
	mu  sync.Mutex
	g   *cod.Graph
	s   *cod.Searcher
	mux *http.ServeMux
}

// NewHandler wires the endpoints for g and s.
func NewHandler(g *cod.Graph, s *cod.Searcher) *Handler {
	h := &Handler{g: g, s: s, mux: http.NewServeMux()}
	h.mux.HandleFunc("GET /healthz", h.healthz)
	h.mux.HandleFunc("GET /stats", h.stats)
	h.mux.HandleFunc("GET /discover", h.discover)
	h.mux.HandleFunc("GET /influence", h.influence)
	h.mux.HandleFunc("POST /batch", h.batch)
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

func (h *Handler) healthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ok"))
}

type statsResponse struct {
	Nodes    int     `json:"nodes"`
	Edges    int     `json:"edges"`
	Attrs    int     `json:"attrs"`
	IndexMB  float64 `json:"index_mb"`
	Weighted bool    `json:"weighted"`
}

func (h *Handler) stats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, statsResponse{
		Nodes:   h.g.N(),
		Edges:   h.g.M(),
		Attrs:   h.g.NumAttrs(),
		IndexMB: float64(h.s.IndexBytes()) / (1 << 20),
	})
}

type discoverResponse struct {
	Query       int     `json:"query"`
	Attr        int     `json:"attr"`
	Method      string  `json:"method"`
	Found       bool    `json:"found"`
	FromIndex   bool    `json:"from_index,omitempty"`
	Size        int     `json:"size"`
	Density     float64 `json:"topology_density"`
	AttrDensity float64 `json:"attribute_density"`
	Conductance float64 `json:"conductance"`
	Nodes       []int32 `json:"nodes,omitempty"`
}

func (h *Handler) discover(w http.ResponseWriter, r *http.Request) {
	q, ok := intParam(w, r, "q")
	if !ok {
		return
	}
	attr, ok := intParamDefault(w, r, "attr", 0)
	if !ok {
		return
	}
	method := r.URL.Query().Get("method")
	if method == "" {
		method = "codl"
	}

	h.mu.Lock()
	var (
		com cod.Community
		err error
	)
	switch method {
	case "codl":
		com, err = h.s.Discover(cod.NodeID(q), cod.AttrID(attr))
	case "codu":
		com, err = h.s.DiscoverUnattributed(cod.NodeID(q))
	case "codr":
		com, err = h.s.DiscoverGlobal(cod.NodeID(q), cod.AttrID(attr))
	default:
		h.mu.Unlock()
		httpError(w, http.StatusBadRequest, "unknown method %q", method)
		return
	}
	h.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp := discoverResponse{Query: q, Attr: attr, Method: method, Found: com.Found, FromIndex: com.FromIndex}
	if com.Found {
		resp.Size = com.Size()
		resp.Density = h.g.TopologyDensity(com.Nodes)
		resp.AttrDensity = h.g.AttributeDensity(com.Nodes, cod.AttrID(attr))
		resp.Conductance = h.g.Conductance(com.Nodes)
		if resp.Size <= 1000 {
			resp.Nodes = com.Nodes
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

type influenceResponse struct {
	Query     int     `json:"query"`
	Influence float64 `json:"influence"`
}

func (h *Handler) influence(w http.ResponseWriter, r *http.Request) {
	q, ok := intParam(w, r, "q")
	if !ok {
		return
	}
	h.mu.Lock()
	infl, err := h.s.EstimateInfluence(cod.NodeID(q))
	h.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, influenceResponse{Query: q, Influence: infl})
}

type batchRequest struct {
	Queries []struct {
		Q    int32 `json:"q"`
		Attr int32 `json:"attr"`
	} `json:"queries"`
	Workers int `json:"workers,omitempty"`
}

type batchItem struct {
	Query int32  `json:"query"`
	Attr  int32  `json:"attr"`
	Found bool   `json:"found"`
	Size  int    `json:"size"`
	Error string `json:"error,omitempty"`
}

// batch answers many queries in one request via the Searcher's concurrent
// DiscoverBatch (bounded body, capped batch size).
func (h *Handler) batch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	if len(req.Queries) == 0 || len(req.Queries) > 1024 {
		httpError(w, http.StatusBadRequest, "batch size %d out of range [1,1024]", len(req.Queries))
		return
	}
	queries := make([]cod.Query, len(req.Queries))
	for i, q := range req.Queries {
		queries[i] = cod.Query{Node: q.Q, Attr: q.Attr}
	}
	h.mu.Lock()
	results := h.s.DiscoverBatch(queries, req.Workers)
	h.mu.Unlock()
	out := make([]batchItem, len(results))
	for i, res := range results {
		out[i] = batchItem{Query: res.Query.Node, Attr: res.Query.Attr}
		if res.Err != nil {
			out[i].Error = res.Err.Error()
			continue
		}
		out[i].Found = res.Community.Found
		out[i].Size = res.Community.Size()
	}
	writeJSON(w, http.StatusOK, out)
}

func intParam(w http.ResponseWriter, r *http.Request, name string) (int, bool) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		httpError(w, http.StatusBadRequest, "missing parameter %q", name)
		return 0, false
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		httpError(w, http.StatusBadRequest, "parameter %q: %v", name, err)
		return 0, false
	}
	return v, true
}

func intParamDefault(w http.ResponseWriter, r *http.Request, name string, def int) (int, bool) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, true
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		httpError(w, http.StatusBadRequest, "parameter %q: %v", name, err)
		return 0, false
	}
	return v, true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
