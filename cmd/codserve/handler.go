package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/codsearch/cod"
)

// Config tunes the Handler's serving guards.
type Config struct {
	// QueryTimeout bounds each query request's context; 0 means no
	// per-request deadline. Expired queries return 504 with the partial
	// progress recorded in the error body.
	QueryTimeout time.Duration
	// MaxInFlight caps concurrently admitted query requests; excess load is
	// shed with 429 + Retry-After instead of queueing without bound.
	// <= 0 selects the default of 64.
	MaxInFlight int
}

const defaultMaxInFlight = 64

// Handler serves COD queries over one Searcher. The Searcher is not safe
// for concurrent use (its per-query seed sequence and CODR cache mutate),
// so query execution serializes on a mutex; admission control above the
// mutex sheds load instead of queueing unboundedly. The Searcher may be
// attached after the Handler starts serving (SetSearcher): until then the
// process is live (/healthz) but not ready (/readyz and all query routes
// answer 503), which lets the offline phase run while probes see progress.
type Handler struct {
	mu       sync.Mutex
	g        *cod.Graph
	searcher atomic.Pointer[cod.Searcher]
	mux      *http.ServeMux
	inflight chan struct{}
	timeout  time.Duration
}

// routeMethods drives the JSON 404/405 catch-all in ServeHTTP.
var routeMethods = map[string][]string{
	"/healthz":   {http.MethodGet},
	"/readyz":    {http.MethodGet},
	"/stats":     {http.MethodGet},
	"/discover":  {http.MethodGet},
	"/influence": {http.MethodGet},
	"/batch":     {http.MethodPost},
}

// NewHandler wires the endpoints for g. s may be nil; the Handler then
// reports not-ready until SetSearcher delivers the offline state.
func NewHandler(g *cod.Graph, s *cod.Searcher, cfg Config) *Handler {
	maxInFlight := cfg.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = defaultMaxInFlight
	}
	h := &Handler{
		g:        g,
		mux:      http.NewServeMux(),
		inflight: make(chan struct{}, maxInFlight),
		timeout:  cfg.QueryTimeout,
	}
	if s != nil {
		h.searcher.Store(s)
	}
	h.mux.HandleFunc("GET /healthz", h.healthz)
	h.mux.HandleFunc("GET /readyz", h.readyz)
	h.mux.HandleFunc("GET /stats", h.guard(h.stats))
	h.mux.HandleFunc("GET /discover", h.guard(h.discover))
	h.mux.HandleFunc("GET /influence", h.guard(h.influence))
	h.mux.HandleFunc("POST /batch", h.guard(h.batch))
	return h
}

// SetSearcher attaches the offline state, flipping the Handler to ready.
func (h *Handler) SetSearcher(s *cod.Searcher) { h.searcher.Store(s) }

// ServeHTTP implements http.Handler: panic recovery around every route,
// and JSON bodies for unknown paths (404) and wrong methods (405) so every
// response the server emits is machine-readable.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil {
			log.Printf("codserve: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
			httpError(w, http.StatusInternalServerError, "internal error")
		}
	}()
	if _, pattern := h.mux.Handler(r); pattern == "" {
		if allowed, known := routeMethods[r.URL.Path]; known {
			w.Header().Set("Allow", strings.Join(allowed, ", "))
			httpError(w, http.StatusMethodNotAllowed, "method %s not allowed for %s", r.Method, r.URL.Path)
			return
		}
		httpError(w, http.StatusNotFound, "no such endpoint %q", r.URL.Path)
		return
	}
	h.mux.ServeHTTP(w, r)
}

// guard is the admission pipeline for query routes: readiness check, then
// load shedding, then the per-request deadline. Only admitted requests
// reach next, with a context the query pipelines poll.
func (h *Handler) guard(next func(http.ResponseWriter, *http.Request, *cod.Searcher)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s := h.searcher.Load()
		if s == nil {
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusServiceUnavailable, "offline phase in progress; not ready")
			return
		}
		select {
		case h.inflight <- struct{}{}:
			defer func() { <-h.inflight }()
		default:
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests, "server at capacity (%d requests in flight)", cap(h.inflight))
			return
		}
		if h.timeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), h.timeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		next(w, r, s)
	}
}

func (h *Handler) healthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ok"))
}

func (h *Handler) readyz(w http.ResponseWriter, _ *http.Request) {
	if h.searcher.Load() == nil {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "offline phase in progress; not ready")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ready"))
}

type statsResponse struct {
	Nodes    int     `json:"nodes"`
	Edges    int     `json:"edges"`
	Attrs    int     `json:"attrs"`
	IndexMB  float64 `json:"index_mb"`
	Weighted bool    `json:"weighted"`
}

func (h *Handler) stats(w http.ResponseWriter, _ *http.Request, s *cod.Searcher) {
	writeJSON(w, http.StatusOK, statsResponse{
		Nodes:   h.g.N(),
		Edges:   h.g.M(),
		Attrs:   h.g.NumAttrs(),
		IndexMB: float64(s.IndexBytes()) / (1 << 20),
	})
}

type discoverResponse struct {
	Query       int     `json:"query"`
	Attr        int     `json:"attr"`
	Method      string  `json:"method"`
	Found       bool    `json:"found"`
	FromIndex   bool    `json:"from_index,omitempty"`
	Size        int     `json:"size"`
	Density     float64 `json:"topology_density"`
	AttrDensity float64 `json:"attribute_density"`
	Conductance float64 `json:"conductance"`
	Nodes       []int32 `json:"nodes,omitempty"`
}

func (h *Handler) discover(w http.ResponseWriter, r *http.Request, s *cod.Searcher) {
	q, ok := intParam(w, r, "q")
	if !ok {
		return
	}
	attr, ok := intParamDefault(w, r, "attr", 0)
	if !ok {
		return
	}
	method := r.URL.Query().Get("method")
	if method == "" {
		method = "codl"
	}
	switch method {
	case "codl", "codu", "codr":
	default:
		httpError(w, http.StatusBadRequest, "unknown method %q (want codl, codu, or codr)", method)
		return
	}

	ctx := r.Context()
	h.mu.Lock()
	var (
		com cod.Community
		err error
	)
	switch method {
	case "codl":
		com, err = s.DiscoverCtx(ctx, cod.NodeID(q), cod.AttrID(attr))
	case "codu":
		com, err = s.DiscoverUnattributedCtx(ctx, cod.NodeID(q))
	case "codr":
		com, err = s.DiscoverGlobalCtx(ctx, cod.NodeID(q), cod.AttrID(attr))
	}
	h.mu.Unlock()
	if err != nil {
		queryError(w, err)
		return
	}
	resp := discoverResponse{Query: q, Attr: attr, Method: method, Found: com.Found, FromIndex: com.FromIndex}
	if com.Found {
		resp.Size = com.Size()
		resp.Density = h.g.TopologyDensity(com.Nodes)
		resp.AttrDensity = h.g.AttributeDensity(com.Nodes, cod.AttrID(attr))
		resp.Conductance = h.g.Conductance(com.Nodes)
		if resp.Size <= 1000 {
			resp.Nodes = com.Nodes
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

type influenceResponse struct {
	Query     int     `json:"query"`
	Influence float64 `json:"influence"`
}

func (h *Handler) influence(w http.ResponseWriter, r *http.Request, s *cod.Searcher) {
	q, ok := intParam(w, r, "q")
	if !ok {
		return
	}
	h.mu.Lock()
	infl, err := s.EstimateInfluenceCtx(r.Context(), cod.NodeID(q))
	h.mu.Unlock()
	if err != nil {
		queryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, influenceResponse{Query: q, Influence: infl})
}

type batchRequest struct {
	Queries []struct {
		Q    int32 `json:"q"`
		Attr int32 `json:"attr"`
	} `json:"queries"`
	Workers int `json:"workers,omitempty"`
}

type batchItem struct {
	Query int32  `json:"query"`
	Attr  int32  `json:"attr"`
	Found bool   `json:"found"`
	Size  int    `json:"size"`
	Error string `json:"error,omitempty"`
}

// batch answers many queries in one request via the Searcher's concurrent
// DiscoverBatchCtx (bounded body, capped batch size). Invalid items are
// rejected by the same up-front validation Discover applies — one error
// shape across the scalar and batch routes — without consuming query work.
func (h *Handler) batch(w http.ResponseWriter, r *http.Request, s *cod.Searcher) {
	var req batchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	if len(req.Queries) == 0 || len(req.Queries) > 1024 {
		httpError(w, http.StatusBadRequest, "batch size %d out of range [1,1024]", len(req.Queries))
		return
	}
	queries := make([]cod.Query, len(req.Queries))
	for i, q := range req.Queries {
		queries[i] = cod.Query{Node: q.Q, Attr: q.Attr}
	}
	h.mu.Lock()
	results := s.DiscoverBatchCtx(r.Context(), queries, req.Workers)
	h.mu.Unlock()
	// A deadline that fires mid-batch leaves every unfinished item carrying
	// the context error; report the whole request as timed out rather than
	// a 200 with silently missing answers.
	for _, res := range results {
		if res.Err != nil && errors.Is(res.Err, context.DeadlineExceeded) {
			queryError(w, res.Err)
			return
		}
	}
	out := make([]batchItem, len(results))
	for i, res := range results {
		out[i] = batchItem{Query: res.Query.Node, Attr: res.Query.Attr}
		if res.Err != nil {
			out[i].Error = res.Err.Error()
			continue
		}
		out[i].Found = res.Community.Found
		out[i].Size = res.Community.Size()
	}
	writeJSON(w, http.StatusOK, out)
}

// queryError maps a query failure onto the serving contract: deadline
// expiry is 504, cancellation (shutdown) is 503, anything else is caller
// error. Partial-progress detail from cod.CanceledError rides along in the
// JSON body.
func queryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		httpError(w, http.StatusGatewayTimeout, "query timed out: %v", err)
	case errors.Is(err, context.Canceled):
		httpError(w, http.StatusServiceUnavailable, "query canceled: %v", err)
	default:
		httpError(w, http.StatusBadRequest, "%v", err)
	}
}

func intParam(w http.ResponseWriter, r *http.Request, name string) (int, bool) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		httpError(w, http.StatusBadRequest, "missing parameter %q", name)
		return 0, false
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		httpError(w, http.StatusBadRequest, "parameter %q: %v", name, err)
		return 0, false
	}
	return v, true
}

func intParamDefault(w http.ResponseWriter, r *http.Request, name string, def int) (int, bool) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, true
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		httpError(w, http.StatusBadRequest, "parameter %q: %v", name, err)
		return 0, false
	}
	return v, true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
