package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/codsearch/cod"
	"github.com/codsearch/cod/internal/obs"
	"github.com/codsearch/cod/internal/obs/eventlog"
)

// Config tunes the Handler's serving guards.
type Config struct {
	// QueryTimeout bounds each query request's context; 0 means no
	// per-request deadline. Expired queries return 504 with the partial
	// progress recorded in the error body.
	QueryTimeout time.Duration
	// MaxInFlight caps concurrently admitted query requests; excess load is
	// shed with 429 + Retry-After instead of queueing without bound.
	// <= 0 selects the default of 64.
	MaxInFlight int
	// Metrics is the registry /metrics renders; nil creates a fresh one
	// (exposed again via Handler.Metrics so main can mount it on the debug
	// listener too).
	Metrics *obs.Registry
	// SlowQuery is the latency at or above which a query is retained in the
	// flight recorder's slow ring (errored and 5xx queries are retained
	// regardless); <= 0 selects obs.DefaultSlowAfter.
	SlowQuery time.Duration
	// Events is the durable query-event sink (-query-log); nil disables
	// persistence. The in-process aggregator behind /debug/querystats and
	// the cod_query_event_seconds series runs either way.
	Events *eventlog.Sink
}

const defaultMaxInFlight = 64

// Flight-recorder ring sizes: enough recent traffic to see a pattern,
// enough slow retention that a burst of fast queries can't flush the
// interesting ones. Memory stays bounded: both rings hold immutable
// snapshots detached from query scratch.
const (
	flightRecentN = 128
	flightSlowN   = 32
)

// servingState is everything one epoch serves with: the Searcher, the graph
// it queries (snapshots carry their own graph, so it swaps with the index),
// and the epoch identity /readyz and the X-Cod-Epoch header report. States
// are immutable once installed; a hot swap is one atomic pointer flip, and
// every request resolves all of its per-epoch state from a single Load — a
// query admitted on epoch N computes densities against epoch N's graph even
// while epoch N+1 swaps in underneath it.
type servingState struct {
	s          *cod.Searcher
	g          *cod.Graph
	epoch      uint64
	epochStr   string
	paramsHash string
	since      time.Time
}

// Handler serves COD queries over one Searcher. The Searcher executes
// queries through the engine's pooled scratch and internally locked caches,
// so admitted requests run concurrently up to the in-flight cap — admission
// control sheds excess load instead of queueing unboundedly. The serving
// state may be attached after the Handler starts serving (SetSearcher or a
// blob-store swapper): until then the process is live (/healthz) but not
// ready (/readyz and all query routes answer 503), which lets the offline
// phase or the first fetch run while probes see progress.
type Handler struct {
	state    atomic.Pointer[servingState]
	mux      *http.ServeMux
	inflight chan struct{}
	timeout  time.Duration

	// Degraded-mode state: staleSince is the UnixNano time the replica
	// first failed to converge on the store's current epoch (0 = in sync),
	// staleErr the latest failure. /readyz stays 200 while stale — the
	// replica still answers queries from the epoch it has — but reports the
	// lag so operators and orchestration can see divergence.
	staleSince atomic.Int64
	staleErr   atomic.Pointer[string]

	// Observability state: the registry backs /metrics, qm is the
	// pre-resolved pipeline bundle shared by every query, and the HTTP-level
	// counters follow the label-free naming convention of DESIGN.md §11.
	reg          *obs.Registry
	qm           *obs.QueryMetrics
	httpRequests *obs.Counter
	http2xx      *obs.Counter
	http4xx      *obs.Counter
	http5xx      *obs.Counter
	httpShed     *obs.Counter
	httpInFlight *obs.Gauge
	querySecs    *obs.Histogram
	ready        *obs.Gauge
	indexBytes   *obs.Gauge

	// Index-distribution metrics: swap outcomes follow the label-free
	// naming convention (one counter per outcome), retries count every
	// blobstore attempt that had to be repeated.
	swapOK       *obs.Counter
	swapFetch    *obs.Counter
	swapVerify   *obs.Counter
	swapLoad     *obs.Counter
	swapRejected *obs.Counter
	fetchRetries *obs.Counter

	// flight retains recent and slow query traces for /debug/queries;
	// traceSeq feeds fallback trace IDs for requests that never reached a
	// seed draw (e.g. rejected by validation).
	flight   *obs.FlightRecorder
	traceSeq atomic.Uint64

	// agg digests every query event for /debug/querystats and the
	// exemplar-carrying cod_query_event_seconds family; events persists the
	// same events to the durable log (nil when -query-log is off).
	agg    *eventlog.Aggregator
	events *eventlog.Sink
}

// routeMethods drives the JSON 404/405 catch-all in ServeHTTP.
var routeMethods = map[string][]string{
	"/healthz":          {http.MethodGet},
	"/readyz":           {http.MethodGet},
	"/metrics":          {http.MethodGet},
	"/stats":            {http.MethodGet},
	"/discover":         {http.MethodGet},
	"/influence":        {http.MethodGet},
	"/batch":            {http.MethodPost},
	"/debug/queries":    {http.MethodGet},
	"/debug/querystats": {http.MethodGet},
}

// NewHandler wires the endpoints. s may be nil; the Handler then reports
// not-ready until SetSearcher (local offline build) or a swapper (blob-store
// distribution) delivers serving state. g is the boot graph s was built
// over; it is unused when s is nil, because each installed serving state
// carries its own graph.
func NewHandler(g *cod.Graph, s *cod.Searcher, cfg Config) *Handler {
	_ = g // the serving graph always travels with the installed state
	maxInFlight := cfg.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = defaultMaxInFlight
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	h := &Handler{
		mux:      http.NewServeMux(),
		inflight: make(chan struct{}, maxInFlight),
		timeout:  cfg.QueryTimeout,

		reg:          reg,
		qm:           obs.NewQueryMetrics(reg),
		httpRequests: reg.Counter("cod_http_requests_total", "HTTP requests received (all routes)."),
		http2xx:      reg.Counter("cod_http_responses_2xx_total", "HTTP responses with a 2xx status."),
		http4xx:      reg.Counter("cod_http_responses_4xx_total", "HTTP responses with a 4xx status."),
		http5xx:      reg.Counter("cod_http_responses_5xx_total", "HTTP responses with a 5xx status."),
		httpShed:     reg.Counter("cod_http_shed_total", "Requests shed with 429 at the admission gate."),
		httpInFlight: reg.Gauge("cod_http_in_flight", "HTTP requests currently being served."),
		querySecs: reg.Histogram("cod_query_seconds",
			"End-to-end latency of query routes (discover, influence, batch).", obs.DefaultLatencyBuckets),
		ready:      reg.Gauge("cod_ready", "1 once the offline phase is done and queries are served."),
		indexBytes: reg.Gauge("cod_index_bytes", "Approximate HIMOR index footprint in bytes."),

		swapOK:       reg.Counter("cod_index_swap_ok_total", "Index epochs fetched, verified, and atomically swapped in."),
		swapFetch:    reg.Counter("cod_index_swap_fetch_failed_total", "Swap attempts abandoned because the store could not deliver the bytes."),
		swapVerify:   reg.Counter("cod_index_swap_verify_failed_total", "Swap attempts rejected by CRC, size, or params-hash verification."),
		swapLoad:     reg.Counter("cod_index_swap_load_failed_total", "Swap attempts whose verified bytes failed to reconstruct a Searcher."),
		swapRejected: reg.Counter("cod_index_swap_rejected_total", "Swap attempts rejected for naming a non-monotone (older) epoch."),
		fetchRetries: reg.Counter("cod_index_fetch_retries_total", "Blobstore operations retried while fetching index artifacts."),

		flight: obs.NewFlightRecorder(flightRecentN, flightSlowN, cfg.SlowQuery),
		agg:    eventlog.NewAggregator(),
		events: cfg.Events,
	}
	// The aggregator renders its labeled, exemplar-annotated histogram
	// family through the registry's collector hook, so /metrics stays one
	// endpoint with one sorted document.
	reg.Collector(eventlog.MetricName, h.agg.WriteMetrics)
	if h.events != nil {
		reg.GaugeFunc("cod_query_events_written",
			"Query events durably appended to the -query-log.",
			func() int64 { return h.events.Stats().Written })
		reg.GaugeFunc("cod_query_events_dropped",
			"Query events lost to a full event-log queue.",
			func() int64 { return h.events.Stats().Dropped })
		reg.GaugeFunc("cod_query_events_sampled_out",
			"OK query events skipped by deterministic sampling.",
			func() int64 { return h.events.Stats().SampledOut })
	}
	// Runtime and occupancy gauges, sampled at scrape time. The engine-backed
	// closures tolerate the not-ready window: they report 0 until SetSearcher
	// delivers the offline state.
	obs.RegisterRuntimeMetrics(reg)
	reg.GaugeFunc("cod_rr_cache_pools",
		"RR sample pools currently resident in the engine's per-attribute cache.",
		func() int64 {
			if st := h.state.Load(); st != nil {
				pools, _ := st.s.Engine().SampleCacheStats()
				return pools
			}
			return 0
		})
	reg.GaugeFunc("cod_rr_cache_rrgraphs",
		"RR graphs held by the resident sample pools.",
		func() int64 {
			if st := h.state.Load(); st != nil {
				_, rrs := st.s.Engine().SampleCacheStats()
				return rrs
			}
			return 0
		})
	reg.GaugeFunc("cod_engine_scratch_live",
		"Query scratch buffers currently checked out of the engine pool.",
		func() int64 {
			if st := h.state.Load(); st != nil {
				live, _ := st.s.Engine().PoolStats()
				return live
			}
			return 0
		})
	reg.GaugeFunc("cod_engine_scratch_allocated",
		"Query scratch buffers ever allocated by the engine pool.",
		func() int64 {
			if st := h.state.Load(); st != nil {
				_, alloc := st.s.Engine().PoolStats()
				return alloc
			}
			return 0
		})
	reg.GaugeFunc("cod_index_epoch",
		"Index epoch currently serving (0 for a locally built index).",
		func() int64 {
			if st := h.state.Load(); st != nil {
				return int64(st.epoch)
			}
			return 0
		})
	reg.GaugeFunc("cod_index_stale_ms",
		"Milliseconds this replica has failed to converge on the store's current epoch (0 = in sync).",
		h.staleForMS)
	if s != nil {
		h.SetSearcher(s)
	}
	h.mux.HandleFunc("GET /healthz", h.healthz)
	h.mux.HandleFunc("GET /readyz", h.readyz)
	h.mux.Handle("GET /metrics", h.reg)
	h.mux.Handle("GET /debug/queries", h.flight)
	h.mux.Handle("GET /debug/querystats", h.agg)
	h.mux.HandleFunc("GET /stats", h.guard(h.stats))
	h.mux.HandleFunc("GET /discover", h.guard(h.instrument(h.discover)))
	h.mux.HandleFunc("GET /influence", h.guard(h.instrument(h.influence)))
	h.mux.HandleFunc("POST /batch", h.guard(h.instrument(h.batch)))
	return h
}

// SetSearcher attaches a locally built Searcher, flipping the Handler to
// ready. Local builds serve as epoch 0; store-fed replicas install real
// epochs through SetServing.
func (h *Handler) SetSearcher(s *cod.Searcher) {
	if s == nil {
		return
	}
	h.SetServing(s, 0, s.IndexParams().Hash())
}

// SetServing atomically installs a fully verified Searcher as the serving
// state — the hot-swap point. In-flight queries keep the state they loaded
// at admission; new requests observe the new epoch immediately.
func (h *Handler) SetServing(s *cod.Searcher, epoch uint64, paramsHash string) {
	h.state.Store(&servingState{
		s:          s,
		g:          s.Graph(),
		epoch:      epoch,
		epochStr:   strconv.FormatUint(epoch, 10),
		paramsHash: paramsHash,
		since:      time.Now(),
	})
	h.ready.Set(1)
	h.indexBytes.Set(s.IndexBytes())
	h.clearStale()
}

// Serving returns the current serving state (nil while warming).
func (h *Handler) Serving() *servingState { return h.state.Load() }

// Epoch returns the serving epoch, or 0 while warming or for local builds.
func (h *Handler) Epoch() uint64 {
	if st := h.state.Load(); st != nil {
		return st.epoch
	}
	return 0
}

// markStale records a failed convergence attempt: the replica keeps serving
// its current epoch, and /readyz reports the divergence and its duration.
func (h *Handler) markStale(err error) {
	msg := err.Error()
	h.staleErr.Store(&msg)
	h.staleSince.CompareAndSwap(0, time.Now().UnixNano())
}

// clearStale records convergence with the store's current epoch.
func (h *Handler) clearStale() {
	h.staleSince.Store(0)
	h.staleErr.Store(nil)
}

// staleForMS reports how long the replica has been stale (0 = in sync).
func (h *Handler) staleForMS() int64 {
	since := h.staleSince.Load()
	if since == 0 {
		return 0
	}
	return (time.Now().UnixNano() - since) / int64(time.Millisecond)
}

// Metrics exposes the registry backing /metrics so main can mount the same
// state on the debug listener.
func (h *Handler) Metrics() *obs.Registry { return h.reg }

// Flight exposes the flight recorder backing /debug/queries so main can
// mount the same state on the debug listener.
func (h *Handler) Flight() *obs.FlightRecorder { return h.flight }

// QueryStats exposes the event aggregator backing /debug/querystats so main
// can mount the same state on the debug listener.
func (h *Handler) QueryStats() *eventlog.Aggregator { return h.agg }

// statusWriter captures the response status for metrics and logs; handlers
// that never call WriteHeader implicitly answer 200.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// ServeHTTP implements http.Handler: panic recovery around every route,
// request/response counters, and JSON bodies for unknown paths (404) and
// wrong methods (405) so every response the server emits is
// machine-readable.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.httpRequests.Inc()
	h.httpInFlight.Add(1)
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	defer func() {
		if rec := recover(); rec != nil {
			log.Printf("codserve: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
			httpError(sw, http.StatusInternalServerError, "internal error")
		}
		switch {
		case sw.status < 300:
			h.http2xx.Inc()
		case sw.status < 500:
			h.http4xx.Inc()
		default:
			h.http5xx.Inc()
		}
		h.httpInFlight.Add(-1)
	}()
	if _, pattern := h.mux.Handler(r); pattern == "" {
		if allowed, known := routeMethods[r.URL.Path]; known {
			sw.Header().Set("Allow", strings.Join(allowed, ", "))
			httpError(sw, http.StatusMethodNotAllowed, "method %s not allowed for %s", r.Method, r.URL.Path)
			return
		}
		httpError(sw, http.StatusNotFound, "no such endpoint %q", r.URL.Path)
		return
	}
	h.mux.ServeHTTP(sw, r)
}

// guard is the admission pipeline for query routes: readiness check, then
// load shedding, then the per-request deadline. Only admitted requests
// reach next, with a context the query pipelines poll. The serving state is
// loaded exactly once and rides along, so a request's searcher, graph, and
// the X-Cod-Epoch header it reports are always one consistent epoch, even
// when a hot swap lands mid-request.
func (h *Handler) guard(next func(http.ResponseWriter, *http.Request, *servingState)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		st := h.state.Load()
		if st == nil {
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusServiceUnavailable, "offline phase in progress; not ready")
			return
		}
		w.Header().Set("X-Cod-Epoch", st.epochStr)
		select {
		case h.inflight <- struct{}{}:
			defer func() { <-h.inflight }()
		default:
			h.httpShed.Inc()
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests, "server at capacity (%d requests in flight)", cap(h.inflight))
			return
		}
		if h.timeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), h.timeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		next(w, r, st)
	}
}

// instrument runs inside guard on every query route: it attaches a fresh
// per-query Trace plus the shared pipeline metrics to the request context,
// times the request into cod_query_seconds, files the finished trace with
// the flight recorder, assembles the query's canonical wide event (digested
// by the aggregator and, when -query-log is on, appended to the durable
// log), and emits one structured log line carrying the trace ID and the
// stage timings the pipelines recorded. The Trace is always flushed — a
// canceled or timed-out query still logs the spans it finished.
//
// Trace-ID precedence: a well-formed W3C traceparent header wins (the trace
// joins the caller's distributed trace); otherwise the library installs the
// query's seed-derived ID; requests that never reach a seed draw (rejected
// input) get a server-local fallback so every flight record is addressable.
func (h *Handler) instrument(next func(http.ResponseWriter, *http.Request, *servingState)) func(http.ResponseWriter, *http.Request, *servingState) {
	return func(w http.ResponseWriter, r *http.Request, st *servingState) {
		trace := obs.NewTrace()
		if id, ok := obs.ParseTraceparent(r.Header.Get("traceparent")); ok {
			trace.EnsureID(id)
		}
		rec := obs.NewRecorder(h.qm, trace)
		note := &queryNote{node: -1, attr: -1}
		r = r.WithContext(context.WithValue(obs.WithRecorder(r.Context(), rec), queryNoteKey{}, note))
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next(sw, r, st)
		d := time.Since(start)
		// A query that straddles a hot swap — admitted on one epoch while a
		// newer one was installed underneath — gets an index_swap step in its
		// trace, so /debug/queries shows exactly which queries bridged the
		// flip (and that they completed on their admission epoch).
		if cur := h.state.Load(); cur != nil && cur.epoch != st.epoch {
			step := rec.StartStep("index_swap", st.epochStr+"->"+cur.epochStr)
			step.End("straddled")
		}
		trace.EnsureID(obs.SeedTraceID(uint64(start.UnixNano()) ^ h.traceSeq.Add(1)<<32))
		h.querySecs.Observe(d.Seconds())

		// The wide event: everything the trace knows plus the serving
		// context only this layer has (epoch, normalized expression,
		// predicate key, result fingerprint).
		ev := eventlog.New(trace, r.URL.Path, start, d, sw.status)
		ev.Epoch = st.epoch
		ev.Expr = note.expr
		if note.pred != "" {
			ev.Pred = note.pred
		}
		if note.variant != "" {
			ev.Variant = note.variant
		}
		ev.Node, ev.Attr = note.node, note.attr
		ev.Result = note.result
		h.agg.Observe(ev)
		h.events.Record(ev)

		// Expression queries carry their normalized form into the flight
		// record and the structured log, so /debug/queries and the logs show
		// the canonical query — one spelling per semantic query — rather than
		// whatever URL-escaped variant the caller sent.
		detail := r.URL.RawQuery
		qr := obs.NewQueryRecord(trace, r.URL.Path, detail, sw.status, start, d, nil)
		qr.Epoch = st.epoch
		qr.Expr = note.expr
		h.flight.Record(qr)
		slog.Info("query",
			"path", r.URL.Path,
			"query", r.URL.RawQuery,
			"expr", note.expr,
			"status", sw.status,
			"dur", d,
			"trace_id", trace.ID(),
			"stages", trace.String(),
		)
	}
}

// queryNote carries query facts from the route handler back up to the
// instrumentation wrapper (same goroutine, so plain fields suffice): the
// normalized expression, the predicate aggregation key, the plan variant,
// the query arguments, and the result fingerprint. The wrapper installs it
// in the request context; handlers publish through noteFromContext.
type queryNote struct {
	expr    string
	pred    string
	variant string
	node    int64
	attr    int64
	result  *eventlog.Result
}

type queryNoteKey struct{}

// noteFromContext returns the request's queryNote; outside instrument (unit
// tests driving handlers directly) it returns a writable discard note so
// handlers never branch.
func noteFromContext(ctx context.Context) *queryNote {
	if note, ok := ctx.Value(queryNoteKey{}).(*queryNote); ok {
		return note
	}
	return &queryNote{}
}

// noteResult fingerprints a successful discover answer into the note.
func (n *queryNote) noteResult(com cod.Community) {
	n.result = &eventlog.Result{
		Found:    com.Found,
		Rank:     com.Rank,
		Size:     com.Size(),
		NodesFNV: eventlog.NodesSum(com.Nodes),
	}
}

func (h *Handler) healthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ok"))
}

// readyzResponse is the machine-readable readiness contract. States:
// "warming" (503: no index yet), "serving" (200: in sync with the source of
// truth), "stale" (200: still answering queries, but the last attempt to
// converge on the store's current epoch failed StaleForMS ago).
type readyzResponse struct {
	State      string `json:"state"`
	Epoch      uint64 `json:"epoch"`
	ParamsHash string `json:"params_hash,omitempty"`
	StaleForMS int64  `json:"stale_for_ms"`
	LastError  string `json:"last_error,omitempty"`
}

func (h *Handler) readyz(w http.ResponseWriter, _ *http.Request) {
	st := h.state.Load()
	if st == nil {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, readyzResponse{State: "warming"})
		return
	}
	resp := readyzResponse{
		State:      "serving",
		Epoch:      st.epoch,
		ParamsHash: st.paramsHash,
	}
	if h.staleSince.Load() != 0 {
		resp.State = "stale"
		resp.StaleForMS = h.staleForMS()
		if msg := h.staleErr.Load(); msg != nil {
			resp.LastError = *msg
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

type statsResponse struct {
	Nodes    int     `json:"nodes"`
	Edges    int     `json:"edges"`
	Attrs    int     `json:"attrs"`
	IndexMB  float64 `json:"index_mb"`
	Weighted bool    `json:"weighted"`
}

func (h *Handler) stats(w http.ResponseWriter, _ *http.Request, st *servingState) {
	writeJSON(w, http.StatusOK, statsResponse{
		Nodes:   st.g.N(),
		Edges:   st.g.M(),
		Attrs:   st.g.NumAttrs(),
		IndexMB: float64(st.s.IndexBytes()) / (1 << 20),
	})
}

type discoverResponse struct {
	Query       int      `json:"query"`
	Attr        int      `json:"attr"`
	Expr        string   `json:"expr,omitempty"`
	Method      string   `json:"method"`
	Found       bool     `json:"found"`
	FromIndex   bool     `json:"from_index,omitempty"`
	Rank        int      `json:"rank,omitempty"`
	Size        int      `json:"size"`
	Density     float64  `json:"topology_density"`
	AttrDensity *float64 `json:"attribute_density,omitempty"`
	Conductance float64  `json:"conductance"`
	Nodes       []int32  `json:"nodes,omitempty"`
}

// discover answers GET /discover. The q parameter is dual-mode: an integer
// runs the legacy single-attribute path (with attr= and method= parameters),
// anything else is a URL-escaped query expression (predicate over attribute
// names or ids, community filters, node=/k=/variant= knobs) prepared against
// the serving epoch's graph. In expression mode the attr/method parameters
// are ignored — the expression itself carries the variant — and the response
// echoes the normalized expression, so semantically equal spellings answer
// with one canonical form.
func (h *Handler) discover(w http.ResponseWriter, r *http.Request, st *servingState) {
	s := st.s
	rawQ := r.URL.Query().Get("q")
	if rawQ == "" {
		httpError(w, http.StatusBadRequest, "missing parameter %q", "q")
		return
	}
	if _, err := strconv.Atoi(rawQ); err != nil {
		h.discoverExpr(w, r, st, rawQ)
		return
	}
	q, ok := intParam(w, r, "q")
	if !ok {
		return
	}
	attr, ok := intParamDefault(w, r, "attr", 0)
	if !ok {
		return
	}
	method := r.URL.Query().Get("method")
	if method == "" {
		method = "codl"
	}
	switch method {
	case "codl", "codu", "codr":
	default:
		httpError(w, http.StatusBadRequest, "unknown method %q (want codl, codu, or codr)", method)
		return
	}

	ctx := r.Context()
	note := noteFromContext(ctx)
	note.node = int64(q)
	var (
		com cod.Community
		err error
	)
	switch method {
	case "codl":
		note.variant, note.pred, note.attr = "CODL", "attr:"+strconv.Itoa(attr), int64(attr)
		com, err = s.DiscoverCtx(ctx, cod.NodeID(q), cod.AttrID(attr))
	case "codu":
		note.variant, note.pred = "CODU", "none"
		com, err = s.DiscoverUnattributedCtx(ctx, cod.NodeID(q))
	case "codr":
		note.variant, note.pred, note.attr = "CODR", "attr:"+strconv.Itoa(attr), int64(attr)
		com, err = s.DiscoverGlobalCtx(ctx, cod.NodeID(q), cod.AttrID(attr))
	}
	if err != nil {
		queryError(w, err)
		return
	}
	note.noteResult(com)
	resp := discoverResponse{Query: q, Attr: attr, Method: method,
		Found: com.Found, FromIndex: com.FromIndex, Rank: com.Rank}
	if com.Found {
		resp.Size = com.Size()
		resp.Density = st.g.TopologyDensity(com.Nodes)
		ad := st.g.AttributeDensity(com.Nodes, cod.AttrID(attr))
		resp.AttrDensity = &ad
		resp.Conductance = st.g.Conductance(com.Nodes)
		if resp.Size <= 1000 {
			resp.Nodes = com.Nodes
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// discoverExpr is /discover's expression mode: prepare once against the
// serving epoch, require a node= knob (the q parameter holds the
// expression), and answer with the canonical form, the community, and its
// influence rank. Attribute density is omitted — a compound predicate has no
// single attribute to measure against.
func (h *Handler) discoverExpr(w http.ResponseWriter, r *http.Request, st *servingState, expr string) {
	pq, err := st.s.Prepare(expr)
	if err != nil {
		queryError(w, err)
		return
	}
	node, ok := pq.Node()
	if !ok {
		httpError(w, http.StatusBadRequest, "query expression needs a node= knob (e.g. %q)", expr+" and node=0")
		return
	}
	note := noteFromContext(r.Context())
	note.expr = pq.Expr()
	note.pred = pq.PredKey()
	note.variant = pq.Variant()
	note.node = int64(node)
	com, err := pq.DiscoverCtx(r.Context(), node)
	if err != nil {
		queryError(w, err)
		return
	}
	note.noteResult(com)
	resp := discoverResponse{Query: int(node), Attr: -1, Expr: pq.Expr(),
		Method: toLowerASCII(pq.Variant()), Found: com.Found,
		FromIndex: com.FromIndex, Rank: com.Rank}
	if com.Found {
		resp.Size = com.Size()
		resp.Density = st.g.TopologyDensity(com.Nodes)
		resp.Conductance = st.g.Conductance(com.Nodes)
		if resp.Size <= 1000 {
			resp.Nodes = com.Nodes
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func toLowerASCII(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}

type influenceResponse struct {
	Query     int     `json:"query"`
	Influence float64 `json:"influence"`
}

func (h *Handler) influence(w http.ResponseWriter, r *http.Request, st *servingState) {
	q, ok := intParam(w, r, "q")
	if !ok {
		return
	}
	noteFromContext(r.Context()).node = int64(q)
	infl, err := st.s.EstimateInfluenceCtx(r.Context(), cod.NodeID(q))
	if err != nil {
		queryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, influenceResponse{Query: q, Influence: infl})
}

type batchRequest struct {
	Queries []struct {
		Q    int32  `json:"q"`
		Attr int32  `json:"attr"`
		Expr string `json:"expr,omitempty"`
	} `json:"queries"`
	Workers int `json:"workers,omitempty"`
}

type batchItem struct {
	Query int32  `json:"query"`
	Attr  int32  `json:"attr"`
	Expr  string `json:"expr,omitempty"`
	Found bool   `json:"found"`
	Rank  int    `json:"rank,omitempty"`
	Size  int    `json:"size"`
	Error string `json:"error,omitempty"`
}

// batch answers many queries in one request via the Searcher's concurrent
// DiscoverBatchCtx (bounded body, capped batch size). Invalid items are
// rejected by the same up-front validation Discover applies — one error
// shape across the scalar and batch routes — without consuming query work.
func (h *Handler) batch(w http.ResponseWriter, r *http.Request, st *servingState) {
	s := st.s
	var req batchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	if len(req.Queries) == 0 || len(req.Queries) > 1024 {
		httpError(w, http.StatusBadRequest, "batch size %d out of range [1,1024]", len(req.Queries))
		return
	}
	noteFromContext(r.Context()).variant = "batch"
	queries := make([]cod.Query, len(req.Queries))
	for i, q := range req.Queries {
		queries[i] = cod.Query{Node: q.Q, Attr: q.Attr, Expr: q.Expr}
	}
	results := s.DiscoverBatchCtx(r.Context(), queries, req.Workers)
	// A deadline that fires mid-batch leaves every unfinished item carrying
	// the context error; report the whole request as timed out rather than
	// a 200 with silently missing answers.
	for _, res := range results {
		if res.Err != nil && errors.Is(res.Err, context.DeadlineExceeded) {
			queryError(w, res.Err)
			return
		}
	}
	out := make([]batchItem, len(results))
	for i, res := range results {
		out[i] = batchItem{Query: res.Query.Node, Attr: res.Query.Attr, Expr: res.Query.Expr}
		if res.Err != nil {
			out[i].Error = res.Err.Error()
			continue
		}
		out[i].Found = res.Community.Found
		out[i].Rank = res.Community.Rank
		out[i].Size = res.Community.Size()
	}
	writeJSON(w, http.StatusOK, out)
}

// queryError maps a query failure onto the serving contract: deadline
// expiry is 504, cancellation (shutdown) is 503, anything else is caller
// error. Partial-progress detail from cod.CanceledError rides along in the
// JSON body. Typed caller errors keep their structure: a *cod.ParseError
// answers with the byte offset and a caret rendering, and a *cod.RangeError
// with the out-of-range field, its bounds, and the known attribute names —
// machine-actionable 400s rather than opaque strings.
func queryError(w http.ResponseWriter, err error) {
	var pe *cod.ParseError
	var re *cod.RangeError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		httpError(w, http.StatusGatewayTimeout, "query timed out: %v", err)
	case errors.Is(err, context.Canceled):
		httpError(w, http.StatusServiceUnavailable, "query canceled: %v", err)
	case errors.As(err, &pe):
		writeJSON(w, http.StatusBadRequest, map[string]any{
			"error": pe.Error(), "pos": pe.Pos, "caret": pe.Caret(),
		})
	case errors.As(err, &re):
		body := map[string]any{
			"error": re.Error(), "what": re.What, "value": re.Value, "n": re.N,
		}
		if len(re.Known) > 0 {
			body["known"] = re.Known
		}
		writeJSON(w, http.StatusBadRequest, body)
	default:
		httpError(w, http.StatusBadRequest, "%v", err)
	}
}

func intParam(w http.ResponseWriter, r *http.Request, name string) (int, bool) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		httpError(w, http.StatusBadRequest, "missing parameter %q", name)
		return 0, false
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		httpError(w, http.StatusBadRequest, "parameter %q: %v", name, err)
		return 0, false
	}
	return v, true
}

func intParamDefault(w http.ResponseWriter, r *http.Request, name string, def int) (int, bool) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, true
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		httpError(w, http.StatusBadRequest, "parameter %q: %v", name, err)
		return 0, false
	}
	return v, true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
