package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/codsearch/cod"
)

func testHandler(t *testing.T, cfg Config) (*Handler, *cod.Graph) {
	t.Helper()
	g, err := cod.GenerateDataset("tiny", 7)
	if err != nil {
		t.Fatal(err)
	}
	s, err := cod.NewSearcher(g, cod.Options{K: 5, Theta: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return NewHandler(g, s, cfg), g
}

func testServer(t *testing.T) (*httptest.Server, *cod.Graph) {
	t.Helper()
	h, g := testHandler(t, Config{})
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv, g
}

func getJSON(t *testing.T, url string, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if ct := resp.Header.Get("Content-Type"); ct == "" {
		t.Errorf("GET %s: missing Content-Type", url)
	}
	// Every non-2xx body is a JSON error object per the serving contract
	// (typed errors add structured fields next to "error").
	if wantStatus >= 400 {
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("GET %s: non-JSON error body: %v", url, err)
		}
		if msg, _ := body["error"].(string); msg == "" {
			t.Errorf("GET %s: error body without message", url)
		}
		return
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
}

func TestHealthz(t *testing.T) {
	srv, _ := testServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status %d", resp.StatusCode)
	}
}

func TestStats(t *testing.T) {
	srv, g := testServer(t)
	var st statsResponse
	getJSON(t, srv.URL+"/stats", http.StatusOK, &st)
	if st.Nodes != g.N() || st.Edges != g.M() || st.Attrs != g.NumAttrs() {
		t.Errorf("stats %+v mismatch graph %d/%d/%d", st, g.N(), g.M(), g.NumAttrs())
	}
	if st.IndexMB <= 0 {
		t.Error("index size missing")
	}
}

func TestDiscoverEndpoint(t *testing.T) {
	srv, g := testServer(t)
	var q cod.NodeID = -1
	for v := cod.NodeID(0); int(v) < g.N(); v++ {
		if len(g.Attrs(v)) > 0 {
			q = v
			break
		}
	}
	attr := g.Attrs(q)[0]
	var dr discoverResponse
	url := srv.URL + "/discover?q=" + strconv.Itoa(int(q)) + "&attr=" + strconv.Itoa(int(attr))
	getJSON(t, url, http.StatusOK, &dr)
	if dr.Method != "codl" || dr.Query != int(q) {
		t.Errorf("response %+v", dr)
	}
	if dr.Found {
		if dr.Size == 0 || dr.Density < 0 || dr.Density > 1 {
			t.Errorf("bad measures: %+v", dr)
		}
		seen := false
		for _, v := range dr.Nodes {
			if v == q {
				seen = true
			}
		}
		if !seen {
			t.Error("community missing query node")
		}
	}
	// other methods
	for _, m := range []string{"codu", "codr"} {
		getJSON(t, url+"&method="+m, http.StatusOK, &dr)
		if dr.Method != m {
			t.Errorf("method echo = %q", dr.Method)
		}
	}
}

// TestDiscoverExpression locks /discover's expression mode: a URL-escaped
// query expression in ?q= answers with the canonical form, the influence
// rank, and — repeated — a byte-identical body (the serving determinism
// contract extends to compound queries).
func TestDiscoverExpression(t *testing.T) {
	srv, _ := testServer(t)
	expr := url.QueryEscape("(ML or DB) and size>=1 and node=5")
	var dr discoverResponse
	getJSON(t, srv.URL+"/discover?q="+expr, http.StatusOK, &dr)
	if dr.Query != 5 || dr.Method != "codl" {
		t.Errorf("response %+v", dr)
	}
	if dr.Expr != "(0|1) and size>=1 and node=5" {
		t.Errorf("expr echo = %q, want canonical form", dr.Expr)
	}
	if dr.AttrDensity != nil {
		t.Error("compound predicate answered with attribute_density")
	}
	if dr.Found && dr.Rank < 1 {
		t.Errorf("found community with rank %d", dr.Rank)
	}
	// Same expression, different spelling, same position in the query
	// sequence (each server's first query): byte-identical bodies. Two
	// independent servers isolate the per-searcher deterministic seed
	// sequence — consecutive queries on one server draw different seeds by
	// design.
	srvA, _ := testServer(t)
	srvB, _ := testServer(t)
	body1 := getBody(t, srvA.URL+"/discover?q="+expr)
	body2 := getBody(t, srvB.URL+"/discover?q="+url.QueryEscape("size>=1 and (db | ml) and node=5"))
	if body1 != body2 {
		t.Errorf("equal queries answered differently:\n%s\n%s", body1, body2)
	}

	// Name-based single-attribute expressions lower to the legacy attr.
	getJSON(t, srv.URL+"/discover?q="+url.QueryEscape("ML and node=5"), http.StatusOK, &dr)
	if dr.Expr != "0 and node=5" {
		t.Errorf("lowered expr = %q", dr.Expr)
	}
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestDiscoverExpressionErrors locks the typed 400 contract: parse errors
// answer with the byte offset and caret rendering, range errors with the
// field, bounds, and known attribute names.
func TestDiscoverExpressionErrors(t *testing.T) {
	srv, _ := testServer(t)
	resp, err := http.Get(srv.URL + "/discover?q=" + url.QueryEscape("ML AND and node=0"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("parse error: status %d, want 400", resp.StatusCode)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if msg, _ := body["error"].(string); msg == "" || body["caret"] == nil || body["pos"] == nil {
		t.Errorf("parse-error body missing error/pos/caret: %v", body)
	}

	// Expression without node= is rejected with a hint.
	getJSON(t, srv.URL+"/discover?q="+url.QueryEscape("ML and size>=2"), http.StatusBadRequest, nil)

	// Out-of-range attribute: structured RangeError body with the attribute
	// registry, not a bare 500.
	resp2, err := http.Get(srv.URL + "/discover?q=5&attr=99")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("range error: status %d, want 400", resp2.StatusCode)
	}
	var rbody map[string]any
	if err := json.NewDecoder(resp2.Body).Decode(&rbody); err != nil {
		t.Fatal(err)
	}
	if rbody["what"] != "attribute" || rbody["value"] != float64(99) {
		t.Errorf("range-error body = %v", rbody)
	}
	if known, ok := rbody["known"].([]any); !ok || len(known) == 0 || known[0] != "ML" {
		t.Errorf("range-error body missing known attributes: %v", rbody["known"])
	}
}

func TestDiscoverErrors(t *testing.T) {
	srv, _ := testServer(t)
	getJSON(t, srv.URL+"/discover", http.StatusBadRequest, nil)
	getJSON(t, srv.URL+"/discover?q=abc", http.StatusBadRequest, nil)
	getJSON(t, srv.URL+"/discover?q=999999", http.StatusBadRequest, nil)
	getJSON(t, srv.URL+"/discover?q=0&attr=zz", http.StatusBadRequest, nil)
	getJSON(t, srv.URL+"/discover?q=0&method=warp", http.StatusBadRequest, nil)
}

func TestInfluenceEndpoint(t *testing.T) {
	srv, _ := testServer(t)
	var ir influenceResponse
	getJSON(t, srv.URL+"/influence?q=0", http.StatusOK, &ir)
	if ir.Influence < 1 {
		t.Errorf("influence = %f", ir.Influence)
	}
	getJSON(t, srv.URL+"/influence?q=-3", http.StatusBadRequest, nil)
}

// Concurrent requests must serialize safely on the handler's mutex.
func TestConcurrentRequests(t *testing.T) {
	srv, _ := testServer(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(srv.URL + "/discover?q=" + strconv.Itoa(i))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
		}(i)
	}
	wg.Wait()
}

func TestBatchEndpoint(t *testing.T) {
	srv, g := testServer(t)
	var q cod.NodeID
	for v := cod.NodeID(0); int(v) < g.N(); v++ {
		if len(g.Attrs(v)) > 0 {
			q = v
			break
		}
	}
	body := `{"queries":[{"q":` + strconv.Itoa(int(q)) + `,"attr":` + strconv.Itoa(int(g.Attrs(q)[0])) + `},{"q":-4,"attr":0}],"workers":2}`
	resp, err := http.Post(srv.URL+"/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var items []batchItem
	if err := json.NewDecoder(resp.Body).Decode(&items); err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 {
		t.Fatalf("items = %d", len(items))
	}
	if items[0].Error != "" {
		t.Errorf("valid query errored: %s", items[0].Error)
	}
	if items[1].Error == "" {
		t.Error("invalid query did not error")
	}
	// malformed and oversized bodies rejected
	for _, bad := range []string{"{", `{"queries":[]}`} {
		resp, err := http.Post(srv.URL+"/batch", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d", bad, resp.StatusCode)
		}
	}
}

// TestBatchExpr locks the batch route's expression items: an "expr" field
// replaces q/attr (the node= knob supplies the node), the item echoes the
// expression, and a malformed expression errors per item without failing
// the batch.
func TestBatchExpr(t *testing.T) {
	srv, _ := testServer(t)
	body := `{"queries":[{"expr":"(ML or DB) and node=5"},{"q":5,"expr":"ML"},{"expr":"ML AND"}],"workers":2}`
	resp, err := http.Post(srv.URL+"/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var items []batchItem
	if err := json.NewDecoder(resp.Body).Decode(&items); err != nil {
		t.Fatal(err)
	}
	if len(items) != 3 {
		t.Fatalf("items = %d", len(items))
	}
	if items[0].Error != "" || items[0].Expr != "(ML or DB) and node=5" {
		t.Errorf("expr item 0: %+v", items[0])
	}
	if items[1].Error != "" {
		t.Errorf("expr item with q node errored: %s", items[1].Error)
	}
	if items[2].Error == "" || !strings.Contains(items[2].Error, "parse") && !strings.Contains(items[2].Error, "expect") {
		t.Errorf("malformed expr item did not report a parse error: %+v", items[2])
	}
	if items[0].Found && items[0].Rank < 1 {
		t.Errorf("found item with rank %d", items[0].Rank)
	}
}

func TestBatchValidationMatchesDiscoverShape(t *testing.T) {
	// The /batch route must reject an out-of-range node with the same error
	// text /discover produces for it: one validation shape across routes.
	srv, _ := testServer(t)
	resp, err := http.Post(srv.URL+"/batch", "application/json",
		strings.NewReader(`{"queries":[{"q":999999,"attr":0}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var items []batchItem
	if err := json.NewDecoder(resp.Body).Decode(&items); err != nil {
		t.Fatal(err)
	}
	discResp, err := http.Get(srv.URL + "/discover?q=999999")
	if err != nil {
		t.Fatal(err)
	}
	defer discResp.Body.Close()
	var discBody map[string]any
	if err := json.NewDecoder(discResp.Body).Decode(&discBody); err != nil {
		t.Fatal(err)
	}
	if items[0].Error == "" || items[0].Error != discBody["error"] {
		t.Errorf("validation shapes differ:\n batch:    %q\n discover: %v", items[0].Error, discBody["error"])
	}
}

func TestNotReadyUntilSearcherAttached(t *testing.T) {
	g, err := cod.GenerateDataset("tiny", 7)
	if err != nil {
		t.Fatal(err)
	}
	h := NewHandler(g, nil, Config{})
	srv := httptest.NewServer(h)
	defer srv.Close()

	// Live but not ready: probes split.
	getJSON(t, srv.URL+"/healthz", http.StatusOK, nil)
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz before ready: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("/readyz 503 without Retry-After")
	}
	getJSON(t, srv.URL+"/discover?q=0", http.StatusServiceUnavailable, nil)
	getJSON(t, srv.URL+"/stats", http.StatusServiceUnavailable, nil)

	s, err := cod.NewSearcher(g, cod.Options{K: 5, Theta: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	h.SetSearcher(s)
	getJSON(t, srv.URL+"/readyz", http.StatusOK, nil)
	getJSON(t, srv.URL+"/discover?q=0", http.StatusOK, nil)
}

func TestQueryTimeoutReturns504(t *testing.T) {
	h, g := testHandler(t, Config{QueryTimeout: time.Nanosecond})
	srv := httptest.NewServer(h)
	defer srv.Close()
	var q cod.NodeID
	for v := cod.NodeID(0); int(v) < g.N(); v++ {
		if len(g.Attrs(v)) > 0 {
			q = v
			break
		}
	}
	start := time.Now()
	url := srv.URL + "/discover?q=" + strconv.Itoa(int(q)) + "&method=codr"
	getJSON(t, url, http.StatusGatewayTimeout, nil)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("504 took %v", elapsed)
	}
	// Batch requests share the deadline and must not 200 with missing
	// answers.
	resp, err := http.Post(srv.URL+"/batch", "application/json",
		strings.NewReader(`{"queries":[{"q":`+strconv.Itoa(int(q))+`,"attr":0}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("timed-out batch: status %d, want 504", resp.StatusCode)
	}
}

func TestLoadShedReturns429(t *testing.T) {
	h, _ := testHandler(t, Config{MaxInFlight: 1})
	srv := httptest.NewServer(h)
	defer srv.Close()
	// Occupy the only admission slot, then probe: deterministic shedding
	// without racing a slow request.
	h.inflight <- struct{}{}
	resp, err := http.Get(srv.URL + "/discover?q=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("non-JSON 429 body: %v", err)
	}
	<-h.inflight
	// Slot freed: queries admitted again, and the slot is returned after
	// each request (a second probe still succeeds).
	getJSON(t, srv.URL+"/influence?q=0", http.StatusOK, nil)
	getJSON(t, srv.URL+"/influence?q=0", http.StatusOK, nil)
}

func TestPanicRecoveryReturns500(t *testing.T) {
	h, _ := testHandler(t, Config{})
	// A route that panics exercises the recovery middleware without
	// depending on any real handler misbehaving.
	h.mux.HandleFunc("GET /panic", func(http.ResponseWriter, *http.Request) {
		panic("boom")
	})
	srv := httptest.NewServer(h)
	defer srv.Close()
	getJSON(t, srv.URL+"/panic", http.StatusInternalServerError, nil)
	// The server survives the panic.
	getJSON(t, srv.URL+"/healthz", http.StatusOK, nil)
}

func TestUnknownRouteAndMethodAreJSON(t *testing.T) {
	srv, _ := testServer(t)
	getJSON(t, srv.URL+"/nope", http.StatusNotFound, nil)
	// Wrong method on a known path: 405 with Allow.
	resp, err := http.Post(srv.URL+"/discover", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /discover: status %d, want 405", resp.StatusCode)
	}
	if resp.Header.Get("Allow") == "" {
		t.Error("405 without Allow header")
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("non-JSON 405 body: %v", err)
	}
}
