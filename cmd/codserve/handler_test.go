package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"github.com/codsearch/cod"
)

func testServer(t *testing.T) (*httptest.Server, *cod.Graph) {
	t.Helper()
	g, err := cod.GenerateDataset("tiny", 7)
	if err != nil {
		t.Fatal(err)
	}
	s, err := cod.NewSearcher(g, cod.Options{K: 5, Theta: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(g, s))
	t.Cleanup(srv.Close)
	return srv, g
}

func getJSON(t *testing.T, url string, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
}

func TestHealthz(t *testing.T) {
	srv, _ := testServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status %d", resp.StatusCode)
	}
}

func TestStats(t *testing.T) {
	srv, g := testServer(t)
	var st statsResponse
	getJSON(t, srv.URL+"/stats", http.StatusOK, &st)
	if st.Nodes != g.N() || st.Edges != g.M() || st.Attrs != g.NumAttrs() {
		t.Errorf("stats %+v mismatch graph %d/%d/%d", st, g.N(), g.M(), g.NumAttrs())
	}
	if st.IndexMB <= 0 {
		t.Error("index size missing")
	}
}

func TestDiscoverEndpoint(t *testing.T) {
	srv, g := testServer(t)
	var q cod.NodeID = -1
	for v := cod.NodeID(0); int(v) < g.N(); v++ {
		if len(g.Attrs(v)) > 0 {
			q = v
			break
		}
	}
	attr := g.Attrs(q)[0]
	var dr discoverResponse
	url := srv.URL + "/discover?q=" + strconv.Itoa(int(q)) + "&attr=" + strconv.Itoa(int(attr))
	getJSON(t, url, http.StatusOK, &dr)
	if dr.Method != "codl" || dr.Query != int(q) {
		t.Errorf("response %+v", dr)
	}
	if dr.Found {
		if dr.Size == 0 || dr.Density < 0 || dr.Density > 1 {
			t.Errorf("bad measures: %+v", dr)
		}
		seen := false
		for _, v := range dr.Nodes {
			if v == q {
				seen = true
			}
		}
		if !seen {
			t.Error("community missing query node")
		}
	}
	// other methods
	for _, m := range []string{"codu", "codr"} {
		getJSON(t, url+"&method="+m, http.StatusOK, &dr)
		if dr.Method != m {
			t.Errorf("method echo = %q", dr.Method)
		}
	}
}

func TestDiscoverErrors(t *testing.T) {
	srv, _ := testServer(t)
	getJSON(t, srv.URL+"/discover", http.StatusBadRequest, nil)
	getJSON(t, srv.URL+"/discover?q=abc", http.StatusBadRequest, nil)
	getJSON(t, srv.URL+"/discover?q=999999", http.StatusBadRequest, nil)
	getJSON(t, srv.URL+"/discover?q=0&attr=zz", http.StatusBadRequest, nil)
	getJSON(t, srv.URL+"/discover?q=0&method=warp", http.StatusBadRequest, nil)
}

func TestInfluenceEndpoint(t *testing.T) {
	srv, _ := testServer(t)
	var ir influenceResponse
	getJSON(t, srv.URL+"/influence?q=0", http.StatusOK, &ir)
	if ir.Influence < 1 {
		t.Errorf("influence = %f", ir.Influence)
	}
	getJSON(t, srv.URL+"/influence?q=-3", http.StatusBadRequest, nil)
}

// Concurrent requests must serialize safely on the handler's mutex.
func TestConcurrentRequests(t *testing.T) {
	srv, _ := testServer(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(srv.URL + "/discover?q=" + strconv.Itoa(i))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
		}(i)
	}
	wg.Wait()
}

func TestBatchEndpoint(t *testing.T) {
	srv, g := testServer(t)
	var q cod.NodeID
	for v := cod.NodeID(0); int(v) < g.N(); v++ {
		if len(g.Attrs(v)) > 0 {
			q = v
			break
		}
	}
	body := `{"queries":[{"q":` + strconv.Itoa(int(q)) + `,"attr":` + strconv.Itoa(int(g.Attrs(q)[0])) + `},{"q":-4,"attr":0}],"workers":2}`
	resp, err := http.Post(srv.URL+"/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var items []batchItem
	if err := json.NewDecoder(resp.Body).Decode(&items); err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 {
		t.Fatalf("items = %d", len(items))
	}
	if items[0].Error != "" {
		t.Errorf("valid query errored: %s", items[0].Error)
	}
	if items[1].Error == "" {
		t.Error("invalid query did not error")
	}
	// malformed and oversized bodies rejected
	for _, bad := range []string{"{", `{"queries":[]}`} {
		resp, err := http.Post(srv.URL+"/batch", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d", bad, resp.StatusCode)
		}
	}
}
