package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/codsearch/cod"
)

func testHandler(t *testing.T, cfg Config) (*Handler, *cod.Graph) {
	t.Helper()
	g, err := cod.GenerateDataset("tiny", 7)
	if err != nil {
		t.Fatal(err)
	}
	s, err := cod.NewSearcher(g, cod.Options{K: 5, Theta: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return NewHandler(g, s, cfg), g
}

func testServer(t *testing.T) (*httptest.Server, *cod.Graph) {
	t.Helper()
	h, g := testHandler(t, Config{})
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv, g
}

func getJSON(t *testing.T, url string, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if ct := resp.Header.Get("Content-Type"); ct == "" {
		t.Errorf("GET %s: missing Content-Type", url)
	}
	// Every non-2xx body is a JSON error object per the serving contract.
	if wantStatus >= 400 {
		var body map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("GET %s: non-JSON error body: %v", url, err)
		}
		if body["error"] == "" {
			t.Errorf("GET %s: error body without message", url)
		}
		return
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
}

func TestHealthz(t *testing.T) {
	srv, _ := testServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status %d", resp.StatusCode)
	}
}

func TestStats(t *testing.T) {
	srv, g := testServer(t)
	var st statsResponse
	getJSON(t, srv.URL+"/stats", http.StatusOK, &st)
	if st.Nodes != g.N() || st.Edges != g.M() || st.Attrs != g.NumAttrs() {
		t.Errorf("stats %+v mismatch graph %d/%d/%d", st, g.N(), g.M(), g.NumAttrs())
	}
	if st.IndexMB <= 0 {
		t.Error("index size missing")
	}
}

func TestDiscoverEndpoint(t *testing.T) {
	srv, g := testServer(t)
	var q cod.NodeID = -1
	for v := cod.NodeID(0); int(v) < g.N(); v++ {
		if len(g.Attrs(v)) > 0 {
			q = v
			break
		}
	}
	attr := g.Attrs(q)[0]
	var dr discoverResponse
	url := srv.URL + "/discover?q=" + strconv.Itoa(int(q)) + "&attr=" + strconv.Itoa(int(attr))
	getJSON(t, url, http.StatusOK, &dr)
	if dr.Method != "codl" || dr.Query != int(q) {
		t.Errorf("response %+v", dr)
	}
	if dr.Found {
		if dr.Size == 0 || dr.Density < 0 || dr.Density > 1 {
			t.Errorf("bad measures: %+v", dr)
		}
		seen := false
		for _, v := range dr.Nodes {
			if v == q {
				seen = true
			}
		}
		if !seen {
			t.Error("community missing query node")
		}
	}
	// other methods
	for _, m := range []string{"codu", "codr"} {
		getJSON(t, url+"&method="+m, http.StatusOK, &dr)
		if dr.Method != m {
			t.Errorf("method echo = %q", dr.Method)
		}
	}
}

func TestDiscoverErrors(t *testing.T) {
	srv, _ := testServer(t)
	getJSON(t, srv.URL+"/discover", http.StatusBadRequest, nil)
	getJSON(t, srv.URL+"/discover?q=abc", http.StatusBadRequest, nil)
	getJSON(t, srv.URL+"/discover?q=999999", http.StatusBadRequest, nil)
	getJSON(t, srv.URL+"/discover?q=0&attr=zz", http.StatusBadRequest, nil)
	getJSON(t, srv.URL+"/discover?q=0&method=warp", http.StatusBadRequest, nil)
}

func TestInfluenceEndpoint(t *testing.T) {
	srv, _ := testServer(t)
	var ir influenceResponse
	getJSON(t, srv.URL+"/influence?q=0", http.StatusOK, &ir)
	if ir.Influence < 1 {
		t.Errorf("influence = %f", ir.Influence)
	}
	getJSON(t, srv.URL+"/influence?q=-3", http.StatusBadRequest, nil)
}

// Concurrent requests must serialize safely on the handler's mutex.
func TestConcurrentRequests(t *testing.T) {
	srv, _ := testServer(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(srv.URL + "/discover?q=" + strconv.Itoa(i))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
		}(i)
	}
	wg.Wait()
}

func TestBatchEndpoint(t *testing.T) {
	srv, g := testServer(t)
	var q cod.NodeID
	for v := cod.NodeID(0); int(v) < g.N(); v++ {
		if len(g.Attrs(v)) > 0 {
			q = v
			break
		}
	}
	body := `{"queries":[{"q":` + strconv.Itoa(int(q)) + `,"attr":` + strconv.Itoa(int(g.Attrs(q)[0])) + `},{"q":-4,"attr":0}],"workers":2}`
	resp, err := http.Post(srv.URL+"/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var items []batchItem
	if err := json.NewDecoder(resp.Body).Decode(&items); err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 {
		t.Fatalf("items = %d", len(items))
	}
	if items[0].Error != "" {
		t.Errorf("valid query errored: %s", items[0].Error)
	}
	if items[1].Error == "" {
		t.Error("invalid query did not error")
	}
	// malformed and oversized bodies rejected
	for _, bad := range []string{"{", `{"queries":[]}`} {
		resp, err := http.Post(srv.URL+"/batch", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d", bad, resp.StatusCode)
		}
	}
}

func TestBatchValidationMatchesDiscoverShape(t *testing.T) {
	// The /batch route must reject an out-of-range node with the same error
	// text /discover produces for it: one validation shape across routes.
	srv, _ := testServer(t)
	resp, err := http.Post(srv.URL+"/batch", "application/json",
		strings.NewReader(`{"queries":[{"q":999999,"attr":0}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var items []batchItem
	if err := json.NewDecoder(resp.Body).Decode(&items); err != nil {
		t.Fatal(err)
	}
	discResp, err := http.Get(srv.URL + "/discover?q=999999")
	if err != nil {
		t.Fatal(err)
	}
	defer discResp.Body.Close()
	var discBody map[string]string
	if err := json.NewDecoder(discResp.Body).Decode(&discBody); err != nil {
		t.Fatal(err)
	}
	if items[0].Error == "" || items[0].Error != discBody["error"] {
		t.Errorf("validation shapes differ:\n batch:    %q\n discover: %q", items[0].Error, discBody["error"])
	}
}

func TestNotReadyUntilSearcherAttached(t *testing.T) {
	g, err := cod.GenerateDataset("tiny", 7)
	if err != nil {
		t.Fatal(err)
	}
	h := NewHandler(g, nil, Config{})
	srv := httptest.NewServer(h)
	defer srv.Close()

	// Live but not ready: probes split.
	getJSON(t, srv.URL+"/healthz", http.StatusOK, nil)
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz before ready: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("/readyz 503 without Retry-After")
	}
	getJSON(t, srv.URL+"/discover?q=0", http.StatusServiceUnavailable, nil)
	getJSON(t, srv.URL+"/stats", http.StatusServiceUnavailable, nil)

	s, err := cod.NewSearcher(g, cod.Options{K: 5, Theta: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	h.SetSearcher(s)
	getJSON(t, srv.URL+"/readyz", http.StatusOK, nil)
	getJSON(t, srv.URL+"/discover?q=0", http.StatusOK, nil)
}

func TestQueryTimeoutReturns504(t *testing.T) {
	h, g := testHandler(t, Config{QueryTimeout: time.Nanosecond})
	srv := httptest.NewServer(h)
	defer srv.Close()
	var q cod.NodeID
	for v := cod.NodeID(0); int(v) < g.N(); v++ {
		if len(g.Attrs(v)) > 0 {
			q = v
			break
		}
	}
	start := time.Now()
	url := srv.URL + "/discover?q=" + strconv.Itoa(int(q)) + "&method=codr"
	getJSON(t, url, http.StatusGatewayTimeout, nil)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("504 took %v", elapsed)
	}
	// Batch requests share the deadline and must not 200 with missing
	// answers.
	resp, err := http.Post(srv.URL+"/batch", "application/json",
		strings.NewReader(`{"queries":[{"q":`+strconv.Itoa(int(q))+`,"attr":0}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("timed-out batch: status %d, want 504", resp.StatusCode)
	}
}

func TestLoadShedReturns429(t *testing.T) {
	h, _ := testHandler(t, Config{MaxInFlight: 1})
	srv := httptest.NewServer(h)
	defer srv.Close()
	// Occupy the only admission slot, then probe: deterministic shedding
	// without racing a slow request.
	h.inflight <- struct{}{}
	resp, err := http.Get(srv.URL + "/discover?q=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("non-JSON 429 body: %v", err)
	}
	<-h.inflight
	// Slot freed: queries admitted again, and the slot is returned after
	// each request (a second probe still succeeds).
	getJSON(t, srv.URL+"/influence?q=0", http.StatusOK, nil)
	getJSON(t, srv.URL+"/influence?q=0", http.StatusOK, nil)
}

func TestPanicRecoveryReturns500(t *testing.T) {
	h, _ := testHandler(t, Config{})
	// A route that panics exercises the recovery middleware without
	// depending on any real handler misbehaving.
	h.mux.HandleFunc("GET /panic", func(http.ResponseWriter, *http.Request) {
		panic("boom")
	})
	srv := httptest.NewServer(h)
	defer srv.Close()
	getJSON(t, srv.URL+"/panic", http.StatusInternalServerError, nil)
	// The server survives the panic.
	getJSON(t, srv.URL+"/healthz", http.StatusOK, nil)
}

func TestUnknownRouteAndMethodAreJSON(t *testing.T) {
	srv, _ := testServer(t)
	getJSON(t, srv.URL+"/nope", http.StatusNotFound, nil)
	// Wrong method on a known path: 405 with Allow.
	resp, err := http.Post(srv.URL+"/discover", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /discover: status %d, want 405", resp.StatusCode)
	}
	if resp.Header.Get("Allow") == "" {
		t.Error("405 without Allow header")
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("non-JSON 405 body: %v", err)
	}
}
