// Command codserve exposes a COD Searcher over HTTP. The offline phase
// (clustering + HIMOR) runs in the background after the listener is up:
// the process is immediately live for probes, and flips ready when the
// index is built. Queries are served as JSON with per-request deadlines,
// bounded concurrency, and graceful drain on SIGINT/SIGTERM.
//
//	codserve -dataset cora -addr :8080
//	codserve -graph data/mygraph.txt -k 3 -query-timeout 5s
//
// Endpoints:
//
//	GET  /healthz                        -> 200 while the process lives
//	GET  /readyz                         -> 200 once the offline phase is done, else 503
//	GET  /metrics                        -> Prometheus text metrics
//	GET  /stats                          -> graph/index statistics
//	GET  /discover?q=42&attr=1[&method=codl|codu|codr]
//	GET  /influence?q=42
//	POST /batch                          -> {"queries":[{"q":42,"attr":1},...]}
//	GET  /debug/queries[?format=text]    -> recent + slow query traces (flight recorder)
//	GET  /debug/querystats               -> streaming per-(variant, predicate, outcome) latency digests
//
// -query-log DIR appends one wide JSONL event per query to a size-rotated,
// crash-tolerant log (analyzed offline with codlog); -query-log-sample sets
// the deterministic keep rate for OK events (slow and errored events are
// always kept).
//
// Serving contract: malformed input is 400, not-ready is 503, shed load is
// 429 with Retry-After, an expired -query-timeout is 504, and every
// response carries a Content-Type (JSON error bodies everywhere but the
// probe endpoints).
//
// -debug-addr starts a second listener carrying net/http/pprof under
// /debug/pprof/ plus a /metrics mirror. It is off by default: profiling
// endpoints stay off the serving port so they are never reachable from
// query traffic.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/codsearch/cod"
	"github.com/codsearch/cod/internal/blobstore"
	"github.com/codsearch/cod/internal/obs"
	"github.com/codsearch/cod/internal/obs/eventlog"
)

func main() {
	var (
		graphFile     = flag.String("graph", "", "graph file in cod text format (overrides -dataset)")
		datasetN      = flag.String("dataset", "cora", "built-in dataset name")
		addr          = flag.String("addr", ":8080", "listen address")
		addrFile      = flag.String("addr-file", "", "write the bound address to this file once listening")
		k             = flag.Int("k", 5, "required influence rank k")
		theta         = flag.Int("theta", 10, "RR graphs per node (θ)")
		seed          = flag.Uint64("seed", 42, "random seed")
		queryTimeout  = flag.Duration("query-timeout", 30*time.Second, "per-request query deadline (0 = none)")
		maxInFlight   = flag.Int("max-inflight", 64, "concurrent query cap before shedding with 429")
		grace         = flag.Duration("shutdown-grace", 10*time.Second, "drain window for in-flight queries on shutdown")
		debugAddr     = flag.String("debug-addr", "", "optional listen address for pprof + /metrics (off when empty)")
		sampleCache   = flag.Int("sample-cache", 0, "per-attribute RR sample pools kept resident (0 = off); hits/misses on /metrics")
		slowQuery     = flag.Duration("slow-query", obs.DefaultSlowAfter, "latency at which a query is retained in the /debug/queries slow ring")
		indexStore    = flag.String("index-store", "", "blob store root directory to serve published index epochs from (skips the local offline build)")
		indexWatch    = flag.Duration("index-watch", 10*time.Second, "poll cadence for new index epochs in the store (0 = fetch once at startup)")
		indexDataset  = flag.String("index-dataset", "", "dataset namespace within -index-store (defaults to -dataset)")
		adaptiveEps   = flag.Float64("adaptive-eps", 0.05, "indifference width ε for bounded-error adaptive sampling (used when -adaptive-delta > 0)")
		adaptiveDelta = flag.Float64("adaptive-delta", 0, "certification failure probability δ; > 0 enables bounded-error adaptive sampling")
		queryLog      = flag.String("query-log", "", "directory for the durable query-event log (JSONL, size-rotated; off when empty)")
		queryLogRate  = flag.Float64("query-log-sample", 1.0, "deterministic keep rate for OK events in -query-log (slow/error events are always kept)")
		queryLogBytes = flag.Int64("query-log-max-bytes", 64<<20, "rotate -query-log files at this size (fsync on rotate)")
	)
	flag.Parse()

	// δ > 0 opts into bounded-error staged sampling; ε alone changes nothing,
	// so the default answers stay byte-identical to earlier releases.
	adaptive := cod.AdaptiveOptions{Enabled: *adaptiveDelta > 0, Eps: *adaptiveEps, Delta: *adaptiveDelta}
	if adaptive.Enabled {
		log.Printf("adaptive sampling on: eps=%g delta=%g", *adaptiveEps, *adaptiveDelta)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// With -index-store the graph and index both arrive inside published
	// snapshots; nothing is built locally.
	var g *cod.Graph
	if *indexStore == "" {
		var err error
		g, err = loadGraph(*graphFile, *datasetN, *seed)
		if err != nil {
			log.Fatal("codserve: ", err)
		}
		log.Printf("graph loaded: n=%d m=%d attrs=%d", g.N(), g.M(), g.NumAttrs())
	}

	// The event sink opens before the handler so the very first admitted
	// query is captured; it closes after the drain so the log's tail is the
	// last query served.
	var events *eventlog.Sink
	if *queryLog != "" {
		var err error
		events, err = eventlog.Open(eventlog.Options{
			Dir:          *queryLog,
			MaxFileBytes: *queryLogBytes,
			SampleRate:   *queryLogRate,
			SlowAfter:    *slowQuery,
		})
		if err != nil {
			log.Fatal("codserve: ", err)
		}
		log.Printf("query-event log on %s (sample %.3g, rotate at %d bytes)", *queryLog, *queryLogRate, *queryLogBytes)
	}

	reg := obs.NewRegistry()
	h := NewHandler(g, nil, Config{QueryTimeout: *queryTimeout, MaxInFlight: *maxInFlight, Metrics: reg,
		SlowQuery: *slowQuery, Events: events})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal("codserve: ", err)
	}

	// The debug listener carries pprof and a /metrics mirror, kept off the
	// serving address so profiling is opt-in and never exposed to query
	// traffic. It shares the registry, so both listeners report one truth.
	var debugSrv *http.Server
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dmux.Handle("/metrics", reg)
		dmux.Handle("/debug/queries", h.Flight())
		dmux.Handle("/debug/querystats", h.QueryStats())
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatal("codserve: debug listener: ", err)
		}
		debugSrv = &http.Server{Handler: dmux, ReadHeaderTimeout: 5 * time.Second}
		go func() {
			if err := debugSrv.Serve(dln); err != nil && err != http.ErrServerClosed {
				log.Printf("codserve: debug server: %v", err)
			}
		}()
		log.Printf("debug server (pprof + /metrics) on %s", dln.Addr())
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			log.Fatal("codserve: writing addr file: ", err)
		}
	}
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      writeTimeoutFor(*queryTimeout),
		IdleTimeout:       2 * time.Minute,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	log.Printf("listening on %s (queries answer 503 until the offline phase completes)", ln.Addr())

	// The offline phase polls ctx, so a shutdown signal during warmup
	// abandons the build instead of blocking the drain. In -index-store
	// mode no local build runs; the swapper goroutine fetches published
	// epochs instead and keeps converging on the store for the process
	// lifetime (buildDone then stays silent).
	buildDone := make(chan error, 1)
	if *indexStore != "" {
		dataset := *indexDataset
		if dataset == "" {
			dataset = *datasetN
		}
		store, err := blobstore.NewFS(*indexStore)
		if err != nil {
			log.Fatal("codserve: ", err)
		}
		sw := &Swapper{
			Store:    store,
			Dataset:  dataset,
			Interval: *indexWatch,
			Base: cod.Options{SampleCache: *sampleCache,
				CacheHierarchies: *sampleCache > 0, Adaptive: adaptive},
			H: h,
		}
		log.Printf("serving index epochs for dataset %q from %s (watch %v)", dataset, *indexStore, *indexWatch)
		go sw.Run(ctx)
	} else {
		go func() {
			// Metrics-only recorder: the offline phase reports its stage timings
			// (rr_sample, hac_merge, himor_build) on /metrics before the first
			// query ever arrives.
			bctx := obs.WithRecorder(ctx, obs.NewRecorder(h.qm, nil))
			s, err := cod.NewSearcherCtx(bctx, g, cod.Options{K: *k, Theta: *theta, Seed: *seed,
				SampleCache: *sampleCache, CacheHierarchies: *sampleCache > 0, Adaptive: adaptive})
			if err != nil {
				buildDone <- err
				return
			}
			h.SetSearcher(s)
			log.Printf("offline phase done; index %.2f MB; ready", float64(s.IndexBytes())/(1<<20))
			buildDone <- nil
		}()
	}

	select {
	case err := <-serveErr:
		log.Fatal("codserve: ", err)
	case <-ctx.Done():
	case err := <-buildDone:
		if err != nil {
			if ctx.Err() == nil {
				log.Fatal("codserve: offline phase: ", err)
			}
			log.Printf("offline phase abandoned on shutdown: %v", err)
		}
		if ctx.Err() == nil {
			select {
			case err := <-serveErr:
				log.Fatal("codserve: ", err)
			case <-ctx.Done():
			}
		}
	}

	stop() // a second signal now kills the process immediately
	log.Printf("shutdown signal received; draining in-flight queries (grace %v)", *grace)
	sctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		log.Fatal("codserve: drain incomplete: ", err)
	}
	if debugSrv != nil {
		_ = debugSrv.Shutdown(sctx)
	}
	// Every in-flight query has finished recording; flush and fsync the
	// event log last so the final line on disk is the final query served.
	if err := events.Close(); err != nil {
		log.Printf("codserve: query-event log: %v", err)
	}
	log.Printf("drained cleanly; exiting")
}

// writeTimeoutFor keeps the server-side write deadline safely above the
// per-query deadline so 504 bodies are written by the handler, not cut off
// by the connection.
func writeTimeoutFor(queryTimeout time.Duration) time.Duration {
	if queryTimeout <= 0 {
		return 0 // no bound: match the unbounded query deadline
	}
	return queryTimeout + 15*time.Second
}

func loadGraph(graphFile, datasetN string, seed uint64) (*cod.Graph, error) {
	if graphFile == "" {
		return cod.GenerateDataset(datasetN, seed)
	}
	f, err := os.Open(graphFile)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := cod.LoadGraph(f)
	if err != nil {
		return nil, fmt.Errorf("parsing %s: %w", graphFile, err)
	}
	return g, nil
}
