// Command codserve exposes a COD Searcher over HTTP. The offline phase
// (clustering + HIMOR) runs at startup; queries are then served as JSON.
//
//	codserve -dataset cora -addr :8080
//	codserve -graph data/mygraph.txt -k 3
//
// Endpoints:
//
//	GET  /healthz                        -> 200 "ok"
//	GET  /stats                          -> graph/index statistics
//	GET  /discover?q=42&attr=1[&method=codl|codu|codr]
//	GET  /influence?q=42
//	POST /batch                          -> {"queries":[{"q":42,"attr":1},...]}
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"github.com/codsearch/cod"
)

func main() {
	var (
		graphFile = flag.String("graph", "", "graph file in cod text format (overrides -dataset)")
		datasetN  = flag.String("dataset", "cora", "built-in dataset name")
		addr      = flag.String("addr", ":8080", "listen address")
		k         = flag.Int("k", 5, "required influence rank k")
		theta     = flag.Int("theta", 10, "RR graphs per node (θ)")
		seed      = flag.Uint64("seed", 42, "random seed")
	)
	flag.Parse()

	g, err := loadGraph(*graphFile, *datasetN, *seed)
	if err != nil {
		log.Fatal("codserve: ", err)
	}
	log.Printf("graph loaded: n=%d m=%d attrs=%d", g.N(), g.M(), g.NumAttrs())
	s, err := cod.NewSearcher(g, cod.Options{K: *k, Theta: *theta, Seed: *seed})
	if err != nil {
		log.Fatal("codserve: ", err)
	}
	log.Printf("offline phase done; index %.2f MB", float64(s.IndexBytes())/(1<<20))

	log.Printf("listening on %s", *addr)
	if err := http.ListenAndServe(*addr, NewHandler(g, s)); err != nil {
		log.Fatal("codserve: ", err)
	}
}

func loadGraph(graphFile, datasetN string, seed uint64) (*cod.Graph, error) {
	if graphFile == "" {
		return cod.GenerateDataset(datasetN, seed)
	}
	f, err := os.Open(graphFile)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := cod.LoadGraph(f)
	if err != nil {
		return nil, fmt.Errorf("parsing %s: %w", graphFile, err)
	}
	return g, nil
}
