package main

import (
	"bufio"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"github.com/codsearch/cod"
)

// scrapeMetrics fetches /metrics and parses the unlabeled sample lines into
// name -> value (bucket lines with labels are skipped; _sum/_count appear as
// plain names).
func scrapeMetrics(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("GET /metrics: Content-Type %q", ct)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") || strings.Contains(line, "{") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		out[fields[0]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestMetricsEndpoint(t *testing.T) {
	srv, g := testServer(t)
	var q cod.NodeID
	for v := cod.NodeID(0); int(v) < g.N(); v++ {
		if len(g.Attrs(v)) > 0 {
			q = v
			break
		}
	}
	qs := strconv.Itoa(int(q))

	before := scrapeMetrics(t, srv.URL)
	if before["cod_ready"] != 1 {
		t.Errorf("cod_ready = %v, want 1", before["cod_ready"])
	}
	if before["cod_index_bytes"] <= 0 {
		t.Errorf("cod_index_bytes = %v, want > 0", before["cod_index_bytes"])
	}

	getJSON(t, srv.URL+"/discover?q="+qs, http.StatusOK, nil)
	after1 := scrapeMetrics(t, srv.URL)
	if got := after1["cod_queries_total"] - before["cod_queries_total"]; got != 1 {
		t.Errorf("one query moved cod_queries_total by %v, want 1", got)
	}
	if after1["cod_http_requests_total"] <= before["cod_http_requests_total"] {
		t.Error("cod_http_requests_total did not increase")
	}
	if after1["cod_query_seconds_count"] != before["cod_query_seconds_count"]+1 {
		t.Errorf("cod_query_seconds_count = %v after one query (was %v)",
			after1["cod_query_seconds_count"], before["cod_query_seconds_count"])
	}

	// Monotonicity across a second query.
	getJSON(t, srv.URL+"/discover?q="+qs+"&method=codr", http.StatusOK, nil)
	getJSON(t, srv.URL+"/discover?q="+qs+"&method=codu", http.StatusOK, nil)
	after2 := scrapeMetrics(t, srv.URL)
	if got := after2["cod_queries_total"] - after1["cod_queries_total"]; got != 2 {
		t.Errorf("two more queries moved cod_queries_total by %v, want 2", got)
	}
	if after2["cod_http_responses_2xx_total"] <= after1["cod_http_responses_2xx_total"] {
		t.Error("cod_http_responses_2xx_total did not increase")
	}

	// Every stage histogram is exposed, and after codl+codr+codu queries at
	// least five distinct stages have recorded real spans.
	exposed, active := 0, 0
	for name, v := range after2 {
		if strings.HasPrefix(name, "cod_stage_") && strings.HasSuffix(name, "_seconds_count") {
			exposed++
			if v > 0 {
				active++
			}
		}
	}
	if exposed < 5 {
		t.Errorf("only %d stage histograms exposed, want >= 5", exposed)
	}
	if active < 5 {
		t.Errorf("only %d stage histograms recorded spans, want >= 5 (metrics: %v)", active, after2)
	}

	// The catch-all contract survives the new route: unknown paths stay 404,
	// wrong method on /metrics stays 405.
	getJSON(t, srv.URL+"/nope", http.StatusNotFound, nil)
	resp, err := http.Post(srv.URL+"/metrics", "text/plain", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics: status %d, want 405", resp.StatusCode)
	}
}

func TestMetricsCountsErrorsAndSheds(t *testing.T) {
	h, _ := testHandler(t, Config{MaxInFlight: 1})
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)

	before := scrapeMetrics(t, srv.URL)
	getJSON(t, srv.URL+"/discover?q=999999", http.StatusBadRequest, nil)
	h.inflight <- struct{}{}
	getJSON(t, srv.URL+"/discover?q=0", http.StatusTooManyRequests, nil)
	<-h.inflight
	after := scrapeMetrics(t, srv.URL)

	if got := after["cod_query_errors_total"] - before["cod_query_errors_total"]; got != 1 {
		t.Errorf("cod_query_errors_total moved by %v, want 1", got)
	}
	if got := after["cod_http_shed_total"] - before["cod_http_shed_total"]; got != 1 {
		t.Errorf("cod_http_shed_total moved by %v, want 1", got)
	}
	if after["cod_http_responses_4xx_total"] <= before["cod_http_responses_4xx_total"] {
		t.Error("cod_http_responses_4xx_total did not increase")
	}
}
