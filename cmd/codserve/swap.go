package main

import (
	"context"
	"errors"
	"log"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/codsearch/cod"
	"github.com/codsearch/cod/internal/blobstore"
	"github.com/codsearch/cod/internal/obs"
)

// Swapper keeps a serving replica converged on a blob store's current index
// epoch: it polls the dataset's CURRENT pointer and, when a newer epoch
// appears, fetches it, verifies every byte (CRCs, sizes, params hash — see
// FetchSnapshotAt), and atomically installs it under live traffic. Every
// failure leaves the serving epoch untouched and flips the replica to the
// degraded "stale" state instead; epochs older than the serving one are
// rejected outright (rollbacks are republished as new epochs). One Swapper
// runs per process.
type Swapper struct {
	Store   blobstore.Store
	Dataset string
	// Interval is the poll cadence; <= 0 checks once and returns (fetch-
	// and-exit mode, used when -index-watch is 0).
	Interval time.Duration
	// Base supplies runtime-only searcher options (workers, caches); the
	// offline parameters always come from the fetched manifest.
	Base   cod.Options
	Policy blobstore.RetryPolicy
	H      *Handler

	// attempts numbers swap cycles for trace IDs: swap traces get
	// deterministic IDs derived from (epoch, attempt), never from the
	// clock.
	attempts atomic.Uint64
}

// Run polls until ctx is done (or once, with no Interval). The first
// convergence is what flips a store-fed replica from warming to serving.
func (sw *Swapper) Run(ctx context.Context) {
	pol := sw.Policy
	pol.OnRetry = func(op string, attempt int, err error) {
		sw.H.fetchRetries.Inc()
		log.Printf("codserve: index fetch retry %d: %s: %v", attempt, op, err)
	}
	sw.Policy = pol
	sw.tick(ctx)
	if sw.Interval <= 0 {
		return
	}
	t := time.NewTicker(sw.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			sw.tick(ctx)
		}
	}
}

// tick runs one convergence cycle. Outcomes:
//
//   - store has no epoch yet, or already serving it: no-op (not recorded —
//     at poll cadence this would drown the flight recorder)
//   - newer epoch: fetch+verify+swap, recorded in the flight recorder with
//     per-stage steps and counted in cod_index_swap_*_total
//   - older epoch, or any failure: rejected/stale, recorded likewise
func (sw *Swapper) tick(ctx context.Context) {
	served := sw.H.Epoch()
	cur, err := blobstore.FetchCurrent(ctx, sw.Store, sw.Dataset, sw.Policy)
	if err != nil {
		if errors.Is(err, blobstore.ErrNotExist) {
			// Nothing published yet: a warming replica keeps waiting, a
			// serving one keeps serving. Neither is degraded — there is no
			// newer epoch being missed.
			return
		}
		if ctx.Err() != nil {
			return
		}
		sw.H.swapFetch.Inc()
		sw.H.markStale(err)
		sw.record("fetch_current", served, 0, err)
		return
	}
	switch {
	case cur.Epoch == served:
		sw.H.clearStale()
		return
	case cur.Epoch < served:
		// Non-monotone CURRENT: refusing protects the replica from a
		// rolled-back or torn pointer; operators roll back by publishing
		// the old artifacts as a *new* epoch.
		sw.H.swapRejected.Inc()
		log.Printf("codserve: refusing swap to epoch %d (older than serving epoch %d)", cur.Epoch, served)
		sw.record("reject", served, cur.Epoch, errors.New("non-monotone epoch"))
		return
	}
	sw.swapTo(ctx, cur, served)
}

// swapTo fetches and installs the epoch cur names. The swap happens only
// after every verification has passed; any failure keeps the serving epoch
// and marks the replica stale.
func (sw *Swapper) swapTo(ctx context.Context, cur blobstore.Current, served uint64) {
	s, err := cod.FetchSnapshotAt(ctx, sw.Store, cur, sw.Base, sw.Policy)
	if err != nil {
		if ctx.Err() != nil {
			return
		}
		var se *cod.SnapshotError
		stage := "fetch"
		if errors.As(err, &se) {
			stage = se.Stage
		}
		switch stage {
		case "verify":
			sw.H.swapVerify.Inc()
		case "load":
			sw.H.swapLoad.Inc()
		default:
			sw.H.swapFetch.Inc()
		}
		sw.H.markStale(err)
		log.Printf("codserve: swap to epoch %d failed (%s stage): %v; still serving epoch %d",
			cur.Epoch, stage, err, served)
		sw.record(stage, served, cur.Epoch, err)
		return
	}
	sw.H.SetServing(s, cur.Epoch, cur.ParamsHash)
	sw.H.swapOK.Inc()
	log.Printf("codserve: swapped to epoch %d (params %s, index %.2f MB), previously %d",
		cur.Epoch, cur.ParamsHash, float64(s.IndexBytes())/(1<<20), served)
	sw.record("ok", served, cur.Epoch, nil)
}

// record files one swap attempt with the flight recorder, so /debug/queries
// interleaves swaps with the queries that straddled them. The trace ID is a
// pure function of (target epoch, attempt number) — deterministic, no clock
// involved — and the op is "index_swap" with an outcome step naming the
// stage that decided the attempt.
func (sw *Swapper) record(outcome string, from, to uint64, err error) {
	trace := obs.NewTrace()
	trace.EnsureID(obs.SeedTraceID(to<<20 ^ sw.attempts.Add(1)))
	rec := obs.NewRecorder(nil, trace)
	step := rec.StartStep("index_swap", strconv.FormatUint(from, 10)+"->"+strconv.FormatUint(to, 10))
	step.End(outcome)
	status := 200
	if err != nil {
		status = 500
	}
	now := time.Now()
	sw.H.flight.Record(obs.NewQueryRecord(trace, "index_swap",
		sw.Dataset+" epoch "+strconv.FormatUint(to, 10), status, now, 0, err))
}
