package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/codsearch/cod"
	"github.com/codsearch/cod/internal/blobstore"
	"github.com/codsearch/cod/internal/faultfs"
)

// TestChaosSwapUnderLoad is the robustness acceptance harness for index
// distribution: with deterministic fault injection on every blobstore
// operation (transport failures, torn writes, fsync errors, read-side bit
// rot), it drives 20+ epoch hot swaps under concurrent query load and
// asserts the serving contract never cracks:
//
//   - zero failed requests — every admitted query answers 200 throughout
//   - no swap ever installs an artifact that failed CRC/params verification
//     (asserted byte-for-byte: every response matches the reference answer
//     for the epoch its X-Cod-Epoch header names)
//   - epochs observed by one client are monotone non-decreasing
//
// Queries use method=codu with the sample cache on: pools derive from
// (Seed, attr, engine-epoch) only, so answers within one epoch are
// arrival-order invariant and byte-identity is assertable under load.
// The fault schedules are pure functions of an operation counter, so every
// failure replays identically under -race and -count=4.
func TestChaosSwapUnderLoad(t *testing.T) {
	const (
		totalEpochs = 22
		queryNodes  = 16
		workers     = 4
	)
	// Thousands of per-query slog lines would drown the -race -count=4 CI
	// output; the chaos run asserts on bodies and counters, not logs.
	prevLogger := slog.Default()
	slog.SetDefault(slog.New(slog.NewTextHandler(io.Discard, nil)))
	t.Cleanup(func() { slog.SetDefault(prevLogger) })
	dir := t.TempDir()
	clean, err := blobstore.NewFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The publisher's store tears every 6th write at 16 bytes (reporting
	// success), fails every 11th fsync, and drops every 9th operation at
	// the transport. Read-back verification plus retries must absorb all
	// of it.
	pubOps := faultfs.NewSeq(func(n int64) error {
		if n%9 == 0 {
			return errors.New("chaos: publisher transport reset")
		}
		return nil
	})
	pubTears := faultfs.NewSeq(func(n int64) error {
		if n%6 == 0 {
			return errors.New("tear")
		}
		return nil
	})
	pubSyncs := faultfs.NewSeq(func(n int64) error {
		if n%11 == 0 {
			return errors.New("chaos: fsync I/O error")
		}
		return nil
	})
	publisher, err := blobstore.NewFSWithHooks(dir, blobstore.Hooks{
		BeforeOp: func(op, key string) error { return pubOps.Next() },
		WrapWriter: func(key string, w io.Writer) io.Writer {
			if pubTears.Next() != nil {
				return &faultfs.TornWriter{W: w, Keep: 16}
			}
			return w
		},
		SyncError: func(key string) error { return pubSyncs.Next() },
	})
	if err != nil {
		t.Fatal(err)
	}
	// The replica's store drops every 7th operation and bit-flips every
	// 5th opened read stream. CRC verification must reject every corrupt
	// copy before it can reach a swap.
	repOps := faultfs.NewSeq(func(n int64) error {
		if n%7 == 0 {
			return errors.New("chaos: replica transport reset")
		}
		return nil
	})
	repRot := faultfs.NewSeq(func(n int64) error {
		if n%5 == 0 {
			return errors.New("rot")
		}
		return nil
	})
	replica, err := blobstore.NewFSWithHooks(dir, blobstore.Hooks{
		BeforeOp: func(op, key string) error { return repOps.Next() },
		WrapReader: func(key string, r io.Reader) io.Reader {
			if repRot.Next() != nil {
				return &faultfs.BitErrReader{R: r, Offsets: []int64{7, 23}, Mask: 0x10}
			}
			return r
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	sw, h := storeSwapper(t, replica)
	ctx := context.Background()
	base := cod.Options{SampleCache: 8}

	// expected maps epoch -> query node -> exact response body, computed
	// from a reference load of the same published epoch (clean reads)
	// before that epoch can ever be served.
	var expected sync.Map
	publish := func(epoch uint64) {
		t.Helper()
		g, err := cod.GenerateDataset("tiny", 7)
		if err != nil {
			t.Fatal(err)
		}
		src, err := cod.NewSearcher(g, cod.Options{K: 4, Theta: 4, Seed: 1000 + epoch, SampleCache: 8})
		if err != nil {
			t.Fatal(err)
		}
		// The faulty publisher may exhaust one key's retry budget on an
		// unlucky schedule alignment; a real builder would rerun, so the
		// harness does too.
		var perr error
		for attempt := 0; attempt < 4; attempt++ {
			if _, perr = cod.PublishSnapshot(ctx, publisher, "tiny", epoch, src, swapPolicy()); perr == nil {
				break
			}
		}
		if perr != nil {
			t.Fatalf("publish epoch %d: %v", epoch, perr)
		}
		cur, err := blobstore.FetchCurrent(ctx, clean, "tiny", swapPolicy())
		if err != nil {
			t.Fatal(err)
		}
		if cur.Epoch != epoch {
			t.Fatalf("CURRENT epoch %d after publishing %d", cur.Epoch, epoch)
		}
		ref, err := cod.FetchSnapshotAt(ctx, clean, cur, base, swapPolicy())
		if err != nil {
			t.Fatal(err)
		}
		refH := NewHandler(nil, nil, Config{})
		refH.SetServing(ref, cur.Epoch, cur.ParamsHash)
		bodies := make(map[int][]byte, queryNodes)
		for q := 0; q < queryNodes; q++ {
			rr := httptest.NewRecorder()
			refH.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/discover?q="+strconv.Itoa(q)+"&method=codu", nil))
			if rr.Code != http.StatusOK {
				t.Fatalf("reference query epoch %d q=%d: status %d", epoch, q, rr.Code)
			}
			bodies[q] = rr.Body.Bytes()
		}
		expected.Store(epoch, bodies)
	}
	converge := func(epoch uint64) {
		t.Helper()
		for i := 0; h.Epoch() != epoch; i++ {
			if i > 200 {
				t.Fatalf("replica failed to converge on epoch %d after %d ticks", epoch, i)
			}
			sw.tick(ctx)
		}
	}

	publish(1)
	converge(1)

	// Query workers hammer the handler for the rest of the run. Every
	// response must be 200, match the reference body of the epoch its
	// header names, and epochs must never go backward for one client.
	var (
		stop     atomic.Bool
		requests atomic.Int64
		straddle atomic.Int64
		failed   atomic.Pointer[string]
	)
	fail := func(format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		failed.CompareAndSwap(nil, &msg)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lastEpoch := uint64(0)
			for i := 0; !stop.Load(); i++ {
				q := (w*queryNodes/workers + i) % queryNodes
				rr := httptest.NewRecorder()
				h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet,
					"/discover?q="+strconv.Itoa(q)+"&method=codu", nil))
				requests.Add(1)
				if rr.Code != http.StatusOK {
					fail("worker %d: status %d body %s", w, rr.Code, rr.Body.String())
					return
				}
				epoch, err := strconv.ParseUint(rr.Header().Get("X-Cod-Epoch"), 10, 64)
				if err != nil {
					fail("worker %d: bad X-Cod-Epoch %q", w, rr.Header().Get("X-Cod-Epoch"))
					return
				}
				if epoch < lastEpoch {
					fail("worker %d: epoch went backward %d -> %d", w, lastEpoch, epoch)
					return
				}
				if epoch > lastEpoch && lastEpoch != 0 {
					straddle.Add(1)
				}
				lastEpoch = epoch
				bodiesAny, ok := expected.Load(epoch)
				if !ok {
					fail("worker %d: served unpublished epoch %d", w, epoch)
					return
				}
				want := bodiesAny.(map[int][]byte)[q]
				if !bytes.Equal(rr.Body.Bytes(), want) {
					fail("worker %d: epoch %d q=%d: body diverged from reference\n got: %s\nwant: %s",
						w, epoch, q, rr.Body.String(), want)
					return
				}
			}
		}(w)
	}

	for e := uint64(2); e <= totalEpochs; e++ {
		publish(e)
		converge(e)
	}
	stop.Store(true)
	wg.Wait()

	if msg := failed.Load(); msg != nil {
		t.Fatal(*msg)
	}
	if got := h.swapOK.Value(); got < totalEpochs {
		t.Fatalf("only %d successful swaps, want >= %d", got, totalEpochs)
	}
	if requests.Load() == 0 {
		t.Fatal("no queries ran during the chaos window")
	}
	// The fault schedules must actually have fired; otherwise the test
	// proves nothing.
	if repOps.Count() < 7 || repRot.Count() < 5 || pubTears.Count() < 6 {
		t.Fatalf("fault schedules barely consulted: repOps=%d repRot=%d pubTears=%d",
			repOps.Count(), repRot.Count(), pubTears.Count())
	}
	if h.fetchRetries.Value() == 0 {
		t.Fatal("no fetch retries under a faulting schedule")
	}
	t.Logf("chaos: %d requests, %d swaps, %d epoch transitions observed by clients, %d retries, verify failures %d, fetch failures %d",
		requests.Load(), h.swapOK.Value(), straddle.Load(), h.fetchRetries.Value(),
		h.swapVerify.Value(), h.swapFetch.Value())
}
