package main

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/codsearch/cod"
	"github.com/codsearch/cod/internal/blobstore"
)

func swapPolicy() blobstore.RetryPolicy {
	return blobstore.RetryPolicy{
		MaxAttempts: 4,
		Sleep:       func(ctx context.Context, d time.Duration) error { return ctx.Err() },
		Jitter:      func(int, time.Duration) time.Duration { return 0 },
	}
}

// publishEpochSeed builds a searcher over the tiny dataset with the given
// seed and publishes it as the given epoch.
func publishEpochSeed(t *testing.T, store blobstore.Store, epoch, seed uint64) {
	t.Helper()
	g, err := cod.GenerateDataset("tiny", 7)
	if err != nil {
		t.Fatal(err)
	}
	s, err := cod.NewSearcher(g, cod.Options{K: 4, Theta: 4, Seed: seed, SampleCache: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cod.PublishSnapshot(context.Background(), store, "tiny", epoch, s, swapPolicy()); err != nil {
		t.Fatalf("publish epoch %d: %v", epoch, err)
	}
}

func storeSwapper(t *testing.T, store blobstore.Store) (*Swapper, *Handler) {
	t.Helper()
	h := NewHandler(nil, nil, Config{})
	sw := &Swapper{Store: store, Dataset: "tiny", Base: cod.Options{SampleCache: 8}, Policy: swapPolicy(), H: h}
	sw.Policy.OnRetry = func(string, int, error) { h.fetchRetries.Inc() }
	return sw, h
}

func readyzState(t *testing.T, h *Handler) readyzResponse {
	t.Helper()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	var resp readyzResponse
	if err := json.NewDecoder(rr.Body).Decode(&resp); err != nil {
		t.Fatalf("readyz body: %v", err)
	}
	return resp
}

func TestSwapperConvergesAndReportsReadyz(t *testing.T) {
	store, err := blobstore.NewFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sw, h := storeSwapper(t, store)
	ctx := context.Background()

	// Nothing published: warming, 503, state field says so.
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while warming: %d", rr.Code)
	}
	if st := readyzState(t, h); st.State != "warming" {
		t.Fatalf("state %q, want warming", st.State)
	}
	sw.tick(ctx) // no epoch in the store: stays warming, no failure counted
	if h.Epoch() != 0 || h.swapFetch.Value() != 0 {
		t.Fatalf("tick on empty store: epoch %d, fetch failures %d", h.Epoch(), h.swapFetch.Value())
	}

	publishEpochSeed(t, store, 1, 100)
	sw.tick(ctx)
	if h.Epoch() != 1 {
		t.Fatalf("epoch %d after first converge, want 1", h.Epoch())
	}
	st := readyzState(t, h)
	if st.State != "serving" || st.Epoch != 1 || st.ParamsHash == "" || st.StaleForMS != 0 {
		t.Fatalf("readyz after converge: %+v", st)
	}
	if got := h.swapOK.Value(); got != 1 {
		t.Fatalf("swap ok counter %d", got)
	}

	// Same epoch again: no-op, no extra swap counted.
	sw.tick(ctx)
	if got := h.swapOK.Value(); got != 1 {
		t.Fatalf("noop tick bumped swaps to %d", got)
	}

	// A newer epoch swaps in; the X-Cod-Epoch header follows.
	publishEpochSeed(t, store, 2, 200)
	sw.tick(ctx)
	if h.Epoch() != 2 {
		t.Fatalf("epoch %d, want 2", h.Epoch())
	}
	qr := httptest.NewRecorder()
	h.ServeHTTP(qr, httptest.NewRequest(http.MethodGet, "/discover?q=0&method=codu", nil))
	if qr.Code != http.StatusOK || qr.Header().Get("X-Cod-Epoch") != "2" {
		t.Fatalf("query after swap: status %d epoch header %q", qr.Code, qr.Header().Get("X-Cod-Epoch"))
	}
}

func TestSwapperRejectsNonMonotoneEpoch(t *testing.T) {
	dir := t.TempDir()
	store, err := blobstore.NewFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	sw, h := storeSwapper(t, store)
	ctx := context.Background()
	publishEpochSeed(t, store, 5, 100)
	sw.tick(ctx)
	if h.Epoch() != 5 {
		t.Fatalf("epoch %d", h.Epoch())
	}
	// CURRENT regresses to an older epoch (publish epoch 3 after 5: Publish
	// rewrites CURRENT unconditionally — the *replica* is the monotonicity
	// gate).
	publishEpochSeed(t, store, 3, 300)
	sw.tick(ctx)
	if h.Epoch() != 5 {
		t.Fatalf("swapped backward to %d", h.Epoch())
	}
	if got := h.swapRejected.Value(); got != 1 {
		t.Fatalf("rejected counter %d", got)
	}
	// The rejection is visible in the flight recorder.
	found := false
	for _, rec := range h.flight.Recent() {
		if rec.Op == "index_swap" && rec.Err != "" {
			found = true
		}
	}
	if !found {
		t.Fatal("non-monotone rejection not recorded in flight recorder")
	}
}

func TestSwapperStaleOnFailureThenRecovers(t *testing.T) {
	dir := t.TempDir()
	clean, err := blobstore.NewFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	fail := errors.New("transport down")
	deny := false
	faulty, err := blobstore.NewFSWithHooks(dir, blobstore.Hooks{
		BeforeOp: func(op, key string) error {
			if deny {
				return fail
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sw, h := storeSwapper(t, faulty)
	ctx := context.Background()
	publishEpochSeed(t, clean, 1, 100)
	sw.tick(ctx)
	if h.Epoch() != 1 {
		t.Fatalf("epoch %d", h.Epoch())
	}

	// Store goes dark with a newer epoch published: replica keeps serving
	// epoch 1 and reports stale with a growing lag and the last error.
	publishEpochSeed(t, clean, 2, 200)
	deny = true
	sw.tick(ctx)
	if h.Epoch() != 1 {
		t.Fatalf("swapped during outage to %d", h.Epoch())
	}
	st := readyzState(t, h)
	if st.State != "stale" || st.StaleForMS < 0 || st.LastError == "" {
		t.Fatalf("readyz during outage: %+v", st)
	}
	if !strings.Contains(st.LastError, "transport down") {
		t.Fatalf("last_error %q", st.LastError)
	}
	// Queries still answer from the serving epoch.
	qr := httptest.NewRecorder()
	h.ServeHTTP(qr, httptest.NewRequest(http.MethodGet, "/discover?q=0&method=codu", nil))
	if qr.Code != http.StatusOK || qr.Header().Get("X-Cod-Epoch") != "1" {
		t.Fatalf("query during outage: %d epoch %q", qr.Code, qr.Header().Get("X-Cod-Epoch"))
	}

	// Store heals: next tick converges and clears stale.
	deny = false
	sw.tick(ctx)
	if h.Epoch() != 2 {
		t.Fatalf("epoch %d after heal", h.Epoch())
	}
	if st := readyzState(t, h); st.State != "serving" || st.StaleForMS != 0 || st.LastError != "" {
		t.Fatalf("readyz after heal: %+v", st)
	}
}

func TestSwapperNeverInstallsCorruptEpoch(t *testing.T) {
	dir := t.TempDir()
	clean, err := blobstore.NewFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	publishEpochSeed(t, clean, 1, 100)
	// Corrupt the index artifact in place (flip one byte inside a section).
	cur, err := blobstore.FetchCurrent(context.Background(), clean, "tiny", swapPolicy())
	if err != nil {
		t.Fatal(err)
	}
	key := blobstore.ArtifactKey("tiny", cur.Epoch, cur.ParamsHash, cod.ArtifactIndex)
	rc, err := clean.Open(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 0, 1<<16)
	buf := make([]byte, 4096)
	for {
		n, err := rc.Read(buf)
		b = append(b, buf[:n]...)
		if err != nil {
			break
		}
	}
	rc.Close()
	b[len(b)/2] ^= 1
	if err := clean.Put(context.Background(), key, strings.NewReader(string(b))); err != nil {
		t.Fatal(err)
	}

	sw, h := storeSwapper(t, clean)
	sw.tick(context.Background())
	if h.Epoch() != 0 {
		t.Fatalf("installed a corrupt epoch: %d", h.Epoch())
	}
	if got := h.swapVerify.Value(); got == 0 {
		t.Fatal("verify-failure counter untouched")
	}
	if st := readyzState(t, h); st.State != "warming" {
		// Never served anything, so still warming (stale requires a served
		// epoch to be stale *relative to*... it reports warming because no
		// state is installed; staleness shows once something serves).
		t.Fatalf("state %q", st.State)
	}
}

func TestStraddlingQueryGetsSwapStep(t *testing.T) {
	store, err := blobstore.NewFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sw, h := storeSwapper(t, store)
	ctx := context.Background()
	publishEpochSeed(t, store, 1, 100)
	sw.tick(ctx)

	// Admit a query on epoch 1, install epoch 2 mid-flight, finish the
	// query: its flight record must carry the index_swap straddle step.
	blocked := make(chan struct{})
	release := make(chan struct{})
	inner := func(w http.ResponseWriter, r *http.Request, st *servingState) {
		close(blocked)
		<-release
		writeJSON(w, http.StatusOK, map[string]string{"ok": "1"})
	}
	wrapped := h.guard(h.instrument(inner))
	done := make(chan struct{})
	go func() {
		defer close(done)
		rr := httptest.NewRecorder()
		wrapped(rr, httptest.NewRequest(http.MethodGet, "/discover?q=0", nil))
	}()
	<-blocked
	publishEpochSeed(t, store, 2, 200)
	sw.tick(ctx)
	if h.Epoch() != 2 {
		t.Fatalf("epoch %d", h.Epoch())
	}
	close(release)
	<-done

	found := false
	for _, rec := range h.flight.Recent() {
		for _, step := range rec.Steps {
			if step.Variant == "index_swap" && step.Kind == "1->2" && step.Outcome == "straddled" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("straddling query carries no index_swap step")
	}
}
