// Command codvet is the repository's static-analysis suite: a multichecker
// enforcing the determinism and concurrency contracts documented in
// DESIGN.md ("Determinism & concurrency contract").
//
// Usage:
//
//	codvet ./...                      # standalone (delegates to go vet)
//	go vet -vettool=$(which codvet) ./...
//	make lint                         # builds and runs it with the rest
//
// Analyzers: detrand (no global randomness or time-derived seeds in library
// code), maporder (no order-dependent map iteration), sharedwrite (no
// unsynchronized writes to captured variables in goroutines), floatcmp (no
// equality comparison of computed floats), ctxpoll (no work loops that
// ignore an accepted context in the core/influence pipelines), poolret (no
// use of a buffer after returning it to a sync.Pool), spanend (Recorder
// spans completed with End/EndItems on every path). Suppress a deliberate
// violation with `//codvet:ignore <analyzer> <reason>` on or above the line.
package main

import (
	"github.com/codsearch/cod/internal/analysis"
	"github.com/codsearch/cod/internal/analysis/ctxpoll"
	"github.com/codsearch/cod/internal/analysis/detrand"
	"github.com/codsearch/cod/internal/analysis/floatcmp"
	"github.com/codsearch/cod/internal/analysis/maporder"
	"github.com/codsearch/cod/internal/analysis/poolret"
	"github.com/codsearch/cod/internal/analysis/sharedwrite"
	"github.com/codsearch/cod/internal/analysis/spanend"
)

func main() {
	analysis.Main(
		detrand.Analyzer,
		maporder.Analyzer,
		sharedwrite.Analyzer,
		floatcmp.Analyzer,
		ctxpoll.Analyzer,
		poolret.Analyzer,
		spanend.Analyzer,
	)
}
