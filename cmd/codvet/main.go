// Command codvet is the repository's static-analysis suite: a multichecker
// enforcing the determinism and concurrency contracts documented in
// DESIGN.md ("Determinism & concurrency contract", "Static-analysis
// contract").
//
// Usage:
//
//	codvet ./...                      # standalone (delegates to go vet)
//	codvet -json ./...                # one JSON object per diagnostic line
//	go vet -vettool=$(which codvet) ./...
//	make lint                         # builds and runs it with the rest
//
// AST-local analyzers: detrand (no global randomness or time-derived seeds
// in library code), maporder (no order-dependent map iteration),
// sharedwrite (no unsynchronized writes to captured variables in
// goroutines), floatcmp (no equality comparison of computed floats),
// ctxpoll (no work loops that ignore an accepted context in the
// core/influence pipelines), poolret (no use of a buffer after returning
// it to a sync.Pool), spanend (Recorder spans completed with End/EndItems
// on every path).
//
// Interprocedural analyzers, driven by per-package facts serialized
// through cmd/go's vet plumbing (internal/analysis/facts.go): detflow
// (nondeterminism — clocks, global randomness, map order, goroutine
// completion order — must not flow into seeds or trace IDs, across any
// number of calls and packages), atomicmix (a field accessed via
// sync/atomic must never be accessed plainly anywhere), arenaescape
// (arena-owned views must not escape a function that releases the arena on
// any control-flow path).
//
// The meta-check unusedignore runs last and reports //codvet:ignore
// directives that no longer suppress anything. Suppress a deliberate
// violation with `//codvet:ignore <analyzer> <reason>` on or above the
// line.
package main

import (
	"github.com/codsearch/cod/internal/analysis"
	"github.com/codsearch/cod/internal/analysis/arenaescape"
	"github.com/codsearch/cod/internal/analysis/atomicmix"
	"github.com/codsearch/cod/internal/analysis/ctxpoll"
	"github.com/codsearch/cod/internal/analysis/detflow"
	"github.com/codsearch/cod/internal/analysis/detrand"
	"github.com/codsearch/cod/internal/analysis/floatcmp"
	"github.com/codsearch/cod/internal/analysis/maporder"
	"github.com/codsearch/cod/internal/analysis/poolret"
	"github.com/codsearch/cod/internal/analysis/sharedwrite"
	"github.com/codsearch/cod/internal/analysis/spanend"
	"github.com/codsearch/cod/internal/analysis/unusedignore"
)

func main() {
	analysis.Main(
		detrand.Analyzer,
		maporder.Analyzer,
		sharedwrite.Analyzer,
		floatcmp.Analyzer,
		ctxpoll.Analyzer,
		poolret.Analyzer,
		spanend.Analyzer,
		detflow.Analyzer,
		atomicmix.Analyzer,
		arenaescape.Analyzer,
		unusedignore.New(
			"detrand", "maporder", "sharedwrite", "floatcmp", "ctxpoll",
			"poolret", "spanend", "detflow", "atomicmix", "arenaescape",
		),
	)
}
