// Command datagen writes the built-in synthetic datasets to disk in the cod
// text format so they can be inspected or fed back via codquery -graph.
//
// Usage:
//
//	datagen -dataset cora -o cora.txt
//	datagen -all -dir ./data
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/codsearch/cod"
)

func main() {
	var (
		name = flag.String("dataset", "cora", "dataset to generate")
		out  = flag.String("o", "", "output file (default: <dataset>.txt)")
		all  = flag.Bool("all", false, "generate every built-in dataset")
		dir  = flag.String("dir", ".", "output directory for -all")
		seed = flag.Uint64("seed", 42, "random seed")
	)
	flag.Parse()
	if err := run(*name, *out, *all, *dir, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(name, out string, all bool, dir string, seed uint64) error {
	write := func(ds string, path string) error {
		g, err := cod.GenerateDataset(ds, seed)
		if err != nil {
			return err
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		n, err := g.WriteTo(f)
		if err != nil {
			return err
		}
		fmt.Printf("%s: n=%d m=%d attrs=%d -> %s (%d bytes)\n", ds, g.N(), g.M(), g.NumAttrs(), path, n)
		return nil
	}
	if all {
		for _, ds := range cod.DatasetNames() {
			if err := write(ds, filepath.Join(dir, ds+".txt")); err != nil {
				return err
			}
		}
		return nil
	}
	if out == "" {
		out = name + ".txt"
	}
	return write(name, out)
}
