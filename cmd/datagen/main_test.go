package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/codsearch/cod"
)

func TestWriteSingleDataset(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "tiny.txt")
	if err := run("tiny", out, false, dir, 11); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := cod.LoadGraph(f)
	if err != nil {
		t.Fatalf("written file not parseable: %v", err)
	}
	if g.N() != 120 {
		t.Errorf("N = %d", g.N())
	}
}

func TestDefaultOutputName(t *testing.T) {
	dir := t.TempDir()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(cwd)
	if err := run("tiny", "", false, ".", 11); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat("tiny.txt"); err != nil {
		t.Errorf("default output missing: %v", err)
	}
}

func TestRunRejectsUnknown(t *testing.T) {
	if err := run("nope", "x.txt", false, ".", 1); err == nil {
		t.Error("unknown dataset accepted")
	}
	if err := run("tiny", filepath.Join("missing-dir-xyz", "x.txt"), false, ".", 1); err == nil {
		t.Error("unwritable path accepted")
	}
}
