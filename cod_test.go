package cod

import (
	"bytes"
	"testing"
)

func buildTestGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := GenerateDataset("tiny", 7)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGraphBuilderFacade(t *testing.T) {
	b := NewGraphBuilder(4, 2)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddWeightedEdge(1, 2, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if err := b.SetAttrs(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddAttr(0, 0); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	if g.N() != 4 || g.M() != 3 || g.NumAttrs() != 2 {
		t.Fatalf("shape: %d %d %d", g.N(), g.M(), g.NumAttrs())
	}
	if !g.HasAttr(0, 1) || !g.HasAttr(0, 0) {
		t.Error("attrs lost")
	}
	if g.Degree(1) != 2 || len(g.Neighbors(1)) != 2 {
		t.Error("adjacency wrong")
	}
	if len(g.Attrs(0)) != 2 {
		t.Error("Attrs accessor wrong")
	}
}

func TestGraphRoundTripFacade(t *testing.T) {
	g := buildTestGraph(t)
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Error("round trip changed the graph")
	}
}

func TestDatasetNames(t *testing.T) {
	names := DatasetNames()
	if len(names) != 7 || names[0] != "cora" {
		t.Errorf("DatasetNames = %v", names)
	}
	if _, err := GenerateDataset("no-such", 1); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestSearcherDiscover(t *testing.T) {
	g := buildTestGraph(t)
	s, err := NewSearcher(g, Options{K: 5, Theta: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var q NodeID = -1
	for v := NodeID(0); int(v) < g.N(); v++ {
		if len(g.Attrs(v)) > 0 {
			q = v
			break
		}
	}
	if q < 0 {
		t.Fatal("no attributed node")
	}
	attr := g.Attrs(q)[0]
	com, err := s.Discover(q, attr)
	if err != nil {
		t.Fatal(err)
	}
	if com.Found {
		if !com.Contains(q) {
			t.Error("community missing query node")
		}
		if com.Size() == 0 {
			t.Error("found but empty")
		}
		rho := g.TopologyDensity(com.Nodes)
		if rho < 0 || rho > 1 {
			t.Errorf("density %f", rho)
		}
	}

	comU, err := s.DiscoverUnattributed(q)
	if err != nil {
		t.Fatal(err)
	}
	_ = comU
	comG, err := s.DiscoverGlobal(q, attr)
	if err != nil {
		t.Fatal(err)
	}
	_ = comG
}

func TestSearcherValidation(t *testing.T) {
	g := buildTestGraph(t)
	s, err := NewSearcher(g, Options{Theta: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Discover(-1, 0); err == nil {
		t.Error("negative node accepted")
	}
	if _, err := s.Discover(NodeID(g.N()), 0); err == nil {
		t.Error("out-of-range node accepted")
	}
	if _, err := s.Discover(0, AttrID(g.NumAttrs())); err == nil {
		t.Error("out-of-range attribute accepted")
	}
	if _, err := NewSearcher(nil, Options{}); err == nil {
		t.Error("nil graph accepted")
	}
}

func TestSearcherIntrospection(t *testing.T) {
	g := buildTestGraph(t)
	s, err := NewSearcher(g, Options{Theta: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	depth, err := s.HierarchyDepth(0)
	if err != nil || depth < 1 {
		t.Fatalf("HierarchyDepth = %d, %v", depth, err)
	}
	rank, size, err := s.InfluenceRank(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rank < 0 || size < 2 {
		t.Errorf("rank=%d size=%d", rank, size)
	}
	if _, _, err := s.InfluenceRank(0, depth+5); err == nil {
		t.Error("out-of-range ancestor accepted")
	}
	if s.IndexBytes() <= 0 {
		t.Error("IndexBytes non-positive")
	}
	infl, err := s.EstimateInfluence(0)
	if err != nil {
		t.Fatal(err)
	}
	if infl < 1 || infl > float64(g.N()) {
		t.Errorf("influence %f out of range", infl)
	}
}

func TestSearcherDeterminism(t *testing.T) {
	g := buildTestGraph(t)
	run := func() []NodeID {
		s, err := NewSearcher(g, Options{K: 3, Theta: 5, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		com, err := s.Discover(0, g.Attrs(0)[0])
		if err != nil {
			t.Fatal(err)
		}
		return com.Nodes
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("nondeterministic: %d vs %d nodes", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic membership")
		}
	}
}

func TestMaximizeInfluence(t *testing.T) {
	g := buildTestGraph(t)
	s, err := NewSearcher(g, Options{Theta: 5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	seeds, spread, err := s.MaximizeInfluence(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) == 0 || len(seeds) > 3 {
		t.Fatalf("seeds = %v", seeds)
	}
	if spread <= 0 || spread > float64(g.N()) {
		t.Errorf("spread = %f", spread)
	}
	if _, _, err := s.MaximizeInfluence(0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := s.MaximizeInfluence(g.N() + 1); err == nil {
		t.Error("k>n accepted")
	}
}

func TestLoadEdgeListFacade(t *testing.T) {
	edges := bytes.NewBufferString("# c\n5 9\n9 12\n5 12\n")
	attrs := bytes.NewBufferString("5 0\n9 1\n12 0\n")
	g, ids, err := LoadEdgeList(edges, attrs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("shape %d/%d", g.N(), g.M())
	}
	if !g.HasAttr(ids[9], 1) {
		t.Error("attr lost through facade")
	}
	// unattributed load
	g2, _, err := LoadEdgeList(bytes.NewBufferString("1 2\n"), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumAttrs() != 0 {
		t.Error("attr universe should be empty")
	}
	// error paths
	if _, _, err := LoadEdgeList(bytes.NewBufferString(""), nil, 0); err == nil {
		t.Error("empty edge list accepted")
	}
	if _, _, err := LoadEdgeList(bytes.NewBufferString("1 2\n"), bytes.NewBufferString("42 0\n"), 1); err == nil {
		t.Error("unknown attr node accepted")
	}
}

func TestSearcherParallelOffline(t *testing.T) {
	g := buildTestGraph(t)
	s, err := NewSearcher(g, Options{K: 5, Theta: 4, Seed: 8, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var q NodeID
	for v := NodeID(0); int(v) < g.N(); v++ {
		if len(g.Attrs(v)) > 0 {
			q = v
			break
		}
	}
	com, err := s.Discover(q, g.Attrs(q)[0])
	if err != nil {
		t.Fatal(err)
	}
	if com.Found && !com.Contains(q) {
		t.Error("parallel-offline community missing q")
	}
	// determinism for fixed (seed, workers)
	s2, err := NewSearcher(g, Options{K: 5, Theta: 4, Seed: 8, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for v := NodeID(0); int(v) < g.N(); v++ {
		d1, _ := s.HierarchyDepth(v)
		for i := 0; i < d1; i++ {
			r1, _, _ := s.InfluenceRank(v, i)
			r2, _, _ := s2.InfluenceRank(v, i)
			if r1 != r2 {
				t.Fatalf("parallel offline nondeterministic at node %d level %d", v, i)
			}
		}
	}
}
