package cod

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/codsearch/cod/internal/obs"
)

// The public *Ctx APIs must fail fast on a dead context, report typed
// partial-progress errors, and keep the validation error shape identical to
// the plain APIs.

func TestDiscoverCtxCancellation(t *testing.T) {
	g := buildTestGraph(t)
	s, err := NewSearcher(g, Options{K: 3, Theta: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	q := determinismQueries(g)[0]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	start := time.Now()
	if _, err := s.DiscoverCtx(ctx, q.Node, q.Attr); !errors.Is(err, context.Canceled) {
		t.Errorf("DiscoverCtx error = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("canceled DiscoverCtx took %v", elapsed)
	}
	if _, err := s.DiscoverUnattributedCtx(ctx, q.Node); !errors.Is(err, context.Canceled) {
		t.Errorf("DiscoverUnattributedCtx error = %v", err)
	}
	if _, err := s.DiscoverGlobalCtx(ctx, q.Node, q.Attr); !errors.Is(err, context.Canceled) {
		t.Errorf("DiscoverGlobalCtx error = %v", err)
	}
	var ce *CanceledError
	if _, err := s.EstimateInfluenceCtx(ctx, q.Node); !errors.As(err, &ce) {
		t.Errorf("EstimateInfluenceCtx error %T carries no progress", err)
	} else if ce.Total == 0 || ce.Done != 0 {
		t.Errorf("unexpected progress %d/%d", ce.Done, ce.Total)
	}
	if _, _, err := s.MaximizeInfluenceCtx(ctx, 2); !errors.Is(err, context.Canceled) {
		t.Errorf("MaximizeInfluenceCtx error = %v", err)
	}

	// Validation still runs before the context check, with the plain shape.
	_, errPlain := s.Discover(-1, 0)
	_, errCtx := s.DiscoverCtx(ctx, -1, 0)
	if errPlain == nil || errCtx == nil || errPlain.Error() != errCtx.Error() {
		t.Errorf("validation error shape differs: %v vs %v", errPlain, errCtx)
	}
}

// TestCanceledQueryFlushesPartialTrace locks the flush-on-cancel contract:
// a query stopped by cancellation still records the spans of the stages it
// entered, and the recorder classifies it as canceled. CODU is the probe
// because its pipeline reaches the sampling stage (which flushes a partial
// span) even when the context is already dead; CODL's up-front ctx check
// returns before any instrumented stage runs.
func TestCanceledQueryFlushesPartialTrace(t *testing.T) {
	g := buildTestGraph(t)
	s, err := NewSearcher(g, Options{K: 3, Theta: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	q := determinismQueries(g)[0]

	reg := obs.NewRegistry()
	m := obs.NewQueryMetrics(reg)
	tr := obs.NewTrace()
	ctx, cancel := context.WithCancel(
		obs.WithRecorder(context.Background(), obs.NewRecorder(m, tr)))
	cancel()

	if _, err := s.DiscoverUnattributedCtx(ctx, q.Node); !errors.Is(err, context.Canceled) {
		t.Fatalf("DiscoverUnattributedCtx error = %v, want context.Canceled", err)
	}
	if tr.Len() == 0 {
		t.Fatal("canceled query flushed no trace spans")
	}
	found := false
	for _, sp := range tr.Spans() {
		if sp.Stage == obs.StageRRSample {
			found = true
			if sp.Items != 0 {
				t.Errorf("immediately-canceled sampling span reports %d items, want 0", sp.Items)
			}
		}
	}
	if !found {
		t.Errorf("trace %q has no rr_sample span", tr.String())
	}
	if got := m.QueriesCanceled.Value(); got != 1 {
		t.Errorf("cod_queries_canceled_total = %d, want 1", got)
	}
	if got := m.Queries.Value(); got != 1 {
		t.Errorf("cod_queries_total = %d, want 1", got)
	}
}

func TestDiscoverCtxDeadline(t *testing.T) {
	g := buildTestGraph(t)
	s, err := NewSearcher(g, Options{K: 3, Theta: 50, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	q := determinismQueries(g)[0]
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	if _, err := s.DiscoverCtx(ctx, q.Node, q.Attr); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expired deadline error = %v, want DeadlineExceeded", err)
	}
}

func TestDiscoverBatchCtxCancellation(t *testing.T) {
	g := buildTestGraph(t)
	s, err := NewSearcher(g, Options{K: 3, Theta: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	queries := determinismQueries(g)
	queries = append(queries, Query{Node: -1, Attr: 0})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := s.DiscoverBatchCtx(ctx, queries, 4)
	for i, r := range results {
		if r.Err == nil {
			t.Fatalf("item %d: canceled batch item returned no error", i)
		}
		if i == len(results)-1 {
			// The invalid query must be rejected by validation, not the
			// context: validation is checked first.
			if errors.Is(r.Err, context.Canceled) {
				t.Errorf("invalid query reported context error: %v", r.Err)
			}
			continue
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("item %d: error %v does not unwrap to context.Canceled", i, r.Err)
		}
	}
}

func TestDiscoverBatchValidationMatchesDiscover(t *testing.T) {
	g := buildTestGraph(t)
	s, err := NewSearcher(g, Options{K: 3, Theta: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Node and attribute range errors must share one shape between the
	// scalar and batch APIs (and Validate).
	cases := []Query{{Node: NodeID(g.N()), Attr: 0}, {Node: 0, Attr: AttrID(g.NumAttrs())}}
	for _, q := range cases {
		_, scalarErr := s.Discover(q.Node, q.Attr)
		batch := s.DiscoverBatch([]Query{q}, 1)
		if scalarErr == nil || batch[0].Err == nil {
			t.Fatalf("invalid query %+v accepted", q)
		}
		if scalarErr.Error() != batch[0].Err.Error() {
			t.Errorf("error shapes differ for %+v:\n scalar: %v\n batch:  %v", q, scalarErr, batch[0].Err)
		}
		if vErr := s.Validate(q.Node, q.Attr); vErr == nil || vErr.Error() != scalarErr.Error() {
			t.Errorf("Validate shape differs for %+v: %v vs %v", q, vErr, scalarErr)
		}
	}
}

// errFlipCtx flips Err() to Canceled after a fixed number of calls, placing
// the cancellation at a deterministic point in the middle of a run.
type errFlipCtx struct {
	context.Context
	calls, nilFor int
}

func (c *errFlipCtx) Err() error {
	c.calls++
	if c.calls > c.nilFor {
		return context.Canceled
	}
	return nil
}

// TestAdaptiveCanceledMidStageFlushesPartialTrace extends the flush-on-
// cancel contract to staged sampling: a cancel landing in the middle of an
// adaptive query's stage schedule must surface a *CanceledError with the
// cumulative cross-stage progress, and every stage the query entered must
// have flushed its per-stage rr_sample span — the span item counts sum to
// exactly the samples the error reports paid for.
func TestAdaptiveCanceledMidStageFlushesPartialTrace(t *testing.T) {
	g := buildTestGraph(t)
	opts := Options{K: 3, Theta: 4, Seed: 5}
	// Uncertifiable thresholds force the full multi-stage schedule.
	opts.Adaptive = AdaptiveOptions{Enabled: true, Eps: 1e-300, Delta: 1e-300}
	s, err := NewSearcher(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	q := determinismQueries(g)[0]

	// Walk the flip point forward until the cancel lands strictly inside the
	// sampling schedule. Each nilFor value replays deterministically, so the
	// first partial run found is a stable test case.
	for nilFor := 1; nilFor < 100; nilFor++ {
		tr := obs.NewTrace()
		base := obs.WithRecorder(context.Background(), obs.NewRecorder(nil, tr))
		fc := &errFlipCtx{Context: base, nilFor: nilFor}
		_, err := s.DiscoverUnattributedCtx(fc, q.Node)
		if err == nil {
			t.Fatalf("nilFor=%d: adaptive query completed before any cancel landed", nilFor)
		}
		var ce *CanceledError
		if !errors.As(err, &ce) {
			t.Fatalf("nilFor=%d: error %T is not *CanceledError (err=%v)", nilFor, err, err)
		}
		if ce.Done == 0 || ce.Op != "influence: rr batch" {
			// Canceled before sampling started, or inside a non-sampling
			// stage (e.g. the fold, whose Done counts folded RR graphs, not
			// drawn samples); flip later until the cancel lands mid-draw.
			continue
		}
		if ce.Done >= ce.Total {
			t.Fatalf("nilFor=%d: progress %d/%d is not partial", nilFor, ce.Done, ce.Total)
		}
		var items int64
		spans := 0
		for _, sp := range tr.Spans() {
			if sp.Stage == obs.StageRRSample {
				items += sp.Items
				spans++
			}
		}
		if items != int64(ce.Done) {
			t.Errorf("nilFor=%d: rr_sample spans carry %d items across %d stages, want the %d samples the error reports",
				nilFor, items, spans, ce.Done)
		}
		if spans == 0 {
			t.Error("no rr_sample stage span flushed")
		}
		return
	}
	t.Fatal("no flip point produced a mid-sampling cancel")
}
