package cod

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/codsearch/cod/internal/obs"
)

// This file is the determinism-replay suite: the same seeded workload must
// produce byte-identical output regardless of the worker count, both for the
// offline phase (Options.Workers drives parallel RR sampling) and the online
// batch path (DiscoverBatch's worker pool). Run it under -race (`make race`):
// the replay exercises the concurrent paths, so the two gates compose.

// batchBytes serializes batch results exactly (order, membership, flags,
// errors), so two runs compare byte-for-byte.
func batchBytes(results []BatchResult) string {
	out := ""
	for i, r := range results {
		errText := "<nil>"
		if r.Err != nil {
			errText = r.Err.Error()
		}
		out += fmt.Sprintf("%d: q=%+v found=%t fromIndex=%t nodes=%v err=%s\n",
			i, r.Query, r.Community.Found, r.Community.FromIndex, r.Community.Nodes, errText)
	}
	return out
}

func determinismQueries(g *Graph) []Query {
	var queries []Query
	for v := NodeID(0); int(v) < g.N() && len(queries) < 16; v += 3 {
		if as := g.Attrs(v); len(as) > 0 {
			queries = append(queries, Query{Node: v, Attr: as[0]})
		}
	}
	return queries
}

func TestDiscoverBatchReplayByteIdentical(t *testing.T) {
	g := buildTestGraph(t)
	s, err := NewSearcher(g, Options{K: 3, Theta: 4, Seed: 97})
	if err != nil {
		t.Fatal(err)
	}
	queries := determinismQueries(g)
	if len(queries) == 0 {
		t.Fatal("no attributed query nodes in test graph")
	}
	want := batchBytes(s.DiscoverBatch(queries, 1))
	for _, workers := range []int{2, 8} {
		got := batchBytes(s.DiscoverBatch(queries, workers))
		if got != want {
			t.Errorf("workers=%d batch differs from sequential run:\n--- sequential\n%s--- workers=%d\n%s",
				workers, want, workers, got)
		}
	}
}

// TestDiscoverCtxByteIdenticalToDiscover locks the context-plumbing
// contract: an uncancelled DiscoverCtx must answer byte-identically to
// Discover — the bounded-interval ctx polling consumes no randomness. Two
// independently built Searchers isolate the per-query seed sequence.
func TestDiscoverCtxByteIdenticalToDiscover(t *testing.T) {
	g := buildTestGraph(t)
	queries := determinismQueries(g)
	if len(queries) == 0 {
		t.Fatal("no attributed query nodes in test graph")
	}
	opts := Options{K: 3, Theta: 4, Seed: 97}
	s1, err := NewSearcher(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSearcherCtx(context.Background(), g, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		want, err1 := s1.Discover(q.Node, q.Attr)
		got, err2 := s2.DiscoverCtx(context.Background(), q.Node, q.Attr)
		if err1 != nil || err2 != nil {
			t.Fatalf("query %+v errored: %v / %v", q, err1, err2)
		}
		if fmt.Sprintf("%+v", want) != fmt.Sprintf("%+v", got) {
			t.Errorf("query %+v: DiscoverCtx %+v differs from Discover %+v", q, got, want)
		}
	}
	// The unattributed and global variants share the same contract.
	u1, _ := s1.DiscoverUnattributed(queries[0].Node)
	u2, _ := s2.DiscoverUnattributedCtx(context.Background(), queries[0].Node)
	if fmt.Sprintf("%+v", u1) != fmt.Sprintf("%+v", u2) {
		t.Errorf("DiscoverUnattributedCtx %+v differs from DiscoverUnattributed %+v", u2, u1)
	}
	g1, _ := s1.DiscoverGlobal(queries[0].Node, queries[0].Attr)
	g2, _ := s2.DiscoverGlobalCtx(context.Background(), queries[0].Node, queries[0].Attr)
	if fmt.Sprintf("%+v", g1) != fmt.Sprintf("%+v", g2) {
		t.Errorf("DiscoverGlobalCtx %+v differs from DiscoverGlobal %+v", g2, g1)
	}
}

// TestDiscoverBatchCtxByteIdentical extends the replay suite to the ctx
// batch path: uncancelled DiscoverBatchCtx must equal DiscoverBatch for
// every worker count.
func TestDiscoverBatchCtxByteIdentical(t *testing.T) {
	g := buildTestGraph(t)
	s, err := NewSearcher(g, Options{K: 3, Theta: 4, Seed: 97})
	if err != nil {
		t.Fatal(err)
	}
	queries := determinismQueries(g)
	// Include invalid entries: up-front validation must report them the same
	// way on both paths.
	queries = append(queries, Query{Node: -1, Attr: 0}, Query{Node: 0, Attr: 9999})
	want := batchBytes(s.DiscoverBatch(queries, 1))
	for _, workers := range []int{1, 2, 8} {
		got := batchBytes(s.DiscoverBatchCtx(context.Background(), queries, workers))
		if got != want {
			t.Errorf("ctx batch workers=%d differs:\n--- plain\n%s--- ctx\n%s", workers, want, got)
		}
	}
}

// TestDiscoverWithRecorderByteIdentical locks the observability contract of
// DESIGN.md §11: a live Recorder (metrics + trace) attached to the context
// must not change a single byte of any result. Instrumentation reads clocks
// and counts but never draws randomness or branches on measured values.
func TestDiscoverWithRecorderByteIdentical(t *testing.T) {
	g := buildTestGraph(t)
	queries := determinismQueries(g)
	if len(queries) == 0 {
		t.Fatal("no attributed query nodes in test graph")
	}
	opts := Options{K: 3, Theta: 4, Seed: 97}

	reg := obs.NewRegistry()
	m := obs.NewQueryMetrics(reg)
	rctx := obs.WithRecorder(context.Background(), obs.NewRecorder(m, obs.NewTrace()))

	// Two independently built Searchers isolate the per-query seed sequence;
	// the second one is built AND queried with the recorder attached, so the
	// offline phase is instrumented too.
	s1, err := NewSearcherCtx(context.Background(), g, opts)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSearcherCtx(rctx, g, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		want, err1 := s1.DiscoverCtx(context.Background(), q.Node, q.Attr)
		got, err2 := s2.DiscoverCtx(rctx, q.Node, q.Attr)
		if err1 != nil || err2 != nil {
			t.Fatalf("query %+v errored: %v / %v", q, err1, err2)
		}
		if fmt.Sprintf("%+v", want) != fmt.Sprintf("%+v", got) {
			t.Errorf("query %+v: instrumented %+v differs from plain %+v", q, got, want)
		}
	}
	u1, _ := s1.DiscoverUnattributedCtx(context.Background(), queries[0].Node)
	u2, _ := s2.DiscoverUnattributedCtx(rctx, queries[0].Node)
	if fmt.Sprintf("%+v", u1) != fmt.Sprintf("%+v", u2) {
		t.Errorf("instrumented codu %+v differs from plain %+v", u2, u1)
	}
	g1, _ := s1.DiscoverGlobalCtx(context.Background(), queries[0].Node, queries[0].Attr)
	g2, _ := s2.DiscoverGlobalCtx(rctx, queries[0].Node, queries[0].Attr)
	if fmt.Sprintf("%+v", g1) != fmt.Sprintf("%+v", g2) {
		t.Errorf("instrumented codr %+v differs from plain %+v", g2, g1)
	}

	// The recorder must have actually observed the work — a vacuous pass
	// (instrumentation silently detached) would prove nothing.
	if got := m.Queries.Value(); got == 0 {
		t.Error("recorder saw no queries; instrumentation is not wired")
	}
	var spans int64
	for s := obs.Stage(0); s < obs.NumStages; s++ {
		spans += m.StageSeconds(s).Count()
	}
	if spans == 0 {
		t.Error("recorder saw no stage spans; pipeline instrumentation is not wired")
	}
}

// TestDiscoverBatchWithRecorderByteIdentical extends the lock to the batch
// path, where one Recorder is shared across workers.
func TestDiscoverBatchWithRecorderByteIdentical(t *testing.T) {
	g := buildTestGraph(t)
	s, err := NewSearcher(g, Options{K: 3, Theta: 4, Seed: 97})
	if err != nil {
		t.Fatal(err)
	}
	queries := determinismQueries(g)
	want := batchBytes(s.DiscoverBatchCtx(context.Background(), queries, 4))

	reg := obs.NewRegistry()
	m := obs.NewQueryMetrics(reg)
	rctx := obs.WithRecorder(context.Background(), obs.NewRecorder(m, obs.NewTrace()))
	got := batchBytes(s.DiscoverBatchCtx(rctx, queries, 4))
	if got != want {
		t.Errorf("instrumented batch differs:\n--- plain\n%s--- instrumented\n%s", want, got)
	}
	if int(m.Queries.Value()) != len(queries) {
		t.Errorf("recorder counted %d queries, want %d", m.Queries.Value(), len(queries))
	}
}

// TestDiscoverWithFlightRecorderByteIdentical extends the §11 lock to the
// PR-5 observability surface: per-query traces (trace IDs, step spans) fed
// into a FlightRecorder after every query must not change a single byte of
// any result. Trace IDs are pure functions of the per-query seed, and the
// seed sequence advances identically with or without instrumentation.
func TestDiscoverWithFlightRecorderByteIdentical(t *testing.T) {
	g := buildTestGraph(t)
	queries := determinismQueries(g)
	if len(queries) == 0 {
		t.Fatal("no attributed query nodes in test graph")
	}
	opts := Options{K: 3, Theta: 4, Seed: 97}
	s1, err := NewSearcher(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSearcher(g, opts)
	if err != nil {
		t.Fatal(err)
	}

	flight := obs.NewFlightRecorder(len(queries), 4, obs.DefaultSlowAfter)
	var traceIDs []string
	for _, q := range queries {
		want, err1 := s1.Discover(q.Node, q.Attr)

		// Fresh trace per query, exactly as codserve's middleware does.
		tr := obs.NewTrace()
		rctx := obs.WithRecorder(context.Background(), obs.NewRecorder(nil, tr))
		got, err2 := s2.DiscoverCtx(rctx, q.Node, q.Attr)
		flight.Record(obs.NewQueryRecord(tr, "discover", "", 0, time.Now(), 0, err2))

		if err1 != nil || err2 != nil {
			t.Fatalf("query %+v errored: %v / %v", q, err1, err2)
		}
		if fmt.Sprintf("%+v", want) != fmt.Sprintf("%+v", got) {
			t.Errorf("query %+v: flight-instrumented %+v differs from plain %+v", q, got, want)
		}
		traceIDs = append(traceIDs, tr.ID())
	}

	// The flight recorder must have retained real traces — and the trace IDs,
	// being seed-derived, must replay identically on a rebuilt searcher.
	recent := flight.Recent()
	if len(recent) != len(queries) {
		t.Fatalf("flight recorder retained %d records, want %d", len(recent), len(queries))
	}
	for _, rec := range recent {
		if len(rec.TraceID) != 32 {
			t.Errorf("record %q has malformed trace ID %q", rec.Detail, rec.TraceID)
		}
		if len(rec.Steps) == 0 {
			t.Errorf("record with trace %s carries no step spans", rec.TraceID)
		}
	}
	s3, err := NewSearcher(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		tr := obs.NewTrace()
		rctx := obs.WithRecorder(context.Background(), obs.NewRecorder(nil, tr))
		if _, err := s3.DiscoverCtx(rctx, q.Node, q.Attr); err != nil {
			t.Fatal(err)
		}
		if tr.ID() != traceIDs[i] {
			t.Errorf("query %d: trace ID %s does not replay (got %s): IDs must be pure functions of the seed sequence",
				i, traceIDs[i], tr.ID())
		}
	}
}

// TestAdaptiveExhaustedByteIdentical locks the PR-8 staged-sampling
// determinism contract at the public API: an adaptive Searcher whose
// thresholds can never certify (subnormal ε and δ survive the >0 default
// checks) runs every stage to exhaustion, and must then be byte-identical
// to the non-adaptive Searcher — same communities on every path and worker
// count, and the same replayed trace IDs, because the staged draws consume
// the per-query PCG stream in exactly the full-budget order.
func TestAdaptiveExhaustedByteIdentical(t *testing.T) {
	g := buildTestGraph(t)
	queries := determinismQueries(g)
	if len(queries) == 0 {
		t.Fatal("no attributed query nodes in test graph")
	}
	base := Options{K: 3, Theta: 4, Seed: 97}
	exhaustive := base
	exhaustive.Adaptive = AdaptiveOptions{Enabled: true, Eps: 1e-300, Delta: 1e-300}

	s1, err := NewSearcher(g, base)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSearcher(g, exhaustive)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		want := batchBytes(s1.DiscoverBatch(queries, workers))
		got := batchBytes(s2.DiscoverBatch(queries, workers))
		if got != want {
			t.Errorf("workers=%d: exhausted adaptive batch differs from non-adaptive:\n--- plain\n%s--- adaptive\n%s",
				workers, want, got)
		}
	}

	// Trace IDs are seed-derived; the adaptive searcher must replay the
	// plain searcher's IDs, with only the step outcomes differing.
	s3, err := NewSearcher(g, base)
	if err != nil {
		t.Fatal(err)
	}
	s4, err := NewSearcher(g, exhaustive)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		tr1, tr2 := obs.NewTrace(), obs.NewTrace()
		ctx1 := obs.WithRecorder(context.Background(), obs.NewRecorder(nil, tr1))
		ctx2 := obs.WithRecorder(context.Background(), obs.NewRecorder(nil, tr2))
		if _, err := s3.DiscoverCtx(ctx1, q.Node, q.Attr); err != nil {
			t.Fatal(err)
		}
		if _, err := s4.DiscoverCtx(ctx2, q.Node, q.Attr); err != nil {
			t.Fatal(err)
		}
		if tr1.ID() != tr2.ID() {
			t.Errorf("query %+v: adaptive trace ID %s differs from plain %s", q, tr2.ID(), tr1.ID())
		}
		for _, st := range tr2.Steps() {
			if st.Kind == "sample" {
				if st.Outcome != "exhausted" {
					t.Errorf("query %+v: exhaustive adaptive sample outcome %q, want exhausted", q, st.Outcome)
				}
				if st.Stages < 1 {
					t.Errorf("query %+v: sample step records %d stages", q, st.Stages)
				}
			}
		}
	}
}

// TestAdaptiveEarlyStopInFlightRecorder checks the /debug/queries surface:
// a query that certifies early must show up in the flight recorder with the
// early_stop outcome and its realized stage count on the sample step. A huge
// ε makes the indifference rule fire at the first certification check, so
// the early stop is guaranteed even on the tiny test graph.
func TestAdaptiveEarlyStopInFlightRecorder(t *testing.T) {
	g := buildTestGraph(t)
	queries := determinismQueries(g)
	if len(queries) == 0 {
		t.Fatal("no attributed query nodes in test graph")
	}
	opts := Options{K: 3, Theta: 4, Seed: 97}
	opts.Adaptive = AdaptiveOptions{Enabled: true, Eps: 2, Delta: 0.05}
	s, err := NewSearcher(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	flight := obs.NewFlightRecorder(len(queries), 4, obs.DefaultSlowAfter)
	for _, q := range queries {
		tr := obs.NewTrace()
		rctx := obs.WithRecorder(context.Background(), obs.NewRecorder(nil, tr))
		_, err := s.DiscoverCtx(rctx, q.Node, q.Attr)
		flight.Record(obs.NewQueryRecord(tr, "discover", "", 0, time.Now(), 0, err))
		if err != nil {
			t.Fatal(err)
		}
	}
	stops := 0
	for _, rec := range flight.Recent() {
		for _, st := range rec.Steps {
			if st.Kind == "sample" && st.Outcome == "early_stop" {
				stops++
				if st.Stages < 1 {
					t.Errorf("trace %s: early_stop sample step records %d stages", rec.TraceID, st.Stages)
				}
			}
		}
	}
	if stops == 0 {
		t.Error("no early_stop outcome reached the flight recorder at ε=2")
	}
}

func TestSearcherReplayAcrossOfflineWorkerCounts(t *testing.T) {
	// Two Searchers built independently with the same seed but different
	// offline sampling parallelism must answer identically: construction
	// re-runs clustering and HIMOR indexing from scratch, so this also
	// catches any map-iteration-order leak in the offline phase.
	g := buildTestGraph(t)
	queries := determinismQueries(g)
	if len(queries) == 0 {
		t.Fatal("no attributed query nodes in test graph")
	}
	var want string
	for i, workers := range []int{1, 8} {
		s, err := NewSearcher(g, Options{K: 3, Theta: 4, Seed: 97, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		got := batchBytes(s.DiscoverBatch(queries, 4))
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Errorf("offline workers=%d produces different answers:\n--- workers=1\n%s--- workers=%d\n%s",
				workers, want, workers, got)
		}
	}
}
