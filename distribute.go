package cod

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"

	"github.com/codsearch/cod/internal/blobstore"
)

// Artifact names every published snapshot carries: the attributed graph and
// the codindx2 index built over it. The manifest records a CRC-32 and size
// for each, and the index file's own header additionally pins the offline
// parameters — two independent layers of verification between a blob store
// and a serving Searcher.
const (
	ArtifactGraph = "graph.codg"
	ArtifactIndex = "index.codindx2"
)

// IndexParams returns the offline parameters this Searcher's index was built
// with, in the canonical form the distribution manifest records. It matches
// what SaveIndex writes into the codindx2 header, so the params hash derived
// from it names exactly the semantics a loader will verify.
func (s *Searcher) IndexParams() blobstore.ParamsSpec {
	h := headerFor(s.opts, s.g.N())
	return blobstore.ParamsSpec{
		K:        int(h.K),
		Theta:    int(h.Theta),
		BetaBits: h.BetaBits,
		Linkage:  int(h.Linkage),
		Model:    int(h.Model),
		Balanced: h.Balanced == 1,
		Seed:     h.Seed,
		Nodes:    h.Nodes,
	}
}

// optionsFromSpec projects a manifest's recorded offline parameters onto
// base, which supplies the runtime-only knobs (workers, caches) the manifest
// deliberately does not pin. LoadSearcher then re-verifies the result
// against the index header, so a lying manifest still cannot smuggle in an
// index with different semantics.
func optionsFromSpec(spec blobstore.ParamsSpec, base Options) Options {
	base.K = spec.K
	base.Theta = spec.Theta
	base.Beta = math.Float64frombits(spec.BetaBits)
	base.Linkage = Linkage(spec.Linkage)
	base.Model = Model(spec.Model)
	base.Balanced = spec.Balanced
	base.Seed = spec.Seed
	return base
}

// SnapshotError classifies a FetchSnapshot failure by the stage it died in,
// so operators (and swap metrics) can tell a flaky transport from a
// corrupted artifact from a semantic load failure.
type SnapshotError struct {
	// Stage is "fetch" (the store could not deliver the bytes), "verify"
	// (the bytes failed integrity or parameter verification), or "load"
	// (verified bytes failed to reconstruct a Searcher).
	Stage string
	Err   error
}

func (e *SnapshotError) Error() string {
	return fmt.Sprintf("cod: snapshot %s failed: %v", e.Stage, e.Err)
}

func (e *SnapshotError) Unwrap() error { return e.Err }

// snapshotErr wraps err with its stage, upgrading "fetch" to "verify" when
// the underlying cause is an integrity failure rather than a transport one.
func snapshotErr(stage string, err error) error {
	if stage == "fetch" && errors.Is(err, blobstore.ErrVerify) {
		stage = "verify"
	}
	return &SnapshotError{Stage: stage, Err: err}
}

// PublishSnapshot serializes the Searcher's graph and index and publishes
// them to the store as one epoch of dataset, returning the installed
// manifest. Artifact CRCs are recorded in the manifest and every write is
// verified by read-back; see blobstore.Publish for the ordering guarantees.
func PublishSnapshot(ctx context.Context, store blobstore.Store, dataset string, epoch uint64, s *Searcher, pol blobstore.RetryPolicy) (*blobstore.Manifest, error) {
	var gb bytes.Buffer
	if _, err := s.Graph().WriteTo(&gb); err != nil {
		return nil, fmt.Errorf("cod: encoding graph: %w", err)
	}
	var ib bytes.Buffer
	if err := s.SaveIndex(&ib); err != nil {
		return nil, err
	}
	artifacts := map[string][]byte{
		ArtifactGraph: gb.Bytes(),
		ArtifactIndex: ib.Bytes(),
	}
	return blobstore.Publish(ctx, store, dataset, epoch, s.IndexParams(), artifacts, pol)
}

// NextEpoch returns the epoch number a new publish to dataset should use:
// one past the current epoch, or 1 for a dataset nothing was published to.
func NextEpoch(ctx context.Context, store blobstore.Store, dataset string, pol blobstore.RetryPolicy) (uint64, error) {
	cur, err := blobstore.FetchCurrent(ctx, store, dataset, pol)
	if err != nil {
		if errors.Is(err, blobstore.ErrNotExist) {
			return 1, nil
		}
		return 0, err
	}
	return cur.Epoch + 1, nil
}

// FetchSnapshot resolves dataset's CURRENT pointer and loads that epoch; see
// FetchSnapshotAt.
func FetchSnapshot(ctx context.Context, store blobstore.Store, dataset string, base Options, pol blobstore.RetryPolicy) (*Searcher, blobstore.Current, error) {
	cur, err := blobstore.FetchCurrent(ctx, store, dataset, pol)
	if err != nil {
		return nil, blobstore.Current{}, snapshotErr("fetch", err)
	}
	s, err := FetchSnapshotAt(ctx, store, cur, base, pol)
	if err != nil {
		return nil, cur, err
	}
	return s, cur, nil
}

// FetchSnapshotAt fetches, verifies, and loads the epoch cur names: the
// manifest (CRC-checked against CURRENT), then both artifacts (CRC-checked
// against the manifest), then a Searcher reconstructed under the manifest's
// recorded parameters — which LoadSearcher independently re-verifies against
// the index file's own header. base supplies runtime-only options; the
// offline parameters always come from the manifest. Every failure is a
// *SnapshotError naming the stage, and no partially-verified state escapes:
// the caller either gets a fully-verified Searcher or keeps serving what it
// had.
func FetchSnapshotAt(ctx context.Context, store blobstore.Store, cur blobstore.Current, base Options, pol blobstore.RetryPolicy) (*Searcher, error) {
	m, err := blobstore.FetchManifest(ctx, store, cur, pol)
	if err != nil {
		return nil, snapshotErr("fetch", err)
	}
	graphBytes, err := blobstore.FetchArtifact(ctx, store, m, ArtifactGraph, pol)
	if err != nil {
		return nil, snapshotErr("fetch", err)
	}
	indexBytes, err := blobstore.FetchArtifact(ctx, store, m, ArtifactIndex, pol)
	if err != nil {
		return nil, snapshotErr("fetch", err)
	}
	g, err := LoadGraph(bytes.NewReader(graphBytes))
	if err != nil {
		return nil, snapshotErr("load", err)
	}
	if int64(g.N()) != m.Params.Nodes {
		return nil, snapshotErr("verify", fmt.Errorf("%w: graph has %d nodes, manifest records %d",
			blobstore.ErrVerify, g.N(), m.Params.Nodes))
	}
	s, err := LoadSearcher(g, bytes.NewReader(indexBytes), optionsFromSpec(m.Params, base))
	if err != nil {
		stage := "load"
		if errors.Is(err, ErrIndexVersion) || errors.Is(err, ErrIndexTruncated) ||
			errors.Is(err, ErrIndexChecksum) || errors.Is(err, ErrIndexParams) {
			stage = "verify"
		}
		return nil, snapshotErr(stage, err)
	}
	return s, nil
}
