package cod

import (
	"context"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"github.com/codsearch/cod/internal/blobstore"
	"github.com/codsearch/cod/internal/faultfs"
)

func distPolicy() blobstore.RetryPolicy {
	return blobstore.RetryPolicy{
		MaxAttempts: 4,
		Sleep:       func(ctx context.Context, d time.Duration) error { return ctx.Err() },
		Jitter:      func(int, time.Duration) time.Duration { return 0 },
	}
}

func distSearcher(t *testing.T) *Searcher {
	t.Helper()
	g, err := GenerateDataset("tiny", 7)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSearcher(g, Options{K: 6, Seed: 11, SampleCache: 8})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSnapshotRoundTrip(t *testing.T) {
	src := distSearcher(t)
	store, err := blobstore.NewFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	m, err := PublishSnapshot(ctx, store, "tiny", 1, src, distPolicy())
	if err != nil {
		t.Fatalf("PublishSnapshot: %v", err)
	}
	if m.ParamsHash != src.IndexParams().Hash() {
		t.Fatalf("manifest hash %s, searcher params hash %s", m.ParamsHash, src.IndexParams().Hash())
	}
	if len(m.Artifacts) != 2 {
		t.Fatalf("artifacts %v", m.Artifacts)
	}

	got, cur, err := FetchSnapshot(ctx, store, "tiny", Options{SampleCache: 8}, distPolicy())
	if err != nil {
		t.Fatalf("FetchSnapshot: %v", err)
	}
	if cur.Epoch != 1 || cur.ParamsHash != m.ParamsHash {
		t.Fatalf("CURRENT %+v", cur)
	}
	if got.IndexParams() != src.IndexParams() {
		t.Fatalf("params drifted: %+v vs %+v", got.IndexParams(), src.IndexParams())
	}
	// The fetched searcher answers identically to the source.
	for q := NodeID(0); q < 10; q++ {
		want, err1 := src.DiscoverUnattributed(q)
		have, err2 := got.DiscoverUnattributed(q)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("q=%d: err %v vs %v", q, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if len(want.Nodes) != len(have.Nodes) || want.Found != have.Found {
			t.Fatalf("q=%d: %d nodes found=%v, want %d nodes found=%v",
				q, len(have.Nodes), have.Found, len(want.Nodes), want.Found)
		}
		for i := range want.Nodes {
			if want.Nodes[i] != have.Nodes[i] {
				t.Fatalf("q=%d node %d: %d vs %d", q, i, have.Nodes[i], want.Nodes[i])
			}
		}
	}
}

func TestNextEpoch(t *testing.T) {
	store, err := blobstore.NewFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	e, err := NextEpoch(ctx, store, "tiny", distPolicy())
	if err != nil || e != 1 {
		t.Fatalf("empty store: epoch %d err %v", e, err)
	}
	src := distSearcher(t)
	if _, err := PublishSnapshot(ctx, store, "tiny", e, src, distPolicy()); err != nil {
		t.Fatal(err)
	}
	e, err = NextEpoch(ctx, store, "tiny", distPolicy())
	if err != nil || e != 2 {
		t.Fatalf("after publish: epoch %d err %v", e, err)
	}
}

func TestFetchSnapshotStageClassification(t *testing.T) {
	src := distSearcher(t)
	dir := t.TempDir()
	clean, err := blobstore.NewFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := PublishSnapshot(ctx, clean, "tiny", 1, src, distPolicy()); err != nil {
		t.Fatal(err)
	}

	stageOf := func(t *testing.T, err error) string {
		t.Helper()
		var se *SnapshotError
		if !errors.As(err, &se) {
			t.Fatalf("error %v is not a SnapshotError", err)
		}
		return se.Stage
	}

	t.Run("fetch on missing dataset", func(t *testing.T) {
		_, _, err := FetchSnapshot(ctx, clean, "ghost", Options{}, distPolicy())
		if stageOf(t, err) != "fetch" || !errors.Is(err, blobstore.ErrNotExist) {
			t.Fatalf("got %v", err)
		}
	})

	t.Run("fetch on dead transport", func(t *testing.T) {
		down, err := blobstore.NewFSWithHooks(dir, blobstore.Hooks{
			BeforeOp: func(op, key string) error { return errors.New("transport down") },
		})
		if err != nil {
			t.Fatal(err)
		}
		_, _, ferr := FetchSnapshot(ctx, down, "tiny", Options{}, distPolicy())
		if stageOf(t, ferr) != "fetch" {
			t.Fatalf("got %v", ferr)
		}
	})

	t.Run("verify on artifact corruption", func(t *testing.T) {
		rotten, err := blobstore.NewFSWithHooks(dir, blobstore.Hooks{
			WrapReader: func(key string, r io.Reader) io.Reader {
				if strings.HasSuffix(key, "/"+ArtifactIndex) {
					return &faultfs.FlipReader{R: r, Offset: 40}
				}
				return r
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		_, _, ferr := FetchSnapshot(ctx, rotten, "tiny", Options{}, distPolicy())
		if stageOf(t, ferr) != "verify" || !errors.Is(ferr, blobstore.ErrVerify) {
			t.Fatalf("got %v", ferr)
		}
	})

	t.Run("verify on params drift", func(t *testing.T) {
		// An index republished under a manifest whose params disagree with
		// the index header: the blobstore CRCs all pass, and the load-time
		// header comparison must still reject the swap.
		other := t.TempDir()
		drifted, err := blobstore.NewFS(other)
		if err != nil {
			t.Fatal(err)
		}
		spec := src.IndexParams()
		spec.Seed++ // lie about the seed
		arts := map[string][]byte{}
		for _, name := range []string{ArtifactGraph, ArtifactIndex} {
			b, err := blobstore.FetchArtifact(ctx, clean, mustManifest(t, ctx, clean), name, distPolicy())
			if err != nil {
				t.Fatal(err)
			}
			arts[name] = b
		}
		if _, err := blobstore.Publish(ctx, drifted, "tiny", 1, spec, arts, distPolicy()); err != nil {
			t.Fatal(err)
		}
		_, _, ferr := FetchSnapshot(ctx, drifted, "tiny", Options{}, distPolicy())
		if stageOf(t, ferr) != "verify" || !errors.Is(ferr, ErrIndexParams) {
			t.Fatalf("got %v", ferr)
		}
	})
}

func mustManifest(t *testing.T, ctx context.Context, s blobstore.Store) *blobstore.Manifest {
	t.Helper()
	cur, err := blobstore.FetchCurrent(ctx, s, "tiny", distPolicy())
	if err != nil {
		t.Fatal(err)
	}
	m, err := blobstore.FetchManifest(ctx, s, cur, distPolicy())
	if err != nil {
		t.Fatal(err)
	}
	return m
}
