// Package cod discovers personalized characteristic communities in
// attributed graphs: given a query node q and a query attribute, it finds
// the largest community in a community hierarchy within which q is one of
// the top-k most influential nodes under the independent cascade model.
//
// It implements the COD framework of Niu, Li, Karras, Wang and Li
// ("Discovering Personalized Characteristic Communities in Attributed
// Graphs", ICDE 2024): compressed COD evaluation over shared
// reverse-reachable (RR) graphs, LORE local hierarchical reclustering for
// attribute awareness, and the HIMOR influence-rank index for fast queries.
//
// # Quick start
//
//	b := cod.NewGraphBuilder(n, numAttrs)
//	b.AddEdge(u, v)                // build the topology
//	b.SetAttrs(v, attr)            // attach categorical attributes
//	g, err := b.Build()
//
//	s, err := cod.NewSearcher(g, cod.Options{K: 5})
//	community, err := s.Discover(q, attr)   // CODL: LORE + HIMOR
//
// Searcher construction performs the offline work (agglomerative
// clustering of the graph and HIMOR index construction); Discover then
// answers queries in milliseconds on graphs with tens of thousands of
// nodes. DiscoverUnattributed and DiscoverGlobal expose the paper's CODU
// and CODR variants for comparison.
package cod
