package cod

import (
	"context"

	"github.com/codsearch/cod/internal/dynamic"
	"github.com/codsearch/cod/internal/engine"
	"github.com/codsearch/cod/internal/graph"
	"github.com/codsearch/cod/internal/obs"
)

// FlushStrategy selects how DynamicSearcher.Flush rebuilds its state.
type FlushStrategy = dynamic.Strategy

// FlushStrategy values.
const (
	// FlushAuto reclusters locally when the updates are confined to a small
	// community, fully otherwise.
	FlushAuto = dynamic.Auto
	// FlushLocal forces the local subtree recluster.
	FlushLocal = dynamic.RebuildLocal
	// FlushFull forces a full recluster.
	FlushFull = dynamic.RebuildFull
)

// DynamicSearcher answers COD queries over a graph that receives edge
// insertions: updates are buffered with AddEdge and folded in with Flush,
// which reclusters either the affected subtree or the whole graph and
// rebuilds the influence index (see the paper's future-work discussion on
// dynamic graphs). Not safe for concurrent use.
type DynamicSearcher struct {
	u    *dynamic.Updater
	opts Options
	seq  uint64
}

// NewDynamicSearcher builds the initial state for g.
func NewDynamicSearcher(g *Graph, opts Options) (*DynamicSearcher, error) {
	u, err := dynamic.New(g.internalGraph(), engine.Params{
		K: opts.K, Theta: opts.Theta, Beta: opts.Beta,
		Linkage: opts.Linkage, Seed: opts.Seed, Model: opts.Model,
	})
	if err != nil {
		return nil, err
	}
	return &DynamicSearcher{u: u, opts: opts}, nil
}

// AddEdge buffers an undirected edge insertion; it becomes visible to
// queries after the next Flush.
func (d *DynamicSearcher) AddEdge(u, v NodeID) error { return d.u.AddEdge(u, v) }

// Pending returns the number of buffered insertions.
func (d *DynamicSearcher) Pending() int { return d.u.Pending() }

// Flush applies buffered insertions and rebuilds the hierarchy and index.
func (d *DynamicSearcher) Flush(s FlushStrategy) error { return d.u.Flush(s) }

// Discover answers a COD query over the current (flushed) state.
func (d *DynamicSearcher) Discover(q NodeID, attr AttrID) (Community, error) {
	return d.DiscoverCtx(context.Background(), q, attr)
}

// DiscoverCtx is Discover with cancellation and instrumentation: a Recorder
// carried by ctx receives the query counters, step spans, and a
// deterministic trace ID derived from the query's seed. The query consumes
// its seed whether or not a Recorder is attached, so instrumented runs stay
// byte-identical.
func (d *DynamicSearcher) DiscoverCtx(ctx context.Context, q NodeID, attr AttrID) (Community, error) {
	seed := graph.ItemSeed(d.opts.Seed, int(d.seq))
	d.seq++
	com, err := d.u.QueryCtx(ctx, q, attr, seed)
	obs.FromContext(ctx).CountQuery(err)
	if err != nil {
		return Community{}, err
	}
	return Community{Nodes: com.Nodes, Found: com.Found, FromIndex: com.FromIndex}, nil
}

// DiscoverGlobal answers a CODR-variant query (global recluster of the
// attribute-weighted graph) over the current state, sharing the updater's
// engine — and therefore its epoch-keyed caches — with Discover.
func (d *DynamicSearcher) DiscoverGlobal(q NodeID, attr AttrID) (Community, error) {
	return d.DiscoverGlobalCtx(context.Background(), q, attr)
}

// DiscoverGlobalCtx is DiscoverGlobal with cancellation and instrumentation
// (see DiscoverCtx).
func (d *DynamicSearcher) DiscoverGlobalCtx(ctx context.Context, q NodeID, attr AttrID) (Community, error) {
	seed := graph.ItemSeed(d.opts.Seed, int(d.seq))
	d.seq++
	com, err := d.u.QueryGlobalCtx(ctx, q, attr, seed)
	obs.FromContext(ctx).CountQuery(err)
	if err != nil {
		return Community{}, err
	}
	return Community{Nodes: com.Nodes, Found: com.Found}, nil
}

// N returns the current node count; M the current edge count (excluding
// pending insertions).
func (d *DynamicSearcher) N() int { return d.u.Graph().N() }

// M returns the current number of edges, excluding pending insertions.
func (d *DynamicSearcher) M() int { return d.u.Graph().M() }
