package cod

import "testing"

func TestDynamicSearcher(t *testing.T) {
	g := buildTestGraph(t)
	d, err := NewDynamicSearcher(g, Options{K: 5, Theta: 4, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != g.N() || d.M() != g.M() {
		t.Fatal("initial state mismatch")
	}
	if err := d.AddEdge(0, NodeID(g.N()-1)); err != nil {
		t.Fatal(err)
	}
	if d.Pending() != 1 {
		t.Errorf("pending = %d", d.Pending())
	}
	// query before flush still works against the old state
	var q NodeID
	for v := NodeID(0); int(v) < g.N(); v++ {
		if len(g.Attrs(v)) > 0 {
			q = v
			break
		}
	}
	if _, err := d.Discover(q, g.Attrs(q)[0]); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(FlushAuto); err != nil {
		t.Fatal(err)
	}
	if d.Pending() != 0 {
		t.Error("pending survived flush")
	}
	if d.M() != g.M()+1 {
		t.Errorf("M = %d, want %d", d.M(), g.M()+1)
	}
	com, err := d.Discover(q, g.Attrs(q)[0])
	if err != nil {
		t.Fatal(err)
	}
	if com.Found && !com.Contains(q) {
		t.Error("community missing query node")
	}
	// forced strategies must both work
	if err := d.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(FlushLocal); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge(3, NodeID(g.N()-2)); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(FlushFull); err != nil {
		t.Fatal(err)
	}
}
