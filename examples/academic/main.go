// Academic: the conference-invitation scenario from the paper (§IV): to
// organize a workshop on a research area, invite the widest community of
// researchers in which the organizing PC chair actually carries weight —
// their characteristic community for the area attribute.
//
// The example compares the three hierarchy variants on a citation-network
// stand-in: CODL (attribute-aware local reclustering), CODU (topology only)
// and CODR (global reclustering), reproducing the paper's qualitative
// finding that CODL serves lower-influence query nodes with denser,
// more on-topic communities.
//
// Run with: go run ./examples/academic
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/codsearch/cod"
)

func main() {
	g, err := cod.GenerateDataset("cora", 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("citation network: %d papers, %d citations, %d areas\n", g.N(), g.M(), g.NumAttrs())

	s, err := cod.NewSearcher(g, cod.Options{K: 5, Theta: 10, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// Pick a handful of mid-degree "PC chairs": influential locally, but not
	// global celebrities.
	var chairs []cod.NodeID
	for v := cod.NodeID(0); int(v) < g.N() && len(chairs) < 5; v++ {
		if d := g.Degree(v); d >= 5 && d <= 12 && len(g.Attrs(v)) > 0 {
			chairs = append(chairs, v)
		}
	}

	fmt.Println("\nchair  area  method  found  size  ρ       φ       conductance")
	for _, q := range chairs {
		area := g.Attrs(q)[0]
		for _, m := range []struct {
			name string
			run  func() (cod.Community, error)
		}{
			{"CODL", func() (cod.Community, error) { return s.Discover(q, area) }},
			{"CODU", func() (cod.Community, error) { return s.DiscoverUnattributed(q) }},
			{"CODR", func() (cod.Community, error) { return s.DiscoverGlobal(q, area) }},
		} {
			com, err := m.run()
			if err != nil {
				log.Fatal(err)
			}
			if !com.Found {
				fmt.Printf("%5d  %4d  %-6s  no\n", q, area, m.name)
				continue
			}
			fmt.Printf("%5d  %4d  %-6s  yes   %4d  %.4f  %.4f  %.4f\n",
				q, area, m.name, com.Size(),
				g.TopologyDensity(com.Nodes),
				g.AttributeDensity(com.Nodes, area),
				g.Conductance(com.Nodes))
		}
	}

	fmt.Println("\ninterpretation: CODL's community is the invitation list — the widest")
	fmt.Println("group, dense on the workshop's area, in which the chair is top-5 influential.")

	// A cross-area workshop as one query expression: the built-in cora
	// dataset registers its class names, so the predicate can say
	// "Neural_Networks or Theory" directly, add a minimum invitation-list
	// size, and relax k — all without touching the Searcher's options.
	if len(chairs) > 0 {
		expr := fmt.Sprintf("(Neural_Networks or Theory) and size>=10 and k=7 and node=%d", chairs[0])
		com, err := s.DiscoverQuery(context.Background(), cod.Query{Expr: expr})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ncompound query %q:\n", expr)
		if com.Found {
			fmt.Printf("  %d invitees, chair ranked #%d, ρ=%.4f conductance=%.4f\n",
				com.Size(), com.Rank,
				g.TopologyDensity(com.Nodes), g.Conductance(com.Nodes))
		} else {
			fmt.Println("  no community of that size has the chair in its top-7")
		}
	}
}
