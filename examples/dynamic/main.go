// Dynamic: COD over a growing graph (the paper's dynamic-graphs future
// work). A stream of new collaborations arrives in batches; after each
// flush the updater reclusters either the affected subtree (local) or the
// whole graph, and the query node's characteristic community is tracked
// over time.
//
// Run with: go run ./examples/dynamic
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"github.com/codsearch/cod"
)

func main() {
	g, err := cod.GenerateDataset("small", 13)
	if err != nil {
		log.Fatal(err)
	}
	d, err := cod.NewDynamicSearcher(g, cod.Options{K: 3, Theta: 10, Seed: 13})
	if err != nil {
		log.Fatal(err)
	}
	// Track a mid-degree query node (not a global hub) with an attribute.
	var q cod.NodeID = -1
	for v := cod.NodeID(0); int(v) < g.N(); v++ {
		if d := g.Degree(v); d >= 4 && d <= 7 && len(g.Attrs(v)) > 0 {
			q = v
			break
		}
	}
	if q < 0 {
		log.Fatal("no suitable query node")
	}
	attr := g.Attrs(q)[0]
	report := func(tag string) {
		com, err := d.Discover(q, attr)
		if err != nil {
			log.Fatal(err)
		}
		if com.Found {
			fmt.Printf("%-22s n=%d m=%d: community of node %d has %d members\n",
				tag, d.N(), d.M(), q, com.Size())
		} else {
			fmt.Printf("%-22s n=%d m=%d: node %d not top-3 anywhere\n", tag, d.N(), d.M(), q)
		}
	}
	report("initial")

	rng := rand.New(rand.NewPCG(13, 13))
	for batch := 1; batch <= 3; batch++ {
		// Each batch: the query node gains a few collaborators near its
		// current neighborhood plus one long-range tie.
		added := 0
		for added < 5 {
			var target cod.NodeID
			if added < 4 {
				ns := g.Neighbors(q)
				hop := ns[rng.IntN(len(ns))]
				ns2 := g.Neighbors(hop)
				target = ns2[rng.IntN(len(ns2))]
			} else {
				target = cod.NodeID(rng.IntN(g.N()))
			}
			if target == q {
				continue
			}
			if err := d.AddEdge(q, target); err != nil {
				log.Fatal(err)
			}
			added++
		}
		fmt.Printf("\nbatch %d: %d pending edge insertions\n", batch, d.Pending())
		if err := d.Flush(cod.FlushAuto); err != nil {
			log.Fatal(err)
		}
		report(fmt.Sprintf("after flush %d", batch))
	}
	fmt.Println("\nAs the query node accumulates ties, its characteristic community")
	fmt.Println("shifts — the updater keeps the hierarchy and index current without")
	fmt.Println("rebuilding everything when changes are local.")
}
