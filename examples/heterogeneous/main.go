// Heterogeneous: COD over a typed bibliographic network (authors, papers,
// venues) — the paper's future-work direction, §VI. The graph is projected
// along two meta-paths (co-authorship APA and shared-venue APVPA) and the
// query author's characteristic community is compared across them.
//
// Run with: go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"github.com/codsearch/cod"
)

const (
	typeAuthor = int32(0)
	typePaper  = int32(1)
	typeVenue  = int32(2)
	edgeWrites = int32(0)
	edgePubAt  = int32(1)
)

func main() {
	const (
		nAuthors = 120
		nPapers  = 300
		nVenues  = 4
		nAreas   = 4 // research areas = attributes
	)
	schema := cod.HeteroSchema{
		NodeTypes: []string{"author", "paper", "venue"},
		EdgeTypes: []cod.HeteroEdgeType{
			{Name: "writes", From: typeAuthor, To: typePaper},
			{Name: "published-at", From: typePaper, To: typeVenue},
		},
	}
	types := make([]int32, 0, nAuthors+nPapers+nVenues)
	for i := 0; i < nAuthors; i++ {
		types = append(types, typeAuthor)
	}
	for i := 0; i < nPapers; i++ {
		types = append(types, typePaper)
	}
	for i := 0; i < nVenues; i++ {
		types = append(types, typeVenue)
	}
	b, err := cod.NewHeteroBuilder(schema, types, nAreas)
	if err != nil {
		log.Fatal(err)
	}

	// Plant research areas: author a belongs to area a / (nAuthors/nAreas);
	// each paper draws 2-3 authors from one area (10% cross-area guests) and
	// is published at that area's venue.
	rng := rand.New(rand.NewPCG(9, 9))
	areaOf := func(a int) int { return a / (nAuthors / nAreas) }
	paper0 := cod.NodeID(nAuthors)
	venue0 := cod.NodeID(nAuthors + nPapers)
	for p := 0; p < nPapers; p++ {
		area := p % nAreas
		pid := paper0 + cod.NodeID(p)
		for i := 0; i < 2+rng.IntN(2); i++ {
			var a int
			if rng.Float64() < 0.1 { // guest author from anywhere
				a = rng.IntN(nAuthors)
			} else {
				a = area*(nAuthors/nAreas) + rng.IntN(nAuthors/nAreas)
			}
			if err := b.AddEdge(cod.NodeID(a), pid, edgeWrites); err != nil {
				log.Fatal(err)
			}
		}
		if err := b.AddEdge(pid, venue0+cod.NodeID(area), edgePubAt); err != nil {
			log.Fatal(err)
		}
	}
	for a := 0; a < nAuthors; a++ {
		if err := b.SetAttrs(cod.NodeID(a), cod.AttrID(areaOf(a))); err != nil {
			log.Fatal(err)
		}
	}
	g := b.Build()
	fmt.Printf("HIN: %d nodes (%d authors, %d papers, %d venues), %d typed edges\n",
		g.N(), nAuthors, nPapers, nVenues, g.M())

	apa := cod.MetaPath{Edges: []int32{edgeWrites, edgeWrites}, Start: typeAuthor}
	apvpa := cod.MetaPath{Edges: []int32{edgeWrites, edgePubAt, edgePubAt, edgeWrites}, Start: typeAuthor}

	query := cod.NodeID(7) // an area-0 author
	area := g.Attrs(query)[0]
	fmt.Printf("\nquery: author %d, area %d\n", query, area)
	for _, mp := range []struct {
		name string
		path cod.MetaPath
	}{
		{"APA (co-authorship)", apa},
		{"APVPA (shared venue)", apvpa},
	} {
		s, err := cod.NewHeteroSearcher(g, mp.path, cod.Options{K: 3, Theta: 20, Seed: 9})
		if err != nil {
			log.Fatal(err)
		}
		pn, pm := s.ProjectionSize()
		com, err := s.Discover(query, area)
		if err != nil {
			log.Fatal(err)
		}
		if !com.Found {
			fmt.Printf("%-22s projection %d nodes/%d edges: no characteristic community\n",
				mp.name, pn, pm)
			continue
		}
		sameArea := 0
		for _, v := range com.Nodes {
			if areaOf(int(v)) == int(area) {
				sameArea++
			}
		}
		fmt.Printf("%-22s projection %d nodes/%d edges: community of %d authors, %d%% in area %d\n",
			mp.name, pn, pm, com.Size(), 100*sameArea/com.Size(), area)
	}
	fmt.Println("\nAPA keeps the community among direct collaborators; APVPA widens it to")
	fmt.Println("everyone orbiting the same venues — the meta-path is the lens.")
}
