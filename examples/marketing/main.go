// Marketing: the community-based social marketing (CBSM) scenario from the
// paper's introduction. A brand wants to enroll community promoters: people
// who may not be global celebrities but dominate a sizable community around
// a product topic. For each candidate promoter we find the widest community
// in which they are a top-k influencer on the topic, then rank candidates
// by the reach of that community — rather than by raw global influence.
//
// Run with: go run ./examples/marketing
package main

import (
	"fmt"
	"log"
	"sort"

	"github.com/codsearch/cod"
)

func main() {
	// The amazon-like co-purchase network: ~33k products in ground-truth
	// communities (product categories); every community shares a category
	// attribute. A "promoter" here is a product whose community the brand
	// could seed (the same mechanics apply to user networks).
	g, err := cod.GenerateDataset("small", 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d nodes, %d edges, %d topics\n", g.N(), g.M(), g.NumAttrs())

	s, err := cod.NewSearcher(g, cod.Options{K: 3, Theta: 20, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// Candidate promoters: one node per topic with that topic's attribute.
	type candidate struct {
		node   cod.NodeID
		topic  cod.AttrID
		reach  int     // size of the characteristic community
		global float64 // global influence, for contrast
		rho    float64
	}
	var cands []candidate
	seen := map[cod.AttrID]int{}
	for v := cod.NodeID(0); int(v) < g.N(); v++ {
		attrs := g.Attrs(v)
		if len(attrs) == 0 {
			continue
		}
		topic := attrs[0]
		if seen[topic] >= 5 { // a few candidates per topic
			continue
		}
		seen[topic]++
		com, err := s.Discover(v, topic)
		if err != nil {
			log.Fatal(err)
		}
		if !com.Found || com.Size() < 4 {
			continue
		}
		infl, err := s.EstimateInfluence(v)
		if err != nil {
			log.Fatal(err)
		}
		cands = append(cands, candidate{
			node:   v,
			topic:  topic,
			reach:  com.Size(),
			global: infl,
			rho:    g.TopologyDensity(com.Nodes),
		})
	}
	if len(cands) == 0 {
		fmt.Println("no promoter candidates found; try a different seed")
		return
	}

	// Rank by characteristic-community reach: the CBSM pitch is that these
	// promoters carry weight *within* the community they'd address.
	sort.Slice(cands, func(i, j int) bool { return cands[i].reach > cands[j].reach })
	fmt.Println("\ntop promoter candidates by characteristic-community reach (k=3):")
	fmt.Println("node  topic  reach  density  global-influence")
	for i, c := range cands {
		if i >= 8 {
			break
		}
		fmt.Printf("%4d  %5d  %5d  %7.3f  %10.2f\n", c.node, c.topic, c.reach, c.rho, c.global)
	}

	// Contrast: the globally most influential candidate is often NOT the one
	// with the widest characteristic community — the paper's core point.
	best := cands[0]
	mostGlobal := cands[0]
	for _, c := range cands {
		if c.global > mostGlobal.global {
			mostGlobal = c
		}
	}
	fmt.Printf("\nwidest community promoter: node %d (reach %d, global %.1f)\n",
		best.node, best.reach, best.global)
	fmt.Printf("most globally influential: node %d (reach %d, global %.1f)\n",
		mostGlobal.node, mostGlobal.reach, mostGlobal.global)
	if best.node != mostGlobal.node {
		fmt.Println("=> they differ: picking promoters by global influence alone misses community fit")
	}

	// Influence maximization answers a different question: the best *global*
	// seed set, regardless of community fit. Good for broadcast campaigns,
	// blind to the "community promoter" role COD identifies.
	seeds, spread, err := s.MaximizeInfluence(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nIM seed set (global broadcast): %v, expected spread %.1f nodes\n", seeds, spread)
	fmt.Println("COD promoters target communities; IM seeds target the whole network.")
}
