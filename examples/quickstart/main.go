// Quickstart: build a small attributed graph by hand, construct a Searcher
// and discover the characteristic community of a query node.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/codsearch/cod"
)

func main() {
	// A toy collaboration network: two tightly knit groups (a "databases"
	// group around node 0 and a "machine learning" group around node 6)
	// joined by a few cross-edges. Attribute 0 = DB, attribute 1 = ML.
	const (
		db = cod.AttrID(0)
		ml = cod.AttrID(1)
	)
	b := cod.NewGraphBuilder(12, 2)
	edges := [][2]cod.NodeID{
		// DB group: node 0 is the local star
		{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}, {1, 2}, {3, 4},
		// ML group: node 6 is the local star
		{6, 7}, {6, 8}, {6, 9}, {6, 10}, {6, 11}, {7, 8}, {9, 10},
		// bridges
		{5, 6}, {4, 11},
	}
	for _, e := range edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}
	for v := cod.NodeID(0); v <= 5; v++ {
		if err := b.SetAttrs(v, db); err != nil {
			log.Fatal(err)
		}
	}
	for v := cod.NodeID(6); v <= 11; v++ {
		if err := b.SetAttrs(v, ml); err != nil {
			log.Fatal(err)
		}
	}
	g := b.Build()
	// Register attribute names so query expressions can reference them.
	if err := g.SetAttrNames("DB", "ML"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges, %d attributes\n", g.N(), g.M(), g.NumAttrs())

	// Offline phase: hierarchical clustering + HIMOR index.
	s, err := cod.NewSearcher(g, cod.Options{K: 1, Theta: 50, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// Where is node 0 a top-1 influencer on the DB topic?
	com, err := s.Discover(0, db)
	if err != nil {
		log.Fatal(err)
	}
	if !com.Found {
		fmt.Println("node 0 is not top-1 influential in any community")
		return
	}
	fmt.Printf("characteristic community of node 0 (DB, k=1): %v\n", com.Nodes)
	fmt.Printf("  size=%d  ρ=%.3f  φ(DB)=%.3f  conductance=%.3f\n",
		com.Size(),
		g.TopologyDensity(com.Nodes),
		g.AttributeDensity(com.Nodes, db),
		g.Conductance(com.Nodes))

	// Node 1 is not a hub: its characteristic community is much smaller.
	com1, err := s.Discover(1, db)
	if err != nil {
		log.Fatal(err)
	}
	if com1.Found {
		fmt.Printf("characteristic community of node 1 (DB, k=1): %v\n", com1.Nodes)
	} else {
		fmt.Println("node 1 is not top-1 influential in any community")
	}

	// The same queries in the expression DSL: attribute names, boolean
	// predicates, community filters, and execution knobs in one string.
	// A single-attribute expression runs byte-identically to Discover.
	pq, err := s.Prepare("DB and node=0")
	if err != nil {
		log.Fatal(err)
	}
	comQ, err := pq.Discover(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %q (canonical %q): found=%t nodes=%v\n", "DB and node=0", pq.Expr(), comQ.Found, comQ.Nodes)

	// A compound predicate with a community filter: nodes on either topic,
	// but only accept a community with at least 3 members. Filtered queries
	// always certify by sampling (the index probe cannot honor filters), and
	// equal predicates normalize to one canonical form — and one
	// sample-cache entry — however they are spelled.
	const orExpr = "(DB or ML) and size>=3"
	comOr, err := s.DiscoverQuery(context.Background(), cod.Query{Node: 0, Expr: orExpr})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %q: found=%t rank=%d nodes=%v\n", orExpr, comOr.Found, comOr.Rank, comOr.Nodes)

	// Influence introspection via the HIMOR index.
	infl, err := s.EstimateInfluence(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimated global influence of node 0: %.2f nodes\n", infl)
	depth, _ := s.HierarchyDepth(0)
	for i := 0; i < depth; i++ {
		rank, size, _ := s.InfluenceRank(0, i)
		fmt.Printf("  community #%d (size %2d): rank %d\n", i, size, rank)
	}
}
