// Scalability: measure the offline (clustering + HIMOR index) and online
// (per-query) costs of the Searcher as the network grows, mirroring the
// paper's §V-D observation that the HIMOR index keeps query latency in the
// milliseconds while the offline cost and index size grow with the graph
// and the hierarchy's depth skew.
//
// Run with: go run ./examples/scalability          (three smaller datasets)
//
//	go run ./examples/scalability -big     (adds amazon and dblp)
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/codsearch/cod"
)

func main() {
	big := flag.Bool("big", false, "include the 30k-node datasets")
	flag.Parse()

	names := []string{"small", "cora", "citeseer", "pubmed"}
	if *big {
		names = append(names, "retweet", "amazon", "dblp")
	}

	fmt.Println("dataset      nodes   edges    offline     index MB  avg query   found")
	for _, name := range names {
		g, err := cod.GenerateDataset(name, 42)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		s, err := cod.NewSearcher(g, cod.Options{K: 5, Theta: 10, Seed: 42})
		if err != nil {
			log.Fatal(err)
		}
		offline := time.Since(start)

		// Query a spread of attributed nodes.
		const queries = 10
		var (
			total time.Duration
			found int
			done  int
		)
		step := g.N() / queries
		if step == 0 {
			step = 1
		}
		for v := cod.NodeID(0); int(v) < g.N() && done < queries; v += cod.NodeID(step) {
			attrs := g.Attrs(v)
			if len(attrs) == 0 {
				continue
			}
			qs := time.Now()
			com, err := s.Discover(v, attrs[0])
			if err != nil {
				log.Fatal(err)
			}
			total += time.Since(qs)
			done++
			if com.Found {
				found++
			}
		}
		avg := time.Duration(0)
		if done > 0 {
			avg = total / time.Duration(done)
		}
		fmt.Printf("%-11s %7d %7d  %10v  %8.2f  %10v  %d/%d\n",
			name, g.N(), g.M(), offline.Round(time.Millisecond),
			float64(s.IndexBytes())/(1<<20), avg.Round(10*time.Microsecond), found, done)
	}
}
