module github.com/codsearch/cod

go 1.22
