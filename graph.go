package cod

import (
	"fmt"
	"io"
	"strings"

	"github.com/codsearch/cod/internal/dataset"
	"github.com/codsearch/cod/internal/graph"
)

// NodeID identifies a node (0..N-1).
type NodeID = graph.NodeID

// AttrID identifies a categorical attribute (0..NumAttrs-1).
type AttrID = graph.AttrID

// Graph is an immutable undirected attributed graph. Construct one with a
// GraphBuilder, LoadGraph, or GenerateDataset. The optional attribute-name
// registry (SetAttrNames) is query metadata, not part of the topology: it
// lets the query DSL reference attributes by name and is not serialized by
// WriteTo.
type Graph struct {
	g *graph.Graph
	// names is the optional attribute-name registry (index = AttrID);
	// byName maps lowercased names back to ids.
	names  []string
	byName map[string]AttrID
}

// GraphBuilder accumulates edges and node attributes for a Graph.
type GraphBuilder struct {
	b *graph.Builder
}

// NewGraphBuilder returns a builder for a graph with n nodes and an
// attribute universe of numAttrs attributes.
func NewGraphBuilder(n, numAttrs int) *GraphBuilder {
	return &GraphBuilder{b: graph.NewBuilder(n, numAttrs)}
}

// AddEdge records the undirected edge (u, v). Self loops and out-of-range
// endpoints are errors; duplicate edges are merged at Build time.
func (gb *GraphBuilder) AddEdge(u, v NodeID) error { return gb.b.AddEdge(u, v) }

// AddWeightedEdge records an undirected edge with a positive weight.
func (gb *GraphBuilder) AddWeightedEdge(u, v NodeID, w float64) error {
	return gb.b.AddWeightedEdge(u, v, w)
}

// SetAttrs assigns node v's attribute set, replacing any previous one.
func (gb *GraphBuilder) SetAttrs(v NodeID, attrs ...AttrID) error { return gb.b.SetAttrs(v, attrs...) }

// AddAttr adds one attribute to node v.
func (gb *GraphBuilder) AddAttr(v NodeID, a AttrID) error { return gb.b.AddAttr(v, a) }

// Build assembles the immutable Graph.
func (gb *GraphBuilder) Build() *Graph { return &Graph{g: gb.b.Build()} }

// LoadGraph parses a graph in the text format produced by Graph.WriteTo.
func LoadGraph(r io.Reader) (*Graph, error) {
	g, err := graph.Read(r)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// LoadEdgeList parses a SNAP-style edge list (one "u v" pair per line, '#'
// or '%' comments, arbitrary integer ids remapped densely) and optionally a
// second stream of attribute lines ("orig-id attr [attr...]"); pass nil for
// attrs when the graph is unattributed. The returned map translates
// original file ids to the Graph's dense NodeIDs.
func LoadEdgeList(edges io.Reader, attrs io.Reader, numAttrs int) (*Graph, map[int64]NodeID, error) {
	res, err := graph.ReadEdgeList(edges, numAttrs)
	if err != nil {
		return nil, nil, err
	}
	g := res.G
	if attrs != nil {
		if g, err = graph.ReadAttrFile(res, attrs); err != nil {
			return nil, nil, err
		}
	}
	return &Graph{g: g}, res.DenseID, nil
}

// GenerateDataset generates one of the built-in synthetic benchmark
// networks ("cora", "citeseer", "pubmed", "retweet", "amazon", "dblp",
// "livejournal", plus the reduced "tiny" and "small") deterministically for
// the given seed. See DatasetNames.
func GenerateDataset(name string, seed uint64) (*Graph, error) {
	ds, err := dataset.Load(name, seed)
	if err != nil {
		return nil, err
	}
	g := &Graph{g: ds.G}
	if len(ds.AttrNames) > 0 {
		if err := g.SetAttrNames(ds.AttrNames...); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// DatasetNames lists the full-scale built-in datasets in Table I order.
func DatasetNames() []string { return dataset.Names() }

// N returns the number of nodes.
func (g *Graph) N() int { return g.g.N() }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.g.M() }

// NumAttrs returns the size of the attribute universe.
func (g *Graph) NumAttrs() int { return g.g.NumAttrs() }

// Degree returns the degree of v.
func (g *Graph) Degree(v NodeID) int { return g.g.Degree(v) }

// Neighbors returns v's neighbors (shared storage; do not modify).
func (g *Graph) Neighbors(v NodeID) []NodeID { return g.g.Neighbors(v) }

// Attrs returns v's attributes (shared storage; do not modify).
func (g *Graph) Attrs(v NodeID) []AttrID { return g.g.Attrs(v) }

// HasAttr reports whether v carries attribute a.
func (g *Graph) HasAttr(v NodeID, a AttrID) bool { return g.g.HasAttr(v, a) }

// SetAttrNames installs the attribute-name registry: names[i] names
// attribute i. Every attribute must be named, names must be unique
// case-insensitively and non-empty. Named attributes can be referenced by
// name in query expressions (case-insensitive); without a registry,
// expressions reference attributes by numeric id only.
func (g *Graph) SetAttrNames(names ...string) error {
	if len(names) != g.NumAttrs() {
		return fmt.Errorf("cod: %d attribute names for %d attributes", len(names), g.NumAttrs())
	}
	byName := make(map[string]AttrID, len(names))
	for i, name := range names {
		if name == "" {
			return fmt.Errorf("cod: attribute %d has an empty name", i)
		}
		key := strings.ToLower(name)
		if prev, dup := byName[key]; dup {
			return fmt.Errorf("cod: attribute name %q duplicates attribute %d (names are case-insensitive)", name, prev)
		}
		byName[key] = AttrID(i)
	}
	g.names = append([]string(nil), names...)
	g.byName = byName
	return nil
}

// AttrNames returns the attribute-name registry (index = AttrID), nil when
// none was installed. The slice is a copy.
func (g *Graph) AttrNames() []string {
	if g.names == nil {
		return nil
	}
	return append([]string(nil), g.names...)
}

// AttrName returns the registered name of attribute a, "" and false when the
// graph has no registry or a is out of range.
func (g *Graph) AttrName(a AttrID) (string, bool) {
	if a < 0 || int(a) >= len(g.names) {
		return "", false
	}
	return g.names[a], true
}

// AttrByName resolves an attribute name case-insensitively against the
// registry.
func (g *Graph) AttrByName(name string) (AttrID, bool) {
	a, ok := g.byName[strings.ToLower(name)]
	return a, ok
}

// WriteTo serializes the graph in the cod text format.
func (g *Graph) WriteTo(w io.Writer) (int64, error) { return g.g.WriteTo(w) }

// TopologyDensity returns ρ(C) = edges / node pairs for a node set.
func (g *Graph) TopologyDensity(nodes []NodeID) float64 { return graph.TopologyDensity(g.g, nodes) }

// AttributeDensity returns φ(C): the fraction of nodes carrying attr.
func (g *Graph) AttributeDensity(nodes []NodeID, attr AttrID) float64 {
	return graph.AttributeDensity(g.g, nodes, attr)
}

// Conductance returns the conductance of the cut around the node set.
func (g *Graph) Conductance(nodes []NodeID) float64 { return graph.Conductance(g.g, nodes) }

// internalGraph exposes the underlying representation to the Searcher.
func (g *Graph) internalGraph() *graph.Graph { return g.g }
