package cod

import (
	"github.com/codsearch/cod/internal/engine"
	"github.com/codsearch/cod/internal/hin"
)

// Heterogeneous information network (HIN) support: typed graphs projected
// onto a homogeneous weighted graph along a symmetric meta-path, with COD
// running on the projection — the paper's first future-work direction.

// HeteroSchema declares node and edge types (see HeteroEdgeType).
type HeteroSchema = hin.Schema

// HeteroEdgeType is one edge type of a HeteroSchema.
type HeteroEdgeType = hin.EdgeTypeSpec

// MetaPath is a symmetric sequence of edge types anchored at one node type.
type MetaPath = hin.MetaPath

// HeteroGraph is an undirected typed attributed multigraph.
type HeteroGraph struct{ h *hin.HeteroGraph }

// HeteroBuilder accumulates a HeteroGraph.
type HeteroBuilder struct{ b *hin.Builder }

// NewHeteroBuilder starts a typed graph over the schema; nodeTypes assigns
// each node's type, numAttrs sizes the attribute universe.
func NewHeteroBuilder(schema HeteroSchema, nodeTypes []int32, numAttrs int) (*HeteroBuilder, error) {
	b, err := hin.NewBuilder(schema, nodeTypes, numAttrs)
	if err != nil {
		return nil, err
	}
	return &HeteroBuilder{b: b}, nil
}

// AddEdge records a typed undirected edge (endpoint types must match the
// edge type's declaration).
func (hb *HeteroBuilder) AddEdge(u, v NodeID, edgeType int32) error {
	return hb.b.AddEdge(u, v, edgeType)
}

// SetAttrs assigns node v's attributes.
func (hb *HeteroBuilder) SetAttrs(v NodeID, attrs ...AttrID) error {
	return hb.b.SetAttrs(v, attrs...)
}

// Build assembles the immutable HeteroGraph.
func (hb *HeteroBuilder) Build() *HeteroGraph { return &HeteroGraph{h: hb.b.Build()} }

// N returns the number of nodes; M the number of typed edges.
func (g *HeteroGraph) N() int { return g.h.N() }

// M returns the number of typed undirected edges.
func (g *HeteroGraph) M() int { return g.h.M() }

// TypeOf returns v's node type.
func (g *HeteroGraph) TypeOf(v NodeID) int32 { return g.h.TypeOf(v) }

// Attrs returns v's attributes.
func (g *HeteroGraph) Attrs(v NodeID) []AttrID { return g.h.Attrs(v) }

// HeteroSearcher answers COD queries on a HIN through a meta-path
// projection (anchor-type nodes only).
type HeteroSearcher struct{ s *hin.Searcher }

// NewHeteroSearcher projects g along the meta-path and builds the COD
// offline state on the projection.
func NewHeteroSearcher(g *HeteroGraph, path MetaPath, opts Options) (*HeteroSearcher, error) {
	params := engine.Params{K: opts.K, Theta: opts.Theta, Beta: opts.Beta, Linkage: opts.Linkage,
		Seed: opts.Seed, Model: opts.Model, Balanced: opts.Balanced}
	s, err := hin.NewSearcher(g.h, path, params, 0)
	if err != nil {
		return nil, err
	}
	return &HeteroSearcher{s: s}, nil
}

// Discover finds the characteristic community of the anchor-type node q
// for the query attribute; the result holds HIN node ids.
func (hs *HeteroSearcher) Discover(q NodeID, attr AttrID) (Community, error) {
	com, err := hs.s.Discover(q, attr)
	if err != nil {
		return Community{}, err
	}
	return Community{Nodes: com.Nodes, Found: com.Found, FromIndex: com.FromIndex}, nil
}

// ProjectionSize reports the projected homogeneous graph's nodes and edges.
func (hs *HeteroSearcher) ProjectionSize() (nodes, edges int) {
	p := hs.s.Projection()
	return p.G.N(), p.G.M()
}
