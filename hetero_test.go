package cod

import "testing"

func buildHIN(t *testing.T) *HeteroGraph {
	t.Helper()
	schema := HeteroSchema{
		NodeTypes: []string{"author", "paper"},
		EdgeTypes: []HeteroEdgeType{{Name: "writes", From: 0, To: 1}},
	}
	// 6 authors, 5 papers
	types := []int32{0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1}
	b, err := NewHeteroBuilder(schema, types, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range [][2]NodeID{
		{0, 6}, {1, 6}, {1, 7}, {2, 7}, {0, 8}, {2, 8}, // area-0 trio
		{3, 9}, {4, 9}, {4, 10}, {5, 10}, // area-1 trio
		{2, 9}, // one bridge
	} {
		if err := b.AddEdge(e[0], e[1], 0); err != nil {
			t.Fatal(err)
		}
	}
	for a := NodeID(0); a < 6; a++ {
		attr := AttrID(0)
		if a >= 3 {
			attr = 1
		}
		if err := b.SetAttrs(a, attr); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestHeteroSearcher(t *testing.T) {
	g := buildHIN(t)
	if g.N() != 11 || g.M() != 11 {
		t.Fatalf("HIN shape %d/%d", g.N(), g.M())
	}
	if g.TypeOf(0) != 0 || g.TypeOf(6) != 1 {
		t.Error("TypeOf wrong")
	}
	if len(g.Attrs(0)) != 1 {
		t.Error("Attrs wrong")
	}
	s, err := NewHeteroSearcher(g, MetaPath{Edges: []int32{0, 0}, Start: 0},
		Options{K: 2, Theta: 30, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pn, pm := s.ProjectionSize()
	if pn != 6 || pm == 0 {
		t.Fatalf("projection %d/%d", pn, pm)
	}
	com, err := s.Discover(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if com.Found {
		for _, v := range com.Nodes {
			if v >= 6 {
				t.Errorf("non-author %d in community", v)
			}
		}
		if !com.Contains(1) {
			t.Error("query author missing from its community")
		}
	}
	// non-anchor and invalid queries rejected
	if _, err := s.Discover(6, 0); err == nil {
		t.Error("paper node accepted")
	}
	if _, err := s.Discover(-1, 0); err == nil {
		t.Error("negative node accepted")
	}
}

func TestHeteroBuilderValidation(t *testing.T) {
	schema := HeteroSchema{
		NodeTypes: []string{"a", "b"},
		EdgeTypes: []HeteroEdgeType{{Name: "e", From: 0, To: 1}},
	}
	b, err := NewHeteroBuilder(schema, []int32{0, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(0, 0, 0); err == nil {
		t.Error("self loop accepted")
	}
	if err := b.SetAttrs(0, 5); err == nil {
		t.Error("bad attr accepted")
	}
	// asymmetric meta-path rejected at searcher construction
	g := mustHIN(t, b)
	if _, err := NewHeteroSearcher(g, MetaPath{Edges: []int32{0}, Start: 0}, Options{Theta: 2}); err == nil {
		t.Error("asymmetric meta-path accepted")
	}
}

func mustHIN(t *testing.T, b *HeteroBuilder) *HeteroGraph {
	t.Helper()
	if err := b.AddEdge(0, 1, 0); err != nil {
		t.Fatal(err)
	}
	return b.Build()
}
