// Package accuracy is the statistical harness behind the bounded-error
// evaluation contract (DESIGN.md §16): it replays eval-style query sets
// through two engines sharing one offline state — exact (full budget) and
// adaptive (staged, (ε, δ)-bounded) — and measures what the bound actually
// delivers: the observed rank-k error rate, which the contract promises
// stays at or below δ, and the mean realized sample-budget fraction, which
// is the whole point of stopping early.
//
// A rank-k error is a disagreement OUTSIDE the indifference region: the
// bounded answer differs from the exact one at a level whose exact
// normalized margin exceeds ε. Disagreements inside the region (exact
// margin ≤ ε) are the PAC slack the ε parameter explicitly sells — the two
// candidate levels are statistically near-tied at width ε, and the contract
// does not promise to resolve them; the harness reports them separately as
// near-tie flips so a caller can see both numbers.
package accuracy

import (
	"context"
	"fmt"
	"math"

	"github.com/codsearch/cod/internal/core"
	"github.com/codsearch/cod/internal/dataset"
	"github.com/codsearch/cod/internal/engine"
	"github.com/codsearch/cod/internal/graph"
	"github.com/codsearch/cod/internal/influence"
	"github.com/codsearch/cod/internal/obs"
)

// Config parameterizes one harness run. The zero value replays the tiny
// dataset at the adaptive defaults.
type Config struct {
	// Dataset names a registered dataset (default "tiny").
	Dataset string
	// Seed drives the dataset, the query workload, and the per-query PCG
	// streams (default 1).
	Seed uint64
	// NumQueries is the query-set size (default 50). Each query runs through
	// both CODU and CODL, so the comparison count is twice this.
	NumQueries int
	// K and Theta are the paper parameters (defaults 3 and 64 — high enough
	// that the stage-1 pool can certify; at toy budgets the concentration
	// radius never shrinks below ε and every query runs to exhaustion).
	K, Theta int
	// Eps, Delta, Stages configure the bound (defaults 0.05, 0.05, 4).
	Eps, Delta float64
	Stages     int
}

func (c Config) withDefaults() Config {
	if c.Dataset == "" {
		c.Dataset = "tiny"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.NumQueries <= 0 {
		c.NumQueries = 50
	}
	if c.K <= 0 {
		c.K = 3
	}
	if c.Theta <= 0 {
		c.Theta = 64
	}
	if c.Eps <= 0 {
		c.Eps = 0.05
	}
	if c.Delta <= 0 {
		c.Delta = 0.05
	}
	if c.Stages <= 0 {
		c.Stages = 4
	}
	return c
}

// Result aggregates one harness run.
type Result struct {
	Dataset    string
	Eps, Delta float64
	// Compared counts (query, variant) pairs; Sampled the subset that took
	// the sampling path (the rest answered from the HIMOR index, where the
	// adaptive and exact engines are trivially identical).
	Compared, Sampled int
	// EarlyStops counts sampled pairs the adaptive engine certified before
	// the final stage.
	EarlyStops int
	// Mismatches counts sampled pairs whose communities differ at all;
	// Errors the subset that are rank-k errors (the exact margin at the
	// flipped level exceeds ε). Mismatches − Errors are near-tie flips.
	Mismatches, Errors int
	// ErrorRate is Errors / Sampled (0 when nothing was sampled).
	ErrorRate float64
	// MeanBudget is realized samples / full budget across sampled pairs.
	MeanBudget float64
}

// String renders the one-line summary the codbench sweep prints.
func (r Result) String() string {
	return fmt.Sprintf("%s eps=%.3g delta=%.3g: compared=%d sampled=%d early_stop=%d mismatch=%d errors=%d error_rate=%.4f mean_budget=%.2f",
		r.Dataset, r.Eps, r.Delta, r.Compared, r.Sampled, r.EarlyStops, r.Mismatches, r.Errors, r.ErrorRate, r.MeanBudget)
}

// Run replays the query set through the exact and adaptive engines and
// scores the adaptive answers. Both engines share one offline build, so the
// comparison isolates the staged evaluation itself.
func Run(ctx context.Context, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	ds, err := dataset.Load(cfg.Dataset, cfg.Seed)
	if err != nil {
		return Result{}, err
	}
	g := ds.G
	p := engine.Params{K: cfg.K, Theta: cfg.Theta, Seed: cfg.Seed}
	exact, err := engine.Build(ctx, g, p, engine.Config{})
	if err != nil {
		return Result{}, err
	}
	p = exact.Params()
	adaptive := engine.New(g, exact.Tree(), exact.Index(), p, engine.Config{
		Adaptive: engine.Adaptive{Enabled: true, Eps: cfg.Eps, Delta: cfg.Delta, Stages: cfg.Stages}})

	queries := dataset.Queries(g, cfg.NumQueries, graph.NewRand(cfg.Seed^0xcafe))
	m := obs.NewQueryMetrics(obs.NewRegistry())
	res := Result{Dataset: cfg.Dataset, Eps: cfg.Eps, Delta: cfg.Delta}
	variants := []engine.Variant{engine.VariantCODU, engine.VariantCODL}
	for i, q := range queries {
		for vi, variant := range variants {
			seed := graph.ItemSeed(cfg.Seed^0x51ab, i*len(variants)+vi)
			want, err := exact.Execute(ctx, exact.Compile(variant, q.Node, q.Attr), graph.NewRand(seed))
			if err != nil {
				return res, fmt.Errorf("accuracy: exact %v q=%d: %w", variant, q.Node, err)
			}
			tr := obs.NewTrace()
			qctx := obs.WithRecorder(ctx, obs.NewRecorder(m, tr))
			got, err := adaptive.Execute(qctx, adaptive.Compile(variant, q.Node, q.Attr), graph.NewRand(seed))
			if err != nil {
				return res, fmt.Errorf("accuracy: adaptive %v q=%d: %w", variant, q.Node, err)
			}
			res.Compared++
			sampled := false
			for _, st := range tr.Steps() {
				if st.Kind == "sample" {
					sampled = true
					if st.Outcome == "early_stop" {
						res.EarlyStops++
					}
				}
			}
			if !sampled {
				continue
			}
			res.Sampled++
			if communitiesEqual(got, want) {
				continue
			}
			res.Mismatches++
			gap, err := exactMarginAt(ctx, g, exact, p, variant, q, seed, max(got.Level, want.Level))
			if err != nil {
				return res, fmt.Errorf("accuracy: margin replay %v q=%d: %w", variant, q.Node, err)
			}
			if gap > cfg.Eps {
				res.Errors++
			}
		}
	}
	if res.Sampled > 0 {
		res.ErrorRate = float64(res.Errors) / float64(res.Sampled)
	}
	if b := m.AdaptiveSamplesBudget.Value(); b > 0 {
		res.MeanBudget = float64(m.AdaptiveSamplesUsed.Value()) / float64(b)
	}
	return res, nil
}

func communitiesEqual(a, b engine.Community) bool {
	if a.Found != b.Found || a.Level != b.Level || a.FromIndex != b.FromIndex || len(a.Nodes) != len(b.Nodes) {
		return false
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			return false
		}
	}
	return true
}

// exactMarginAt replays the exact full-budget evaluation of one query and
// returns the normalized margin |σ̂(q) − σ̂(boundary)| / t at the flipped
// level — the width of the gap the adaptive answer got wrong. The replay
// reproduces the engine's chain and draw order from exported pieces, so it
// sees exactly the pool the exact engine evaluated.
func exactMarginAt(ctx context.Context, g *graph.Graph, eng *engine.Engine, p engine.Params, variant engine.Variant, q dataset.Query, seed uint64, level int) (float64, error) {
	var ch *core.Chain
	var rrs []*influence.RRGraph
	rng := graph.NewRand(seed)
	switch variant {
	case engine.VariantCODU:
		ch = core.ChainFromTree(eng.Tree(), q.Node)
		s := engine.NewGraphSampler(g, p.Model, rng)
		pool, err := influence.BatchCtx(ctx, s, p.Theta*g.N())
		if err != nil {
			return 0, err
		}
		rrs = pool
	case engine.VariantCODL:
		rec, err := core.LoreCtx(ctx, g, eng.Tree(), q.Node, q.Attr, p.Beta, p.Linkage)
		if err != nil {
			return 0, err
		}
		ch = core.InnerChain(g, eng.Tree(), rec, q.Node)
		members := rec.Sub.ToParent
		in := make([]bool, g.N())
		for _, v := range members {
			in[v] = true
		}
		member := func(u graph.NodeID) bool { return in[u] }
		s := engine.NewGraphSampler(g, p.Model, rng)
		total := p.Theta * len(members)
		rrs = make([]*influence.RRGraph, 0, total)
		for i := 0; i < total; i++ {
			rrs = append(rrs, s.RRGraphWithin(members[rng.IntN(len(members))], member))
		}
	default:
		return 0, fmt.Errorf("accuracy: margin replay for unsupported variant %v", variant)
	}
	se := core.NewStagedEval(ch, p.K, nil)
	if err := se.Fold(ctx, rrs); err != nil {
		return 0, err
	}
	_, margins := se.Sweep(ctx)
	if level < 0 || level >= len(margins) {
		// A found/not-found flip with no common level: score it with the
		// smallest decisive margin, the conservative choice.
		gap := math.Inf(1)
		for _, m := range margins {
			if mh := math.Abs(float64(m.QCount-m.Boundary)) / float64(len(rrs)); mh < gap {
				gap = mh
			}
		}
		if math.IsInf(gap, 1) {
			return 0, nil
		}
		return gap, nil
	}
	m := margins[level]
	return math.Abs(float64(m.QCount-m.Boundary)) / float64(len(rrs)), nil
}
