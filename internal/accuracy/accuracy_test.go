package accuracy

import (
	"context"
	"testing"
)

// TestHarnessTinyWithinDelta is the in-tree slice of the statistical
// acceptance gate (the full eval-set sweep runs via codbench -accuracy):
// at several (ε, δ) on the tiny dataset the observed rank-k error rate must
// stay within δ, and at the shipping defaults the run must actually realize
// savings — early stops happen and the mean budget fraction drops well
// below 1 — or the bound is too loose to be worth its complexity.
func TestHarnessTinyWithinDelta(t *testing.T) {
	for _, cfg := range []Config{
		{Eps: 0.05, Delta: 0.05},
		{Eps: 0.02, Delta: 0.10},
	} {
		cfg.NumQueries = 30
		r, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Log(r)
		if r.Sampled == 0 {
			t.Fatalf("%s: no (query, variant) pair took the sampling path", r)
		}
		if r.ErrorRate > r.Delta {
			t.Errorf("%s: error rate exceeds delta", r)
		}
		if r.Mismatches < r.Errors {
			t.Errorf("%s: more errors than mismatches", r)
		}
	}

	defaults, err := Run(context.Background(), Config{NumQueries: 30})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(defaults)
	if defaults.EarlyStops == 0 {
		t.Errorf("%s: no early stops at the default (ε, δ)", defaults)
	}
	if defaults.MeanBudget <= 0 || defaults.MeanBudget > 0.8 {
		t.Errorf("%s: mean realized budget %.2f outside (0, 0.8]", defaults, defaults.MeanBudget)
	}
}

// TestHarnessExhaustiveIsExact pins the degenerate corner: thresholds that
// can never certify force every stage to run, so the adaptive engine must
// agree with the exact one on every single pair and realize 100% of the
// budget.
func TestHarnessExhaustiveIsExact(t *testing.T) {
	r, err := Run(context.Background(), Config{NumQueries: 20, Eps: 1e-300, Delta: 1e-300})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(r)
	if r.Mismatches != 0 || r.Errors != 0 || r.EarlyStops != 0 {
		t.Errorf("%s: exhaustive run disagreed with the exact engine", r)
	}
	if r.Sampled > 0 && r.MeanBudget != 1 {
		t.Errorf("%s: exhaustive run realized %.2f of the budget, want 1", r, r.MeanBudget)
	}
}
