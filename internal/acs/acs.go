// Package acs implements the attributed community search baselines the
// paper compares against (§V-A):
//
//   - ACQ  — the maximal k-core containing the query node in which every
//     node shares the query attribute (Fang et al., VLDB'16).
//   - CAC  — the triangle-connected k-truss containing the query node in
//     which every node shares the query attribute (Zhu et al., CIKM'20).
//   - ATC  — a (k,d)-truss containing the query node maximizing an
//     attribute score (Huang & Lakshmanan, VLDB'17). We implement the
//     standard simplification documented in DESIGN.md: the maximal
//     connected k-truss around q followed by greedy peeling of
//     attribute-free nodes while the attribute score improves and the truss
//     constraint is preserved (the diameter bound d is not enforced).
//
// All three return the empty community when their structural predicate
// yields nothing containing q.
package acs

import (
	"slices"

	"github.com/codsearch/cod/internal/cohesion"
	"github.com/codsearch/cod/internal/graph"
)

// ACQ returns the maximal connected k-core of the attribute-induced
// subgraph containing q, for the largest feasible k, plus that k. The query
// node must carry the attribute, otherwise the result is empty.
func ACQ(g *graph.Graph, q graph.NodeID, attr graph.AttrID) ([]graph.NodeID, int) {
	if !g.HasAttr(q, attr) {
		return nil, 0
	}
	sub := graph.Induce(g, g.AttrNodes(attr))
	lq := sub.Local(q)
	comp, k := cohesion.MaxCoreComponent(sub.G, lq)
	if k < 1 || len(comp) < 2 {
		return nil, 0
	}
	return toParent(sub, comp), k
}

// CAC returns the triangle-connected k-truss of the attribute-induced
// subgraph containing q, for the largest feasible k, plus that k.
func CAC(g *graph.Graph, q graph.NodeID, attr graph.AttrID) ([]graph.NodeID, int) {
	if !g.HasAttr(q, attr) {
		return nil, 0
	}
	sub := graph.Induce(g, g.AttrNodes(attr))
	lq := sub.Local(q)
	comp, k := cohesion.TriangleConnectedTruss(sub.G, lq)
	if k < 3 || len(comp) < 3 {
		return nil, 0
	}
	return toParent(sub, comp), k
}

// ATC returns a k-truss community around q scored by the attribute score
// f(H, attr) = cnt(H, attr)² / |H| (the single-attribute instance of the
// paper's score), plus the truss parameter k used.
func ATC(g *graph.Graph, q graph.NodeID, attr graph.AttrID) ([]graph.NodeID, int) {
	comm, k := cohesion.MaxTrussCommunity(g, q)
	if k < 3 || len(comm) < 3 {
		return nil, 0
	}
	return atcPeel(g, q, attr, comm, k)
}

// atcPeel greedily removes attribute-free nodes from the initial k-truss
// community while the attribute score improves and the truss constraint and
// connectivity around q survive.
func atcPeel(g *graph.Graph, q graph.NodeID, attr graph.AttrID, comm []graph.NodeID, k int) ([]graph.NodeID, int) {
	best := slices.Clone(comm)
	bestScore := attrScore(g, best, attr)
	cur := slices.Clone(comm)
	for {
		// Candidate removals: nodes without the attribute, never q.
		cand := graph.NodeID(-1)
		bestDeg := 1 << 30
		curSet := toSet(cur)
		for _, v := range cur {
			if v == q || g.HasAttr(v, attr) {
				continue
			}
			d := degreeWithin(g, v, curSet)
			if d < bestDeg {
				bestDeg = d
				cand = v
			}
		}
		if cand < 0 {
			break
		}
		next := removeNode(cur, cand)
		// Re-establish the k-truss and connectivity around q.
		next = trussCore(g, next, k, q)
		if len(next) == 0 || !slices.Contains(next, q) {
			break
		}
		score := attrScore(g, next, attr)
		if score <= bestScore {
			break
		}
		cur = next
		best = slices.Clone(next)
		bestScore = score
	}
	return best, k
}

// ATCd is the (k,d)-truss variant of ATC: candidates are restricted to the
// radius-d ball around q before the truss community is extracted and
// peeled, enforcing the paper's query-distance constraint. d <= 0 means no
// distance bound (plain ATC).
func ATCd(g *graph.Graph, q graph.NodeID, attr graph.AttrID, d int) ([]graph.NodeID, int) {
	if d <= 0 {
		return ATC(g, q, attr)
	}
	ball := ballAround(g, q, d)
	if len(ball) < 3 {
		return nil, 0
	}
	sub := graph.Induce(g, ball)
	lq := sub.Local(q)
	comm, k := cohesion.MaxTrussCommunity(sub.G, lq)
	if k < 3 || len(comm) < 3 {
		return nil, 0
	}
	peeled, k := atcPeel(sub.G, lq, attr, comm, k)
	return toParent(sub, peeled), k
}

// ballAround returns all nodes within hop distance d of q (including q).
func ballAround(g *graph.Graph, q graph.NodeID, d int) []graph.NodeID {
	dist := map[graph.NodeID]int{q: 0}
	queue := []graph.NodeID{q}
	out := []graph.NodeID{q}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if dist[v] == d {
			continue
		}
		for _, u := range g.Neighbors(v) {
			if _, ok := dist[u]; !ok {
				dist[u] = dist[v] + 1
				out = append(out, u)
				queue = append(queue, u)
			}
		}
	}
	slices.Sort(out)
	return out
}

// attrScore is the single-attribute ATC score cnt² / |H|.
func attrScore(g *graph.Graph, nodes []graph.NodeID, attr graph.AttrID) float64 {
	if len(nodes) == 0 {
		return 0
	}
	cnt := 0
	for _, v := range nodes {
		if g.HasAttr(v, attr) {
			cnt++
		}
	}
	return float64(cnt) * float64(cnt) / float64(len(nodes))
}

// trussCore restricts nodes to the connected component of q inside the
// maximal sub-subgraph where every edge keeps truss number >= k.
func trussCore(g *graph.Graph, nodes []graph.NodeID, k int, q graph.NodeID) []graph.NodeID {
	sub := graph.Induce(g, nodes)
	lq := sub.Local(q)
	if lq < 0 {
		return nil
	}
	_, kept := cohesion.KTruss(sub.G, k)
	if len(kept) == 0 {
		return nil
	}
	keptSet := make(map[graph.NodeID]bool, len(kept))
	for _, v := range kept {
		keptSet[v] = true
	}
	if !keptSet[lq] {
		return nil
	}
	// connected component of q within kept, via edges of trussness >= k
	edges, truss := cohesion.Trussness(sub.G)
	adj := make(map[graph.NodeID][]graph.NodeID)
	for e, ep := range edges {
		if truss[e] >= k {
			adj[ep[0]] = append(adj[ep[0]], ep[1])
			adj[ep[1]] = append(adj[ep[1]], ep[0])
		}
	}
	seen := map[graph.NodeID]bool{lq: true}
	queue := []graph.NodeID{lq}
	var comp []graph.NodeID
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		comp = append(comp, v)
		for _, u := range adj[v] {
			if !seen[u] {
				seen[u] = true
				queue = append(queue, u)
			}
		}
	}
	out := make([]graph.NodeID, 0, len(comp))
	for _, lv := range comp {
		out = append(out, sub.ToParent[lv])
	}
	slices.Sort(out)
	return out
}

func toParent(sub *graph.Subgraph, locals []graph.NodeID) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(locals))
	for _, lv := range locals {
		out = append(out, sub.ToParent[lv])
	}
	slices.Sort(out)
	return out
}

func toSet(nodes []graph.NodeID) map[graph.NodeID]bool {
	s := make(map[graph.NodeID]bool, len(nodes))
	for _, v := range nodes {
		s[v] = true
	}
	return s
}

func degreeWithin(g *graph.Graph, v graph.NodeID, set map[graph.NodeID]bool) int {
	d := 0
	for _, u := range g.Neighbors(v) {
		if set[u] {
			d++
		}
	}
	return d
}

func removeNode(nodes []graph.NodeID, v graph.NodeID) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(nodes)-1)
	for _, u := range nodes {
		if u != v {
			out = append(out, u)
		}
	}
	return out
}
