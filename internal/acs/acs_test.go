package acs

import (
	"testing"

	"github.com/codsearch/cod/internal/graph"
)

// attributedCliques: two K4s bridged by one edge; attribute 0 on the first
// clique plus the bridge endpoint of the second, attribute 1 elsewhere.
func attributedCliques(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(8, 2)
	add := func(u, v graph.NodeID) {
		if err := b.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			add(graph.NodeID(i), graph.NodeID(j))
		}
	}
	for i := 4; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			add(graph.NodeID(i), graph.NodeID(j))
		}
	}
	add(3, 4)
	for _, v := range []graph.NodeID{0, 1, 2, 3, 4} {
		if err := b.SetAttrs(v, 0); err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range []graph.NodeID{5, 6, 7} {
		if err := b.SetAttrs(v, 1); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestACQ(t *testing.T) {
	g := attributedCliques(t)
	comm, k := ACQ(g, 0, 0)
	// attr-0 induced subgraph: K4 {0,1,2,3} + pendant 4 -> 3-core is the K4
	if k != 3 || len(comm) != 4 {
		t.Errorf("ACQ = %v k=%d, want K4 k=3", comm, k)
	}
	for _, v := range comm {
		if v > 3 {
			t.Errorf("ACQ leaked outside the attributed clique: %v", comm)
		}
	}
	// query node lacking the attribute
	if comm, k := ACQ(g, 7, 0); comm != nil || k != 0 {
		t.Errorf("ACQ without attribute should be empty, got %v", comm)
	}
}

func TestCAC(t *testing.T) {
	g := attributedCliques(t)
	comm, k := CAC(g, 0, 0)
	if k != 4 || len(comm) != 4 {
		t.Errorf("CAC = %v k=%d, want the K4 with k=4", comm, k)
	}
	// node 4's attr-0 neighborhood has no triangle: empty answer
	if comm, _ := CAC(g, 4, 0); comm != nil {
		t.Errorf("CAC(4) = %v, want empty (no attributed triangle)", comm)
	}
}

func TestATC(t *testing.T) {
	g := attributedCliques(t)
	comm, k := ATC(g, 0, 0)
	if k < 3 || len(comm) == 0 {
		t.Fatalf("ATC = %v k=%d", comm, k)
	}
	found := false
	for _, v := range comm {
		if v == 0 {
			found = true
		}
	}
	if !found {
		t.Error("ATC community must contain the query node")
	}
	// ATC on a high-attribute-density community should keep it intact.
	if len(comm) != 4 {
		t.Errorf("ATC = %v, want the K4", comm)
	}
}

func TestATCPeeling(t *testing.T) {
	// K5 where only 3 nodes carry the attribute: peeling should reduce the
	// community while keeping a 3-truss... K5 minus nodes stays a truss.
	b := graph.NewBuilder(5, 1)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			if err := b.AddEdge(graph.NodeID(i), graph.NodeID(j)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, v := range []graph.NodeID{0, 1, 2} {
		if err := b.SetAttrs(v, 0); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	comm, k := ATC(g, 0, 0)
	if len(comm) == 0 || k < 3 {
		t.Fatalf("ATC = %v k=%d", comm, k)
	}
	// score of K5 = 9/5 = 1.8; removing both attribute-free nodes is blocked
	// by the k-truss constraint (k=5 needs all five), so the full K5 stays.
	if len(comm) != 5 {
		t.Logf("ATC peeled to %v (acceptable if truss holds)", comm)
		for _, v := range comm {
			if v > 2 && len(comm) < 3 {
				t.Errorf("bad peel: %v", comm)
			}
		}
	}
}

func TestBaselinesOnTrianglelessGraph(t *testing.T) {
	g, err := graph.FromEdges(4, [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	// re-add attributes
	b := graph.NewBuilder(4, 1)
	_ = b.AddEdge(0, 1)
	_ = b.AddEdge(1, 2)
	_ = b.AddEdge(2, 3)
	for v := graph.NodeID(0); v < 4; v++ {
		_ = b.SetAttrs(v, 0)
	}
	g = b.Build()
	if comm, _ := CAC(g, 1, 0); comm != nil {
		t.Errorf("CAC on path = %v, want empty", comm)
	}
	if comm, _ := ATC(g, 1, 0); comm != nil {
		t.Errorf("ATC on path = %v, want empty", comm)
	}
	comm, k := ACQ(g, 1, 0)
	if k != 1 || len(comm) != 4 {
		t.Errorf("ACQ on path = %v k=%d, want whole path k=1", comm, k)
	}
}

func TestATCd(t *testing.T) {
	g := attributedCliques(t)
	// d=1: only q's direct neighborhood is eligible; the K4 around node 0
	// lies entirely within distance 1.
	comm, k := ATCd(g, 0, 0, 1)
	if k < 3 || len(comm) != 4 {
		t.Errorf("ATCd(d=1) = %v k=%d, want the K4", comm, k)
	}
	for _, v := range comm {
		if v > 4 {
			t.Errorf("ATCd leaked outside the ball: %v", comm)
		}
	}
	// d<=0 falls back to plain ATC
	c1, k1 := ATCd(g, 0, 0, 0)
	c2, k2 := ATC(g, 0, 0)
	if k1 != k2 || len(c1) != len(c2) {
		t.Errorf("ATCd(0) != ATC: %v/%d vs %v/%d", c1, k1, c2, k2)
	}
	// a tiny ball has no truss
	h, err := graph.FromEdges(5, [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if comm, _ := ATCd(h, 0, 0, 1); comm != nil {
		t.Errorf("path ball produced %v", comm)
	}
}

func TestBallAround(t *testing.T) {
	g, err := graph.FromEdges(6, [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	b1 := ballAround(g, 2, 1)
	if len(b1) != 3 { // {1,2,3}
		t.Errorf("ball(2,1) = %v", b1)
	}
	b2 := ballAround(g, 2, 2)
	if len(b2) != 5 { // {0,1,2,3,4}
		t.Errorf("ball(2,2) = %v", b2)
	}
	bAll := ballAround(g, 2, 10)
	if len(bAll) != 6 {
		t.Errorf("ball(2,10) = %v", bAll)
	}
}
