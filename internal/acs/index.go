package acs

import (
	"github.com/codsearch/cod/internal/cohesion"
	"github.com/codsearch/cod/internal/graph"
)

// Index caches the per-graph and per-attribute decompositions the three
// baselines rely on, so that evaluating 100 queries does not repeat the
// O(m^1.5) truss peeling per query. The package-level ACQ/CAC/ATC functions
// remain the convenient single-shot form.
type Index struct {
	g        *graph.Graph
	truss    *cohesion.TrussIndex // full-graph truss (ATC); lazy
	attrSubs map[graph.AttrID]*attrSub
}

type attrSub struct {
	sub   *graph.Subgraph
	core  []int                // core numbers of the induced subgraph (ACQ)
	truss *cohesion.TrussIndex // truss index of the induced subgraph (CAC); lazy
}

// NewIndex returns an empty cache over g; decompositions are computed on
// first use.
func NewIndex(g *graph.Graph) *Index {
	return &Index{g: g, attrSubs: map[graph.AttrID]*attrSub{}}
}

func (ix *Index) attr(a graph.AttrID) *attrSub {
	s, ok := ix.attrSubs[a]
	if !ok {
		sub := graph.Induce(ix.g, ix.g.AttrNodes(a))
		s = &attrSub{sub: sub, core: cohesion.CoreNumbers(sub.G)}
		ix.attrSubs[a] = s
	}
	return s
}

func (ix *Index) fullTruss() *cohesion.TrussIndex {
	if ix.truss == nil {
		ix.truss = cohesion.NewTrussIndex(ix.g)
	}
	return ix.truss
}

func (s *attrSub) trussIndex() *cohesion.TrussIndex {
	if s.truss == nil {
		s.truss = cohesion.NewTrussIndex(s.sub.G)
	}
	return s.truss
}

// ACQ is the cached equivalent of the package-level ACQ.
func (ix *Index) ACQ(q graph.NodeID, attr graph.AttrID) ([]graph.NodeID, int) {
	if !ix.g.HasAttr(q, attr) {
		return nil, 0
	}
	s := ix.attr(attr)
	lq := s.sub.Local(q)
	if lq < 0 {
		return nil, 0
	}
	comp, k := cohesion.CoreComponent(s.sub.G, lq, s.core)
	if k < 1 || len(comp) < 2 {
		return nil, 0
	}
	return toParent(s.sub, comp), k
}

// CAC is the cached equivalent of the package-level CAC.
func (ix *Index) CAC(q graph.NodeID, attr graph.AttrID) ([]graph.NodeID, int) {
	if !ix.g.HasAttr(q, attr) {
		return nil, 0
	}
	s := ix.attr(attr)
	lq := s.sub.Local(q)
	if lq < 0 {
		return nil, 0
	}
	comp, k := s.trussIndex().TriangleConnectedTruss(lq)
	if k < 3 || len(comp) < 3 {
		return nil, 0
	}
	return toParent(s.sub, comp), k
}

// ATC is the cached equivalent of the package-level ATC (the greedy peeling
// still runs per query; only the initial full-graph truss is shared).
func (ix *Index) ATC(q graph.NodeID, attr graph.AttrID) ([]graph.NodeID, int) {
	comm, k := ix.fullTruss().MaxTrussCommunity(q)
	if k < 3 || len(comm) < 3 {
		return nil, 0
	}
	return atcPeel(ix.g, q, attr, comm, k)
}
