package acs

import (
	"testing"

	"github.com/codsearch/cod/internal/dataset"
	"github.com/codsearch/cod/internal/graph"
)

// The cached Index must agree with the single-shot functions on every
// query of a realistic workload.
func TestIndexMatchesFunctions(t *testing.T) {
	ds, err := dataset.Load("tiny", 11)
	if err != nil {
		t.Fatal(err)
	}
	g := ds.G
	ix := NewIndex(g)
	qs := dataset.Queries(g, 15, graph.NewRand(12))
	equal := func(a, b []graph.NodeID) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	for _, q := range qs {
		for _, m := range []struct {
			name    string
			indexed func(graph.NodeID, graph.AttrID) ([]graph.NodeID, int)
			direct  func(*graph.Graph, graph.NodeID, graph.AttrID) ([]graph.NodeID, int)
		}{
			{"ACQ", ix.ACQ, ACQ},
			{"CAC", ix.CAC, CAC},
			{"ATC", ix.ATC, ATC},
		} {
			gi, ki := m.indexed(q.Node, q.Attr)
			gd, kd := m.direct(g, q.Node, q.Attr)
			if ki != kd || !equal(gi, gd) {
				t.Errorf("%s(%d,%d): indexed (%v,k=%d) != direct (%v,k=%d)",
					m.name, q.Node, q.Attr, gi, ki, gd, kd)
			}
		}
	}
}

func TestIndexReuse(t *testing.T) {
	ds, err := dataset.Load("tiny", 13)
	if err != nil {
		t.Fatal(err)
	}
	ix := NewIndex(ds.G)
	// Two queries against the same attribute should reuse the cached
	// subgraph (observable only via correctness; this exercises the path).
	qs := dataset.Queries(ds.G, 6, graph.NewRand(14))
	for _, q := range qs {
		ix.ACQ(q.Node, q.Attr)
		ix.CAC(q.Node, q.Attr)
		ix.ATC(q.Node, q.Attr)
	}
	if len(ix.attrSubs) == 0 {
		t.Error("no attribute subgraphs cached")
	}
	if ix.truss == nil {
		t.Error("full-graph truss not cached")
	}
}
