// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis vocabulary, built only on the standard
// library so the repository's static-analysis suite (cmd/codvet) compiles
// without network access to x/tools.
//
// The package provides three things:
//
//   - the Analyzer/Pass/Diagnostic types that individual checkers
//     (internal/analysis/detrand, maporder, sharedwrite, floatcmp) are
//     written against;
//   - a driver implementing the `go vet -vettool` unit-checking protocol
//     (see unit.go), so the multichecker runs under the standard build
//     system with full type information from export data;
//   - shared policy helpers: which packages count as "library" code, how
//     `//codvet:ignore` suppression comments work, and small AST/type
//     utilities used by more than one checker.
//
// The determinism and concurrency contracts the checkers enforce are
// documented in DESIGN.md ("Determinism & concurrency contract").
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //codvet:ignore comments. It must be a valid identifier.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
	// FactTypes lists the fact types the analyzer exports or imports (each
	// a pointer to a zero value, e.g. (*Nondeterministic)(nil)). Declaring
	// them registers the type with the facts (de)serializer; see facts.go.
	FactTypes []Fact
}

// A Diagnostic is one finding, anchored at a source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// A Pass provides one analyzer with the parsed and type-checked syntax of a
// single package, and collects its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	ignores map[string][]*ignoreDirective // file name -> directives
	facts   *FactStore
	diags   *[]Diagnostic
}

// ignoreDirective is one parsed //codvet:ignore comment.
type ignoreDirective struct {
	pos   token.Pos // position of the comment
	line  int       // line the comment ends on
	which string    // analyzer name, or "all"
	used  bool      // suppressed at least one diagnostic this run
}

// Reportf records a diagnostic at pos unless a //codvet:ignore directive for
// this analyzer covers the position (same line, or the line above).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.ignored(pos) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

func (p *Pass) ignored(pos token.Pos) bool {
	if p.Analyzer.Name == "unusedignore" {
		// The meta-check audits the directives themselves; letting a
		// directive silence the report that it is stale would make every
		// ignore self-justifying.
		return false
	}
	position := p.Fset.Position(pos)
	for _, d := range p.ignores[position.Filename] {
		if d.which != "all" && d.which != p.Analyzer.Name {
			continue
		}
		if d.line == position.Line || d.line == position.Line-1 {
			d.used = true
			return true
		}
	}
	return false
}

// ExportObjectFact attaches fact to obj, which must belong to the package
// under analysis; dependents of this package can retrieve it with
// ImportObjectFact. See facts.go for the serialization contract.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if obj == nil || obj.Pkg() != p.Pkg {
		panic(fmt.Sprintf("analysis: %s: ExportObjectFact on object %v outside the package under analysis",
			p.Analyzer.Name, obj))
	}
	p.facts.ExportObjectFact(obj, fact)
}

// ImportObjectFact copies into fact the fact of that concrete type attached
// to obj — by this pass earlier in the package, or by the run that checked
// the dependency declaring obj — and reports whether one exists.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	return p.facts.ImportObjectFact(obj, fact)
}

// An IgnoreDirective describes one //codvet:ignore comment, for the
// unusedignore meta-check.
type IgnoreDirective struct {
	Pos      token.Pos
	Analyzer string // named analyzer, or "all"
	Used     bool   // suppressed at least one diagnostic this run
}

// IgnoreDirectives returns every parsed //codvet:ignore directive of the
// package with its use state. Meaningful only from an analyzer that runs
// after all others; Run moves any analyzer named "unusedignore" last for
// exactly this purpose.
func (p *Pass) IgnoreDirectives() []IgnoreDirective {
	var out []IgnoreDirective
	for _, ds := range p.ignores {
		for _, d := range ds {
			out = append(out, IgnoreDirective{Pos: d.pos, Analyzer: d.which, Used: d.used})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// IsLibraryPackage reports whether the package under analysis is library
// code: the determinism checkers only apply there. Binaries (package main),
// anything under a cmd/ or examples/ path element, and testdata trees are
// exempt.
func (p *Pass) IsLibraryPackage() bool {
	if p.Pkg != nil && p.Pkg.Name() == "main" {
		return false
	}
	path := ""
	if p.Pkg != nil {
		path = p.Pkg.Path()
	}
	for _, seg := range strings.Split(path, "/") {
		switch seg {
		case "cmd", "examples", "testdata":
			return false
		}
	}
	return true
}

// IsTestFile reports whether the file containing pos is a _test.go file.
// Test code may use ad-hoc randomness and map iteration freely; the runtime
// race detector and the determinism-replay tests cover it instead.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// SourceFiles yields the pass's non-test files; most analyzers iterate these.
func (p *Pass) SourceFiles() []*ast.File {
	var out []*ast.File
	for _, f := range p.Files {
		if !p.IsTestFile(f.Pos()) {
			out = append(out, f)
		}
	}
	return out
}

// parseIgnores scans every comment of every file for
// "//codvet:ignore <name>[,<name>...] [reason]" directives.
func parseIgnores(fset *token.FileSet, files []*ast.File) map[string][]*ignoreDirective {
	out := make(map[string][]*ignoreDirective)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//") {
					continue
				}
				rest, ok := strings.CutPrefix(strings.TrimSpace(c.Text[2:]), "codvet:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				position := fset.Position(c.End())
				for _, name := range strings.Split(fields[0], ",") {
					out[position.Filename] = append(out[position.Filename],
						&ignoreDirective{pos: c.Pos(), line: position.Line, which: name})
				}
			}
		}
	}
	return out
}

// Run type-checks nothing itself: callers supply the parsed files, package
// and types.Info, and Run applies every analyzer, returning diagnostics
// sorted by position. Facts are process-local; drivers that carry facts
// across packages use RunWithFacts.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunWithFacts(fset, files, pkg, info, analyzers, NewFactStore())
}

// RunWithFacts is Run with an explicit fact store: facts already in the
// store (imported from dependencies, or from earlier packages of the same
// in-process run) are visible to every pass, and facts the passes export
// are added to it. Analyzers named "unusedignore" are moved to the end of
// the order so they observe every other analyzer's suppressions.
func RunWithFacts(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer, facts *FactStore) ([]Diagnostic, error) {
	var diags []Diagnostic
	ignores := parseIgnores(fset, files)
	ordered := make([]*Analyzer, 0, len(analyzers))
	var last []*Analyzer
	for _, a := range analyzers {
		if a.Name == "unusedignore" {
			last = append(last, a)
			continue
		}
		ordered = append(ordered, a)
	}
	ordered = append(ordered, last...)
	for _, a := range ordered {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			ignores:   ignores,
			facts:     facts,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// NewInfo returns a types.Info with every map the checkers rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// PkgFuncCall resolves call's callee: when the callee is a selector on an
// imported package name (e.g. rand.IntN), it returns the imported package's
// path and the function name; otherwise it returns "", "".
func PkgFuncCall(info *types.Info, call *ast.CallExpr) (pkgPath, name string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

// ObjectOf returns the types.Object an identifier denotes (use or def).
func ObjectOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// IsMapType reports whether e's type has a map underlying type.
func IsMapType(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// IsFloat reports whether e's type is a floating-point basic type.
func IsFloat(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
