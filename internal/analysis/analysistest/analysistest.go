// Package analysistest runs an analyzer over fixture packages under a
// testdata/src tree and checks its diagnostics against "// want" comment
// expectations, mirroring the x/tools package of the same name with only
// the standard library.
//
// A fixture line may carry one or more expectations:
//
//	_ = rand.Int() // want `global math/rand`
//
// Each backquoted or double-quoted string is a regular expression that must
// match the message of a diagnostic reported on that line. Diagnostics
// without a matching expectation, and expectations without a matching
// diagnostic, fail the test. Fixture packages may import only the standard
// library (they are type-checked with the stdlib source importer, which
// needs no pre-compiled export data).
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"github.com/codsearch/cod/internal/analysis"
)

// expectation is one `// want` regexp attached to a fixture line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile("(?:`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\")")

// TestData returns the analyzer package's testdata directory.
func TestData(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// Run applies a to each fixture package (a path under testdata/src) and
// reports mismatches between diagnostics and expectations on t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	for _, pkgPath := range pkgPaths {
		runPackage(t, testdata, a, pkgPath)
	}
}

func runPackage(t *testing.T, testdata string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", filepath.FromSlash(pkgPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("%s: %v", pkgPath, err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", pkgPath, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("%s: no fixture files in %s", pkgPath, dir)
	}

	var tcErrs []error
	tc := &types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Error:    func(err error) { tcErrs = append(tcErrs, err) },
	}
	info := analysis.NewInfo()
	pkg, _ := tc.Check(pkgPath, fset, files, info)
	if len(tcErrs) > 0 {
		for _, err := range tcErrs {
			t.Errorf("%s: typecheck: %v", pkgPath, err)
		}
		return
	}

	diags, err := analysis.Run(fset, files, pkg, info, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("%s: %v", pkgPath, err)
	}

	expects := collectExpectations(t, fset, files)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if !claim(expects, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s: %s", pkgPath, pos, d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s: %s:%d: expected diagnostic matching %q, got none",
				pkgPath, filepath.Base(e.file), e.line, e.raw)
		}
	}
}

// claim marks the first unmatched expectation covering (file, line, msg).
func claim(expects []*expectation, file string, line int, msg string) bool {
	for _, e := range expects {
		if !e.matched && e.file == file && e.line == line && e.re.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}

func collectExpectations(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue
				}
				rest, ok := strings.CutPrefix(strings.TrimSpace(text), "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				matches := wantRE.FindAllStringSubmatch(rest, -1)
				if len(matches) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				for _, m := range matches {
					raw := m[1]
					if raw == "" {
						raw = m[2]
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp: %v", pos.Filename, pos.Line, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		return out[i].line < out[j].line
	})
	return out
}
