// Package analysistest runs an analyzer over fixture packages under a
// testdata/src tree and checks its diagnostics against "// want" comment
// expectations, mirroring the x/tools package of the same name with only
// the standard library.
//
// A fixture line may carry one or more expectations:
//
//	_ = rand.Int() // want `global math/rand`
//
// Each backquoted or double-quoted string is a regular expression that must
// match the message of a diagnostic reported on that line. Diagnostics
// without a matching expectation, and expectations without a matching
// diagnostic, fail the test.
//
// Fixture packages may import the standard library (type-checked with the
// stdlib source importer) and each other: an import whose path names a
// directory under the same testdata/src tree resolves to that fixture
// package, which is analyzed first — its "want" expectations are checked
// too, and the facts its pass exports are visible when the importing
// package is analyzed. That is how the interprocedural analyzers' fixtures
// exercise facts that cross a package boundary.
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"github.com/codsearch/cod/internal/analysis"
)

// expectation is one `// want` regexp attached to a fixture line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile("(?:`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\")")

// TestData returns the analyzer package's testdata directory.
func TestData(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// Run applies a to each fixture package (a path under testdata/src) and
// reports mismatches between diagnostics and expectations on t. Fixture
// dependencies of the named packages are analyzed first, in one shared
// fact store, so cross-package facts behave as they do under the unit
// driver.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	RunAnalyzers(t, testdata, []*analysis.Analyzer{a}, pkgPaths...)
}

// RunAnalyzers is Run with a multichecker: every analyzer sees every
// package, diagnostics of all of them match against the same "want"
// expectations. The unusedignore meta-check needs this — alone it has
// nothing to observe.
func RunAnalyzers(t *testing.T, testdata string, analyzers []*analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	r := &runner{
		t:         t,
		testdata:  testdata,
		analyzers: analyzers,
		fset:      token.NewFileSet(),
		facts:     analysis.NewFactStore(),
		pkgs:      make(map[string]*types.Package),
		checking:  make(map[string]bool),
	}
	r.source = importer.ForCompiler(r.fset, "source", nil)
	for _, pkgPath := range pkgPaths {
		r.analyze(pkgPath)
	}
}

type runner struct {
	t         *testing.T
	testdata  string
	analyzers []*analysis.Analyzer
	fset      *token.FileSet
	facts     *analysis.FactStore
	source    types.Importer
	pkgs      map[string]*types.Package // fixture packages already analyzed
	checking  map[string]bool           // cycle guard
}

// fixtureDir returns the directory of a fixture package path, or "" when
// the path is not under this testdata tree.
func (r *runner) fixtureDir(pkgPath string) string {
	dir := filepath.Join(r.testdata, "src", filepath.FromSlash(pkgPath))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		return dir
	}
	return ""
}

// Import resolves fixture imports to analyzed fixture packages and
// everything else to the stdlib source importer.
func (r *runner) Import(path string) (*types.Package, error) {
	if r.fixtureDir(path) != "" {
		if pkg := r.analyze(path); pkg != nil {
			return pkg, nil
		}
	}
	return r.source.Import(path)
}

// analyze type-checks and analyzes one fixture package (dependencies
// first), returning its package for importers.
func (r *runner) analyze(pkgPath string) *types.Package {
	r.t.Helper()
	if pkg, ok := r.pkgs[pkgPath]; ok {
		return pkg
	}
	if r.checking[pkgPath] {
		r.t.Fatalf("%s: fixture import cycle", pkgPath)
	}
	r.checking[pkgPath] = true
	defer func() { r.checking[pkgPath] = false }()

	dir := r.fixtureDir(pkgPath)
	if dir == "" {
		r.t.Fatalf("%s: no fixture directory under %s", pkgPath, r.testdata)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		r.t.Fatalf("%s: %v", pkgPath, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(r.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			r.t.Fatalf("%s: %v", pkgPath, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		r.t.Fatalf("%s: no fixture files in %s", pkgPath, dir)
	}

	// Analyze fixture dependencies before type-checking this package, so
	// their facts are in the store by the time this package's passes run.
	for _, f := range files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if r.fixtureDir(path) != "" {
				r.analyze(path)
			}
		}
	}

	var tcErrs []error
	tc := &types.Config{
		Importer: r,
		Error:    func(err error) { tcErrs = append(tcErrs, err) },
	}
	info := analysis.NewInfo()
	pkg, _ := tc.Check(pkgPath, r.fset, files, info)
	if len(tcErrs) > 0 {
		for _, err := range tcErrs {
			r.t.Errorf("%s: typecheck: %v", pkgPath, err)
		}
		return nil
	}
	r.pkgs[pkgPath] = pkg

	diags, err := analysis.RunWithFacts(r.fset, files, pkg, info, r.analyzers, r.facts)
	if err != nil {
		r.t.Fatalf("%s: %v", pkgPath, err)
	}

	expects := collectExpectations(r.t, r.fset, files)
	for _, d := range diags {
		pos := r.fset.Position(d.Pos)
		if !claim(expects, pos.Filename, pos.Line, d.Message) {
			r.t.Errorf("%s: unexpected diagnostic: %s: %s", pkgPath, pos, d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			r.t.Errorf("%s: %s:%d: expected diagnostic matching %q, got none",
				pkgPath, filepath.Base(e.file), e.line, e.raw)
		}
	}
	return pkg
}

// claim marks the first unmatched expectation covering (file, line, msg).
func claim(expects []*expectation, file string, line int, msg string) bool {
	for _, e := range expects {
		if !e.matched && e.file == file && e.line == line && e.re.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}

func collectExpectations(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue
				}
				rest, ok := strings.CutPrefix(strings.TrimSpace(text), "want ")
				if !ok {
					// A line comment that is itself the subject of a
					// diagnostic (a //codvet:ignore directive) cannot carry
					// a second comment, so a nested "// want" marker inside
					// it counts too.
					if i := strings.Index(text, "// want "); i >= 0 {
						rest = text[i+len("// want "):]
					} else {
						continue
					}
				}
				pos := fset.Position(c.Pos())
				matches := wantRE.FindAllStringSubmatch(rest, -1)
				if len(matches) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				for _, m := range matches {
					raw := m[1]
					if raw == "" {
						raw = m[2]
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp: %v", pos.Filename, pos.Line, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		return out[i].line < out[j].line
	})
	return out
}
