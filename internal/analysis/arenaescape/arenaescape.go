// Package arenaescape generalizes poolret from "don't touch a buffer after
// Put" to "don't let arena-owned storage escape a function that recycles
// the arena" — checked over the control-flow graph, not source order, and
// across function and package boundaries via facts.
//
// The engine's query path carves slice views out of pooled arenas
// (influence.Arena.Finalize, queryScratch.memberMask): the views alias the
// arena's backing arrays and die the moment the arena is Reset or returned
// to its sync.Pool. The dangerous shape is a function that both releases
// an arena and lets a view of it out — through a return value, a
// package-level variable, a channel send, or a closure that carries the
// view — on some path where both happen. The caller then holds storage the
// next query is already overwriting; the corruption is silent and
// seed-dependent, the worst kind in a determinism-contract codebase.
//
// Mechanics:
//
//   - An arena handle is any variable whose (pointer-stripped) named type
//     mentions Arena or Scratch — influence.Arena and engine.queryScratch
//     today, by construction rather than enumeration.
//
//   - A value is owned by handle A when it aliases A's storage: the
//     reference-typed result of a method called through A, a
//     reference-typed field read through A, a call to a function carrying
//     an OwnedResult fact with A in the owner position, an alias of any of
//     those, or a closure capturing one.
//
//   - A release of A is pool.Put(A) (sync.Pool, poolret's matcher), a
//     Release/Reset method called through A, or a call to a function
//     carrying a Releases fact with A in the released position.
//
//   - A diagnostic fires when an escape of a value owned by A and a
//     release of A lie on one CFG path (either order — a released-then-
//     returned view and a stored-then-released view are both dangling), or
//     when the release is deferred, which puts it on every path out.
//
// A function that returns an owned view of a parameter (or receiver)
// without releasing it is not a bug — it is a transfer of the ownership
// obligation, recorded as an OwnedResult fact so the caller is checked
// instead: exactly the sampleRestricted -> Execute relationship in
// internal/engine. Likewise a function that releases a parameter earns a
// Releases fact (engine's release method), so `defer e.release(sc)`
// guards the whole extent of Execute. Suppress a deliberate exception
// with //codvet:ignore arenaescape and a reason.
package arenaescape

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/codsearch/cod/internal/analysis"
	"github.com/codsearch/cod/internal/analysis/cfg"
)

// OwnedResult marks a function whose result aliases the storage of the
// arena passed in the Owner position.
type OwnedResult struct {
	Owner  int `json:"owner"` // parameter index; -1 for the receiver
	Result int `json:"result"`
}

// AFact marks the type as a fact.
func (*OwnedResult) AFact() {}

// Releases marks a function that recycles the arena passed in the Param
// position.
type Releases struct {
	Param int `json:"param"` // parameter index; -1 for the receiver
}

// AFact marks the type as a fact.
func (*Releases) AFact() {}

// Analyzer is the arenaescape analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "arenaescape",
	Doc:       "forbid arena-owned views from escaping functions that release the arena, on any CFG path",
	Run:       run,
	FactTypes: []analysis.Fact{(*OwnedResult)(nil), (*Releases)(nil)},
}

// funcSummary is the package-local fixpoint state for one function.
type funcSummary struct {
	owned    *OwnedResult
	releases *Releases
}

func run(pass *analysis.Pass) error {
	fns := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.SourceFiles() {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
					fns[obj] = fn
				}
			}
		}
	}

	// Summaries to a fixpoint first (helpers may be declared after their
	// callers), diagnostics after, so call chains within the package work
	// exactly like imported facts.
	local := make(map[*types.Func]*funcSummary)
	for changed := true; changed; {
		changed = false
		for obj, fn := range fns {
			a := newAnalysis(pass, fn, local)
			s := a.summarize()
			prev := local[obj]
			if prev == nil || !summaryEq(prev, s) {
				local[obj] = s
				changed = true
			}
		}
	}
	for obj, s := range local {
		if s.owned != nil {
			pass.ExportObjectFact(obj, s.owned)
		}
		if s.releases != nil {
			pass.ExportObjectFact(obj, s.releases)
		}
	}

	if !pass.IsLibraryPackage() {
		return nil
	}
	for _, fn := range fns {
		newAnalysis(pass, fn, local).report()
	}
	return nil
}

func summaryEq(a, b *funcSummary) bool {
	eqO := (a.owned == nil) == (b.owned == nil) &&
		(a.owned == nil || *a.owned == *b.owned)
	eqR := (a.releases == nil) == (b.releases == nil) &&
		(a.releases == nil || *a.releases == *b.releases)
	return eqO && eqR
}

// escape is one point where an owned value leaves the function.
type escape struct {
	root   types.Object
	pos    token.Pos
	kind   string // "return value", "package-level variable", "channel send"
	result int    // result index for returns, else -1
}

// release is one point where an arena's storage is recycled.
type release struct {
	root     types.Object
	pos      token.Pos
	deferred bool
}

// funcAnalysis holds one function's collected state.
type funcAnalysis struct {
	pass  *analysis.Pass
	fn    *ast.FuncDecl
	local map[*types.Func]*funcSummary

	owned    map[types.Object]types.Object // alias -> arena handle
	escapes  []escape
	releases []release
}

func newAnalysis(pass *analysis.Pass, fn *ast.FuncDecl, local map[*types.Func]*funcSummary) *funcAnalysis {
	a := &funcAnalysis{pass: pass, fn: fn, local: local, owned: make(map[types.Object]types.Object)}
	a.collectOwned()
	a.collectReleases()
	a.collectEscapes()
	return a
}

// summarize derives the function's exported facts: releasing a parameter
// or the receiver earns Releases; returning a parameter-owned view with no
// release of that parameter earns OwnedResult (ownership transfer).
func (a *funcAnalysis) summarize() *funcSummary {
	s := &funcSummary{}
	for _, rel := range a.releases {
		if idx, ok := a.paramIndex(rel.root); ok {
			s.releases = &Releases{Param: idx}
			break
		}
	}
	released := make(map[types.Object]bool)
	for _, rel := range a.releases {
		released[rel.root] = true
	}
	for _, esc := range a.escapes {
		if esc.kind != "return value" || released[esc.root] {
			continue
		}
		if idx, ok := a.paramIndex(esc.root); ok {
			s.owned = &OwnedResult{Owner: idx, Result: esc.result}
			break
		}
	}
	return s
}

// report emits diagnostics for escape/release pairs sharing a CFG path.
func (a *funcAnalysis) report() {
	if len(a.escapes) == 0 || len(a.releases) == 0 {
		return
	}
	g := cfg.New(a.fn.Body)
	for _, esc := range a.escapes {
		for _, rel := range a.releases {
			if rel.root != esc.root {
				continue
			}
			if rel.deferred || onePath(g, rel.pos, esc.pos) {
				a.pass.Reportf(esc.pos,
					"value owned by %s escapes via %s on a path where %s is released; the view aliases storage the next query will overwrite",
					esc.root.Name(), esc.kind, esc.root.Name())
				break
			}
		}
	}
}

// onePath reports whether the statements at two positions can both execute
// in one run of the function: same basic block, or one block reaches the
// other.
func onePath(g *cfg.Graph, a, b token.Pos) bool {
	ba, bb := blockFor(g, a), blockFor(g, b)
	if ba == nil || bb == nil {
		return true // unmapped (e.g. inside a nested literal): stay conservative
	}
	return ba == bb || g.Reaches(ba, bb) || g.Reaches(bb, ba)
}

// blockFor finds the basic block whose smallest node span contains pos.
func blockFor(g *cfg.Graph, pos token.Pos) *cfg.Block {
	var best *cfg.Block
	var bestSpan token.Pos
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if n.Pos() <= pos && pos <= n.End() {
				span := n.End() - n.Pos()
				if best == nil || span < bestSpan {
					best, bestSpan = b, span
				}
			}
		}
	}
	return best
}

// --- collection ---

// collectOwned builds the alias map: variables bound to arena-owned
// values. Iterated so chains of aliases resolve regardless of order.
func (a *funcAnalysis) collectOwned() {
	for i := 0; i < 3; i++ {
		before := len(a.owned)
		ast.Inspect(a.fn.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) > 1 && len(n.Rhs) == 1 {
					a.bindMulti(n.Lhs, n.Rhs[0])
					return true
				}
				for j, lhs := range n.Lhs {
					rhs := n.Rhs[0]
					if len(n.Rhs) == len(n.Lhs) {
						rhs = n.Rhs[j]
					}
					a.bind(lhs, rhs)
				}
			case *ast.ValueSpec:
				for j, name := range n.Names {
					if j < len(n.Values) {
						a.bind(name, n.Values[j])
					}
				}
			}
			return true
		})
		if len(a.owned) == before {
			return
		}
	}
}

func (a *funcAnalysis) bind(lhs, rhs ast.Expr) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return
	}
	obj := analysis.ObjectOf(a.pass.TypesInfo, id)
	if obj == nil {
		return
	}
	if root, ok := a.ownedSource(rhs); ok {
		a.owned[obj] = root
	}
}

// bindMulti handles `a, b := call()`: the call's type is a tuple, so the
// single-value path cannot see through it. The owned summary pins which
// result aliases the arena; for a bare handle-method call every
// reference-typed result does.
func (a *funcAnalysis) bindMulti(lhss []ast.Expr, rhs ast.Expr) {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return
	}
	root, hint, ok := a.ownedCallRoot(call)
	if !ok {
		return
	}
	for i, lhs := range lhss {
		if hint >= 0 && i != hint {
			continue
		}
		id, idOK := ast.Unparen(lhs).(*ast.Ident)
		if !idOK {
			continue
		}
		obj := analysis.ObjectOf(a.pass.TypesInfo, id)
		if obj == nil || !refLike(obj.Type()) {
			continue
		}
		a.owned[obj] = root
	}
}

// ownedSource reports whether e aliases arena storage and which handle
// owns it. The expression itself must be reference-like: extracting a
// scalar element of a view copies it out of the arena.
func (a *funcAnalysis) ownedSource(e ast.Expr) (types.Object, bool) {
	if !refLike(a.pass.TypesInfo.TypeOf(e)) {
		return nil, false
	}
	var root types.Object
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if obj := analysis.ObjectOf(a.pass.TypesInfo, n); obj != nil {
				if r, ok := a.owned[obj]; ok {
					root, found = r, true
				}
			}
		case *ast.SelectorExpr:
			// A reference-typed field read through a handle (a.ptrs) is a
			// view; the arena field of a scratch (sc.arena) is the arena
			// itself, not a view of it.
			if h := handleRoot(a.pass.TypesInfo, n.X); h != nil {
				t := a.pass.TypesInfo.TypeOf(n)
				if refLike(t) && !arenaNamed(t) {
					root, found = h, true
				}
			}
		case *ast.CallExpr:
			if r, ok := a.ownedCall(n); ok {
				root, found = r, true
				return false
			}
		case *ast.FuncLit:
			// A closure capturing a view carries the view.
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if found {
					return false
				}
				if id, ok := m.(*ast.Ident); ok {
					if obj := analysis.ObjectOf(a.pass.TypesInfo, id); obj != nil {
						if r, ok := a.owned[obj]; ok {
							root, found = r, true
						}
					}
				}
				return true
			})
			return false
		}
		return !found
	})
	return root, found
}

// ownedCall matches single-valued view-minting calls; see ownedCallRoot.
func (a *funcAnalysis) ownedCall(call *ast.CallExpr) (types.Object, bool) {
	root, hint, ok := a.ownedCallRoot(call)
	if !ok {
		return nil, false
	}
	if hint < 0 && !refLike(a.pass.TypesInfo.TypeOf(call)) {
		return nil, false
	}
	return root, true
}

// ownedCallRoot matches the two call shapes that mint views: a method
// invoked through a handle, and a call to a function with an OwnedResult
// summary whose owner argument is a handle. resultHint is the owned result
// index when the summary pins one, -1 when any reference-typed result of a
// handle method counts.
func (a *funcAnalysis) ownedCallRoot(call *ast.CallExpr) (root types.Object, resultHint int, ok bool) {
	info := a.pass.TypesInfo
	if sel, selOK := ast.Unparen(call.Fun).(*ast.SelectorExpr); selOK {
		if h := handleRoot(info, sel.X); h != nil {
			return h, -1, true
		}
	}
	callee := calleeFunc(info, call)
	if callee == nil {
		return nil, 0, false
	}
	fact, factOK := a.ownedFact(callee)
	if !factOK {
		return nil, 0, false
	}
	var ownerExpr ast.Expr
	if fact.Owner < 0 {
		if sel, selOK := ast.Unparen(call.Fun).(*ast.SelectorExpr); selOK {
			ownerExpr = sel.X
		}
	} else if fact.Owner < len(call.Args) {
		ownerExpr = call.Args[fact.Owner]
	}
	if ownerExpr == nil {
		return nil, 0, false
	}
	if h := handleRoot(info, ownerExpr); h != nil {
		return h, fact.Result, true
	}
	return nil, 0, false
}

func (a *funcAnalysis) ownedFact(fn *types.Func) (OwnedResult, bool) {
	if s, ok := a.local[fn]; ok && s.owned != nil {
		return *s.owned, true
	}
	var fact OwnedResult
	if a.pass.ImportObjectFact(fn, &fact) {
		return fact, true
	}
	return OwnedResult{}, false
}

func (a *funcAnalysis) releasesFact(fn *types.Func) (Releases, bool) {
	if s, ok := a.local[fn]; ok && s.releases != nil {
		return *s.releases, true
	}
	var fact Releases
	if a.pass.ImportObjectFact(fn, &fact) {
		return fact, true
	}
	return Releases{}, false
}

// collectReleases finds every recycling point, noting deferred ones
// (including a release inside a deferred closure).
func (a *funcAnalysis) collectReleases() {
	ast.Inspect(a.fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			a.releaseCall(n.Call, true)
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok {
						a.releaseCall(call, true)
					}
					return true
				})
			}
			return false
		case *ast.CallExpr:
			a.releaseCall(n, false)
		}
		return true
	})
}

// releaseCall records call if it recycles an arena handle.
func (a *funcAnalysis) releaseCall(call *ast.CallExpr, deferred bool) {
	info := a.pass.TypesInfo
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		// pool.Put(handle): surrendering the arena to a sync.Pool.
		if sel.Sel.Name == "Put" && len(call.Args) == 1 && isSyncPool(info.TypeOf(sel.X)) {
			if h := handleRoot(info, call.Args[0]); h != nil {
				a.releases = append(a.releases, release{root: h, pos: call.Pos(), deferred: deferred})
				return
			}
		}
		// handle.Release() / handle.Reset(): in-place recycling.
		if sel.Sel.Name == "Release" || sel.Sel.Name == "Reset" {
			if h := handleRoot(info, sel.X); h != nil {
				a.releases = append(a.releases, release{root: h, pos: call.Pos(), deferred: deferred})
				return
			}
		}
	}
	// A call to a function that releases one of its parameters (or its
	// receiver) releases our handle transitively.
	callee := calleeFunc(info, call)
	if callee == nil {
		return
	}
	fact, ok := a.releasesFact(callee)
	if !ok {
		return
	}
	var relExpr ast.Expr
	if fact.Param < 0 {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			relExpr = sel.X
		}
	} else if fact.Param < len(call.Args) {
		relExpr = call.Args[fact.Param]
	}
	if relExpr == nil {
		return
	}
	if h := handleRoot(info, relExpr); h != nil {
		a.releases = append(a.releases, release{root: h, pos: call.Pos(), deferred: deferred})
	}
}

// collectEscapes finds returns, package-level stores, and channel sends of
// owned values. FuncLit bodies are skipped: a literal's return is not this
// function's, and a view-carrying literal is itself tracked as owned.
func (a *funcAnalysis) collectEscapes() {
	info := a.pass.TypesInfo
	namedResults := a.namedResultObjs()
	ast.Inspect(a.fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			for i, res := range n.Results {
				if root, ok := a.ownedSource(res); ok {
					a.escapes = append(a.escapes, escape{root: root, pos: res.Pos(), kind: "return value", result: i})
				}
			}
			if len(n.Results) == 0 {
				for i, obj := range namedResults {
					if root, ok := a.owned[obj]; ok {
						a.escapes = append(a.escapes, escape{root: root, pos: n.Pos(), kind: "return value", result: i})
					}
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				rhs := n.Rhs[0]
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				if !a.isPackageLevel(lhs) {
					continue
				}
				if root, ok := a.ownedSource(rhs); ok {
					a.escapes = append(a.escapes, escape{root: root, pos: rhs.Pos(), kind: "package-level variable", result: -1})
				}
			}
		case *ast.SendStmt:
			if root, ok := a.ownedSource(n.Value); ok {
				a.escapes = append(a.escapes, escape{root: root, pos: n.Value.Pos(), kind: "channel send", result: -1})
			}
		}
		return true
	})
	_ = info
}

// isPackageLevel reports whether the assignable's base variable lives at
// package scope.
func (a *funcAnalysis) isPackageLevel(e ast.Expr) bool {
	base := baseIdent(e)
	if base == nil {
		return false
	}
	obj := analysis.ObjectOf(a.pass.TypesInfo, base)
	v, ok := obj.(*types.Var)
	return ok && v.Parent() == a.pass.Pkg.Scope()
}

// namedResultObjs returns the function's named result variables, in
// result order.
func (a *funcAnalysis) namedResultObjs() []types.Object {
	var out []types.Object
	if a.fn.Type.Results == nil {
		return nil
	}
	for _, field := range a.fn.Type.Results.List {
		for _, name := range field.Names {
			out = append(out, a.pass.TypesInfo.Defs[name])
		}
	}
	return out
}

// paramIndex maps an object to its position in the function signature:
// 0-based parameter index, or -1 for the receiver.
func (a *funcAnalysis) paramIndex(obj types.Object) (int, bool) {
	if a.fn.Recv != nil {
		for _, field := range a.fn.Recv.List {
			for _, name := range field.Names {
				if a.pass.TypesInfo.Defs[name] == obj {
					return -1, true
				}
			}
		}
	}
	i := 0
	for _, field := range a.fn.Type.Params.List {
		for _, name := range field.Names {
			if a.pass.TypesInfo.Defs[name] == obj {
				return i, true
			}
			i++
		}
		if len(field.Names) == 0 {
			i++
		}
	}
	return 0, false
}

// --- type and shape helpers ---

// handleRoot unwraps selectors, derefs, and index expressions to the base
// identifier and returns its object when that object is arena-typed.
func handleRoot(info *types.Info, e ast.Expr) types.Object {
	base := baseIdent(e)
	if base == nil {
		return nil
	}
	obj := analysis.ObjectOf(info, base)
	if obj == nil || !arenaNamed(obj.Type()) {
		return nil
	}
	return obj
}

func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// arenaNamed reports whether t (pointer-stripped) is a named type whose
// name marks pooled storage.
func arenaNamed(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	name := strings.ToLower(named.Obj().Name())
	return strings.Contains(name, "arena") || strings.Contains(name, "scratch")
}

// refLike reports whether values of t alias underlying storage rather
// than copy it. Interfaces are deliberately excluded: the dominant
// interface result in this codebase is error, and treating every err
// alongside an owned slice as a view would drown the check in noise.
func refLike(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	}
	return false
}

func isSyncPool(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool"
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := analysis.ObjectOf(info, fun).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := analysis.ObjectOf(info, fun.Sel).(*types.Func)
		return fn
	}
	return nil
}
