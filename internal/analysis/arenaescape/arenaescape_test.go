package arenaescape_test

import (
	"testing"

	"github.com/codsearch/cod/internal/analysis/analysistest"
	"github.com/codsearch/cod/internal/analysis/arenaescape"
)

func TestArenaEscape(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), arenaescape.Analyzer, "arenaescapetest")
}
