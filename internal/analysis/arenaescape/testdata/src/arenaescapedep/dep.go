// Package arenaescapedep is the dependency side of the arenaescape
// fixtures: a view-returning helper (OwnedResult fact — ownership
// transfer, not a bug) and a releasing helper (Releases fact). Importers
// combining the two wrongly are reported only because these facts cross
// the package boundary.
package arenaescapedep

import "arenaescapefix"

// View transfers ownership of an arena view to the caller.
func View(a *arenaescapefix.Arena) []int { return a.Ints(3) }

// Done releases the caller's arena.
func Done(a *arenaescapefix.Arena) { a.Release() }
