// Package arenaescapefix declares the fixture arena: a named type the
// analyzer recognizes by name, a view-minting method (which earns an
// OwnedResult fact on its receiver), and a Release method matched
// intrinsically at call sites.
package arenaescapefix

// Arena owns reusable backing storage, like influence.Arena.
type Arena struct{ buf []int }

// New returns an empty arena.
func New() *Arena { return &Arena{} }

// Ints carves an n-element view out of the backing array; the view dies at
// the next Release.
func (a *Arena) Ints(n int) []int {
	start := len(a.buf)
	for i := 0; i < n; i++ {
		a.buf = append(a.buf, 0)
	}
	return a.buf[start:]
}

// Release recycles the backing storage.
func (a *Arena) Release() { a.buf = a.buf[:0] }
