// Package arenaescapetest exercises arenaescape: escapes recognized only
// through imported facts, CFG-path sensitivity, deferred releases, every
// escape class, and the transfer/copy shapes that must stay silent.
package arenaescapetest

import (
	"arenaescapedep"
	"arenaescapefix"
)

// --- cross-package facts ---

// Bad combines an imported view-minting helper with a local release; only
// the OwnedResult fact on View says v aliases a.
func Bad(a *arenaescapefix.Arena) []int {
	v := arenaescapedep.View(a)
	a.Release()
	return v // want `value owned by a escapes via return value on a path where a is released`
}

// BadDone combines a local view with an imported releasing helper; only
// the Releases fact on Done says a is recycled.
func BadDone(a *arenaescapefix.Arena) []int {
	v := a.Ints(2)
	arenaescapedep.Done(a)
	return v // want `value owned by a escapes via return value on a path where a is released`
}

// --- same-package chain through the fixpoint ---

// BadLocalHelper uses helpers declared below it; their summaries come from
// the package-local fixpoint, not imported facts.
func BadLocalHelper(a *arenaescapefix.Arena) []int {
	v := view(a)
	done(a)
	return v // want `value owned by a escapes via return value on a path where a is released`
}

func view(a *arenaescapefix.Arena) []int { return a.Ints(9) }

func done(a *arenaescapefix.Arena) { a.Release() }

// --- CFG-path sensitivity ---

// BadBranch releases on one branch only; the join still returns the view,
// so a release->escape path exists.
func BadBranch(a *arenaescapefix.Arena, drop bool) []int {
	v := a.Ints(1)
	if drop {
		a.Release()
	}
	return v // want `value owned by a escapes via return value on a path where a is released`
}

// GoodBranch keeps release and escape on disjoint paths: the releasing arm
// returns nil, the view only leaves while the arena is alive.
func GoodBranch(a *arenaescapefix.Arena, drop bool) []int {
	v := a.Ints(1)
	if drop {
		a.Release()
		return nil
	}
	return v
}

// BadDefer defers the release, putting it on every path out.
func BadDefer(a *arenaescapefix.Arena) []int {
	defer a.Release()
	v := a.Ints(5)
	return v // want `value owned by a escapes via return value on a path where a is released`
}

// --- other escape classes ---

var leaked []int

// BadGlobal parks the view in a package-level variable before recycling.
func BadGlobal(a *arenaescapefix.Arena) {
	leaked = a.Ints(2) // want `value owned by a escapes via package-level variable on a path where a is released`
	a.Release()
}

// BadSend hands the view to another goroutine.
func BadSend(a *arenaescapefix.Arena, ch chan []int) {
	v := a.Ints(2)
	ch <- v // want `value owned by a escapes via channel send on a path where a is released`
	a.Release()
}

// BadClosure smuggles the view inside a returned closure.
func BadClosure(a *arenaescapefix.Arena) func() int {
	v := a.Ints(1)
	f := func() int { return v[0] }
	a.Release()
	return f // want `value owned by a escapes via return value on a path where a is released`
}

// --- silent shapes ---

// Transfer returns the view without releasing: ownership moves to the
// caller (this is sampleRestricted's shape), recorded as a fact.
func Transfer(a *arenaescapefix.Arena) []int {
	return a.Ints(4)
}

// GoodCopy extracts a scalar: the value is copied out of the arena, so the
// release is harmless.
func GoodCopy(a *arenaescapefix.Arena) int {
	v := a.Ints(1)
	n := v[0]
	a.Release()
	return n
}
