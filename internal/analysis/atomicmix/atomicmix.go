// Package atomicmix reports struct fields that are accessed both through
// sync/atomic and through plain loads/stores. Mixing the two is a data
// race the race detector only catches when the schedule cooperates: the
// atomic side establishes no happens-before for the plain side, so a plain
// `c.N++` next to `atomic.AddInt64(&c.N, 1)` can lose updates silently —
// in this codebase that means drifting cache gauges and flight-recorder
// counters rather than crashes, which is exactly the kind of bug that
// survives review.
//
// The check is interprocedural: each analyzed package records, per field,
// whether it saw atomic and/or plain accesses, and exports that as an
// Access fact on the field object (facts.go). A package that plainly
// writes a field its dependency updates atomically — or atomically updates
// a field its dependency reads plainly — is reported even though neither
// package alone shows the mix.
//
// Two exemptions keep the signal clean:
//
//   - Construction. Plain writes to a struct the current function just
//     created (x := T{…}, &T{…}, new(T), or a local var of type T) cannot
//     race; initialization before publication is the idiomatic setup path.
//
//   - Tests. _test.go files often poke fields single-threadedly; the race
//     detector owns that ground.
//
// Unlike the determinism analyzers this one is not library-gated: a cmd/
// binary racing a library field is as broken as anyone else.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/codsearch/cod/internal/analysis"
)

// Access is the fact recorded on a struct field: how the declaring (and
// re-exporting) packages have been seen touching it.
type Access struct {
	Atomic   bool   `json:"atomic,omitempty"`
	Plain    bool   `json:"plain,omitempty"`
	AtomicAt string `json:"atomic_at,omitempty"` // one example position
	PlainAt  string `json:"plain_at,omitempty"`
}

// AFact marks the type as a fact.
func (*Access) AFact() {}

// Analyzer is the atomicmix analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "atomicmix",
	Doc:       "report struct fields accessed both via sync/atomic and via plain loads/stores",
	Run:       run,
	FactTypes: []analysis.Fact{(*Access)(nil)},
}

// use accumulates one package's accesses to one field.
type use struct {
	atomic []token.Pos
	plain  []token.Pos
}

func run(pass *analysis.Pass) error {
	uses := make(map[*types.Var]*use)
	rec := func(field *types.Var) *use {
		u := uses[field]
		if u == nil {
			u = &use{}
			uses[field] = u
		}
		return u
	}

	for _, f := range pass.SourceFiles() {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			fresh := freshRoots(pass.TypesInfo, fn)
			atomicSels := make(map[*ast.SelectorExpr]bool)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if field, sel, ok := atomicFieldArg(pass.TypesInfo, n); ok {
						u := rec(field)
						u.atomic = append(u.atomic, sel.Pos())
						atomicSels[sel] = true
					}
				case *ast.SelectorExpr:
					if atomicSels[n] {
						return true
					}
					field, ok := eligibleField(pass.TypesInfo, n)
					if !ok {
						return true
					}
					if root, ok := ast.Unparen(n.X).(*ast.Ident); ok {
						if obj := analysis.ObjectOf(pass.TypesInfo, root); obj != nil && fresh[obj] {
							return true
						}
					}
					u := rec(field)
					u.plain = append(u.plain, n.Pos())
				}
				return true
			})
		}
	}

	for field, u := range uses {
		var fact Access
		hasFact := pass.ImportObjectFact(field, &fact)

		atomicAt := fact.AtomicAt
		if len(u.atomic) > 0 {
			atomicAt = pass.Fset.Position(u.atomic[0]).String()
		}
		plainAt := fact.PlainAt
		if len(u.plain) > 0 {
			plainAt = pass.Fset.Position(u.plain[0]).String()
		}

		if len(u.plain) > 0 && (len(u.atomic) > 0 || (hasFact && fact.Atomic)) {
			for _, pos := range u.plain {
				pass.Reportf(pos,
					"non-atomic access of field %s, which is accessed atomically at %s; every access must go through sync/atomic",
					field.Name(), atomicAt)
			}
		} else if len(u.atomic) > 0 && hasFact && fact.Plain {
			// The plain side lives in a dependency; anchor the report at our
			// atomic sites, the only positions in this package.
			for _, pos := range u.atomic {
				pass.Reportf(pos,
					"atomic access of field %s, which is accessed non-atomically at %s; every access must go through sync/atomic",
					field.Name(), plainAt)
			}
		}

		// Facts can only be exported for own-package objects; dependents
		// merge what they see with what we saw.
		if field.Pkg() == pass.Pkg {
			pass.ExportObjectFact(field, &Access{
				Atomic:   len(u.atomic) > 0 || fact.Atomic,
				Plain:    len(u.plain) > 0 || fact.Plain,
				AtomicAt: atomicAt,
				PlainAt:  plainAt,
			})
		}
	}
	return nil
}

// atomicFieldArg matches sync/atomic calls taking &x.f and returns the
// field. Typed atomics (atomic.Int64 etc.) are methods on dedicated types
// and cannot be accessed plainly, so only package functions matter.
func atomicFieldArg(info *types.Info, call *ast.CallExpr) (*types.Var, *ast.SelectorExpr, bool) {
	pkg, name := analysis.PkgFuncCall(info, call)
	if pkg != "sync/atomic" || !atomicOpName(name) || len(call.Args) == 0 {
		return nil, nil, false
	}
	un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil, nil, false
	}
	sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
	if !ok {
		return nil, nil, false
	}
	field, ok := fieldOf(info, sel)
	if !ok {
		return nil, nil, false
	}
	return field, sel, true
}

func atomicOpName(name string) bool {
	for _, prefix := range []string{"Add", "And", "Or", "Load", "Store", "Swap", "CompareAndSwap"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// eligibleField resolves sel to a struct field whose type sync/atomic can
// operate on; anything else cannot be part of a mix.
func eligibleField(info *types.Info, sel *ast.SelectorExpr) (*types.Var, bool) {
	field, ok := fieldOf(info, sel)
	if !ok {
		return nil, false
	}
	basic, ok := field.Type().Underlying().(*types.Basic)
	if !ok {
		return nil, false
	}
	switch basic.Kind() {
	case types.Int32, types.Int64, types.Uint32, types.Uint64, types.Uintptr, types.UnsafePointer:
		return field, true
	}
	return nil, false
}

func fieldOf(info *types.Info, sel *ast.SelectorExpr) (*types.Var, bool) {
	v, ok := analysis.ObjectOf(info, sel.Sel).(*types.Var)
	if !ok || !v.IsField() {
		return nil, false
	}
	return v, true
}

// freshRoots returns the local variables bound to structs this function
// itself allocates: composite literals, addresses of composite literals,
// and new(T). Writes through them precede any publication.
func freshRoots(info *types.Info, fn *ast.FuncDecl) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				id, ok := lhs.(*ast.Ident)
				if !ok || !freshExpr(info, n.Rhs[i]) {
					continue
				}
				if obj := analysis.ObjectOf(info, id); obj != nil {
					fresh[obj] = true
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				isFresh := len(n.Values) == 0 // var x T: zero value, unpublished
				if i < len(n.Values) {
					isFresh = freshExpr(info, n.Values[i])
				}
				if !isFresh {
					continue
				}
				if obj := analysis.ObjectOf(info, name); obj != nil {
					fresh[obj] = true
				}
			}
		}
		return true
	})
	return fresh
}

func freshExpr(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op != token.AND {
			return false
		}
		_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
		return ok
	case *ast.CallExpr:
		id, ok := ast.Unparen(e.Fun).(*ast.Ident)
		if !ok {
			return false
		}
		_, isBuiltin := analysis.ObjectOf(info, id).(*types.Builtin)
		return isBuiltin && id.Name == "new"
	}
	return false
}
