package atomicmix_test

import (
	"testing"

	"github.com/codsearch/cod/internal/analysis/analysistest"
	"github.com/codsearch/cod/internal/analysis/atomicmix"
)

func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), atomicmix.Analyzer, "atomicmixtest")
}
