// Package atomicmixdep declares fields whose access discipline its
// importers must honor: Counter.N is atomic-only, Gauge.V is plain-only.
// Both facts cross the package boundary; neither access pattern is a
// diagnostic here on its own.
package atomicmixdep

import "sync/atomic"

// Counter is updated exclusively through sync/atomic in this package.
type Counter struct {
	N int64
}

// Inc is the atomic side; importers doing plain access race against it.
func (c *Counter) Inc() { atomic.AddInt64(&c.N, 1) }

// Gauge is read and written plainly in this package (guarded elsewhere);
// importers doing atomic access mix disciplines.
type Gauge struct {
	V int64
}

// Set is the plain side.
func (g *Gauge) Set(v int64) { g.V = v }

// NewCounter writes the field plainly during construction — exempt, the
// value is not yet published.
func NewCounter(start int64) *Counter {
	c := &Counter{}
	c.N = start
	return c
}
