// Package atomicmixtest exercises atomicmix: same-package mixes, mixes
// visible only through facts imported from atomicmixdep, and the
// construction/test exemptions that stay silent.
package atomicmixtest

import (
	"sync/atomic"

	"atomicmixdep"
)

// --- same-package mix ---

type hits struct {
	count int64
	name  string
}

func (h *hits) bump() { atomic.AddInt64(&h.count, 1) }

func (h *hits) snapshot() int64 {
	return h.count // want `non-atomic access of field count, which is accessed atomically at .*atomicmix\.go`
}

func (h *hits) label() string { return h.name } // non-atomic-eligible type: never reported

// --- cross-package: plain access of a field the dependency updates atomically ---

func drain(c *atomicmixdep.Counter) int64 {
	n := c.N // want `non-atomic access of field N, which is accessed atomically at .*dep\.go`
	c.N = 0  // want `non-atomic access of field N, which is accessed atomically at .*dep\.go`
	return n
}

// --- cross-package: atomic access of a field the dependency reads plainly ---

func force(g *atomicmixdep.Gauge) {
	atomic.StoreInt64(&g.V, 9) // want `atomic access of field V, which is accessed non-atomically at .*dep\.go`
}

// --- construction exemption ---

func fresh() *atomicmixdep.Counter {
	c := atomicmixdep.Counter{}
	c.N = 3 // no diagnostic: c is freshly constructed, not yet published
	p := &atomicmixdep.Counter{N: 4}
	p.N = 5 // no diagnostic: same
	q := new(atomicmixdep.Counter)
	q.N = 6 // no diagnostic: same
	var z atomicmixdep.Counter
	z.N = 7 // no diagnostic: local zero value
	_ = c
	_ = z
	return p
}

// consistent uses atomics on both sides: no mix, no diagnostic.
type consistent struct {
	v uint64
}

func (c *consistent) add(d uint64) { atomic.AddUint64(&c.v, d) }
func (c *consistent) get() uint64  { return atomic.LoadUint64(&c.v) }
