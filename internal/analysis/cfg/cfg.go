// Package cfg lowers a function body into a control-flow graph of basic
// blocks, for analyzers whose invariant is a path property rather than a
// syntax property — arenaescape's "may this escape reach a release", and
// spanend-style liveness walks generally.
//
// The graph is intentionally small: blocks hold the ast.Nodes they execute
// in order (statements, plus the condition/tag/range expressions of the
// control statements that end them), and edges follow Go's control
// statements — if/else, for and range loops (including the zero-iteration
// exit edge), switch/type-switch (including the no-case-taken edge when
// there is no default), select, labeled break/continue, and goto. Returns
// edge to the synthetic Exit block. Deferred calls are collected on the
// graph rather than modeled as edges: they run on every path out of the
// function, so "on some path" questions treat a deferred event as
// following every block that reaches Exit.
//
// Panics are not modeled (a runtime panic aborts the query; no analyzer
// invariant survives it), and function literals are opaque nodes — build a
// separate graph for a literal's body if its interior matters.
package cfg

import "go/ast"

// A Block is one basic block: a maximal straight-line sequence of nodes.
type Block struct {
	// Index is the block's position in Graph.Blocks, in construction order
	// (entry first; otherwise roughly source order).
	Index int
	// Nodes are the statements and control expressions the block executes,
	// in order.
	Nodes []ast.Node
	// Succs are the blocks control may transfer to after the last node.
	Succs []*Block
}

// A Graph is the control-flow graph of one function body.
type Graph struct {
	Entry  *Block
	Exit   *Block // synthetic; every return and the body's fall-off end edge here
	Blocks []*Block
	// Defers are the defer statements of the body in source order; their
	// calls run, in reverse order, on every path that reaches Exit.
	Defers []*ast.DeferStmt
}

// New builds the graph of a function body.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.cur = b.g.Entry
	b.labels = make(map[string]*labelFrame)
	b.stmtList(body.List)
	b.jump(b.g.Exit)
	return b.g
}

// Reaches reports whether control can flow from block `from` to block `to`
// along one or more edges. A block does not reach itself unless it lies on
// a cycle.
func (g *Graph) Reaches(from, to *Block) bool {
	seen := make([]bool, len(g.Blocks))
	work := append([]*Block(nil), from.Succs...)
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		if b == to {
			return true
		}
		if seen[b.Index] {
			continue
		}
		seen[b.Index] = true
		work = append(work, b.Succs...)
	}
	return false
}

// loopFrame tracks the jump targets of one enclosing loop or switch.
type loopFrame struct {
	label  string
	brk    *Block // break target (loop/switch/select exit)
	cont   *Block // continue target (loop post/head); nil for switches
	isLoop bool
	fall   *Block // next clause's block for fallthrough, switch only
}

// labelFrame resolves goto and labeled break/continue.
type labelFrame struct {
	block *Block // goto target: the block starting at the labeled statement
}

type builder struct {
	g      *Graph
	cur    *Block
	frames []*loopFrame
	labels map[string]*labelFrame
	// pendingLabel names the label attached to the statement about to be
	// built, so its loop/switch frame registers under that name.
	pendingLabel string
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// jump ends the current block with an edge to target and leaves the builder
// in a fresh, unreachable block (statements after a terminating transfer).
func (b *builder) jump(target *Block) {
	b.edge(target)
	b.cur = b.newBlock()
}

func (b *builder) edge(target *Block) {
	for _, s := range b.cur.Succs {
		if s == target {
			return
		}
	}
	b.cur.Succs = append(b.cur.Succs, target)
}

// startBlock begins target as the current block, linking fall-through from
// the previous one.
func (b *builder) startBlock(target *Block) {
	b.edge(target)
	b.cur = target
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// frame locates the innermost frame matching label ("" = innermost of the
// wanted kind).
func (b *builder) frame(label string, needLoop bool) *loopFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if needLoop && !f.isLoop {
			continue
		}
		if label == "" || f.label == label {
			return f
		}
	}
	return nil
}

func (b *builder) stmt(s ast.Stmt) {
	takeLabel := func() string {
		l := b.pendingLabel
		b.pendingLabel = ""
		return l
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// Start a fresh block so goto has a target, then build the labeled
		// statement with the label pending for its loop/switch frame.
		lf := b.labelOf(s.Label.Name)
		b.startBlock(lf.block)
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.jump(b.g.Exit)

	case *ast.BranchStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok.String() {
		case "break":
			if f := b.frame(label, false); f != nil {
				b.jump(f.brk)
				return
			}
		case "continue":
			if f := b.frame(label, true); f != nil {
				b.jump(f.cont)
				return
			}
		case "goto":
			b.jump(b.labelOf(label).block)
			return
		case "fallthrough":
			if f := b.innermostSwitch(); f != nil && f.fall != nil {
				b.jump(f.fall)
				return
			}
		}
		// Malformed target: treat as a no-op rather than guess.

	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, s)
		b.cur.Nodes = append(b.cur.Nodes, s)

	case *ast.IfStmt:
		takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.cur.Nodes = append(b.cur.Nodes, s.Cond)
		condBlk := b.cur
		join := b.newBlock()
		thenBlk := b.newBlock()
		b.cur = thenBlk
		condBlk.Succs = append(condBlk.Succs, thenBlk)
		b.stmtList(s.Body.List)
		b.edge(join)
		if s.Else != nil {
			elseBlk := b.newBlock()
			condBlk.Succs = append(condBlk.Succs, elseBlk)
			b.cur = elseBlk
			b.stmt(s.Else)
			b.edge(join)
		} else {
			condBlk.Succs = append(condBlk.Succs, join)
		}
		b.cur = join

	case *ast.ForStmt:
		label := takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		exit := b.newBlock()
		post := head
		if s.Post != nil {
			post = b.newBlock()
		}
		b.startBlock(head)
		if s.Cond != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Cond)
			b.edge(exit)
		}
		body := b.newBlock()
		b.edge(body)
		b.cur = body
		b.frames = append(b.frames, &loopFrame{label: label, brk: exit, cont: post, isLoop: true})
		b.stmtList(s.Body.List)
		b.frames = b.frames[:len(b.frames)-1]
		b.edge(post)
		if s.Post != nil {
			b.cur = post
			b.stmt(s.Post)
			b.edge(head)
		}
		b.cur = exit

	case *ast.RangeStmt:
		label := takeLabel()
		head := b.newBlock()
		exit := b.newBlock()
		b.startBlock(head)
		b.cur.Nodes = append(b.cur.Nodes, s.X)
		b.edge(exit)
		body := b.newBlock()
		b.edge(body)
		b.cur = body
		b.frames = append(b.frames, &loopFrame{label: label, brk: exit, cont: head, isLoop: true})
		b.stmtList(s.Body.List)
		b.frames = b.frames[:len(b.frames)-1]
		b.edge(head)
		b.cur = exit

	case *ast.SwitchStmt:
		label := takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Tag)
		}
		b.caseClauses(label, s.Body, false)

	case *ast.TypeSwitchStmt:
		label := takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.cur.Nodes = append(b.cur.Nodes, s.Assign)
		b.caseClauses(label, s.Body, false)

	case *ast.SelectStmt:
		label := takeLabel()
		b.caseClauses(label, s.Body, true)

	default:
		// Simple statements: assignments, declarations, expression
		// statements, sends, inc/dec, go, empty.
		takeLabel()
		b.cur.Nodes = append(b.cur.Nodes, s)
	}
}

// caseClauses builds a switch/type-switch/select body. Each clause branches
// from the header block and joins the common exit; a switch without a
// default also edges header→exit directly (no case taken), while a select
// without a default blocks until some clause is runnable.
func (b *builder) caseClauses(label string, body *ast.BlockStmt, isSelect bool) {
	header := b.cur
	exit := b.newBlock()
	frame := &loopFrame{label: label, brk: exit}
	b.frames = append(b.frames, frame)

	// Pre-create clause blocks so fallthrough can target the next clause.
	blocks := make([]*Block, len(body.List))
	hasDefault := false
	for i := range body.List {
		blocks[i] = b.newBlock()
	}
	for i, cl := range body.List {
		b.cur = blocks[i]
		header.Succs = append(header.Succs, blocks[i])
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				b.cur.Nodes = append(b.cur.Nodes, e)
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				b.stmt(cl.Comm)
			}
			stmts = cl.Body
		}
		if i+1 < len(blocks) {
			frame.fall = blocks[i+1]
		} else {
			frame.fall = nil
		}
		b.stmtList(stmts)
		b.edge(exit)
	}
	if !hasDefault && !isSelect {
		header.Succs = append(header.Succs, exit)
	}
	if isSelect && len(body.List) == 0 {
		// select{} blocks forever: exit is unreachable, which is exactly
		// the truth.
		_ = exit
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = exit
}

// innermostSwitch returns the nearest enclosing non-loop frame.
func (b *builder) innermostSwitch() *loopFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		if !b.frames[i].isLoop {
			return b.frames[i]
		}
	}
	return nil
}

func (b *builder) labelOf(name string) *labelFrame {
	if lf, ok := b.labels[name]; ok {
		return lf
	}
	lf := &labelFrame{block: b.newBlock()}
	b.labels[name] = lf
	return lf
}
