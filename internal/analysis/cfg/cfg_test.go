package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// build parses src as a function body and returns its graph plus a helper
// that finds the block containing the statement whose line comment is tag.
func build(t *testing.T, body string) (*Graph, func(tag string) *Block) {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	fn := f.Decls[0].(*ast.FuncDecl)
	g := New(fn.Body)

	// Map comment tags to the line they sit on.
	tagLine := map[string]int{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			tagLine[c.Text] = fset.Position(c.Pos()).Line
		}
	}
	find := func(tag string) *Block {
		line, ok := tagLine["//"+tag]
		if !ok {
			t.Fatalf("no comment //%s in source", tag)
		}
		for _, b := range g.Blocks {
			for _, n := range b.Nodes {
				if fset.Position(n.Pos()).Line == line {
					return b
				}
			}
		}
		t.Fatalf("no block contains a node on the line of //%s", tag)
		return nil
	}
	return g, find
}

func TestStraightLine(t *testing.T) {
	g, find := build(t, `
	x := 1 //a
	x++    //b
	_ = x  //c
`)
	a, b, c := find("a"), find("b"), find("c")
	if a != b || b != c {
		t.Fatalf("straight-line statements split across blocks %d/%d/%d", a.Index, b.Index, c.Index)
	}
	if !g.Reaches(a, g.Exit) {
		t.Fatal("entry block does not reach exit")
	}
}

func TestIfElseJoin(t *testing.T) {
	g, find := build(t, `
	x := 1    //init
	if x > 0 {
		x = 2 //then
	} else {
		x = 3 //else
	}
	_ = x     //join
`)
	then, els, join := find("then"), find("else"), find("join")
	if then == els {
		t.Fatal("then and else share a block")
	}
	for _, b := range []*Block{then, els} {
		if !g.Reaches(b, join) {
			t.Fatalf("branch block %d does not reach join", b.Index)
		}
	}
	if g.Reaches(then, els) || g.Reaches(els, then) {
		t.Fatal("sibling branches reach each other")
	}
}

func TestIfWithoutElseSkipEdge(t *testing.T) {
	g, find := build(t, `
	x := 1    //init
	if x > 0 {
		x = 2 //then
	}
	_ = x     //join
`)
	init, join := find("init"), find("join")
	// The no-else path must reach join without passing through then.
	if !g.Reaches(init, join) {
		t.Fatal("condition block does not reach join")
	}
	then := find("then")
	if !g.Reaches(init, then) || !g.Reaches(then, join) {
		t.Fatal("then branch disconnected")
	}
}

func TestLoopZeroIterationEdge(t *testing.T) {
	g, find := build(t, `
	x := 0        //init
	for i := 0; i < x; i++ {
		x += i    //body
	}
	_ = x         //after
`)
	init, body, after := find("init"), find("body"), find("after")
	if !g.Reaches(init, after) {
		t.Fatal("loop has no zero-iteration path")
	}
	if !g.Reaches(body, body) {
		t.Fatal("loop body is not on a cycle")
	}
	if !g.Reaches(body, after) {
		t.Fatal("loop body does not reach the loop exit")
	}
}

func TestReturnDisconnects(t *testing.T) {
	g, find := build(t, `
	x := 1        //init
	if x > 0 {
		return    //ret
	}
	_ = x         //after
`)
	ret, after := find("ret"), find("after")
	if g.Reaches(ret, after) {
		t.Fatal("return reaches following statement")
	}
	if !g.Reaches(ret, g.Exit) {
		t.Fatal("return does not reach exit")
	}
	_ = after
}

func TestLabeledBreakAndContinue(t *testing.T) {
	g, find := build(t, `
	x := 0                //init
outer:
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if j == 1 {
				continue outer //contouter
			}
			if j == 2 {
				break outer    //brkouter
			}
			x++                //inner
		}
	}
	_ = x                 //after
`)
	cont, brk, inner, after := find("contouter"), find("brkouter"), find("inner"), find("after")
	if !g.Reaches(brk, after) {
		t.Fatal("break outer does not reach the statement after the loop")
	}
	if g.Reaches(brk, inner) {
		t.Fatal("break outer re-enters the loop")
	}
	// continue outer re-enters the outer loop, so the inner body is
	// reachable again from it.
	if !g.Reaches(cont, inner) {
		t.Fatal("continue outer does not re-enter the loop nest")
	}
}

func TestSwitchNoDefaultSkipEdge(t *testing.T) {
	g, find := build(t, `
	x := 1        //init
	switch x {
	case 1:
		x = 2     //case1
	}
	_ = x         //after
`)
	init, after := find("init"), find("after")
	if !g.Reaches(init, after) {
		t.Fatal("switch without default has no no-case-taken path")
	}
}

func TestSelectBlocksWithoutDefault(t *testing.T) {
	g, find := build(t, `
	ch := make(chan int)  //init
	select {
	case <-ch:
		_ = ch            //recv
	}
	_ = ch                //after
`)
	init, recv, after := find("init"), find("recv"), find("after")
	if !g.Reaches(init, recv) || !g.Reaches(recv, after) {
		t.Fatal("select clause disconnected")
	}
	// Unlike a switch, a select with no default has no skip edge: some
	// clause must fire. The only route from init to after is via a clause.
	direct := false
	for _, s := range init.Succs {
		if s == after {
			direct = true
		}
	}
	if direct {
		t.Fatal("select without default has a direct skip edge")
	}
}

func TestFallthroughEdge(t *testing.T) {
	g, find := build(t, `
	x := 1         //init
	switch x {
	case 1:
		x = 2      //case1
		fallthrough
	case 2:
		x = 3      //case2
	}
	_ = x          //after
`)
	c1, c2 := find("case1"), find("case2")
	if !g.Reaches(c1, c2) {
		t.Fatal("fallthrough does not connect adjacent clauses")
	}
}

func TestGotoEdge(t *testing.T) {
	g, find := build(t, `
	x := 0         //init
loop:
	x++            //body
	if x < 3 {
		goto loop  //goto
	}
	_ = x          //after
`)
	gt, body := find("goto"), find("body")
	if !g.Reaches(gt, body) {
		t.Fatal("goto does not reach its label")
	}
	if !g.Reaches(body, g.Exit) {
		t.Fatal("labeled region does not reach exit")
	}
}

func TestDefersCollected(t *testing.T) {
	g, _ := build(t, `
	defer println("one")
	defer println("two")
	println("body")
`)
	if len(g.Defers) != 2 {
		t.Fatalf("collected %d defers, want 2", len(g.Defers))
	}
}
