// Package ctxpoll enforces the cancellation contract in the query and
// sampling pipelines.
//
// The *Ctx entry points of internal/core and internal/influence promise
// bounded-latency cancellation: every long-running loop polls ctx.Err() at
// bounded intervals (influence.PollEvery samples, hac's merge-step stride).
// The cheapest way to break that promise is to accept a context.Context and
// then never look at it — the signature claims cancellation that the body
// does not implement. The analyzer reports, in packages under internal/core
// and internal/influence, every loop that does real work (contains a
// non-builtin call) inside a function whose context parameter is never
// referenced anywhere in the function body — neither checked via ctx.Err(),
// selected on, nor forwarded to a callee.
//
// Loops in functions that do observe their context somewhere are accepted:
// a single up-front check before a cheap bounded loop is a legitimate
// pattern (see core.LoreCtx), and distinguishing it from a missing poll is
// a judgment the determinism-replay and cancellation tests make. Suppress a
// deliberate exception with //codvet:ignore ctxpoll and a reason.
package ctxpoll

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/codsearch/cod/internal/analysis"
)

// Analyzer is the ctxpoll analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "ctxpoll",
	Doc:  "forbid loops that ignore an accepted context.Context in the core/influence pipelines",
	Run:  run,
}

// scopedPaths limits the check to the packages that carry the cancellation
// contract; elsewhere an unused context parameter is a style question, not
// a correctness one.
var scopedPaths = []string{"internal/core", "internal/influence"}

func run(pass *analysis.Pass) error {
	if !pass.IsLibraryPackage() || !inScope(pass.Pkg) {
		return nil
	}
	for _, f := range pass.SourceFiles() {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func inScope(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	for _, p := range scopedPaths {
		if strings.Contains(pkg.Path(), p) {
			return true
		}
	}
	return false
}

// checkFunc reports work loops in fn when fn accepts a context it never
// observes.
func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	ctxVars := contextParams(pass.TypesInfo, fn)
	if len(ctxVars) == 0 {
		return
	}
	if referencesAny(pass.TypesInfo, fn.Body, ctxVars) {
		return
	}
	// The context is dead weight: every loop that does real work is a
	// cancellation gap. Report outermost loops only — fixing the function
	// fixes them all.
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			if containsWork(pass.TypesInfo, n.Body) {
				pass.Reportf(n.Pos(),
					"loop never observes the context accepted by %s; poll ctx.Err() at a bounded interval (e.g. influence.PollEvery) or drop the parameter",
					fn.Name.Name)
				return false
			}
		case *ast.RangeStmt:
			if containsWork(pass.TypesInfo, n.Body) {
				pass.Reportf(n.Pos(),
					"loop never observes the context accepted by %s; poll ctx.Err() at a bounded interval (e.g. influence.PollEvery) or drop the parameter",
					fn.Name.Name)
				return false
			}
		}
		return true
	}
	ast.Inspect(fn.Body, visit)
}

// contextParams returns the declared objects of fn's context.Context
// parameters.
func contextParams(info *types.Info, fn *ast.FuncDecl) []types.Object {
	var out []types.Object
	if fn.Type.Params == nil {
		return nil
	}
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj != nil && isContextType(obj.Type()) {
				out = append(out, obj)
			}
		}
	}
	return out
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// referencesAny reports whether any identifier in body resolves to one of
// objs. A reference inside a nested function literal counts: forwarding ctx
// into a worker closure observes it.
func referencesAny(info *types.Info, body ast.Node, objs []types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		use := info.Uses[id]
		if use == nil {
			return true
		}
		for _, obj := range objs {
			if use == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// containsWork reports whether body contains at least one call that is not
// a builtin (append/len/cap/... loops are bookkeeping, not cancellation
// gaps) and not a conversion, or a select over channels: a call-free
// for/select drain blocks indefinitely, which is exactly the latency the
// cancellation contract bounds.
func containsWork(info *types.Info, body ast.Node) bool {
	work := false
	ast.Inspect(body, func(n ast.Node) bool {
		if work {
			return false
		}
		if sel, ok := n.(*ast.SelectStmt); ok {
			for _, cl := range sel.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
					work = true
					return false
				}
			}
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			switch analysis.ObjectOf(info, fun).(type) {
			case *types.Builtin, *types.TypeName, nil:
				return true
			}
		case *ast.SelectorExpr:
			if obj := analysis.ObjectOf(info, fun.Sel); obj != nil {
				if _, isType := obj.(*types.TypeName); isType {
					return true
				}
			}
		}
		work = true
		return false
	})
	return work
}
