package ctxpoll_test

import (
	"testing"

	"github.com/codsearch/cod/internal/analysis/analysistest"
	"github.com/codsearch/cod/internal/analysis/ctxpoll"
)

func TestCtxpoll(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), ctxpoll.Analyzer,
		"internal/core/ctxpolltest", "other/ctxpolltest")
}
