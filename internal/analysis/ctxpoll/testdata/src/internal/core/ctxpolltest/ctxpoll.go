// Package ctxpolltest exercises the ctxpoll analyzer inside its scoped
// import-path space (internal/core/...).
package ctxpolltest

import "context"

func sampleOne(i int) int { return i * i }

// BadSampler accepts a context and never looks at it: every work loop is a
// cancellation gap.
func BadSampler(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ { // want `loop never observes the context accepted by BadSampler`
		total += sampleOne(i)
	}
	return total
}

// BadRange is the range-loop variant.
func BadRange(ctx context.Context, items []int) int {
	total := 0
	for _, v := range items { // want `loop never observes the context accepted by BadRange`
		total += sampleOne(v)
	}
	return total
}

// BadNested reports the outermost loop only.
func BadNested(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ { // want `loop never observes the context accepted by BadNested`
		for j := 0; j < n; j++ {
			total += sampleOne(i + j)
		}
	}
	return total
}

// GoodPolling observes the context inside the loop.
func GoodPolling(ctx context.Context, n int) (int, error) {
	total := 0
	for i := 0; i < n; i++ {
		if i%64 == 0 {
			if err := ctx.Err(); err != nil {
				return total, err
			}
		}
		total += sampleOne(i)
	}
	return total, nil
}

// GoodUpFront checks once before a bounded loop; accepted (the analyzer
// only rejects contexts that are never observed at all).
func GoodUpFront(ctx context.Context, items []int) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	total := 0
	for _, v := range items {
		total += sampleOne(v)
	}
	return total, nil
}

// GoodForwarding passes the context to a worker closure.
func GoodForwarding(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		func(c context.Context) {
			if c.Err() == nil {
				total += sampleOne(i)
			}
		}(ctx)
	}
	return total
}

// NoContext has no context parameter; out of the analyzer's reach.
func NoContext(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += sampleOne(i)
	}
	return total
}

// BookkeepingOnly ignores its context but the loop does no real work (only
// builtin calls), so it is not a cancellation gap.
func BookkeepingOnly(ctx context.Context, items []int) []int {
	out := make([]int, 0, len(items))
	for _, v := range items {
		out = append(out, v)
	}
	return out
}

// BadLabeled is the labeled-loop regression: the label must not hide the
// loop from the check.
func BadLabeled(ctx context.Context, items []int) int {
	total := 0
outer:
	for _, v := range items { // want `loop never observes the context accepted by BadLabeled`
		for _, w := range items {
			if w > v {
				continue outer
			}
			total += sampleOne(w)
		}
	}
	return total
}

// BadDrain is the for-select regression: a loop whose body is a single
// select does real work (it blocks on channels indefinitely) even though
// it contains no function call.
func BadDrain(ctx context.Context, in <-chan int, out chan<- int) int {
	total := 0
	for { // want `loop never observes the context accepted by BadDrain`
		select {
		case v, ok := <-in:
			if !ok {
				return total
			}
			total += v
		case out <- total:
		}
	}
}

// GoodDrain selects on ctx.Done: the context is observed, the loop is the
// idiomatic cancellable drain.
func GoodDrain(ctx context.Context, in <-chan int) int {
	total := 0
	for {
		select {
		case v := <-in:
			total += v
		case <-ctx.Done():
			return total
		}
	}
}

// Suppressed documents a deliberate exception.
func Suppressed(ctx context.Context, n int) int {
	total := 0
	//codvet:ignore ctxpoll bounded by a small constant at every call site
	for i := 0; i < n; i++ {
		total += sampleOne(i)
	}
	return total
}
