// Package ctxpolltest holds the same offending shape as the scoped fixture
// but lives outside internal/core and internal/influence, where the
// cancellation contract does not apply: no diagnostics.
package ctxpolltest

import "context"

func work(i int) int { return i + 1 }

// OutOfScope ignores its context in a work loop, but this package is not
// under the analyzer's scoped import paths.
func OutOfScope(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += work(i)
	}
	return total
}
