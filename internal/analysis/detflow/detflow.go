// Package detflow is the interprocedural companion of detrand: it tracks
// nondeterminism through function calls, across package boundaries, and
// reports flows into the seed/trace-ID surface that the determinism
// contract (DESIGN.md) says must be pure functions of Options.Seed.
//
// detrand catches `seed := time.Now().UnixNano()` written in place; it is
// blind the moment the clock hides behind a helper — `seed := defaultSeed()`
// where defaultSeed, possibly in another package, derives from the clock.
// detflow closes that hole in two steps:
//
//  1. Taint. A function is nondeterministic when a value it returns derives
//     from a root — time.Now/Since/Until, os.Getpid, a package-level
//     math/rand draw (the process-global, randomly seeded source), map
//     iteration order accumulated into a slice that is not subsequently
//     sorted, or goroutine completion order (a select over two or more
//     channel operations, ctx.Done() excluded) — or when it returns the
//     result of calling a function already known nondeterministic. Taint is
//     computed to a fixpoint within the package and exported as a
//     Nondeterministic fact on the function object, so packages that import
//     this one see the summary without re-analyzing it (see
//     analysis/facts.go for the transport).
//
//  2. Sinks. In library packages, a diagnostic is reported when a tainted
//     expression reaches the seed surface: assigned to a seed- or
//     trace-ID-named variable or field, or passed to a parameter named
//     seed*/traceid* or to a function whose name mentions Seed or TraceID
//     (graph.ItemSeed, graph.SeedPCG, obs.SeedTraceID, rand.NewSource…).
//     Every deterministic output of the system — influence samples, rank
//     order, replayed trace IDs, persisted index bytes — is a function of
//     that surface, so guarding it guards them all.
//
// Functions may be nondeterministic legitimately (the observability layer
// measures wall-clock durations); carrying the fact is not a diagnostic.
// Only the flow into the seed surface is. Suppress a deliberate exception
// with //codvet:ignore detflow and a reason.
package detflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/codsearch/cod/internal/analysis"
)

// Nondeterministic is the fact attached to functions whose return value
// depends on something other than their arguments and deterministic state.
type Nondeterministic struct {
	// Reason names the ultimate root, e.g. "time.Now" or "map iteration
	// order".
	Reason string `json:"reason"`
}

// AFact marks the type as a fact.
func (*Nondeterministic) AFact() {}

// Analyzer is the detflow analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "detflow",
	Doc:       "track nondeterminism interprocedurally and forbid it from flowing into seeds and trace IDs",
	Run:       run,
	FactTypes: []analysis.Fact{(*Nondeterministic)(nil)},
}

// randPkgs / seededConstructors mirror detrand's sets: package-level draws
// from these packages are roots, explicit-seed constructors are not.
var randPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

var seededConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewZipf":    true,
}

func run(pass *analysis.Pass) error {
	fns := collectFuncs(pass)

	// Package-local fixpoint: analyzing one function can taint another
	// (mutual recursion, helpers defined later in the file).
	tainted := make(map[*types.Func]string)
	for changed := true; changed; {
		changed = false
		for obj, decl := range fns {
			if _, done := tainted[obj]; done {
				continue
			}
			s := &summary{pass: pass, tainted: tainted}
			if reason, ok := s.funcTaint(decl); ok {
				tainted[obj] = reason
				changed = true
			}
		}
	}
	for obj, reason := range tainted {
		pass.ExportObjectFact(obj, &Nondeterministic{Reason: reason})
	}

	// Diagnostics only bind in library packages: a cmd/ main wiring a demo
	// seed from the clock is a choice, not a contract violation.
	if !pass.IsLibraryPackage() {
		return nil
	}
	for _, f := range pass.SourceFiles() {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			s := &summary{pass: pass, tainted: tainted}
			s.localTaint(fn)
			s.reportSinks(fn)
		}
	}
	return nil
}

// collectFuncs maps the package's function objects to their declarations,
// methods included. Test files are excluded: test helpers may use the
// clock freely.
func collectFuncs(pass *analysis.Pass) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.SourceFiles() {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
				out[obj] = fn
			}
		}
	}
	return out
}

// summary computes taint within one function.
type summary struct {
	pass    *analysis.Pass
	tainted map[*types.Func]string

	vars map[types.Object]taintSource // tainted local variables
}

// taintSource records why and where a value became tainted.
type taintSource struct {
	reason string
	pos    token.Pos
	via    string // callee name for call-derived taint, "" for direct roots
}

// funcTaint reports whether fn returns a tainted value.
func (s *summary) funcTaint(fn *ast.FuncDecl) (string, bool) {
	s.localTaint(fn)

	// Named results double as return values on naked returns.
	named := make(map[types.Object]bool)
	if fn.Type.Results != nil {
		for _, field := range fn.Type.Results.List {
			for _, name := range field.Names {
				if obj := s.pass.TypesInfo.Defs[name]; obj != nil {
					named[obj] = true
				}
			}
		}
	}

	var reason string
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a literal's returns are not fn's returns
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if src, ok := s.exprTaint(res); ok {
				reason, found = src.reason, true
				return false
			}
		}
		if len(ret.Results) == 0 {
			for obj := range named {
				if src, ok := s.vars[obj]; ok {
					reason, found = src.reason, true
					return false
				}
			}
		}
		return true
	})
	return reason, found
}

// localTaint populates s.vars: variables assigned from tainted expressions,
// map-iteration accumulators, and select-received values. Iterated to a
// local fixpoint so taint flows through chains of assignments regardless of
// source order.
func (s *summary) localTaint(fn *ast.FuncDecl) {
	s.vars = make(map[types.Object]taintSource)
	for pass := 0; pass < 4; pass++ {
		before := len(s.vars)
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					rhs := n.Rhs[0]
					if len(n.Rhs) == len(n.Lhs) {
						rhs = n.Rhs[i]
					}
					if src, ok := s.exprTaint(rhs); ok {
						s.taintLValue(lhs, src)
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i < len(n.Values) {
						if src, ok := s.exprTaint(n.Values[i]); ok {
							s.taintLValue(name, src)
						}
					}
				}
			case *ast.RangeStmt:
				if analysis.IsMapType(s.pass.TypesInfo, n.X) {
					s.taintMapAccumulators(fn, n)
				}
			case *ast.SelectStmt:
				s.taintSelectResults(n)
			}
			return true
		})
		if len(s.vars) == before {
			return
		}
	}
}

// taintLValue marks the variable behind an assignable as tainted.
func (s *summary) taintLValue(lhs ast.Expr, src taintSource) {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		if obj := analysis.ObjectOf(s.pass.TypesInfo, id); obj != nil {
			s.vars[obj] = src
		}
	}
}

// taintMapAccumulators taints slices accumulated in map-iteration order —
// `out = append(out, k)` inside `for k := range m` — unless the slice is
// later sorted somewhere in the function (the collect-then-sort idiom,
// which restores determinism).
func (s *summary) taintMapAccumulators(fn *ast.FuncDecl, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			rhs := as.Rhs[0]
			if len(as.Rhs) == len(as.Lhs) {
				rhs = as.Rhs[i]
			}
			if !isAppendCall(s.pass.TypesInfo, rhs) {
				continue
			}
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			obj := analysis.ObjectOf(s.pass.TypesInfo, id)
			if obj == nil || sortedInFunc(s.pass.TypesInfo, fn, obj) {
				continue
			}
			s.vars[obj] = taintSource{reason: "map iteration order", pos: as.Pos()}
		}
		return true
	})
}

// taintSelectResults taints variables bound in the clauses of a select
// whose outcome depends on goroutine completion order: two or more channel
// operations, not counting ctx.Done()-style cancellation arms.
func (s *summary) taintSelectResults(sel *ast.SelectStmt) {
	racing := 0
	for _, cl := range sel.Body.List {
		cc, ok := cl.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		if !isDoneChannel(cc.Comm) {
			racing++
		}
	}
	if racing < 2 {
		return
	}
	for _, cl := range sel.Body.List {
		cc, ok := cl.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		if as, ok := cc.Comm.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				s.taintLValue(lhs, taintSource{reason: "goroutine completion order", pos: cc.Pos()})
			}
		}
	}
}

// isDoneChannel matches `<-ctx.Done()` and `<-x.Done()` receives: a
// cancellation arm decides whether to abort, not which result wins.
func isDoneChannel(comm ast.Stmt) bool {
	var recv ast.Expr
	switch c := comm.(type) {
	case *ast.ExprStmt:
		recv = c.X
	case *ast.AssignStmt:
		if len(c.Rhs) == 1 {
			recv = c.Rhs[0]
		}
	}
	un, ok := ast.Unparen(recv).(*ast.UnaryExpr)
	if !ok || un.Op != token.ARROW {
		return false
	}
	call, ok := ast.Unparen(un.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Done"
}

// exprTaint reports whether e derives from a nondeterministic source, with
// the root reason and the position to anchor a diagnostic at.
func (s *summary) exprTaint(e ast.Expr) (taintSource, bool) {
	var src taintSource
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if reason, ok := rootCall(s.pass.TypesInfo, n); ok {
				src = taintSource{reason: reason, pos: n.Pos()}
				found = true
				return false
			}
			if callee := calleeFunc(s.pass.TypesInfo, n); callee != nil {
				if reason, ok := s.funcFact(callee); ok {
					src = taintSource{reason: reason, pos: n.Pos(), via: callee.Name()}
					found = true
					return false
				}
			}
			// A seeded constructor's stream is deterministic even though
			// its arguments are checked elsewhere; don't descend into the
			// rand.New(rand.NewPCG(...)) shape twice.
			return true
		case *ast.Ident:
			if obj := analysis.ObjectOf(s.pass.TypesInfo, n); obj != nil {
				if prior, ok := s.vars[obj]; ok {
					src = taintSource{reason: prior.reason, pos: n.Pos(), via: prior.via}
					found = true
					return false
				}
			}
		}
		return true
	})
	return src, found
}

// funcFact looks a callee's taint up: package-local fixpoint state first,
// then facts imported from the package that declares it.
func (s *summary) funcFact(fn *types.Func) (string, bool) {
	if reason, ok := s.tainted[fn]; ok {
		return reason, true
	}
	var fact Nondeterministic
	if s.pass.ImportObjectFact(fn, &fact) {
		return fact.Reason, true
	}
	return "", false
}

// reportSinks walks fn for tainted expressions reaching the seed surface.
func (s *summary) reportSinks(fn *ast.FuncDecl) {
	info := s.pass.TypesInfo
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				rhs := n.Rhs[0]
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				s.checkSeedStore(targetName(lhs), rhs)
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					s.checkSeedStore(name.Name, n.Values[i])
				}
			}
		case *ast.KeyValueExpr:
			if id, ok := n.Key.(*ast.Ident); ok {
				s.checkSeedStore(id.Name, n.Value)
			}
		case *ast.CallExpr:
			s.checkSeedArgs(info, n)
		}
		return true
	})
}

func (s *summary) checkSeedStore(target string, rhs ast.Expr) {
	if !seedName(target) {
		return
	}
	if src, ok := s.exprTaint(rhs); ok {
		s.report(src, "assigned to %q", target)
	}
}

// checkSeedArgs flags tainted arguments bound to seed-like parameters or
// passed to seed-minting functions.
func (s *summary) checkSeedArgs(info *types.Info, call *ast.CallExpr) {
	callee := calleeFunc(info, call)
	if callee == nil {
		return
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	calleeSink := strings.Contains(callee.Name(), "Seed") || strings.Contains(callee.Name(), "TraceID")
	for i, arg := range call.Args {
		pi := i
		if sig.Variadic() && pi >= sig.Params().Len() {
			pi = sig.Params().Len() - 1
		}
		if pi >= sig.Params().Len() {
			continue
		}
		if !calleeSink && !seedName(sig.Params().At(pi).Name()) {
			continue
		}
		if src, ok := s.exprTaint(arg); ok {
			s.report(src, "passed to %s", callee.Name())
		}
	}
}

func (s *summary) report(src taintSource, sinkFormat string, sinkArg any) {
	via := ""
	if src.via != "" {
		via = " (via " + src.via + ")"
	}
	s.pass.Reportf(src.pos,
		"nondeterministic value derived from %s%s "+sinkFormat+
			"; seeds and trace IDs must derive from Options.Seed",
		src.reason, via, sinkArg)
}

// seedName reports whether an identifier names the seed/trace-ID surface.
func seedName(name string) bool {
	l := strings.ToLower(name)
	return strings.Contains(l, "seed") || strings.Contains(l, "traceid")
}

// targetName extracts the assignable's name: an identifier or the final
// selector element (opts.Seed -> "Seed").
func targetName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}

// rootCall reports whether call is a nondeterminism root.
func rootCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	pkg, name := analysis.PkgFuncCall(info, call)
	switch {
	case pkg == "time" && (name == "Now" || name == "Since" || name == "Until"):
		return "time." + name, true
	case pkg == "os" && name == "Getpid":
		return "os.Getpid", true
	case randPkgs[pkg] && !seededConstructors[name]:
		return "global " + pkg, true
	}
	return "", false
}

// calleeFunc resolves a call to the *types.Func it invokes (package
// function or method); nil for builtins, conversions, and indirect calls
// through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := analysis.ObjectOf(info, fun).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := analysis.ObjectOf(info, fun.Sel).(*types.Func)
		return fn
	}
	return nil
}

// sortedInFunc reports whether obj is passed to a sort-like call anywhere
// in fn (sort.Slice, slices.Sort, a local sortNodes helper …).
func sortedInFunc(info *types.Info, fn *ast.FuncDecl, obj types.Object) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !strings.Contains(strings.ToLower(calleeName(call)), "sort") {
			return true
		}
		for _, arg := range call.Args {
			if mentionsObj(info, arg, obj) {
				found = true
			}
		}
		return !found
	})
	return found
}

func calleeName(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if x, ok := ast.Unparen(f.X).(*ast.Ident); ok {
			return x.Name + "." + f.Sel.Name
		}
		return f.Sel.Name
	}
	return ""
}

func mentionsObj(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && analysis.ObjectOf(info, id) == obj {
			found = true
		}
		return !found
	})
	return found
}

func isAppendCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := analysis.ObjectOf(info, id).(*types.Builtin)
	return isBuiltin && id.Name == "append"
}
