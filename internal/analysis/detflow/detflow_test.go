package detflow_test

import (
	"testing"

	"github.com/codsearch/cod/internal/analysis/analysistest"
	"github.com/codsearch/cod/internal/analysis/detflow"
)

func TestDetflow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), detflow.Analyzer, "detflowtest")
}
