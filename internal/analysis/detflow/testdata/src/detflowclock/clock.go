// Package detflowclock is the dependency side of the detflow fixtures: it
// exports nondeterministic helpers whose facts must cross the package
// boundary. No seed sink lives here, so the package itself is clean.
package detflowclock

import "time"

// Wall derives from the wall clock; detflow attaches a Nondeterministic
// fact to it. Carrying the fact is not a diagnostic.
func Wall() int64 { return time.Now().UnixNano() }

// Mix is a same-package hop on top of Wall: importers see its fact only if
// taint propagated through the package-local fixpoint before export.
func Mix() int64 { return Wall() ^ 0x9e3779b9 }

// Steady is deterministic and must carry no fact.
func Steady(x int64) int64 { return x * 2 }
