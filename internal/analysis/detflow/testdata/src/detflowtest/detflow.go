// Package detflowtest exercises detflow's interprocedural taint: facts
// imported from detflowclock, same-package call chains, map-order and
// select roots behind helpers, and the negatives that must stay silent.
package detflowtest

import (
	"sort"
	"time"

	"detflowclock"
)

// --- cross-package facts ---

// CrossPackageSeed consumes a nondeterministic function from another
// package; only the imported fact can tell.
func CrossPackageSeed() int64 {
	seed := detflowclock.Wall() // want `nondeterministic value derived from time\.Now \(via Wall\) assigned to "seed"`
	return seed
}

// CrossPackageChain consumes a dependency function that is itself tainted
// only transitively (Mix -> Wall -> time.Now).
func CrossPackageChain() int64 {
	var traceID int64
	traceID = detflowclock.Mix() // want `nondeterministic value derived from time\.Now \(via Mix\) assigned to "traceID"`
	return traceID
}

// CleanImport uses the dependency's deterministic helper: no fact, no
// diagnostic.
func CleanImport() int64 {
	seed := detflowclock.Steady(11)
	return seed
}

// --- same-package chain ---

func localClock() int64 { return time.Now().UnixNano() }

func wrapClock() int64 { return localClock() + 1 }

// Options mirrors the real engine Options type.
type Options struct {
	Seed int64
}

// DefaultOptions routes the clock through two same-package hops into a
// seed-named field.
func DefaultOptions() Options {
	var o Options
	o.Seed = wrapClock() // want `nondeterministic value derived from time\.Now \(via wrapClock\) assigned to "Seed"`
	return o
}

// Literal hits the composite-literal sink.
func Literal() Options {
	return Options{Seed: localClock()} // want `nondeterministic value derived from time\.Now \(via localClock\) assigned to "Seed"`
}

// --- map iteration order behind a helper ---

func firstValue(m map[string]int64) int64 {
	var vals []int64
	for _, v := range m {
		vals = append(vals, v)
	}
	if len(vals) == 0 {
		return 0
	}
	return vals[0]
}

func applySeed(seed int64, n int) int64 { return seed + int64(n) }

// FromMap passes a map-order-dependent value to a seed-taking function.
func FromMap(m map[string]int64) int64 {
	first := firstValue(m)
	return applySeed(first, 1) // want `nondeterministic value derived from map iteration order \(via firstValue\) passed to applySeed`
}

// sortedFirst restores determinism with the collect-then-sort idiom.
func sortedFirst(m map[string]int64) int64 {
	var vals []int64
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	if len(vals) == 0 {
		return 0
	}
	return vals[0]
}

// FromSortedMap is the negative: same shape, sorted accumulator.
func FromSortedMap(m map[string]int64) int64 {
	seed := sortedFirst(m)
	return seed
}

// --- goroutine completion order behind a helper ---

func firstDone(a, b <-chan int64) int64 {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// RaceSeed seeds from whichever goroutine finishes first.
func RaceSeed(a, b <-chan int64) int64 {
	seed := firstDone(a, b) // want `nondeterministic value derived from goroutine completion order \(via firstDone\) assigned to "seed"`
	return seed
}

// canceler stands in for context.Context; detflow's Done() exemption is
// syntactic.
type canceler struct{ done chan struct{} }

func (c *canceler) Done() <-chan struct{} { return c.done }

// waitOne races one real channel against cancellation: a single racing arm
// is not a completion-order dependence.
func waitOne(c *canceler, ch <-chan int64) int64 {
	select {
	case v := <-ch:
		return v
	case <-c.Done():
		return 0
	}
}

// CtxSeed is the cancellation negative.
func CtxSeed(c *canceler, ch <-chan int64) int64 {
	seed := waitOne(c, ch)
	return seed
}

// --- nondeterminism without a sink stays silent ---

// Elapsed is genuinely nondeterministic (it carries the fact) but never
// touches the seed surface, so no diagnostic.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start)
}
