// Package detrand forbids nondeterministic randomness in library packages.
//
// The COD API contract ("equal Options.Seed values give identical results")
// requires every random draw in the IC/LT Monte-Carlo, RR-graph and HIMOR
// pipelines to come from an injected *rand.Rand seeded from Options.Seed
// (see graph.NewRand). The analyzer therefore reports, in library packages:
//
//   - calls to package-level functions of math/rand or math/rand/v2 (such
//     as rand.IntN or rand.Shuffle), which draw from the process-global,
//     randomly-seeded source;
//   - seeds derived from time.Now (or os.Getpid), whether passed to a rand
//     constructor or stored in a seed-named variable or field.
//
// Constructors that take an explicit source or seed (rand.New,
// rand.NewSource, rand.NewPCG, rand.NewChaCha8, rand.NewZipf) are allowed.
// Binaries under cmd/ and examples/, and _test.go files, are exempt.
package detrand

import (
	"go/ast"
	"strings"

	"github.com/codsearch/cod/internal/analysis"
)

// Analyzer is the detrand analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc:  "forbid global math/rand sources and time-derived seeds in library packages",
	Run:  run,
}

// randPkgs are the package paths whose package-level draws are forbidden.
var randPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// seededConstructors take an explicit source or seed and are therefore
// compatible with seed-threaded determinism.
var seededConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewZipf":    true,
}

func run(pass *analysis.Pass) error {
	if !pass.IsLibraryPackage() {
		return nil
	}
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					rhs := n.Rhs[0]
					if len(n.Rhs) == len(n.Lhs) {
						rhs = n.Rhs[i]
					}
					checkSeedStore(pass, seedTargetName(lhs), rhs)
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i < len(n.Values) {
						checkSeedStore(pass, name.Name, n.Values[i])
					}
				}
			case *ast.KeyValueExpr:
				if id, ok := n.Key.(*ast.Ident); ok {
					checkSeedStore(pass, id.Name, n.Value)
				}
			}
			return true
		})
	}
	return nil
}

// checkCall flags forbidden package-level draws and time-seeded constructors.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	pkg, name := analysis.PkgFuncCall(pass.TypesInfo, call)
	if !randPkgs[pkg] {
		return
	}
	if !seededConstructors[name] {
		pass.Reportf(call.Pos(),
			"%s.%s draws from the global, nondeterministically seeded source; thread a *rand.Rand derived from Options.Seed (graph.NewRand) instead",
			pkg, name)
		return
	}
	// Seeded constructor: its arguments must not smuggle in wall-clock time.
	for _, arg := range call.Args {
		if bad := findClockCall(pass, arg); bad != nil {
			pass.Reportf(bad.Pos(),
				"%s-derived seed passed to %s.%s breaks reproducibility; derive seeds from Options.Seed instead",
				clockName(pass, bad), pkg, name)
		}
	}
}

// checkSeedStore flags time-derived values stored under a seed-like name.
func checkSeedStore(pass *analysis.Pass, target string, rhs ast.Expr) {
	if !strings.Contains(strings.ToLower(target), "seed") {
		return
	}
	if bad := findClockCall(pass, rhs); bad != nil {
		pass.Reportf(bad.Pos(),
			"%s-derived value assigned to %q breaks seed reproducibility; derive seeds from Options.Seed instead",
			clockName(pass, bad), target)
	}
}

// seedTargetName extracts the assignable's name: an identifier or the final
// selector element (opts.Seed -> "Seed").
func seedTargetName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}

// findClockCall returns the first time.Now or os.Getpid call within e.
func findClockCall(pass *analysis.Pass, e ast.Expr) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg, name := analysis.PkgFuncCall(pass.TypesInfo, call)
		if (pkg == "time" && name == "Now") || (pkg == "os" && name == "Getpid") {
			found = call
			return false
		}
		// A nested seeded constructor (rand.New(rand.NewSource(...))) is
		// checked by its own checkCall; don't report it twice.
		return !(randPkgs[pkg] && seededConstructors[name])
	})
	return found
}

func clockName(pass *analysis.Pass, call *ast.CallExpr) string {
	pkg, name := analysis.PkgFuncCall(pass.TypesInfo, call)
	return pkg + "." + name
}
