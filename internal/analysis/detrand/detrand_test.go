package detrand_test

import (
	"testing"

	"github.com/codsearch/cod/internal/analysis/analysistest"
	"github.com/codsearch/cod/internal/analysis/detrand"
)

func TestDetrand(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), detrand.Analyzer, "detrandtest", "a/cmd/tool")
}
