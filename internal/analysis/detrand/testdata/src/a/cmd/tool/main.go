// Command tool shows that cmd/ binaries are exempt from detrand.
package main

import (
	"math/rand"
	"time"
)

func main() {
	rand.Seed(time.Now().UnixNano())
	_ = rand.Int()
}
