// Package detrandtest exercises the detrand analyzer: global math/rand
// draws and time-derived seeds are flagged; explicitly seeded sources pass.
package detrandtest

import (
	"math/rand"
	randv2 "math/rand/v2"
	"os"
	"time"
)

type options struct {
	Seed uint64
}

func globalDraws() {
	_ = rand.Int()                     // want `math/rand.Int draws from the global`
	_ = rand.Intn(7)                   // want `math/rand.Intn draws from the global`
	_ = rand.Float64()                 // want `math/rand.Float64 draws from the global`
	rand.Shuffle(2, func(i, j int) {}) // want `math/rand.Shuffle draws from the global`
	_ = randv2.IntN(3)                 // want `math/rand/v2.IntN draws from the global`
	_ = randv2.Uint64()                // want `math/rand/v2.Uint64 draws from the global`
	_ = randv2.N(int(5))               // want `math/rand/v2.N draws from the global`
}

func timeSeeds() {
	r := rand.New(rand.NewSource(time.Now().UnixNano())) // want `time.Now-derived seed passed to math/rand.NewSource`
	_ = r.Intn(5)
	seed := uint64(time.Now().UnixNano()) // want `time.Now-derived value assigned to "seed"`
	_ = seed
	var o options
	o.Seed = uint64(time.Now().UnixNano())         // want `time.Now-derived value assigned to "Seed"`
	o2 := options{Seed: uint64(time.Now().Unix())} // want `time.Now-derived value assigned to "Seed"`
	_, _ = o, o2
	pidSeed := int64(os.Getpid()) // want `os.Getpid-derived value assigned to "pidSeed"`
	_ = pidSeed
}

func seededSources(seed uint64) {
	r := rand.New(rand.NewSource(int64(seed)))
	_ = r.Intn(5)
	r2 := randv2.New(randv2.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	_ = r2.IntN(5)
	z := randv2.NewZipf(r2, 1.5, 1, 100)
	_ = z.Uint64()
	var o options
	o.Seed = seed
}

func timingIsFine() time.Duration {
	start := time.Now()
	elapsed := time.Since(start)
	now := time.Now()
	return elapsed + time.Until(now)
}

func ignored() {
	_ = rand.Int() //codvet:ignore detrand jitter for retry backoff, reproducibility not needed
}
