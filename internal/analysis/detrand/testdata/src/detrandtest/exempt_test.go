package detrandtest

import "math/rand"

// Test files may use ad-hoc randomness: no diagnostics expected here.
func shuffleForTest(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
