package analysis

// This file adds cross-package facts to the checker framework, mirroring
// the x/tools go/analysis fact model with only the standard library.
//
// A fact is a typed datum an analyzer attaches to a types.Object while
// checking the package that declares the object; analyzers checking a
// dependent package later can look the fact up and reason about calls that
// cross the package boundary (detflow's nondeterminism taint, atomicmix's
// atomically-accessed fields, arenaescape's ownership transfers).
//
// Within one process — one analysis.RunWithFacts call, or one analysistest
// run over a fixture tree — facts live in a FactStore keyed by object
// identity. Across processes — the `go vet` unit-checking protocol, where
// every package is a separate tool invocation — facts are serialized to the
// .vetx facts file cmd/go plumbs for each unit (Config.VetxOutput on the
// way out, Config.PackageVetx on the way in; see unit.go). Since
// types.Object identities do not survive serialization, each fact is keyed
// on the wire by (package path, object path), where the object path is
//
//	"Name"       a package-level func, var, const or type
//	"Type.Sel"   a method or struct field of a package-level named type
//
// Facts on objects that have no such path (locals, embedded depths > 1) are
// process-local: they still work within a package and inside analysistest,
// but are not exported. That loses nothing — an object a dependent package
// cannot name is an object whose fact it can never look up.
//
// Fact values are serialized as JSON, under a wire name derived from the
// fact's Go type. Fact types must be declared in Analyzer.FactTypes so the
// decoder knows the concrete type to unmarshal into.

import (
	"encoding/json"
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// A Fact is a datum an analyzer attaches to an object. The concrete type
// must be a pointer to a JSON-serializable struct, and must be listed in
// the owning Analyzer's FactTypes.
type Fact interface {
	// AFact marks the type as a fact; it has no behavior.
	AFact()
}

// FactStore holds the facts of one analysis run: those exported while
// checking the current package and those imported from dependencies.
type FactStore struct {
	objs map[types.Object]map[reflect.Type]Fact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{objs: make(map[types.Object]map[reflect.Type]Fact)}
}

// ExportObjectFact records fact for obj, replacing any existing fact of the
// same concrete type.
func (s *FactStore) ExportObjectFact(obj types.Object, fact Fact) {
	if obj == nil {
		panic("analysis: ExportObjectFact on nil object")
	}
	m := s.objs[obj]
	if m == nil {
		m = make(map[reflect.Type]Fact)
		s.objs[obj] = m
	}
	m[reflect.TypeOf(fact)] = fact
}

// ImportObjectFact copies the stored fact of *fact's concrete type for obj
// into fact and reports whether one was found.
func (s *FactStore) ImportObjectFact(obj types.Object, fact Fact) bool {
	if obj == nil {
		return false
	}
	stored, ok := s.objs[obj][reflect.TypeOf(fact)]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

// wireFact is one serialized fact.
type wireFact struct {
	Pkg    string          `json:"pkg"`
	Object string          `json:"object"`
	Type   string          `json:"type"`
	Data   json.RawMessage `json:"data"`
}

// wireFacts is the facts-file payload.
type wireFacts struct {
	Version int        `json:"version"`
	Facts   []wireFact `json:"facts"`
}

const factsVersion = 1

// factName returns the wire name of a fact's concrete type, e.g.
// "detflow.Nondeterministic".
func factName(t reflect.Type) string {
	return t.Elem().String()
}

// factRegistry maps wire names to concrete fact types for every analyzer in
// the run.
func factRegistry(analyzers []*Analyzer) map[string]reflect.Type {
	reg := make(map[string]reflect.Type)
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			reg[factName(reflect.TypeOf(f))] = reflect.TypeOf(f)
		}
	}
	return reg
}

// Encode serializes every addressable fact in the store, sorted so the
// output is deterministic. Facts imported from dependencies are re-exported,
// so a unit's facts file carries its transitive closure and dependents need
// only read their direct imports' files.
func (s *FactStore) Encode() ([]byte, error) {
	var out wireFacts
	out.Version = factsVersion
	for obj, m := range s.objs {
		path, ok := objectPath(obj)
		if !ok {
			continue
		}
		for t, fact := range m {
			data, err := json.Marshal(fact)
			if err != nil {
				return nil, fmt.Errorf("encode fact %s for %s: %w", factName(t), obj.Name(), err)
			}
			//codvet:ignore maporder out.Facts is fully sorted below before marshaling
			out.Facts = append(out.Facts, wireFact{
				Pkg:    obj.Pkg().Path(),
				Object: path,
				Type:   factName(t),
				Data:   data,
			})
		}
	}
	sort.Slice(out.Facts, func(i, j int) bool {
		a, b := out.Facts[i], out.Facts[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		return a.Type < b.Type
	})
	return json.Marshal(out)
}

// Decode adds the facts serialized in data to the store. lookup resolves a
// package path to the *types.Package visible to the current unit; facts
// about packages lookup cannot resolve are skipped (the current unit cannot
// name their objects, so it can never ask for them). An empty data slice is
// a valid, empty facts file — PR-1-era codvet wrote zero-byte files and
// cached builds may still hold them.
func (s *FactStore) Decode(data []byte, analyzers []*Analyzer, lookup func(path string) *types.Package) error {
	if len(data) == 0 {
		return nil
	}
	var in wireFacts
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("malformed facts file: %w", err)
	}
	if in.Version != factsVersion {
		return fmt.Errorf("malformed facts file: version %d, want %d", in.Version, factsVersion)
	}
	reg := factRegistry(analyzers)
	for _, wf := range in.Facts {
		t, ok := reg[wf.Type]
		if !ok {
			// A fact type no analyzer in this run declares: stale file from
			// an older tool build; the -V=full digest normally prevents
			// this, so be strict rather than silently drop data.
			return fmt.Errorf("malformed facts file: unknown fact type %q", wf.Type)
		}
		pkg := lookup(wf.Pkg)
		if pkg == nil {
			continue
		}
		obj := resolveObjectPath(pkg, wf.Object)
		if obj == nil {
			continue
		}
		fact := reflect.New(t.Elem()).Interface().(Fact)
		if err := json.Unmarshal(wf.Data, fact); err != nil {
			return fmt.Errorf("malformed facts file: fact %s for %s.%s: %w", wf.Type, wf.Pkg, wf.Object, err)
		}
		s.ExportObjectFact(obj, fact)
	}
	return nil
}

// objectPath returns the stable intra-package path of obj ("Name" or
// "Type.Sel"), and whether obj has one.
func objectPath(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	scope := obj.Pkg().Scope()
	if scope.Lookup(obj.Name()) == obj {
		return obj.Name(), true
	}
	switch o := obj.(type) {
	case *types.Func:
		// A method: path through its receiver's named type.
		sig, ok := o.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return "", false
		}
		if name, ok := namedTypeName(sig.Recv().Type()); ok {
			return name + "." + o.Name(), true
		}
	case *types.Var:
		if !o.IsField() {
			return "", false
		}
		// A struct field: scan the package scope for the named type that
		// declares it.
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i) == o {
					return name + "." + o.Name(), true
				}
			}
		}
	}
	return "", false
}

// resolveObjectPath is objectPath's inverse against an imported package.
// Unresolvable paths return nil: gc export data omits objects nothing
// exported references, and such objects cannot be named by dependents.
func resolveObjectPath(pkg *types.Package, path string) types.Object {
	name, sel, found := cutDot(path)
	obj := pkg.Scope().Lookup(name)
	if obj == nil || !found {
		return obj
	}
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil
	}
	res, _, _ := types.LookupFieldOrMethod(tn.Type(), true, pkg, sel)
	return res
}

func cutDot(s string) (before, after string, found bool) {
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			return s[:i], s[i+1:], true
		}
	}
	return s, "", false
}

// namedTypeName unwraps pointers and reports the name of a named type.
func namedTypeName(t types.Type) (string, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil {
		return "", false
	}
	return named.Obj().Name(), true
}
