// Package floatcmp flags == and != comparisons between computed
// floating-point values in library packages.
//
// Linkage distances, densities and conductances are accumulated floating
// point: two mathematically equal values routinely differ in the last ulp
// depending on summation order, so equality comparisons silently change
// cluster merges and community picks. The analyzer reports float equality
// except when one operand is a compile-time constant — comparisons against
// sentinels such as 0 or -1 ("unset", "empty community") are exact and
// deliberate — or when both operands are syntactically identical (the
// x != x NaN test).
//
// Use an explicit epsilon (or compare integer surrogates such as edge
// counts) instead; a deliberate exact comparison can be annotated with
// `//codvet:ignore floatcmp <reason>`. Binaries under cmd/ and examples/,
// and _test.go files, are exempt.
package floatcmp

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"

	"github.com/codsearch/cod/internal/analysis"
)

// Analyzer is the floatcmp analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "floatcmp",
	Doc:  "flag ==/!= between computed floating-point values",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !pass.IsLibraryPackage() {
		return nil
	}
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !analysis.IsFloat(pass.TypesInfo, be.X) && !analysis.IsFloat(pass.TypesInfo, be.Y) {
				return true
			}
			if isConst(pass, be.X) || isConst(pass, be.Y) {
				return true
			}
			if exprString(pass.Fset, be.X) == exprString(pass.Fset, be.Y) {
				return true // x != x: the portable NaN check
			}
			pass.Reportf(be.OpPos,
				"floating-point %s comparison between computed values; use an epsilon or an integer surrogate", be.Op)
			return true
		})
	}
	return nil
}

func isConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}
