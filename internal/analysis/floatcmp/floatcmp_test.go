package floatcmp_test

import (
	"testing"

	"github.com/codsearch/cod/internal/analysis/analysistest"
	"github.com/codsearch/cod/internal/analysis/floatcmp"
)

func TestFloatcmp(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), floatcmp.Analyzer, "floatcmptest")
}
