// Package floatcmptest exercises the floatcmp analyzer: equality between
// computed floats is flagged; sentinel and NaN comparisons pass.
package floatcmptest

type dist float64

func equalComputed(a, b float64) bool {
	return a == b // want `floating-point == comparison between computed values`
}

func notEqualComputed(a, b float64) bool {
	return a != b // want `floating-point != comparison between computed values`
}

func namedFloatType(a, b dist) bool {
	return a == b // want `floating-point == comparison between computed values`
}

func sumsCompared(xs, ys []float64) bool {
	sx, sy := 0.0, 0.0
	for _, x := range xs {
		sx += x
	}
	for _, y := range ys {
		sy += y
	}
	return sx == sy // want `floating-point == comparison between computed values`
}

func sentinelZero(a float64) bool {
	return a == 0
}

func sentinelConst(a float64) bool {
	const unset = -1.0
	return a != unset
}

func nanCheck(a float64) bool {
	return a != a
}

func orderedComparisons(a, b float64) bool {
	return a < b || a >= b*2
}

func intEquality(a, b int) bool {
	return a == b
}

func epsilonCompare(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

func ignored(a, b float64) bool {
	return a == b //codvet:ignore floatcmp both sides copied from the same untouched source
}
