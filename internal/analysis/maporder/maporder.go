// Package maporder flags map iteration whose result depends on Go's
// randomized map iteration order, in library packages.
//
// Order-independent uses of `for k, v := range m` — commutative accumulation
// (counters, sums, map/set writes) — are allowed. The analyzer reports three
// order-dependent shapes:
//
//   - appending to a slice declared outside the loop, unless the slice is
//     visibly sorted later in the same statement list (the standard
//     "collect keys, then sort" idiom);
//   - letting the iteration key escape the loop (an argmax/rank selection
//     such as `if c > best { bestNode = k }`) without a tie-break: a guard
//     that compares the key itself (`c > best || (c == best && k < bestNode)`);
//   - writing to an io.Writer or fmt output stream from inside the loop.
//
// Intentional order-dependence can be suppressed with a
// `//codvet:ignore maporder <reason>` comment on or above the offending
// line. Binaries under cmd/ and examples/, and _test.go files, are exempt.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/codsearch/cod/internal/analysis"
)

// Analyzer is the maporder analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration with order-dependent effects (unsorted appends, argmax without tie-break, output writes)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !pass.IsLibraryPackage() {
		return nil
	}
	for _, f := range pass.SourceFiles() {
		containers := stmtContainers(f)
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !analysis.IsMapType(pass.TypesInfo, rs.X) {
				return true
			}
			checkMapRange(pass, rs, containers[rs])
			return true
		})
	}
	return nil
}

// container locates a statement within its enclosing statement list, so the
// checker can look at what happens to a collected slice after the loop.
type container struct {
	list []ast.Stmt
	idx  int
}

func stmtContainers(f *ast.File) map[ast.Stmt]container {
	out := make(map[ast.Stmt]container)
	ast.Inspect(f, func(n ast.Node) bool {
		var list []ast.Stmt
		switch n := n.(type) {
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		default:
			return true
		}
		for i, s := range list {
			out[s] = container{list, i}
		}
		return true
	})
	return out
}

func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt, where container) {
	keyObj := declaredVar(pass.TypesInfo, rs.Key)

	var walk func(s ast.Stmt, guards []ast.Expr)
	walkBody := func(list []ast.Stmt, guards []ast.Expr) {
		for _, s := range list {
			walk(s, guards)
		}
	}
	walk = func(s ast.Stmt, guards []ast.Expr) {
		switch s := s.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, rs, where, s, keyObj, guards)
			for _, rhs := range s.Rhs {
				checkExprWrites(pass, rs, rhs)
			}
		case *ast.ExprStmt:
			checkExprWrites(pass, rs, s.X)
		case *ast.IfStmt:
			// The whole if/else-if chain decides the selection together, so
			// a tie-break in any branch condition covers every branch.
			conds := guards
			var bodies []*ast.BlockStmt
			var last ast.Stmt
			for chain := s; ; {
				conds = append(conds, chain.Cond)
				bodies = append(bodies, chain.Body)
				next, ok := chain.Else.(*ast.IfStmt)
				if !ok {
					last = chain.Else
					break
				}
				chain = next
			}
			for _, b := range bodies {
				walkBody(b.List, conds)
			}
			if last != nil {
				walk(last, conds)
			}
		case *ast.BlockStmt:
			walkBody(s.List, guards)
		case *ast.ForStmt:
			walkBody(s.Body.List, guards)
		case *ast.RangeStmt:
			walkBody(s.Body.List, guards)
		case *ast.SwitchStmt:
			// All case expressions participate in one selection decision.
			conds := guards
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					conds = append(conds, cc.List...)
				}
			}
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkBody(cc.Body, conds)
				}
			}
		case *ast.LabeledStmt:
			walk(s.Stmt, guards)
		case *ast.DeferStmt:
			checkExprWrites(pass, rs, s.Call)
		case *ast.GoStmt:
			checkExprWrites(pass, rs, s.Call)
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				checkExprWrites(pass, rs, r)
			}
		}
	}
	walkBody(rs.Body.List, nil)
}

// checkAssign handles the append-to-outer-slice and key-escape shapes.
func checkAssign(pass *analysis.Pass, rs *ast.RangeStmt, where container, as *ast.AssignStmt, keyObj *types.Var, guards []ast.Expr) {
	for i, lhs := range as.Lhs {
		rhs := as.Rhs[0]
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		}
		target := rootVar(pass.TypesInfo, lhs)
		if target == nil || declaredWithin(target, rs) {
			continue
		}
		if _, isIndex := ast.Unparen(lhs).(*ast.IndexExpr); isIndex {
			// m2[k] = v / counts[v]++ style writes are commutative across
			// iteration orders (each key is visited once).
			continue
		}
		if isAppendCall(pass.TypesInfo, rhs) {
			if !sortedLater(pass.TypesInfo, where, target) {
				pass.Reportf(as.Pos(),
					"append to %s in map-iteration order; sort it afterwards, or iterate sorted keys", target.Name())
			}
			continue
		}
		if keyObj != nil && mentionsVar(pass.TypesInfo, rhs, keyObj) {
			if !guardsBreakTies(pass.TypesInfo, guards, keyObj) {
				pass.Reportf(as.Pos(),
					"map-iteration key %s escapes the loop via %s without a deterministic tie-break; compare the key in the guard (e.g. cnt > best || (cnt == best && key < bestKey))",
					keyObj.Name(), target.Name())
			}
		}
	}
}

// checkExprWrites reports output written during map iteration.
func checkExprWrites(pass *analysis.Pass, rs *ast.RangeStmt, e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pkg, name := analysis.PkgFuncCall(pass.TypesInfo, call); pkg == "fmt" &&
			(strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
			pass.Reportf(call.Pos(), "fmt.%s inside map iteration emits output in random order; iterate sorted keys", name)
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if name != "Encode" && !strings.HasPrefix(name, "Write") {
			return true
		}
		recv := rootVar(pass.TypesInfo, sel.X)
		if recv != nil && !declaredWithin(recv, rs) && isWriterish(pass.TypesInfo, sel.X) {
			pass.Reportf(call.Pos(), "%s.%s inside map iteration emits output in random order; iterate sorted keys", recv.Name(), name)
		}
		return true
	})
}

// isWriterish reports whether e's method set plausibly writes a byte stream:
// it has a Write([]byte) (int, error) method or is a known encoder type.
func isWriterish(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	if strings.HasSuffix(t.String(), "Encoder") {
		return true
	}
	for _, t := range []types.Type{t, types.NewPointer(t)} {
		ms := types.NewMethodSet(t)
		for i := 0; i < ms.Len(); i++ {
			m := ms.At(i).Obj()
			if m.Name() != "Write" {
				continue
			}
			sig, ok := m.Type().(*types.Signature)
			if ok && sig.Params().Len() == 1 && sig.Results().Len() == 2 {
				return true
			}
		}
	}
	return false
}

// sortedLater reports whether a later statement in the same list passes
// target to a sort-like call (sort.*, slices.Sort*, or any helper whose name
// contains "sort"), which restores determinism for collected slices.
func sortedLater(info *types.Info, where container, target *types.Var) bool {
	if where.list == nil {
		return false
	}
	for _, s := range where.list[where.idx+1:] {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			name := calleeName(call)
			if !strings.Contains(strings.ToLower(name), "sort") {
				return true
			}
			for _, arg := range call.Args {
				if mentionsVar(info, arg, target) {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// guardsBreakTies reports whether any enclosing guard condition compares the
// iteration key itself, i.e. contains a comparison with the key on either
// side — the shape of an explicit tie-break.
func guardsBreakTies(info *types.Info, guards []ast.Expr, key *types.Var) bool {
	for _, g := range guards {
		tieBroken := false
		ast.Inspect(g, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch be.Op {
			case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
				if mentionsVar(info, be.X, key) || mentionsVar(info, be.Y, key) {
					tieBroken = true
					return false
				}
			}
			return true
		})
		if tieBroken {
			return true
		}
	}
	return false
}

// declaredVar returns the *types.Var a range clause declares or assigns.
func declaredVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	v, _ := analysis.ObjectOf(info, id).(*types.Var)
	return v
}

// rootVar walks x.f[i].g down to its base identifier's variable.
func rootVar(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			v, _ := analysis.ObjectOf(info, x).(*types.Var)
			return v
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether v is declared inside node n's extent.
func declaredWithin(v *types.Var, n ast.Node) bool {
	return v.Pos() >= n.Pos() && v.Pos() <= n.End()
}

// mentionsVar reports whether e references v.
func mentionsVar(info *types.Info, e ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && analysis.ObjectOf(info, id) == v {
			found = true
		}
		return !found
	})
	return found
}

// isAppendCall reports whether e is a call to the append builtin.
func isAppendCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := analysis.ObjectOf(info, id).(*types.Builtin)
	return isBuiltin && id.Name == "append"
}

// calleeName returns a call's callee as written, qualifier included, so
// that sort.Ints and slices.SortFunc both read as sort-like.
func calleeName(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if x, ok := ast.Unparen(f.X).(*ast.Ident); ok {
			return x.Name + "." + f.Sel.Name
		}
		return f.Sel.Name
	}
	return ""
}
