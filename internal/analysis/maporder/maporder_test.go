package maporder_test

import (
	"testing"

	"github.com/codsearch/cod/internal/analysis/analysistest"
	"github.com/codsearch/cod/internal/analysis/maporder"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), maporder.Analyzer, "mapordertest")
}
