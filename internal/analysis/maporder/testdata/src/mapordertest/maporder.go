// Package mapordertest exercises the maporder analyzer: order-dependent map
// iteration is flagged; commutative accumulation and sorted collection pass.
package mapordertest

import (
	"bytes"
	"fmt"
	"sort"
)

func collectUnsorted(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // want `append to keys in map-iteration order`
	}
	return keys
}

func collectSorted(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func collectSortFunc(m map[int]string) []string {
	var vals []string
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

func argmaxNoTieBreak(m map[int]int) int {
	best, bestK := -1, -1
	for k, v := range m {
		if v > best {
			best = v
			bestK = k // want `map-iteration key k escapes the loop via bestK without a deterministic tie-break`
		}
	}
	return bestK
}

func argmaxTieBreak(m map[int]int) int {
	best, bestK := -1, -1
	for k, v := range m {
		if v > best || (v == best && k < bestK) {
			best = v
			bestK = k
		}
	}
	return bestK
}

func argmaxSwitchTieBreak(m map[int32]float64) int32 {
	best := int32(-1)
	bestSim := 0.0
	for b, s := range m {
		switch {
		case best == -1, s > bestSim:
			best, bestSim = b, s
		case s == bestSim && b < best:
			best = b
		}
	}
	return best
}

func argmaxElseIfTieBreak(m map[int]int) int {
	best, bestK := -1, -1
	for k, v := range m {
		if v > best {
			best, bestK = v, k
		} else if v == best && k < bestK {
			bestK = k
		}
	}
	return bestK
}

func argmaxSwitchNoTieBreak(m map[int]int) int {
	best, bestK := -1, -1
	for k, v := range m {
		switch {
		case v > best:
			best, bestK = v, k // want `map-iteration key k escapes the loop via bestK`
		}
	}
	return bestK
}

func unguardedKeyEscape(m map[int]int) int {
	last := 0
	for k := range m {
		last = k // want `map-iteration key k escapes the loop via last`
	}
	return last
}

func printDuringIteration(m map[int]int) {
	for k := range m {
		fmt.Println(k) // want `fmt.Println inside map iteration`
	}
}

func writeDuringIteration(m map[int]int, buf *bytes.Buffer) {
	for k := range m {
		buf.WriteString(fmt.Sprint(k)) // want `buf.WriteString inside map iteration`
	}
}

func commutativeAccumulation(m map[int]int) (int, map[int]bool) {
	total := 0
	set := make(map[int]bool, len(m))
	for k, v := range m {
		total += v
		set[k] = true
	}
	return total, set
}

func maxValueOnly(m map[int]int) int {
	best := -1
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

func innerCollectionsAreLocal(m map[int][]int) int {
	longest := 0
	for _, vs := range m {
		var evens []int
		for _, v := range vs {
			if v%2 == 0 {
				evens = append(evens, v)
			}
		}
		if len(evens) > longest {
			longest = len(evens)
		}
	}
	return longest
}

func ignored(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) //codvet:ignore maporder callers treat this as an unordered set
	}
	return keys
}

func sliceRangeIsFine(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x*x)
	}
	return out
}
