// Package poolret enforces the scratch-recycling discipline around
// sync.Pool: a buffer handed back with Put must not be touched again.
//
// The engine's query path cycles scratch arenas through a sync.Pool
// (internal/engine). The failure mode this invites is use-after-release: a
// goroutine Puts its scratch, keeps the local variable, and reads or writes
// through it while another goroutine has already received the same object
// from Get. The race detector only catches that when two queries actually
// collide; the analyzer catches the shape statically.
//
// The check is a source-order scan of each function body. A variable
// becomes "released" when it is passed to Put on a value of type sync.Pool
// (or *sync.Pool); any later reference to that variable in the same
// function is reported. Two escapes keep legitimate idioms quiet:
//
//   - a Put inside a defer releases at function exit, so later uses in the
//     body are fine and the deferred statement itself is skipped;
//   - reassigning the variable (including a fresh pool.Get) un-releases it,
//     since the name no longer denotes the surrendered object.
//
// The scan is linear, not flow-sensitive: a Put inside a loop body followed
// by a use on the next iteration is only caught when the use appears later
// in source order. That bias is deliberate — it keeps the checker free of
// false positives, and the engine's concurrent stress test covers the
// dynamic side. Suppress a deliberate exception with //codvet:ignore
// poolret and a reason.
package poolret

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/codsearch/cod/internal/analysis"
)

// Analyzer is the poolret analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "poolret",
	Doc:  "forbid using a buffer after returning it to a sync.Pool with Put",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !pass.IsLibraryPackage() {
		return nil
	}
	for _, f := range pass.SourceFiles() {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn.Body)
		}
	}
	return nil
}

// checkFunc walks body in source order tracking which objects have been
// surrendered to a pool, reporting any reference that follows its Put.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	released := make(map[types.Object]token.Pos)
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// Deferred Puts release at function exit; nothing inside a
			// defer (the Put itself, or a closure over the buffer) can
			// precede a use in the body.
			return false
		case *ast.AssignStmt:
			// RHS first (source order of evaluation), then treat every
			// assigned name as a fresh binding: the identifier no longer
			// denotes the object that was Put.
			for _, rhs := range n.Rhs {
				ast.Inspect(rhs, visit)
			}
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if obj := analysis.ObjectOf(pass.TypesInfo, id); obj != nil {
						delete(released, obj)
						continue
					}
				}
				ast.Inspect(lhs, visit)
			}
			return false
		case *ast.CallExpr:
			if obj := putArgObject(pass.TypesInfo, n); obj != nil {
				// Check the receiver and argument for already-released
				// buffers first (a second pool.Put(buf) is itself a
				// use-after-release), then mark the object surrendered.
				ast.Inspect(n.Fun, visit)
				for _, arg := range n.Args {
					ast.Inspect(arg, visit)
				}
				released[obj] = n.Pos()
				return false
			}
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[n]
			if obj == nil {
				return true
			}
			if _, gone := released[obj]; gone {
				pass.Reportf(n.Pos(),
					"%s is used after being returned to a sync.Pool with Put; a pooled buffer must not be touched after release",
					n.Name)
				delete(released, obj) // one report per release point
			}
		}
		return true
	}
	ast.Inspect(body, visit)
}

// putArgObject matches calls of the form pool.Put(x) where pool has type
// sync.Pool or *sync.Pool and x resolves to a variable, returning x's
// object. Any other call returns nil.
func putArgObject(info *types.Info, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Put" || len(call.Args) != 1 {
		return nil
	}
	if !isSyncPool(info.TypeOf(sel.X)) {
		return nil
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := info.Uses[id]
	if _, isVar := obj.(*types.Var); !isVar {
		return nil
	}
	return obj
}

func isSyncPool(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool"
}
