package poolret_test

import (
	"testing"

	"github.com/codsearch/cod/internal/analysis/analysistest"
	"github.com/codsearch/cod/internal/analysis/poolret"
)

func TestPoolret(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), poolret.Analyzer, "poolrettest")
}
