// Package poolrettest is the poolret fixture: buffers surrendered to a
// sync.Pool with Put must not be touched afterwards.
package poolrettest

import "sync"

type scratch struct {
	buf []int
}

var pool = sync.Pool{New: func() any { return new(scratch) }}

var sink *scratch

func useAfterPut() int {
	sc := pool.Get().(*scratch)
	sc.buf = append(sc.buf[:0], 1, 2, 3)
	n := len(sc.buf)
	pool.Put(sc)
	return n + len(sc.buf) // want `sc is used after being returned to a sync.Pool with Put`
}

func retainAfterPut() {
	sc := pool.Get().(*scratch)
	pool.Put(sc)
	sink = sc // want `sc is used after being returned to a sync.Pool with Put`
}

func doublePut() {
	sc := pool.Get().(*scratch)
	pool.Put(sc)
	pool.Put(sc) // want `sc is used after being returned to a sync.Pool with Put`
}

func pointerPool(p *sync.Pool) *scratch {
	sc := p.Get().(*scratch)
	p.Put(sc)
	return sc // want `sc is used after being returned to a sync.Pool with Put`
}

type engine struct {
	scratch sync.Pool
}

func (e *engine) fieldPool() {
	sc := e.scratch.Get().(*scratch)
	e.scratch.Put(sc)
	sc.buf = nil // want `sc is used after being returned to a sync.Pool with Put`
}

// deferredPut releases at function exit: uses in the body are fine.
func deferredPut() int {
	sc := pool.Get().(*scratch)
	defer pool.Put(sc)
	sc.buf = append(sc.buf[:0], 4, 5)
	return len(sc.buf)
}

// reacquire rebinds the name after Put; the new object is live.
func reacquire() int {
	sc := pool.Get().(*scratch)
	pool.Put(sc)
	sc = pool.Get().(*scratch)
	return len(sc.buf)
}

// putThenDone never touches the buffer again: the happy path.
func putThenDone() {
	sc := pool.Get().(*scratch)
	sc.buf = sc.buf[:0]
	pool.Put(sc)
}

// notAPool has a Put method; only sync.Pool receivers are in scope.
type notAPool struct{}

func (notAPool) Put(any) {}

func otherPut() {
	var q notAPool
	sc := pool.Get().(*scratch)
	q.Put(sc)
	sc.buf = nil // ok: q is not a sync.Pool
	pool.Put(sc)
}

// suppressed documents a deliberate exception.
func suppressed() {
	sc := pool.Get().(*scratch)
	pool.Put(sc)
	//codvet:ignore poolret fixture exercises the suppression path
	sink = sc
}
