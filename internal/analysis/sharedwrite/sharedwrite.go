// Package sharedwrite flags goroutine literals that write to variables
// captured from the enclosing function without synchronization.
//
// The worker fan-outs in this repository (DiscoverBatch, influence's
// ParallelBatch) follow one safe idiom: each goroutine writes only
// out[i] for indices i it exclusively owns. Writes through a captured
// slice index are therefore allowed, while the patterns the race detector
// regularly catches in review are reported:
//
//   - assigning (or ++/--) a captured scalar or struct variable;
//   - writing to a captured map (maps are never safe for concurrent
//     mutation);
//   - growing a captured slice with s = append(s, ...), which races on the
//     slice header.
//
// A goroutine body that takes a lock (any method named Lock/RLock) is
// assumed to manage its own mutual exclusion and is skipped — the race
// detector, which CI runs on every test, remains the runtime authority.
// Deliberate disjoint-range writes that the analyzer cannot prove can be
// annotated with `//codvet:ignore sharedwrite <reason>`.
// _test.go files are exempt.
package sharedwrite

import (
	"go/ast"
	"go/types"

	"github.com/codsearch/cod/internal/analysis"
)

// Analyzer is the sharedwrite analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "sharedwrite",
	Doc:  "flag goroutine literals writing captured shared variables without synchronization",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
			if !ok {
				return true
			}
			checkGoroutine(pass, lit)
			return true
		})
	}
	return nil
}

func checkGoroutine(pass *analysis.Pass, lit *ast.FuncLit) {
	if takesLock(lit.Body) {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				rhs := n.Rhs[0]
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				checkWrite(pass, lit, lhs, rhs)
			}
		case *ast.IncDecStmt:
			checkWrite(pass, lit, n.X, nil)
		}
		return true
	})
}

// checkWrite reports an unsynchronized write through lhs when its base
// variable is captured from outside the goroutine literal.
func checkWrite(pass *analysis.Pass, lit *ast.FuncLit, lhs, rhs ast.Expr) {
	base, sawSliceIndex, sawMapIndex := access(pass.TypesInfo, lhs)
	if base == nil || !captured(base, lit) {
		return
	}
	switch {
	case sawMapIndex:
		pass.Reportf(lhs.Pos(),
			"goroutine writes captured map %s; maps are unsafe for concurrent mutation — guard it with a sync.Mutex or give each worker its own map",
			base.Name())
	case sawSliceIndex:
		// out[i] = ... with worker-owned disjoint indices: the sanctioned
		// fan-out idiom.
	case rhs != nil && isAppendOf(pass.TypesInfo, rhs, base):
		pass.Reportf(lhs.Pos(),
			"goroutine appends to captured slice %s, racing on the slice header; preallocate and write disjoint indices, or collect via a channel",
			base.Name())
	default:
		pass.Reportf(lhs.Pos(),
			"goroutine writes captured variable %s without synchronization; use a sync primitive, a channel, or per-worker state",
			base.Name())
	}
}

// access resolves an assignable expression to its base variable, recording
// whether the path goes through a slice/array index or a map index.
func access(info *types.Info, e ast.Expr) (base *types.Var, sliceIdx, mapIdx bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			v, _ := analysis.ObjectOf(info, x).(*types.Var)
			return v, sliceIdx, mapIdx
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			switch info.TypeOf(x.X).Underlying().(type) {
			case *types.Map:
				mapIdx = true
			case *types.Slice, *types.Array, *types.Pointer:
				sliceIdx = true
			}
			e = x.X
		case *ast.StarExpr:
			// A write through a captured pointer dereference targets shared
			// memory the pointer owner sees; treat like a direct write.
			e = x.X
		default:
			return nil, sliceIdx, mapIdx
		}
	}
}

// captured reports whether v is declared outside the goroutine literal (and
// is not a struct field, whose "declaration" is its type).
func captured(v *types.Var, lit *ast.FuncLit) bool {
	if v.IsField() || v.Pkg() == nil {
		return false
	}
	return v.Pos() < lit.Pos() || v.Pos() > lit.End()
}

// isAppendOf reports whether rhs is append(base, ...).
func isAppendOf(info *types.Info, rhs ast.Expr, base *types.Var) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if _, isBuiltin := analysis.ObjectOf(info, id).(*types.Builtin); !isBuiltin {
		return false
	}
	b, _, _ := access(info, call.Args[0])
	return b == base
}

// takesLock reports whether body calls any method named Lock or RLock —
// the goroutine manages its own mutual exclusion.
func takesLock(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
				found = true
			}
		}
		return !found
	})
	return found
}
