package sharedwrite_test

import (
	"testing"

	"github.com/codsearch/cod/internal/analysis/analysistest"
	"github.com/codsearch/cod/internal/analysis/sharedwrite"
)

func TestSharedwrite(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), sharedwrite.Analyzer, "sharedwritetest")
}
