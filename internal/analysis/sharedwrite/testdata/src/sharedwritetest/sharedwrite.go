// Package sharedwritetest exercises the sharedwrite analyzer: goroutine
// literals mutating captured state race unless they write disjoint slice
// indices, hold a lock, or use channels.
package sharedwritetest

import "sync"

func disjointIndexFanout(n int) []int {
	out := make([]int, n)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out[w] = w * w
		}(w)
	}
	wg.Wait()
	return out
}

func structFieldViaSliceIndex(n int) []struct{ V int } {
	out := make([]struct{ V int }, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i].V = i
		}(i)
	}
	wg.Wait()
	return out
}

func scalarRace() int {
	total := 0
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			total += i // want `goroutine writes captured variable total`
		}(i)
	}
	wg.Wait()
	return total
}

func incDecRace() int {
	count := 0
	done := make(chan struct{})
	go func() {
		count++ // want `goroutine writes captured variable count`
		close(done)
	}()
	<-done
	return count
}

func mapRace(keys []int) map[int]int {
	m := make(map[int]int)
	var wg sync.WaitGroup
	for _, k := range keys {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			m[k] = k * k // want `goroutine writes captured map m`
		}(k)
	}
	wg.Wait()
	return m
}

func appendRace(n int) []int {
	var out []int
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out = append(out, i) // want `goroutine appends to captured slice out`
		}(i)
	}
	wg.Wait()
	return out
}

func mutexGuarded(n int) int {
	total := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mu.Lock()
			total += i
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	return total
}

func channelCollection(n int) int {
	ch := make(chan int)
	for i := 0; i < n; i++ {
		go func(i int) {
			ch <- i
		}(i)
	}
	total := 0
	for i := 0; i < n; i++ {
		total += <-ch
	}
	return total
}

func goroutineLocalState(res []int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		local := make([]int, 0, 4)
		local = append(local, 1)
		sum := 0
		for _, v := range local {
			sum += v
		}
		res[0] = sum
	}()
	wg.Wait()
}

func ignoredHappensBefore() int {
	total := 0
	done := make(chan struct{})
	go func() {
		//codvet:ignore sharedwrite close(done) publishes the write before any read
		total = 42
		close(done)
	}()
	<-done
	return total
}
