// Package spanend enforces the span-completion discipline of the
// observability layer: a stage or step span obtained from
// Recorder.StartSpan / Recorder.StartStep must be completed with End or
// EndItems on every path out of the function that started it.
//
// The failure mode this catches is the early return: a function starts a
// span, later grows a second return (an index-probe hit, an error branch),
// and that path silently drops the span — the stage histogram undercounts
// and the query trace loses the step. The leak is invisible at runtime (no
// panic, no race); the analyzer catches the shape statically, exactly as
// ctxpoll and poolret do for their contracts.
//
// The check tracks each local variable initialized from a call to a method
// named StartSpan or StartStep whose single result is a named type Span or
// StepSpan (matched by name, not package, so fixtures and future recorder
// types are covered alike). Two pre-scan escapes keep legitimate idioms
// quiet — a variable that is deferred (defer v.End(...)) is completed at
// function exit, and a variable that escapes the simple call discipline
// (captured by a closure, reassigned, passed elsewhere) is skipped rather
// than guessed at. For the rest, a conservative path walk reports any
// return (or the fall-off end of a void function) reachable while the span
// is still live. Branches are walked independently; a loop body's End does
// not count (the loop may run zero times). Suppress a deliberate exception
// with //codvet:ignore spanend and a reason.
package spanend

import (
	"go/ast"
	"go/types"

	"github.com/codsearch/cod/internal/analysis"
)

// Analyzer is the spanend analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "spanend",
	Doc:  "require Recorder spans (StartSpan/StartStep) to be completed with End/EndItems on every path",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !pass.IsLibraryPackage() {
		return nil
	}
	for _, f := range pass.SourceFiles() {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			for _, obj := range spanVars(pass, fn.Body) {
				checkVar(pass, fn, obj)
			}
		}
	}
	return nil
}

// spanVars finds the local variables initialized from a StartSpan/StartStep
// call anywhere in body.
func spanVars(pass *analysis.Pass, body *ast.BlockStmt) []types.Object {
	var out []types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !isStartCall(pass.TypesInfo, call) {
			return true
		}
		id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		if obj := analysis.ObjectOf(pass.TypesInfo, id); obj != nil {
			out = append(out, obj)
		}
		return true
	})
	return out
}

// isStartCall matches a method call named StartSpan/StartStep whose result
// is a named type Span or StepSpan.
func isStartCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "StartSpan" && sel.Sel.Name != "StartStep") {
		return false
	}
	t := info.TypeOf(call)
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil {
		return false
	}
	name := named.Obj().Name()
	return name == "Span" || name == "StepSpan"
}

// checkVar verifies one span variable. It first pre-scans the function for
// escapes (deferred End, closure capture, reassignment, any use that is not
// an End/EndItems receiver) and skips escaped variables; then it walks the
// body's paths and reports returns reachable with the span live.
func checkVar(pass *analysis.Pass, fn *ast.FuncDecl, obj types.Object) {
	c := &checker{pass: pass, obj: obj}
	if c.escapes(fn.Body) {
		return
	}
	live, term := c.walkStmts(fn.Body.List, false)
	// A void function can fall off the end of its body; with results the
	// compiler forces a terminating statement, already handled in the walk.
	if live && !term && fn.Type.Results == nil {
		pass.Reportf(fn.Body.Rbrace,
			"span %s can reach the end of %s without End/EndItems", obj.Name(), fn.Name.Name)
	}
}

type checker struct {
	pass *analysis.Pass
	obj  types.Object
}

// escapes reports whether the variable leaves the simple discipline the
// walk understands: deferred completion (safe — covers every path), use
// inside a closure or go/defer statement, reassignment, or any appearance
// that is not the receiver of an End/EndItems call.
func (c *checker) escapes(body *ast.BlockStmt) bool {
	// accounted collects the receiver Idents of plain v.End(...) calls; the
	// defining Ident and those receivers are the only sanctioned uses.
	accounted := map[*ast.Ident]bool{}
	escaped := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if c.isEndCall(n.Call) {
				escaped = true // deferred End covers every path: nothing to check
			}
			return true
		case *ast.FuncLit:
			if c.usesVar(n.Body) {
				escaped = true
			}
			return false
		case *ast.AssignStmt:
			// A later reassignment rebinds the name mid-flight; skip rather
			// than model it (the defining := itself has the call on the RHS).
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok &&
					analysis.ObjectOf(c.pass.TypesInfo, id) == c.obj && c.pass.TypesInfo.Defs[id] == nil {
					escaped = true
				}
			}
			return true
		case *ast.CallExpr:
			if c.isEndCall(n) {
				sel := ast.Unparen(n.Fun).(*ast.SelectorExpr)
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
					accounted[id] = true
				}
			}
			return true
		}
		return true
	})
	if escaped {
		return true
	}
	// Any remaining use that is neither the definition nor an accounted
	// End receiver (passed as an argument, stored in a struct, compared)
	// escapes the discipline.
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || accounted[id] {
			return true
		}
		if c.pass.TypesInfo.Uses[id] == c.obj {
			escaped = true
		}
		return true
	})
	return escaped
}

func (c *checker) usesVar(n ast.Node) bool {
	used := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && c.pass.TypesInfo.Uses[id] == c.obj {
			used = true
		}
		return true
	})
	return used
}

// isEndCall matches v.End(...) / v.EndItems(...) on the tracked variable.
func (c *checker) isEndCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "End" && sel.Sel.Name != "EndItems") {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && c.pass.TypesInfo.Uses[id] == c.obj
}

// defines reports whether stmt is the := that binds the tracked variable.
func (c *checker) defines(stmt ast.Stmt) bool {
	as, ok := stmt.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range as.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && c.pass.TypesInfo.Defs[id] == c.obj {
			return true
		}
	}
	return false
}

// ends reports whether stmt is a plain End/EndItems expression statement.
func (c *checker) ends(stmt ast.Stmt) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	return ok && c.isEndCall(call)
}

// walkStmts walks a statement list with the span's liveness at entry. It
// returns the liveness on the path falling off the list's end and whether
// every path through the list terminates (returns) before that point.
// Returns reached while live are reported.
func (c *checker) walkStmts(stmts []ast.Stmt, live bool) (liveOut, terminated bool) {
	for _, stmt := range stmts {
		l, t := c.walkStmt(stmt, live)
		if t {
			return l, true
		}
		live = l
	}
	return live, false
}

// walkStmt walks one statement. The liveness rules: the defining := turns
// the span live, a plain End/EndItems turns it dead; branches are walked
// independently and liveness is OR-ed over the branches that can fall
// through; a loop's End never clears liveness at the loop's exit (the body
// may run zero times).
func (c *checker) walkStmt(stmt ast.Stmt, live bool) (liveOut, terminated bool) {
	switch s := stmt.(type) {
	case *ast.ReturnStmt:
		if live {
			c.pass.Reportf(s.Pos(),
				"span %s can reach this return without End/EndItems", c.obj.Name())
		}
		return live, true
	case *ast.BranchStmt:
		// break/continue/goto leave the list; conservative: the enclosing
		// loop's exit liveness already assumes the entry value.
		return live, true
	case *ast.ExprStmt:
		if c.ends(stmt) {
			return false, false
		}
		return live, false
	case *ast.AssignStmt:
		if c.defines(stmt) {
			return true, false
		}
		return live, false
	case *ast.BlockStmt:
		return c.walkStmts(s.List, live)
	case *ast.LabeledStmt:
		return c.walkStmt(s.Stmt, live)
	case *ast.IfStmt:
		if s.Init != nil {
			live, _ = c.walkStmt(s.Init, live)
		}
		thenLive, thenTerm := c.walkStmts(s.Body.List, live)
		elseLive, elseTerm := live, false
		if s.Else != nil {
			elseLive, elseTerm = c.walkStmt(s.Else, live)
		}
		switch {
		case thenTerm && elseTerm:
			return false, true
		case thenTerm:
			return elseLive, false
		case elseTerm:
			return thenLive, false
		}
		return thenLive || elseLive, false
	case *ast.ForStmt:
		if s.Init != nil {
			live, _ = c.walkStmt(s.Init, live)
		}
		// Walk the body to report returns inside it, but discard its exit
		// liveness: an End inside the loop may execute zero times.
		c.walkStmts(s.Body.List, live)
		return live, false
	case *ast.RangeStmt:
		c.walkStmts(s.Body.List, live)
		return live, false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return c.walkCases(stmt, live)
	}
	return live, false
}

// walkCases handles switch/type-switch/select: each clause walks from the
// entry liveness; the exit is the OR over clauses that fall through, plus
// the no-clause-taken path when a switch lacks a default.
func (c *checker) walkCases(stmt ast.Stmt, live bool) (liveOut, terminated bool) {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := stmt.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			live, _ = c.walkStmt(s.Init, live)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			live, _ = c.walkStmt(s.Init, live)
		}
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	out := false
	allTerm := true
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			}
			stmts = cl.Body
		}
		l, t := c.walkStmts(stmts, live)
		if !t {
			out = out || l
			allTerm = false
		}
	}
	if !hasDefault {
		// No clause may match: control skips the switch entirely.
		out = out || live
		allTerm = false
	}
	if allTerm && len(body.List) > 0 {
		return false, true
	}
	return out, false
}
