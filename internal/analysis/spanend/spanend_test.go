package spanend_test

import (
	"testing"

	"github.com/codsearch/cod/internal/analysis/analysistest"
	"github.com/codsearch/cod/internal/analysis/spanend"
)

func TestSpanEnd(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), spanend.Analyzer, "spanendtest")
}
