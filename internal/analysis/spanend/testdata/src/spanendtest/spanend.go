// Package spanendtest is the spanend fixture: a span obtained from
// StartSpan/StartStep must be completed with End/EndItems on every path.
// The stand-in types mirror internal/obs (fixtures import only stdlib).
package spanendtest

// Span mirrors obs.Span: a stage span completed with End or EndItems.
type Span struct{ n int }

func (Span) End()         {}
func (Span) EndItems(int) {}

// StepSpan mirrors obs.StepSpan: a plan-step span completed with End(outcome).
type StepSpan struct{ n int }

func (StepSpan) End(string) {}

// Recorder mirrors obs.Recorder's span constructors.
type Recorder struct{}

func (*Recorder) StartSpan(stage string) Span             { return Span{} }
func (*Recorder) StartStep(variant, kind string) StepSpan { return StepSpan{} }

// earlyReturn leaks the span on the error path: the classic regression.
func earlyReturn(r *Recorder, cond bool) int {
	sp := r.StartSpan("rr_sample")
	if cond {
		return 1 // want `span sp can reach this return without End/EndItems`
	}
	sp.End()
	return 0
}

// errPath mirrors an error-branch leak in a step runner.
func errPath(r *Recorder, err error) error {
	sp := r.StartStep("codl", "evaluate")
	if err != nil {
		return err // want `span sp can reach this return without End/EndItems`
	}
	sp.End("ok")
	return nil
}

// endInLoopOnly is a leak: the loop body may run zero times.
func endInLoopOnly(r *Recorder, xs []int) int {
	sp := r.StartSpan("topk_sweep")
	for _, x := range xs {
		sp.EndItems(x)
	}
	return len(xs) // want `span sp can reach this return without End/EndItems`
}

// switchNoDefault leaks when no case matches.
func switchNoDefault(r *Recorder, mode int) int {
	sp := r.StartStep("codu", "chain")
	switch mode {
	case 0:
		sp.End("tree")
	case 1:
		sp.End("attr")
	}
	return mode // want `span sp can reach this return without End/EndItems`
}

// fallsOffEnd leaks out the bottom of a void function.
func fallsOffEnd(r *Recorder, cond bool) {
	sp := r.StartStep("codl", "sample")
	if cond {
		sp.End("cache_hit")
	}
} // want `span sp can reach the end of fallsOffEnd without End/EndItems`

// allPathsEnd completes the span on both branches: the happy shape.
func allPathsEnd(r *Recorder, cond bool) int {
	sp := r.StartSpan("himor_lookup")
	if cond {
		sp.EndItems(1)
		return 1
	}
	sp.End()
	return 0
}

// loopHitMiss mirrors an index probe: EndItems before the hit return inside
// the loop, EndItems again on the miss path after it.
func loopHitMiss(r *Recorder, xs []int) bool {
	sp := r.StartSpan("himor_lookup")
	for _, x := range xs {
		if x > 0 {
			sp.EndItems(x)
			return true
		}
	}
	sp.EndItems(0)
	return false
}

// switchAllEnd covers every case including default: clean.
func switchAllEnd(r *Recorder, mode int) int {
	sp := r.StartStep("codu", "chain")
	switch mode {
	case 0:
		sp.End("tree")
	default:
		sp.End("attr")
	}
	return mode
}

// selectEnds completes the span in every comm clause.
func selectEnds(r *Recorder, ch chan int) int {
	sp := r.StartSpan("rr_induce")
	select {
	case v := <-ch:
		sp.EndItems(v)
		return v
	default:
		sp.End()
	}
	return 0
}

// deferred completes at function exit: every path is covered.
func deferred(r *Recorder, cond bool) int {
	sp := r.StartSpan("hac_merge")
	defer sp.End()
	if cond {
		return 1
	}
	return 0
}

// nestedDecl starts and ends the span inside one branch.
func nestedDecl(r *Recorder, cond bool) int {
	if cond {
		sp := r.StartSpan("lore_score")
		sp.End()
	}
	return 0
}

// twoSpans tracks each variable independently.
func twoSpans(r *Recorder, cond bool) int {
	a := r.StartSpan("one")
	a.End()
	b := r.StartSpan("two")
	if cond {
		return 1 // want `span b can reach this return without End/EndItems`
	}
	b.End()
	return 0
}

func helper(Span) {}

// escapesToHelper hands the span to another function: out of scope for the
// structural check, skipped rather than guessed at.
func escapesToHelper(r *Recorder) {
	sp := r.StartSpan("stage")
	helper(sp)
}

// closureCapture escapes into a closure: skipped.
func closureCapture(r *Recorder) func() {
	sp := r.StartSpan("stage")
	return func() { sp.End() }
}

// notASpan has the method name but not the result type: out of scope.
type notASpan struct{}

func (notASpan) StartSpan(string) int { return 0 }

func otherStart(o notASpan) int {
	v := o.StartSpan("x")
	return v
}

// suppressed documents a deliberate exception.
func suppressed(r *Recorder, cond bool) int {
	sp := r.StartSpan("stage")
	if cond {
		//codvet:ignore spanend fixture exercises the suppression path
		return 1
	}
	sp.End()
	return 0
}
