package analysis

// This file implements the `go vet -vettool` unit-checking protocol, the
// same contract x/tools' unitchecker fulfils, using only the standard
// library. cmd/go drives a vet tool in three ways:
//
//  1. `tool -V=full` — print an identity line used as a cache key;
//  2. `tool -flags`  — print a JSON description of supported flags;
//  3. `tool <file>.cfg` — analyze one package unit: the JSON config names
//     the unit's Go files and maps each import to the export-data file the
//     compiler produced, so the unit can be type-checked without rebuilding
//     its dependencies.
//
// Cross-package facts ride the same protocol: cmd/go allocates one facts
// file per unit (Config.VetxOutput) and hands each unit the facts files of
// its direct imports (Config.PackageVetx). The driver decodes those into
// the run's FactStore before analysis and encodes the store — imported
// facts included, so the closure is transitive — afterwards. Dependency
// units arrive with VetxOnly set: they are analyzed for facts with their
// diagnostics suppressed, exactly x/tools' behavior. To keep `codvet ./...`
// from type-checking the entire standard library, VetxOnly units outside
// FactScope get an empty facts file instead of an analysis pass — analyzers
// treat well-known stdlib roots (time.Now, math/rand) intrinsically, so no
// information is lost.
//
// Invoked any other way, Main falls back to standalone mode and re-executes
// itself through `go vet -vettool=<self> <args>`, which makes `codvet ./...`
// work directly. The standalone -json flag switches diagnostic output to
// one JSON object per line (see jsonDiagnostic); it propagates to the unit
// invocations through the CODVET_JSON environment variable, which cmd/go
// passes through unchanged.

import (
	"bufio"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"os/exec"
	"strings"
)

// unitConfig mirrors the JSON object cmd/go writes for each vet unit. Only
// the fields this driver consumes are declared; unknown fields are ignored.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// FactScope lists the import-path prefixes whose VetxOnly units are fully
// analyzed for cross-package facts. Units outside the scope (the standard
// library, should the module ever vendor a dependency) produce empty facts
// files without being type-checked.
var FactScope = []string{"github.com/codsearch/cod"}

// jsonMode reports whether diagnostics should be emitted as JSON lines; set
// by the standalone -json flag and inherited by unit invocations through
// the environment.
func jsonMode() bool { return os.Getenv("CODVET_JSON") == "1" }

// Main is the entry point of a vet-tool multichecker built from analyzers.
func Main(analyzers ...*Analyzer) {
	progname := "codvet"
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	vFlag := fs.String("V", "", "print version information ('full' prints a cache key)")
	flagsFlag := fs.Bool("flags", false, "print flags in JSON (vet protocol)")
	jsonFlag := fs.Bool("json", false, "emit diagnostics as one JSON object per line (standalone mode)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [-json] [package ...]  (or via go vet -vettool=%s)\n\n", progname, progname)
		fmt.Fprintln(os.Stderr, "Registered analyzers:")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, firstSentence(a.Doc))
		}
	}
	fs.Parse(os.Args[1:])

	switch {
	case *vFlag == "full":
		printVersion(progname)
	case *vFlag != "":
		fmt.Printf("%s version devel\n", progname)
	case *flagsFlag:
		// No analyzer-specific flags; the protocol wants a JSON array.
		fmt.Println("[]")
	case fs.NArg() == 1 && strings.HasSuffix(fs.Arg(0), ".cfg"):
		fset, diags, err := runUnitFile(fs.Arg(0), analyzers)
		if err != nil {
			log.Fatal(err)
		}
		if len(diags) > 0 {
			printDiagnostics(os.Stderr, fset, diags, jsonMode())
			os.Exit(2)
		}
	default:
		if *jsonFlag {
			os.Setenv("CODVET_JSON", "1")
		}
		os.Exit(standalone(fs.Args()))
	}
}

// jsonDiagnostic is the machine-readable diagnostic record emitted in
// -json mode: one object per line, consumable by CI annotators and future
// baselining without parsing the human format.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// printDiagnostics writes diags to w, as `file:line:col: message (analyzer)`
// text or as JSON lines.
func printDiagnostics(w io.Writer, fset *token.FileSet, diags []Diagnostic, asJSON bool) {
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if asJSON {
			line, _ := json.Marshal(jsonDiagnostic{
				File:     pos.Filename,
				Line:     pos.Line,
				Col:      pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
			fmt.Fprintf(w, "%s\n", line)
			continue
		}
		fmt.Fprintf(w, "%s: %s (%s)\n", pos, d.Message, d.Analyzer)
	}
}

// printVersion emits the `-V=full` identity line. cmd/go hashes the
// executable into the build cache key, so the line embeds a digest of the
// binary: rebuilding codvet invalidates stale vet results — and stale
// facts files, which share the cache entry.
func printVersion(progname string) {
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, h.Sum(nil))
}

// standalone re-executes the tool through `go vet` so that cmd/go computes
// the package graph, export data and facts files, then returns go vet's
// exit code.
func standalone(args []string) int {
	exe, err := os.Executable()
	if err != nil {
		log.Print(err)
		return 1
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	var routed chan struct{}
	if jsonMode() {
		// go vet relays every unit's output on its own stderr, interleaved
		// with `# pkg` header lines. Route the JSON diagnostic lines to
		// stdout so `codvet -json ./... | jq` works, and keep the headers
		// and any tool errors on stderr.
		pr, pw := io.Pipe()
		cmd.Stderr = pw
		routed = make(chan struct{})
		go func() {
			defer close(routed)
			sc := bufio.NewScanner(pr)
			sc.Buffer(make([]byte, 64*1024), 1024*1024)
			for sc.Scan() {
				line := sc.Bytes()
				if len(line) > 0 && line[0] == '{' {
					fmt.Fprintf(os.Stdout, "%s\n", line)
				} else {
					fmt.Fprintf(os.Stderr, "%s\n", line)
				}
			}
		}()
		defer func() {
			pw.Close()
			<-routed
		}()
	}
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		log.Print(err)
		return 1
	}
	return 0
}

// runUnitFile analyzes one vet unit described by cfgFile.
func runUnitFile(cfgFile string, analyzers []*Analyzer) (*token.FileSet, []Diagnostic, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, nil, err
	}
	cfg := new(unitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, nil, fmt.Errorf("cannot decode vet config %s: %w", cfgFile, err)
	}
	return runUnit(cfg, analyzers, nil)
}

// inFactScope reports whether path is within the module subtree whose facts
// the suite computes.
func inFactScope(path string) bool {
	for _, prefix := range FactScope {
		if path == prefix || strings.HasPrefix(path, prefix+"/") {
			return true
		}
	}
	return false
}

// runUnit analyzes one parsed unit config. imp overrides the export-data
// importer built from the config (tests inject a source-based one);
// production passes nil. VetxOnly units return no diagnostics, but in-scope
// ones are still analyzed so their facts file is real.
func runUnit(cfg *unitConfig, analyzers []*Analyzer, imp types.Importer) (*token.FileSet, []Diagnostic, error) {
	writeFacts := func(data []byte) error {
		if cfg.VetxOutput == "" {
			return nil
		}
		// cmd/go requires the output facts file to exist even when empty.
		return os.WriteFile(cfg.VetxOutput, data, 0o666)
	}
	if cfg.VetxOnly && !inFactScope(cfg.ImportPath) {
		return nil, nil, writeFacts(nil)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil, writeFacts(nil)
			}
			return nil, nil, err
		}
		files = append(files, f)
	}

	if imp == nil {
		imp = unitImporter(fset, cfg)
	}
	tc := &types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	info := NewInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil, writeFacts(nil)
		}
		return nil, nil, fmt.Errorf("typecheck: %v", err)
	}

	// Import the facts of every direct dependency that has a facts file.
	// Fact object paths resolve against the packages the typechecker
	// imported; transitive imports are visible through them.
	facts := NewFactStore()
	lookup := packageLookup(pkg)
	for path, vetx := range cfg.PackageVetx {
		data, err := os.ReadFile(vetx)
		if err != nil {
			// A dependency whose facts file is missing contributes nothing;
			// cmd/go only lists files it created, so treat this as empty.
			continue
		}
		if err := facts.Decode(data, analyzers, lookup); err != nil {
			return nil, nil, fmt.Errorf("facts of %s (%s): %w", path, vetx, err)
		}
	}

	diags, err := RunWithFacts(fset, files, pkg, info, analyzers, facts)
	if err != nil {
		return nil, nil, err
	}
	encoded, err := facts.Encode()
	if err != nil {
		return nil, nil, err
	}
	if err := writeFacts(encoded); err != nil {
		return nil, nil, err
	}
	if cfg.VetxOnly {
		return fset, nil, nil
	}
	return fset, diags, nil
}

// unitImporter builds the export-data importer the vet protocol describes:
// each import resolves through cmd/go's ImportMap to the export file the
// compiler already produced.
func unitImporter(fset *token.FileSet, cfg *unitConfig) types.Importer {
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// path is a canonical package path; cmd/go points it at the export
		// data the compiler already produced for this build.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.(types.ImporterFrom).ImportFrom(path, cfg.Dir, 0)
	})
}

// packageLookup returns a resolver from package path to the *types.Package
// visible from pkg (itself or any transitive import).
func packageLookup(pkg *types.Package) func(path string) *types.Package {
	seen := map[string]*types.Package{pkg.Path(): pkg}
	var walk func(p *types.Package)
	walk = func(p *types.Package) {
		for _, imp := range p.Imports() {
			if _, ok := seen[imp.Path()]; ok {
				continue
			}
			seen[imp.Path()] = imp
			walk(imp)
		}
	}
	walk(pkg)
	return func(path string) *types.Package { return seen[path] }
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func firstSentence(s string) string {
	if i := strings.IndexAny(s, ".\n"); i >= 0 {
		return s[:i+1]
	}
	return s
}
