package analysis

// This file implements the `go vet -vettool` unit-checking protocol, the
// same contract x/tools' unitchecker fulfils, using only the standard
// library. cmd/go drives a vet tool in three ways:
//
//  1. `tool -V=full` — print an identity line used as a cache key;
//  2. `tool -flags`  — print a JSON description of supported flags;
//  3. `tool <file>.cfg` — analyze one package unit: the JSON config names
//     the unit's Go files and maps each import to the export-data file the
//     compiler produced, so the unit can be type-checked without rebuilding
//     its dependencies.
//
// Invoked any other way, Main falls back to standalone mode and re-executes
// itself through `go vet -vettool=<self> <args>`, which makes `codvet ./...`
// work directly.

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"os/exec"
	"strings"
)

// unitConfig mirrors the JSON object cmd/go writes for each vet unit. Only
// the fields this driver consumes are declared; unknown fields are ignored.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point of a vet-tool multichecker built from analyzers.
func Main(analyzers ...*Analyzer) {
	progname := "codvet"
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	vFlag := fs.String("V", "", "print version information ('full' prints a cache key)")
	flagsFlag := fs.Bool("flags", false, "print flags in JSON (vet protocol)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [package ...]  (or via go vet -vettool=%s)\n\n", progname, progname)
		fmt.Fprintln(os.Stderr, "Registered analyzers:")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, firstSentence(a.Doc))
		}
	}
	fs.Parse(os.Args[1:])

	switch {
	case *vFlag == "full":
		printVersion(progname)
	case *vFlag != "":
		fmt.Printf("%s version devel\n", progname)
	case *flagsFlag:
		// No analyzer-specific flags; the protocol wants a JSON array.
		fmt.Println("[]")
	case fs.NArg() == 1 && strings.HasSuffix(fs.Arg(0), ".cfg"):
		if err := runUnit(fs.Arg(0), analyzers); err != nil {
			log.Fatal(err)
		}
	default:
		os.Exit(standalone(fs.Args()))
	}
}

// printVersion emits the `-V=full` identity line. cmd/go hashes the
// executable into the build cache key, so the line embeds a digest of the
// binary: rebuilding codvet invalidates stale vet results.
func printVersion(progname string) {
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, h.Sum(nil))
}

// standalone re-executes the tool through `go vet` so that cmd/go computes
// the package graph and export data, then returns go vet's exit code.
func standalone(args []string) int {
	exe, err := os.Executable()
	if err != nil {
		log.Print(err)
		return 1
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		log.Print(err)
		return 1
	}
	return 0
}

// runUnit analyzes one vet unit described by cfgFile.
func runUnit(cfgFile string, analyzers []*Analyzer) error {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return err
	}
	cfg := new(unitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return fmt.Errorf("cannot decode vet config %s: %w", cfgFile, err)
	}

	// cmd/go requires the output facts file to exist even though this suite
	// defines no cross-package facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return err
		}
	}
	if cfg.VetxOnly {
		return nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil
			}
			return err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// path is a canonical package path; cmd/go points it at the export
		// data the compiler already produced for this build.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.(types.ImporterFrom).ImportFrom(path, cfg.Dir, 0)
	})
	tc := &types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	info := NewInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil
		}
		return fmt.Errorf("typecheck: %v", err)
	}

	diags, err := Run(fset, files, pkg, info, analyzers)
	if err != nil {
		return err
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer)
		}
		os.Exit(2)
	}
	return nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func firstSentence(s string) string {
	if i := strings.IndexAny(s, ".\n"); i >= 0 {
		return s[:i+1]
	}
	return s
}
