package analysis

// Tests for the unit-checker driver itself: the facts round trip across
// two units (export while checking package A, import while checking its
// dependent B — through the real wire format, not the in-process store)
// and the malformed-input error paths.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func parseTestFile(fset *token.FileSet, file string) ([]*ast.File, error) {
	f, err := parser.ParseFile(fset, file, nil, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	return []*ast.File{f}, nil
}

// probeFact marks functions whose name starts with "Tainted".
type probeFact struct {
	Origin string `json:"origin"`
}

func (*probeFact) AFact() {}

// probeAnalyzer exports a probeFact for every function literally named with
// the Tainted prefix and reports every call to a function carrying the
// fact — which, for a cross-unit call, requires the fact to have survived
// serialization.
var probeAnalyzer = &Analyzer{
	Name:      "factprobe",
	Doc:       "test analyzer: propagate a fact from Tainted* functions to their callers.",
	FactTypes: []Fact{(*probeFact)(nil)},
	Run: func(pass *Pass) error {
		scope := pass.Pkg.Scope()
		for _, name := range scope.Names() {
			if fn, ok := scope.Lookup(name).(*types.Func); ok && strings.HasPrefix(name, "Tainted") {
				pass.ExportObjectFact(fn, &probeFact{Origin: pass.Pkg.Path() + "." + name})
			}
		}
		for id, obj := range pass.TypesInfo.Uses {
			fn, ok := obj.(*types.Func)
			if !ok {
				continue
			}
			var f probeFact
			if pass.ImportObjectFact(fn, &f) {
				pass.Reportf(id.Pos(), "use of tainted function (origin %s)", f.Origin)
			}
		}
		return nil
	},
}

// failingImporter rejects every import; packages without imports never ask.
type failingImporter struct{}

func (failingImporter) Import(path string) (*types.Package, error) {
	panic("unexpected import " + path)
}

// mapImporter resolves imports from checked packages.
type mapImporter map[string]*types.Package

func (m mapImporter) Import(path string) (*types.Package, error) {
	if p, ok := m[path]; ok {
		return p, nil
	}
	panic("unexpected import " + path)
}

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestUnitFactsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	const aPath = "github.com/codsearch/cod/internal/analysis/fakeunit/a"
	const bPath = "github.com/codsearch/cod/internal/analysis/fakeunit/b"

	aGo := writeFile(t, dir, "a.go", `package a

// TaintedClock is the fact-bearing function.
func TaintedClock() int64 { return 42 }

// Clean carries no fact.
func Clean() int64 { return 7 }
`)
	aVetx := filepath.Join(dir, "a.vetx")
	fsetA, diagsA, err := runUnit(&unitConfig{
		ImportPath: aPath,
		GoFiles:    []string{aGo},
		VetxOnly:   true, // the dependency role: facts only
		VetxOutput: aVetx,
	}, []*Analyzer{probeAnalyzer}, failingImporter{})
	if err != nil {
		t.Fatalf("unit A: %v", err)
	}
	if len(diagsA) != 0 {
		t.Fatalf("unit A (VetxOnly) returned diagnostics: %v", diagsA)
	}
	_ = fsetA
	data, err := os.ReadFile(aVetx)
	if err != nil {
		t.Fatalf("unit A wrote no facts file: %v", err)
	}
	if !strings.Contains(string(data), "TaintedClock") || !strings.Contains(string(data), "analysis.probeFact") {
		t.Fatalf("facts file does not carry the exported fact: %s", data)
	}
	if strings.Contains(string(data), `"Clean"`) {
		t.Fatalf("facts file carries a fact for the clean function: %s", data)
	}

	// Check B against A through the wire: a fresh type-check of A (as the
	// export-data importer would produce) plus A's serialized facts.
	pkgA := checkPackage(t, aPath, aGo)
	bGo := writeFile(t, dir, "b.go", `package b

import "`+aPath+`"

func Use() int64 { return a.TaintedClock() + a.Clean() }
`)
	bVetx := filepath.Join(dir, "b.vetx")
	fsetB, diagsB, err := runUnit(&unitConfig{
		ImportPath:  bPath,
		GoFiles:     []string{bGo},
		ImportMap:   map[string]string{aPath: aPath},
		PackageVetx: map[string]string{aPath: aVetx},
		VetxOutput:  bVetx,
	}, []*Analyzer{probeAnalyzer}, mapImporter{aPath: pkgA})
	if err != nil {
		t.Fatalf("unit B: %v", err)
	}
	if len(diagsB) != 1 {
		t.Fatalf("unit B diagnostics = %v, want exactly one (the TaintedClock call)", diagsB)
	}
	if want := "use of tainted function (origin " + aPath + ".TaintedClock)"; diagsB[0].Message != want {
		t.Fatalf("unit B diagnostic = %q, want %q", diagsB[0].Message, want)
	}
	pos := fsetB.Position(diagsB[0].Pos)
	if filepath.Base(pos.Filename) != "b.go" {
		t.Fatalf("diagnostic anchored at %s, want b.go", pos)
	}

	// B's facts file re-exports A's fact (the transitive closure).
	dataB, err := os.ReadFile(bVetx)
	if err != nil {
		t.Fatalf("unit B wrote no facts file: %v", err)
	}
	if !strings.Contains(string(dataB), "TaintedClock") {
		t.Fatalf("unit B's facts file does not re-export the imported fact: %s", dataB)
	}
}

// checkPackage type-checks one import-free file as the package the
// dependent unit will import.
func checkPackage(t *testing.T, path, file string) *types.Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parseTestFile(fset, file)
	if err != nil {
		t.Fatal(err)
	}
	tc := &types.Config{Importer: failingImporter{}}
	pkg, err := tc.Check(path, fset, f, NewInfo())
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

func TestUnitMalformedConfig(t *testing.T) {
	dir := t.TempDir()
	cfg := writeFile(t, dir, "bad.cfg", "this is { not JSON")
	_, _, err := runUnitFile(cfg, []*Analyzer{probeAnalyzer})
	if err == nil || !strings.Contains(err.Error(), "cannot decode vet config") {
		t.Fatalf("malformed config error = %v, want decode failure", err)
	}
}

func TestUnitMalformedFactsFile(t *testing.T) {
	dir := t.TempDir()
	aGo := writeFile(t, dir, "a.go", "package a\n\nfunc F() {}\n")
	vetx := writeFile(t, dir, "dep.vetx", "{broken json")
	_, _, err := runUnit(&unitConfig{
		ImportPath:  "github.com/codsearch/cod/internal/analysis/fakeunit/c",
		GoFiles:     []string{aGo},
		PackageVetx: map[string]string{"dep": vetx},
		VetxOutput:  filepath.Join(dir, "c.vetx"),
	}, []*Analyzer{probeAnalyzer}, failingImporter{})
	if err == nil || !strings.Contains(err.Error(), "malformed facts file") {
		t.Fatalf("malformed facts error = %v, want decode failure", err)
	}
}

func TestUnitEmptyFactsFileAccepted(t *testing.T) {
	// PR-1-era codvet wrote zero-byte facts files; cached builds may still
	// hand them to the new driver.
	dir := t.TempDir()
	aGo := writeFile(t, dir, "a.go", "package a\n\nfunc F() {}\n")
	vetx := writeFile(t, dir, "dep.vetx", "")
	_, diags, err := runUnit(&unitConfig{
		ImportPath:  "github.com/codsearch/cod/internal/analysis/fakeunit/d",
		GoFiles:     []string{aGo},
		PackageVetx: map[string]string{"dep": vetx},
		VetxOutput:  filepath.Join(dir, "d.vetx"),
	}, []*Analyzer{probeAnalyzer}, failingImporter{})
	if err != nil {
		t.Fatalf("empty facts file rejected: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("unexpected diagnostics: %v", diags)
	}
}

func TestUnitOutOfScopeVetxOnlySkipsAnalysis(t *testing.T) {
	dir := t.TempDir()
	// GoFiles deliberately unparsable: if the driver tried to analyze this
	// out-of-scope unit the test would fail, proving the fast path.
	bad := writeFile(t, dir, "bad.go", "not go at all")
	out := filepath.Join(dir, "std.vetx")
	_, diags, err := runUnit(&unitConfig{
		ImportPath: "fmt",
		GoFiles:    []string{bad},
		VetxOnly:   true,
		VetxOutput: out,
	}, []*Analyzer{probeAnalyzer}, failingImporter{})
	if err != nil {
		t.Fatalf("out-of-scope VetxOnly unit errored: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("unexpected diagnostics: %v", diags)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("facts file not written for out-of-scope unit: %v", err)
	}
}
