// Package unusedignoretest exercises the meta-check alongside a real
// analyzer (maporder): a directive that earns its keep stays silent, a
// stale one and a typo are reported.
package unusedignoretest

// used ranges over a map in a way maporder flags; the directive suppresses
// that diagnostic, so it is not stale.
func used(m map[string]int) []string {
	var out []string
	for k := range m { //codvet:ignore maporder fixture: deliberately order-dependent
		out = append(out, k)
	}
	return out
}

// stale has nothing for maporder to object to.
func stale(x int) int {
	//codvet:ignore maporder left behind by a refactor // want `codvet:ignore maporder suppresses no diagnostic`
	return x + 1
}

// typo names an analyzer that was never registered.
func typo(x int) int {
	//codvet:ignore mapodrer transposed letters // want `codvet:ignore names unknown analyzer "mapodrer"`
	return x
}
