// Package unusedignore is codvet's meta-check: a //codvet:ignore directive
// that suppresses no diagnostic is itself a diagnostic.
//
// Ignore directives are point-in-time waivers. The code they excused gets
// refactored, the analyzer gets smarter, and the directive lingers —
// silently waiving whatever future diagnostic happens to land on its line.
// A directive that no longer earns its keep must be deleted while the
// context is still known, not discovered years later shielding a real bug.
// Directives naming an analyzer that does not exist (typos, removed
// checks) never worked at all and are reported the same way.
//
// The check runs last in every codvet invocation (the driver orders it
// after all other analyzers, so the used/unused state is final) and audits
// the directives recorded by the pass. Directives in _test.go files are
// skipped, matching the analyzers themselves. Its own reports cannot be
// suppressed by an ignore directive — a stale ignore must not be able to
// excuse itself.
package unusedignore

import (
	"github.com/codsearch/cod/internal/analysis"
)

// New builds the meta-check. known lists every analyzer name registered in
// the running tool; directives naming anything else are typos.
func New(known ...string) *analysis.Analyzer {
	names := map[string]bool{"all": true}
	for _, n := range known {
		names[n] = true
	}
	return &analysis.Analyzer{
		Name: "unusedignore",
		Doc:  "report //codvet:ignore directives that suppress no diagnostics or name unknown analyzers",
		Run: func(pass *analysis.Pass) error {
			for _, d := range pass.IgnoreDirectives() {
				if pass.IsTestFile(d.Pos) {
					continue
				}
				if !names[d.Analyzer] {
					pass.Reportf(d.Pos,
						"codvet:ignore names unknown analyzer %q; fix the name or delete the directive", d.Analyzer)
					continue
				}
				if !d.Used {
					pass.Reportf(d.Pos,
						"codvet:ignore %s suppresses no diagnostic; delete the stale directive", d.Analyzer)
				}
			}
			return nil
		},
	}
}
