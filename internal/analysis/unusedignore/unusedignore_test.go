package unusedignore_test

import (
	"testing"

	"github.com/codsearch/cod/internal/analysis"
	"github.com/codsearch/cod/internal/analysis/analysistest"
	"github.com/codsearch/cod/internal/analysis/maporder"
	"github.com/codsearch/cod/internal/analysis/unusedignore"
)

// The meta-check only means something next to a real analyzer: maporder
// supplies the diagnostic the used directive suppresses.
func TestUnusedIgnore(t *testing.T) {
	analysistest.RunAnalyzers(t, analysistest.TestData(t),
		[]*analysis.Analyzer{maporder.Analyzer, unusedignore.New("maporder")},
		"unusedignoretest")
}
