// Package blobstore is the artifact-distribution layer of the COD serving
// stack: a pluggable Store interface (local filesystem now, S3/GCS-shaped
// later) over which one offline builder publishes index snapshots and every
// serving replica fetches them, plus the integrity machinery that makes the
// exchange safe under partial failure — per-artifact CRC-32s recorded in a
// manifest, a params hash pinning the offline semantics, read-back
// verification on publish, and bounded deterministic retries on fetch.
//
// Layout under a store (keys are slash-separated, one namespace per
// dataset):
//
//	<dataset>/CURRENT                                   -> Current (JSON)
//	<dataset>/epoch-<%016x epoch>-<params-hash>/manifest.json
//	<dataset>/epoch-<%016x epoch>-<params-hash>/<artifact>
//
// Epochs are immutable once published: a publisher writes every artifact,
// verifies each by reading it back, writes the manifest, and only then
// atomically replaces CURRENT. A fetcher therefore either observes the old
// epoch or the complete new one — never a torn mix — and every byte it
// trusts has passed a CRC check first (DESIGN.md §15).
package blobstore

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
)

// ErrNotExist reports a key absent from the store. Fetch helpers do not
// retry it: absence is state, not a transient fault.
var ErrNotExist = errors.New("blobstore: key does not exist")

// ErrVerify reports content that failed integrity verification: a CRC or
// size mismatch against the manifest, or a params hash that does not match
// the params it claims to summarize. Fetch helpers do retry it — read-side
// corruption (a bit flip on the wire or medium) can be transient — but a
// verify failure never propagates unverified bytes to the caller.
var ErrVerify = errors.New("blobstore: verification failed")

// Store is the minimal blob interface the distribution layer needs. Keys
// are slash-separated paths of safe segments (see ValidKey). Implementations
// must make Put atomic: a crash mid-Put leaves either the old value or no
// value, never a partial one readers can observe. All methods must be safe
// for concurrent use.
type Store interface {
	// Put atomically publishes the full contents of r under key,
	// replacing any existing value.
	Put(ctx context.Context, key string, r io.Reader) error
	// Open returns a reader for key's content. The caller must Close it.
	// A missing key reports ErrNotExist (possibly wrapped).
	Open(ctx context.Context, key string) (io.ReadCloser, error)
	// List returns the keys under prefix in lexicographic order.
	List(ctx context.Context, prefix string) ([]string, error)
	// Delete removes key. Deleting a missing key reports ErrNotExist.
	Delete(ctx context.Context, key string) error
}

// ValidSegment reports whether s may be used as one path segment of a store
// key (a dataset name or artifact name): non-empty, and only ASCII letters,
// digits, '.', '_' and '-', never "." or "..". The character set is the
// intersection of what POSIX filesystems and S3-style object stores accept
// without escaping.
func ValidSegment(s string) bool {
	if s == "" || s == "." || s == ".." {
		return false
	}
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// ValidKey reports whether key is a well-formed store key: one or more
// valid segments joined by '/'.
func ValidKey(key string) bool {
	if key == "" {
		return false
	}
	for _, seg := range strings.Split(key, "/") {
		if !ValidSegment(seg) {
			return false
		}
	}
	return true
}

// CurrentKey returns the key of the dataset's CURRENT pointer.
func CurrentKey(dataset string) string { return dataset + "/CURRENT" }

// EpochPrefix returns the key prefix under which one epoch's artifacts and
// manifest live.
func EpochPrefix(dataset string, epoch uint64, paramsHash string) string {
	return fmt.Sprintf("%s/epoch-%016x-%s", dataset, epoch, paramsHash)
}

// ManifestKey returns the key of one epoch's manifest.
func ManifestKey(dataset string, epoch uint64, paramsHash string) string {
	return EpochPrefix(dataset, epoch, paramsHash) + "/manifest.json"
}

// ArtifactKey returns the key of one named artifact within an epoch.
func ArtifactKey(dataset string, epoch uint64, paramsHash, name string) string {
	return EpochPrefix(dataset, epoch, paramsHash) + "/" + name
}
