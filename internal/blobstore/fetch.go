package blobstore

import (
	"context"
	"fmt"
	"hash/crc32"
	"io"
)

// FetchCurrent reads and validates the dataset's CURRENT pointer under
// pol's bounded retries. A dataset nothing was ever published to reports
// ErrNotExist (not retried).
func FetchCurrent(ctx context.Context, s Store, dataset string, pol RetryPolicy) (Current, error) {
	var cur Current
	err := pol.Do(ctx, "fetch CURRENT "+dataset, func(ctx context.Context) error {
		b, err := readAll(ctx, s, CurrentKey(dataset), 1<<20)
		if err != nil {
			return err
		}
		cur, err = DecodeCurrent(b)
		return err
	})
	if err != nil {
		return Current{}, err
	}
	return cur, nil
}

// FetchManifest reads the manifest cur references, verifying its CRC-32
// against the one CURRENT recorded and its identity (epoch, params hash,
// recomputed params hash) against cur, under pol's bounded retries. A torn
// or stale CURRENT/manifest pair can therefore never yield a manifest.
func FetchManifest(ctx context.Context, s Store, cur Current, pol RetryPolicy) (*Manifest, error) {
	var m *Manifest
	err := pol.Do(ctx, "fetch "+cur.ManifestKey, func(ctx context.Context) error {
		b, err := readAll(ctx, s, cur.ManifestKey, 64<<20)
		if err != nil {
			return err
		}
		if got := crc32.ChecksumIEEE(b); got != cur.ManifestCRC {
			return fmt.Errorf("%w: manifest %s crc %08x, CURRENT records %08x",
				ErrVerify, cur.ManifestKey, got, cur.ManifestCRC)
		}
		m, err = DecodeManifest(b) // validates ParamsHash == Params.Hash()
		if err != nil {
			return err
		}
		if m.Epoch != cur.Epoch || m.ParamsHash != cur.ParamsHash {
			return fmt.Errorf("%w: manifest %s is epoch %d hash %s, CURRENT names epoch %d hash %s",
				ErrVerify, cur.ManifestKey, m.Epoch, m.ParamsHash, cur.Epoch, cur.ParamsHash)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}

// FetchArtifact reads one manifest-listed artifact, verifying its size and
// CRC-32 against the manifest entry under pol's bounded retries. The
// returned bytes have always passed verification; corruption surfaces as an
// ErrVerify-wrapped error after the retry budget, never as data.
func FetchArtifact(ctx context.Context, s Store, m *Manifest, name string, pol RetryPolicy) ([]byte, error) {
	a, err := m.Artifact(name)
	if err != nil {
		return nil, err
	}
	key := ArtifactKey(m.Dataset, m.Epoch, m.ParamsHash, a.Name)
	var payload []byte
	err = pol.Do(ctx, "fetch "+key, func(ctx context.Context) error {
		b, err := readAll(ctx, s, key, a.Bytes+1)
		if err != nil {
			return err
		}
		if int64(len(b)) != a.Bytes {
			return fmt.Errorf("%w: artifact %s has %d bytes, manifest records %d",
				ErrVerify, key, len(b), a.Bytes)
		}
		if got := crc32.ChecksumIEEE(b); got != a.CRC32 {
			return fmt.Errorf("%w: artifact %s crc %08x, manifest records %08x",
				ErrVerify, key, got, a.CRC32)
		}
		payload = b
		return nil
	})
	if err != nil {
		return nil, err
	}
	return payload, nil
}

// readAll opens key and reads at most limit+1 bytes (so oversize content is
// detected without unbounded allocation), closing the reader either way.
func readAll(ctx context.Context, s Store, key string, limit int64) ([]byte, error) {
	rc, err := s.Open(ctx, key)
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	b, err := io.ReadAll(io.LimitReader(rc, limit+1))
	if err != nil {
		return nil, fmt.Errorf("blobstore: reading %s: %w", key, err)
	}
	if int64(len(b)) > limit {
		return nil, fmt.Errorf("%w: %s exceeds %d bytes", ErrVerify, key, limit)
	}
	return b, nil
}
