package blobstore

import (
	"context"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Hooks are the FS store's fault-injection seam, consulted on every
// operation. Production stores carry the zero value (no overhead beyond a
// nil check); tests wire internal/faultfs wrappers through them to model
// torn writes, fsync failures, transport errors, and read-side bit rot
// deterministically. All hook functions must be safe for concurrent use.
type Hooks struct {
	// BeforeOp, when non-nil, runs before each operation ("put", "open",
	// "list", "delete") and may fail it outright — a transport-level fault.
	BeforeOp func(op, key string) error
	// WrapWriter, when non-nil, wraps the writer a Put streams into — the
	// seam for short and torn writes.
	WrapWriter func(key string, w io.Writer) io.Writer
	// WrapReader, when non-nil, wraps the reader an Open returns — the seam
	// for read corruption and truncation.
	WrapReader func(key string, r io.Reader) io.Reader
	// SyncError, when non-nil, may inject a failure at Put's fsync point
	// (after the bytes were written, before the atomic rename).
	SyncError func(key string) error
}

// FS is a local-filesystem Store rooted at a directory. Put is atomic
// (temp file + fsync + rename, the same discipline as SaveIndexAtomic), so
// concurrent readers observe either the previous blob or the complete new
// one. FS is the reference Store implementation; an S3 or GCS store slots
// in behind the same interface with conditional-put in place of rename.
type FS struct {
	root  string
	hooks Hooks
}

// NewFS returns an FS store rooted at dir (created if missing).
func NewFS(dir string) (*FS, error) {
	return NewFSWithHooks(dir, Hooks{})
}

// stagingDir is where in-flight Put temp files live: inside the store (so
// the final rename stays on one filesystem and atomic) but outside the key
// namespace, so a crashed Put can never surface as a listable key.
const stagingDir = ".staging"

// NewFSWithHooks is NewFS with a fault-injection seam; see Hooks.
func NewFSWithHooks(dir string, hooks Hooks) (*FS, error) {
	if err := os.MkdirAll(filepath.Join(dir, stagingDir), 0o755); err != nil {
		return nil, fmt.Errorf("blobstore: creating store root: %w", err)
	}
	return &FS{root: dir, hooks: hooks}, nil
}

// Root returns the store's root directory.
func (s *FS) Root() string { return s.root }

// path maps a validated key onto the filesystem.
func (s *FS) path(key string) (string, error) {
	if !ValidKey(key) {
		return "", fmt.Errorf("blobstore: invalid key %q", key)
	}
	return filepath.Join(s.root, filepath.FromSlash(key)), nil
}

// Put implements Store. The blob is streamed into a temp file in the target
// directory, fsynced, and renamed over the key — a crash or injected fault
// at any point leaves either the old blob or no blob, never a readable
// partial.
func (s *FS) Put(ctx context.Context, key string, r io.Reader) (err error) {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.hooks.BeforeOp != nil {
		if err := s.hooks.BeforeOp("put", key); err != nil {
			return err
		}
	}
	dir := filepath.Dir(p)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("blobstore: creating %s: %w", key, err)
	}
	tmp, err := os.CreateTemp(filepath.Join(s.root, stagingDir), filepath.Base(p)+".*")
	if err != nil {
		return fmt.Errorf("blobstore: creating temp for %s: %w", key, err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	var w io.Writer = tmp
	if s.hooks.WrapWriter != nil {
		w = s.hooks.WrapWriter(key, w)
	}
	if _, err = io.Copy(w, r); err != nil {
		return fmt.Errorf("blobstore: writing %s: %w", key, err)
	}
	if s.hooks.SyncError != nil {
		if serr := s.hooks.SyncError(key); serr != nil {
			err = fmt.Errorf("blobstore: syncing %s: %w", key, serr)
			return err
		}
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("blobstore: syncing %s: %w", key, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("blobstore: closing %s: %w", key, err)
	}
	if err = os.Rename(tmp.Name(), p); err != nil {
		return fmt.Errorf("blobstore: publishing %s: %w", key, err)
	}
	// Sync the directory so the rename survives a crash; filesystems that
	// reject directory fsync still rename atomically, so failure here is
	// not fatal.
	if d, dErr := os.Open(dir); dErr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// hookedReader threads a wrapped reader over the file's Close.
type hookedReader struct {
	io.Reader
	c io.Closer
}

func (h hookedReader) Close() error { return h.c.Close() }

// Open implements Store.
func (s *FS) Open(ctx context.Context, key string) (io.ReadCloser, error) {
	p, err := s.path(key)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.hooks.BeforeOp != nil {
		if err := s.hooks.BeforeOp("open", key); err != nil {
			return nil, err
		}
	}
	f, err := os.Open(p)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNotExist, key)
		}
		return nil, fmt.Errorf("blobstore: opening %s: %w", key, err)
	}
	if s.hooks.WrapReader != nil {
		return hookedReader{Reader: s.hooks.WrapReader(key, f), c: f}, nil
	}
	return f, nil
}

// List implements Store: all keys under prefix, sorted.
func (s *FS) List(ctx context.Context, prefix string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.hooks.BeforeOp != nil {
		if err := s.hooks.BeforeOp("list", prefix); err != nil {
			return nil, err
		}
	}
	var keys []string
	err := filepath.WalkDir(s.root, func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, err := filepath.Rel(s.root, p)
		if err != nil {
			return err
		}
		key := filepath.ToSlash(rel)
		if strings.HasPrefix(key, stagingDir+"/") {
			return nil
		}
		if strings.HasPrefix(key, prefix) && ValidKey(key) {
			keys = append(keys, key)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("blobstore: listing %s: %w", prefix, err)
	}
	sort.Strings(keys)
	return keys, nil
}

// Delete implements Store.
func (s *FS) Delete(ctx context.Context, key string) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.hooks.BeforeOp != nil {
		if err := s.hooks.BeforeOp("delete", key); err != nil {
			return err
		}
	}
	if err := os.Remove(p); err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("%w: %s", ErrNotExist, key)
		}
		return fmt.Errorf("blobstore: deleting %s: %w", key, err)
	}
	return nil
}
