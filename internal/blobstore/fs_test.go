package blobstore

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/codsearch/cod/internal/faultfs"
)

func fsStore(t *testing.T) *FS {
	t.Helper()
	s, err := NewFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func putStr(t *testing.T, s Store, key, val string) {
	t.Helper()
	if err := s.Put(context.Background(), key, strings.NewReader(val)); err != nil {
		t.Fatalf("Put %s: %v", key, err)
	}
}

func getStr(t *testing.T, s Store, key string) string {
	t.Helper()
	rc, err := s.Open(context.Background(), key)
	if err != nil {
		t.Fatalf("Open %s: %v", key, err)
	}
	defer rc.Close()
	b, err := io.ReadAll(rc)
	if err != nil {
		t.Fatalf("read %s: %v", key, err)
	}
	return string(b)
}

func TestFSPutOpenRoundTrip(t *testing.T) {
	s := fsStore(t)
	putStr(t, s, "ds/epoch-1-x/blob", "hello")
	if got := getStr(t, s, "ds/epoch-1-x/blob"); got != "hello" {
		t.Fatalf("got %q", got)
	}
	// Overwrite replaces atomically.
	putStr(t, s, "ds/epoch-1-x/blob", "world")
	if got := getStr(t, s, "ds/epoch-1-x/blob"); got != "world" {
		t.Fatalf("after overwrite: %q", got)
	}
}

func TestFSOpenDeleteMissing(t *testing.T) {
	s := fsStore(t)
	if _, err := s.Open(context.Background(), "ds/none"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Open missing: %v", err)
	}
	if err := s.Delete(context.Background(), "ds/none"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Delete missing: %v", err)
	}
	putStr(t, s, "ds/some", "x")
	if err := s.Delete(context.Background(), "ds/some"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := s.Open(context.Background(), "ds/some"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Open after delete: %v", err)
	}
}

func TestFSRejectsInvalidKeys(t *testing.T) {
	s := fsStore(t)
	for _, key := range []string{"", "../escape", "a/../b", "a//b", "/abs", "a b"} {
		if err := s.Put(context.Background(), key, strings.NewReader("x")); err == nil {
			t.Errorf("Put %q accepted", key)
		}
		if _, err := s.Open(context.Background(), key); err == nil {
			t.Errorf("Open %q accepted", key)
		}
	}
}

func TestFSList(t *testing.T) {
	s := fsStore(t)
	putStr(t, s, "ds/epoch-1-x/b", "1")
	putStr(t, s, "ds/epoch-1-x/a", "2")
	putStr(t, s, "ds/CURRENT", "3")
	putStr(t, s, "other/epoch-1-x/a", "4")
	got, err := s.List(context.Background(), "ds/")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"ds/CURRENT", "ds/epoch-1-x/a", "ds/epoch-1-x/b"}
	if len(got) != len(want) {
		t.Fatalf("List = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("List = %v, want %v", got, want)
		}
	}
}

func TestFSFailedPutLeavesNoTrace(t *testing.T) {
	// A Put that dies mid-write must neither replace the old value nor leak
	// a temp file into List — the atomicity contract under torn writes.
	fail := errors.New("disk died")
	s, err := NewFSWithHooks(t.TempDir(), Hooks{
		WrapWriter: func(key string, w io.Writer) io.Writer {
			if strings.HasSuffix(key, "/victim") {
				return &faultfs.ErrWriter{W: w, FailAfter: 2, Err: fail}
			}
			return w
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	putStr(t, s, "ds/other", "keep")
	if err := s.Put(context.Background(), "ds/victim", strings.NewReader("doomed")); !errors.Is(err, fail) {
		t.Fatalf("Put: %v, want injected fault", err)
	}
	if _, err := s.Open(context.Background(), "ds/victim"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("victim visible after failed Put: %v", err)
	}
	keys, err := s.List(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != "ds/other" {
		t.Fatalf("List after failed Put = %v", keys)
	}
	// And no temp file lingers in staging.
	ents, err := os.ReadDir(filepath.Join(s.Root(), stagingDir))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("staging dir not empty: %v", ents)
	}
}

func TestFSSyncErrorAborts(t *testing.T) {
	fail := errors.New("fsync: I/O error")
	s, err := NewFSWithHooks(t.TempDir(), Hooks{
		SyncError: func(key string) error { return fail },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(context.Background(), "ds/k", strings.NewReader("x")); !errors.Is(err, fail) {
		t.Fatalf("Put: %v", err)
	}
	if _, err := s.Open(context.Background(), "ds/k"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("blob visible after failed fsync: %v", err)
	}
}

func TestFSBeforeOpFaults(t *testing.T) {
	fail := errors.New("transport down")
	deny := true
	s, err := NewFSWithHooks(t.TempDir(), Hooks{
		BeforeOp: func(op, key string) error {
			if deny {
				return fail
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := s.Put(ctx, "ds/k", strings.NewReader("x")); !errors.Is(err, fail) {
		t.Fatalf("Put: %v", err)
	}
	if _, err := s.Open(ctx, "ds/k"); !errors.Is(err, fail) {
		t.Fatalf("Open: %v", err)
	}
	if _, err := s.List(ctx, "ds/"); !errors.Is(err, fail) {
		t.Fatalf("List: %v", err)
	}
	if err := s.Delete(ctx, "ds/k"); !errors.Is(err, fail) {
		t.Fatalf("Delete: %v", err)
	}
	deny = false
	putStr(t, s, "ds/k", "x")
	if got := getStr(t, s, "ds/k"); got != "x" {
		t.Fatalf("after heal: %q", got)
	}
}

func TestFSWrapReaderCorruption(t *testing.T) {
	s, err := NewFSWithHooks(t.TempDir(), Hooks{
		WrapReader: func(key string, r io.Reader) io.Reader {
			return &faultfs.FlipReader{R: r, Offset: 1, Mask: 0x80}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	putStr(t, s, "ds/k", "abc")
	// The write path read nothing; the read path sees the flipped byte.
	got := getStr(t, s, "ds/k")
	want := string([]byte{'a', 'b' ^ 0x80, 'c'})
	if got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestFSContextCancelled(t *testing.T) {
	s := fsStore(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Put(ctx, "ds/k", strings.NewReader("x")); !errors.Is(err, context.Canceled) {
		t.Fatalf("Put: %v", err)
	}
	if _, err := s.Open(ctx, "ds/k"); !errors.Is(err, context.Canceled) {
		t.Fatalf("Open: %v", err)
	}
	if _, err := s.List(ctx, ""); !errors.Is(err, context.Canceled) {
		t.Fatalf("List: %v", err)
	}
	if err := s.Delete(ctx, "ds/k"); !errors.Is(err, context.Canceled) {
		t.Fatalf("Delete: %v", err)
	}
}

func TestFSPutConcurrentSameKey(t *testing.T) {
	// Concurrent Puts to one key must each leave a complete value; readers
	// never observe a mix. (Run under -race this also proves data-race
	// freedom of the staging scheme.)
	s := fsStore(t)
	const writers = 8
	done := make(chan error, writers)
	for i := 0; i < writers; i++ {
		val := bytes.Repeat([]byte{byte('a' + i)}, 4096)
		go func() {
			done <- s.Put(context.Background(), "ds/k", bytes.NewReader(val))
		}()
	}
	for i := 0; i < writers; i++ {
		if err := <-done; err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	got := getStr(t, s, "ds/k")
	if len(got) != 4096 {
		t.Fatalf("len = %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] != got[0] {
			t.Fatalf("torn value: byte %d is %q, byte 0 is %q", i, got[i], got[0])
		}
	}
}
