package blobstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
)

// ParamsSpec records the offline parameters an index snapshot was built
// with, in a representation that round-trips exactly through JSON: Beta is
// carried as its IEEE-754 bits, so the hash and the later header comparison
// at load time agree bit-for-bit with the builder's value. Nodes pins the
// graph the index spans.
type ParamsSpec struct {
	K        int    `json:"k"`
	Theta    int    `json:"theta"`
	BetaBits uint64 `json:"beta_bits"`
	Linkage  int    `json:"linkage"`
	Model    int    `json:"model"`
	Balanced bool   `json:"balanced"`
	Seed     uint64 `json:"seed"`
	Nodes    int64  `json:"nodes"`
}

// Hash returns the params hash: 16 hex characters of SHA-256 over the
// canonical fixed-width little-endian encoding of every field. The hash
// names the epoch's key prefix and is re-derived from the fetched manifest
// before any swap, so a replica can never adopt an index whose recorded
// semantics disagree with the manifest that delivered it.
func (p ParamsSpec) Hash() string {
	var buf [57]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(int64(p.K)))
	binary.LittleEndian.PutUint64(buf[8:], uint64(int64(p.Theta)))
	binary.LittleEndian.PutUint64(buf[16:], p.BetaBits)
	binary.LittleEndian.PutUint64(buf[24:], uint64(int64(p.Linkage)))
	binary.LittleEndian.PutUint64(buf[32:], uint64(int64(p.Model)))
	if p.Balanced {
		buf[40] = 1
	}
	binary.LittleEndian.PutUint64(buf[41:], p.Seed)
	binary.LittleEndian.PutUint64(buf[49:], uint64(p.Nodes))
	sum := sha256.Sum256(buf[:])
	return hex.EncodeToString(sum[:8])
}

// Artifact is one named blob of an epoch, with the size and CRC-32 (IEEE)
// the fetcher must observe before trusting the content.
type Artifact struct {
	Name  string `json:"name"`
	Bytes int64  `json:"bytes"`
	CRC32 uint32 `json:"crc32"`
}

// Manifest describes one published epoch: which dataset and epoch it is,
// the offline parameters (and their hash) the artifacts were built under,
// and the artifact inventory with per-artifact integrity data.
type Manifest struct {
	Dataset    string     `json:"dataset"`
	Epoch      uint64     `json:"epoch"`
	ParamsHash string     `json:"params_hash"`
	Params     ParamsSpec `json:"params"`
	Artifacts  []Artifact `json:"artifacts"`
}

// Current is the content of a dataset's CURRENT pointer: the epoch serving
// replicas should converge to, plus the manifest's key and CRC so a torn or
// stale CURRENT/manifest pair is detected before any artifact is fetched.
type Current struct {
	Epoch       uint64 `json:"epoch"`
	ParamsHash  string `json:"params_hash"`
	ManifestKey string `json:"manifest_key"`
	ManifestCRC uint32 `json:"manifest_crc32"`
}

// Validate checks the manifest's internal consistency: well-formed dataset
// and artifact names, a nonzero epoch, a params hash that matches the
// recorded params, and a duplicate-free artifact inventory with sane sizes.
func (m *Manifest) Validate() error {
	if !ValidSegment(m.Dataset) {
		return fmt.Errorf("%w: bad dataset name %q", ErrVerify, m.Dataset)
	}
	if m.Epoch == 0 {
		return fmt.Errorf("%w: epoch 0 is reserved (epochs start at 1)", ErrVerify)
	}
	if got := m.Params.Hash(); got != m.ParamsHash {
		return fmt.Errorf("%w: params hash %s, recorded params hash to %s", ErrVerify, m.ParamsHash, got)
	}
	if len(m.Artifacts) == 0 {
		return fmt.Errorf("%w: manifest lists no artifacts", ErrVerify)
	}
	seen := make(map[string]bool, len(m.Artifacts))
	for _, a := range m.Artifacts {
		if !ValidSegment(a.Name) || a.Name == "manifest.json" || a.Name == "CURRENT" {
			return fmt.Errorf("%w: bad artifact name %q", ErrVerify, a.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("%w: duplicate artifact %q", ErrVerify, a.Name)
		}
		seen[a.Name] = true
		if a.Bytes < 0 {
			return fmt.Errorf("%w: artifact %q has negative size %d", ErrVerify, a.Name, a.Bytes)
		}
	}
	return nil
}

// Artifact returns the inventory entry named name, or an ErrVerify-wrapped
// error when the manifest does not list it.
func (m *Manifest) Artifact(name string) (Artifact, error) {
	for _, a := range m.Artifacts {
		if a.Name == name {
			return a, nil
		}
	}
	return Artifact{}, fmt.Errorf("%w: manifest for %s epoch %d lists no artifact %q",
		ErrVerify, m.Dataset, m.Epoch, name)
}

// Encode renders the manifest as canonical JSON (fixed field order, indented
// for human inspection in the store). The CRC-32 of these exact bytes is
// what CURRENT records as ManifestCRC.
func (m *Manifest) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("blobstore: encoding manifest: %w", err)
	}
	return append(b, '\n'), nil
}

// DecodeManifest parses and validates manifest bytes. Unknown fields are
// rejected: a manifest from a newer, incompatible writer must fail loudly
// here rather than half-load.
func DecodeManifest(b []byte) (*Manifest, error) {
	var m Manifest
	if err := strictUnmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("%w: decoding manifest: %v", ErrVerify, err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Encode renders the CURRENT pointer as canonical JSON.
func (c Current) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("blobstore: encoding CURRENT: %w", err)
	}
	return append(b, '\n'), nil
}

// DecodeCurrent parses and validates CURRENT bytes.
func DecodeCurrent(b []byte) (Current, error) {
	var c Current
	if err := strictUnmarshal(b, &c); err != nil {
		return Current{}, fmt.Errorf("%w: decoding CURRENT: %v", ErrVerify, err)
	}
	if c.Epoch == 0 {
		return Current{}, fmt.Errorf("%w: CURRENT names epoch 0", ErrVerify)
	}
	if !ValidKey(c.ManifestKey) {
		return Current{}, fmt.Errorf("%w: CURRENT names bad manifest key %q", ErrVerify, c.ManifestKey)
	}
	return c, nil
}

// CurrentFor derives the CURRENT pointer publishing m would install.
// manifestBytes must be m.Encode()'s output (its CRC is recorded).
func CurrentFor(m *Manifest, manifestBytes []byte) Current {
	return Current{
		Epoch:       m.Epoch,
		ParamsHash:  m.ParamsHash,
		ManifestKey: ManifestKey(m.Dataset, m.Epoch, m.ParamsHash),
		ManifestCRC: crc32.ChecksumIEEE(manifestBytes),
	}
}

// strictUnmarshal is json.Unmarshal with unknown fields rejected.
func strictUnmarshal(b []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	// A second document in the stream is as suspect as an unknown field.
	if dec.More() {
		return fmt.Errorf("trailing data after JSON document")
	}
	return nil
}
