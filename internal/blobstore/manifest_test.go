package blobstore

import (
	"errors"
	"hash/crc32"
	"strings"
	"testing"
)

func testParams() ParamsSpec {
	return ParamsSpec{
		K: 8, Theta: 3, BetaBits: 0x3fe0000000000000, // 0.5
		Linkage: 1, Model: 2, Balanced: true, Seed: 42, Nodes: 120,
	}
}

func testManifest(t *testing.T) (*Manifest, []byte) {
	t.Helper()
	m := &Manifest{
		Dataset:    "tiny",
		Epoch:      3,
		ParamsHash: testParams().Hash(),
		Params:     testParams(),
		Artifacts: []Artifact{
			{Name: "graph.codg", Bytes: 100, CRC32: 0xdeadbeef},
			{Name: "index.codindx2", Bytes: 2048, CRC32: 0x01020304},
		},
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("fixture manifest invalid: %v", err)
	}
	b, err := m.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return m, b
}

func TestParamsHashStable(t *testing.T) {
	// The hash is part of the on-store key layout; it must never drift
	// between releases or epochs become unaddressable.
	h := testParams().Hash()
	if len(h) != 16 {
		t.Fatalf("hash %q: want 16 hex chars", h)
	}
	if h != testParams().Hash() {
		t.Fatalf("hash not deterministic")
	}
	// Every field participates.
	mutations := []func(*ParamsSpec){
		func(p *ParamsSpec) { p.K++ },
		func(p *ParamsSpec) { p.Theta++ },
		func(p *ParamsSpec) { p.BetaBits++ },
		func(p *ParamsSpec) { p.Linkage++ },
		func(p *ParamsSpec) { p.Model++ },
		func(p *ParamsSpec) { p.Balanced = !p.Balanced },
		func(p *ParamsSpec) { p.Seed++ },
		func(p *ParamsSpec) { p.Nodes++ },
	}
	for i, mut := range mutations {
		p := testParams()
		mut(&p)
		if p.Hash() == h {
			t.Errorf("mutation %d did not change the hash", i)
		}
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m, b := testManifest(t)
	got, err := DecodeManifest(b)
	if err != nil {
		t.Fatalf("DecodeManifest: %v", err)
	}
	if got.Dataset != m.Dataset || got.Epoch != m.Epoch || got.ParamsHash != m.ParamsHash {
		t.Fatalf("identity mismatch: %+v vs %+v", got, m)
	}
	if got.Params != m.Params {
		t.Fatalf("params mismatch: %+v vs %+v", got.Params, m.Params)
	}
	if len(got.Artifacts) != len(m.Artifacts) {
		t.Fatalf("artifact count %d, want %d", len(got.Artifacts), len(m.Artifacts))
	}
	for i := range got.Artifacts {
		if got.Artifacts[i] != m.Artifacts[i] {
			t.Fatalf("artifact %d mismatch: %+v vs %+v", i, got.Artifacts[i], m.Artifacts[i])
		}
	}
	// Re-encoding is byte-identical — required for CURRENT's manifest CRC.
	b2, err := got.Encode()
	if err != nil {
		t.Fatalf("re-Encode: %v", err)
	}
	if string(b2) != string(b) {
		t.Fatalf("Encode not canonical:\n%s\nvs\n%s", b2, b)
	}
}

func TestDecodeManifestRejects(t *testing.T) {
	_, good := testManifest(t)
	cases := map[string]string{
		"unknown field": strings.Replace(string(good), `"dataset"`, `"surprise": 1, "dataset"`, 1),
		"trailing data": string(good) + "{}",
		"wrong hash":    strings.Replace(string(good), testParams().Hash(), "0000000000000000", 1),
		"not json":      "hello",
		"empty":         "",
	}
	for name, raw := range cases {
		if _, err := DecodeManifest([]byte(raw)); !errors.Is(err, ErrVerify) {
			t.Errorf("%s: got %v, want ErrVerify", name, err)
		}
	}
}

func TestManifestValidate(t *testing.T) {
	base, _ := testManifest(t)
	cases := map[string]func(m *Manifest){
		"bad dataset":     func(m *Manifest) { m.Dataset = "a/b" },
		"empty dataset":   func(m *Manifest) { m.Dataset = "" },
		"dotdot dataset":  func(m *Manifest) { m.Dataset = ".." },
		"epoch zero":      func(m *Manifest) { m.Epoch = 0 },
		"hash mismatch":   func(m *Manifest) { m.Params.Seed++ },
		"no artifacts":    func(m *Manifest) { m.Artifacts = nil },
		"dup artifact":    func(m *Manifest) { m.Artifacts = append(m.Artifacts, m.Artifacts[0]) },
		"reserved name":   func(m *Manifest) { m.Artifacts[0].Name = "manifest.json" },
		"reserved name 2": func(m *Manifest) { m.Artifacts[0].Name = "CURRENT" },
		"bad name":        func(m *Manifest) { m.Artifacts[0].Name = "a b" },
		"negative size":   func(m *Manifest) { m.Artifacts[0].Bytes = -1 },
	}
	for name, mut := range cases {
		m := *base
		m.Artifacts = append([]Artifact(nil), base.Artifacts...)
		mut(&m)
		if err := m.Validate(); !errors.Is(err, ErrVerify) {
			t.Errorf("%s: got %v, want ErrVerify", name, err)
		}
	}
}

func TestCurrentRoundTrip(t *testing.T) {
	m, mb := testManifest(t)
	cur := CurrentFor(m, mb)
	if cur.ManifestCRC != crc32.ChecksumIEEE(mb) {
		t.Fatalf("CurrentFor CRC mismatch")
	}
	if cur.ManifestKey != ManifestKey(m.Dataset, m.Epoch, m.ParamsHash) {
		t.Fatalf("CurrentFor key %q", cur.ManifestKey)
	}
	b, err := cur.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := DecodeCurrent(b)
	if err != nil {
		t.Fatalf("DecodeCurrent: %v", err)
	}
	if got != cur {
		t.Fatalf("round trip %+v, want %+v", got, cur)
	}
	for name, raw := range map[string]string{
		"epoch zero": `{"epoch":0,"params_hash":"x","manifest_key":"a/b","manifest_crc32":1}` + "\n",
		"bad key":    `{"epoch":1,"params_hash":"x","manifest_key":"../b","manifest_crc32":1}` + "\n",
		"unknown":    `{"epoch":1,"params_hash":"x","manifest_key":"a/b","manifest_crc32":1,"z":2}` + "\n",
	} {
		if _, err := DecodeCurrent([]byte(raw)); !errors.Is(err, ErrVerify) {
			t.Errorf("%s: got %v, want ErrVerify", name, err)
		}
	}
}

func TestKeyHelpers(t *testing.T) {
	if got, want := EpochPrefix("tiny", 255, "abcd"), "tiny/epoch-00000000000000ff-abcd"; got != want {
		t.Fatalf("EpochPrefix = %q, want %q", got, want)
	}
	if got, want := CurrentKey("tiny"), "tiny/CURRENT"; got != want {
		t.Fatalf("CurrentKey = %q, want %q", got, want)
	}
	valid := []string{"a", "a/b", "tiny/epoch-1-x/index.codindx2", "A-1_2.x"}
	invalid := []string{"", "/", "a/", "/a", "a//b", "..", "a/../b", "a b", "a\x00b", "ä"}
	for _, k := range valid {
		if !ValidKey(k) {
			t.Errorf("ValidKey(%q) = false, want true", k)
		}
	}
	for _, k := range invalid {
		if ValidKey(k) {
			t.Errorf("ValidKey(%q) = true, want false", k)
		}
	}
}

// FuzzManifestRoundTrip asserts the decode→encode→decode loop is a fixpoint:
// any bytes DecodeManifest accepts must re-encode canonically and decode to
// the same manifest. Random inputs mostly exercise the rejection paths; the
// seed corpus exercises acceptance.
func FuzzManifestRoundTrip(f *testing.F) {
	p := ParamsSpec{K: 8, Theta: 3, BetaBits: 0x3fe0000000000000, Linkage: 1, Model: 2, Balanced: true, Seed: 42, Nodes: 120}
	seed := &Manifest{
		Dataset: "tiny", Epoch: 3, ParamsHash: p.Hash(), Params: p,
		Artifacts: []Artifact{{Name: "index.codindx2", Bytes: 10, CRC32: 7}},
	}
	sb, err := seed.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(sb)
	f.Add([]byte("{}"))
	f.Add([]byte(`{"dataset":"a","epoch":1}`))
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := DecodeManifest(b)
		if err != nil {
			return
		}
		b2, err := m.Encode()
		if err != nil {
			t.Fatalf("accepted manifest failed to encode: %v", err)
		}
		m2, err := DecodeManifest(b2)
		if err != nil {
			t.Fatalf("canonical encoding failed to decode: %v", err)
		}
		b3, err := m2.Encode()
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if string(b2) != string(b3) {
			t.Fatalf("encode not a fixpoint:\n%s\nvs\n%s", b2, b3)
		}
	})
}
