package blobstore

import (
	"bytes"
	"context"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"
)

// Publish writes one epoch's artifacts, its manifest, and finally the
// dataset's CURRENT pointer, in that order, and returns the manifest it
// installed. Every blob is verified by reading it back and checking its
// CRC-32 before the next step proceeds — the defense against torn writes
// that report success — and each write+verify runs under pol's bounded
// retries. Because CURRENT is written last and atomically, a fetcher
// observes either the previous epoch or the complete new one; a publisher
// crash mid-way leaves unreferenced artifacts, never a referenced partial.
//
// Epochs must be monotone per dataset: replicas refuse to swap backward, so
// a rollback is published as a *new* epoch carrying the old artifacts.
func Publish(ctx context.Context, s Store, dataset string, epoch uint64, params ParamsSpec, artifacts map[string][]byte, pol RetryPolicy) (*Manifest, error) {
	m := &Manifest{
		Dataset:    dataset,
		Epoch:      epoch,
		ParamsHash: params.Hash(),
		Params:     params,
	}
	names := make([]string, 0, len(artifacts))
	for name := range artifacts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m.Artifacts = append(m.Artifacts, Artifact{
			Name:  name,
			Bytes: int64(len(artifacts[name])),
			CRC32: crc32.ChecksumIEEE(artifacts[name]),
		})
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}

	for _, a := range m.Artifacts {
		key := ArtifactKey(dataset, epoch, m.ParamsHash, a.Name)
		if err := putVerified(ctx, s, key, artifacts[a.Name], pol); err != nil {
			return nil, err
		}
	}
	mb, err := m.Encode()
	if err != nil {
		return nil, err
	}
	if err := putVerified(ctx, s, ManifestKey(dataset, epoch, m.ParamsHash), mb, pol); err != nil {
		return nil, err
	}
	cb, err := CurrentFor(m, mb).Encode()
	if err != nil {
		return nil, err
	}
	if err := putVerified(ctx, s, CurrentKey(dataset), cb, pol); err != nil {
		return nil, err
	}
	return m, nil
}

// putVerified writes payload under key and reads it back, comparing length
// and CRC-32; a mismatch (e.g. a torn write the store reported as success)
// fails the attempt, and the whole write+verify cycle retries under pol.
func putVerified(ctx context.Context, s Store, key string, payload []byte, pol RetryPolicy) error {
	want := crc32.ChecksumIEEE(payload)
	return pol.Do(ctx, "put "+key, func(ctx context.Context) error {
		if err := s.Put(ctx, key, bytes.NewReader(payload)); err != nil {
			return err
		}
		got, err := readAll(ctx, s, key, int64(len(payload)))
		if err != nil {
			return err
		}
		if len(got) != len(payload) || crc32.ChecksumIEEE(got) != want {
			return fmt.Errorf("%w: read-back of %s: %d bytes crc %08x, wrote %d bytes crc %08x",
				ErrVerify, key, len(got), crc32.ChecksumIEEE(got), len(payload), want)
		}
		return nil
	})
}

// Prune deletes the oldest published epochs of a dataset, keeping the most
// recent keep epochs and never the one CURRENT references. It returns the
// epoch prefixes it removed. Fetchers racing a prune retry onto the fresh
// CURRENT, which Prune leaves intact by construction.
func Prune(ctx context.Context, s Store, dataset string, keep int, pol RetryPolicy) ([]string, error) {
	if keep < 1 {
		keep = 1
	}
	cur, err := FetchCurrent(ctx, s, dataset, pol)
	if err != nil {
		return nil, err
	}
	keys, err := s.List(ctx, dataset+"/epoch-")
	if err != nil {
		return nil, err
	}
	// Group keys by epoch prefix; prefixes sort by their zero-padded hex
	// epoch, i.e. chronologically.
	byPrefix := map[string][]string{}
	prefixes := []string{}
	for _, key := range keys {
		i := strings.Index(key[len(dataset)+1:], "/")
		if i < 0 {
			continue
		}
		prefix := key[:len(dataset)+1+i]
		if _, ok := byPrefix[prefix]; !ok {
			prefixes = append(prefixes, prefix)
		}
		byPrefix[prefix] = append(byPrefix[prefix], key)
	}
	sort.Strings(prefixes)
	if len(prefixes) <= keep {
		return nil, nil
	}
	curPrefix := EpochPrefix(dataset, cur.Epoch, cur.ParamsHash)
	var removed []string
	for _, prefix := range prefixes[:len(prefixes)-keep] {
		if prefix == curPrefix {
			continue
		}
		for _, key := range byPrefix[prefix] {
			if err := s.Delete(ctx, key); err != nil {
				return removed, err
			}
		}
		removed = append(removed, prefix)
	}
	return removed, nil
}
