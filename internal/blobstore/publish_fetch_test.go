package blobstore

import (
	"bytes"
	"context"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"github.com/codsearch/cod/internal/faultfs"
)

// fastPolicy retries without real sleeping so fault-mode tests stay fast.
func fastPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		Sleep:       func(ctx context.Context, d time.Duration) error { return ctx.Err() },
		Jitter:      func(int, time.Duration) time.Duration { return 0 },
	}
}

func testArtifacts() map[string][]byte {
	return map[string][]byte{
		"graph.codg":     []byte("graph bytes: edges and attributes"),
		"index.codindx2": bytes.Repeat([]byte("index"), 100),
	}
}

func publishEpoch(t *testing.T, s Store, epoch uint64) *Manifest {
	t.Helper()
	m, err := Publish(context.Background(), s, "tiny", epoch, testParams(), testArtifacts(), fastPolicy())
	if err != nil {
		t.Fatalf("Publish epoch %d: %v", epoch, err)
	}
	return m
}

func fetchAll(t *testing.T, s Store) (Current, *Manifest, map[string][]byte) {
	t.Helper()
	ctx := context.Background()
	pol := fastPolicy()
	cur, err := FetchCurrent(ctx, s, "tiny", pol)
	if err != nil {
		t.Fatalf("FetchCurrent: %v", err)
	}
	m, err := FetchManifest(ctx, s, cur, pol)
	if err != nil {
		t.Fatalf("FetchManifest: %v", err)
	}
	got := map[string][]byte{}
	for _, a := range m.Artifacts {
		b, err := FetchArtifact(ctx, s, m, a.Name, pol)
		if err != nil {
			t.Fatalf("FetchArtifact %s: %v", a.Name, err)
		}
		got[a.Name] = b
	}
	return cur, m, got
}

func TestPublishFetchRoundTrip(t *testing.T) {
	s := fsStore(t)
	m := publishEpoch(t, s, 1)
	cur, m2, got := fetchAll(t, s)
	if cur.Epoch != 1 || cur.ParamsHash != m.ParamsHash {
		t.Fatalf("CURRENT %+v", cur)
	}
	if m2.Epoch != m.Epoch || m2.ParamsHash != m.ParamsHash || m2.Params != m.Params {
		t.Fatalf("manifest mismatch: %+v vs %+v", m2, m)
	}
	for name, want := range testArtifacts() {
		if !bytes.Equal(got[name], want) {
			t.Fatalf("artifact %s: %d bytes, want %d", name, len(got[name]), len(want))
		}
	}
	// A second epoch moves CURRENT; the old epoch stays fetchable.
	publishEpoch(t, s, 2)
	cur2, _, _ := fetchAll(t, s)
	if cur2.Epoch != 2 {
		t.Fatalf("CURRENT epoch %d after second publish", cur2.Epoch)
	}
	if _, err := s.Open(context.Background(), ManifestKey("tiny", 1, m.ParamsHash)); err != nil {
		t.Fatalf("old epoch manifest gone: %v", err)
	}
}

func TestFetchCurrentMissingDataset(t *testing.T) {
	s := fsStore(t)
	_, err := FetchCurrent(context.Background(), s, "ghost", fastPolicy())
	if !errors.Is(err, ErrNotExist) {
		t.Fatalf("got %v, want ErrNotExist", err)
	}
}

// every reports a fault on every k-th sequenced operation. With k > 1 a
// bounded retry always converges: consecutive attempts draw consecutive
// sequence numbers, so no logical operation fails twice in a row for k >= 2.
func every(k int64, fault error) func(int64) error {
	return func(n int64) error {
		if n%k == 0 {
			return fault
		}
		return nil
	}
}

func TestPublishFetchUnderTransportFaults(t *testing.T) {
	// Every 3rd store operation dies at the transport layer, publish and
	// fetch both still converge under retries.
	seq := faultfs.NewSeq(every(3, errors.New("transport reset")))
	s, err := NewFSWithHooks(t.TempDir(), Hooks{
		BeforeOp: func(op, key string) error { return seq.Next() },
	})
	if err != nil {
		t.Fatal(err)
	}
	publishEpoch(t, s, 1)
	_, _, got := fetchAll(t, s)
	if !bytes.Equal(got["graph.codg"], testArtifacts()["graph.codg"]) {
		t.Fatal("fetched bytes differ")
	}
	if seq.Count() == 0 {
		t.Fatal("fault schedule never consulted")
	}
}

func TestPublishDetectsTornWrite(t *testing.T) {
	// The store tears every other write at 10 bytes but reports success —
	// only read-back verification can catch it. Publish must converge (the
	// retry's second write is healthy) and the final content must be intact.
	seq := faultfs.NewSeq(every(2, errors.New("tear")))
	s, err := NewFSWithHooks(t.TempDir(), Hooks{
		WrapWriter: func(key string, w io.Writer) io.Writer {
			if seq.Next() != nil {
				return &faultfs.TornWriter{W: w, Keep: 10}
			}
			return w
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	publishEpoch(t, s, 1)
	_, _, got := fetchAll(t, s)
	for name, want := range testArtifacts() {
		if !bytes.Equal(got[name], want) {
			t.Fatalf("artifact %s corrupted by torn write", name)
		}
	}
}

func TestPublishTornWriteNeverReferenced(t *testing.T) {
	// Every write is torn: publish must fail, and CURRENT must never come
	// to exist — a reader keeps seeing ErrNotExist, not a broken epoch.
	s, err := NewFSWithHooks(t.TempDir(), Hooks{
		WrapWriter: func(key string, w io.Writer) io.Writer {
			return &faultfs.TornWriter{W: w, Keep: 10}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Publish(context.Background(), s, "tiny", 1, testParams(), testArtifacts(), fastPolicy())
	if !errors.Is(err, ErrVerify) {
		t.Fatalf("Publish: %v, want ErrVerify", err)
	}
	if _, err := FetchCurrent(context.Background(), s, "tiny", fastPolicy()); !errors.Is(err, ErrNotExist) {
		t.Fatalf("CURRENT exists after failed publish: %v", err)
	}
}

func TestPublishUnderShortWrites(t *testing.T) {
	// Short writes surface as errors (io.Copy turns them into
	// io.ErrShortWrite); every other write heals, so retries converge.
	seq := faultfs.NewSeq(every(2, errors.New("short")))
	s, err := NewFSWithHooks(t.TempDir(), Hooks{
		WrapWriter: func(key string, w io.Writer) io.Writer {
			if seq.Next() != nil {
				return &faultfs.ShortWriter{W: w, Max: 7}
			}
			return w
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	publishEpoch(t, s, 1)
	_, _, got := fetchAll(t, s)
	if !bytes.Equal(got["index.codindx2"], testArtifacts()["index.codindx2"]) {
		t.Fatal("fetched bytes differ")
	}
}

func TestPublishUnderFsyncErrors(t *testing.T) {
	seq := faultfs.NewSeq(every(2, errors.New("fsync: I/O error")))
	s, err := NewFSWithHooks(t.TempDir(), Hooks{
		SyncError: func(key string) error { return seq.Next() },
	})
	if err != nil {
		t.Fatal(err)
	}
	publishEpoch(t, s, 1)
	_, _, got := fetchAll(t, s)
	if !bytes.Equal(got["graph.codg"], testArtifacts()["graph.codg"]) {
		t.Fatal("fetched bytes differ")
	}
}

func TestFetchUnderBitFlips(t *testing.T) {
	// Clean store, then every other read suffers bit rot. CRC verification
	// rejects the corrupt copy and the retry's clean read wins; corrupted
	// bytes never reach the caller.
	dir := t.TempDir()
	clean, err := NewFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	publishEpoch(t, clean, 1)
	seq := faultfs.NewSeq(every(2, errors.New("rot")))
	rotten, err := NewFSWithHooks(dir, Hooks{
		WrapReader: func(key string, r io.Reader) io.Reader {
			if seq.Next() != nil {
				return &faultfs.BitErrReader{R: r, Offsets: []int64{3, 17}, Mask: 0x40}
			}
			return r
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _, got := fetchAll(t, rotten)
	for name, want := range testArtifacts() {
		if !bytes.Equal(got[name], want) {
			t.Fatalf("artifact %s: corruption leaked through CRC verification", name)
		}
	}
}

func TestFetchArtifactPermanentCorruption(t *testing.T) {
	// Corruption on every read: the retry budget exhausts and the caller
	// gets ErrVerify — never the corrupt bytes.
	dir := t.TempDir()
	clean, err := NewFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := publishEpoch(t, clean, 1)
	rotten, err := NewFSWithHooks(dir, Hooks{
		WrapReader: func(key string, r io.Reader) io.Reader {
			if strings.HasSuffix(key, "/index.codindx2") {
				return &faultfs.FlipReader{R: r, Offset: 5}
			}
			return r
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = FetchArtifact(context.Background(), rotten, m, "index.codindx2", fastPolicy())
	if !errors.Is(err, ErrVerify) {
		t.Fatalf("got %v, want ErrVerify", err)
	}
}

func TestFetchManifestTruncated(t *testing.T) {
	dir := t.TempDir()
	clean, err := NewFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	publishEpoch(t, clean, 1)
	trunc, err := NewFSWithHooks(dir, Hooks{
		WrapReader: func(key string, r io.Reader) io.Reader {
			if strings.HasSuffix(key, "/manifest.json") {
				return &faultfs.TruncateReader{R: r, N: 20}
			}
			return r
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cur, err := FetchCurrent(context.Background(), trunc, "tiny", fastPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FetchManifest(context.Background(), trunc, cur, fastPolicy()); !errors.Is(err, ErrVerify) {
		t.Fatalf("got %v, want ErrVerify", err)
	}
}

func TestFetchManifestCrossChecksCurrent(t *testing.T) {
	// A stale CURRENT naming the wrong epoch for an otherwise valid
	// manifest must be rejected by the identity cross-check.
	s := fsStore(t)
	m := publishEpoch(t, s, 1)
	mb, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	cur := CurrentFor(m, mb)
	cur.Epoch = 9 // lies about which epoch the manifest is
	if _, err := FetchManifest(context.Background(), s, cur, fastPolicy()); !errors.Is(err, ErrVerify) {
		t.Fatalf("got %v, want ErrVerify", err)
	}
	cur = CurrentFor(m, mb)
	cur.ManifestCRC++ // torn CURRENT/manifest pair
	if _, err := FetchManifest(context.Background(), s, cur, fastPolicy()); !errors.Is(err, ErrVerify) {
		t.Fatalf("got %v, want ErrVerify", err)
	}
}

func TestFetchArtifactUnknownName(t *testing.T) {
	s := fsStore(t)
	m := publishEpoch(t, s, 1)
	if _, err := FetchArtifact(context.Background(), s, m, "nonesuch", fastPolicy()); !errors.Is(err, ErrVerify) {
		t.Fatalf("got %v, want ErrVerify", err)
	}
}

func TestPublishRejectsBadInput(t *testing.T) {
	s := fsStore(t)
	ctx := context.Background()
	if _, err := Publish(ctx, s, "bad/name", 1, testParams(), testArtifacts(), fastPolicy()); !errors.Is(err, ErrVerify) {
		t.Fatalf("bad dataset: %v", err)
	}
	if _, err := Publish(ctx, s, "tiny", 0, testParams(), testArtifacts(), fastPolicy()); !errors.Is(err, ErrVerify) {
		t.Fatalf("epoch 0: %v", err)
	}
	if _, err := Publish(ctx, s, "tiny", 1, testParams(), map[string][]byte{}, fastPolicy()); !errors.Is(err, ErrVerify) {
		t.Fatalf("no artifacts: %v", err)
	}
	if _, err := Publish(ctx, s, "tiny", 1, testParams(), map[string][]byte{"CURRENT": nil}, fastPolicy()); !errors.Is(err, ErrVerify) {
		t.Fatalf("reserved artifact name: %v", err)
	}
}

func TestPrune(t *testing.T) {
	s := fsStore(t)
	for e := uint64(1); e <= 5; e++ {
		publishEpoch(t, s, e)
	}
	removed, err := Prune(context.Background(), s, "tiny", 2, fastPolicy())
	if err != nil {
		t.Fatalf("Prune: %v", err)
	}
	if len(removed) != 3 {
		t.Fatalf("removed %v, want 3 prefixes", removed)
	}
	// The newest two epochs survive, CURRENT still resolves end to end.
	cur, _, got := fetchAll(t, s)
	if cur.Epoch != 5 {
		t.Fatalf("CURRENT epoch %d", cur.Epoch)
	}
	if !bytes.Equal(got["graph.codg"], testArtifacts()["graph.codg"]) {
		t.Fatal("fetch after prune failed")
	}
	ph := testParams().Hash()
	if _, err := s.Open(context.Background(), ManifestKey("tiny", 4, ph)); err != nil {
		t.Fatalf("epoch 4 pruned: %v", err)
	}
	if _, err := s.Open(context.Background(), ManifestKey("tiny", 1, ph)); !errors.Is(err, ErrNotExist) {
		t.Fatalf("epoch 1 survived: %v", err)
	}
	// Idempotent: nothing more to remove.
	removed, err = Prune(context.Background(), s, "tiny", 2, fastPolicy())
	if err != nil || len(removed) != 0 {
		t.Fatalf("second Prune: %v %v", removed, err)
	}
}

func TestPruneNeverRemovesCurrent(t *testing.T) {
	// Even with keep=1 and CURRENT pointing at the *oldest* epoch (a
	// republish-as-rollback gone sideways), the referenced epoch survives.
	s := fsStore(t)
	for e := uint64(1); e <= 3; e++ {
		publishEpoch(t, s, e)
	}
	// Point CURRENT back at epoch 1 by hand.
	raw, err := readAll(context.Background(), s, ManifestKey("tiny", 1, testParams().Hash()), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	mm, err := DecodeManifest(raw)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := CurrentFor(mm, raw).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(context.Background(), CurrentKey("tiny"), bytes.NewReader(cb)); err != nil {
		t.Fatal(err)
	}
	if _, err := Prune(context.Background(), s, "tiny", 1, fastPolicy()); err != nil {
		t.Fatal(err)
	}
	cur, _, got := fetchAll(t, s)
	if cur.Epoch != 1 {
		t.Fatalf("CURRENT epoch %d", cur.Epoch)
	}
	if !bytes.Equal(got["index.codindx2"], testArtifacts()["index.codindx2"]) {
		t.Fatal("CURRENT's epoch was pruned")
	}
}

func TestReadAllOversize(t *testing.T) {
	s := fsStore(t)
	putStr(t, s, "ds/big", strings.Repeat("x", 100))
	if _, err := readAll(context.Background(), s, "ds/big", 99); !errors.Is(err, ErrVerify) {
		t.Fatalf("oversize: %v", err)
	}
	b, err := readAll(context.Background(), s, "ds/big", 100)
	if err != nil || len(b) != 100 {
		t.Fatalf("exact: %v len %d", err, len(b))
	}
}

func TestRetryCountsObserved(t *testing.T) {
	// The OnRetry hook sees transport-level retries during a faulty fetch —
	// this is the seam the serving layer's retry counter hangs off.
	seq := faultfs.NewSeq(every(2, errors.New("flaky")))
	dir := t.TempDir()
	clean, err := NewFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	publishEpoch(t, clean, 1)
	s, err := NewFSWithHooks(dir, Hooks{
		BeforeOp: func(op, key string) error { return seq.Next() },
	})
	if err != nil {
		t.Fatal(err)
	}
	pol := fastPolicy()
	retries := 0
	pol.OnRetry = func(op string, attempt int, err error) { retries++ }
	cur, err := FetchCurrent(context.Background(), s, "tiny", pol)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FetchManifest(context.Background(), s, cur, pol); err != nil {
		t.Fatal(err)
	}
	if retries == 0 {
		t.Fatal("no retries observed under a faulting schedule")
	}
}
