package blobstore

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Retry defaults: four attempts with 50ms → 2s capped exponential backoff
// and a 10s per-attempt timeout keep a replica's fetch bounded at a few
// seconds of retrying before it falls back to the serving epoch.
const (
	DefaultMaxAttempts       = 4
	DefaultBaseDelay         = 50 * time.Millisecond
	DefaultMaxDelay          = 2 * time.Second
	DefaultPerAttemptTimeout = 10 * time.Second
)

// RetryPolicy bounds and paces retries of store operations. The zero value
// selects the defaults above. The clock and jitter are injectable so tests
// replay fault schedules deterministically (no wall-clock sleeps, no global
// randomness — the determinism analyzers hold for this package too).
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first attempt included);
	// <= 0 selects DefaultMaxAttempts.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; it doubles per
	// retry up to MaxDelay. <= 0 selects the defaults.
	BaseDelay time.Duration
	// MaxDelay caps the backoff.
	MaxDelay time.Duration
	// PerAttemptTimeout bounds each attempt's context; <= 0 selects
	// DefaultPerAttemptTimeout. The parent context still bounds the whole
	// retry loop.
	PerAttemptTimeout time.Duration
	// Sleep waits for d or until ctx is done, returning ctx's error in the
	// latter case. Nil selects a timer-backed sleep; tests inject a manual
	// clock.
	Sleep func(ctx context.Context, d time.Duration) error
	// Jitter returns the extra delay added to attempt's backoff, in
	// [0, max]. Nil selects a deterministic SplitMix64-derived jitter — the
	// same on every replica and every run, which keeps tests replayable;
	// deployments that want decorrelated replicas inject their own seeded
	// source.
	Jitter func(attempt int, max time.Duration) time.Duration
	// OnRetry, when non-nil, observes each failed attempt that will be
	// retried (metrics hook; it must not block).
	OnRetry func(op string, attempt int, err error)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultMaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultBaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultMaxDelay
	}
	if p.PerAttemptTimeout <= 0 {
		p.PerAttemptTimeout = DefaultPerAttemptTimeout
	}
	if p.Sleep == nil {
		p.Sleep = sleepCtx
	}
	if p.Jitter == nil {
		p.Jitter = splitmixJitter
	}
	return p
}

// backoff returns the pre-jitter delay before retry attempt (attempt 1 is
// the first retry).
func (p RetryPolicy) backoff(attempt int) time.Duration {
	d := p.BaseDelay
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= p.MaxDelay {
			return p.MaxDelay
		}
	}
	return min(d, p.MaxDelay)
}

// Do runs fn with bounded retries: each attempt gets its own deadline, and
// failed attempts back off exponentially (capped, jittered) before the
// next. Permanent conditions are not retried: ErrNotExist (absence is
// state, not a fault) and the caller's context expiring. ErrVerify is
// retried — read-side corruption can be transient, and the loop never
// returns unverified bytes either way. The returned error is the last
// attempt's, wrapped with the op name and attempt count.
func (p RetryPolicy) Do(ctx context.Context, op string, fn func(ctx context.Context) error) error {
	p = p.withDefaults()
	var last error
	for attempt := 1; ; attempt++ {
		actx, cancel := context.WithTimeout(ctx, p.PerAttemptTimeout)
		err := fn(actx)
		cancel()
		if err == nil {
			return nil
		}
		last = err
		if errors.Is(err, ErrNotExist) || ctx.Err() != nil {
			break
		}
		if attempt >= p.MaxAttempts {
			break
		}
		if p.OnRetry != nil {
			p.OnRetry(op, attempt, err)
		}
		delay := p.backoff(attempt)
		if err := p.Sleep(ctx, delay+p.Jitter(attempt, delay/2)); err != nil {
			break
		}
	}
	return fmt.Errorf("blobstore: %s failed: %w", op, last)
}

// sleepCtx is the production Sleep: a timer raced against ctx.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// splitmixJitter derives a deterministic jitter in [0, max] from the
// attempt number alone (SplitMix64 finalizer). No randomness source is
// consumed, so retried fetches replay identically under test and the
// detrand/detflow analyzers stay clean.
func splitmixJitter(attempt int, max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	z := uint64(attempt) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return time.Duration(z % uint64(max+1))
}
