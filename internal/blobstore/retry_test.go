package blobstore

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// testPolicy returns a policy whose sleeps record into *slept instead of
// blocking, with zero jitter so backoff values are exact.
func testPolicy(slept *[]time.Duration) RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   50 * time.Millisecond,
		MaxDelay:    2 * time.Second,
		Sleep: func(ctx context.Context, d time.Duration) error {
			*slept = append(*slept, d)
			return ctx.Err()
		},
		Jitter: func(int, time.Duration) time.Duration { return 0 },
	}
}

func TestRetrySucceedsAfterTransientFaults(t *testing.T) {
	var slept []time.Duration
	pol := testPolicy(&slept)
	calls := 0
	err := pol.Do(context.Background(), "op", func(ctx context.Context) error {
		calls++
		if calls < 3 {
			return fmt.Errorf("%w: bit flip", ErrVerify)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	want := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("slept %v, want %v", slept, want)
		}
	}
}

func TestRetryExhaustsBudget(t *testing.T) {
	var slept []time.Duration
	pol := testPolicy(&slept)
	var retried []int
	pol.OnRetry = func(op string, attempt int, err error) { retried = append(retried, attempt) }
	calls := 0
	boom := errors.New("boom")
	err := pol.Do(context.Background(), "op", func(ctx context.Context) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if calls != 4 {
		t.Fatalf("calls = %d, want MaxAttempts=4", calls)
	}
	if len(retried) != 3 {
		t.Fatalf("OnRetry fired %v, want attempts 1..3", retried)
	}
}

func TestRetryBackoffCaps(t *testing.T) {
	var slept []time.Duration
	pol := testPolicy(&slept)
	pol.MaxAttempts = 8
	pol.MaxDelay = 150 * time.Millisecond
	_ = pol.Do(context.Background(), "op", func(ctx context.Context) error {
		return errors.New("always")
	})
	// 50, 100, then pinned at the 150ms cap.
	if len(slept) != 7 {
		t.Fatalf("slept %v, want 7 entries", slept)
	}
	for i, d := range slept {
		if d > pol.MaxDelay {
			t.Fatalf("sleep %d = %v exceeds cap %v", i, d, pol.MaxDelay)
		}
	}
	if slept[0] != 50*time.Millisecond || slept[2] != 150*time.Millisecond || slept[6] != 150*time.Millisecond {
		t.Fatalf("backoff sequence %v", slept)
	}
}

func TestRetryNotExistIsPermanent(t *testing.T) {
	var slept []time.Duration
	pol := testPolicy(&slept)
	calls := 0
	err := pol.Do(context.Background(), "op", func(ctx context.Context) error {
		calls++
		return fmt.Errorf("%w: tiny/CURRENT", ErrNotExist)
	})
	if !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v, want ErrNotExist", err)
	}
	if calls != 1 || len(slept) != 0 {
		t.Fatalf("calls=%d slept=%v; absence must not be retried", calls, slept)
	}
}

func TestRetryStopsOnCallerContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var slept []time.Duration
	pol := testPolicy(&slept)
	calls := 0
	err := pol.Do(ctx, "op", func(ctx context.Context) error {
		calls++
		cancel() // the caller gives up mid-attempt
		return errors.New("transient")
	})
	if err == nil {
		t.Fatal("want error")
	}
	if calls != 1 {
		t.Fatalf("calls = %d; an expired parent context must not retry", calls)
	}
}

func TestRetryPerAttemptTimeout(t *testing.T) {
	var slept []time.Duration
	pol := testPolicy(&slept)
	pol.PerAttemptTimeout = time.Millisecond
	deadlines := 0
	err := pol.Do(context.Background(), "op", func(ctx context.Context) error {
		if _, ok := ctx.Deadline(); ok {
			deadlines++
		}
		return errors.New("slow")
	})
	if err == nil {
		t.Fatal("want error")
	}
	if deadlines != pol.MaxAttempts {
		t.Fatalf("deadlines = %d, want one per attempt (%d)", deadlines, pol.MaxAttempts)
	}
}

func TestSplitmixJitterBoundedAndDeterministic(t *testing.T) {
	max := 100 * time.Millisecond
	for attempt := 0; attempt < 64; attempt++ {
		j := splitmixJitter(attempt, max)
		if j < 0 || j > max {
			t.Fatalf("jitter(%d) = %v out of [0,%v]", attempt, j, max)
		}
		if j != splitmixJitter(attempt, max) {
			t.Fatalf("jitter(%d) not deterministic", attempt)
		}
	}
	if splitmixJitter(3, 0) != 0 {
		t.Fatal("jitter with max 0 must be 0")
	}
}

func TestSleepCtx(t *testing.T) {
	if err := sleepCtx(context.Background(), 0); err != nil {
		t.Fatalf("zero sleep: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := sleepCtx(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sleep: %v", err)
	}
	if err := sleepCtx(context.Background(), time.Microsecond); err != nil {
		t.Fatalf("short sleep: %v", err)
	}
}
