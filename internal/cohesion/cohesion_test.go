package cohesion

import (
	"testing"
	"testing/quick"

	"github.com/codsearch/cod/internal/graph"
)

func mustGraph(t *testing.T, n int, edges [][2]graph.NodeID) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func k4Plus(t *testing.T) *graph.Graph {
	t.Helper()
	// K4 on {0,1,2,3} with a pendant path 3-4-5
	return mustGraph(t, 6, [][2]graph.NodeID{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {3, 4}, {4, 5},
	})
}

func TestCoreNumbers(t *testing.T) {
	g := k4Plus(t)
	core := CoreNumbers(g)
	want := []int{3, 3, 3, 3, 1, 1}
	for v, w := range want {
		if core[v] != w {
			t.Errorf("core(%d) = %d, want %d", v, core[v], w)
		}
	}
}

func TestCoreNumbersCycle(t *testing.T) {
	g := mustGraph(t, 5, [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}})
	for v, c := range CoreNumbers(g) {
		if c != 2 {
			t.Errorf("cycle core(%d) = %d, want 2", v, c)
		}
	}
}

func TestKCore(t *testing.T) {
	g := k4Plus(t)
	nodes := KCore(g, 3)
	if len(nodes) != 4 {
		t.Fatalf("3-core = %v", nodes)
	}
	if len(KCore(g, 4)) != 0 {
		t.Error("4-core should be empty")
	}
	if len(KCore(g, 1)) != 6 {
		t.Error("1-core should be everything")
	}
}

func TestMaxCoreComponent(t *testing.T) {
	g := k4Plus(t)
	comp, k := MaxCoreComponent(g, 0)
	if k != 3 || len(comp) != 4 {
		t.Errorf("MaxCoreComponent(0) = %v, k=%d", comp, k)
	}
	comp, k = MaxCoreComponent(g, 5)
	if k != 1 {
		t.Errorf("k for pendant = %d, want 1", k)
	}
	if len(comp) != 6 {
		t.Errorf("1-core component = %v", comp)
	}
}

func TestTrussnessK4(t *testing.T) {
	g := mustGraph(t, 4, [][2]graph.NodeID{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	_, truss := Trussness(g)
	for e, tr := range truss {
		if tr != 4 {
			t.Errorf("K4 edge %d trussness = %d, want 4", e, tr)
		}
	}
}

func TestTrussnessTriangleChain(t *testing.T) {
	// two triangles sharing edge (1,2): every edge is in >= 1 triangle
	g := mustGraph(t, 4, [][2]graph.NodeID{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}})
	edges, truss := Trussness(g)
	for e, tr := range truss {
		if tr != 3 {
			t.Errorf("edge %v trussness = %d, want 3", edges[e], tr)
		}
	}
}

func TestTrussnessNoTriangles(t *testing.T) {
	g := mustGraph(t, 4, [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 3}})
	_, truss := Trussness(g)
	for e, tr := range truss {
		if tr != 2 {
			t.Errorf("path edge %d trussness = %d, want 2", e, tr)
		}
	}
}

func TestKTruss(t *testing.T) {
	g := k4Plus(t)
	edges, nodes := KTruss(g, 4)
	if len(edges) != 6 || len(nodes) != 4 {
		t.Errorf("4-truss: %d edges %d nodes", len(edges), len(nodes))
	}
	if _, nodes5 := KTruss(g, 5); len(nodes5) != 0 {
		t.Error("5-truss should be empty")
	}
}

func TestMaxTrussCommunity(t *testing.T) {
	g := k4Plus(t)
	comm, k := MaxTrussCommunity(g, 1)
	if k != 4 || len(comm) != 4 {
		t.Errorf("MaxTrussCommunity(1) = %v k=%d", comm, k)
	}
	comm, k = MaxTrussCommunity(g, 5)
	if k != 2 {
		t.Errorf("triangle-free node k = %d, want 2", k)
	}
	// the 2-truss reachable from node 5 spans the whole graph
	if len(comm) != 6 {
		t.Errorf("2-truss community = %v", comm)
	}
}

func TestTriangleConnectedTruss(t *testing.T) {
	// two K4s sharing only node 3 (articulation): triangle connectivity must
	// not leak across the shared node.
	g := mustGraph(t, 7, [][2]graph.NodeID{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},
		{3, 4}, {3, 5}, {3, 6}, {4, 5}, {4, 6}, {5, 6},
	})
	comm, k := TriangleConnectedTruss(g, 0)
	if k != 4 {
		t.Fatalf("k = %d, want 4", k)
	}
	if len(comm) != 4 {
		t.Fatalf("community = %v, want one K4", comm)
	}
	for _, v := range comm {
		if v > 3 {
			t.Errorf("triangle connectivity leaked across articulation: %v", comm)
		}
	}
	// node with no triangle
	h := mustGraph(t, 3, [][2]graph.NodeID{{0, 1}, {1, 2}})
	if comm, k := TriangleConnectedTruss(h, 1); comm != nil || k != 0 {
		t.Errorf("expected empty result, got %v k=%d", comm, k)
	}
}

// Property: trussness(e) - 2 never exceeds min core number of endpoints, and
// trussness >= 2 always.
func TestTrussCoreRelation(t *testing.T) {
	check := func(seed uint16) bool {
		rng := graph.NewRand(uint64(seed))
		g := graph.ErdosRenyi(30, 90, rng)
		core := CoreNumbers(g)
		edges, truss := Trussness(g)
		for e, tr := range truss {
			if tr < 2 {
				return false
			}
			u, v := edges[e][0], edges[e][1]
			minCore := core[u]
			if core[v] < minCore {
				minCore = core[v]
			}
			if tr-2 > minCore {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the k-truss is edge-monotone — (k+1)-truss edges are a subset of
// k-truss edges.
func TestTrussMonotonicity(t *testing.T) {
	check := func(seed uint16) bool {
		rng := graph.NewRand(uint64(seed))
		g := graph.ErdosRenyi(25, 100, rng)
		_, truss := Trussness(g)
		maxT := 0
		for _, tr := range truss {
			if tr > maxT {
				maxT = tr
			}
		}
		prev := -1
		for k := 2; k <= maxT; k++ {
			cnt := 0
			for _, tr := range truss {
				if tr >= k {
					cnt++
				}
			}
			if prev >= 0 && cnt > prev {
				return false
			}
			prev = cnt
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: every edge of the k-truss has >= k-2 triangles inside the truss.
func TestTrussSupportInvariant(t *testing.T) {
	check := func(seed uint16) bool {
		rng := graph.NewRand(uint64(seed))
		g := graph.ErdosRenyi(20, 70, rng)
		_, truss := Trussness(g)
		edges := EdgeList(g)
		maxT := 0
		for _, tr := range truss {
			if tr > maxT {
				maxT = tr
			}
		}
		for k := 3; k <= maxT; k++ {
			in := map[[2]graph.NodeID]bool{}
			for e, tr := range truss {
				if tr >= k {
					in[edges[e]] = true
				}
			}
			hasEdge := func(a, b graph.NodeID) bool {
				if a > b {
					a, b = b, a
				}
				return in[[2]graph.NodeID{a, b}]
			}
			for e, tr := range truss {
				if tr < k {
					continue
				}
				u, v := edges[e][0], edges[e][1]
				sup := 0
				for _, w := range g.Neighbors(u) {
					if w != v && hasEdge(u, w) && hasEdge(v, w) {
						sup++
					}
				}
				if sup < k-2 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
