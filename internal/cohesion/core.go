// Package cohesion implements the cohesive-subgraph machinery needed by the
// attributed community search baselines: k-core decomposition, k-truss
// decomposition and triangle-connected truss communities.
package cohesion

import (
	"slices"

	"github.com/codsearch/cod/internal/graph"
)

// CoreNumbers computes the core number (degeneracy) of every node with the
// linear-time bucket peeling algorithm of Batagelj–Zaveršnik.
func CoreNumbers(g *graph.Graph) []int {
	n := g.N()
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(graph.NodeID(v))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// bin sort by degree
	bin := make([]int, maxDeg+2)
	for _, d := range deg {
		bin[d]++
	}
	start := 0
	for d := 0; d <= maxDeg; d++ {
		num := bin[d]
		bin[d] = start
		start += num
	}
	pos := make([]int, n)
	vert := make([]int, n)
	for v := 0; v < n; v++ {
		pos[v] = bin[deg[v]]
		vert[pos[v]] = v
		bin[deg[v]]++
	}
	for d := maxDeg; d > 0; d-- {
		bin[d] = bin[d-1]
	}
	bin[0] = 0

	core := make([]int, n)
	copy(core, deg)
	for i := 0; i < n; i++ {
		v := vert[i]
		for _, u := range g.Neighbors(graph.NodeID(v)) {
			if core[u] > core[v] {
				// move u one bucket down
				du := core[u]
				pu := pos[u]
				pw := bin[du]
				w := vert[pw]
				if u != graph.NodeID(w) {
					pos[u] = pw
					pos[w] = pu
					vert[pu] = w
					vert[pw] = int(u)
				}
				bin[du]++
				core[u]--
			}
		}
	}
	return core
}

// KCore returns the maximal subgraph nodes with core number >= k (the
// k-core), ascending. It may be disconnected.
func KCore(g *graph.Graph, k int) []graph.NodeID {
	core := CoreNumbers(g)
	var out []graph.NodeID
	for v, c := range core {
		if c >= k {
			out = append(out, graph.NodeID(v))
		}
	}
	return out
}

// MaxCoreComponent returns the connected component of q inside the k-core
// for the largest k that still contains q, together with that k. When q is
// isolated the result is {q} with k = 0. Callers issuing many queries on
// the same graph should compute CoreNumbers once and use CoreComponent.
func MaxCoreComponent(g *graph.Graph, q graph.NodeID) ([]graph.NodeID, int) {
	return CoreComponent(g, q, CoreNumbers(g))
}

// CoreComponent is MaxCoreComponent with precomputed core numbers.
func CoreComponent(g *graph.Graph, q graph.NodeID, core []int) ([]graph.NodeID, int) {
	k := core[q]
	// BFS from q over nodes with core number >= k.
	seen := map[graph.NodeID]bool{q: true}
	queue := []graph.NodeID{q}
	var comp []graph.NodeID
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		comp = append(comp, v)
		for _, u := range g.Neighbors(v) {
			if !seen[u] && core[u] >= k {
				seen[u] = true
				queue = append(queue, u)
			}
		}
	}
	sortIDs(comp)
	return comp, k
}

func sortIDs(s []graph.NodeID) { slices.Sort(s) }
