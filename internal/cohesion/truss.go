package cohesion

import (
	"slices"

	"github.com/codsearch/cod/internal/graph"
)

// EdgeID indexes the undirected edges of a graph in the canonical order
// produced by EdgeList (sorted by (min endpoint, max endpoint)).
type EdgeID = int32

// EdgeList returns the canonical undirected edge list of g.
func EdgeList(g *graph.Graph) [][2]graph.NodeID {
	edges := make([][2]graph.NodeID, 0, g.M())
	g.ForEachEdge(func(u, v graph.NodeID, _ float64) {
		edges = append(edges, [2]graph.NodeID{u, v})
	})
	return edges
}

// Trussness computes the truss number of every edge: the largest k such that
// the edge belongs to the k-truss (every edge in a k-truss participates in
// at least k-2 triangles within the truss). Returned slice is parallel to
// EdgeList(g); edges in no triangle have trussness 2.
func Trussness(g *graph.Graph) ([][2]graph.NodeID, []int) {
	edges := EdgeList(g)
	m := len(edges)
	id := edgeIndex(g, edges)

	// support[e] = number of triangles containing e
	support := make([]int, m)
	for e, ep := range edges {
		u, v := ep[0], ep[1]
		if g.Degree(u) > g.Degree(v) {
			u, v = v, u
		}
		for _, w := range g.Neighbors(u) {
			if w == v {
				continue
			}
			if g.HasEdge(v, w) {
				support[e]++
			}
		}
	}

	// Peel edges in increasing current-support order with the in-place
	// bucket structure of Batagelj–Zaveršnik (the same mechanics as
	// CoreNumbers, applied to edges): when edge e is peeled its truss number
	// is sup(e)+2, and the supports of the two other edges of each triangle
	// through e drop by one, clamped at sup(e) so values stay monotone.
	maxSup := 0
	for _, s := range support {
		if s > maxSup {
			maxSup = s
		}
	}
	bin := make([]int, maxSup+2)
	for _, s := range support {
		bin[s]++
	}
	start := 0
	for d := 0; d <= maxSup; d++ {
		num := bin[d]
		bin[d] = start
		start += num
	}
	pos := make([]int, m)
	vert := make([]EdgeID, m)
	for e := 0; e < m; e++ {
		pos[e] = bin[support[e]]
		vert[pos[e]] = EdgeID(e)
		bin[support[e]]++
	}
	for d := maxSup; d > 0; d-- {
		bin[d] = bin[d-1]
	}
	bin[0] = 0

	sup := support // peeled in place
	truss := make([]int, m)
	processedBefore := make([]bool, m)
	dec := func(ee EdgeID, floor int) {
		if sup[ee] > floor {
			d := sup[ee]
			p := pos[ee]
			pw := bin[d]
			w := vert[pw]
			if ee != w {
				pos[ee] = pw
				pos[w] = p
				vert[p] = w
				vert[pw] = ee
			}
			bin[d]++
			sup[ee]--
		}
	}
	for i := 0; i < m; i++ {
		e := vert[i]
		truss[e] = sup[e] + 2
		processedBefore[e] = true
		u, v := edges[e][0], edges[e][1]
		if g.Degree(u) > g.Degree(v) {
			u, v = v, u
		}
		for _, w := range g.Neighbors(u) {
			if w == v {
				continue
			}
			e1, ok1 := id.lookup(u, w)
			e2, ok2 := id.lookup(v, w)
			if !ok1 || !ok2 || processedBefore[e1] || processedBefore[e2] {
				continue
			}
			dec(e1, sup[e])
			dec(e2, sup[e])
		}
	}
	return edges, truss
}

// edgeIdx maps an edge's canonical endpoints to its EdgeID.
type edgeIdx struct {
	g     *graph.Graph
	adjID []EdgeID // parallel to g's internal adjacency via position lookup
	byKey map[int64]EdgeID
}

func edgeIndex(g *graph.Graph, edges [][2]graph.NodeID) *edgeIdx {
	idx := &edgeIdx{g: g, byKey: make(map[int64]EdgeID, len(edges))}
	n := int64(g.N())
	for e, ep := range edges {
		idx.byKey[int64(ep[0])*n+int64(ep[1])] = EdgeID(e)
	}
	return idx
}

func (i *edgeIdx) lookup(u, v graph.NodeID) (EdgeID, bool) {
	if u > v {
		u, v = v, u
	}
	e, ok := i.byKey[int64(u)*int64(i.g.N())+int64(v)]
	return e, ok
}

// TrussIndex caches a graph's truss decomposition so that repeated
// community extractions (one per query) skip the O(m^1.5) peeling.
type TrussIndex struct {
	g     *graph.Graph
	edges [][2]graph.NodeID
	truss []int
	id    *edgeIdx
}

// NewTrussIndex computes and caches the truss decomposition of g.
func NewTrussIndex(g *graph.Graph) *TrussIndex {
	edges, truss := Trussness(g)
	return &TrussIndex{g: g, edges: edges, truss: truss, id: edgeIndex(g, edges)}
}

// EdgeTrussness returns the truss number of edge (u,v) and whether the edge
// exists.
func (ti *TrussIndex) EdgeTrussness(u, v graph.NodeID) (int, bool) {
	e, ok := ti.id.lookup(u, v)
	if !ok {
		return 0, false
	}
	return ti.truss[e], true
}

// MaxTrussCommunity is the cached equivalent of the package-level function.
func (ti *TrussIndex) MaxTrussCommunity(q graph.NodeID) ([]graph.NodeID, int) {
	k := 0
	for _, u := range ti.g.Neighbors(q) {
		if e, ok := ti.id.lookup(q, u); ok && ti.truss[e] > k {
			k = ti.truss[e]
		}
	}
	if k < 2 {
		return nil, 0
	}
	seen := map[graph.NodeID]bool{q: true}
	queue := []graph.NodeID{q}
	var comp []graph.NodeID
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		comp = append(comp, v)
		for _, u := range ti.g.Neighbors(v) {
			if seen[u] {
				continue
			}
			if e, ok := ti.id.lookup(v, u); ok && ti.truss[e] >= k {
				seen[u] = true
				queue = append(queue, u)
			}
		}
	}
	slices.Sort(comp)
	return comp, k
}

// TriangleConnectedTruss is the cached equivalent of the package-level
// function.
func (ti *TrussIndex) TriangleConnectedTruss(q graph.NodeID) ([]graph.NodeID, int) {
	k := 0
	var seed EdgeID = -1
	for _, u := range ti.g.Neighbors(q) {
		if e, ok := ti.id.lookup(q, u); ok && ti.truss[e] > k {
			k = ti.truss[e]
			seed = e
		}
	}
	if k < 3 || seed < 0 {
		return nil, 0
	}
	inTruss := func(e EdgeID) bool { return ti.truss[e] >= k }
	visited := map[EdgeID]bool{seed: true}
	queue := []EdgeID{seed}
	nodes := map[graph.NodeID]bool{}
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		u, v := ti.edges[e][0], ti.edges[e][1]
		nodes[u], nodes[v] = true, true
		if ti.g.Degree(u) > ti.g.Degree(v) {
			u, v = v, u
		}
		for _, w := range ti.g.Neighbors(u) {
			if w == v {
				continue
			}
			e1, ok1 := ti.id.lookup(u, w)
			e2, ok2 := ti.id.lookup(v, w)
			if !ok1 || !ok2 || !inTruss(e1) || !inTruss(e2) {
				continue
			}
			if !visited[e1] {
				visited[e1] = true
				queue = append(queue, e1)
			}
			if !visited[e2] {
				visited[e2] = true
				queue = append(queue, e2)
			}
		}
	}
	out := make([]graph.NodeID, 0, len(nodes))
	for v := range nodes {
		out = append(out, v)
	}
	slices.Sort(out)
	return out, k
}

// KTruss returns the edges of the k-truss of g (the maximal subgraph whose
// every edge has truss number >= k) and the set of nodes they span.
func KTruss(g *graph.Graph, k int) (edges [][2]graph.NodeID, nodes []graph.NodeID) {
	all, truss := Trussness(g)
	seen := map[graph.NodeID]bool{}
	for e, t := range truss {
		if t >= k {
			edges = append(edges, all[e])
			seen[all[e][0]] = true
			seen[all[e][1]] = true
		}
	}
	for v := range seen {
		nodes = append(nodes, v)
	}
	slices.Sort(nodes)
	return edges, nodes
}

// MaxTrussCommunity returns the connected k-truss community containing q for
// the largest feasible k: the nodes reachable from q via edges with truss
// number >= k, where k is the maximum truss number among q's incident edges.
// Returns (nil, 0) when q has no incident triangle-supported edge. Callers
// issuing many queries should build a TrussIndex once instead.
func MaxTrussCommunity(g *graph.Graph, q graph.NodeID) ([]graph.NodeID, int) {
	return NewTrussIndex(g).MaxTrussCommunity(q)
}

// TriangleConnectedTruss returns the triangle-connected k-truss community of
// q for the largest feasible k: starting from q's strongest incident edge,
// it expands through edges of truss number >= k that share a triangle (all
// three edges in the k-truss) — the community model of CAC/TCP-style search.
// Callers issuing many queries should build a TrussIndex once instead.
func TriangleConnectedTruss(g *graph.Graph, q graph.NodeID) ([]graph.NodeID, int) {
	return NewTrussIndex(g).TriangleConnectedTruss(q)
}
