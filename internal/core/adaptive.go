package core

import (
	"github.com/codsearch/cod/internal/influence"
)

// AdaptiveResult reports an adaptive compressed evaluation.
type AdaptiveResult struct {
	EvalResult
	// Samples is the total number of RR graphs drawn.
	Samples int
	// Converged is false when the cap was hit before two consecutive
	// doublings agreed on the characteristic community.
	Converged bool
}

// CompressedEvaluateAdaptive runs Algorithm 1 with sample-size doubling
// instead of a fixed Θ: starting from minSamples RR graphs, the pool is
// doubled until two consecutive evaluations select the same chain level
// (or maxSamples is reached). This trades the paper's fixed θ for a
// stability-driven stopping rule: easy queries (clear influence gaps) stop
// early, borderline ones get more samples where precision actually needs
// them (cf. the Fig. 8 discussion of estimation error near the top-k
// boundary).
func CompressedEvaluateAdaptive(ch *Chain, sampler influence.GraphSampler, k, minSamples, maxSamples int) AdaptiveResult {
	if minSamples < 1 {
		minSamples = 1
	}
	if maxSamples < minSamples {
		maxSamples = minSamples
	}
	pool := sampler.Batch(minSamples)
	prev := CompressedEvaluate(ch, pool, k)
	for len(pool) < maxSamples {
		grow := len(pool)
		if len(pool)+grow > maxSamples {
			grow = maxSamples - len(pool)
		}
		pool = append(pool, sampler.Batch(grow)...)
		cur := CompressedEvaluate(ch, pool, k)
		if cur.Level == prev.Level {
			return AdaptiveResult{EvalResult: cur, Samples: len(pool), Converged: true}
		}
		prev = cur
	}
	return AdaptiveResult{EvalResult: prev, Samples: len(pool), Converged: false}
}
