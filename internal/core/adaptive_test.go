package core

import (
	"testing"

	"github.com/codsearch/cod/internal/graph"
	"github.com/codsearch/cod/internal/hac"
	"github.com/codsearch/cod/internal/influence"
)

func TestAdaptiveConvergesOnClearCase(t *testing.T) {
	// A star center is unambiguously top-1 everywhere: the adaptive
	// evaluation should converge quickly to the whole graph.
	edges := make([][2]graph.NodeID, 0, 19)
	for v := graph.NodeID(1); v < 20; v++ {
		edges = append(edges, [2]graph.NodeID{0, v})
	}
	g, err := graph.FromEdges(20, edges)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := hac.Cluster(g, hac.UnweightedAverage)
	if err != nil {
		t.Fatal(err)
	}
	ch := ChainFromTree(tr, 0)
	s := influence.NewSampler(g, influence.NewWeightedCascade(g), graph.NewRand(1))
	res := CompressedEvaluateAdaptive(ch, s, 1, 50, 100000)
	if !res.Converged {
		t.Error("clear case did not converge")
	}
	if res.Level != ch.Len()-1 {
		t.Errorf("level = %d, want root %d", res.Level, ch.Len()-1)
	}
	if res.Samples >= 100000 {
		t.Errorf("used %d samples on a trivial case", res.Samples)
	}
}

func TestAdaptiveAgreesWithFixedLargeTheta(t *testing.T) {
	g := graph.ErdosRenyi(40, 120, graph.NewRand(2))
	tr, err := hac.Cluster(g, hac.UnweightedAverage)
	if err != nil {
		t.Fatal(err)
	}
	ch := ChainFromTree(tr, 5)
	model := influence.NewWeightedCascade(g)

	big := influence.NewSampler(g, model, graph.NewRand(3))
	fixed := CompressedEvaluate(ch, big.Batch(40000), 3)

	ad := CompressedEvaluateAdaptive(ch,
		influence.NewSampler(g, model, graph.NewRand(4)), 3, 200, 40000)
	// Exact agreement is not guaranteed (different sample streams), but the
	// chosen community sizes should be close on a 40-node graph.
	szFixed, szAd := 0, 0
	if fixed.Level >= 0 {
		szFixed = ch.Size(fixed.Level)
	}
	if ad.Level >= 0 {
		szAd = ch.Size(ad.Level)
	}
	if szFixed == 0 != (szAd == 0) {
		t.Errorf("found-ness disagrees: fixed %d vs adaptive %d", szFixed, szAd)
	}
	if diff := szFixed - szAd; diff < -25 || diff > 25 {
		t.Errorf("sizes diverge: fixed %d vs adaptive %d (samples %d)", szFixed, szAd, ad.Samples)
	}
}

func TestAdaptiveRespectsCap(t *testing.T) {
	g := graph.ErdosRenyi(30, 90, graph.NewRand(5))
	tr, err := hac.Cluster(g, hac.UnweightedAverage)
	if err != nil {
		t.Fatal(err)
	}
	ch := ChainFromTree(tr, 0)
	s := influence.NewSampler(g, influence.NewWeightedCascade(g), graph.NewRand(6))
	res := CompressedEvaluateAdaptive(ch, s, 2, 10, 25)
	if res.Samples > 25 {
		t.Errorf("cap exceeded: %d", res.Samples)
	}
	// degenerate bounds
	res = CompressedEvaluateAdaptive(ch, s, 2, 0, 0)
	if res.Samples != 1 {
		t.Errorf("min clamp wrong: %d", res.Samples)
	}
}
