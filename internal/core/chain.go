// Package core implements the paper's contributions: the compressed COD
// evaluation (Algorithm 1: shared sample generation via hierarchical-first
// search plus incremental top-k evaluation), the Independent baseline, the
// LORE local hierarchical reclustering (Algorithm 2), the HIMOR index with
// its compressed construction, and the CODU / CODR / CODL query pipelines.
package core

import (
	"fmt"

	"github.com/codsearch/cod/internal/graph"
	"github.com/codsearch/cod/internal/hier"
)

// Chain is H(q): the hierarchical communities containing a query node q,
// ordered deepest (smallest) first; the last community is the whole graph
// the chain was built over. Communities are represented implicitly by the
// level function: node u belongs to C_h iff Level(u) <= h.
type Chain struct {
	q     graph.NodeID
	level []int32 // level[u]: index of the smallest chain community containing u; q has level 0
	sizes []int   // sizes[h] = |C_h|
	depks []int   // dep(C_h), the paper's depth convention (used by LORE)
	// vertices[h] is the hierarchy vertex of C_h when the chain comes from a
	// single tree; nil for merged (LORE) chains.
	vertices []hier.Vertex
}

// ChainFromTree extracts H(q) from a community hierarchy: the proper
// ancestors of leaf q, deepest first. Leaf singletons are not communities.
func ChainFromTree(t *hier.Tree, q graph.NodeID) *Chain {
	anc := t.Ancestors(t.LeafOf(q))
	if len(anc) == 0 {
		// Single-node graph: the only community is the root leaf itself.
		return &Chain{q: q, level: []int32{0}, sizes: []int{1}, depks: []int{1}, vertices: []hier.Vertex{t.Root()}}
	}
	ch := &Chain{
		q:        q,
		level:    make([]int32, t.N()),
		sizes:    make([]int, len(anc)),
		depks:    make([]int, len(anc)),
		vertices: anc,
	}
	top := t.Depth(anc[0]) // depth of C_0 = parent of leaf q
	for h, v := range anc {
		ch.sizes[h] = t.Size(v)
		ch.depks[h] = t.Depth(v)
	}
	leafQ := t.LeafOf(q)
	for u := 0; u < t.N(); u++ {
		if graph.NodeID(u) == q {
			ch.level[u] = 0
			continue
		}
		l := t.LCA(leafQ, t.LeafOf(graph.NodeID(u)))
		ch.level[u] = int32(top - t.Depth(l))
	}
	return ch
}

// Q returns the chain's query node.
func (c *Chain) Q() graph.NodeID { return c.q }

// Len returns |H(q)|, the number of communities in the chain.
func (c *Chain) Len() int { return len(c.sizes) }

// Level returns the index of the smallest chain community containing u, or
// Len() when u lies outside every chain community (possible for restricted
// chains built over a subset of the graph).
func (c *Chain) Level(u graph.NodeID) int { return int(c.level[u]) }

// Size returns |C_h|.
func (c *Chain) Size(h int) int { return c.sizes[h] }

// Depth returns dep(C_h) in the paper's convention.
func (c *Chain) Depth(h int) int { return c.depks[h] }

// Vertex returns the hierarchy vertex backing C_h, or -1 for merged chains.
func (c *Chain) Vertex(h int) hier.Vertex {
	if c.vertices == nil {
		return -1
	}
	return c.vertices[h]
}

// Members returns the nodes of C_h in ascending order.
func (c *Chain) Members(h int) []graph.NodeID {
	if h < 0 || h >= len(c.sizes) {
		return nil
	}
	out := make([]graph.NodeID, 0, c.sizes[h])
	for u, l := range c.level {
		if int(l) <= h {
			out = append(out, graph.NodeID(u))
		}
	}
	return out
}

// Contains reports whether node u belongs to C_h.
func (c *Chain) Contains(u graph.NodeID, h int) bool { return int(c.level[u]) <= h }

// Validate checks internal consistency (sizes monotone, levels within range,
// q at level 0); it is used by tests and returns a descriptive error.
func (c *Chain) Validate() error {
	if c.Len() == 0 {
		return fmt.Errorf("core: empty chain")
	}
	if c.level[c.q] != 0 {
		return fmt.Errorf("core: query node level = %d, want 0", c.level[c.q])
	}
	counts := make([]int, c.Len()+1)
	for _, l := range c.level {
		counts[l]++
	}
	cum := 0
	for h := 0; h < c.Len(); h++ {
		cum += counts[h]
		if cum != c.sizes[h] {
			return fmt.Errorf("core: C_%d has %d members by level, declared size %d", h, cum, c.sizes[h])
		}
		if h > 0 && c.sizes[h] < c.sizes[h-1] {
			return fmt.Errorf("core: sizes not monotone at %d", h)
		}
	}
	return nil
}
