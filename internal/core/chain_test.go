package core

import (
	"testing"

	"github.com/codsearch/cod/internal/graph"
	"github.com/codsearch/cod/internal/hac"
	"github.com/codsearch/cod/internal/hier"
)

// fig2Tree rebuilds the Fig. 2 hierarchy used in the paper's examples (same
// layout as in package hier's tests).
func fig2Tree(t *testing.T) *hier.Tree {
	t.Helper()
	parent := make([]hier.Vertex, 17)
	assign := map[int]int{
		0: 10, 1: 10, 2: 10, 3: 10,
		6: 11, 7: 11,
		4: 13, 5: 13,
		8: 15, 9: 15,
		10: 12, 11: 12,
		12: 14, 13: 14,
		14: 16, 15: 16,
		16: -1,
	}
	for v, p := range assign {
		parent[v] = hier.Vertex(p)
	}
	tr, err := hier.New(10, parent)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func fig2Graph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(10, [][2]graph.NodeID{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},
		{2, 4}, {3, 5}, {3, 7}, {6, 7}, {6, 8}, {7, 8},
		{4, 5}, {4, 6}, {8, 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestChainFromTree(t *testing.T) {
	tr := fig2Tree(t)
	ch := ChainFromTree(tr, 0)
	if ch.Len() != 4 {
		t.Fatalf("|H(v0)| = %d, want 4", ch.Len())
	}
	wantSizes := []int{4, 6, 8, 10}
	wantDepths := []int{4, 3, 2, 1}
	for h := 0; h < 4; h++ {
		if ch.Size(h) != wantSizes[h] {
			t.Errorf("size C_%d = %d, want %d", h, ch.Size(h), wantSizes[h])
		}
		if ch.Depth(h) != wantDepths[h] {
			t.Errorf("dep C_%d = %d, want %d", h, ch.Depth(h), wantDepths[h])
		}
	}
	if err := ch.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// levels: v0..v3 in C_0 (v0 level 0), v6,v7 join at C_1, v4,v5 at C_2,
	// v8,v9 at C_3
	wantLevel := []int{0, 0, 0, 0, 2, 2, 1, 1, 3, 3}
	for u, want := range wantLevel {
		if got := ch.Level(graph.NodeID(u)); got != want {
			t.Errorf("level(v%d) = %d, want %d", u, got, want)
		}
	}
	mem := ch.Members(1)
	want := []graph.NodeID{0, 1, 2, 3, 6, 7}
	if len(mem) != len(want) {
		t.Fatalf("Members(1) = %v", mem)
	}
	for i := range want {
		if mem[i] != want[i] {
			t.Fatalf("Members(1) = %v, want %v", mem, want)
		}
	}
	if !ch.Contains(6, 1) || ch.Contains(6, 0) {
		t.Error("Contains wrong")
	}
}

func TestChainFromClusteredGraph(t *testing.T) {
	g := graph.BarabasiAlbert(60, 2, graph.NewRand(1))
	tr, err := hac.Cluster(g, hac.UnweightedAverage)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []graph.NodeID{0, 17, 59} {
		ch := ChainFromTree(tr, q)
		if err := ch.Validate(); err != nil {
			t.Errorf("q=%d: %v", q, err)
		}
		if ch.Size(ch.Len()-1) != 60 {
			t.Errorf("q=%d: last community size %d, want 60", q, ch.Size(ch.Len()-1))
		}
		if ch.Vertex(0) == -1 {
			t.Errorf("q=%d: tree-backed chain lost vertices", q)
		}
	}
}

func TestChainSingleNode(t *testing.T) {
	tr, err := hier.New(1, []hier.Vertex{-1})
	if err != nil {
		t.Fatal(err)
	}
	ch := ChainFromTree(tr, 0)
	if ch.Len() != 1 || ch.Size(0) != 1 {
		t.Error("degenerate chain wrong")
	}
}
