package core

import (
	"context"

	"github.com/codsearch/cod/internal/graph"
	"github.com/codsearch/cod/internal/influence"
	"github.com/codsearch/cod/internal/obs"
)

// This file implements Algorithm 1, the compressed COD evaluation: a single
// pass of hierarchical-first search (HFS) over a shared pool of RR graphs
// fills one influence bucket per chain community, and an incremental top-k
// sweep over the buckets finds the largest community where the query node is
// top-k. The sampling cost is thereby decoupled from |H(q)| (Theorem 4).

// EvalResult reports the outcome of a compressed COD evaluation.
type EvalResult struct {
	// Level is the chain index of the characteristic community C*(q), or -1
	// when the query node is not top-k in any chain community.
	Level int
	// QCount is the query node's final RR occurrence count (over the whole
	// chain), usable as an influence estimate via Theorem 1.
	QCount int
	// Buckets is the total number of bucket entries produced by HFS; it is
	// bounded by the total number of RR-graph nodes (Lemma 2) and is exposed
	// for tests and instrumentation.
	Buckets int
	// TopK reports, per chain level, whether the query node ranked top-k
	// there. Backed by the evaluation's scratch: valid until the scratch's
	// next evaluation.
	TopK []bool
	// Ranks holds, per chain level, q's empirical influence rank (1 = most
	// influential). Exact when TopK of that level is true; a lower bound
	// otherwise (the sweep tracks only the k largest competitors). Backed by
	// the evaluation's scratch, like TopK.
	Ranks []int32
}

// Equal reports full equality of two results, comparing the scratch-backed
// per-level slices element-wise.
func (r EvalResult) Equal(o EvalResult) bool {
	if r.Level != o.Level || r.QCount != o.QCount || r.Buckets != o.Buckets {
		return false
	}
	if len(r.TopK) != len(o.TopK) || len(r.Ranks) != len(o.Ranks) {
		return false
	}
	for i := range r.TopK {
		if r.TopK[i] != o.TopK[i] {
			return false
		}
	}
	for i := range r.Ranks {
		if r.Ranks[i] != o.Ranks[i] {
			return false
		}
	}
	return true
}

// CompressedEvaluate runs Algorithm 1 over the chain using the given shared
// RR graphs. The RR graphs must have been sampled on the same graph (or the
// same restricted node set) the chain's levels are defined over. k is the
// required influence rank (q is top-k iff fewer than k nodes have strictly
// larger estimated influence).
func CompressedEvaluate(ch *Chain, rrs []*influence.RRGraph, k int) EvalResult {
	res, _ := CompressedEvaluateCtx(context.Background(), ch, rrs, k)
	return res
}

// EvalScratch holds the reusable working buffers of a compressed
// evaluation: the per-level influence buckets, the per-level HFS queues, the
// per-RR visited marks and the running tally map. Reuse is determinism-safe
// because the only map-order-sensitive consumer — the top-k sweep — is
// order-invariant under the canonical influence order (see topK.offer), so a
// scratch-backed run returns exactly the fresh-allocation result. A scratch
// is single-goroutine; the engine pools one per query.
type EvalScratch struct {
	buckets []map[graph.NodeID]int32
	queues  [][]int32
	visited []bool
	tau     map[graph.NodeID]int32
	topk    []bool
	ranks   []int32
}

// NewEvalScratch returns an empty scratch.
func NewEvalScratch() *EvalScratch { return &EvalScratch{} }

// prepare sizes the scratch for a chain of L levels, clearing carried state.
func (sc *EvalScratch) prepare(L int) {
	for len(sc.buckets) < L {
		sc.buckets = append(sc.buckets, make(map[graph.NodeID]int32))
	}
	for h := 0; h < L; h++ {
		clear(sc.buckets[h])
	}
	for len(sc.queues) < L {
		sc.queues = append(sc.queues, nil)
	}
	for h := 0; h < L; h++ {
		sc.queues[h] = sc.queues[h][:0]
	}
	if sc.tau == nil {
		sc.tau = make(map[graph.NodeID]int32, 64)
	} else {
		clear(sc.tau)
	}
	if cap(sc.topk) < L {
		sc.topk = make([]bool, L)
		sc.ranks = make([]int32, L)
	}
	sc.topk = sc.topk[:L]
	sc.ranks = sc.ranks[:L]
}

// visitedFor returns a cleared visited buffer of length n.
func (sc *EvalScratch) visitedFor(n int) []bool {
	if cap(sc.visited) < n {
		sc.visited = make([]bool, n)
	}
	sc.visited = sc.visited[:n]
	clear(sc.visited)
	return sc.visited
}

// CompressedEvaluateCtx is CompressedEvaluate with cancellation: the HFS
// pass polls ctx.Err() once per influence.PollEvery RR graphs and aborts
// with a *influence.CanceledError counting the RR graphs folded in so far.
// An uncancelled call returns exactly CompressedEvaluate's result.
func CompressedEvaluateCtx(ctx context.Context, ch *Chain, rrs []*influence.RRGraph, k int) (EvalResult, error) {
	return CompressedEvaluateScratchCtx(ctx, ch, rrs, k, NewEvalScratch())
}

// CompressedEvaluateScratchCtx is CompressedEvaluateCtx drawing every working
// buffer from sc instead of allocating. Results are identical to the
// allocating call for any (possibly dirty) scratch.
func CompressedEvaluateScratchCtx(ctx context.Context, ch *Chain, rrs []*influence.RRGraph, k int, sc *EvalScratch) (EvalResult, error) {
	rec := obs.FromContext(ctx)
	L := ch.Len()
	sc.prepare(L)
	buckets := sc.buckets[:L]

	// Stage 1: shared sample generation (HFS over every RR graph).
	induce := rec.StartSpan(obs.StageRRInduce)
	entries := 0
	for ri, r := range rrs {
		if ri%influence.PollEvery == 0 {
			if err := ctx.Err(); err != nil {
				induce.EndItems(entries)
				return EvalResult{Level: -1}, &influence.CanceledError{
					Op: "core: compressed evaluation", Done: ri, Total: len(rrs), Cause: err}
			}
		}
		entries += sc.foldRR(ch, L, r)
	}

	induce.EndItems(entries)

	// Stage 2: incremental top-k evaluation.
	sweep := rec.StartSpan(obs.StageTopKSweep)
	tau := sc.tau
	top := newTopK(k)
	best := -1
	for h := 0; h < L; h++ {
		for v, cnt := range buckets[h] {
			nv := tau[v] + cnt
			tau[v] = nv
			top.offer(v, nv)
		}
		ahead := top.aheadOf(ch.q, tau[ch.q])
		sc.ranks[h] = int32(ahead) + 1
		sc.topk[h] = ahead < k
		if sc.topk[h] {
			best = h
		}
	}
	sweep.EndItems(len(tau))
	return EvalResult{Level: best, QCount: int(tau[ch.q]), Buckets: entries,
		TopK: sc.topk[:L], Ranks: sc.ranks[:L]}, nil
}

// foldRR runs the HFS pass of one RR graph, adding its node occurrences to
// the per-level buckets, and returns the bucket entries it produced. Every
// pushed node lands at the current or a later level, so sweeping h from the
// source level upward processes (and then resets) each queue once. The fold
// is purely additive per RR graph, which is what lets StagedEval grow the
// pool across stages at the same total HFS cost as a single full pass.
func (sc *EvalScratch) foldRR(ch *Chain, L int, r *influence.RRGraph) int {
	srcLevel := ch.Level(r.Source())
	if srcLevel >= L {
		return 0 // source outside the chain's universe
	}
	buckets := sc.buckets[:L]
	queues := sc.queues[:L]
	entries := 0
	visited := sc.visitedFor(r.Len())
	visited[0] = true
	queues[srcLevel] = append(queues[srcLevel], 0)
	for h := srcLevel; h < L; h++ {
		q := queues[h]
		for qi := 0; qi < len(q); qi++ {
			p := q[qi]
			node := r.Nodes[p]
			buckets[h][node]++
			entries++
			for _, t := range r.Adj[r.Off[p]:r.Off[p+1]] {
				if visited[t] {
					continue
				}
				visited[t] = true
				lvl := ch.Level(r.Nodes[t])
				if lvl >= L {
					continue
				}
				if lvl < h {
					lvl = h
				}
				queues[lvl] = append(queues[lvl], t)
				q = queues[h] // re-read: the append above may have grown level h
			}
		}
		queues[h] = q[:0]
	}
	return entries
}

// topK maintains the k nodes with the largest counts seen so far. k is small
// (the paper uses k <= 5), so linear operations are fastest.
type topK struct {
	k     int
	nodes []graph.NodeID
	cnts  []int32
}

func newTopK(k int) *topK {
	return &topK{k: k, nodes: make([]graph.NodeID, 0, k), cnts: make([]int32, 0, k)}
}

// offer updates node v's count or inserts it when it outranks the current
// minimum under the canonical influence order (count descending, ties by
// smaller node ID). The tie-break makes the retained set independent of map
// iteration order, so the evaluation is deterministic even on count ties.
func (t *topK) offer(v graph.NodeID, cnt int32) {
	for i, n := range t.nodes {
		if n == v {
			t.cnts[i] = cnt
			return
		}
	}
	if len(t.nodes) < t.k {
		t.nodes = append(t.nodes, v)
		t.cnts = append(t.cnts, cnt)
		return
	}
	mi := 0
	for i := 1; i < len(t.cnts); i++ {
		if t.cnts[i] < t.cnts[mi] || (t.cnts[i] == t.cnts[mi] && t.nodes[i] > t.nodes[mi]) {
			mi = i
		}
	}
	if cnt > t.cnts[mi] || (cnt == t.cnts[mi] && v < t.nodes[mi]) {
		t.nodes[mi] = v
		t.cnts[mi] = cnt
	}
}

// isTopK reports whether q (with count qCnt) ranks among the top k: fewer
// than k tracked nodes are ahead of q under the canonical influence order
// (count descending, ties by smaller node ID), matching rankOf.
func (t *topK) isTopK(q graph.NodeID, qCnt int32) bool {
	return t.aheadOf(q, qCnt) < t.k
}

// aheadOf counts tracked nodes other than q ranked strictly ahead of
// (q, qCnt) under the canonical influence order.
func (t *topK) aheadOf(q graph.NodeID, qCnt int32) int {
	ahead := 0
	for i, n := range t.nodes {
		if n != q && (t.cnts[i] > qCnt || (t.cnts[i] == qCnt && n < q)) {
			ahead++
		}
	}
	return ahead
}

// reset empties the tracked set, keeping capacity.
func (t *topK) reset() {
	t.nodes = t.nodes[:0]
	t.cnts = t.cnts[:0]
}

// boundary returns the smallest tracked count — the rank-k boundary when k
// nodes are tracked — or 0 while fewer than k nodes have been offered.
func (t *topK) boundary() int32 {
	if len(t.cnts) < t.k {
		return 0
	}
	min := t.cnts[0]
	for _, c := range t.cnts[1:] {
		if c < min {
			min = c
		}
	}
	return min
}
