package core

import (
	"context"
	"errors"
	"testing"

	"github.com/codsearch/cod/internal/graph"
	"github.com/codsearch/cod/internal/hac"
	"github.com/codsearch/cod/internal/influence"
)

// referenceCounts computes, per chain level and node, the number of RR
// graphs whose induced RR graph on C_h reaches the node — the quantity the
// compressed HFS buckets must reconstruct cumulatively (Theorem 2).
func referenceCounts(ch *Chain, rrs []*influence.RRGraph) []map[graph.NodeID]int {
	out := make([]map[graph.NodeID]int, ch.Len())
	for h := range out {
		out[h] = map[graph.NodeID]int{}
		for _, r := range rrs {
			reach := r.ReachableWithin(func(v graph.NodeID) bool { return ch.Contains(v, h) })
			for i, ok := range reach {
				if ok {
					out[h][r.Nodes[i]]++
				}
			}
		}
	}
	return out
}

// referenceBest finds the largest level where q is top-k under the reference
// counts and the canonical influence order (count descending, count ties by
// smaller node ID), mirroring CompressedEvaluate's semantics.
func referenceBest(ch *Chain, ref []map[graph.NodeID]int, k int) int {
	best := -1
	for h := range ref {
		ahead := 0
		cq := ref[h][ch.Q()]
		for v, c := range ref[h] {
			if v != ch.Q() && (c > cq || (c == cq && v < ch.Q())) {
				ahead++
			}
		}
		if ahead < k {
			best = h
		}
	}
	return best
}

func TestCompressedMatchesReference(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		rng := graph.NewRand(seed)
		g := graph.ErdosRenyi(40, 110, rng)
		tr, err := hac.Cluster(g, hac.UnweightedAverage)
		if err != nil {
			t.Fatal(err)
		}
		q := graph.NodeID(rng.IntN(40))
		ch := ChainFromTree(tr, q)
		s := influence.NewSampler(g, influence.NewWeightedCascade(g), graph.NewRand(seed+100))
		rrs := s.Batch(400)

		ref := referenceCounts(ch, rrs)
		for _, k := range []int{1, 2, 5} {
			got := CompressedEvaluate(ch, rrs, k)
			want := referenceBest(ch, ref, k)
			if got.Level != want {
				t.Errorf("seed=%d k=%d: level = %d, want %d", seed, k, got.Level, want)
			}
		}
		// The query count must equal its reference count in the top level.
		got := CompressedEvaluate(ch, rrs, 1)
		if got.QCount != ref[ch.Len()-1][q] {
			t.Errorf("seed=%d: QCount = %d, want %d", seed, got.QCount, ref[ch.Len()-1][q])
		}
	}
}

// Cumulative bucket counts must reproduce induced reachability exactly; we
// expose this through QCount at every level by truncating the chain.
func TestCompressedCumulativeCounts(t *testing.T) {
	rng := graph.NewRand(42)
	g := graph.BarabasiAlbert(30, 2, rng)
	tr, err := hac.Cluster(g, hac.UnweightedAverage)
	if err != nil {
		t.Fatal(err)
	}
	q := graph.NodeID(7)
	ch := ChainFromTree(tr, q)
	s := influence.NewSampler(g, influence.NewWeightedCascade(g), graph.NewRand(43))
	rrs := s.Batch(300)
	ref := referenceCounts(ch, rrs)

	// Truncated chains end at level h; QCount then equals ref[h][q].
	for h := 0; h < ch.Len(); h++ {
		trunc := &Chain{q: q, level: ch.level, sizes: ch.sizes[:h+1], depks: ch.depks[:h+1]}
		got := CompressedEvaluate(trunc, rrs, 1)
		if got.QCount != ref[h][q] {
			t.Errorf("level %d: QCount = %d, want %d", h, got.QCount, ref[h][q])
		}
	}
}

func TestCompressedBucketBound(t *testing.T) {
	// Lemma 2: total bucket entries <= total RR-graph nodes.
	rng := graph.NewRand(5)
	g := graph.ErdosRenyi(50, 140, rng)
	tr, err := hac.Cluster(g, hac.UnweightedAverage)
	if err != nil {
		t.Fatal(err)
	}
	ch := ChainFromTree(tr, 3)
	s := influence.NewSampler(g, influence.NewWeightedCascade(g), graph.NewRand(6))
	rrs := s.Batch(500)
	total := 0
	for _, r := range rrs {
		total += r.Len()
	}
	res := CompressedEvaluate(ch, rrs, 3)
	if res.Buckets > total {
		t.Errorf("bucket entries %d exceed RR nodes %d (Lemma 2)", res.Buckets, total)
	}
	if res.Buckets == 0 {
		t.Error("no bucket entries at all")
	}
}

func TestCompressedWholeGraphAlwaysChecked(t *testing.T) {
	// With k >= n, q is trivially top-k everywhere: the whole graph (last
	// level) must be returned.
	rng := graph.NewRand(9)
	g := graph.ErdosRenyi(25, 60, rng)
	tr, err := hac.Cluster(g, hac.UnweightedAverage)
	if err != nil {
		t.Fatal(err)
	}
	ch := ChainFromTree(tr, 11)
	s := influence.NewSampler(g, influence.NewWeightedCascade(g), graph.NewRand(10))
	rrs := s.Batch(200)
	res := CompressedEvaluate(ch, rrs, 25)
	if res.Level != ch.Len()-1 {
		t.Errorf("k=n should select the root community, got level %d", res.Level)
	}
}

func TestCompressedNoSamples(t *testing.T) {
	rng := graph.NewRand(12)
	g := graph.ErdosRenyi(20, 50, rng)
	tr, err := hac.Cluster(g, hac.UnweightedAverage)
	if err != nil {
		t.Fatal(err)
	}
	ch := ChainFromTree(tr, 0)
	res := CompressedEvaluate(ch, nil, 1)
	// Zero samples: every node has count 0, ties favor q, so the whole graph
	// qualifies. This documents the degenerate-behavior contract.
	if res.Level != ch.Len()-1 {
		t.Errorf("level = %d, want %d", res.Level, ch.Len()-1)
	}
	if res.QCount != 0 || res.Buckets != 0 {
		t.Error("unexpected counts with no samples")
	}
}

func TestTopKStructure(t *testing.T) {
	tk := newTopK(2)
	tk.offer(1, 5)
	tk.offer(2, 3)
	tk.offer(3, 4) // evicts node 2
	if !tk.isTopK(1, 5) {
		t.Error("node 1 should be top-2")
	}
	if tk.isTopK(2, 3) {
		t.Error("node 2 should not be top-2 (two strictly larger)")
	}
	// count ties resolve by node ID: tied node 3 has the smaller ID, so it
	// ranks ahead of query 9 and pushes it out of the top-2...
	if tk.isTopK(9, 4) {
		t.Error("count-4 query 9 loses the tie to node 3 -> nodes 1 and 3 ahead, not top-2")
	}
	// ...while a query with the smaller ID wins the same tie.
	if !tk.isTopK(0, 4) {
		t.Error("count-4 query 0 wins the tie against node 3 -> top-2")
	}
	// updating an existing member must not duplicate it
	tk.offer(3, 10)
	if len(tk.nodes) != 2 {
		t.Errorf("topK grew to %d entries", len(tk.nodes))
	}
	if tk.isTopK(9, 4) {
		t.Error("after update, counts 10 and 5 both beat 4")
	}
	// eviction on count ties is deterministic: the tracked node with the
	// largest ID is the minimum, and an equal-count candidate with a smaller
	// ID replaces it regardless of arrival order.
	tk2 := newTopK(2)
	tk2.offer(5, 4)
	tk2.offer(7, 4)
	tk2.offer(3, 4)
	if !tk2.isTopK(3, 4) || tk2.isTopK(7, 4) {
		t.Error("equal-count eviction should retain the smaller node IDs")
	}
}

func TestIndependentAgainstCompressed(t *testing.T) {
	// On a well-separated graph both evaluators should pick the same
	// characteristic community for a clear hub query.
	b := graph.NewBuilder(12, 0)
	star := func(center graph.NodeID, leaves []graph.NodeID) {
		for _, l := range leaves {
			if err := b.AddEdge(center, l); err != nil {
				t.Fatal(err)
			}
		}
	}
	star(0, []graph.NodeID{1, 2, 3, 4, 5})
	star(6, []graph.NodeID{7, 8, 9, 10, 11})
	if err := b.AddEdge(5, 6); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	tr, err := hac.Cluster(g, hac.UnweightedAverage)
	if err != nil {
		t.Fatal(err)
	}
	ch := ChainFromTree(tr, 0)
	model := influence.NewWeightedCascade(g)
	s := influence.NewSampler(g, model, graph.NewRand(77))
	rrs := s.Batch(4000)
	comp := CompressedEvaluate(ch, rrs, 1)
	ind, done := IndependentEvaluate(g, model, ch, 1, 300, graph.NewRand(78), 0)
	if !done {
		t.Fatal("independent did not finish")
	}
	if comp.Level < 0 || ind.Level < 0 {
		t.Fatalf("hub not found as top-1: compressed=%d independent=%d", comp.Level, ind.Level)
	}
	// Node 0 is the strongest hub of its own star (5 leaves); the opposite
	// hub (node 6, degree 6 with the bridge) wins at the root, so both
	// evaluators should settle on at least the 5-node star core.
	if ch.Size(comp.Level) < 5 || ch.Size(ind.Level) < 5 {
		t.Errorf("characteristic community too small: %d / %d",
			ch.Size(comp.Level), ch.Size(ind.Level))
	}
}

func TestIndependentBudget(t *testing.T) {
	rng := graph.NewRand(20)
	g := graph.ErdosRenyi(30, 80, rng)
	tr, err := hac.Cluster(g, hac.UnweightedAverage)
	if err != nil {
		t.Fatal(err)
	}
	ch := ChainFromTree(tr, 0)
	_, done := IndependentEvaluate(g, influence.NewWeightedCascade(g), ch, 1, 100, graph.NewRand(21), 10)
	if done {
		t.Error("tiny budget should truncate the evaluation")
	}
}

func TestExactRankWithin(t *testing.T) {
	// In a star, the center has the highest within-community influence.
	g, err := graph.FromEdges(5, [][2]graph.NodeID{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	if err != nil {
		t.Fatal(err)
	}
	members := []graph.NodeID{0, 1, 2, 3, 4}
	rank := ExactRankWithin(g, influence.NewWeightedCascade(g), members, 0, 200, graph.NewRand(22))
	if rank != 0 {
		t.Errorf("star center rank = %d, want 0", rank)
	}
	rankLeaf := ExactRankWithin(g, influence.NewWeightedCascade(g), members, 3, 200, graph.NewRand(23))
	if rankLeaf == 0 {
		t.Error("leaf should not outrank the center")
	}
}

// The compressed evaluation must also be exact for LT RR graphs (the
// framework is model-agnostic; Theorem 2 only needs live-edge worlds).
func TestCompressedMatchesReferenceLT(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		rng := graph.NewRand(seed + 600)
		g := graph.ErdosRenyi(35, 100, rng)
		tr, err := hac.Cluster(g, hac.UnweightedAverage)
		if err != nil {
			t.Fatal(err)
		}
		q := graph.NodeID(rng.IntN(35))
		ch := ChainFromTree(tr, q)
		s := influence.NewLTSampler(g, influence.UniformLT{G: g}, graph.NewRand(seed+700))
		rrs := s.Batch(400)
		ref := referenceCounts(ch, rrs)
		for _, k := range []int{1, 3} {
			got := CompressedEvaluate(ch, rrs, k)
			want := referenceBest(ch, ref, k)
			if got.Level != want {
				t.Errorf("LT seed=%d k=%d: level %d, want %d", seed, k, got.Level, want)
			}
		}
	}
}

// Lemma 1: the influence rank of a node is non-monotone along its chain —
// we exhibit a graph where the query is top-1 in a small community, loses
// the top-1 spot in a mid-level community, and the evaluator still finds
// the largest qualifying community (which is NOT simply the last prefix).
func TestLemma1NonMonotoneRank(t *testing.T) {
	// Construct: q=0 is the hub of a small star {0..3}; nodes 4..9 form a
	// denser region with a stronger hub 4; the whole graph hangs together.
	g, err := graph.FromEdges(10, [][2]graph.NodeID{
		{0, 1}, {0, 2}, {0, 3}, // q's star
		{4, 5}, {4, 6}, {4, 7}, {4, 8}, {4, 9}, {5, 6}, {7, 8}, // strong hub 4
		{3, 4}, // bridge
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := hac.Cluster(g, hac.UnweightedAverage)
	if err != nil {
		t.Fatal(err)
	}
	ch := ChainFromTree(tr, 0)
	s := influence.NewSampler(g, influence.NewWeightedCascade(g), graph.NewRand(11))
	rrs := s.Batch(5000)
	ref := referenceCounts(ch, rrs)

	// rank of q per level
	ranks := make([]int, ch.Len())
	for h := range ref {
		cq := ref[h][0]
		larger := 0
		for v, c := range ref[h] {
			if v != 0 && c > cq {
				larger++
			}
		}
		ranks[h] = larger
	}
	// q must be top-1 somewhere and not top-1 somewhere above it
	top1Levels := 0
	for _, r := range ranks {
		if r == 0 {
			top1Levels++
		}
	}
	if top1Levels == 0 || top1Levels == len(ranks) {
		t.Skipf("degenerate ranks %v; dendrogram shape changed", ranks)
	}
	res := CompressedEvaluate(ch, rrs, 1)
	want := referenceBest(ch, ref, 1)
	if res.Level != want {
		t.Errorf("level %d, want %d (ranks %v)", res.Level, want, ranks)
	}
}

func TestCompressedEvaluateCtxMatches(t *testing.T) {
	g := graph.ErdosRenyi(60, 200, graph.NewRand(33))
	tr, err := hac.Cluster(g, hac.UnweightedAverage)
	if err != nil {
		t.Fatal(err)
	}
	ch := ChainFromTree(tr, 7)
	rrs := influence.NewSampler(g, influence.NewWeightedCascade(g), graph.NewRand(8)).Batch(400)
	want := CompressedEvaluate(ch, rrs, 3)
	got, err := CompressedEvaluateCtx(context.Background(), ch, rrs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("CompressedEvaluateCtx = %+v, want %+v", got, want)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CompressedEvaluateCtx(ctx, ch, rrs, 3); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled evaluation error = %v", err)
	}
}

// TestCompressedEvaluateScratchReuse locks the determinism contract of the
// scratch-backed evaluation: a scratch reused across chains of different
// shapes must produce exactly the allocating path's result every time.
func TestCompressedEvaluateScratchReuse(t *testing.T) {
	g := graph.ErdosRenyi(60, 200, graph.NewRand(34))
	tr, err := hac.Cluster(g, hac.UnweightedAverage)
	if err != nil {
		t.Fatal(err)
	}
	rrs := influence.NewSampler(g, influence.NewWeightedCascade(g), graph.NewRand(9)).Batch(300)
	sc := NewEvalScratch()
	for _, q := range []graph.NodeID{0, 13, 27, 41, 59, 13} {
		ch := ChainFromTree(tr, q)
		want := CompressedEvaluate(ch, rrs, 3)
		got, err := CompressedEvaluateScratchCtx(context.Background(), ch, rrs, 3, sc)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("q=%d: scratch eval = %+v, want %+v", q, got, want)
		}
	}
}
