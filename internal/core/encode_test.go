package core

import (
	"bytes"
	"testing"

	"github.com/codsearch/cod/internal/graph"
	"github.com/codsearch/cod/internal/hac"
	"github.com/codsearch/cod/internal/influence"
)

func TestHimorRoundTrip(t *testing.T) {
	g := graph.ErdosRenyi(25, 70, graph.NewRand(80))
	tr, err := hac.Cluster(g, hac.UnweightedAverage)
	if err != nil {
		t.Fatal(err)
	}
	idx := BuildHimor(g, tr, influence.NewWeightedCascade(g), 5, graph.NewRand(81))
	var buf bytes.Buffer
	n, err := idx.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadHimor(&buf, tr)
	if err != nil {
		t.Fatal(err)
	}
	if got.Theta() != idx.Theta() || got.ApproxBytes() != idx.ApproxBytes() {
		t.Error("metadata changed in round trip")
	}
	for q := graph.NodeID(0); int(q) < g.N(); q++ {
		for _, v := range tr.Ancestors(tr.LeafOf(q)) {
			if got.Rank(q, v) != idx.Rank(q, v) {
				t.Fatalf("rank differs at q=%d v=%d", q, v)
			}
		}
	}
}

func TestReadHimorRejectsMismatch(t *testing.T) {
	g := graph.ErdosRenyi(25, 70, graph.NewRand(82))
	tr, err := hac.Cluster(g, hac.UnweightedAverage)
	if err != nil {
		t.Fatal(err)
	}
	idx := BuildHimor(g, tr, influence.NewWeightedCascade(g), 3, graph.NewRand(83))
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// wrong tree
	g2 := graph.ErdosRenyi(30, 90, graph.NewRand(84))
	tr2, err := hac.Cluster(g2, hac.UnweightedAverage)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadHimor(bytes.NewReader(raw), tr2); err == nil {
		t.Error("mismatched tree accepted")
	}
	// bad magic
	bad := append([]byte(nil), raw...)
	bad[3] ^= 0x7f
	if _, err := ReadHimor(bytes.NewReader(bad), tr); err == nil {
		t.Error("bad magic accepted")
	}
	// truncated
	if _, err := ReadHimor(bytes.NewReader(raw[:len(raw)/3]), tr); err == nil {
		t.Error("truncated index accepted")
	}
	if _, err := ReadHimor(bytes.NewReader(nil), tr); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestChainVertexAccess(t *testing.T) {
	tr := fig2Tree(t)
	ch := ChainFromTree(tr, 0)
	if ch.Vertex(0) != 10 || ch.Vertex(3) != 16 {
		t.Errorf("tree-backed vertices wrong: %d %d", ch.Vertex(0), ch.Vertex(3))
	}
	merged := &Chain{q: 0, level: make([]int32, 10), sizes: []int{10}, depks: []int{1}}
	if merged.Vertex(0) != -1 {
		t.Error("vertexless chain should report -1")
	}
	if m := merged.Members(-1); m != nil {
		t.Error("out-of-range Members should be nil")
	}
	if m := merged.Members(5); m != nil {
		t.Error("out-of-range Members should be nil")
	}
}

func TestChainValidateCatchesCorruption(t *testing.T) {
	tr := fig2Tree(t)
	ch := ChainFromTree(tr, 0)
	if err := ch.Validate(); err != nil {
		t.Fatal(err)
	}
	// corrupt: q not at level 0
	bad := &Chain{q: 0, level: []int32{1, 0, 0, 0, 0, 0, 0, 0, 0, 0}, sizes: []int{10}, depks: []int{1}}
	if err := bad.Validate(); err == nil {
		t.Error("bad q level accepted")
	}
	// corrupt: declared sizes disagree with levels
	bad2 := &Chain{q: 0, level: make([]int32, 10), sizes: []int{9}, depks: []int{1}}
	if err := bad2.Validate(); err == nil {
		t.Error("size mismatch accepted")
	}
	empty := &Chain{q: 0}
	if err := empty.Validate(); err == nil {
		t.Error("empty chain accepted")
	}
}
