package core

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand/v2"
	"sort"

	"github.com/codsearch/cod/internal/graph"
	"github.com/codsearch/cod/internal/hier"
	"github.com/codsearch/cod/internal/influence"
	"github.com/codsearch/cod/internal/obs"
)

// Himor is the HIMOR index (§IV-B): for every node v, the influence rank of
// v inside every community of the non-attributed hierarchy containing v.
// Construction is compressed: one shared pool of RR graphs, HFS over the
// tree to fill per-vertex buckets, and a bottom-up sorted merge that turns
// cumulative counts into ranks (each node is merged dep(v) times).
type Himor struct {
	t     *hier.Tree
	theta int

	// rank[u][i] is u's influence rank in its i-th ancestor community
	// (i = 0 is the parent of leaf u, the last is the root); -1 means "u
	// appeared in no RR graph within that community", in which case the rank
	// is nnz of the vertex (all nonzero-count nodes beat u).
	rank [][]int32
	// nnz[vertex] is the number of nodes with nonzero cumulative count.
	nnz []int32
}

// BuildHimor constructs the HIMOR index over hierarchy t of graph g, using
// theta RR graphs per node (Θ = theta·|V|) under the given IC influence
// model. For other models use BuildHimorWithSampler.
func BuildHimor(g *graph.Graph, t *hier.Tree, model influence.Model, theta int, rng *rand.Rand) *Himor {
	return BuildHimorWithSampler(g, t, influence.NewSampler(g, model, rng), theta)
}

// BuildHimorWithSampler constructs the HIMOR index from any RR-graph
// sampler (IC, LT, ...), using Θ = theta·|V| samples.
func BuildHimorWithSampler(g *graph.Graph, t *hier.Tree, sampler influence.GraphSampler, theta int) *Himor {
	return buildHimor(g, t, theta, func() *influence.RRGraph { return sampler.RRGraph() })
}

// BuildHimorWithSamplerCtx is BuildHimorWithSampler with cancellation: the
// sampling runs through influence.BatchCtx, which polls ctx.Err() at a
// bounded interval. Uncancelled builds are identical.
func BuildHimorWithSamplerCtx(ctx context.Context, g *graph.Graph, t *hier.Tree, sampler influence.GraphSampler, theta int) (*Himor, error) {
	pool, err := influence.BatchCtx(ctx, sampler, theta*g.N())
	if err != nil {
		return nil, err
	}
	span := obs.FromContext(ctx).StartSpan(obs.StageHimorBuild)
	i := 0
	h := buildHimor(g, t, theta, func() *influence.RRGraph {
		r := pool[i]
		i++
		return r
	})
	span.EndItems(len(pool))
	return h, nil
}

// BuildHimorParallel constructs the index from an RR pool sampled across
// workers goroutines under the IC model (sampling dominates construction
// cost, so parallelizing it captures most of the speedup; the HFS and
// bottom-up merge stay single-threaded and deterministic). Each pool sample
// is seeded from its index, so the index is byte-identical for any workers.
func BuildHimorParallel(g *graph.Graph, t *hier.Tree, model influence.Model, theta int, seed uint64, workers int) *Himor {
	h, _ := BuildHimorParallelCtx(context.Background(), g, t, model, theta, seed, workers)
	return h
}

// BuildHimorParallelCtx is BuildHimorParallel with cancellation: every
// sampling worker polls ctx.Err() at a bounded interval (see
// influence.ParallelBatchCtx), so shutdown can abandon a warmup in flight.
// Uncancelled builds are byte-identical for any worker count.
func BuildHimorParallelCtx(ctx context.Context, g *graph.Graph, t *hier.Tree, model influence.Model, theta int, seed uint64, workers int) (*Himor, error) {
	pool, err := influence.ParallelBatchCtx(ctx, g, model, theta*g.N(), seed, workers)
	if err != nil {
		return nil, err
	}
	span := obs.FromContext(ctx).StartSpan(obs.StageHimorBuild)
	i := 0
	h := buildHimor(g, t, theta, func() *influence.RRGraph {
		r := pool[i]
		i++
		return r
	})
	span.EndItems(len(pool))
	return h, nil
}

// buildHimor runs the compressed construction, drawing Θ = theta·|V| RR
// graphs from next().
func buildHimor(g *graph.Graph, t *hier.Tree, theta int, next func() *influence.RRGraph) *Himor {
	n := g.N()
	h := &Himor{t: t, theta: theta}
	h.rank = make([][]int32, n)
	for u := 0; u < n; u++ {
		depth := t.Depth(t.LeafOf(graph.NodeID(u))) - 1 // number of proper ancestors
		r := make([]int32, depth)
		for i := range r {
			r[i] = -1
		}
		h.rank[u] = r
	}
	h.nnz = make([]int32, t.NumVertices())

	// Stage 1: HFS over Θ RR graphs. For an RR graph rooted at s the tags
	// form the ancestor chain of leaf(s), so the traversal is exactly the
	// chain HFS of Algorithm 1 with buckets living on tree vertices.
	buckets := make([]map[graph.NodeID]int32, t.NumVertices())
	theta0 := theta * n
	queues := make([][]int32, 0, 64)
	for i := 0; i < theta0; i++ {
		r := next()
		src := r.Source()
		chainVerts := t.Ancestors(t.LeafOf(src))
		if len(chainVerts) == 0 {
			continue // single-node graph
		}
		L := len(chainVerts)
		topDepth := t.Depth(chainVerts[0])
		if cap(queues) < L {
			queues = make([][]int32, L)
		}
		queues = queues[:L]
		visited := make([]bool, r.Len())
		visited[0] = true
		queues[0] = append(queues[0], 0)
		leafSrc := t.LeafOf(src)
		for lev := 0; lev < L; lev++ {
			q := queues[lev]
			for qi := 0; qi < len(q); qi++ {
				p := q[qi]
				node := r.Nodes[p]
				vert := chainVerts[lev]
				if buckets[vert] == nil {
					buckets[vert] = make(map[graph.NodeID]int32)
				}
				buckets[vert][node]++
				for _, tp := range r.Adj[r.Off[p]:r.Off[p+1]] {
					if visited[tp] {
						continue
					}
					visited[tp] = true
					u := r.Nodes[tp]
					lu := 0
					if u != src {
						lu = topDepth - t.Depth(t.LCA(leafSrc, t.LeafOf(u)))
					}
					if lu < lev {
						lu = lev
					}
					queues[lu] = append(queues[lu], tp)
					q = queues[lev]
				}
			}
			queues[lev] = q[:0]
		}
	}

	// Stage 2: bottom-up merge. Processing vertices deepest-first guarantees
	// children are folded before parents. cum[v] holds the cumulative counts
	// of v's subtree; maps are merged small-to-large.
	cum := make([]map[graph.NodeID]int32, t.NumVertices())
	type entry struct {
		node graph.NodeID
		cnt  int32
	}
	var scratch []entry
	for _, v := range t.VerticesByDepthDesc() {
		if t.IsLeaf(v) {
			continue
		}
		merged := buckets[v]
		buckets[v] = nil
		for _, c := range t.Children(v) {
			child := cum[c]
			cum[c] = nil
			if child == nil {
				continue
			}
			if merged == nil || len(merged) < len(child) {
				merged, child = child, merged
			}
			for node, cnt := range child {
				merged[node] += cnt
			}
		}
		if merged == nil {
			merged = make(map[graph.NodeID]int32)
		}
		cum[v] = merged
		h.nnz[v] = int32(len(merged))

		// Rank assignment under the canonical influence order (count
		// descending, ties by smaller node ID): rank = sorted position, i.e.
		// the number of nodes ranked ahead. Matching rankOf keeps online and
		// index-based ranks identical even on count ties.
		scratch = scratch[:0]
		for node, cnt := range merged {
			scratch = append(scratch, entry{node, cnt})
		}
		sort.Slice(scratch, func(i, j int) bool {
			if scratch[i].cnt != scratch[j].cnt {
				return scratch[i].cnt > scratch[j].cnt
			}
			return scratch[i].node < scratch[j].node
		})
		depthV := t.Depth(v)
		for i, e := range scratch {
			idx := (t.Depth(t.LeafOf(e.node)) - 1) - depthV
			h.rank[e.node][idx] = int32(i)
		}
	}
	return h
}

// Rank returns rank_C(q) for a community vertex v that contains q: the
// number of nodes in C ranked ahead of q under the canonical influence order
// (estimated influence descending, ties by smaller node ID).
func (h *Himor) Rank(q graph.NodeID, v hier.Vertex) int {
	idx := (h.t.Depth(h.t.LeafOf(q)) - 1) - h.t.Depth(v)
	if idx < 0 || idx >= len(h.rank[q]) {
		return int(h.nnz[v])
	}
	if r := h.rank[q][idx]; r >= 0 {
		return int(r)
	}
	return int(h.nnz[v])
}

// Theta returns the per-node sampling multiplier the index was built with.
func (h *Himor) Theta() int { return h.theta }

// Tree returns the hierarchy the index is defined over.
func (h *Himor) Tree() *hier.Tree { return h.t }

// ApproxBytes estimates the in-memory footprint of the index (rank arrays
// plus per-vertex counters), for the Table II overhead experiment.
func (h *Himor) ApproxBytes() int64 {
	var b int64
	for _, r := range h.rank {
		b += int64(len(r)) * 4
	}
	b += int64(len(h.nnz)) * 4
	return b
}

var himorMagic = [8]byte{'c', 'o', 'd', 'h', 'i', 'm', 'r', '1'}

// WriteTo serializes the index (without its tree: persist the tree
// separately and pass it to ReadHimor, which validates the shapes match).
func (h *Himor) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var total int64
	write := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		total += int64(binary.Size(v))
		return nil
	}
	if err := write(himorMagic); err != nil {
		return total, err
	}
	if err := write(int64(h.theta)); err != nil {
		return total, err
	}
	if err := write(int64(len(h.nnz))); err != nil {
		return total, err
	}
	if err := write(h.nnz); err != nil {
		return total, err
	}
	if err := write(int64(len(h.rank))); err != nil {
		return total, err
	}
	for _, r := range h.rank {
		if err := write(int64(len(r))); err != nil {
			return total, err
		}
		if err := write(r); err != nil {
			return total, err
		}
	}
	return total, bw.Flush()
}

// ReadHimor deserializes an index written by WriteTo, binding it to t. The
// per-node rank array lengths must match t's leaf depths.
func ReadHimor(r io.Reader, t *hier.Tree) (*Himor, error) {
	br := r // exact-size reads only; the stream may carry trailing data
	var magic [8]byte
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("core: reading himor magic: %w", err)
	}
	if magic != himorMagic {
		return nil, fmt.Errorf("core: bad himor magic %q", magic)
	}
	var theta, nv, n int64
	if err := binary.Read(br, binary.LittleEndian, &theta); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &nv); err != nil {
		return nil, err
	}
	if int(nv) != t.NumVertices() {
		return nil, fmt.Errorf("core: himor has %d vertices, tree has %d", nv, t.NumVertices())
	}
	h := &Himor{t: t, theta: int(theta), nnz: make([]int32, nv)}
	if err := binary.Read(br, binary.LittleEndian, h.nnz); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if int(n) != t.N() {
		return nil, fmt.Errorf("core: himor has %d nodes, tree has %d", n, t.N())
	}
	h.rank = make([][]int32, n)
	for u := int64(0); u < n; u++ {
		var l int64
		if err := binary.Read(br, binary.LittleEndian, &l); err != nil {
			return nil, err
		}
		want := int64(t.Depth(t.LeafOf(graph.NodeID(u))) - 1)
		if l != want {
			return nil, fmt.Errorf("core: node %d has %d ranks, tree expects %d", u, l, want)
		}
		row := make([]int32, l)
		if err := binary.Read(br, binary.LittleEndian, row); err != nil {
			return nil, err
		}
		h.rank[u] = row
	}
	return h, nil
}
