package core

import (
	"testing"

	"github.com/codsearch/cod/internal/graph"
	"github.com/codsearch/cod/internal/hac"
	"github.com/codsearch/cod/internal/hier"
	"github.com/codsearch/cod/internal/influence"
)

// referenceHimorRank recomputes rank_C(q) from the same RR graph pool by
// brute-force induced reachability (Theorem 2), the quantity HIMOR's
// compressed construction must reproduce.
func referenceHimorRank(t *hier.Tree, rrs []*influence.RRGraph, q graph.NodeID, v hier.Vertex) int {
	members := t.Members(v)
	in := map[graph.NodeID]bool{}
	for _, m := range members {
		in[m] = true
	}
	counts := map[graph.NodeID]int{}
	for _, r := range rrs {
		reach := r.ReachableWithin(func(u graph.NodeID) bool { return in[u] })
		for i, ok := range reach {
			if ok {
				counts[r.Nodes[i]]++
			}
		}
	}
	cq := counts[q]
	ahead := 0
	for u, c := range counts {
		if u != q && (c > cq || (c == cq && u < q)) {
			ahead++
		}
	}
	return ahead
}

func TestHimorMatchesReference(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		g := graph.ErdosRenyi(35, 100, graph.NewRand(seed+50))
		tr, err := hac.Cluster(g, hac.UnweightedAverage)
		if err != nil {
			t.Fatal(err)
		}
		model := influence.NewWeightedCascade(g)
		theta := 8
		idx := BuildHimor(g, tr, model, theta, graph.NewRand(seed+60))

		// Regenerate the identical RR pool (same seed, same consumption
		// order) for the reference computation.
		s := influence.NewSampler(g, model, graph.NewRand(seed+60))
		rrs := s.Batch(theta * g.N())

		for _, q := range []graph.NodeID{0, 7, 19, 34} {
			for _, v := range tr.Ancestors(tr.LeafOf(q)) {
				got := idx.Rank(q, v)
				want := referenceHimorRank(tr, rrs, q, v)
				if got != want {
					t.Errorf("seed=%d q=%d vertex=%d (size %d): rank=%d want %d",
						seed, q, v, tr.Size(v), got, want)
				}
			}
		}
	}
}

func TestHimorRootRanksEveryNode(t *testing.T) {
	g := graph.BarabasiAlbert(40, 2, graph.NewRand(70))
	tr, err := hac.Cluster(g, hac.UnweightedAverage)
	if err != nil {
		t.Fatal(err)
	}
	idx := BuildHimor(g, tr, influence.NewWeightedCascade(g), 10, graph.NewRand(71))
	root := tr.Root()
	// Ranks at the root are a permutation-with-ties: all in [0, n).
	for q := graph.NodeID(0); q < 40; q++ {
		r := idx.Rank(q, root)
		if r < 0 || r >= 40 {
			t.Errorf("rank_root(%d) = %d out of range", q, r)
		}
	}
	// In a BA graph node 0 (oldest, hub) should rank near the top globally.
	if r := idx.Rank(0, root); r > 8 {
		t.Errorf("hub rank at root = %d, expected near 0", r)
	}
}

func TestHimorAccessors(t *testing.T) {
	g := graph.ErdosRenyi(20, 50, graph.NewRand(72))
	tr, err := hac.Cluster(g, hac.UnweightedAverage)
	if err != nil {
		t.Fatal(err)
	}
	idx := BuildHimor(g, tr, influence.NewWeightedCascade(g), 5, graph.NewRand(73))
	if idx.Theta() != 5 {
		t.Errorf("Theta = %d", idx.Theta())
	}
	if idx.Tree() != tr {
		t.Error("Tree accessor broken")
	}
	if idx.ApproxBytes() <= 0 {
		t.Error("ApproxBytes must be positive")
	}
}

func TestHimorZeroCountNodeRank(t *testing.T) {
	// A node that never appears in any RR graph within a community gets rank
	// = nnz (every counted node beats it). With theta=0 there are no samples
	// at all, so every rank must be 0 (ties) -> top-k for any k >= 1.
	g := graph.ErdosRenyi(15, 40, graph.NewRand(74))
	tr, err := hac.Cluster(g, hac.UnweightedAverage)
	if err != nil {
		t.Fatal(err)
	}
	idx := BuildHimor(g, tr, influence.NewWeightedCascade(g), 0, graph.NewRand(75))
	for q := graph.NodeID(0); q < 15; q++ {
		for _, v := range tr.Ancestors(tr.LeafOf(q)) {
			if r := idx.Rank(q, v); r != 0 {
				t.Errorf("rank with no samples = %d, want 0", r)
			}
		}
	}
}

func TestHimorParallelMatchesPool(t *testing.T) {
	g := graph.ErdosRenyi(30, 90, graph.NewRand(90))
	tr, err := hac.Cluster(g, hac.UnweightedAverage)
	if err != nil {
		t.Fatal(err)
	}
	model := influence.NewWeightedCascade(g)
	idx := BuildHimorParallel(g, tr, model, 4, 91, 4)
	// Reference from the identical pool, consumed in the same order.
	pool := influence.ParallelBatch(g, model, 4*g.N(), 91, 4)
	i := 0
	ref := buildHimor(g, tr, 4, func() *influence.RRGraph { r := pool[i]; i++; return r })
	for q := graph.NodeID(0); int(q) < g.N(); q++ {
		for _, v := range tr.Ancestors(tr.LeafOf(q)) {
			if idx.Rank(q, v) != ref.Rank(q, v) {
				t.Fatalf("parallel rank differs at q=%d v=%d", q, v)
			}
		}
	}
	if idx.ApproxBytes() != ref.ApproxBytes() {
		t.Error("sizes differ")
	}
}
