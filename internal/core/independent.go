package core

import (
	"math/rand/v2"

	"github.com/codsearch/cod/internal/graph"
	"github.com/codsearch/cod/internal/influence"
)

// IndependentEvaluate is the naïve baseline of §V-C: every community in the
// chain is evaluated from scratch with its own pool of θ·|C| RR sets sampled
// within the community, so the total sampling cost grows with
// Σ_{C∈H(q)} |C| instead of being shared. It returns the same EvalResult
// shape as CompressedEvaluate; Buckets reports the total RR-set node count.
//
// budget, when positive, caps the total number of RR sets across all
// communities; if the cap is hit the evaluation stops early and returns the
// best level found so far with Truncated untouched communities (the caller
// can detect this via the second return value being false).
func IndependentEvaluate(g *graph.Graph, model influence.Model, ch *Chain, k, theta int, rng *rand.Rand, budget int) (EvalResult, bool) {
	s := influence.NewSampler(g, model, rng)
	res := EvalResult{Level: -1}
	spent := 0
	for h := 0; h < ch.Len(); h++ {
		members := ch.Members(h)
		nSets := theta * len(members)
		if budget > 0 && spent+nSets > budget {
			return res, false
		}
		spent += nSets
		member := func(u graph.NodeID) bool { return ch.Contains(u, h) }
		counts := make(map[graph.NodeID]int, len(members))
		for i := 0; i < nSets; i++ {
			src := members[rng.IntN(len(members))]
			set := s.RRSetWithin(src, member)
			for _, v := range set {
				counts[v]++
			}
			res.Buckets += len(set)
		}
		if rankOf(counts, ch.q) < k {
			res.Level = h
			res.QCount = counts[ch.q]
		}
	}
	return res, true
}

// rankOf returns the number of nodes ranked ahead of q under the canonical
// influence order: count descending, ties broken by smaller node ID. The
// tie-break keeps ranks stable across runs (and map iteration orders) and
// matches the ordering used by HIMOR construction and the top-k sweep.
func rankOf(counts map[graph.NodeID]int, q graph.NodeID) int {
	cq := counts[q]
	ahead := 0
	for v, c := range counts {
		if v != q && (c > cq || (c == cq && v < q)) {
			ahead++
		}
	}
	return ahead
}

// ExactRankWithin estimates rank_C(q) with a dedicated pool of RR sets per
// node count (the paper's ground-truth procedure for top-k precision uses
// 1000 RR sets per community node). It returns the number of community
// members with a strictly larger estimated influence than q.
func ExactRankWithin(g *graph.Graph, model influence.Model, members []graph.NodeID, q graph.NodeID, setsPerNode int, rng *rand.Rand) int {
	s := influence.NewSampler(g, model, rng)
	in := make(map[graph.NodeID]bool, len(members))
	for _, v := range members {
		in[v] = true
	}
	member := func(u graph.NodeID) bool { return in[u] }
	counts := make(map[graph.NodeID]int, len(members))
	total := setsPerNode * len(members)
	for i := 0; i < total; i++ {
		src := members[rng.IntN(len(members))]
		for _, v := range s.RRSetWithin(src, member) {
			counts[v]++
		}
	}
	return rankOf(counts, q)
}
