package core

import (
	"context"
	"fmt"

	"github.com/codsearch/cod/internal/graph"
	"github.com/codsearch/cod/internal/hac"
	"github.com/codsearch/cod/internal/hier"
	"github.com/codsearch/cod/internal/obs"
)

// This file implements LORE (Algorithm 2): choose the community C_ℓ ∈ H(q)
// with the largest reclustering score r(C) (Definition 4, computed with the
// recursion of Eq. 3), recluster the attribute-weighted subgraph induced by
// C_ℓ, and splice the result under C_ℓ's ancestors to obtain the
// attribute-aware chain H_ℓ(q).

// AttributeWeighted returns g_ℓ: a copy of g whose edges between two nodes
// both carrying attr get weight boosted by beta (w' = w·(1+beta)). The
// transformation scheme is orthogonal to the paper's contribution; this is
// the simplest synergized-weight instance.
func AttributeWeighted(g *graph.Graph, attr graph.AttrID, beta float64) *graph.Graph {
	return graph.Reweight(g, func(u, v graph.NodeID, w float64) float64 {
		if g.HasAttr(u, attr) && g.HasAttr(v, attr) {
			return w * (1 + beta)
		}
		return w
	})
}

// ReclusterScores computes r(C_h) for every community in H(q) (Definition 4
// via Eq. 3) in O(|E_g|) time: one LCA per query-attributed edge plus a
// prefix sweep over the chain. Returned scores align with ChainFromTree(t,q);
// best is the argmax over h >= 1 (Algorithm 2 starts at i = 1), with ties
// resolved toward the deepest community. When the graph has no
// query-attributed edge incident to the chain, best defaults to min(1, L-1).
func ReclusterScores(g *graph.Graph, t *hier.Tree, q graph.NodeID, attr graph.AttrID) (scores []float64, best int) {
	ch := ChainFromTree(t, q)
	L := ch.Len()
	delta := make([]int64, L)
	leafQ := t.LeafOf(q)
	topDepth := ch.Depth(0)
	g.ForEachEdge(func(u, v graph.NodeID, _ float64) {
		if !g.HasAttr(u, attr) || !g.HasAttr(v, attr) {
			return
		}
		c := t.LCANodes(u, v)
		if !t.IsAncestor(c, leafQ) {
			return // lca does not contain q (Alg. 2 line 10)
		}
		idx := topDepth - t.Depth(c)
		if idx >= 0 && idx < L {
			delta[idx]++
		}
	})
	scores = make([]float64, L)
	var num int64
	for h := 0; h < L; h++ {
		num += delta[h] * int64(ch.Depth(h))
		scores[h] = float64(num) / float64(ch.Size(h))
	}
	best = -1
	var bestScore float64
	for h := 1; h < L; h++ {
		if scores[h] > bestScore {
			bestScore = scores[h]
			best = h
		}
	}
	if best == -1 {
		best = 1
		if best >= L {
			best = L - 1
		}
	}
	return scores, best
}

// Reclustering is the output of LORE: the chosen community C_ℓ, the induced
// attribute-weighted subgraph, and the local hierarchy over it.
type Reclustering struct {
	// CL is the chosen community vertex in the non-attributed hierarchy.
	CL hier.Vertex
	// ChainIndex is C_ℓ's index within H(q) of the non-attributed hierarchy.
	ChainIndex int
	// Scores are the reclustering scores per chain community (diagnostics).
	Scores []float64
	// Sub is the subgraph of g_ℓ induced by C_ℓ (local node ids).
	Sub *graph.Subgraph
	// Local is the hierarchy over Sub.G produced by reclustering.
	Local *hier.Tree
}

// Lore runs Algorithm 2: pick C_ℓ by reclustering score over the
// non-attributed hierarchy t, induce C_ℓ's subgraph, apply the attribute
// weights to that subgraph only, and recluster it. Weighting only the
// induced subgraph is equivalent to inducing from the globally weighted g_ℓ
// (edge weights depend only on endpoint attributes) but costs O(|C_ℓ|)
// instead of O(|E_g|) per query.
func Lore(g *graph.Graph, t *hier.Tree, q graph.NodeID, attr graph.AttrID, beta float64, linkage hac.Linkage) (*Reclustering, error) {
	return LoreCtx(context.Background(), g, t, q, attr, beta, linkage)
}

// LoreCtx is Lore with cancellation: ctx is checked at every phase boundary
// (before scoring, before inducing, inside the recluster's merge loop via
// hac.ClusterCtx), so a canceled query never starts the expensive local
// clustering. Uncancelled results are identical to Lore.
func LoreCtx(ctx context.Context, g *graph.Graph, t *hier.Tree, q graph.NodeID, attr graph.AttrID, beta float64, linkage hac.Linkage) (*Reclustering, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: lore canceled before scoring: %w", err)
	}
	score := obs.FromContext(ctx).StartSpan(obs.StageLoreScore)
	scores, best := ReclusterScores(g, t, q, attr)
	score.EndItems(len(scores))
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: lore canceled before reclustering: %w", err)
	}
	ch := ChainFromTree(t, q)
	cl := ch.Vertex(best)
	sub := graph.Induce(g, t.Members(cl))
	weighted := AttributeWeighted(sub.G, attr, beta)
	local, err := hac.ClusterCtx(ctx, weighted, linkage)
	if err != nil {
		return nil, fmt.Errorf("core: reclustering C_ℓ: %w", err)
	}
	return &Reclustering{CL: cl, ChainIndex: best, Scores: scores, Sub: sub, Local: local}, nil
}

// MergedChain builds H_ℓ(q): the ancestors of q inside the reclustered local
// hierarchy (deepest first, ending at C_ℓ itself) followed by the strict
// ancestors of C_ℓ in the non-attributed hierarchy. Levels are defined over
// the full graph's node ids.
func MergedChain(g *graph.Graph, t *hier.Tree, rec *Reclustering, q graph.NodeID) *Chain {
	localQ := rec.Sub.Local(q)
	if localQ < 0 {
		panic(fmt.Sprintf("core: query node %d not inside C_ℓ", q))
	}
	inner := rec.Local.Ancestors(rec.Local.LeafOf(localQ))
	if len(inner) == 0 {
		// C_ℓ is a single node (degenerate); treat its leaf as the only
		// inner community.
		inner = []hier.Vertex{rec.Local.Root()}
	}
	outer := t.Ancestors(rec.CL)
	L := len(inner) + len(outer)
	chain := &Chain{
		q:     q,
		level: make([]int32, g.N()),
		sizes: make([]int, L),
		depks: make([]int, L),
	}
	// Depths: the reclustered communities sit below C_ℓ, so give inner[i] the
	// depth dep(C_ℓ) + (distance above the splice point); these values are
	// only diagnostic after reclustering but stay strictly monotone.
	clDepth := t.Depth(rec.CL)
	for i, v := range inner {
		chain.sizes[i] = rec.Local.Size(v)
		chain.depks[i] = clDepth + (len(inner) - 1 - i)
	}
	for j, v := range outer {
		chain.sizes[len(inner)+j] = t.Size(v)
		chain.depks[len(inner)+j] = t.Depth(v)
	}

	localLeafQ := rec.Local.LeafOf(localQ)
	localTop := 0
	if p := rec.Local.Parent(localLeafQ); p != -1 {
		localTop = rec.Local.Depth(p)
	}
	leafQ := t.LeafOf(q)
	outerTop := 0
	if len(outer) > 0 {
		outerTop = t.Depth(outer[0])
	}
	for u := 0; u < g.N(); u++ {
		node := graph.NodeID(u)
		if lu := rec.Sub.Local(node); lu >= 0 {
			if lu == localQ {
				chain.level[u] = 0
				continue
			}
			l := rec.Local.LCA(localLeafQ, rec.Local.LeafOf(lu))
			chain.level[u] = int32(localTop - rec.Local.Depth(l))
			continue
		}
		// u outside C_ℓ: its smallest shared community is an ancestor of C_ℓ.
		l := t.LCA(leafQ, t.LeafOf(node))
		chain.level[u] = int32(len(inner) + outerTop - t.Depth(l))
	}
	return chain
}

// InnerChain returns only the reclustered part H_ℓ(q|C_ℓ): the ancestors of
// q within the local hierarchy, with levels over the full graph's node ids
// (nodes outside C_ℓ get level = Len(), i.e. outside every community).
func InnerChain(g *graph.Graph, t *hier.Tree, rec *Reclustering, q graph.NodeID) *Chain {
	merged := MergedChain(g, t, rec, q)
	localQ := rec.Sub.Local(q)
	innerLen := len(rec.Local.Ancestors(rec.Local.LeafOf(localQ)))
	if innerLen == 0 {
		innerLen = 1
	}
	chain := &Chain{
		q:     q,
		level: make([]int32, g.N()),
		sizes: merged.sizes[:innerLen:innerLen],
		depks: merged.depks[:innerLen:innerLen],
	}
	for u := range chain.level {
		if l := merged.level[u]; int(l) < innerLen {
			chain.level[u] = l
		} else {
			chain.level[u] = int32(innerLen)
		}
	}
	return chain
}
