package core

import (
	"context"
	"fmt"

	"github.com/codsearch/cod/internal/graph"
	"github.com/codsearch/cod/internal/hac"
	"github.com/codsearch/cod/internal/hier"
	"github.com/codsearch/cod/internal/obs"
)

// This file is the predicate form of LORE: compound boolean predicates from
// the query DSL reduce at this layer to a node membership mask in[u] (does u
// satisfy the predicate), and every attribute-driven step — edge weighting,
// reclustering scores, the local recluster — runs against that mask instead
// of a single attribute. The single-attribute functions in lore.go are kept
// verbatim as the legacy fast path: a mask built from HasAttr(·, a) makes the
// predicate variants produce identical results (locked by tests), but the
// legacy path avoids materializing the mask at all.

// PredWeighted returns g_P: a copy of g whose edges between two nodes both
// satisfying the predicate mask get weight boosted by beta (w' = w·(1+beta)).
// It is AttributeWeighted generalized from one attribute to a mask.
func PredWeighted(g *graph.Graph, in []bool, beta float64) *graph.Graph {
	return graph.Reweight(g, func(u, v graph.NodeID, w float64) float64 {
		if in[u] && in[v] {
			return w * (1 + beta)
		}
		return w
	})
}

// ReclusterScoresPred computes r(C_h) for every community in H(q) counting
// edges whose endpoints both satisfy the predicate mask (ReclusterScores with
// HasAttr replaced by the mask). Score and tie-break semantics are identical:
// best is the argmax over h >= 1, ties toward the deepest community, and
// min(1, L-1) when no predicate-satisfying edge touches the chain.
func ReclusterScoresPred(g *graph.Graph, t *hier.Tree, q graph.NodeID, in []bool) (scores []float64, best int) {
	ch := ChainFromTree(t, q)
	L := ch.Len()
	delta := make([]int64, L)
	leafQ := t.LeafOf(q)
	topDepth := ch.Depth(0)
	g.ForEachEdge(func(u, v graph.NodeID, _ float64) {
		if !in[u] || !in[v] {
			return
		}
		c := t.LCANodes(u, v)
		if !t.IsAncestor(c, leafQ) {
			return
		}
		idx := topDepth - t.Depth(c)
		if idx >= 0 && idx < L {
			delta[idx]++
		}
	})
	scores = make([]float64, L)
	var num int64
	for h := 0; h < L; h++ {
		num += delta[h] * int64(ch.Depth(h))
		scores[h] = float64(num) / float64(ch.Size(h))
	}
	best = -1
	var bestScore float64
	for h := 1; h < L; h++ {
		if scores[h] > bestScore {
			bestScore = scores[h]
			best = h
		}
	}
	if best == -1 {
		best = 1
		if best >= L {
			best = L - 1
		}
	}
	return scores, best
}

// LorePredCtx runs Algorithm 2 against a predicate mask: pick C_ℓ by
// predicate reclustering score, induce its subgraph, boost the edges whose
// endpoints both satisfy the predicate, and recluster. Cancellation points
// match LoreCtx exactly.
func LorePredCtx(ctx context.Context, g *graph.Graph, t *hier.Tree, q graph.NodeID, in []bool, beta float64, linkage hac.Linkage) (*Reclustering, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: lore canceled before scoring: %w", err)
	}
	score := obs.FromContext(ctx).StartSpan(obs.StageLoreScore)
	scores, best := ReclusterScoresPred(g, t, q, in)
	score.EndItems(len(scores))
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: lore canceled before reclustering: %w", err)
	}
	ch := ChainFromTree(t, q)
	cl := ch.Vertex(best)
	sub := graph.Induce(g, t.Members(cl))
	localIn := make([]bool, len(sub.ToParent))
	for lu, pu := range sub.ToParent {
		localIn[lu] = in[pu]
	}
	weighted := PredWeighted(sub.G, localIn, beta)
	local, err := hac.ClusterCtx(ctx, weighted, linkage)
	if err != nil {
		return nil, fmt.Errorf("core: reclustering C_ℓ: %w", err)
	}
	return &Reclustering{CL: cl, ChainIndex: best, Scores: scores, Sub: sub, Local: local}, nil
}
