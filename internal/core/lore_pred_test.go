package core

import (
	"context"
	"testing"

	"github.com/codsearch/cod/internal/graph"
	"github.com/codsearch/cod/internal/hac"
)

// attrMask materializes the membership mask of one attribute: the reduction
// under which the predicate variants must reproduce the legacy functions.
func attrMask(g *graph.Graph, attr graph.AttrID) []bool {
	in := make([]bool, g.N())
	for v := range in {
		in[v] = g.HasAttr(graph.NodeID(v), attr)
	}
	return in
}

func TestPredWeightedMatchesAttributeWeighted(t *testing.T) {
	g := fig5Graph(t)
	want := AttributeWeighted(g, 0, 1)
	got := PredWeighted(g, attrMask(g, 0), 1)
	for v := graph.NodeID(0); int(v) < g.N(); v++ {
		ns, ws := got.Neighbors(v), got.Weights(v)
		wns, wws := want.Neighbors(v), want.Weights(v)
		if len(ns) != len(wns) {
			t.Fatalf("adjacency differs at %d", v)
		}
		for i := range ns {
			if ns[i] != wns[i] {
				t.Fatalf("neighbor order differs at %d", v)
			}
			w1, w2 := 1.0, 1.0
			if ws != nil {
				w1 = ws[i]
			}
			if wws != nil {
				w2 = wws[i]
			}
			if w1 != w2 {
				t.Fatalf("weight differs at (%d,%d): %g vs %g", v, ns[i], w1, w2)
			}
		}
	}
}

func TestReclusterScoresPredMatchesLegacy(t *testing.T) {
	g := fig5Graph(t)
	tr := fig2Tree(t)
	for attr := graph.AttrID(0); attr < 2; attr++ {
		wantScores, wantBest := ReclusterScores(g, tr, 0, attr)
		gotScores, gotBest := ReclusterScoresPred(g, tr, 0, attrMask(g, attr))
		if gotBest != wantBest {
			t.Fatalf("attr %d: best = %d, want %d", attr, gotBest, wantBest)
		}
		for i := range wantScores {
			if gotScores[i] != wantScores[i] {
				t.Fatalf("attr %d: score %d = %v, want %v", attr, i, gotScores[i], wantScores[i])
			}
		}
	}
}

func TestLorePredMatchesLegacy(t *testing.T) {
	g := fig5Graph(t)
	tr := fig2Tree(t)
	want, err := Lore(g, tr, 0, 0, 1, hac.UnweightedAverage)
	if err != nil {
		t.Fatal(err)
	}
	got, err := LorePredCtx(context.Background(), g, tr, 0, attrMask(g, 0), 1, hac.UnweightedAverage)
	if err != nil {
		t.Fatal(err)
	}
	if got.CL != want.CL || got.ChainIndex != want.ChainIndex {
		t.Fatalf("C_ℓ = (%d,%d), want (%d,%d)", got.CL, got.ChainIndex, want.CL, want.ChainIndex)
	}
	wm, gm := MergedChain(g, tr, want, 0), MergedChain(g, tr, got, 0)
	if wm.Len() != gm.Len() {
		t.Fatalf("merged chain length %d, want %d", gm.Len(), wm.Len())
	}
	for u := 0; u < g.N(); u++ {
		if wm.Level(graph.NodeID(u)) != gm.Level(graph.NodeID(u)) {
			t.Fatalf("level of node %d differs: %d vs %d",
				u, gm.Level(graph.NodeID(u)), wm.Level(graph.NodeID(u)))
		}
	}
}

func TestLorePredCompoundMask(t *testing.T) {
	// A disjunctive mask (attr 0 OR attr 1 covers every node of fig5Graph)
	// boosts every edge, so scores count all chain-incident edges.
	g := fig5Graph(t)
	tr := fig2Tree(t)
	in := make([]bool, g.N())
	for v := range in {
		in[v] = true
	}
	scores, best := ReclusterScoresPred(g, tr, 0, in)
	only0, _ := ReclusterScoresPred(g, tr, 0, attrMask(g, 0))
	if best < 1 {
		t.Fatalf("best = %d", best)
	}
	ge := false
	for i := range scores {
		if scores[i] < only0[i] {
			t.Fatalf("all-true mask score %d (%v) below single-attr score (%v)", i, scores[i], only0[i])
		}
		if scores[i] > only0[i] {
			ge = true
		}
	}
	if !ge {
		t.Fatal("widening the mask never increased any score")
	}

	gw := PredWeighted(g, in, 1)
	if w := gw.EdgeWeight(0, 1); w != 2 {
		t.Fatalf("compound-mask edge weight = %g, want 2", w)
	}
}
