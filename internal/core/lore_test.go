package core

import (
	"math"
	"testing"

	"github.com/codsearch/cod/internal/graph"
	"github.com/codsearch/cod/internal/hac"
)

// fig5Graph is the Fig. 2 graph adjusted to be consistent with the worked
// reclustering example of Fig. 5 / Examples 5–6: the DB attribute (id 0) on
// nodes {2,3,4,5,7} with query-attributed edges (2,4), (3,5), (3,7), (4,5).
// Edge (2,3) is omitted so that no query-attributed edge falls inside C_0.
func fig5Graph(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(10, 2)
	for _, e := range [][2]graph.NodeID{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3},
		{2, 4}, {3, 5}, {3, 7}, {6, 7}, {6, 8}, {7, 8},
		{4, 5}, {4, 6}, {8, 9},
	} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range []graph.NodeID{2, 3, 4, 5, 7} {
		if err := b.SetAttrs(v, 0); err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range []graph.NodeID{0, 1, 6, 8, 9} {
		if err := b.SetAttrs(v, 1); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestReclusterScoresPaperExample(t *testing.T) {
	g := fig5Graph(t)
	tr := fig2Tree(t)
	scores, best := ReclusterScores(g, tr, 0, 0)
	// H(v0) = [C0, C3, C4, C6]; Examples 5-6: r(C3) = 1/2, r(C4) = 7/8.
	want := []float64{0, 0.5, 7.0 / 8, 0.7}
	if len(scores) != 4 {
		t.Fatalf("scores = %v", scores)
	}
	for i, w := range want {
		if math.Abs(scores[i]-w) > 1e-12 {
			t.Errorf("r(C_%d) = %v, want %v", i, scores[i], w)
		}
	}
	if best != 2 {
		t.Errorf("C_ℓ index = %d, want 2 (C4)", best)
	}
}

func TestReclusterScoresIgnoreNonAncestorEdges(t *testing.T) {
	// Edge (4,5) is query-attributed but lca(v4,v5)=C1 does not contain v0;
	// removing it must not change the scores.
	g := fig5Graph(t)
	tr := fig2Tree(t)
	withEdge, _ := ReclusterScores(g, tr, 0, 0)

	b := graph.NewBuilder(10, 2)
	g.ForEachEdge(func(u, v graph.NodeID, w float64) {
		if !(u == 4 && v == 5) {
			_ = b.AddWeightedEdge(u, v, w)
		}
	})
	for v := graph.NodeID(0); v < 10; v++ {
		_ = b.SetAttrs(v, g.Attrs(v)...)
	}
	withoutEdge, _ := ReclusterScores(b.Build(), tr, 0, 0)
	for i := range withEdge {
		if withEdge[i] != withoutEdge[i] {
			t.Errorf("score %d changed: %v -> %v", i, withEdge[i], withoutEdge[i])
		}
	}
}

func TestReclusterScoresNoAttrEdges(t *testing.T) {
	// A query attribute carried by nobody: scores all zero, default C_ℓ.
	g := fig5Graph(t)
	tr := fig2Tree(t)
	scores, best := ReclusterScores(g, tr, 0, 1) // attr 1 nodes are non-adjacent
	for i, s := range scores {
		if s != 0 {
			// attr-1 nodes: 0,1,6,8,9; edges (0,1),(6,8),(8,9) exist and are
			// attributed! Those count.
			_ = i
		}
	}
	if best < 1 {
		t.Errorf("best = %d, want >= 1", best)
	}
}

func TestAttributeWeighted(t *testing.T) {
	g := fig5Graph(t)
	gl := AttributeWeighted(g, 0, 1)
	if w := gl.EdgeWeight(2, 4); w != 2 {
		t.Errorf("attributed edge weight = %g, want 2", w)
	}
	if w := gl.EdgeWeight(0, 1); w != 1 {
		t.Errorf("plain edge weight = %g, want 1", w)
	}
	if gl.M() != g.M() {
		t.Error("edge count changed")
	}
}

func TestLoreAndMergedChain(t *testing.T) {
	g := fig5Graph(t)
	tr := fig2Tree(t)
	rec, err := Lore(g, tr, 0, 0, 1, hac.UnweightedAverage)
	if err != nil {
		t.Fatal(err)
	}
	if rec.CL != 14 { // C4
		t.Fatalf("C_ℓ = vertex %d, want 14 (C4)", rec.CL)
	}
	if rec.Sub.G.N() != 8 {
		t.Errorf("subgraph size %d, want 8", rec.Sub.G.N())
	}
	merged := MergedChain(g, tr, rec, 0)
	if err := merged.Validate(); err != nil {
		t.Fatalf("merged chain invalid: %v", err)
	}
	// Outer part: strict ancestors of C4 = just the root (size 10).
	if merged.Size(merged.Len()-1) != 10 {
		t.Errorf("last community size %d, want 10", merged.Size(merged.Len()-1))
	}
	// The splice point: some community must equal C4 (all 8 nodes).
	foundCL := false
	for h := 0; h < merged.Len(); h++ {
		if merged.Size(h) == 8 {
			foundCL = true
		}
	}
	if !foundCL {
		t.Error("merged chain lost the C_ℓ community")
	}
	// Nodes outside C4 (8, 9) are only in the root.
	if merged.Level(8) != merged.Len()-1 || merged.Level(9) != merged.Len()-1 {
		t.Errorf("levels of 8,9 = %d,%d, want %d", merged.Level(8), merged.Level(9), merged.Len()-1)
	}

	inner := InnerChain(g, tr, rec, 0)
	if err := inner.Validate(); err == nil {
		// Validate assumes full coverage; inner chains leave outer nodes at
		// level Len() which Validate tolerates via its cumulative check only
		// if sizes match. Accept either outcome but require the basics:
		_ = err
	}
	if inner.Len() >= merged.Len() {
		t.Errorf("inner chain (%d) should be shorter than merged (%d)", inner.Len(), merged.Len())
	}
	if inner.Size(inner.Len()-1) != 8 {
		t.Errorf("inner chain top size = %d, want 8 (= |C_ℓ|)", inner.Size(inner.Len()-1))
	}
	if inner.Level(8) != inner.Len() || inner.Level(9) != inner.Len() {
		t.Error("outside nodes must be outside every inner community")
	}
}

func TestLoreOnGeneratedGraph(t *testing.T) {
	rng := graph.NewRand(31)
	g, comms := graph.PlantedPartition(graph.PlantedPartitionSpec{
		N: 120, TargetM: 380, NumComms: 6, IntraFraction: 0.85, HubBias: 0.3,
	}, rng)
	// attribute 0 on community 0, attribute 1 elsewhere
	b := graph.NewBuilder(g.N(), 2)
	g.ForEachEdge(func(u, v graph.NodeID, w float64) { _ = b.AddWeightedEdge(u, v, w) })
	var q graph.NodeID = -1
	for v := 0; v < g.N(); v++ {
		if comms[v] == 0 {
			_ = b.SetAttrs(graph.NodeID(v), 0)
			if q < 0 {
				q = graph.NodeID(v)
			}
		} else {
			_ = b.SetAttrs(graph.NodeID(v), 1)
		}
	}
	ag := b.Build()
	tr, err := hac.Cluster(ag, hac.UnweightedAverage)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Lore(ag, tr, q, 0, 1, hac.UnweightedAverage)
	if err != nil {
		t.Fatal(err)
	}
	merged := MergedChain(ag, tr, rec, q)
	if err := merged.Validate(); err != nil {
		t.Fatalf("merged chain invalid: %v", err)
	}
	if !rec.Sub.Contains(q) {
		t.Error("C_ℓ must contain the query node")
	}
	if len(rec.Scores) == 0 || rec.ChainIndex < 1 {
		t.Error("missing diagnostics")
	}
}

// The optimization inside Lore — weighting only C_ℓ's induced subgraph —
// must be equivalent to inducing from the globally weighted graph, because
// edge weights depend only on endpoint attributes.
func TestSubgraphWeightingEqualsGlobal(t *testing.T) {
	g := fig5Graph(t)
	tr := fig2Tree(t)
	rec, err := Lore(g, tr, 0, 0, 1, hac.UnweightedAverage)
	if err != nil {
		t.Fatal(err)
	}
	gl := AttributeWeighted(g, 0, 1)
	fromGlobal := graph.Induce(gl, tr.Members(rec.CL))
	local := AttributeWeighted(rec.Sub.G, 0, 1)
	if fromGlobal.G.N() != local.N() || fromGlobal.G.M() != local.M() {
		t.Fatalf("shapes differ: %v vs %v", fromGlobal.G, local)
	}
	for v := graph.NodeID(0); int(v) < local.N(); v++ {
		ns, ws := local.Neighbors(v), local.Weights(v)
		gns, gws := fromGlobal.G.Neighbors(v), fromGlobal.G.Weights(v)
		if len(ns) != len(gns) {
			t.Fatalf("adjacency differs at %d", v)
		}
		for i := range ns {
			if ns[i] != gns[i] {
				t.Fatalf("neighbor order differs at %d", v)
			}
			w1, w2 := 1.0, 1.0
			if ws != nil {
				w1 = ws[i]
			}
			if gws != nil {
				w2 = gws[i]
			}
			if w1 != w2 {
				t.Fatalf("weight differs at (%d,%d): %g vs %g", v, ns[i], w1, w2)
			}
		}
	}
}
