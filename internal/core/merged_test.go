package core

import (
	"math"
	"testing"

	"github.com/codsearch/cod/internal/graph"
	"github.com/codsearch/cod/internal/hac"
	"github.com/codsearch/cod/internal/hier"
	"github.com/codsearch/cod/internal/influence"
)

// randomAttributed builds a random connected graph with two attributes and
// returns it plus a query node carrying attribute 0.
func randomAttributed(t *testing.T, seed uint64, n int) (*graph.Graph, graph.NodeID) {
	t.Helper()
	rng := graph.NewRand(seed)
	base := graph.ErdosRenyi(n, 3*n, rng)
	b := graph.NewBuilder(n, 2)
	base.ForEachEdge(func(u, v graph.NodeID, w float64) { _ = b.AddWeightedEdge(u, v, w) })
	var q graph.NodeID = -1
	for v := 0; v < n; v++ {
		a := graph.AttrID(rng.IntN(2))
		_ = b.SetAttrs(graph.NodeID(v), a)
		if a == 0 && q < 0 {
			q = graph.NodeID(v)
		}
	}
	if q < 0 {
		q = 0
		_ = b.SetAttrs(0, 0)
	}
	return b.Build(), q
}

// The compressed evaluation over a LORE merged chain must match the
// brute-force induced-reachability reference on the same shared pool.
func TestMergedChainEvaluationMatchesReference(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		g, q := randomAttributed(t, seed+200, 35)
		tr, err := hac.Cluster(g, hac.UnweightedAverage)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := Lore(g, tr, q, 0, 1, hac.UnweightedAverage)
		if err != nil {
			t.Fatal(err)
		}
		merged := MergedChain(g, tr, rec, q)
		if err := merged.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		s := influence.NewSampler(g, influence.NewWeightedCascade(g), graph.NewRand(seed+300))
		rrs := s.Batch(300)
		ref := referenceCounts(merged, rrs)
		for _, k := range []int{1, 3} {
			got := CompressedEvaluate(merged, rrs, k)
			want := referenceBest(merged, ref, k)
			if got.Level != want {
				t.Errorf("seed %d k=%d: level %d, want %d", seed, k, got.Level, want)
			}
		}
	}
}

// bruteForceScores recomputes Definition 4 from first principles: for each
// chain community C_h, sum dep(lca(u,v)) over query-attributed edges whose
// lca is an ancestor of q no shallower than C_h.
func bruteForceScores(g *graph.Graph, t *hier.Tree, q graph.NodeID, attr graph.AttrID) []float64 {
	ch := ChainFromTree(t, q)
	leafQ := t.LeafOf(q)
	scores := make([]float64, ch.Len())
	for h := 0; h < ch.Len(); h++ {
		var num float64
		g.ForEachEdge(func(u, v graph.NodeID, _ float64) {
			if !g.HasAttr(u, attr) || !g.HasAttr(v, attr) {
				return
			}
			c := t.LCANodes(u, v)
			if !t.IsAncestor(c, leafQ) {
				return
			}
			if t.Depth(c) >= ch.Depth(h) {
				num += float64(t.Depth(c))
			}
		})
		scores[h] = num / float64(ch.Size(h))
	}
	return scores
}

func TestReclusterScoresAgainstBruteForce(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		g, q := randomAttributed(t, seed+400, 30)
		tr, err := hac.Cluster(g, hac.UnweightedAverage)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := ReclusterScores(g, tr, q, 0)
		want := bruteForceScores(g, tr, q, 0)
		if len(got) != len(want) {
			t.Fatalf("seed %d: lengths %d vs %d", seed, len(got), len(want))
		}
		for h := range got {
			if math.Abs(got[h]-want[h]) > 1e-9 {
				t.Errorf("seed %d: r(C_%d) = %v, want %v", seed, h, got[h], want[h])
			}
		}
	}
}

// Inner chains must agree with the merged chain on the communities they
// share.
func TestInnerChainConsistentWithMerged(t *testing.T) {
	g, q := randomAttributed(t, 777, 40)
	tr, err := hac.Cluster(g, hac.UnweightedAverage)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Lore(g, tr, q, 0, 1, hac.UnweightedAverage)
	if err != nil {
		t.Fatal(err)
	}
	merged := MergedChain(g, tr, rec, q)
	inner := InnerChain(g, tr, rec, q)
	for h := 0; h < inner.Len(); h++ {
		if inner.Size(h) != merged.Size(h) {
			t.Errorf("size mismatch at %d: %d vs %d", h, inner.Size(h), merged.Size(h))
		}
		mi := inner.Members(h)
		mm := merged.Members(h)
		if len(mi) != len(mm) {
			t.Fatalf("member mismatch at %d", h)
		}
		for i := range mi {
			if mi[i] != mm[i] {
				t.Fatalf("member mismatch at %d", h)
			}
		}
	}
}
