package core

import (
	"context"
	"fmt"
	"math/rand/v2"

	"github.com/codsearch/cod/internal/graph"
	"github.com/codsearch/cod/internal/hac"
	"github.com/codsearch/cod/internal/hier"
	"github.com/codsearch/cod/internal/influence"
	"github.com/codsearch/cod/internal/obs"
)

// Model selects the influence model driving RR-graph sampling. The COD
// machinery is model-agnostic as long as the model admits RR-set evaluation
// (§II); IC with weighted-cascade probabilities is the paper's default.
type Model int

const (
	// ICWeightedCascade is the independent cascade model with
	// p(u,v) = 1/|N(v)| (the paper's setting).
	ICWeightedCascade Model = iota
	// LTUniform is the linear threshold model with b(u,v) = 1/|N(v)|.
	LTUniform
)

// NewGraphSampler returns a sampler for the model over g driven by rng.
func NewGraphSampler(g *graph.Graph, m Model, rng *rand.Rand) influence.GraphSampler {
	if m == LTUniform {
		return influence.NewLTSampler(g, influence.UniformLT{G: g}, rng)
	}
	return influence.NewSampler(g, influence.NewWeightedCascade(g), rng)
}

// Params bundles the knobs shared by all COD pipelines.
type Params struct {
	// K is the required influence rank: q must be top-K in C*(q). Default 5.
	K int
	// Theta is the per-node RR multiplier θ (Θ = θ·n samples). Default 10.
	Theta int
	// Beta is the extra weight on query-attributed edges in g_ℓ. Default 1.
	Beta float64
	// Linkage selects the agglomerative linkage. Default UnweightedAverage.
	Linkage hac.Linkage
	// Seed drives all sampling for reproducibility.
	Seed uint64
	// Model selects the influence model (default ICWeightedCascade).
	Model Model
	// Balanced rebalances the non-attributed hierarchy along heavy paths
	// (hier.Rebalance), bounding |H(q)| polylogarithmically on hub-skewed
	// graphs at the cost of exact agglomerative faithfulness.
	Balanced bool
	// Workers parallelizes offline RR sampling (HIMOR construction) across
	// goroutines; <= 1 means sequential. Purely a performance knob: each RR
	// graph draws from a stream seeded by its pool index, so the output is
	// identical for every Workers value. Only the IC model parallelizes
	// currently.
	Workers int
}

// clusterTree builds the non-attributed hierarchy per the params.
func clusterTree(ctx context.Context, g *graph.Graph, p Params) (*hier.Tree, error) {
	if p.Balanced {
		return hac.ClusterBalancedCtx(ctx, g, p.Linkage)
	}
	return hac.ClusterCtx(ctx, g, p.Linkage)
}

// withDefaults fills zero values with the paper's defaults.
// WithDefaults returns p with zero-value tuning fields replaced by the
// paper's defaults. Persistence uses it to compare saved and requested
// parameters in canonical form.
func (p Params) WithDefaults() Params { return p.withDefaults() }

func (p Params) withDefaults() Params {
	if p.K <= 0 {
		p.K = 5
	}
	if p.Theta <= 0 {
		p.Theta = 10
	}
	if p.Beta <= 0 {
		p.Beta = 1
	}
	return p
}

// Community is the answer to a COD query.
type Community struct {
	// Nodes of C*(q), ascending; nil when Found is false.
	Nodes []graph.NodeID
	// Found reports whether any community in the hierarchy had q top-k.
	Found bool
	// Level is the chain index of the chosen community (diagnostics).
	Level int
	// FromIndex is true when the HIMOR index answered without evaluation.
	FromIndex bool
}

// Size returns |C*| (0 when not found).
func (c Community) Size() int { return len(c.Nodes) }

// CODU answers COD queries over the non-attributed hierarchy (variant CODU
// of §V-A): agglomerative clustering of g once, then compressed evaluation
// per query. Construct with NewCODU.
type CODU struct {
	g    *graph.Graph
	tree *hier.Tree
	p    Params
}

// NewCODU clusters g and returns a reusable CODU pipeline.
func NewCODU(g *graph.Graph, p Params) (*CODU, error) {
	return NewCODUCtx(context.Background(), g, p)
}

// NewCODUCtx is NewCODU with a cancellable offline phase.
func NewCODUCtx(ctx context.Context, g *graph.Graph, p Params) (*CODU, error) {
	p = p.withDefaults()
	t, err := clusterTree(ctx, g, p)
	if err != nil {
		return nil, err
	}
	return &CODU{g: g, tree: t, p: p}, nil
}

// NewCODUWithTree reuses a prebuilt hierarchy (e.g. shared with a CODL
// pipeline over the same graph).
func NewCODUWithTree(g *graph.Graph, t *hier.Tree, p Params) *CODU {
	return &CODU{g: g, tree: t, p: p.withDefaults()}
}

// Tree exposes the non-attributed hierarchy.
func (c *CODU) Tree() *hier.Tree { return c.tree }

// Query finds the characteristic community of q ignoring the attribute.
func (c *CODU) Query(q graph.NodeID, rng *rand.Rand) Community {
	com, _ := c.QueryCtx(context.Background(), q, rng)
	return com
}

// QueryCtx is Query with cancellation: the sampling loop and the compressed
// evaluation poll ctx.Err() at bounded intervals; on cancellation the error
// wraps a *influence.CanceledError with the completed sample count. An
// uncancelled call returns exactly Query's community.
func (c *CODU) QueryCtx(ctx context.Context, q graph.NodeID, rng *rand.Rand) (Community, error) {
	ch := ChainFromTree(c.tree, q)
	s := NewGraphSampler(c.g, c.p.Model, rng)
	rrs, err := influence.BatchCtx(ctx, s, c.p.Theta*c.g.N())
	if err != nil {
		return Community{Level: -1}, err
	}
	res, err := CompressedEvaluateCtx(ctx, ch, rrs, c.p.K)
	if err != nil {
		return Community{Level: -1}, err
	}
	return communityFromChain(ch, res), nil
}

// CODR answers COD queries by globally reclustering the attribute-weighted
// graph g_ℓ per query attribute (variant CODR of §V-A). Hierarchies can be
// cached per attribute; caching must be off when timing Fig. 9.
type CODR struct {
	g     *graph.Graph
	p     Params
	cache map[graph.AttrID]*hier.Tree
	// CacheHierarchies enables the per-attribute hierarchy cache.
	CacheHierarchies bool
}

// NewCODR returns a CODR pipeline; no offline work is required.
func NewCODR(g *graph.Graph, p Params) *CODR {
	return &CODR{g: g, p: p.withDefaults(), cache: map[graph.AttrID]*hier.Tree{}}
}

// Hierarchy returns the attribute-aware hierarchy for attr, reclustering
// from scratch unless cached.
func (c *CODR) Hierarchy(attr graph.AttrID) (*hier.Tree, error) {
	return c.HierarchyCtx(context.Background(), attr)
}

// HierarchyCtx is Hierarchy with a cancellable recluster. Canceled builds
// are not cached.
func (c *CODR) HierarchyCtx(ctx context.Context, attr graph.AttrID) (*hier.Tree, error) {
	if c.CacheHierarchies {
		if t, ok := c.cache[attr]; ok {
			return t, nil
		}
	}
	gl := AttributeWeighted(c.g, attr, c.p.Beta)
	t, err := hac.ClusterCtx(ctx, gl, c.p.Linkage)
	if err != nil {
		return nil, err
	}
	if c.CacheHierarchies {
		c.cache[attr] = t
	}
	return t, nil
}

// Query finds the characteristic community of q for attribute attr.
func (c *CODR) Query(q graph.NodeID, attr graph.AttrID, rng *rand.Rand) (Community, error) {
	return c.QueryCtx(context.Background(), q, attr, rng)
}

// QueryCtx is Query with cancellation across all three phases: the global
// recluster (hac merge loop), the sampling loop and the compressed
// evaluation all poll ctx.Err() at bounded intervals. Uncancelled results
// are identical to Query.
func (c *CODR) QueryCtx(ctx context.Context, q graph.NodeID, attr graph.AttrID, rng *rand.Rand) (Community, error) {
	t, err := c.HierarchyCtx(ctx, attr)
	if err != nil {
		return Community{}, err
	}
	ch := ChainFromTree(t, q)
	s := NewGraphSampler(c.g, c.p.Model, rng)
	rrs, err := influence.BatchCtx(ctx, s, c.p.Theta*c.g.N())
	if err != nil {
		return Community{Level: -1}, err
	}
	res, err := CompressedEvaluateCtx(ctx, ch, rrs, c.p.K)
	if err != nil {
		return Community{Level: -1}, err
	}
	return communityFromChain(ch, res), nil
}

// CODL is the fully optimized pipeline (variant CODL of §V-A): LORE local
// reclustering plus the HIMOR index (Algorithm 3). The hierarchy and index
// are built once offline; queries recluster only C_ℓ.
type CODL struct {
	g     *graph.Graph
	tree  *hier.Tree
	index *Himor
	p     Params
}

// NewCODL clusters g and builds the HIMOR index.
func NewCODL(g *graph.Graph, p Params) (*CODL, error) {
	return NewCODLCtx(context.Background(), g, p)
}

// NewCODLCtx is NewCODL with a cancellable offline phase: both the
// clustering merge loop and the HIMOR RR sampling poll ctx.Err() at bounded
// intervals, so a server can abandon warmup on shutdown. Uncancelled builds
// are identical to NewCODL for the same params.
func NewCODLCtx(ctx context.Context, g *graph.Graph, p Params) (*CODL, error) {
	p = p.withDefaults()
	t, err := clusterTree(ctx, g, p)
	if err != nil {
		return nil, err
	}
	var idx *Himor
	if p.Model == ICWeightedCascade {
		// The pooled sampler seeds each RR graph from its index, so the index
		// (and every query answer) is identical for any Workers value.
		idx, err = BuildHimorParallelCtx(ctx, g, t, influence.NewWeightedCascade(g), p.Theta, p.Seed^0x51ed, p.Workers)
	} else {
		idx, err = BuildHimorWithSamplerCtx(ctx, g, t, NewGraphSampler(g, p.Model, graph.NewRand(p.Seed^0x51ed)), p.Theta)
	}
	if err != nil {
		return nil, err
	}
	return &CODL{g: g, tree: t, index: idx, p: p}, nil
}

// NewCODLWithTree reuses a prebuilt hierarchy and index (both may be shared
// across pipelines built from the same graph and params).
func NewCODLWithTree(g *graph.Graph, t *hier.Tree, idx *Himor, p Params) *CODL {
	return &CODL{g: g, tree: t, index: idx, p: p.withDefaults()}
}

// Tree exposes the non-attributed hierarchy.
func (c *CODL) Tree() *hier.Tree { return c.tree }

// Index exposes the HIMOR index.
func (c *CODL) Index() *Himor { return c.index }

// Query runs Algorithm 3: LORE picks C_ℓ; the HIMOR index is scanned
// top-down over C_ℓ's ancestors for the largest community where q is top-k;
// only if none qualifies is a compressed evaluation run inside C_ℓ.
func (c *CODL) Query(q graph.NodeID, attr graph.AttrID, rng *rand.Rand) (Community, error) {
	return c.QueryCtx(context.Background(), q, attr, rng)
}

// QueryCtx is Query with cancellation: LORE's phases, the restricted
// sampling loop and the compressed evaluation all poll ctx.Err() at bounded
// intervals, so a deadline aborts the query long before the full Monte-Carlo
// run completes. Uncancelled results are byte-identical to Query.
func (c *CODL) QueryCtx(ctx context.Context, q graph.NodeID, attr graph.AttrID, rng *rand.Rand) (Community, error) {
	r := obs.FromContext(ctx)
	rec, err := LoreCtx(ctx, c.g, c.tree, q, attr, c.p.Beta, c.p.Linkage)
	if err != nil {
		return Community{}, err
	}
	// Top-down over ancestors of C_ℓ (root first), including C_ℓ itself.
	lookup := r.StartSpan(obs.StageHimorLookup)
	anc := c.tree.Ancestors(rec.CL)
	for i := len(anc) - 1; i >= -1; i-- {
		v := rec.CL
		if i >= 0 {
			v = anc[i]
		}
		if c.index.Rank(q, v) < c.p.K {
			lookup.EndItems(len(anc) - i)
			r.CountIndexHit()
			return Community{Nodes: c.tree.Members(v), Found: true, Level: -1, FromIndex: true}, nil
		}
	}
	lookup.EndItems(len(anc) + 1)
	// Compressed evaluation restricted to C_ℓ over the reclustered chain.
	inner := InnerChain(c.g, c.tree, rec, q)
	members := rec.Sub.ToParent
	in := make([]bool, c.g.N())
	for _, v := range members {
		in[v] = true
	}
	member := func(u graph.NodeID) bool { return in[u] }
	s := NewGraphSampler(c.g, c.p.Model, rng)
	total := c.p.Theta * len(members)
	sample := r.StartSpan(obs.StageRRSample)
	rrs := make([]*influence.RRGraph, 0, total)
	for i := 0; i < total; i++ {
		if i%influence.PollEvery == 0 {
			if err := ctx.Err(); err != nil {
				sample.EndItems(i)
				return Community{Level: -1}, &influence.CanceledError{
					Op: "core: restricted rr sampling", Done: i, Total: total, Cause: err}
			}
		}
		rrs = append(rrs, s.RRGraphWithin(members[rng.IntN(len(members))], member))
	}
	sample.EndItems(total)
	res, err := CompressedEvaluateCtx(ctx, inner, rrs, c.p.K)
	if err != nil {
		return Community{Level: -1}, err
	}
	return communityFromChain(inner, res), nil
}

// QueryNoIndex is CODL⁻ (§V-D): LORE reclustering and compressed evaluation
// over the full merged chain H_ℓ(q), without consulting the HIMOR index.
func (c *CODL) QueryNoIndex(q graph.NodeID, attr graph.AttrID, rng *rand.Rand) (Community, error) {
	return c.QueryNoIndexCtx(context.Background(), q, attr, rng)
}

// QueryNoIndexCtx is QueryNoIndex with the same cancellation points as
// QueryCtx.
func (c *CODL) QueryNoIndexCtx(ctx context.Context, q graph.NodeID, attr graph.AttrID, rng *rand.Rand) (Community, error) {
	rec, err := LoreCtx(ctx, c.g, c.tree, q, attr, c.p.Beta, c.p.Linkage)
	if err != nil {
		return Community{}, err
	}
	merged := MergedChain(c.g, c.tree, rec, q)
	s := NewGraphSampler(c.g, c.p.Model, rng)
	rrs, err := influence.BatchCtx(ctx, s, c.p.Theta*c.g.N())
	if err != nil {
		return Community{Level: -1}, err
	}
	res, err := CompressedEvaluateCtx(ctx, merged, rrs, c.p.K)
	if err != nil {
		return Community{Level: -1}, err
	}
	return communityFromChain(merged, res), nil
}

// MergedChainFor exposes H_ℓ(q) for effectiveness experiments (Fig. 4).
func (c *CODL) MergedChainFor(q graph.NodeID, attr graph.AttrID) (*Chain, error) {
	rec, err := Lore(c.g, c.tree, q, attr, c.p.Beta, c.p.Linkage)
	if err != nil {
		return nil, err
	}
	return MergedChain(c.g, c.tree, rec, q), nil
}

func communityFromChain(ch *Chain, res EvalResult) Community {
	if res.Level < 0 {
		return Community{Found: false, Level: -1}
	}
	return Community{Nodes: ch.Members(res.Level), Found: true, Level: res.Level}
}

// ErrNotInGraph is returned by facade-level validation helpers.
var ErrNotInGraph = fmt.Errorf("core: query node out of range")
