package core

import (
	"context"

	"github.com/codsearch/cod/internal/influence"
	"github.com/codsearch/cod/internal/obs"
)

// This file is the stage-resumable form of Algorithm 1 used by the engine's
// bounded-error adaptive mode (DESIGN.md §16). The per-RR HFS fold is purely
// additive, so a StagedEval grows the shared sample pool across geometric
// stages and re-sweeps the accumulated buckets after each stage; folding
// every sample exactly once keeps the total HFS cost equal to one
// non-staged evaluation, and a run that reaches the full pool returns
// exactly CompressedEvaluate's result.

// LevelMargin reports, for one chain level after a sweep, the raw counts the
// rank-k decision for q rests on. Normalized by the pool size they form the
// estimated influence gap the adaptive certifier bounds.
type LevelMargin struct {
	// QCount is q's accumulated RR occurrence count at this level.
	QCount int32
	// Boundary is the k-th largest occurrence count among nodes other than
	// q at this level (0 while fewer than k other nodes have appeared).
	Boundary int32
	// InTopK is the level's empirical rank-k decision, identical to the one
	// the non-staged sweep makes on the same pool.
	InTopK bool
}

// StagedEval accumulates a compressed COD evaluation across a growing RR
// sample pool. Fold folds the pool's new suffix into the per-level buckets;
// Sweep runs the incremental top-k sweep over everything folded so far,
// reporting the would-be answer plus per-level margins. A StagedEval is
// single-goroutine, like the scratch it borrows.
type StagedEval struct {
	ch      *Chain
	k       int
	sc      *EvalScratch
	top     *topK
	folded  int
	entries int
	margins []LevelMargin
}

// NewStagedEval prepares a staged evaluation of ch at rank k drawing its
// working buffers from sc (which may be nil for a private scratch). The
// scratch must not be used by another evaluation until the StagedEval is
// done.
func NewStagedEval(ch *Chain, k int, sc *EvalScratch) *StagedEval {
	if sc == nil {
		sc = NewEvalScratch()
	}
	sc.prepare(ch.Len())
	return &StagedEval{ch: ch, k: k, sc: sc, top: newTopK(k),
		margins: make([]LevelMargin, ch.Len())}
}

// Folded returns the number of RR graphs folded so far.
func (se *StagedEval) Folded() int { return se.folded }

// Fold folds rrs[Folded():] — the samples added since the previous call —
// into the accumulated buckets. Passing the whole (grown) pool every stage
// is the intended calling convention: already-folded prefixes are skipped.
// The fold polls ctx once per influence.PollEvery RR graphs and stops with
// a *influence.CanceledError counting the RR graphs folded in so far.
func (se *StagedEval) Fold(ctx context.Context, rrs []*influence.RRGraph) error {
	induce := obs.FromContext(ctx).StartSpan(obs.StageRRInduce)
	L := se.ch.Len()
	added := 0
	for ; se.folded < len(rrs); se.folded++ {
		if se.folded%influence.PollEvery == 0 {
			if err := ctx.Err(); err != nil {
				se.entries += added
				induce.EndItems(added)
				return &influence.CanceledError{
					Op: "core: compressed evaluation", Done: se.folded, Total: len(rrs), Cause: err}
			}
		}
		added += se.sc.foldRR(se.ch, L, rrs[se.folded])
	}
	se.entries += added
	induce.EndItems(added)
	return nil
}

// Sweep runs the incremental top-k sweep over the folded pool, returning
// the evaluation result as of this stage and the per-level margins (valid
// until the next Sweep). The decision at every level — and therefore the
// result — is identical to CompressedEvaluate over the same folded pool:
// the sweep tracks the k largest non-q nodes instead of the k largest
// overall, which changes the boundary bookkeeping but not whether fewer
// than k nodes rank ahead of q.
func (se *StagedEval) Sweep(ctx context.Context) (EvalResult, []LevelMargin) {
	sweep := obs.FromContext(ctx).StartSpan(obs.StageTopKSweep)
	sc, ch, q := se.sc, se.ch, se.ch.q
	L := ch.Len()
	clear(sc.tau)
	tau := sc.tau
	se.top.reset()
	best := -1
	for h := 0; h < L; h++ {
		for v, cnt := range sc.buckets[h] {
			nv := tau[v] + cnt
			tau[v] = nv
			if v != q {
				se.top.offer(v, nv)
			}
		}
		ahead := se.top.aheadOf(q, tau[q])
		sc.ranks[h] = int32(ahead) + 1
		sc.topk[h] = ahead < se.k
		m := &se.margins[h]
		m.QCount = tau[q]
		m.Boundary = se.top.boundary()
		m.InTopK = sc.topk[h]
		if m.InTopK {
			best = h
		}
	}
	sweep.EndItems(len(tau))
	return EvalResult{Level: best, QCount: int(tau[q]), Buckets: se.entries,
		TopK: sc.topk[:L], Ranks: sc.ranks[:L]}, se.margins
}
