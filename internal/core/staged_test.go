package core

import (
	"context"
	"errors"
	"testing"

	"github.com/codsearch/cod/internal/graph"
	"github.com/codsearch/cod/internal/hac"
	"github.com/codsearch/cod/internal/influence"
)

// stagedChain builds a random graph, chain and RR pool for staged tests.
func stagedChain(t *testing.T, seed uint64, n, m, pool int) (*Chain, []*influence.RRGraph) {
	t.Helper()
	rng := graph.NewRand(seed)
	g := graph.ErdosRenyi(n, m, rng)
	tr, err := hac.Cluster(g, hac.UnweightedAverage)
	if err != nil {
		t.Fatal(err)
	}
	q := graph.NodeID(rng.IntN(n))
	ch := ChainFromTree(tr, q)
	s := influence.NewSampler(g, influence.NewWeightedCascade(g), graph.NewRand(seed+900))
	return ch, s.Batch(pool)
}

// A staged evaluation folding the pool in geometric stages must land on
// exactly the non-staged result once the full pool is folded, and its
// per-level decisions must match the reference semantics at every stage.
func TestStagedMatchesCompressed(t *testing.T) {
	ctx := context.Background()
	for seed := uint64(0); seed < 6; seed++ {
		ch, rrs := stagedChain(t, seed, 40, 110, 400)
		for _, k := range []int{1, 2, 5} {
			want := CompressedEvaluate(ch, rrs, k)
			se := NewStagedEval(ch, k, nil)
			var res EvalResult
			var margins []LevelMargin
			for _, cum := range []int{50, 100, 200, 400} {
				if err := se.Fold(ctx, rrs[:cum]); err != nil {
					t.Fatal(err)
				}
				res, margins = se.Sweep(ctx)

				// Every stage's sweep must agree with the reference decisions
				// over the folded prefix.
				ref := referenceCounts(ch, rrs[:cum])
				if res.Level != referenceBest(ch, ref, k) {
					t.Fatalf("seed=%d k=%d cum=%d: level = %d, want %d",
						seed, k, cum, res.Level, referenceBest(ch, ref, k))
				}
				for h, m := range margins {
					if int(m.QCount) != ref[h][ch.Q()] {
						t.Fatalf("seed=%d k=%d cum=%d h=%d: QCount = %d, want %d",
							seed, k, cum, h, m.QCount, ref[h][ch.Q()])
					}
				}
			}
			if se.Folded() != 400 {
				t.Fatalf("folded = %d, want 400", se.Folded())
			}
			if !res.Equal(want) {
				t.Fatalf("seed=%d k=%d: staged = %+v, want %+v", seed, k, res, want)
			}
		}
	}
}

// Folding the same pool twice adds nothing: Fold consumes only the suffix
// past Folded(), so re-presenting the grown pool each stage is idempotent.
func TestStagedFoldIdempotent(t *testing.T) {
	ctx := context.Background()
	ch, rrs := stagedChain(t, 3, 30, 70, 200)
	se := NewStagedEval(ch, 2, nil)
	if err := se.Fold(ctx, rrs); err != nil {
		t.Fatal(err)
	}
	res1, _ := se.Sweep(ctx)
	if err := se.Fold(ctx, rrs); err != nil {
		t.Fatal(err)
	}
	res2, _ := se.Sweep(ctx)
	if !res1.Equal(res2) {
		t.Fatalf("refold changed the result: %+v vs %+v", res1, res2)
	}
	if !res1.Equal(CompressedEvaluate(ch, rrs, 2)) {
		t.Fatalf("staged = %+v, want %+v", res1, CompressedEvaluate(ch, rrs, 2))
	}
}

// The per-level margins must agree with the decision they summarize: when
// Boundary is the filled rank-k boundary, QCount clearly above it implies
// in-top-k and clearly below implies out.
func TestStagedMarginsConsistent(t *testing.T) {
	ctx := context.Background()
	for seed := uint64(10); seed < 14; seed++ {
		ch, rrs := stagedChain(t, seed, 36, 90, 300)
		se := NewStagedEval(ch, 3, nil)
		if err := se.Fold(ctx, rrs); err != nil {
			t.Fatal(err)
		}
		_, margins := se.Sweep(ctx)
		for h, m := range margins {
			if m.QCount > m.Boundary && !m.InTopK {
				t.Fatalf("seed=%d h=%d: QCount %d > boundary %d but not top-k", seed, h, m.QCount, m.Boundary)
			}
			if m.QCount < m.Boundary && m.InTopK {
				t.Fatalf("seed=%d h=%d: QCount %d < boundary %d but top-k", seed, h, m.QCount, m.Boundary)
			}
		}
	}
}

// A canceled Fold reports the RR graphs folded so far and the StagedEval
// can resume cleanly once the context pressure is gone.
func TestStagedFoldCanceled(t *testing.T) {
	ch, rrs := stagedChain(t, 5, 30, 70, 200)
	se := NewStagedEval(ch, 2, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := se.Fold(ctx, rrs)
	var ce *influence.CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *influence.CanceledError", err)
	}
	if ce.Done != se.Folded() || ce.Total != 200 {
		t.Fatalf("Done=%d Folded=%d Total=%d", ce.Done, se.Folded(), ce.Total)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err does not unwrap to context.Canceled: %v", err)
	}
	// Resume on a live context: the result must equal the non-staged one.
	if err := se.Fold(context.Background(), rrs); err != nil {
		t.Fatal(err)
	}
	res, _ := se.Sweep(context.Background())
	if !res.Equal(CompressedEvaluate(ch, rrs, 2)) {
		t.Fatalf("resumed staged = %+v, want %+v", res, CompressedEvaluate(ch, rrs, 2))
	}
}
