// Package dataset provides the synthetic stand-ins for the paper's seven
// evaluation networks (Table I). We do not have the original data files, so
// each dataset is generated to match the original's node/edge/attribute
// scale and its structurally relevant properties (community structure,
// attribute-structure correlation, degree skew); the three SNAP graphs are
// generated at 1/10–1/40 scale to keep experiments laptop-runnable. See
// DESIGN.md §4 for the substitution rationale.
package dataset

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"github.com/codsearch/cod/internal/graph"
)

// Dataset is a generated benchmark network.
type Dataset struct {
	// Name is the registry key (e.g. "cora").
	Name string
	// G is the attributed graph.
	G *graph.Graph
	// Comms is the planted ground-truth community of each node; nil when the
	// generator does not plant communities (retweet).
	Comms []int
	// AttrNames names the attribute universe (index = AttrID); nil when the
	// dataset's labels are anonymous.
	AttrNames []string
}

// PaperScale records the original network statistics from Table I for
// comparison in EXPERIMENTS.md.
type PaperScale struct {
	V, E, A int
	AvgH    float64 // |H̄_ℓ(q)| as reported
}

// Spec describes how to generate one dataset.
type Spec struct {
	Name     string
	N        int
	M        int
	NumAttrs int
	Kind     kind
	NumComms int
	HubBias  float64
	// Pendants is the fraction of degree-1 nodes per planted community (see
	// graph.PlantedPartitionSpec.PendantFraction).
	Pendants float64
	// AttrFidelity is the probability a node carries its community's primary
	// attribute (citation-style datasets only).
	AttrFidelity float64
	// AttrNames optionally names the attribute universe (index = AttrID) so
	// queries can reference attributes by name; nil when the original
	// network's labels have no natural names at this scale.
	AttrNames []string
	Paper     PaperScale
	// ScaleNote documents any down-scaling versus the original.
	ScaleNote string
}

type kind int

const (
	citationLike kind = iota // planted partition + noisy per-community attrs
	retweetLike              // preferential attachment + region-grown attrs
	groundTruth              // planted partition + one attr per community (paper's rule)
)

// specs is the dataset registry, ordered as in Table I.
var specs = []Spec{
	{Name: "cora", N: 2485, M: 5069, NumAttrs: 7, Kind: citationLike, NumComms: 60, HubBias: 0.3, Pendants: 0.15, AttrFidelity: 0.85,
		AttrNames: coraClasses, Paper: PaperScale{2485, 5069, 7, 18.5}},
	{Name: "citeseer", N: 2110, M: 3668, NumAttrs: 6, Kind: citationLike, NumComms: 55, HubBias: 0.3, Pendants: 0.15, AttrFidelity: 0.85,
		AttrNames: citeseerClasses, Paper: PaperScale{2110, 3668, 6, 18.9}},
	{Name: "pubmed", N: 19717, M: 44327, NumAttrs: 3, Kind: citationLike, NumComms: 180, HubBias: 0.55, Pendants: 0.4, AttrFidelity: 0.85,
		AttrNames: pubmedClasses, Paper: PaperScale{19717, 44327, 3, 34.2}},
	{Name: "retweet", N: 18470, M: 48053, NumAttrs: 2, Kind: retweetLike,
		Paper: PaperScale{18470, 48053, 2, 165.3}},
	{Name: "amazon", N: 33486, M: 92587, NumAttrs: 33, Kind: groundTruth, NumComms: 2580, HubBias: 0.35,
		Paper: PaperScale{334863, 925872, 33, 54.8}, ScaleNote: "1/10 of SNAP com-Amazon"},
	{Name: "dblp", N: 31708, M: 104987, NumAttrs: 31, Kind: groundTruth, NumComms: 1580, HubBias: 0.35,
		AttrNames: dblpVenues, Paper: PaperScale{317080, 1049866, 31, 47.9}, ScaleNote: "1/10 of SNAP com-DBLP"},
	{Name: "livejournal", N: 99949, M: 867030, NumAttrs: 400, Kind: groundTruth, NumComms: 4000, HubBias: 0.5,
		Paper: PaperScale{3997962, 34681189, 400, 271.17}, ScaleNote: "1/40 of SNAP com-LiveJournal"},
	// Reduced-size variants for unit tests and quick benchmarks.
	{Name: "tiny", N: 120, M: 320, NumAttrs: 4, Kind: citationLike, NumComms: 6, HubBias: 0.2, AttrFidelity: 0.9,
		AttrNames: []string{"ML", "DB", "IR", "AI"}},
	{Name: "small", N: 600, M: 1500, NumAttrs: 5, Kind: citationLike, NumComms: 15, HubBias: 0.3, AttrFidelity: 0.85,
		AttrNames: []string{"ML", "DB", "IR", "AI", "SE"}},
}

// Attribute-name registries for datasets whose labels have natural names:
// the citation datasets' document classes and a venue universe for the
// DBLP stand-in. Amazon/LiveJournal ground-truth labels and the retweet
// regions are anonymous; those specs stay unnamed and their attributes are
// referenced by numeric id.
var (
	coraClasses = []string{"Case_Based", "Genetic_Algorithms", "Neural_Networks",
		"Probabilistic_Methods", "Reinforcement_Learning", "Rule_Learning", "Theory"}
	citeseerClasses = []string{"Agents", "AI", "DB", "IR", "ML", "HCI"}
	pubmedClasses   = []string{"Diabetes_Experimental", "Diabetes_Type1", "Diabetes_Type2"}
	dblpVenues      = []string{"ICDE", "KDD", "SIGMOD", "VLDB", "WWW", "WSDM", "CIKM",
		"ICDM", "SDM", "PKDD", "ECML", "IJCAI", "AAAI", "NIPS", "ICML", "ACL", "EMNLP",
		"NAACL", "SIGIR", "RECSYS", "EDBT", "PODS", "DASFAA", "APWEB", "WAIM", "SSDBM",
		"STOC", "FOCS", "SODA", "ICALP", "ESA"}
)

// Names returns the registry names in Table I order (excluding test sizes).
func Names() []string {
	return []string{"cora", "citeseer", "pubmed", "retweet", "amazon", "dblp", "livejournal"}
}

// EffectivenessNames returns the six datasets used for the effectiveness and
// efficiency experiments (LiveJournal is reserved for scalability).
func EffectivenessNames() []string {
	return []string{"cora", "citeseer", "pubmed", "retweet", "amazon", "dblp"}
}

// SpecOf returns the Spec registered under name.
func SpecOf(name string) (Spec, error) {
	for _, s := range specs {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("dataset: unknown dataset %q", name)
}

// Load generates the named dataset deterministically for the seed.
func Load(name string, seed uint64) (*Dataset, error) {
	spec, err := SpecOf(name)
	if err != nil {
		return nil, err
	}
	rng := graph.NewRand(seed ^ hashName(name))
	var ds *Dataset
	switch spec.Kind {
	case retweetLike:
		ds = genRetweet(spec, rng)
	case groundTruth:
		ds = genGroundTruth(spec, rng)
	default:
		ds = genCitation(spec, rng)
	}
	ds.AttrNames = spec.AttrNames
	return ds, nil
}

func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// genCitation: planted partition; each community has a primary attribute
// (round-robin over the universe); each node carries the primary attribute
// with probability AttrFidelity, otherwise a uniform random one.
func genCitation(spec Spec, rng *rand.Rand) *Dataset {
	g, comms := graph.PlantedPartition(graph.PlantedPartitionSpec{
		N: spec.N, TargetM: spec.M, NumComms: spec.NumComms,
		CommExponent: 1.4, IntraFraction: 0.82, HubBias: spec.HubBias,
		PendantFraction: spec.Pendants,
	}, rng)
	b := rebuilder(g, spec.NumAttrs)
	for v := 0; v < g.N(); v++ {
		primary := graph.AttrID(comms[v] % spec.NumAttrs)
		a := primary
		if rng.Float64() >= spec.AttrFidelity {
			a = graph.AttrID(rng.IntN(spec.NumAttrs))
		}
		_ = b.SetAttrs(graph.NodeID(v), a)
	}
	return &Dataset{Name: spec.Name, G: b.Build(), Comms: comms}
}

// genGroundTruth: planted partition; every node of a ground-truth community
// gets the same random attribute — exactly the paper's assignment rule for
// Amazon/DBLP/LiveJournal.
func genGroundTruth(spec Spec, rng *rand.Rand) *Dataset {
	g, comms := graph.PlantedPartition(graph.PlantedPartitionSpec{
		N: spec.N, TargetM: spec.M, NumComms: spec.NumComms,
		CommExponent: 1.2, IntraFraction: 0.85, HubBias: spec.HubBias,
		PendantFraction: spec.Pendants,
	}, rng)
	attrOf := make([]graph.AttrID, spec.NumComms)
	for c := range attrOf {
		attrOf[c] = graph.AttrID(rng.IntN(spec.NumAttrs))
	}
	b := rebuilder(g, spec.NumAttrs)
	for v := 0; v < g.N(); v++ {
		_ = b.SetAttrs(graph.NodeID(v), attrOf[comms[v]])
	}
	return &Dataset{Name: spec.Name, G: b.Build(), Comms: comms}
}

// genRetweet: star-burst preferential attachment (hub-dominated with many
// degree-1 leaves, like a retweet cascade network), with two attributes
// grown as regions from random seeds so the attribute correlates with
// topology. The degree-1 leaves are what skew the agglomerative dendrogram
// (|H̄_ℓ(q)| = 165.3 on the real Retweet, an order of magnitude above
// log₂|V|), which Fig. 4 and Table II depend on.
func genRetweet(spec Spec, rng *rand.Rand) *Dataset {
	// 30% of nodes are degree-1 retweeters of twenty mega-hubs; the rest
	// wire preferentially so the overall density hits the target:
	// hubProb·1 + (1-hubProb)·(p1 + (1-p1)·burst) = M/N.
	const (
		numHubs = 20
		hubProb = 0.30
		burst   = 5
	)
	density := float64(spec.M) / float64(spec.N)
	rest := (density - hubProb) / (1 - hubProb)
	p1 := (float64(burst) - rest) / float64(burst-1)
	if p1 < 0 {
		p1 = 0
	}
	if p1 > 1 {
		p1 = 1
	}
	g := graph.HubBurst(spec.N, numHubs, hubProb, p1, burst, rng)
	b := rebuilder(g, spec.NumAttrs)
	label := regionLabels(g, spec.NumAttrs, rng)
	for v := 0; v < g.N(); v++ {
		_ = b.SetAttrs(graph.NodeID(v), label[v])
	}
	return &Dataset{Name: spec.Name, G: b.Build()}
}

// regionLabels partitions nodes into numLabels contiguous regions by
// multi-source BFS from random seeds.
func regionLabels(g *graph.Graph, numLabels int, rng *rand.Rand) []graph.AttrID {
	n := g.N()
	label := make([]graph.AttrID, n)
	for i := range label {
		label[i] = -1
	}
	var queue []graph.NodeID
	perm := rng.Perm(n)
	for i := 0; i < numLabels && i < n; i++ {
		s := graph.NodeID(perm[i])
		label[s] = graph.AttrID(i)
		queue = append(queue, s)
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(v) {
			if label[u] == -1 {
				label[u] = label[v]
				queue = append(queue, u)
			}
		}
	}
	for v := range label {
		if label[v] == -1 {
			label[v] = graph.AttrID(rng.IntN(numLabels))
		}
	}
	return label
}

// rebuilder copies g's edges into a fresh Builder with a new attribute
// universe so attributes can be (re)assigned.
func rebuilder(g *graph.Graph, numAttrs int) *graph.Builder {
	b := graph.NewBuilder(g.N(), numAttrs)
	g.ForEachEdge(func(u, v graph.NodeID, w float64) { _ = b.AddWeightedEdge(u, v, w) })
	return b
}

// Query is a COD query: a node plus one of its attributes.
type Query struct {
	Node graph.NodeID
	Attr graph.AttrID
}

// Queries samples count query nodes uniformly among nodes with at least one
// attribute, picking a random attribute of each (the paper's protocol).
func Queries(g *graph.Graph, count int, rng *rand.Rand) []Query {
	var eligible []graph.NodeID
	for v := 0; v < g.N(); v++ {
		if len(g.Attrs(graph.NodeID(v))) > 0 {
			eligible = append(eligible, graph.NodeID(v))
		}
	}
	if len(eligible) == 0 {
		return nil
	}
	out := make([]Query, 0, count)
	for len(out) < count {
		v := eligible[rng.IntN(len(eligible))]
		as := g.Attrs(v)
		out = append(out, Query{Node: v, Attr: as[rng.IntN(len(as))]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}
