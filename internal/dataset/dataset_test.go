package dataset

import (
	"testing"

	"github.com/codsearch/cod/internal/graph"
)

func TestSpecRegistry(t *testing.T) {
	if len(Names()) != 7 {
		t.Fatalf("Names() = %v", Names())
	}
	if len(EffectivenessNames()) != 6 {
		t.Fatalf("EffectivenessNames() = %v", EffectivenessNames())
	}
	for _, n := range Names() {
		if _, err := SpecOf(n); err != nil {
			t.Errorf("SpecOf(%s): %v", n, err)
		}
	}
	if _, err := SpecOf("bogus"); err == nil {
		t.Error("bogus spec accepted")
	}
	if _, err := Load("bogus", 1); err == nil {
		t.Error("bogus load accepted")
	}
}

func TestTinyAndSmallShapes(t *testing.T) {
	for _, tc := range []struct {
		name string
		n    int
	}{
		{"tiny", 120}, {"small", 600},
	} {
		ds, err := Load(tc.name, 3)
		if err != nil {
			t.Fatal(err)
		}
		if ds.G.N() != tc.n {
			t.Errorf("%s: N = %d, want %d", tc.name, ds.G.N(), tc.n)
		}
		if !ds.G.Connected() {
			t.Errorf("%s: not connected", tc.name)
		}
		if ds.Comms == nil {
			t.Errorf("%s: missing planted communities", tc.name)
		}
	}
}

func TestCitationScaleMatchesPaper(t *testing.T) {
	for _, name := range []string{"cora", "citeseer"} {
		spec, _ := SpecOf(name)
		ds, err := Load(name, 42)
		if err != nil {
			t.Fatal(err)
		}
		if ds.G.N() != spec.Paper.V {
			t.Errorf("%s: N = %d, want %d", name, ds.G.N(), spec.Paper.V)
		}
		if ds.G.NumAttrs() != spec.Paper.A {
			t.Errorf("%s: A = %d, want %d", name, ds.G.NumAttrs(), spec.Paper.A)
		}
		// edge count within 5% of the original
		lo, hi := int(0.95*float64(spec.Paper.E)), int(1.05*float64(spec.Paper.E))
		if ds.G.M() < lo || ds.G.M() > hi {
			t.Errorf("%s: M = %d, want within [%d,%d]", name, ds.G.M(), lo, hi)
		}
		if !ds.G.Connected() {
			t.Errorf("%s: not connected", name)
		}
		// every node has exactly one attribute (citation-like rule)
		for v := 0; v < ds.G.N(); v++ {
			if len(ds.G.Attrs(graph.NodeID(v))) != 1 {
				t.Fatalf("%s: node %d has %d attrs", name, v, len(ds.G.Attrs(graph.NodeID(v))))
			}
		}
	}
}

func TestGroundTruthAttributeRule(t *testing.T) {
	ds, err := Load("amazon", 42)
	if err != nil {
		t.Fatal(err)
	}
	// paper's rule: all nodes of a ground-truth community share one attr
	attrOf := map[int]graph.AttrID{}
	for v := 0; v < ds.G.N(); v++ {
		as := ds.G.Attrs(graph.NodeID(v))
		if len(as) != 1 {
			t.Fatalf("node %d has %d attrs", v, len(as))
		}
		c := ds.Comms[v]
		if prev, ok := attrOf[c]; ok && prev != as[0] {
			t.Fatalf("community %d has two attrs: %d and %d", c, prev, as[0])
		}
		attrOf[c] = as[0]
	}
}

func TestRetweetSkew(t *testing.T) {
	ds, err := Load("retweet", 42)
	if err != nil {
		t.Fatal(err)
	}
	deg1 := 0
	for v := 0; v < ds.G.N(); v++ {
		if ds.G.Degree(graph.NodeID(v)) == 1 {
			deg1++
		}
	}
	// the generator plants ~30% degree-1 retweeters plus preferential leaves
	if frac := float64(deg1) / float64(ds.G.N()); frac < 0.25 {
		t.Errorf("degree-1 fraction = %.2f, want >= 0.25", frac)
	}
	if maxd := graph.MaxDegree(ds.G); maxd < 200 {
		t.Errorf("max degree = %d, want a mega-hub", maxd)
	}
	if ds.G.NumAttrs() != 2 {
		t.Errorf("attrs = %d", ds.G.NumAttrs())
	}
}

func TestLoadDeterminism(t *testing.T) {
	a, err := Load("tiny", 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Load("tiny", 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.G.M() != b.G.M() {
		t.Fatal("edge counts differ across loads")
	}
	for v := 0; v < a.G.N(); v++ {
		na, nb := a.G.Neighbors(graph.NodeID(v)), b.G.Neighbors(graph.NodeID(v))
		if len(na) != len(nb) {
			t.Fatalf("node %d adjacency differs", v)
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("node %d adjacency differs", v)
			}
		}
	}
	c, err := Load("tiny", 10)
	if err != nil {
		t.Fatal(err)
	}
	if c.G.M() == a.G.M() {
		t.Log("different seeds produced same M (possible but unusual)")
	}
}

func TestQueries(t *testing.T) {
	ds, err := Load("tiny", 5)
	if err != nil {
		t.Fatal(err)
	}
	qs := Queries(ds.G, 10, graph.NewRand(6))
	if len(qs) != 10 {
		t.Fatalf("queries = %d", len(qs))
	}
	for _, q := range qs {
		if !ds.G.HasAttr(q.Node, q.Attr) {
			t.Errorf("query (%d,%d): node lacks attribute", q.Node, q.Attr)
		}
	}
	// no attributes -> no queries
	plain, err := graph.FromEdges(3, [][2]graph.NodeID{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if qs := Queries(plain, 5, graph.NewRand(7)); qs != nil {
		t.Errorf("expected nil queries, got %v", qs)
	}
}
