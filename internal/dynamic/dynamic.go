// Package dynamic maintains COD state over a mutating graph — the paper's
// stated future-work direction (§IV Discussion, §VI). Edge insertions are
// buffered; a flush rebuilds the affected state using one of two
// strategies:
//
//   - RebuildLocal re-clusters only the smallest hierarchy community
//     containing all touched endpoints and splices the fresh subtree back
//     (cheap when updates are localized, the common case for social
//     graphs);
//   - RebuildFull re-clusters from scratch (the fallback when updates touch
//     a large fraction of the graph).
//
// The HIMOR index is rebuilt on every flush in both strategies: influence
// counts are global (an RR graph may cross the whole graph), so a sound
// incremental rank maintenance needs per-sample provenance — exactly the
// non-trivial extension the paper defers. The rebuild is still the
// compressed construction, so flushes are O(Θ·ω + sort) rather than
// per-community.
package dynamic

import (
	"fmt"

	"context"

	"github.com/codsearch/cod/internal/core"
	"github.com/codsearch/cod/internal/engine"
	"github.com/codsearch/cod/internal/graph"
	"github.com/codsearch/cod/internal/hac"
	"github.com/codsearch/cod/internal/hier"
	"github.com/codsearch/cod/internal/obs"
)

// Strategy selects how Flush rebuilds the hierarchy.
type Strategy int

const (
	// Auto picks RebuildLocal when the affected community covers less than
	// half the graph, RebuildFull otherwise.
	Auto Strategy = iota
	// RebuildLocal re-clusters only the affected subtree.
	RebuildLocal
	// RebuildFull re-clusters the whole graph.
	RebuildFull
)

// Updater owns a graph plus the COD offline state and applies edge
// insertions incrementally. It is not safe for concurrent use.
type Updater struct {
	g      *graph.Graph
	params engine.Params
	tree   *hier.Tree
	index  *core.Himor
	eng    *engine.Engine

	pending [][2]graph.NodeID
	flushes int
	locals  int
}

// New builds the initial state (clustering + HIMOR) for g.
func New(g *graph.Graph, params engine.Params) (*Updater, error) {
	return NewWithConfig(g, params, engine.Config{})
}

// NewWithConfig is New with an explicit engine configuration — enabling the
// per-attribute sample cache or attribute-tree caching for serving setups.
// Flush invalidates both through the engine epoch.
func NewWithConfig(g *graph.Graph, params engine.Params, cfg engine.Config) (*Updater, error) {
	eng, err := engine.Build(context.Background(), g, params, cfg)
	if err != nil {
		return nil, err
	}
	return &Updater{g: g, params: eng.Params(), tree: eng.Tree(), index: eng.Index(), eng: eng}, nil
}

// Graph returns the current graph (pending edges excluded until Flush).
func (u *Updater) Graph() *graph.Graph { return u.g }

// Tree returns the current hierarchy.
func (u *Updater) Tree() *hier.Tree { return u.tree }

// Pending returns the number of buffered edge insertions.
func (u *Updater) Pending() int { return len(u.pending) }

// Stats reports (total flushes, local flushes) for instrumentation.
func (u *Updater) Stats() (flushes, localFlushes int) { return u.flushes, u.locals }

// AddEdge buffers the undirected edge (a, b) for the next Flush. Both
// endpoints must already exist; duplicate edges are merged at flush time.
func (u *Updater) AddEdge(a, b graph.NodeID) error {
	if a == b {
		return fmt.Errorf("dynamic: self loop on %d", a)
	}
	if a < 0 || int(a) >= u.g.N() || b < 0 || int(b) >= u.g.N() {
		return fmt.Errorf("dynamic: edge (%d,%d) out of range [0,%d)", a, b, u.g.N())
	}
	u.pending = append(u.pending, [2]graph.NodeID{a, b})
	return nil
}

// Flush applies the buffered edges and rebuilds the hierarchy per the
// strategy, then rebuilds the HIMOR index. A flush with no pending edges is
// a no-op.
func (u *Updater) Flush(s Strategy) error {
	if len(u.pending) == 0 {
		return nil
	}
	ng := u.applyPending()

	// Affected community: lca over every touched endpoint.
	affected := u.tree.LeafOf(u.pending[0][0])
	for _, e := range u.pending {
		affected = u.tree.LCA(affected, u.tree.LeafOf(e[0]))
		affected = u.tree.LCA(affected, u.tree.LeafOf(e[1]))
	}
	if s == Auto {
		if !u.tree.IsLeaf(affected) && u.tree.Size(affected)*2 < ng.N() {
			s = RebuildLocal
		} else {
			s = RebuildFull
		}
	}

	var nt *hier.Tree
	var err error
	if s == RebuildLocal && !u.tree.IsLeaf(affected) && affected != u.tree.Root() {
		members := u.tree.Members(affected)
		sub := graph.Induce(ng, members)
		local, cerr := hac.Cluster(sub.G, u.params.Linkage)
		if cerr != nil {
			return fmt.Errorf("dynamic: local recluster: %w", cerr)
		}
		nt, err = hier.Splice(u.tree, affected, local, sub.ToParent)
		if err != nil {
			return fmt.Errorf("dynamic: splice: %w", err)
		}
		u.locals++
	} else {
		nt, err = hac.Cluster(ng, u.params.Linkage)
		if err != nil {
			return fmt.Errorf("dynamic: full recluster: %w", err)
		}
	}

	theta := u.params.Theta
	if theta <= 0 {
		theta = 10
	}
	sampler := engine.NewGraphSampler(ng, u.params.Model, graph.NewRand(graph.ItemSeed(u.params.Seed, u.flushes)))
	u.index = core.BuildHimorWithSampler(ng, nt, sampler, theta)
	u.g = ng
	u.tree = nt
	u.pending = u.pending[:0]
	u.flushes++
	// Rebind bumps the engine epoch: cached sample pools and attribute
	// trees from the pre-flush graph can never answer post-flush queries.
	u.eng.Rebind(ng, nt, u.index)
	return nil
}

// applyPending materializes the graph with buffered edges merged in.
func (u *Updater) applyPending() *graph.Graph {
	b := graph.NewBuilder(u.g.N(), u.g.NumAttrs())
	u.g.ForEachEdge(func(x, y graph.NodeID, w float64) { _ = b.AddWeightedEdge(x, y, w) })
	for v := graph.NodeID(0); int(v) < u.g.N(); v++ {
		if as := u.g.Attrs(v); len(as) > 0 {
			_ = b.SetAttrs(v, as...)
		}
	}
	for _, e := range u.pending {
		_ = b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// Query answers a COD query over the current state (Algorithm 3). Pending
// edges are not visible until Flush.
func (u *Updater) Query(q graph.NodeID, attr graph.AttrID, seed uint64) (engine.Community, error) {
	return u.QueryCtx(context.Background(), q, attr, seed)
}

// QueryCtx is Query with cancellation and instrumentation: a Recorder on
// ctx receives the query's step spans, and its trace (if any) gets a
// deterministic ID derived from seed unless one was already installed.
func (u *Updater) QueryCtx(ctx context.Context, q graph.NodeID, attr graph.AttrID, seed uint64) (engine.Community, error) {
	obs.FromContext(ctx).EnsureTraceID(seed)
	pl := u.eng.Compile(engine.VariantCODL, q, attr)
	return u.eng.Execute(ctx, pl, graph.NewRand(seed))
}

// QueryGlobal answers a CODR-variant query (global attribute recluster)
// over the current state, sharing the engine's caches with Query.
func (u *Updater) QueryGlobal(q graph.NodeID, attr graph.AttrID, seed uint64) (engine.Community, error) {
	return u.QueryGlobalCtx(context.Background(), q, attr, seed)
}

// QueryGlobalCtx is QueryGlobal with cancellation and instrumentation (see
// QueryCtx).
func (u *Updater) QueryGlobalCtx(ctx context.Context, q graph.NodeID, attr graph.AttrID, seed uint64) (engine.Community, error) {
	obs.FromContext(ctx).EnsureTraceID(seed)
	pl := u.eng.Compile(engine.VariantCODR, q, attr)
	return u.eng.Execute(ctx, pl, graph.NewRand(seed))
}

// Engine exposes the updater's query engine (shared state, epoch, caches).
func (u *Updater) Engine() *engine.Engine { return u.eng }
