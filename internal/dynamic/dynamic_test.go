package dynamic

import (
	"fmt"
	"testing"

	"github.com/codsearch/cod/internal/dataset"
	"github.com/codsearch/cod/internal/engine"
	"github.com/codsearch/cod/internal/graph"
)

func newUpdater(t *testing.T) *Updater {
	t.Helper()
	ds, err := dataset.Load("tiny", 17)
	if err != nil {
		t.Fatal(err)
	}
	u, err := New(ds.G, engine.Params{K: 5, Theta: 4, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestAddEdgeValidation(t *testing.T) {
	u := newUpdater(t)
	if err := u.AddEdge(3, 3); err == nil {
		t.Error("self loop accepted")
	}
	if err := u.AddEdge(0, graph.NodeID(u.Graph().N())); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	if err := u.AddEdge(0, 5); err != nil {
		t.Fatal(err)
	}
	if u.Pending() != 1 {
		t.Errorf("pending = %d", u.Pending())
	}
}

func TestFlushNoPendingIsNoop(t *testing.T) {
	u := newUpdater(t)
	before := u.Tree()
	if err := u.Flush(Auto); err != nil {
		t.Fatal(err)
	}
	if u.Tree() != before {
		t.Error("no-op flush replaced the tree")
	}
	if f, _ := u.Stats(); f != 0 {
		t.Error("no-op flush counted")
	}
}

func TestLocalFlush(t *testing.T) {
	u := newUpdater(t)
	g := u.Graph()
	// pick two nodes inside one small community: neighbors of node 0
	ns := g.Neighbors(0)
	if len(ns) < 2 {
		t.Skip("node 0 too sparse")
	}
	a, b := ns[0], ns[1]
	if g.HasEdge(a, b) {
		// find a non-adjacent pair among 0's neighborhood
		found := false
		for i := 0; i < len(ns) && !found; i++ {
			for j := i + 1; j < len(ns) && !found; j++ {
				if !g.HasEdge(ns[i], ns[j]) {
					a, b = ns[i], ns[j]
					found = true
				}
			}
		}
		if !found {
			t.Skip("neighborhood is a clique")
		}
	}
	mBefore := g.M()
	if err := u.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	if err := u.Flush(RebuildLocal); err != nil {
		t.Fatal(err)
	}
	if u.Graph().M() != mBefore+1 {
		t.Errorf("M = %d, want %d", u.Graph().M(), mBefore+1)
	}
	if !u.Graph().HasEdge(a, b) {
		t.Error("edge not applied")
	}
	if u.Tree().Size(u.Tree().Root()) != u.Graph().N() {
		t.Error("tree lost leaves after local flush")
	}
	if u.Pending() != 0 {
		t.Error("pending not cleared")
	}
	flushes, locals := u.Stats()
	if flushes != 1 {
		t.Errorf("flushes = %d", flushes)
	}
	_ = locals // local vs full depends on the lca size; both are valid here
}

func TestFullFlushAndQuery(t *testing.T) {
	u := newUpdater(t)
	g := u.Graph()
	// edges spanning distant parts force a wide lca -> full rebuild in Auto
	if err := u.AddEdge(0, graph.NodeID(g.N()-1)); err != nil {
		t.Fatal(err)
	}
	if err := u.AddEdge(1, graph.NodeID(g.N()-2)); err != nil {
		t.Fatal(err)
	}
	if err := u.Flush(Auto); err != nil {
		t.Fatal(err)
	}
	// queries still work on the updated state
	var q graph.NodeID = -1
	for v := graph.NodeID(0); int(v) < u.Graph().N(); v++ {
		if len(u.Graph().Attrs(v)) > 0 {
			q = v
			break
		}
	}
	com, err := u.Query(q, u.Graph().Attrs(q)[0], 99)
	if err != nil {
		t.Fatal(err)
	}
	if com.Found && !contains(com.Nodes, q) {
		t.Error("community missing query node")
	}
}

func TestRepeatedFlushesConverge(t *testing.T) {
	u := newUpdater(t)
	rng := graph.NewRand(23)
	for round := 0; round < 3; round++ {
		for i := 0; i < 4; i++ {
			a := graph.NodeID(rng.IntN(u.Graph().N()))
			b := graph.NodeID(rng.IntN(u.Graph().N()))
			if a != b {
				if err := u.AddEdge(a, b); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := u.Flush(Auto); err != nil {
			t.Fatal(err)
		}
		if u.Tree().N() != u.Graph().N() {
			t.Fatal("tree/graph drift")
		}
	}
	flushes, _ := u.Stats()
	if flushes != 3 {
		t.Errorf("flushes = %d", flushes)
	}
}

// After a local flush, query results must match a from-scratch full rebuild
// in validity (found communities contain q; chain sizes monotone).
func TestLocalFlushProducesValidHierarchy(t *testing.T) {
	u := newUpdater(t)
	g := u.Graph()
	ns := g.Neighbors(2)
	if len(ns) == 0 {
		t.Skip("isolated")
	}
	// duplicate edge: exercises the merge path
	if err := u.AddEdge(2, ns[0]); err != nil {
		t.Fatal(err)
	}
	if err := u.Flush(RebuildLocal); err != nil {
		t.Fatal(err)
	}
	tr := u.Tree()
	for leaf := 0; leaf < tr.N(); leaf++ {
		prev := 1
		for _, a := range tr.Ancestors(int32(leaf)) {
			if tr.Size(a) <= prev {
				t.Fatalf("chain sizes not increasing for leaf %d", leaf)
			}
			prev = tr.Size(a)
		}
	}
}

func contains(nodes []graph.NodeID, q graph.NodeID) bool {
	for _, v := range nodes {
		if v == q {
			return true
		}
	}
	return false
}

// TestFlushInvalidatesSampleCache drives graph updates between cache-hitting
// global queries: before the flush the second identical query must be served
// from the sample cache byte-identically; after the flush the bumped engine
// epoch must force a fresh pool over the updated graph, and the whole
// sequence must replay deterministically.
func TestFlushInvalidatesSampleCache(t *testing.T) {
	run := func() []string {
		ds, err := dataset.Load("tiny", 17)
		if err != nil {
			t.Fatal(err)
		}
		u, err := NewWithConfig(ds.G, engine.Params{K: 5, Theta: 4, Seed: 17},
			engine.Config{SampleCache: 2, CacheAttrTrees: true})
		if err != nil {
			t.Fatal(err)
		}
		var q graph.NodeID = -1
		for v := graph.NodeID(0); int(v) < u.Graph().N(); v++ {
			if len(u.Graph().Attrs(v)) > 0 {
				q = v
				break
			}
		}
		attr := u.Graph().Attrs(q)[0]
		var out []string
		c1, err := u.QueryGlobal(q, attr, 99)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := u.QueryGlobal(q, attr, 99) // cache hit: pool + attr tree reused
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprintf("%+v", c1) != fmt.Sprintf("%+v", c2) {
			t.Fatalf("cache hit differs from miss: %+v vs %+v", c2, c1)
		}
		out = append(out, fmt.Sprintf("%+v", c1))
		if err := u.AddEdge(q, graph.NodeID((int(q)+u.Graph().N()/2)%u.Graph().N())); err != nil {
			t.Fatal(err)
		}
		if err := u.Flush(Auto); err != nil {
			t.Fatal(err)
		}
		if u.Engine().Epoch() != 1 {
			t.Fatalf("epoch after flush = %d, want 1", u.Engine().Epoch())
		}
		c3, err := u.QueryGlobal(q, attr, 99)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, fmt.Sprintf("%+v", c3))
		return out
	}
	first, second := run(), run()
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("replay %d differs:\n%s\n%s", i, first[i], second[i])
		}
	}
}
