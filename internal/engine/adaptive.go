package engine

import (
	"context"
	"math"
	"math/rand/v2"

	"github.com/codsearch/cod/internal/core"
	"github.com/codsearch/cod/internal/graph"
	"github.com/codsearch/cod/internal/influence"
	"github.com/codsearch/cod/internal/obs"
)

// This file is the bounded-error adaptive evaluation mode (DESIGN.md §16):
// the RR sample pool grows in geometric stages and after each stage a
// concentration bound on the estimated influence gap between q and the
// rank-k boundary decides whether the answer is already certified. The mode
// is off by default; when off, no code in this file runs and execution is
// byte-identical to the non-adaptive engine.

// Adaptive configures bounded-error staged evaluation. The zero value is
// off; an enabled zero value uses ε = δ = 0.05 with a 4-stage schedule
// (budget/8 → budget/4 → budget/2 → budget).
type Adaptive struct {
	// Enabled turns staged evaluation on.
	Enabled bool
	// Eps is the indifference width on normalized influence margins: a level
	// whose confidence radius has shrunk below Eps is accepted with its
	// empirical decision even if its margin is narrower — the PAC-style
	// slack that lets near-ties stop early. 0 and below default to 0.05.
	Eps float64
	// Delta is the total certification failure probability: a query that
	// stops early carries the full-budget rank-k decision with probability
	// at least 1−Delta. 0 and below default to 0.05.
	Delta float64
	// Stages is the number of geometric stages; stage i draws up to
	// ⌈budget/2^(Stages−1−i)⌉ cumulative samples. 0 defaults to 4.
	Stages int
}

// withDefaults fills zero tuning fields with the defaults above.
func (a Adaptive) withDefaults() Adaptive {
	if a.Eps <= 0 {
		a.Eps = 0.05
	}
	if a.Delta <= 0 {
		a.Delta = 0.05
	}
	if a.Stages <= 0 {
		a.Stages = 4
	}
	return a
}

// stageSchedule returns the cumulative sample counts of the geometric
// staging: ⌈total/2^(stages−1)⌉, …, ⌈total/2⌉, total — deduplicated,
// strictly increasing, always ending exactly at total.
func stageSchedule(total, stages int) []int {
	if total < 1 {
		total = 1
	}
	out := make([]int, 0, stages)
	for i := stages - 1; i >= 0; i-- {
		t := total
		if i > 0 && i < 63 {
			t = (total + 1<<i - 1) >> i
		}
		if len(out) > 0 && t <= out[len(out)-1] {
			continue
		}
		out = append(out, t)
	}
	return out
}

// certRadius is the 1−δ′ confidence half-width on a normalized count margin
// (qCnt − bCnt)/t after t samples: the minimum of the Hoeffding bound for
// the range-2 per-sample difference of indicators and an empirical-
// Bernstein bound (Maurer–Pontil rescaled to [−1,1]) whose variance proxy
// (qCnt + bCnt)/t dominates the empirical second moment of the difference
// — (X−Y)² ≤ X+Y for indicators — so it is valid wherever the empirical
// variance is, and much tighter in the sparse-count regime of whole-graph
// pools. logTerm is ln(2/δ′).
func certRadius(qCnt, bCnt int32, t int, logTerm float64) float64 {
	tf := float64(t)
	r := math.Sqrt(2 * logTerm / tf)
	if t > 1 {
		v := float64(qCnt+bCnt) / tf
		if eb := math.Sqrt(2*v*logTerm/tf) + 14*logTerm/(3*(tf-1)); eb < r {
			r = eb
		}
	}
	return r
}

// decisiveFrom returns the first level whose decision can change the
// answer: the empirical best level and everything above it (larger
// communities). Levels below the best are irrelevant — the answer is the
// largest in-top-k level — so they never gate certification. A best of −1
// (q nowhere top-k) makes every level decisive.
func decisiveFrom(best int) int {
	if best < 0 {
		return 0
	}
	return best
}

// certify applies the stopping rule after a stage of t cumulative samples:
// every decisive level must either have its normalized margin |m̂| clear the
// level's confidence radius, or have the radius itself shrink below Eps
// (the indifference rule). The per-test confidence is δ′ = Delta/(2·S·L),
// a union bound over both bound families, all S stages and all L levels,
// so a certified stop is wrong with probability at most Delta. It returns
// whether the answer is certified and the smallest decisive margin.
func (a Adaptive) certify(margins []core.LevelMargin, best, t, stages int) (bool, float64) {
	L := len(margins)
	if L == 0 {
		return true, 0
	}
	if t < 2 {
		return false, 0
	}
	logTerm := math.Log(2 * float64(2*stages*L) / a.Delta)
	gap := math.Inf(1)
	for h := decisiveFrom(best); h < L; h++ {
		m := margins[h]
		mhat := math.Abs(float64(m.QCount-m.Boundary)) / float64(t)
		r := certRadius(m.QCount, m.Boundary, t, logTerm)
		if mhat < r && r > a.Eps {
			return false, 0
		}
		if mhat < gap {
			gap = mhat
		}
	}
	return true, gap
}

// minGap returns the smallest decisive normalized margin (diagnostics for
// the exhausted outcome, where certify may not have succeeded).
func minGap(margins []core.LevelMargin, best, t int) float64 {
	L := len(margins)
	if L == 0 || t == 0 {
		return 0
	}
	gap := math.Inf(1)
	for h := decisiveFrom(best); h < L; h++ {
		m := margins[h]
		if mhat := math.Abs(float64(m.QCount-m.Boundary)) / float64(t); mhat < gap {
			gap = mhat
		}
	}
	return gap
}

// stagedDraw extends the RR pool to cum cumulative samples and returns the
// full pool so far. Implementations must draw sample i identically to the
// non-staged path's i-th draw, so a run that reaches the final stage holds
// exactly the full-budget pool.
type stagedDraw func(ctx context.Context, cum int) ([]*influence.RRGraph, error)

// runStaged is the fused sample+evaluate loop of an adaptive plan: it grows
// the pool per the stage schedule, folds each stage's new samples into a
// stage-resumable compressed evaluation, and stops as soon as certify
// accepts — or at the final stage, whose answer is byte-identical to the
// non-adaptive evaluation of the full pool. It stores the evaluation result
// in st and returns the sample step's outcome plus the realized stage count
// and certified gap for the step trace.
func (e *Engine) runStaged(ctx context.Context, pl *Plan, step Step, sc *queryScratch, rng *rand.Rand, st *execState, ad Adaptive) (outcome string, stages int, gap float64, err error) {
	ad = ad.withDefaults()
	rec := obs.FromContext(ctx)

	var total int
	var draw stagedDraw
	if step.Sample == SampleRestricted {
		total, draw = e.stagedRestricted(sc, st.rec, rng)
	} else {
		total, draw = e.stagedShared(sc, pl.predCacheKey())
	}

	se := core.NewStagedEval(st.ch, pl.K, sc.eval)
	sched := stageSchedule(total, ad.Stages)
	for si, cum := range sched {
		rrs, err := draw(ctx, cum)
		if err != nil {
			return errOutcome(err), si, 0, err
		}
		if err := se.Fold(ctx, rrs); err != nil {
			return errOutcome(err), si, 0, err
		}
		res, margins := se.Sweep(ctx)
		// Community filters may promote any in-top-k level to the answer, so
		// the empirical best no longer bounds which decisions matter: force
		// every level decisive before certifying.
		decisive := res.Level
		if len(pl.Filters) > 0 {
			decisive = -1
		}
		if si == len(sched)-1 {
			st.res = res
			rec.CountAdaptive(false, si+1, int64(cum), int64(total))
			return "exhausted", si + 1, minGap(margins, decisive, cum), nil
		}
		if ok, gap := ad.certify(margins, decisive, cum, len(sched)); ok {
			st.res = res
			rec.CountAdaptive(true, si+1, int64(cum), int64(total))
			return "early_stop", si + 1, gap, nil
		}
	}
	// Unreachable: the schedule is never empty and its last stage returns.
	return "exhausted", len(sched), 0, nil
}

// stagedRestricted returns the θ·|C_ℓ| budget and a draw that continues the
// historical restricted sampling loop across stages: the pause between
// stages does not touch the query rng, so the cumulative draw order is
// byte-identical to sampleRestricted's.
func (e *Engine) stagedRestricted(sc *queryScratch, rec *core.Reclustering, rng *rand.Rand) (int, stagedDraw) {
	members := rec.Sub.ToParent
	in := sc.memberMask(members)
	member := func(u graph.NodeID) bool { return in[u] }
	total := e.p.Theta * len(members)
	drawn := 0
	return total, func(ctx context.Context, cum int) ([]*influence.RRGraph, error) {
		span := obs.FromContext(ctx).StartSpan(obs.StageRRSample)
		start := drawn
		for ; drawn < cum; drawn++ {
			if drawn%influence.PollEvery == 0 {
				if err := ctx.Err(); err != nil {
					span.EndItems(drawn - start)
					return nil, &influence.CanceledError{
						Op: "engine: restricted rr sampling", Done: drawn, Total: total, Cause: err}
				}
			}
			sc.sampler.RRGraphWithinInto(sc.arena, members[rng.IntN(len(members))], member)
		}
		span.EndItems(drawn - start)
		return sc.arena.Finalize(), nil
	}
}

// stagedShared returns the θ·N budget and a draw over the shared pool. With
// the sample cache enabled the full (attr, epoch)-keyed pool is fetched once
// — its content is already a pure function of the key — and stages evaluate
// growing prefixes of it; without a cache, stages continue the query-rng
// sampling loop exactly where the previous stage paused, matching the
// influence.BatchIntoCtx draw order.
func (e *Engine) stagedShared(sc *queryScratch, pk predKey) (int, stagedDraw) {
	total := e.p.Theta * e.g.N()
	if e.cache != nil {
		var pool []*influence.RRGraph
		return total, func(ctx context.Context, cum int) ([]*influence.RRGraph, error) {
			if pool == nil {
				rrs, _, err := e.cache.get(ctx, e, pk, total)
				if err != nil {
					return nil, err
				}
				pool = rrs
			}
			return pool[:cum], nil
		}
	}
	drawn := 0
	return total, func(ctx context.Context, cum int) ([]*influence.RRGraph, error) {
		span := obs.FromContext(ctx).StartSpan(obs.StageRRSample)
		start := drawn
		for ; drawn < cum; drawn++ {
			if drawn%influence.PollEvery == 0 {
				if err := ctx.Err(); err != nil {
					span.EndItems(drawn - start)
					return nil, &influence.CanceledError{
						Op: "influence: rr batch", Done: drawn, Total: total, Cause: err}
				}
			}
			sc.sampler.RRGraphInto(sc.arena)
		}
		span.EndItems(drawn - start)
		return sc.arena.Finalize(), nil
	}
}
