package engine

import (
	"context"
	"fmt"
	"math"
	"testing"

	"math/rand/v2"

	"github.com/codsearch/cod/internal/core"
	"github.com/codsearch/cod/internal/graph"
	"github.com/codsearch/cod/internal/hier"
	"github.com/codsearch/cod/internal/influence"
	"github.com/codsearch/cod/internal/obs"
)

func TestStageSchedule(t *testing.T) {
	cases := []struct {
		total, stages int
		want          []int
	}{
		{800, 4, []int{100, 200, 400, 800}},
		{2048, 4, []int{256, 512, 1024, 2048}},
		{1000, 4, []int{125, 250, 500, 1000}},
		{7, 4, []int{1, 2, 4, 7}}, // ceils: ⌈7/8⌉=1, ⌈7/4⌉=2, ⌈7/2⌉=4
		{3, 4, []int{1, 2, 3}},    // ⌈3/8⌉=⌈3/4⌉=1 dedupes
		{1, 4, []int{1}},          // degenerate budget
		{0, 4, []int{1}},          // guarded up to 1
		{100, 1, []int{100}},      // single stage ≡ non-adaptive draw
		{6, 8, []int{1, 2, 3, 6}}, // more stages than distinct sizes
		{1 << 20, 2, []int{1 << 19, 1 << 20}},
	}
	for _, c := range cases {
		got := stageSchedule(c.total, c.stages)
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Errorf("stageSchedule(%d, %d) = %v, want %v", c.total, c.stages, got, c.want)
		}
		if got[len(got)-1] != max(c.total, 1) {
			t.Errorf("stageSchedule(%d, %d) does not end at the budget: %v", c.total, c.stages, got)
		}
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Errorf("stageSchedule(%d, %d) not strictly increasing: %v", c.total, c.stages, got)
			}
		}
	}
}

// trialMargins simulates a single-level chain where q's per-sample hit is
// Bernoulli(pq) and the rank-k boundary's is Bernoulli(pb), and runs the
// staged certifier over the geometric schedule exactly as runStaged would:
// counts accumulate across stages and certify sees the cumulative totals. It
// returns the stage at which certification fired (0 = never, i.e. the run
// reached exhaustion) and whether the certified decision agreed in sign with
// the true gap pq−pb.
func trialMargins(a Adaptive, rng *rand.Rand, pq, pb float64, sched []int) (stoppedAt int, rightSide bool) {
	var qc, bc int32
	drawn := 0
	for si, cum := range sched {
		for ; drawn < cum; drawn++ {
			if rng.Float64() < pq {
				qc++
			}
			if rng.Float64() < pb {
				bc++
			}
		}
		if si == len(sched)-1 {
			return 0, true
		}
		m := []core.LevelMargin{{QCount: qc, Boundary: bc, InTopK: qc >= bc}}
		best := -1
		if m[0].InTopK {
			best = 0
		}
		if ok, _ := a.certify(m, best, cum, len(sched)); ok {
			empirical := qc >= bc
			truth := pq >= pb
			return si + 1, empirical == truth
		}
	}
	return 0, true
}

// TestAdaptiveCertifierPlantedGap drives the certifier over ≥1k seeded trials
// of a planted-gap distribution: the margin is real (pq−pb = 0.2), so the
// certifier should (a) never certify the wrong side — the 1−δ guarantee with
// lots of slack — and (b) stop early in the overwhelming majority of trials,
// or the bound is too loose to be worth shipping.
func TestAdaptiveCertifierPlantedGap(t *testing.T) {
	a := Adaptive{Delta: 0.05, Stages: 4} // Eps 0: pure margin certification
	sched := stageSchedule(2048, a.Stages)
	const trials = 1500
	wrong, early := 0, 0
	for i := 0; i < trials; i++ {
		stopped, right := trialMargins(a, graph.NewRand(graph.ItemSeed(4242, i)), 0.5, 0.3, sched)
		if stopped > 0 {
			early++
			if !right {
				wrong++
			}
		}
	}
	if wrong > 0 {
		t.Errorf("planted gap: %d/%d early stops certified the wrong side", wrong, early)
	}
	if early < trials*9/10 {
		t.Errorf("planted gap: only %d/%d trials stopped early; the bound is uselessly loose", early, trials)
	}
}

// TestAdaptiveCertifierNearTie pins the adversarial regime: an exact tie
// (pq = pb) has no certifiable margin, so with Eps = 0 the certifier must
// essentially never fire and every run must fall through to exhaustion —
// never loop or block. A hair-width gap (0.401 vs 0.4) may legitimately
// certify either side near the boundary; the guarantee is only that
// wrong-side certifications stay within δ of the trials.
func TestAdaptiveCertifierNearTie(t *testing.T) {
	a := Adaptive{Delta: 0.05, Stages: 4}
	sched := stageSchedule(2048, a.Stages)
	const trials = 1500

	tieStops := 0
	for i := 0; i < trials; i++ {
		if stopped, _ := trialMargins(a, graph.NewRand(graph.ItemSeed(7711, i)), 0.4, 0.4, sched); stopped > 0 {
			tieStops++
		}
	}
	// δ′-level false certifications are possible but must be rare: allow the
	// full δ budget even though each trial only gets a δ′ slice of it.
	if maxStops := int(float64(trials) * a.Delta); tieStops > maxStops {
		t.Errorf("exact tie: %d/%d trials certified (> δ budget %d)", tieStops, trials, maxStops)
	}

	wrong := 0
	for i := 0; i < trials; i++ {
		if stopped, right := trialMargins(a, graph.NewRand(graph.ItemSeed(9913, i)), 0.401, 0.4, sched); stopped > 0 && !right {
			wrong++
		}
	}
	if maxWrong := int(float64(trials) * a.Delta); wrong > maxWrong {
		t.Errorf("adversarial near-tie: %d/%d wrong-side certifications (> δ budget %d)", wrong, trials, maxWrong)
	}
}

// TestAdaptiveCertifierEpsIndifference checks the PAC slack: with a generous
// Eps an exact tie is allowed to stop early once the radius shrinks below
// Eps, instead of burning the whole budget on an unresolvable margin.
func TestAdaptiveCertifierEpsIndifference(t *testing.T) {
	a := Adaptive{Eps: 0.2, Delta: 0.05, Stages: 4}
	sched := stageSchedule(2048, a.Stages)
	early := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		if stopped, _ := trialMargins(a, graph.NewRand(graph.ItemSeed(31337, i)), 0.4, 0.4, sched); stopped > 0 {
			early++
		}
	}
	if early < trials/2 {
		t.Errorf("eps indifference: only %d/%d tied trials stopped early with Eps=0.2", early, trials)
	}
}

// adaptiveExhaustive is an Adaptive config whose thresholds can never
// certify (subnormal Eps and Delta survive withDefaults' >0 checks), so
// every query runs the full stage schedule. By the staged-draw contract the
// result must then be byte-identical to the non-adaptive engine.
var adaptiveExhaustive = Adaptive{Enabled: true, Eps: 1e-300, Delta: 1e-300}

// TestAdaptiveExhaustedMatchesNonAdaptive locks the tentpole's core
// determinism promise: an adaptive run that reaches the final stage equals
// the non-adaptive run exactly — same community, on every variant, with and
// without the sample cache (prefix evaluation over a cached full pool).
func TestAdaptiveExhaustedMatchesNonAdaptive(t *testing.T) {
	for _, cache := range []int{0, 4} {
		t.Run(fmt.Sprintf("cache=%d", cache), func(t *testing.T) {
			g, _ := attrGraph(t, 21)
			p := Params{K: 3, Theta: 3, Seed: 21}
			plain, err := Build(context.Background(), g, p, Config{SampleCache: cache})
			if err != nil {
				t.Fatal(err)
			}
			adaptive := New(g, plain.Tree(), plain.Index(), p, Config{SampleCache: cache, Adaptive: adaptiveExhaustive})
			for _, q := range queryNodes(g, 6) {
				for i, variant := range []Variant{VariantCODU, VariantCODR, VariantCODL, VariantCODLNoIndex} {
					seed := graph.ItemSeed(88, int(q)*4+i)
					want, err := plain.Execute(context.Background(), plain.Compile(variant, q, 0), graph.NewRand(seed))
					if err != nil {
						t.Fatalf("%v q=%d plain: %v", variant, q, err)
					}
					got, err := adaptive.Execute(context.Background(), adaptive.Compile(variant, q, 0), graph.NewRand(seed))
					if err != nil {
						t.Fatalf("%v q=%d adaptive: %v", variant, q, err)
					}
					if comBytes(got) != comBytes(want) {
						t.Errorf("%v q=%d: exhausted adaptive differs from non-adaptive:\n got %s\nwant %s",
							variant, q, comBytes(got), comBytes(want))
					}
				}
			}
		})
	}
}

// exactMargins replays the exact full-budget CODU evaluation for q and
// returns its per-level margins alongside the pool size, so a test can ask
// how wide the true (full-budget empirical) gap at a level really was.
func exactMargins(t *testing.T, g *graph.Graph, tree *hier.Tree, p Params, q graph.NodeID, seed uint64) ([]core.LevelMargin, int) {
	t.Helper()
	ch := core.ChainFromTree(tree, q)
	s := NewGraphSampler(g, p.Model, graph.NewRand(seed))
	total := p.Theta * g.N()
	rrs, err := influence.BatchCtx(context.Background(), s, total)
	if err != nil {
		t.Fatal(err)
	}
	se := core.NewStagedEval(ch, p.K, nil)
	if err := se.Fold(context.Background(), rrs); err != nil {
		t.Fatal(err)
	}
	_, margins := se.Sweep(context.Background())
	return margins, total
}

// TestAdaptiveEarlyStopWithinEps checks the (ε, δ)-contract end to end at
// sane defaults on the planted-partition graph: queries may stop early, and
// whenever the early answer's level differs from the exact one, the exact
// margin at the flipped level must sit inside the indifference region — an
// early stop is only ever "wrong" about statistically near-tied levels.
// Theta is set high enough that the stage-1 pool can actually shrink the
// confidence radius below ε; certification is impossible at toy budgets
// (the EB radius's additive term alone exceeds ε), which is itself the
// bound working as intended.
func TestAdaptiveEarlyStopWithinEps(t *testing.T) {
	g, _ := attrGraph(t, 33)
	p := Params{K: 3, Theta: 64, Seed: 33}
	plain, err := Build(context.Background(), g, p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ad := Adaptive{Enabled: true}.withDefaults()
	adaptive := New(g, plain.Tree(), plain.Index(), p, Config{Adaptive: ad})
	stops := 0
	for i, q := range queryNodes(g, 6) {
		seed := graph.ItemSeed(99, i)
		want, err := plain.Execute(context.Background(), plain.Compile(VariantCODU, q, 0), graph.NewRand(seed))
		if err != nil {
			t.Fatal(err)
		}
		tr := obs.NewTrace()
		ctx := obs.WithRecorder(context.Background(), obs.NewRecorder(nil, tr))
		got, err := adaptive.Execute(ctx, adaptive.Compile(VariantCODU, q, 0), graph.NewRand(seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range tr.Steps() {
			if st.Kind == "sample" && st.Outcome == "early_stop" {
				stops++
			}
		}
		if comBytes(got) == comBytes(want) {
			continue
		}
		// The answers differ, so the in-top-k decision flipped at the higher
		// of the two answer levels. The contract says that can only happen
		// when that level is a near-tie: its exact margin must be within the
		// indifference region (ε plus full-budget estimation slack).
		flipped := max(got.Level, want.Level)
		if flipped < 0 {
			t.Fatalf("q=%d: answers differ with no flipped level: got %s want %s", q, comBytes(got), comBytes(want))
		}
		margins, total := exactMargins(t, g, plain.Tree(), p, q, seed)
		m := margins[flipped]
		gap := math.Abs(float64(m.QCount-m.Boundary)) / float64(total)
		if gap > 2*ad.Eps {
			t.Errorf("q=%d: early stop flipped level %d whose exact margin %.4f is well outside ε=%.2f:\n got %s\nwant %s",
				q, flipped, gap, ad.Eps, comBytes(got), comBytes(want))
		}
	}
	if stops == 0 {
		t.Error("no query stopped early at defaults on a well-separated graph")
	}
}

// TestAdaptiveStepTrace locks the staged step-trace contract: the sample
// step carries the staged outcome vocabulary with a realized stage count,
// and the evaluate step reports "staged" (the work already happened inside
// the fused sample step).
func TestAdaptiveStepTrace(t *testing.T) {
	g, _ := attrGraph(t, 21)
	p := Params{K: 3, Theta: 3, Seed: 21}
	plain, err := Build(context.Background(), g, p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	eng := New(g, plain.Tree(), plain.Index(), p, Config{Adaptive: Adaptive{Enabled: true}})
	for _, variant := range []Variant{VariantCODU, VariantCODR, VariantCODL, VariantCODLNoIndex} {
		for _, q := range queryNodes(g, 4) {
			steps := traceSteps(t, eng, variant, q, 0, 7)
			sampled, evaluated := false, false
			for _, st := range steps {
				switch st.Kind {
				case "sample":
					sampled = true
					if st.Outcome != "early_stop" && st.Outcome != "exhausted" {
						t.Errorf("%v q=%d: sample outcome %q, want early_stop or exhausted", variant, q, st.Outcome)
					}
					if st.Stages < 1 {
						t.Errorf("%v q=%d: sample step records %d stages", variant, q, st.Stages)
					}
					if st.Outcome == "early_stop" && st.Gap <= 0 {
						t.Errorf("%v q=%d: early_stop with non-positive certified gap %v", variant, q, st.Gap)
					}
				case "evaluate":
					evaluated = true
					if st.Outcome != "staged" {
						t.Errorf("%v q=%d: evaluate outcome %q, want staged", variant, q, st.Outcome)
					}
					if st.Stages != 0 {
						t.Errorf("%v q=%d: evaluate step leaked stage count %d", variant, q, st.Stages)
					}
				}
			}
			if sampled != evaluated {
				t.Errorf("%v q=%d: sample step (%v) without matching staged evaluate (%v)", variant, q, sampled, evaluated)
			}
		}
	}
}

// TestAdaptiveMetrics checks the CountAdaptive plumbing end to end: early
// stops and exhaustions split the counter/histogram correctly and the
// realized-budget counters stay ≤ the budget counters.
func TestAdaptiveMetrics(t *testing.T) {
	g, _ := attrGraph(t, 21)
	p := Params{K: 3, Theta: 3, Seed: 21}
	plain, err := Build(context.Background(), g, p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	eng := New(g, plain.Tree(), plain.Index(), p, Config{Adaptive: adaptiveExhaustive})
	m := obs.NewQueryMetrics(obs.NewRegistry())
	ctx := obs.WithRecorder(context.Background(), obs.NewRecorder(m, nil))
	queries := 0
	for i, q := range queryNodes(g, 4) {
		if _, err := eng.Execute(ctx, eng.Compile(VariantCODU, q, 0), graph.NewRand(graph.ItemSeed(5, i))); err != nil {
			t.Fatal(err)
		}
		queries++
	}
	if got := m.AdaptiveEarlyStops.Value(); got != 0 {
		t.Errorf("exhaustive config recorded %d early stops", got)
	}
	if got := int(m.AdaptiveStages.Count()); got != queries {
		t.Errorf("stage histogram has %d observations, want %d", got, queries)
	}
	used, budget := m.AdaptiveSamplesUsed.Value(), m.AdaptiveSamplesBudget.Value()
	if used != budget {
		t.Errorf("exhaustive runs must realize the full budget: used %d of %d", used, budget)
	}
	if budget == 0 {
		t.Error("no budget recorded")
	}
}
