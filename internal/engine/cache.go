package engine

import (
	"context"
	"math/rand/v2"
	"sync"

	"github.com/codsearch/cod/internal/graph"
	"github.com/codsearch/cod/internal/influence"
	"github.com/codsearch/cod/internal/obs"
)

// sampleCache is the bounded per-predicate RR sample-pool cache: queries
// that share a query predicate sample once and evaluate many times — the
// RIS-sketch reuse trick applied to the COD serving path.
//
// Keying and determinism: entries are keyed by (predicate key, epoch),
// where the predicate key is (attr, 0) for single-attribute queries — the
// legacy keying, so existing pools stay hot across the DSL migration — or
// (-1, normal-form hash) for compound predicates, and the epoch is bumped
// on every Rebind (dynamic update), so a pool sampled over a stale graph
// can never answer for the updated one. Pool content is a pure function of
// the key: sample i draws from a PCG seeded with
// ItemSeed(poolSeed(seed, key, epoch), i), never from a query's rng — so
// a cache hit is byte-identical to a miss, and answers are independent of
// query arrival order, worker count, and eviction history.
//
// Ownership: each entry owns a private arena its samples live in. Entry
// arenas are never Reset and never enter the engine's scratch pool, so a
// query still evaluating against an entry that was just evicted keeps a
// valid view — eviction only drops the cache's reference; the garbage
// collector reclaims the arena when the last reader finishes.
type sampleCache struct {
	mu      sync.Mutex
	max     int
	tick    uint64
	entries map[cacheKey]*poolEntry

	// Resident-occupancy accounting (under mu): pools counts entries whose
	// population completed while still published, rrgraphs the RR graphs
	// those pools hold. Populating and withdrawn entries are not counted, so
	// the gauges report what the cache is actually serving.
	pools    int64
	rrgraphs int64
}

// predKey is the predicate identity of a shared sample pool: attr with hash
// 0 for single-attribute queries (preserving the legacy pool seeds exactly),
// attr -1 with the predicate's canonical normal-form hash for compound ones
// (semantically equal predicates share it, however spelled).
type predKey struct {
	attr graph.AttrID
	hash uint64
}

type cacheKey struct {
	pred  predKey
	epoch uint64
}

type poolEntry struct {
	// mu is held while populating. Lock order: cache.mu may be acquired
	// under entry.mu (the withdrawal path) but never the reverse — get()
	// releases cache.mu before touching entry.mu.
	mu        sync.Mutex
	ready     bool
	withdrawn bool // populate failed; entry is out of the map, never served
	arena     *influence.Arena
	rrs       []*influence.RRGraph
	lastUse   uint64
	// counted is the RR-graph count this entry contributed to the cache's
	// occupancy gauges, 0 if never accounted (still populating, withdrawn,
	// or evicted mid-population). Guarded by cache.mu, not entry.mu.
	counted int64
}

func newSampleCache(max int) *sampleCache {
	return &sampleCache{max: max, entries: map[cacheKey]*poolEntry{}}
}

// poolSeed derives the sampling seed of one (predicate, epoch) pool. The +1
// keeps attribute 0 distinct from the base stream, and the constant keeps
// pool streams disjoint from the offline (seed^0x51ed) and per-query
// (ItemSeed(seed, i)) families. A zero hash (single-attribute pool)
// reproduces the pre-DSL seeds exactly; compound predicates fold their
// canonical hash in through a Weyl-constant multiply so distinct predicates
// get well-separated streams.
func poolSeed(seed uint64, pk predKey, epoch uint64) uint64 {
	base := seed ^ 0xcac4ed
	if pk.hash != 0 {
		base ^= pk.hash * 0x9e3779b97f4a7c15
	}
	return graph.ItemSeed(graph.ItemSeed(base, int(pk.attr)+1), int(epoch))
}

// get returns the pool for attr at the engine's current epoch, sampling it
// on first use, and reports whether the request was a hit (served from an
// already-populated entry). Concurrent callers for one key block on the
// entry while a single populator samples; they then share the pool (a
// hit). A canceled population withdraws its entry from the cache before any
// waiter can see it, so no partial pool is ever served or built upon:
// waiters that were blocked on a withdrawn entry loop back to the map and
// converge on the single live replacement entry.
func (c *sampleCache) get(ctx context.Context, e *Engine, pk predKey, count int) ([]*influence.RRGraph, bool, error) {
	rec := obs.FromContext(ctx)
	key := cacheKey{pred: pk, epoch: e.epoch.Load()}

	for {
		c.mu.Lock()
		c.tick++
		entry, ok := c.entries[key]
		if !ok {
			entry = &poolEntry{arena: influence.NewArena()}
			c.entries[key] = entry
			for i := c.evictLocked(key); i > 0; i-- {
				rec.CountCacheEviction()
			}
		}
		entry.lastUse = c.tick
		c.mu.Unlock()

		entry.mu.Lock()
		if entry.ready {
			entry.mu.Unlock()
			rec.CountCacheHit()
			return entry.rrs, true, nil
		}
		if entry.withdrawn {
			// The populator we were waiting on failed and pulled this entry
			// from the map. Repopulating it would build an orphan no later
			// query can share (and, worse, stack a second pool on top of its
			// partial samples) — retry from the map instead.
			entry.mu.Unlock()
			continue
		}
		rec.CountCacheMiss()
		err := c.populate(ctx, e, key, entry, count)
		if err == nil {
			// Account occupancy while entry.mu pins ready=true: the entry
			// counts only if it is still the published one (an eviction racing
			// the population must not leave a phantom resident pool). Taking
			// c.mu under entry.mu follows the documented lock order.
			c.mu.Lock()
			if c.entries[key] == entry {
				entry.counted = int64(len(entry.rrs))
				c.pools++
				c.rrgraphs += entry.counted
			}
			c.mu.Unlock()
			entry.mu.Unlock()
			return entry.rrs, false, nil
		}
		// Withdraw before releasing entry.mu: waiters must never observe a
		// failed entry that is both unpopulated and still published.
		c.mu.Lock()
		if c.entries[key] == entry {
			c.uncountLocked(entry)
			delete(c.entries, key)
		}
		c.mu.Unlock()
		entry.withdrawn = true
		entry.mu.Unlock()
		return nil, false, err
	}
}

// populate samples the pool with per-item seeding into the entry's arena.
// entry.mu is held by the caller.
func (c *sampleCache) populate(ctx context.Context, e *Engine, key cacheKey, entry *poolEntry, count int) error {
	// A canceled attempt leaves partial samples behind; entries are
	// withdrawn on failure so no second attempt should ever reach a dirty
	// arena, but a stale sample surviving here would silently corrupt the
	// pool — reset rather than assume. Safe: nothing reads the arena
	// before entry.ready is set.
	entry.arena.Reset()
	span := obs.FromContext(ctx).StartSpan(obs.StageRRSample)
	src := graph.NewPCG(0)
	smp := newArenaSampler(e.g, e.p.Model, rand.New(src))
	base := poolSeed(e.p.Seed, key.pred, key.epoch)
	for i := 0; i < count; i++ {
		if i%influence.PollEvery == 0 {
			if err := ctx.Err(); err != nil {
				span.EndItems(i)
				return &influence.CanceledError{
					Op: "engine: cached rr sampling", Done: i, Total: count, Cause: err}
			}
		}
		graph.SeedPCG(src, graph.ItemSeed(base, i))
		smp.RRGraphInto(entry.arena)
	}
	span.EndItems(count)
	entry.rrs = entry.arena.Finalize()
	entry.ready = true
	return nil
}

// evictLocked drops least-recently-used entries until the cache is within
// bounds, never evicting keep (the entry just inserted), and returns how
// many entries were dropped. Callers hold c.mu.
func (c *sampleCache) evictLocked(keep cacheKey) int {
	evicted := 0
	for len(c.entries) > c.max {
		var victim cacheKey
		var oldest uint64
		found := false
		for k, en := range c.entries {
			if k == keep {
				continue
			}
			// lastUse ticks are unique under c.mu, but tie-break on the key
			// anyway so the victim never depends on map iteration order.
			if !found || en.lastUse < oldest ||
				(en.lastUse == oldest && cacheKeyLess(k, victim)) {
				//codvet:ignore maporder deterministic tie-break via cacheKeyLess in the guard
				victim, oldest, found = k, en.lastUse, true
			}
		}
		if !found {
			break
		}
		c.uncountLocked(c.entries[victim])
		delete(c.entries, victim)
		evicted++
	}
	return evicted
}

// cacheKeyLess is the deterministic eviction tie-break order over keys.
func cacheKeyLess(a, b cacheKey) bool {
	if a.epoch != b.epoch {
		return a.epoch < b.epoch
	}
	if a.pred.attr != b.pred.attr {
		return a.pred.attr < b.pred.attr
	}
	return a.pred.hash < b.pred.hash
}

// uncountLocked reverses an entry's occupancy contribution (a no-op for
// entries never accounted). Callers hold c.mu.
func (c *sampleCache) uncountLocked(en *poolEntry) {
	if en == nil || en.counted == 0 {
		return
	}
	c.pools--
	c.rrgraphs -= en.counted
	en.counted = 0
}

// stats returns the resident pool and RR-graph counts.
func (c *sampleCache) stats() (pools, rrgraphs int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pools, c.rrgraphs
}

// clearOld drops every entry whose epoch predates current; Rebind calls it
// so stale pools free their memory eagerly instead of aging out by LRU.
func (c *sampleCache) clearOld(current uint64) {
	c.mu.Lock()
	for k, en := range c.entries {
		if k.epoch < current {
			c.uncountLocked(en)
			delete(c.entries, k)
		}
	}
	c.mu.Unlock()
}
