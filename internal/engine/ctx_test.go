package engine

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/codsearch/cod/internal/graph"
	"github.com/codsearch/cod/internal/influence"
)

func comBytes(c Community) string {
	return fmt.Sprintf("found=%t level=%d fromIndex=%t nodes=%v", c.Found, c.Level, c.FromIndex, c.Nodes)
}

func TestQueryCtxMatchesQueryWhenUncancelled(t *testing.T) {
	g, q := attrGraph(t, 3)
	p := Params{K: 3, Theta: 4, Seed: 5}

	codl, err := NewCODL(g, p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := codl.Query(q, 0, graph.NewRand(7))
	if err != nil {
		t.Fatal(err)
	}
	got, err := codl.QueryCtx(context.Background(), q, 0, graph.NewRand(7))
	if err != nil {
		t.Fatal(err)
	}
	if comBytes(got) != comBytes(want) {
		t.Errorf("CODL QueryCtx differs:\n got %s\nwant %s", comBytes(got), comBytes(want))
	}

	codu := NewCODUWithTree(g, codl.Tree(), p)
	wantU := codu.Query(q, graph.NewRand(7))
	gotU, err := codu.QueryCtx(context.Background(), q, graph.NewRand(7))
	if err != nil {
		t.Fatal(err)
	}
	if comBytes(gotU) != comBytes(wantU) {
		t.Errorf("CODU QueryCtx differs:\n got %s\nwant %s", comBytes(gotU), comBytes(wantU))
	}

	codr := NewCODR(g, p)
	wantR, err := codr.Query(q, 0, graph.NewRand(7))
	if err != nil {
		t.Fatal(err)
	}
	gotR, err := codr.QueryCtx(context.Background(), q, 0, graph.NewRand(7))
	if err != nil {
		t.Fatal(err)
	}
	if comBytes(gotR) != comBytes(wantR) {
		t.Errorf("CODR QueryCtx differs:\n got %s\nwant %s", comBytes(gotR), comBytes(wantR))
	}
}

func TestQueryCtxCancellationIsFastAndTyped(t *testing.T) {
	g, q := attrGraph(t, 3)
	p := Params{K: 3, Theta: 10, Seed: 5}
	codl, err := NewCODL(g, p)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err = codl.QueryCtx(ctx, q, 0, graph.NewRand(7))
	if err == nil {
		t.Fatal("canceled query returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not unwrap to context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("canceled query took %v", elapsed)
	}

	codr := NewCODR(g, p)
	if _, err := codr.QueryCtx(ctx, q, 0, graph.NewRand(7)); !errors.Is(err, context.Canceled) {
		t.Errorf("CODR canceled error = %v", err)
	}
	codu := NewCODUWithTree(g, codl.Tree(), p)
	if _, err := codu.QueryCtx(ctx, q, graph.NewRand(7)); !errors.Is(err, context.Canceled) {
		t.Errorf("CODU canceled error = %v", err)
	}
	var ce *influence.CanceledError
	if _, err := codu.QueryCtx(ctx, q, graph.NewRand(7)); !errors.As(err, &ce) {
		t.Errorf("CODU canceled error %T carries no progress", err)
	} else if ce.Total == 0 {
		t.Error("CanceledError.Total missing")
	}
}

func TestNewCODLCtxCancellation(t *testing.T) {
	g, _ := attrGraph(t, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewCODLCtx(ctx, g, Params{Theta: 4}); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled offline build error = %v", err)
	}
}
