package engine

import (
	"context"
	"math/rand/v2"
	"sync"
	"sync/atomic"

	"github.com/codsearch/cod/internal/core"
	"github.com/codsearch/cod/internal/graph"
	"github.com/codsearch/cod/internal/hac"
	"github.com/codsearch/cod/internal/hier"
	"github.com/codsearch/cod/internal/influence"
	"github.com/codsearch/cod/internal/query"
)

// Config tunes a query engine beyond the paper parameters.
type Config struct {
	// SampleCache bounds the per-attribute RR sample-pool cache: the number
	// of (attribute, epoch) pools kept resident. 0 disables the cache, in
	// which case global sampling draws from the query's own rng exactly as
	// the pre-engine pipelines did. When enabled, pools are generated from
	// per-item seeds derived from (Params.Seed, attribute, epoch), so a
	// cache hit is byte-identical to a miss and results are independent of
	// query arrival order — but differ from the cache-disabled stream.
	SampleCache int
	// CacheAttrTrees keeps CODR's per-attribute reclustered hierarchies
	// resident. Reclustering is deterministic, so caching never changes
	// answers; it only trades memory for the per-query recluster.
	CacheAttrTrees bool
	// Adaptive enables bounded-error staged evaluation (DESIGN.md §16):
	// sample steps grow the RR pool in geometric stages and stop once the
	// rank-k decision is certified at confidence 1−Delta. It lives in Config
	// rather than Params because it changes how much of the budget a query
	// realizes, not the offline state or the full-budget answer — persisted
	// index manifests stay comparable across adaptive settings.
	Adaptive Adaptive
}

// Engine executes compiled query plans over one graph's offline state. All
// query-path methods (Compile, Execute, AttrTree) are safe for concurrent
// use: every execution draws its scratch from an internal sync.Pool and the
// attribute-tree and sample caches are internally locked. Rebind is not —
// it must be quiesced against in-flight queries (the dynamic updater, its
// only caller, is single-goroutine by contract).
type Engine struct {
	g     *graph.Graph
	tree  *hier.Tree // non-attributed hierarchy (nil for a CODR-only engine)
	index *core.Himor
	p     Params
	cfg   Config

	scratch sync.Pool // *queryScratch
	// scratchLive counts scratches currently checked out of the pool;
	// scratchAlloc counts scratches ever allocated (recycles excluded).
	// Both feed the cod_engine_scratch_* gauges.
	scratchLive  atomic.Int64
	scratchAlloc atomic.Int64

	attrMu    sync.Mutex
	attrTrees map[treeKey]*hier.Tree

	cache *sampleCache // nil when Config.SampleCache == 0

	// epoch versions the graph state for sample-cache keying; Rebind bumps
	// it so pools sampled before a dynamic update can never serve after it.
	epoch atomic.Uint64
}

// New wraps existing offline state (tree and index may be nil for variants
// that do not need them) without doing offline work.
func New(g *graph.Graph, tree *hier.Tree, index *core.Himor, p Params, cfg Config) *Engine {
	e := &Engine{g: g, tree: tree, index: index, p: p.withDefaults(), cfg: cfg,
		attrTrees: map[treeKey]*hier.Tree{}}
	if cfg.SampleCache > 0 {
		e.cache = newSampleCache(cfg.SampleCache)
	}
	return e
}

// Build runs the full offline phase (clustering plus HIMOR) and returns an
// engine over the result. The build is byte-identical to the historical
// CODL offline phase for equal params: the index sampler is seeded with
// Seed^0x51ed and per-item seeding makes it Workers-invariant.
func Build(ctx context.Context, g *graph.Graph, p Params, cfg Config) (*Engine, error) {
	p = p.withDefaults()
	t, err := clusterTree(ctx, g, p)
	if err != nil {
		return nil, err
	}
	var idx *core.Himor
	if p.Model == ICWeightedCascade {
		// The pooled sampler seeds each RR graph from its index, so the index
		// (and every query answer) is identical for any Workers value.
		idx, err = core.BuildHimorParallelCtx(ctx, g, t, influence.NewWeightedCascade(g), p.Theta, p.Seed^0x51ed, p.Workers)
	} else {
		idx, err = core.BuildHimorWithSamplerCtx(ctx, g, t, NewGraphSampler(g, p.Model, graph.NewRand(p.Seed^0x51ed)), p.Theta)
	}
	if err != nil {
		return nil, err
	}
	return New(g, t, idx, p, cfg), nil
}

// Graph returns the engine's graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Tree returns the non-attributed hierarchy (nil for a CODR-only engine).
func (e *Engine) Tree() *hier.Tree { return e.tree }

// Index returns the HIMOR index (nil when the engine was built without one).
func (e *Engine) Index() *core.Himor { return e.index }

// Params returns the engine's default-filled parameters.
func (e *Engine) Params() Params { return e.p }

// Epoch returns the current graph-state epoch (diagnostics and tests).
func (e *Engine) Epoch() uint64 { return e.epoch.Load() }

// Rebind swaps the engine onto new offline state after a dynamic update:
// the epoch is bumped (invalidating every cached sample pool by key), the
// attribute-tree cache is dropped, and the scratch pool is discarded so
// stale per-graph buffers (sized for the old node count) are rebuilt on
// demand. Rebind must not run concurrently with queries.
func (e *Engine) Rebind(g *graph.Graph, tree *hier.Tree, index *core.Himor) {
	e.g = g
	e.tree = tree
	e.index = index
	e.epoch.Add(1)
	e.attrMu.Lock()
	clear(e.attrTrees)
	e.attrMu.Unlock()
	if e.cache != nil {
		e.cache.clearOld(e.epoch.Load())
	}
	e.scratch = sync.Pool{}
}

// treeKey identifies a cached reclustered hierarchy: (attr, 0) for a
// single-attribute weighting, (-1, predicate hash) for a compound predicate.
// Semantically equal predicates share a canonical hash, so they share a tree.
type treeKey struct {
	attr graph.AttrID
	hash uint64
}

// AttrTree returns the attribute-weighted hierarchy for attr, reclustering
// g_ℓ unless cached. The cached flag selects whether the per-attribute
// cache is consulted and populated; a bypassing call always reclusters.
// Canceled builds are never cached.
func (e *Engine) AttrTree(ctx context.Context, attr graph.AttrID, cached bool) (*hier.Tree, error) {
	return e.predTree(ctx, attr, nil, cached, nil)
}

// predTree is AttrTree generalized to compound predicates: with pred nil the
// weighting is the legacy single-attribute one; otherwise edges whose
// endpoints both satisfy pred are boosted. sc (optional) lends its mask
// buffer to the predicate evaluation.
func (e *Engine) predTree(ctx context.Context, attr graph.AttrID, pred *query.DNF, cached bool, sc *queryScratch) (*hier.Tree, error) {
	key := treeKey{attr: attr}
	if pred != nil {
		key = treeKey{attr: -1, hash: pred.Hash64()}
	}
	if cached {
		e.attrMu.Lock()
		t, ok := e.attrTrees[key]
		e.attrMu.Unlock()
		if ok {
			return t, nil
		}
	}
	var gl *graph.Graph
	if pred != nil {
		gl = core.PredWeighted(e.g, e.predMask(sc, pred), e.p.Beta)
	} else {
		gl = core.AttributeWeighted(e.g, attr, e.p.Beta)
	}
	t, err := hac.ClusterCtx(ctx, gl, e.p.Linkage)
	if err != nil {
		return nil, err
	}
	if cached {
		e.attrMu.Lock()
		// A concurrent builder may have won the race; keep the first tree so
		// repeated Hierarchy calls observe one stable pointer.
		if prev, ok := e.attrTrees[key]; ok {
			t = prev
		} else {
			e.attrTrees[key] = t
		}
		e.attrMu.Unlock()
	}
	return t, nil
}

// queryScratch bundles every reusable per-query buffer: one arena for RR
// sample storage, one compressed-evaluation working set, the CODL member
// mask, and a sampler (whose per-graph visited marks are the expensive
// part). Scratches cycle through the engine's sync.Pool; the arena is Reset
// on acquisition, so a recycled scratch can never leak one query's samples
// into the next. Pool-discipline: a scratch must not be touched after
// release — the poolret codvet check enforces this shape.
type queryScratch struct {
	n       int // g.N() the buffers were sized for
	sampler arenaSampler
	arena   *influence.Arena
	eval    *core.EvalScratch
	mask    []bool
}

// acquire returns a scratch sized for the current graph with its sampler
// bound to rng.
func (e *Engine) acquire(rng *rand.Rand) *queryScratch {
	e.scratchLive.Add(1)
	sc, _ := e.scratch.Get().(*queryScratch)
	if sc == nil || sc.n != e.g.N() {
		e.scratchAlloc.Add(1)
		sc = &queryScratch{
			n:       e.g.N(),
			sampler: newArenaSampler(e.g, e.p.Model, rng),
			arena:   influence.NewArena(),
			eval:    core.NewEvalScratch(),
			mask:    make([]bool, e.g.N()),
		}
	}
	sc.sampler.SetRand(rng)
	sc.arena.Reset()
	return sc
}

// release returns the scratch to the pool. The caller must not retain any
// slice aliasing the scratch (communities copy their members out of the
// chain, never out of the arena).
func (e *Engine) release(sc *queryScratch) {
	sc.sampler.SetRand(nil)
	e.scratch.Put(sc)
	e.scratchLive.Add(-1)
}

// PoolStats reports the scratch pool's occupancy: scratches currently
// checked out by in-flight queries, and scratches ever allocated (an
// allocation count far above the peak concurrency indicates the pool is
// being defeated — e.g. by graph-size churn resizing every scratch).
func (e *Engine) PoolStats() (live, allocated int64) {
	return e.scratchLive.Load(), e.scratchAlloc.Load()
}

// SampleCacheStats reports the RR sample cache's resident occupancy:
// populated pools and the RR graphs they hold. Both are 0 when the cache
// is disabled; alongside the hit/miss/eviction counters this separates a
// cold cache (low occupancy, misses) from a thrashing one (full occupancy,
// misses and evictions).
func (e *Engine) SampleCacheStats() (pools, rrgraphs int64) {
	if e.cache == nil {
		return 0, 0
	}
	return e.cache.stats()
}

// memberMask returns the cleared membership mask and marks members in it.
func (sc *queryScratch) memberMask(members []graph.NodeID) []bool {
	clear(sc.mask)
	for _, v := range members {
		sc.mask[v] = true
	}
	return sc.mask
}
