package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"

	"math/rand/v2"

	"github.com/codsearch/cod/internal/core"
	"github.com/codsearch/cod/internal/graph"
	"github.com/codsearch/cod/internal/hac"
	"github.com/codsearch/cod/internal/hier"
	"github.com/codsearch/cod/internal/influence"
	"github.com/codsearch/cod/internal/obs"
)

// The reference implementations below replicate the historical (pre-engine)
// pipelines verbatim: fresh allocations everywhere, influence.BatchCtx for
// shared pools, a fresh sampler per query. Execute with the sample cache
// disabled must match them byte-for-byte — this is the §9 determinism
// contract for the pooled refactor.

func refCODU(g *graph.Graph, t *hier.Tree, p Params, q graph.NodeID, rng *rand.Rand) (Community, error) {
	ctx := context.Background()
	ch := core.ChainFromTree(t, q)
	s := NewGraphSampler(g, p.Model, rng)
	rrs, err := influence.BatchCtx(ctx, s, p.Theta*g.N())
	if err != nil {
		return Community{Level: -1}, err
	}
	res, err := core.CompressedEvaluateCtx(ctx, ch, rrs, p.K)
	if err != nil {
		return Community{Level: -1}, err
	}
	return communityFromChain(ch, res), nil
}

func refCODR(g *graph.Graph, p Params, q graph.NodeID, attr graph.AttrID, rng *rand.Rand) (Community, error) {
	ctx := context.Background()
	gl := core.AttributeWeighted(g, attr, p.Beta)
	t, err := hac.ClusterCtx(ctx, gl, p.Linkage)
	if err != nil {
		return Community{}, err
	}
	ch := core.ChainFromTree(t, q)
	s := NewGraphSampler(g, p.Model, rng)
	rrs, err := influence.BatchCtx(ctx, s, p.Theta*g.N())
	if err != nil {
		return Community{Level: -1}, err
	}
	res, err := core.CompressedEvaluateCtx(ctx, ch, rrs, p.K)
	if err != nil {
		return Community{Level: -1}, err
	}
	return communityFromChain(ch, res), nil
}

func refCODL(g *graph.Graph, t *hier.Tree, idx *core.Himor, p Params, q graph.NodeID, attr graph.AttrID, rng *rand.Rand) (Community, error) {
	ctx := context.Background()
	rec, err := core.LoreCtx(ctx, g, t, q, attr, p.Beta, p.Linkage)
	if err != nil {
		return Community{}, err
	}
	anc := t.Ancestors(rec.CL)
	for i := len(anc) - 1; i >= -1; i-- {
		v := rec.CL
		if i >= 0 {
			v = anc[i]
		}
		if idx.Rank(q, v) < p.K {
			return Community{Nodes: t.Members(v), Found: true, Level: -1, FromIndex: true}, nil
		}
	}
	inner := core.InnerChain(g, t, rec, q)
	members := rec.Sub.ToParent
	in := make([]bool, g.N())
	for _, v := range members {
		in[v] = true
	}
	member := func(u graph.NodeID) bool { return in[u] }
	s := NewGraphSampler(g, p.Model, rng)
	total := p.Theta * len(members)
	rrs := make([]*influence.RRGraph, 0, total)
	for i := 0; i < total; i++ {
		rrs = append(rrs, s.RRGraphWithin(members[rng.IntN(len(members))], member))
	}
	res, err := core.CompressedEvaluateCtx(ctx, inner, rrs, p.K)
	if err != nil {
		return Community{Level: -1}, err
	}
	return communityFromChain(inner, res), nil
}

func refCODLNoIndex(g *graph.Graph, t *hier.Tree, p Params, q graph.NodeID, attr graph.AttrID, rng *rand.Rand) (Community, error) {
	ctx := context.Background()
	rec, err := core.LoreCtx(ctx, g, t, q, attr, p.Beta, p.Linkage)
	if err != nil {
		return Community{}, err
	}
	merged := core.MergedChain(g, t, rec, q)
	s := NewGraphSampler(g, p.Model, rng)
	rrs, err := influence.BatchCtx(ctx, s, p.Theta*g.N())
	if err != nil {
		return Community{Level: -1}, err
	}
	res, err := core.CompressedEvaluateCtx(ctx, merged, rrs, p.K)
	if err != nil {
		return Community{Level: -1}, err
	}
	return communityFromChain(merged, res), nil
}

// queryNodes picks a spread of query nodes, always including ones carrying
// attribute 0.
func queryNodes(g *graph.Graph, n int) []graph.NodeID {
	var qs []graph.NodeID
	for v := graph.NodeID(0); int(v) < g.N() && len(qs) < n; v += 7 {
		qs = append(qs, v)
	}
	return qs
}

func TestExecuteMatchesReferencePipelines(t *testing.T) {
	for _, model := range []Model{ICWeightedCascade, LTUniform} {
		t.Run(fmt.Sprintf("model=%d", model), func(t *testing.T) {
			g, _ := attrGraph(t, 21)
			p := Params{K: 3, Theta: 3, Seed: 21, Model: model}
			eng, err := Build(context.Background(), g, p, Config{})
			if err != nil {
				t.Fatal(err)
			}
			p = eng.Params()
			for _, q := range queryNodes(g, 6) {
				for i, variant := range []Variant{VariantCODU, VariantCODR, VariantCODL, VariantCODLNoIndex} {
					seed := graph.ItemSeed(77, int(q)*4+i)
					var want Community
					var err error
					switch variant {
					case VariantCODU:
						want, err = refCODU(g, eng.Tree(), p, q, graph.NewRand(seed))
					case VariantCODR:
						want, err = refCODR(g, p, q, 0, graph.NewRand(seed))
					case VariantCODL:
						want, err = refCODL(g, eng.Tree(), eng.Index(), p, q, 0, graph.NewRand(seed))
					case VariantCODLNoIndex:
						want, err = refCODLNoIndex(g, eng.Tree(), p, q, 0, graph.NewRand(seed))
					}
					if err != nil {
						t.Fatalf("%v reference q=%d: %v", variant, q, err)
					}
					// Execute twice: the second run reuses the pooled scratch, so
					// any stale-state leak between runs shows up as a mismatch.
					for run := 0; run < 2; run++ {
						got, err := eng.Execute(context.Background(), eng.Compile(variant, q, 0), graph.NewRand(seed))
						if err != nil {
							t.Fatalf("%v engine q=%d run=%d: %v", variant, q, run, err)
						}
						if comBytes(got) != comBytes(want) {
							t.Errorf("%v q=%d run=%d differs from reference:\n got %s\nwant %s",
								variant, q, run, comBytes(got), comBytes(want))
						}
					}
				}
			}
		})
	}
}

// TestEngineConcurrentStress hammers one engine from many goroutines with a
// mixed-variant workload and checks every answer against the serial run:
// arena recycling must never alias one in-flight query's samples into
// another. Run under -race (the CI race-and-vet job names this test).
func TestEngineConcurrentStress(t *testing.T) {
	g, _ := attrGraph(t, 31)
	p := Params{K: 3, Theta: 3, Seed: 31}
	eng, err := Build(context.Background(), g, p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	variants := []Variant{VariantCODU, VariantCODR, VariantCODL, VariantCODLNoIndex}
	type job struct {
		variant Variant
		q       graph.NodeID
		seed    uint64
	}
	var jobs []job
	for i, q := range queryNodes(g, 8) {
		for j, v := range variants {
			jobs = append(jobs, job{v, q, graph.ItemSeed(555, i*len(variants)+j)})
		}
	}
	want := make([]string, len(jobs))
	for i, jb := range jobs {
		com, err := eng.Execute(context.Background(), eng.Compile(jb.variant, jb.q, 0), graph.NewRand(jb.seed))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = comBytes(com)
	}
	const rounds = 3
	got := make([]string, rounds*len(jobs))
	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		for i, jb := range jobs {
			wg.Add(1)
			go func(slot int, jb job) {
				defer wg.Done()
				com, err := eng.Execute(context.Background(), eng.Compile(jb.variant, jb.q, 0), graph.NewRand(jb.seed))
				if err != nil {
					got[slot] = "err: " + err.Error()
					return
				}
				got[slot] = comBytes(com)
			}(r*len(jobs)+i, jb)
		}
	}
	wg.Wait()
	for r := 0; r < rounds; r++ {
		for i := range jobs {
			if got[r*len(jobs)+i] != want[i] {
				t.Errorf("round %d job %d (%v q=%d) differs under concurrency:\n got %s\nwant %s",
					r, i, jobs[i].variant, jobs[i].q, got[r*len(jobs)+i], want[i])
			}
		}
	}
}

// TestSampleCacheHitEqualsMiss locks the cache-on determinism contract: the
// pool is a pure function of (seed, attr, epoch), so a warm query answers
// byte-identically to its cold twin and the hit/miss counters advance.
func TestSampleCacheHitEqualsMiss(t *testing.T) {
	g, q := attrGraph(t, 41)
	p := Params{K: 3, Theta: 3, Seed: 41}
	build := func() *Engine {
		eng, err := Build(context.Background(), g, p, Config{SampleCache: 4})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	eng := build()
	reg := obs.NewRegistry()
	m := obs.NewQueryMetrics(reg)
	ctx := obs.WithRecorder(context.Background(), obs.NewRecorder(m, nil))

	cold, err := eng.Execute(ctx, eng.Compile(VariantCODR, q, 0), graph.NewRand(9))
	if err != nil {
		t.Fatal(err)
	}
	if m.CacheMisses.Value() != 1 || m.CacheHits.Value() != 0 {
		t.Fatalf("cold query: hits=%d misses=%d", m.CacheHits.Value(), m.CacheMisses.Value())
	}
	warm, err := eng.Execute(ctx, eng.Compile(VariantCODR, q, 0), graph.NewRand(9))
	if err != nil {
		t.Fatal(err)
	}
	if m.CacheHits.Value() != 1 {
		t.Fatalf("warm query did not hit: hits=%d misses=%d", m.CacheHits.Value(), m.CacheMisses.Value())
	}
	if comBytes(cold) != comBytes(warm) {
		t.Errorf("cache hit differs from miss:\n cold %s\n warm %s", comBytes(cold), comBytes(warm))
	}
	// A second engine answering the same query cold must agree: pool content
	// depends on (seed, attr, epoch), never on arrival order or history.
	again, err := build().Execute(ctx, eng.Compile(VariantCODR, q, 0), graph.NewRand(9))
	if err != nil {
		t.Fatal(err)
	}
	if comBytes(again) != comBytes(cold) {
		t.Errorf("fresh engine cold query differs: %s vs %s", comBytes(again), comBytes(cold))
	}
}

// TestRebindInvalidatesCaches locks the dynamic-update contract: Rebind bumps
// the epoch, so cached pools and attribute trees from the old graph can never
// answer over the new one, and post-rebind execution is deterministic.
func TestRebindInvalidatesCaches(t *testing.T) {
	g, q := attrGraph(t, 51)
	p := Params{K: 3, Theta: 3, Seed: 51}
	run := func() (string, string, uint64) {
		eng, err := Build(context.Background(), g, p, Config{SampleCache: 4, CacheAttrTrees: true})
		if err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		m := obs.NewQueryMetrics(reg)
		ctx := obs.WithRecorder(context.Background(), obs.NewRecorder(m, nil))
		before, err := eng.Execute(ctx, eng.Compile(VariantCODR, q, 0), graph.NewRand(3))
		if err != nil {
			t.Fatal(err)
		}
		// Rebuild offline state over a perturbed graph and rebind.
		b := graph.NewBuilder(g.N(), g.NumAttrs())
		g.ForEachEdge(func(u, v graph.NodeID, w float64) { _ = b.AddWeightedEdge(u, v, w) })
		for v := graph.NodeID(0); int(v) < g.N(); v++ {
			if as := g.Attrs(v); len(as) > 0 {
				_ = b.SetAttrs(v, as...)
			}
		}
		_ = b.AddEdge(q, graph.NodeID((int(q)+g.N()/2)%g.N()))
		ng := b.Build()
		nt, err := hac.Cluster(ng, p.Linkage)
		if err != nil {
			t.Fatal(err)
		}
		idx := core.BuildHimor(ng, nt, influence.NewWeightedCascade(ng), p.Theta, graph.NewRand(7))
		eng.Rebind(ng, nt, idx)
		if eng.Epoch() != 1 {
			t.Fatalf("epoch after rebind = %d, want 1", eng.Epoch())
		}
		after, err := eng.Execute(ctx, eng.Compile(VariantCODR, q, 0), graph.NewRand(3))
		if err != nil {
			t.Fatal(err)
		}
		if m.CacheMisses.Value() != 2 {
			t.Fatalf("post-rebind query should miss (stale pool invalidated): misses=%d", m.CacheMisses.Value())
		}
		return comBytes(before), comBytes(after), eng.Epoch()
	}
	b1, a1, _ := run()
	b2, a2, _ := run()
	if b1 != b2 || a1 != a2 {
		t.Errorf("rebind replay not deterministic:\n before %s / %s\n after %s / %s", b1, b2, a1, a2)
	}
}

// cancelAfterErrs reports Canceled starting with the (left+1)-th Err poll —
// a deterministic way to fire cancellation mid-populate: sampling loops poll
// Err once per influence.PollEvery samples, so left=1 cancels with exactly
// PollEvery partial samples already recorded.
type cancelAfterErrs struct {
	context.Context
	mu   sync.Mutex
	left int
}

func (c *cancelAfterErrs) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.left <= 0 {
		return context.Canceled
	}
	c.left--
	return nil
}

// poolBytes serializes a sample pool for byte-identity comparison.
func poolBytes(rrs []*influence.RRGraph) string {
	var b strings.Builder
	for _, rr := range rrs {
		fmt.Fprintf(&b, "%v|%v|%v;", rr.Nodes, rr.Off, rr.Adj)
	}
	return b.String()
}

// TestSampleCacheCanceledPopulateRetriesClean is a regression test: a
// populate canceled mid-sampling used to leave its partial RR samples in the
// entry's arena, and a retry on the same entry appended a full pool on top —
// serving an oversized pool with a duplicated prefix. A failed populate must
// withdraw its entry so the retry samples a fresh one, byte-identical to an
// engine that never saw the cancellation.
func TestSampleCacheCanceledPopulateRetriesClean(t *testing.T) {
	g, _ := attrGraph(t, 71)
	p := Params{K: 3, Theta: 3, Seed: 71}
	build := func() *Engine {
		eng, err := Build(context.Background(), g, p, Config{SampleCache: 2})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	eng := build()
	count := eng.p.Theta * g.N()
	if count <= influence.PollEvery {
		t.Fatalf("pool of %d samples cannot be canceled mid-populate", count)
	}
	reg := obs.NewRegistry()
	m := obs.NewQueryMetrics(reg)
	rctx := obs.WithRecorder(context.Background(), obs.NewRecorder(m, nil))

	// First attempt: cancellation fires with PollEvery samples already in
	// the entry's arena.
	_, _, err := eng.cache.get(&cancelAfterErrs{Context: rctx, left: 1}, eng, predKey{}, count)
	var ce *influence.CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("canceled populate returned %v, want CanceledError", err)
	}
	if ce.Done == 0 {
		t.Fatal("cancellation fired before any sample; test needs a mid-populate cancel")
	}

	// The retry must serve a clean full pool...
	got, _, err := eng.cache.get(rctx, eng, predKey{}, count)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != count {
		t.Fatalf("retried pool has %d graphs, want %d (partial samples retained)", len(got), count)
	}
	// ...byte-identical to an engine that never failed.
	fresh := build()
	want, _, err := fresh.cache.get(rctx, fresh, predKey{}, count)
	if err != nil {
		t.Fatal(err)
	}
	if poolBytes(got) != poolBytes(want) {
		t.Error("pool after canceled populate differs from never-canceled pool")
	}
	// The retried pool was cached under the live key: next get is a hit.
	if _, _, err := eng.cache.get(rctx, eng, predKey{}, count); err != nil {
		t.Fatal(err)
	}
	if m.CacheHits.Value() != 1 || m.CacheMisses.Value() != 3 {
		t.Errorf("hits=%d misses=%d, want 1/3 (failed, retry, fresh engine, then hit)",
			m.CacheHits.Value(), m.CacheMisses.Value())
	}
}

// gateCtx pins the canceled-populate interleaving: the first Err poll (at
// sample 0) passes and closes polled, the second (at sample PollEvery)
// blocks until release is closed and then reports Canceled. While blocked,
// the populator sits inside populate holding entry.mu — the window in which
// a waiter can fetch the entry from the map and block behind it.
type gateCtx struct {
	context.Context
	polled  chan struct{}
	release chan struct{}
	polls   int // Err is called by the single populating goroutine
}

func (c *gateCtx) Err() error {
	c.polls++
	if c.polls == 1 {
		close(c.polled)
		return nil
	}
	<-c.release
	return context.Canceled
}

// TestSampleCacheWaiterSurvivesCanceledPopulate deterministically drives the
// interleaving the withdrawal logic exists for: a waiter blocks on an entry
// whose populate then fails mid-sampling. The waiter must not repopulate the
// withdrawn entry (stacking a full pool on its partial samples and serving a
// corrupted, oversized pool) — it must converge on the live replacement and
// serve the reference pool. Run under -race (named in the CI job).
func TestSampleCacheWaiterSurvivesCanceledPopulate(t *testing.T) {
	g, _ := attrGraph(t, 91)
	p := Params{K: 3, Theta: 3, Seed: 91}
	build := func() *Engine {
		eng, err := Build(context.Background(), g, p, Config{SampleCache: 2})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	ref := build()
	count := ref.p.Theta * g.N()
	refPool, _, err := ref.cache.get(context.Background(), ref, predKey{}, count)
	if err != nil {
		t.Fatal(err)
	}
	want := poolBytes(refPool)

	eng := build()
	gctx := &gateCtx{Context: context.Background(), polled: make(chan struct{}), release: make(chan struct{})}
	popErr := make(chan error, 1)
	go func() {
		_, _, err := eng.cache.get(gctx, eng, predKey{}, count)
		popErr <- err
	}()
	<-gctx.polled // populator is inside populate, holding entry.mu

	type res struct {
		pool string
		err  error
	}
	waiterRes := make(chan res, 1)
	go func() {
		rrs, _, err := eng.cache.get(context.Background(), eng, predKey{}, count)
		if err != nil {
			waiterRes <- res{err: err}
			return
		}
		waiterRes <- res{pool: poolBytes(rrs)}
	}()
	// Wait for the waiter to get past the map read (it bumps the cache
	// tick under c.mu); its next step is blocking on the populator's
	// entry.mu. Only then let the populate fail.
	for {
		eng.cache.mu.Lock()
		tick := eng.cache.tick
		eng.cache.mu.Unlock()
		if tick >= 2 {
			break
		}
		runtime.Gosched()
	}
	close(gctx.release)

	if err := <-popErr; err == nil {
		t.Fatal("gated populate did not fail")
	} else {
		var ce *influence.CanceledError
		if !errors.As(err, &ce) {
			t.Fatalf("gated populate returned %v, want CanceledError", err)
		}
		if ce.Done == 0 {
			t.Fatal("populate canceled before any sample; test needs partial samples in the arena")
		}
	}
	r := <-waiterRes
	if r.err != nil {
		t.Fatalf("waiter failed after populator cancellation: %v", r.err)
	}
	if r.pool != want {
		t.Error("waiter served a pool differing from the reference (corrupted prefix or wrong size)")
	}
	// The waiter's pool must be cached under the live key for later queries.
	reg := obs.NewRegistry()
	m := obs.NewQueryMetrics(reg)
	rctx := obs.WithRecorder(context.Background(), obs.NewRecorder(m, nil))
	if _, _, err := eng.cache.get(rctx, eng, predKey{}, count); err != nil {
		t.Fatal(err)
	}
	if m.CacheHits.Value() != 1 {
		t.Errorf("query after recovery missed (hits=%d): waiter repopulated an orphaned entry", m.CacheHits.Value())
	}
}

// TestSampleCacheConcurrentCancelConvergence interleaves a canceled caller
// with clean callers on one key: whichever goroutine ends up populating,
// every successful result must be the full reference pool, and waiters
// blocked on a withdrawn entry must converge on the live replacement rather
// than resurrecting the orphan. Run under -race (named in the CI job).
func TestSampleCacheConcurrentCancelConvergence(t *testing.T) {
	g, _ := attrGraph(t, 81)
	p := Params{K: 3, Theta: 3, Seed: 81}
	build := func() *Engine {
		eng, err := Build(context.Background(), g, p, Config{SampleCache: 2})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	ref := build()
	count := ref.p.Theta * g.N()
	refPool, _, err := ref.cache.get(context.Background(), ref, predKey{}, count)
	if err != nil {
		t.Fatal(err)
	}
	want := poolBytes(refPool)

	const callers = 4
	for round := 0; round < 8; round++ {
		eng := build() // cold cache each round
		pools := make([]string, callers)
		errs := make([]error, callers)
		var wg sync.WaitGroup
		for i := 0; i < callers; i++ {
			ctx := context.Background()
			if i == 0 {
				ctx = &cancelAfterErrs{Context: ctx, left: 1}
			}
			wg.Add(1)
			go func(slot int, ctx context.Context) {
				defer wg.Done()
				rrs, _, err := eng.cache.get(ctx, eng, predKey{}, count)
				if err != nil {
					errs[slot] = err
					return
				}
				pools[slot] = poolBytes(rrs)
			}(i, ctx)
		}
		wg.Wait()
		for i := 0; i < callers; i++ {
			if errs[i] != nil {
				var ce *influence.CanceledError
				if i != 0 || !errors.As(errs[i], &ce) {
					t.Fatalf("round %d: clean caller %d failed: %v", round, i, errs[i])
				}
				continue
			}
			if pools[i] != want {
				t.Errorf("round %d: caller %d served a pool differing from the reference (len mismatch or corrupted prefix)", round, i)
			}
		}
	}
}

// TestSampleCacheEviction locks the LRU bound and the eviction counter.
func TestSampleCacheEviction(t *testing.T) {
	g, q := attrGraph(t, 61)
	eng, err := Build(context.Background(), g, Params{K: 3, Theta: 2, Seed: 61}, Config{SampleCache: 1})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	m := obs.NewQueryMetrics(reg)
	ctx := obs.WithRecorder(context.Background(), obs.NewRecorder(m, nil))
	for _, attr := range []graph.AttrID{0, 1, 0} {
		if _, err := eng.Execute(ctx, eng.Compile(VariantCODR, q, attr), graph.NewRand(5)); err != nil {
			t.Fatal(err)
		}
	}
	if m.CacheMisses.Value() != 3 {
		t.Errorf("misses = %d, want 3 (capacity 1 forces re-sampling)", m.CacheMisses.Value())
	}
	if m.CacheEvictions.Value() != 2 {
		t.Errorf("evictions = %d, want 2", m.CacheEvictions.Value())
	}
}
