// Package engine is the pooled query-execution layer every COD pipeline
// routes through. It compiles a query into an explicit plan — weight →
// chain → sample → evaluate → extract — and executes the plan over shared
// offline state with sync.Pool-backed scratch arenas (RR sampling buffers,
// compressed-evaluation working sets, membership masks) plus an optional
// bounded per-attribute RR-sample cache, so a serving process answers many
// concurrent queries without per-sample allocation churn.
//
// Determinism (DESIGN.md §9, §12): with the sample cache disabled the engine
// consumes randomness in exactly the order the pre-engine pipelines did, so
// query answers are byte-identical to the historical CODU/CODR/CODL
// behavior for equal seeds. With the cache enabled, shared sample pools are
// generated from per-item seeds derived from (seed, attr, epoch), making a
// cache hit byte-identical to a cache miss and the whole system independent
// of query arrival order.
package engine

import (
	"context"
	"fmt"
	"math/rand/v2"

	"github.com/codsearch/cod/internal/graph"
	"github.com/codsearch/cod/internal/hac"
	"github.com/codsearch/cod/internal/hier"
	"github.com/codsearch/cod/internal/influence"
)

// Model selects the influence model driving RR-graph sampling. The COD
// machinery is model-agnostic as long as the model admits RR-set evaluation
// (§II); IC with weighted-cascade probabilities is the paper's default.
type Model int

const (
	// ICWeightedCascade is the independent cascade model with
	// p(u,v) = 1/|N(v)| (the paper's setting).
	ICWeightedCascade Model = iota
	// LTUniform is the linear threshold model with b(u,v) = 1/|N(v)|.
	LTUniform
)

// NewGraphSampler returns a sampler for the model over g driven by rng.
func NewGraphSampler(g *graph.Graph, m Model, rng *rand.Rand) influence.GraphSampler {
	return newArenaSampler(g, m, rng)
}

// arenaSampler is the sampler contract the engine executes plans with: the
// GraphSampler surface plus arena-writing variants plus rng rebinding, so a
// pooled sampler (with its per-graph visited marks) serves successive
// queries that each carry their own deterministic stream.
type arenaSampler interface {
	influence.ArenaSampler
	SetRand(rng *rand.Rand)
}

func newArenaSampler(g *graph.Graph, m Model, rng *rand.Rand) arenaSampler {
	if m == LTUniform {
		return influence.NewLTSampler(g, influence.UniformLT{G: g}, rng)
	}
	return influence.NewSampler(g, influence.NewWeightedCascade(g), rng)
}

// Params bundles the knobs shared by all COD pipelines.
type Params struct {
	// K is the required influence rank: q must be top-K in C*(q). Default 5.
	K int
	// Theta is the per-node RR multiplier θ (Θ = θ·n samples). Default 10.
	Theta int
	// Beta is the extra weight on query-attributed edges in g_ℓ. Default 1.
	Beta float64
	// Linkage selects the agglomerative linkage. Default UnweightedAverage.
	Linkage hac.Linkage
	// Seed drives all sampling for reproducibility.
	Seed uint64
	// Model selects the influence model (default ICWeightedCascade).
	Model Model
	// Balanced rebalances the non-attributed hierarchy along heavy paths
	// (hier.Rebalance), bounding |H(q)| polylogarithmically on hub-skewed
	// graphs at the cost of exact agglomerative faithfulness.
	Balanced bool
	// Workers parallelizes offline RR sampling (HIMOR construction) across
	// goroutines; <= 1 means sequential. Purely a performance knob: each RR
	// graph draws from a stream seeded by its pool index, so the output is
	// identical for every Workers value. Only the IC model parallelizes
	// currently.
	Workers int
}

// clusterTree builds the non-attributed hierarchy per the params.
func clusterTree(ctx context.Context, g *graph.Graph, p Params) (*hier.Tree, error) {
	if p.Balanced {
		return hac.ClusterBalancedCtx(ctx, g, p.Linkage)
	}
	return hac.ClusterCtx(ctx, g, p.Linkage)
}

// WithDefaults returns p with zero-value tuning fields replaced by the
// paper's defaults. Persistence uses it to compare saved and requested
// parameters in canonical form.
func (p Params) WithDefaults() Params { return p.withDefaults() }

// withDefaults fills zero values with the paper's defaults.
func (p Params) withDefaults() Params {
	if p.K <= 0 {
		p.K = 5
	}
	if p.Theta <= 0 {
		p.Theta = 10
	}
	if p.Beta <= 0 {
		p.Beta = 1
	}
	return p
}

// Community is the answer to a COD query.
type Community struct {
	// Nodes of C*(q), ascending; nil when Found is false.
	Nodes []graph.NodeID
	// Found reports whether any community in the hierarchy had q top-k.
	Found bool
	// Level is the chain index of the chosen community (diagnostics).
	Level int
	// FromIndex is true when the HIMOR index answered without evaluation.
	FromIndex bool
	// Rank is q's influence rank within the chosen community (1 = most
	// influential); 0 when unknown (not found, or a legacy evaluation that
	// did not track ranks).
	Rank int
}

// Size returns |C*| (0 when not found).
func (c Community) Size() int { return len(c.Nodes) }

// ErrNotInGraph is returned by facade-level validation helpers.
var ErrNotInGraph = fmt.Errorf("engine: query node out of range")
