package engine

import (
	"context"
	"math/rand/v2"

	"github.com/codsearch/cod/internal/core"
	"github.com/codsearch/cod/internal/graph"
	"github.com/codsearch/cod/internal/hier"
)

// The CODU/CODR/CODL pipeline types keep the pre-engine query API: each is a
// thin compiled-plan front over an Engine. Evaluation code (eval/, hin/,
// dynamic/) programs against these; the serving facade holds an Engine
// directly.

// CODU answers COD queries over the non-attributed hierarchy (variant CODU
// of §V-A): agglomerative clustering of g once, then compressed evaluation
// per query. Construct with NewCODU.
type CODU struct {
	eng *Engine
}

// NewCODU clusters g and returns a reusable CODU pipeline.
func NewCODU(g *graph.Graph, p Params) (*CODU, error) {
	return NewCODUCtx(context.Background(), g, p)
}

// NewCODUCtx is NewCODU with a cancellable offline phase.
func NewCODUCtx(ctx context.Context, g *graph.Graph, p Params) (*CODU, error) {
	p = p.withDefaults()
	t, err := clusterTree(ctx, g, p)
	if err != nil {
		return nil, err
	}
	return &CODU{eng: New(g, t, nil, p, Config{})}, nil
}

// NewCODUWithTree reuses a prebuilt hierarchy (e.g. shared with a CODL
// pipeline over the same graph).
func NewCODUWithTree(g *graph.Graph, t *hier.Tree, p Params) *CODU {
	return &CODU{eng: New(g, t, nil, p, Config{})}
}

// Engine exposes the underlying query engine.
func (c *CODU) Engine() *Engine { return c.eng }

// Tree exposes the non-attributed hierarchy.
func (c *CODU) Tree() *hier.Tree { return c.eng.Tree() }

// Query finds the characteristic community of q ignoring the attribute.
func (c *CODU) Query(q graph.NodeID, rng *rand.Rand) Community {
	com, _ := c.QueryCtx(context.Background(), q, rng)
	return com
}

// QueryCtx is Query with cancellation: the sampling loop and the compressed
// evaluation poll ctx.Err() at bounded intervals; on cancellation the error
// wraps a *influence.CanceledError with the completed sample count. An
// uncancelled call returns exactly Query's community.
func (c *CODU) QueryCtx(ctx context.Context, q graph.NodeID, rng *rand.Rand) (Community, error) {
	return c.eng.Execute(ctx, c.eng.Compile(VariantCODU, q, 0), rng)
}

// CODR answers COD queries by globally reclustering the attribute-weighted
// graph g_ℓ per query attribute (variant CODR of §V-A). Hierarchies can be
// cached per attribute; caching must be off when timing Fig. 9.
type CODR struct {
	eng *Engine
	// CacheHierarchies enables the per-attribute hierarchy cache.
	CacheHierarchies bool
}

// NewCODR returns a CODR pipeline; no offline work is required.
func NewCODR(g *graph.Graph, p Params) *CODR {
	return &CODR{eng: New(g, nil, nil, p, Config{})}
}

// Engine exposes the underlying query engine.
func (c *CODR) Engine() *Engine { return c.eng }

// Hierarchy returns the attribute-aware hierarchy for attr, reclustering
// from scratch unless cached.
func (c *CODR) Hierarchy(attr graph.AttrID) (*hier.Tree, error) {
	return c.HierarchyCtx(context.Background(), attr)
}

// HierarchyCtx is Hierarchy with a cancellable recluster. Canceled builds
// are not cached.
func (c *CODR) HierarchyCtx(ctx context.Context, attr graph.AttrID) (*hier.Tree, error) {
	return c.eng.AttrTree(ctx, attr, c.CacheHierarchies)
}

// Query finds the characteristic community of q for attribute attr.
func (c *CODR) Query(q graph.NodeID, attr graph.AttrID, rng *rand.Rand) (Community, error) {
	return c.QueryCtx(context.Background(), q, attr, rng)
}

// QueryCtx is Query with cancellation across all three phases: the global
// recluster (hac merge loop), the sampling loop and the compressed
// evaluation all poll ctx.Err() at bounded intervals. Uncancelled results
// are identical to Query.
func (c *CODR) QueryCtx(ctx context.Context, q graph.NodeID, attr graph.AttrID, rng *rand.Rand) (Community, error) {
	pl := c.eng.Compile(VariantCODR, q, attr)
	pl.CacheAttrTree = c.CacheHierarchies
	return c.eng.Execute(ctx, pl, rng)
}

// CODL is the fully optimized pipeline (variant CODL of §V-A): LORE local
// reclustering plus the HIMOR index (Algorithm 3). The hierarchy and index
// are built once offline; queries recluster only C_ℓ.
type CODL struct {
	eng *Engine
}

// NewCODL clusters g and builds the HIMOR index.
func NewCODL(g *graph.Graph, p Params) (*CODL, error) {
	return NewCODLCtx(context.Background(), g, p)
}

// NewCODLCtx is NewCODL with a cancellable offline phase: both the
// clustering merge loop and the HIMOR RR sampling poll ctx.Err() at bounded
// intervals, so a server can abandon warmup on shutdown. Uncancelled builds
// are identical to NewCODL for the same params.
func NewCODLCtx(ctx context.Context, g *graph.Graph, p Params) (*CODL, error) {
	eng, err := Build(ctx, g, p, Config{})
	if err != nil {
		return nil, err
	}
	return &CODL{eng: eng}, nil
}

// NewCODLWithTree reuses a prebuilt hierarchy and index (both may be shared
// across pipelines built from the same graph and params).
func NewCODLWithTree(g *graph.Graph, t *hier.Tree, idx *core.Himor, p Params) *CODL {
	return &CODL{eng: New(g, t, idx, p, Config{})}
}

// Engine exposes the underlying query engine.
func (c *CODL) Engine() *Engine { return c.eng }

// Tree exposes the non-attributed hierarchy.
func (c *CODL) Tree() *hier.Tree { return c.eng.Tree() }

// Index exposes the HIMOR index.
func (c *CODL) Index() *core.Himor { return c.eng.Index() }

// Query runs Algorithm 3: LORE picks C_ℓ; the HIMOR index is scanned
// top-down over C_ℓ's ancestors for the largest community where q is top-k;
// only if none qualifies is a compressed evaluation run inside C_ℓ.
func (c *CODL) Query(q graph.NodeID, attr graph.AttrID, rng *rand.Rand) (Community, error) {
	return c.QueryCtx(context.Background(), q, attr, rng)
}

// QueryCtx is Query with cancellation: LORE's phases, the restricted
// sampling loop and the compressed evaluation all poll ctx.Err() at bounded
// intervals, so a deadline aborts the query long before the full Monte-Carlo
// run completes. Uncancelled results are byte-identical to Query.
func (c *CODL) QueryCtx(ctx context.Context, q graph.NodeID, attr graph.AttrID, rng *rand.Rand) (Community, error) {
	return c.eng.Execute(ctx, c.eng.Compile(VariantCODL, q, attr), rng)
}

// QueryNoIndex is CODL⁻ (§V-D): LORE reclustering and compressed evaluation
// over the full merged chain H_ℓ(q), without consulting the HIMOR index.
func (c *CODL) QueryNoIndex(q graph.NodeID, attr graph.AttrID, rng *rand.Rand) (Community, error) {
	return c.QueryNoIndexCtx(context.Background(), q, attr, rng)
}

// QueryNoIndexCtx is QueryNoIndex with the same cancellation points as
// QueryCtx.
func (c *CODL) QueryNoIndexCtx(ctx context.Context, q graph.NodeID, attr graph.AttrID, rng *rand.Rand) (Community, error) {
	return c.eng.Execute(ctx, c.eng.Compile(VariantCODLNoIndex, q, attr), rng)
}

// MergedChainFor exposes H_ℓ(q) for effectiveness experiments (Fig. 4).
func (c *CODL) MergedChainFor(q graph.NodeID, attr graph.AttrID) (*core.Chain, error) {
	rec, err := core.Lore(c.eng.Graph(), c.eng.Tree(), q, attr, c.eng.Params().Beta, c.eng.Params().Linkage)
	if err != nil {
		return nil, err
	}
	return core.MergedChain(c.eng.Graph(), c.eng.Tree(), rec, q), nil
}
