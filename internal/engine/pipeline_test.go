package engine

import (
	"testing"

	"github.com/codsearch/cod/internal/graph"
	"github.com/codsearch/cod/internal/influence"
)

// attrGraph builds a planted two-community graph where attribute 0 marks
// community 0; returns the graph and a query node inside community 0.
func attrGraph(t *testing.T, seed uint64) (*graph.Graph, graph.NodeID) {
	t.Helper()
	rng := graph.NewRand(seed)
	g, comms := graph.PlantedPartition(graph.PlantedPartitionSpec{
		N: 150, TargetM: 500, NumComms: 5, IntraFraction: 0.85, HubBias: 0.4,
	}, rng)
	b := graph.NewBuilder(g.N(), 2)
	g.ForEachEdge(func(u, v graph.NodeID, w float64) { _ = b.AddWeightedEdge(u, v, w) })
	var q graph.NodeID = -1
	for v := 0; v < g.N(); v++ {
		if comms[v] == 0 {
			_ = b.SetAttrs(graph.NodeID(v), 0)
			q = graph.NodeID(v) // last member: not necessarily a hub
		} else {
			_ = b.SetAttrs(graph.NodeID(v), 1)
		}
	}
	return b.Build(), q
}

func TestParamsDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	if p.K != 5 || p.Theta != 10 || p.Beta != 1 {
		t.Errorf("defaults wrong: %+v", p)
	}
	p2 := Params{K: 2, Theta: 3, Beta: 0.5}.withDefaults()
	if p2.K != 2 || p2.Theta != 3 || p2.Beta != 0.5 {
		t.Errorf("explicit values overridden: %+v", p2)
	}
}

func TestCODUQuery(t *testing.T) {
	g, q := attrGraph(t, 1)
	codu, err := NewCODU(g, Params{K: 5, Theta: 5})
	if err != nil {
		t.Fatal(err)
	}
	com := codu.Query(q, graph.NewRand(2))
	if com.Found && com.Size() == 0 {
		t.Error("found community with no nodes")
	}
	if com.Found && !containsNode(com.Nodes, q) {
		t.Error("community must contain the query node")
	}
	if codu.Tree() == nil {
		t.Error("Tree accessor nil")
	}
}

func TestCODRQuery(t *testing.T) {
	g, q := attrGraph(t, 3)
	codr := NewCODR(g, Params{K: 5, Theta: 5})
	com, err := codr.Query(q, 0, graph.NewRand(4))
	if err != nil {
		t.Fatal(err)
	}
	if com.Found && !containsNode(com.Nodes, q) {
		t.Error("community must contain the query node")
	}
}

func TestCODRHierarchyCache(t *testing.T) {
	g, _ := attrGraph(t, 5)
	codr := NewCODR(g, Params{})
	codr.CacheHierarchies = true
	t1, err := codr.Hierarchy(0)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := codr.Hierarchy(0)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Error("cache did not return the same hierarchy")
	}
	codr.CacheHierarchies = false
	t3, err := codr.Hierarchy(0)
	if err != nil {
		t.Fatal(err)
	}
	if t3 == t1 {
		t.Error("cache bypass returned cached tree")
	}
}

func TestCODLQueryPaths(t *testing.T) {
	g, q := attrGraph(t, 6)
	codl, err := NewCODL(g, Params{K: 5, Theta: 5, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	com, err := codl.Query(q, 0, graph.NewRand(7))
	if err != nil {
		t.Fatal(err)
	}
	if com.Found && !containsNode(com.Nodes, q) {
		t.Error("community must contain q")
	}
	// With k = n the index path must trigger at the root immediately.
	codlBig := NewCODLWithTree(g, codl.Tree(), codl.Index(), Params{K: g.N(), Theta: 5})
	comBig, err := codlBig.Query(q, 0, graph.NewRand(8))
	if err != nil {
		t.Fatal(err)
	}
	if !comBig.Found || !comBig.FromIndex {
		t.Errorf("k=n should be answered by the index: %+v", comBig)
	}
	if comBig.Size() != g.N() {
		t.Errorf("k=n community size %d, want %d", comBig.Size(), g.N())
	}
}

func TestCODLNoIndexAgreesQualitatively(t *testing.T) {
	g, q := attrGraph(t, 9)
	codl, err := NewCODL(g, Params{K: 5, Theta: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	with, err := codl.Query(q, 0, graph.NewRand(10))
	if err != nil {
		t.Fatal(err)
	}
	without, err := codl.QueryNoIndex(q, 0, graph.NewRand(10))
	if err != nil {
		t.Fatal(err)
	}
	// Both use the same chain family; sampling differs, so require only
	// agreement on "found" and containment of q.
	if with.Found != without.Found && with.Found == false {
		t.Logf("note: index path not found but CODL⁻ found (sampling noise)")
	}
	if without.Found && !containsNode(without.Nodes, q) {
		t.Error("CODL⁻ community must contain q")
	}
}

func TestMergedChainFor(t *testing.T) {
	g, q := attrGraph(t, 12)
	codl, err := NewCODL(g, Params{Theta: 3, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := codl.MergedChainFor(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Validate(); err != nil {
		t.Errorf("merged chain invalid: %v", err)
	}
	if ch.Size(ch.Len()-1) != g.N() {
		t.Error("merged chain must end at the whole graph")
	}
}

func TestCommunityHelpers(t *testing.T) {
	c := Community{}
	if c.Size() != 0 {
		t.Error("empty community size")
	}
	c2 := Community{Nodes: []graph.NodeID{1, 2, 3}, Found: true}
	if c2.Size() != 3 {
		t.Error("size wrong")
	}
}

func TestNewGraphSamplerKinds(t *testing.T) {
	g := graph.ErdosRenyi(15, 40, graph.NewRand(85))
	ic := NewGraphSampler(g, ICWeightedCascade, graph.NewRand(86))
	lt := NewGraphSampler(g, LTUniform, graph.NewRand(86))
	if ic.RRGraph() == nil || lt.RRGraph() == nil {
		t.Fatal("samplers broken")
	}
	if _, ok := ic.(*influence.Sampler); !ok {
		t.Error("IC sampler wrong type")
	}
	if _, ok := lt.(*influence.LTSampler); !ok {
		t.Error("LT sampler wrong type")
	}
}

func containsNode(nodes []graph.NodeID, q graph.NodeID) bool {
	for _, v := range nodes {
		if v == q {
			return true
		}
	}
	return false
}
