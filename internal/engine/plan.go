package engine

import (
	"context"
	"errors"
	"math/rand/v2"

	"github.com/codsearch/cod/internal/core"
	"github.com/codsearch/cod/internal/graph"
	"github.com/codsearch/cod/internal/hier"
	"github.com/codsearch/cod/internal/influence"
	"github.com/codsearch/cod/internal/obs"
)

// Variant names the COD pipeline a plan realizes (§V-A of the paper, plus
// the CODL⁻ ablation of §V-D).
type Variant int

const (
	// VariantCODU evaluates over the non-attributed hierarchy.
	VariantCODU Variant = iota
	// VariantCODR globally reclusters the attribute-weighted graph.
	VariantCODR
	// VariantCODL is LORE + HIMOR + restricted sampling (Algorithm 3).
	VariantCODL
	// VariantCODLNoIndex is CODL⁻: LORE without the HIMOR index.
	VariantCODLNoIndex
)

// String returns the paper's name for the variant.
func (v Variant) String() string {
	switch v {
	case VariantCODU:
		return "CODU"
	case VariantCODR:
		return "CODR"
	case VariantCODL:
		return "CODL"
	case VariantCODLNoIndex:
		return "CODL-"
	}
	return "unknown"
}

// StepKind is one stage of a compiled plan.
type StepKind int

const (
	// StepWeight derives the attribute weighting: a LORE local recluster or
	// a global recluster of g_ℓ, per the step's WeightMode.
	StepWeight StepKind = iota
	// StepIndexProbe scans the HIMOR index top-down over C_ℓ's ancestors;
	// a hit answers the query without evaluation.
	StepIndexProbe
	// StepChain builds the community chain the evaluation sweeps.
	StepChain
	// StepSample fills the RR sample pool (shared θ·N pool or sampling
	// restricted to C_ℓ, per the step's SampleMode).
	StepSample
	// StepEvaluate runs the compressed COD evaluation (Algorithm 1).
	StepEvaluate
	// StepExtract materializes the community from the winning chain level.
	StepExtract
)

// String returns the snake_case step name used in step spans and logs.
func (k StepKind) String() string {
	switch k {
	case StepWeight:
		return "weight"
	case StepIndexProbe:
		return "index_probe"
	case StepChain:
		return "chain"
	case StepSample:
		return "sample"
	case StepEvaluate:
		return "evaluate"
	case StepExtract:
		return "extract"
	}
	return "unknown"
}

// WeightMode selects how StepWeight derives the attribute weighting.
type WeightMode int

const (
	// WeightLORE runs the LORE local recluster of C_ℓ.
	WeightLORE WeightMode = iota
	// WeightGlobal reclusters the whole attribute-weighted graph g_ℓ.
	WeightGlobal
)

// ChainMode selects StepChain's source.
type ChainMode int

const (
	// ChainTree walks the non-attributed hierarchy (CODU).
	ChainTree ChainMode = iota
	// ChainAttr walks the globally reclustered attribute hierarchy (CODR).
	ChainAttr
	// ChainInner is the reclustered chain inside C_ℓ (CODL).
	ChainInner
	// ChainMerged is the merged chain H_ℓ(q) (CODL⁻).
	ChainMerged
)

// SampleMode selects StepSample's pool.
type SampleMode int

const (
	// SampleShared draws θ·N RR graphs over the whole graph — from the
	// per-attribute cache when the engine has one, else from the query rng.
	SampleShared SampleMode = iota
	// SampleRestricted draws θ·|C_ℓ| RR graphs confined to C_ℓ from the
	// query rng (cache-exempt: the restriction depends on the query node).
	SampleRestricted
)

// Step is one stage of a plan; Mode fields beyond the Kind's are ignored.
type Step struct {
	Kind   StepKind
	Weight WeightMode
	Chain  ChainMode
	Sample SampleMode
}

// Plan is a compiled query: the ordered stages Execute runs plus the query
// itself. Plans are cheap values — compile per query, no caching needed.
type Plan struct {
	Variant Variant
	Q       graph.NodeID
	Attr    graph.AttrID
	// CacheAttrTree lets a CODR plan reuse the per-attribute reclustered
	// hierarchy across queries (deterministic either way).
	CacheAttrTree bool
	Steps         []Step
}

// planSteps is the fixed stage list per variant; slices are shared,
// read-only.
var planSteps = map[Variant][]Step{
	VariantCODU: {
		{Kind: StepChain, Chain: ChainTree},
		{Kind: StepSample, Sample: SampleShared},
		{Kind: StepEvaluate},
		{Kind: StepExtract},
	},
	VariantCODR: {
		{Kind: StepWeight, Weight: WeightGlobal},
		{Kind: StepChain, Chain: ChainAttr},
		{Kind: StepSample, Sample: SampleShared},
		{Kind: StepEvaluate},
		{Kind: StepExtract},
	},
	VariantCODL: {
		{Kind: StepWeight, Weight: WeightLORE},
		{Kind: StepIndexProbe},
		{Kind: StepChain, Chain: ChainInner},
		{Kind: StepSample, Sample: SampleRestricted},
		{Kind: StepEvaluate},
		{Kind: StepExtract},
	},
	VariantCODLNoIndex: {
		{Kind: StepWeight, Weight: WeightLORE},
		{Kind: StepChain, Chain: ChainMerged},
		{Kind: StepSample, Sample: SampleShared},
		{Kind: StepEvaluate},
		{Kind: StepExtract},
	},
}

// Compile lowers a query onto the variant's stage list. CODR plans inherit
// the engine's attribute-tree caching configuration.
func (e *Engine) Compile(v Variant, q graph.NodeID, attr graph.AttrID) *Plan {
	return &Plan{Variant: v, Q: q, Attr: attr,
		CacheAttrTree: v == VariantCODR && e.cfg.CacheAttrTrees,
		Steps:         planSteps[v]}
}

// execState threads intermediate results between plan stages.
type execState struct {
	rec      *core.Reclustering // from WeightLORE
	attrTree *hier.Tree         // from WeightGlobal
	ch       *core.Chain
	rrs      []*influence.RRGraph
	res      core.EvalResult
	// staged marks that an adaptive sample step already produced res (the
	// evaluate step then passes through); stages and gap annotate the sample
	// step's trace record and are cleared once recorded.
	staged bool
	stages int
	gap    float64
}

// Execute runs a compiled plan. rng is the query's deterministic stream;
// with the sample cache disabled, randomness is consumed in exactly the
// order the historical pipelines used, so answers are byte-identical to the
// pre-engine behavior for equal seeds. Error shapes match the historical
// pipelines: cancellation during sampling or evaluation wraps a
// *influence.CanceledError carrying partial progress.
//
// When the context carries a Recorder with a trace, every executed step
// emits a step span labeled (variant, kind, outcome), so the trace reads as
// the plan that actually ran. Step spans record no metrics and draw no
// randomness; instrumented execution stays byte-identical.
func (e *Engine) Execute(ctx context.Context, pl *Plan, rng *rand.Rand) (Community, error) {
	sc := e.acquire(rng)
	defer e.release(sc)
	r := obs.FromContext(ctx)
	variant := pl.Variant.String()
	var st execState
	for _, step := range pl.Steps {
		sp := r.StartStep(variant, step.Kind.String())
		com, outcome, done, err := e.runStep(ctx, pl, step, sc, rng, &st)
		// A staged sample step annotates its record with the realized stage
		// count and certified gap; every other step records zeros, which
		// EndStaged treats exactly as End.
		sp.EndStaged(outcome, st.stages, st.gap)
		st.stages, st.gap = 0, 0
		if err != nil {
			// Historical error shapes: a weight failure returns the zero
			// Community, sampling/evaluation failures mark Level -1.
			if step.Kind == StepWeight {
				return Community{}, err
			}
			return Community{Level: -1}, err
		}
		if done {
			return com, nil
		}
	}
	return Community{Level: -1}, nil
}

// runStep executes one plan step against st, returning the step's outcome
// label, whether the plan is done (com is then the answer), and any error.
// Factored out of Execute so the step span unconditionally Ends on every
// path (the spanend codvet shape).
func (e *Engine) runStep(ctx context.Context, pl *Plan, step Step, sc *queryScratch, rng *rand.Rand, st *execState) (com Community, outcome string, done bool, err error) {
	switch step.Kind {
	case StepWeight:
		if step.Weight == WeightGlobal {
			t, err := e.AttrTree(ctx, pl.Attr, pl.CacheAttrTree)
			if err != nil {
				return Community{}, errOutcome(err), false, err
			}
			st.attrTree = t
			return Community{}, "global", false, nil
		}
		rec, err := core.LoreCtx(ctx, e.g, e.tree, pl.Q, pl.Attr, e.p.Beta, e.p.Linkage)
		if err != nil {
			return Community{}, errOutcome(err), false, err
		}
		st.rec = rec
		return Community{}, "lore", false, nil

	case StepIndexProbe:
		if com, ok := e.probeIndex(ctx, pl.Q, st.rec); ok {
			return com, "hit", true, nil
		}
		return Community{}, "miss", false, nil

	case StepChain:
		switch step.Chain {
		case ChainTree:
			st.ch = core.ChainFromTree(e.tree, pl.Q)
			return Community{}, "tree", false, nil
		case ChainAttr:
			st.ch = core.ChainFromTree(st.attrTree, pl.Q)
			return Community{}, "attr", false, nil
		case ChainInner:
			st.ch = core.InnerChain(e.g, e.tree, st.rec, pl.Q)
			return Community{}, "inner", false, nil
		case ChainMerged:
			st.ch = core.MergedChain(e.g, e.tree, st.rec, pl.Q)
			return Community{}, "merged", false, nil
		}
		return Community{}, "unknown", false, nil

	case StepSample:
		if e.cfg.Adaptive.Enabled {
			// Bounded-error mode fuses sampling and evaluation: the pool
			// grows in stages, each swept and tested for certification, so
			// the step's outcome is the decision (early_stop/exhausted)
			// rather than the pool's provenance.
			outcome, stages, gap, err := e.runStaged(ctx, pl, step, sc, rng, st)
			st.staged, st.stages, st.gap = true, stages, gap
			if err != nil {
				return Community{}, outcome, false, err
			}
			return Community{}, outcome, false, nil
		}
		if step.Sample == SampleRestricted {
			rrs, err := e.sampleRestricted(ctx, sc, st.rec, rng)
			if err != nil {
				return Community{}, errOutcome(err), false, err
			}
			st.rrs = rrs
			return Community{}, "restricted", false, nil
		}
		rrs, outcome, err := e.sampleShared(ctx, sc, pl.Attr)
		if err != nil {
			return Community{}, errOutcome(err), false, err
		}
		st.rrs = rrs
		return Community{}, outcome, false, nil

	case StepEvaluate:
		if st.staged {
			// The adaptive sample step already evaluated; st.res is final.
			return Community{}, "staged", false, nil
		}
		res, err := core.CompressedEvaluateScratchCtx(ctx, st.ch, st.rrs, e.p.K, sc.eval)
		if err != nil {
			return Community{}, errOutcome(err), false, err
		}
		st.res = res
		return Community{}, "ok", false, nil

	case StepExtract:
		com := communityFromChain(st.ch, st.res)
		if com.Found {
			return com, "found", true, nil
		}
		return com, "not_found", true, nil
	}
	return Community{}, "unknown", false, nil
}

// errOutcome labels a failed step: canceled for context errors (anywhere in
// the wrap chain), error otherwise.
func errOutcome(err error) string {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return "canceled"
	}
	return "error"
}

// probeIndex scans the HIMOR index top-down over the ancestors of C_ℓ (root
// first, C_ℓ last); the largest community where q is top-k answers directly.
func (e *Engine) probeIndex(ctx context.Context, q graph.NodeID, rec *core.Reclustering) (Community, bool) {
	r := obs.FromContext(ctx)
	lookup := r.StartSpan(obs.StageHimorLookup)
	anc := e.tree.Ancestors(rec.CL)
	for i := len(anc) - 1; i >= -1; i-- {
		v := rec.CL
		if i >= 0 {
			v = anc[i]
		}
		if e.index.Rank(q, v) < e.p.K {
			lookup.EndItems(len(anc) - i)
			r.CountIndexHit()
			return Community{Nodes: e.tree.Members(v), Found: true, Level: -1, FromIndex: true}, true
		}
	}
	lookup.EndItems(len(anc) + 1)
	return Community{}, false
}

// sampleShared fills the θ·N whole-graph pool: from the per-attribute cache
// when enabled (the query rng is then unused — pool content is a pure
// function of seed, attribute and epoch), else from the query rng (already
// bound to the scratch sampler) into the scratch arena, byte-identical to
// the historical influence.BatchCtx stream. The outcome labels the step
// span: cache_hit/cache_miss through the cache, sampled without one.
func (e *Engine) sampleShared(ctx context.Context, sc *queryScratch, attr graph.AttrID) ([]*influence.RRGraph, string, error) {
	count := e.p.Theta * e.g.N()
	if e.cache != nil {
		rrs, hit, err := e.cache.get(ctx, e, attr, count)
		if hit {
			return rrs, "cache_hit", err
		}
		return rrs, "cache_miss", err
	}
	rrs, err := influence.BatchIntoCtx(ctx, sc.sampler, count, sc.arena)
	return rrs, "sampled", err
}

// sampleRestricted draws θ·|C_ℓ| RR graphs confined to C_ℓ, sources drawn
// uniformly from the members by the query rng — the same draw order as the
// historical CODL loop, arena-backed.
func (e *Engine) sampleRestricted(ctx context.Context, sc *queryScratch, rec *core.Reclustering, rng *rand.Rand) ([]*influence.RRGraph, error) {
	members := rec.Sub.ToParent
	in := sc.memberMask(members)
	member := func(u graph.NodeID) bool { return in[u] }
	total := e.p.Theta * len(members)
	sample := obs.FromContext(ctx).StartSpan(obs.StageRRSample)
	for i := 0; i < total; i++ {
		if i%influence.PollEvery == 0 {
			if err := ctx.Err(); err != nil {
				sample.EndItems(i)
				return nil, &influence.CanceledError{
					Op: "engine: restricted rr sampling", Done: i, Total: total, Cause: err}
			}
		}
		sc.sampler.RRGraphWithinInto(sc.arena, members[rng.IntN(len(members))], member)
	}
	sample.EndItems(total)
	return sc.arena.Finalize(), nil
}

func communityFromChain(ch *core.Chain, res core.EvalResult) Community {
	if res.Level < 0 {
		return Community{Found: false, Level: -1}
	}
	return Community{Nodes: ch.Members(res.Level), Found: true, Level: res.Level}
}
