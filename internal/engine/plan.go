package engine

import (
	"context"
	"errors"
	"math/rand/v2"

	"github.com/codsearch/cod/internal/core"
	"github.com/codsearch/cod/internal/graph"
	"github.com/codsearch/cod/internal/hier"
	"github.com/codsearch/cod/internal/influence"
	"github.com/codsearch/cod/internal/obs"
	"github.com/codsearch/cod/internal/query"
)

// Variant names the COD pipeline a plan realizes (§V-A of the paper, plus
// the CODL⁻ ablation of §V-D).
type Variant int

const (
	// VariantCODU evaluates over the non-attributed hierarchy.
	VariantCODU Variant = iota
	// VariantCODR globally reclusters the attribute-weighted graph.
	VariantCODR
	// VariantCODL is LORE + HIMOR + restricted sampling (Algorithm 3).
	VariantCODL
	// VariantCODLNoIndex is CODL⁻: LORE without the HIMOR index.
	VariantCODLNoIndex
)

// String returns the paper's name for the variant.
func (v Variant) String() string {
	switch v {
	case VariantCODU:
		return "CODU"
	case VariantCODR:
		return "CODR"
	case VariantCODL:
		return "CODL"
	case VariantCODLNoIndex:
		return "CODL-"
	}
	return "unknown"
}

// StepKind is one stage of a compiled plan.
type StepKind int

const (
	// StepWeight derives the attribute weighting: a LORE local recluster or
	// a global recluster of g_ℓ, per the step's WeightMode.
	StepWeight StepKind = iota
	// StepIndexProbe scans the HIMOR index top-down over C_ℓ's ancestors;
	// a hit answers the query without evaluation.
	StepIndexProbe
	// StepChain builds the community chain the evaluation sweeps.
	StepChain
	// StepSample fills the RR sample pool (shared θ·N pool or sampling
	// restricted to C_ℓ, per the step's SampleMode).
	StepSample
	// StepEvaluate runs the compressed COD evaluation (Algorithm 1).
	StepEvaluate
	// StepFilter re-chooses the answering chain level under the plan's
	// community-level filters (largest level where q is top-k AND every
	// filter accepts). Compiled only when the plan carries filters.
	StepFilter
	// StepExtract materializes the community from the winning chain level.
	StepExtract
)

// String returns the snake_case step name used in step spans and logs.
func (k StepKind) String() string {
	switch k {
	case StepWeight:
		return "weight"
	case StepIndexProbe:
		return "index_probe"
	case StepChain:
		return "chain"
	case StepSample:
		return "sample"
	case StepEvaluate:
		return "evaluate"
	case StepFilter:
		return "filter"
	case StepExtract:
		return "extract"
	}
	return "unknown"
}

// WeightMode selects how StepWeight derives the attribute weighting.
type WeightMode int

const (
	// WeightLORE runs the LORE local recluster of C_ℓ.
	WeightLORE WeightMode = iota
	// WeightGlobal reclusters the whole attribute-weighted graph g_ℓ.
	WeightGlobal
)

// ChainMode selects StepChain's source.
type ChainMode int

const (
	// ChainTree walks the non-attributed hierarchy (CODU).
	ChainTree ChainMode = iota
	// ChainAttr walks the globally reclustered attribute hierarchy (CODR).
	ChainAttr
	// ChainInner is the reclustered chain inside C_ℓ (CODL).
	ChainInner
	// ChainMerged is the merged chain H_ℓ(q) (CODL⁻).
	ChainMerged
)

// SampleMode selects StepSample's pool.
type SampleMode int

const (
	// SampleShared draws θ·N RR graphs over the whole graph — from the
	// per-attribute cache when the engine has one, else from the query rng.
	SampleShared SampleMode = iota
	// SampleRestricted draws θ·|C_ℓ| RR graphs confined to C_ℓ from the
	// query rng (cache-exempt: the restriction depends on the query node).
	SampleRestricted
)

// Step is one stage of a plan; Mode fields beyond the Kind's are ignored.
type Step struct {
	Kind   StepKind
	Weight WeightMode
	Chain  ChainMode
	Sample SampleMode
}

// Plan is a compiled query: the ordered stages Execute runs plus the query
// itself. Plans are cheap values — compile per query, no caching needed.
type Plan struct {
	Variant Variant
	Q       graph.NodeID
	Attr    graph.AttrID
	// Pred is the compound attribute predicate, nil for single-attribute
	// plans (CompileSpec lowers a single positive-literal predicate onto
	// Attr, so the legacy pipeline — and its cache keys — serve it).
	Pred *query.DNF
	// Filters are the community-level constraints; non-empty filters compile
	// a StepFilter between evaluate and extract and drop the index probe
	// (the probe's answer ignores filters).
	Filters []query.Filter
	// K is the required influence rank for this plan (CompileSpec fills the
	// engine default when the query has no k= override).
	K int
	// Adaptive overrides the engine's adaptive configuration for this plan;
	// nil inherits the engine config.
	Adaptive *Adaptive
	// CacheAttrTree lets a CODR plan reuse the per-attribute reclustered
	// hierarchy across queries (deterministic either way).
	CacheAttrTree bool
	Steps         []Step
}

// Spec is a typed query for CompileSpec: the variant and query node plus the
// optional predicate, community filters, rank override, and adaptive
// override the query DSL can carry. The zero values of the optional fields
// mean "engine default", so a Spec holding only (Variant, Q, Attr) compiles
// to exactly the legacy Compile plan.
type Spec struct {
	Variant Variant
	Q       graph.NodeID
	// Attr is the query attribute for predicate-less plans (and the target
	// of single-positive-literal predicate lowering).
	Attr graph.AttrID
	// Pred is the normalized attribute predicate, nil for none.
	Pred *query.DNF
	// Filters are community-level constraints (size/density/conductance).
	Filters []query.Filter
	// K overrides the required influence rank; 0 uses the engine default.
	K int
	// Adaptive overrides the engine's adaptive config; nil inherits it.
	Adaptive *Adaptive
}

// planSteps is the fixed stage list per variant; slices are shared,
// read-only.
var planSteps = map[Variant][]Step{
	VariantCODU: {
		{Kind: StepChain, Chain: ChainTree},
		{Kind: StepSample, Sample: SampleShared},
		{Kind: StepEvaluate},
		{Kind: StepExtract},
	},
	VariantCODR: {
		{Kind: StepWeight, Weight: WeightGlobal},
		{Kind: StepChain, Chain: ChainAttr},
		{Kind: StepSample, Sample: SampleShared},
		{Kind: StepEvaluate},
		{Kind: StepExtract},
	},
	VariantCODL: {
		{Kind: StepWeight, Weight: WeightLORE},
		{Kind: StepIndexProbe},
		{Kind: StepChain, Chain: ChainInner},
		{Kind: StepSample, Sample: SampleRestricted},
		{Kind: StepEvaluate},
		{Kind: StepExtract},
	},
	VariantCODLNoIndex: {
		{Kind: StepWeight, Weight: WeightLORE},
		{Kind: StepChain, Chain: ChainMerged},
		{Kind: StepSample, Sample: SampleShared},
		{Kind: StepEvaluate},
		{Kind: StepExtract},
	},
}

// Compile lowers a query onto the variant's stage list. CODR plans inherit
// the engine's attribute-tree caching configuration.
func (e *Engine) Compile(v Variant, q graph.NodeID, attr graph.AttrID) *Plan {
	return e.CompileSpec(Spec{Variant: v, Q: q, Attr: attr})
}

// CompileSpec lowers a typed query onto the variant's stage list. A
// single-positive-literal predicate is lowered to its attribute, so those
// queries compile to — and cache like — the legacy single-attribute plans.
// Filters drop the index probe (whose answer would ignore them) and insert a
// filter step between evaluate and extract.
func (e *Engine) CompileSpec(sp Spec) *Plan {
	attr, pred := sp.Attr, sp.Pred
	if pred != nil {
		if a, ok := pred.Single(); ok {
			attr, pred = a, nil
		}
	}
	k := sp.K
	if k <= 0 {
		k = e.p.K
	}
	pl := &Plan{Variant: sp.Variant, Q: sp.Q, Attr: attr, Pred: pred,
		Filters: sp.Filters, K: k, Adaptive: sp.Adaptive,
		CacheAttrTree: sp.Variant == VariantCODR && e.cfg.CacheAttrTrees,
		Steps:         planSteps[sp.Variant]}
	if len(pl.Filters) > 0 {
		steps := make([]Step, 0, len(pl.Steps)+1)
		for _, st := range pl.Steps {
			if st.Kind == StepIndexProbe {
				continue
			}
			if st.Kind == StepExtract {
				steps = append(steps, Step{Kind: StepFilter})
			}
			steps = append(steps, st)
		}
		pl.Steps = steps
	}
	return pl
}

// predCacheKey is the plan's shared-pool cache identity: single-attribute
// plans keep the legacy (attr, hash 0) key so existing pools stay hot;
// compound predicates key by their canonical normal-form hash.
func (pl *Plan) predCacheKey() predKey {
	if pl.Pred != nil {
		return predKey{attr: -1, hash: pl.Pred.Hash64()}
	}
	return predKey{attr: pl.Attr}
}

// adaptiveFor returns the adaptive configuration in effect for pl.
func (e *Engine) adaptiveFor(pl *Plan) Adaptive {
	if pl.Adaptive != nil {
		return *pl.Adaptive
	}
	return e.cfg.Adaptive
}

// execState threads intermediate results between plan stages.
type execState struct {
	rec      *core.Reclustering // from WeightLORE
	attrTree *hier.Tree         // from WeightGlobal
	ch       *core.Chain
	rrs      []*influence.RRGraph
	res      core.EvalResult
	// staged marks that an adaptive sample step already produced res (the
	// evaluate step then passes through); stages and gap annotate the sample
	// step's trace record and are cleared once recorded.
	staged bool
	stages int
	gap    float64
}

// Execute runs a compiled plan. rng is the query's deterministic stream;
// with the sample cache disabled, randomness is consumed in exactly the
// order the historical pipelines used, so answers are byte-identical to the
// pre-engine behavior for equal seeds. Error shapes match the historical
// pipelines: cancellation during sampling or evaluation wraps a
// *influence.CanceledError carrying partial progress.
//
// When the context carries a Recorder with a trace, every executed step
// emits a step span labeled (variant, kind, outcome), so the trace reads as
// the plan that actually ran. Step spans record no metrics and draw no
// randomness; instrumented execution stays byte-identical.
func (e *Engine) Execute(ctx context.Context, pl *Plan, rng *rand.Rand) (Community, error) {
	sc := e.acquire(rng)
	defer e.release(sc)
	r := obs.FromContext(ctx)
	variant := pl.Variant.String()
	var st execState
	for _, step := range pl.Steps {
		sp := r.StartStep(variant, step.Kind.String())
		com, outcome, done, err := e.runStep(ctx, pl, step, sc, rng, &st)
		// A staged sample step annotates its record with the realized stage
		// count and certified gap; every other step records zeros, which
		// EndStaged treats exactly as End.
		sp.EndStaged(outcome, st.stages, st.gap)
		st.stages, st.gap = 0, 0
		if err != nil {
			// Historical error shapes: a weight failure returns the zero
			// Community, sampling/evaluation failures mark Level -1.
			if step.Kind == StepWeight {
				return Community{}, err
			}
			return Community{Level: -1}, err
		}
		if done {
			return com, nil
		}
	}
	return Community{Level: -1}, nil
}

// runStep executes one plan step against st, returning the step's outcome
// label, whether the plan is done (com is then the answer), and any error.
// Factored out of Execute so the step span unconditionally Ends on every
// path (the spanend codvet shape).
func (e *Engine) runStep(ctx context.Context, pl *Plan, step Step, sc *queryScratch, rng *rand.Rand, st *execState) (com Community, outcome string, done bool, err error) {
	switch step.Kind {
	case StepWeight:
		if step.Weight == WeightGlobal {
			t, err := e.predTree(ctx, pl.Attr, pl.Pred, pl.CacheAttrTree, sc)
			if err != nil {
				return Community{}, errOutcome(err), false, err
			}
			st.attrTree = t
			if pl.Pred != nil {
				return Community{}, "predicate", false, nil
			}
			return Community{}, "global", false, nil
		}
		if pl.Pred != nil {
			in := e.predMask(sc, pl.Pred)
			rec, err := core.LorePredCtx(ctx, e.g, e.tree, pl.Q, in, e.p.Beta, e.p.Linkage)
			if err != nil {
				return Community{}, errOutcome(err), false, err
			}
			st.rec = rec
			return Community{}, "predicate", false, nil
		}
		rec, err := core.LoreCtx(ctx, e.g, e.tree, pl.Q, pl.Attr, e.p.Beta, e.p.Linkage)
		if err != nil {
			return Community{}, errOutcome(err), false, err
		}
		st.rec = rec
		return Community{}, "lore", false, nil

	case StepIndexProbe:
		if com, ok := e.probeIndex(ctx, pl.Q, pl.K, st.rec); ok {
			return com, "hit", true, nil
		}
		return Community{}, "miss", false, nil

	case StepChain:
		switch step.Chain {
		case ChainTree:
			st.ch = core.ChainFromTree(e.tree, pl.Q)
			return Community{}, "tree", false, nil
		case ChainAttr:
			st.ch = core.ChainFromTree(st.attrTree, pl.Q)
			return Community{}, "attr", false, nil
		case ChainInner:
			st.ch = core.InnerChain(e.g, e.tree, st.rec, pl.Q)
			return Community{}, "inner", false, nil
		case ChainMerged:
			st.ch = core.MergedChain(e.g, e.tree, st.rec, pl.Q)
			return Community{}, "merged", false, nil
		}
		return Community{}, "unknown", false, nil

	case StepSample:
		if ad := e.adaptiveFor(pl); ad.Enabled {
			// Bounded-error mode fuses sampling and evaluation: the pool
			// grows in stages, each swept and tested for certification, so
			// the step's outcome is the decision (early_stop/exhausted)
			// rather than the pool's provenance.
			outcome, stages, gap, err := e.runStaged(ctx, pl, step, sc, rng, st, ad)
			st.staged, st.stages, st.gap = true, stages, gap
			if err != nil {
				return Community{}, outcome, false, err
			}
			return Community{}, outcome, false, nil
		}
		if step.Sample == SampleRestricted {
			rrs, err := e.sampleRestricted(ctx, sc, st.rec, rng)
			if err != nil {
				return Community{}, errOutcome(err), false, err
			}
			st.rrs = rrs
			return Community{}, "restricted", false, nil
		}
		rrs, outcome, err := e.sampleShared(ctx, sc, pl.predCacheKey())
		if err != nil {
			return Community{}, errOutcome(err), false, err
		}
		st.rrs = rrs
		return Community{}, outcome, false, nil

	case StepEvaluate:
		if st.staged {
			// The adaptive sample step already evaluated; st.res is final.
			return Community{}, "staged", false, nil
		}
		res, err := core.CompressedEvaluateScratchCtx(ctx, st.ch, st.rrs, pl.K, sc.eval)
		if err != nil {
			return Community{}, errOutcome(err), false, err
		}
		st.res = res
		return Community{}, "ok", false, nil

	case StepFilter:
		lvl := e.applyFilters(st.ch, st.res, pl.Filters)
		if lvl == st.res.Level {
			return Community{}, "pass", false, nil
		}
		st.res.Level = lvl
		return Community{}, "cut", false, nil

	case StepExtract:
		com := communityFromChain(st.ch, st.res)
		if com.Found {
			return com, "found", true, nil
		}
		return com, "not_found", true, nil
	}
	return Community{}, "unknown", false, nil
}

// errOutcome labels a failed step: canceled for context errors (anywhere in
// the wrap chain), error otherwise.
func errOutcome(err error) string {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return "canceled"
	}
	return "error"
}

// probeIndex scans the HIMOR index top-down over the ancestors of C_ℓ (root
// first, C_ℓ last); the largest community where q is top-k answers directly.
// HIMOR ranks are exact sorted positions, so the probe is valid for any
// per-plan k override (plans with community filters skip it instead: the
// probe cannot honor them).
func (e *Engine) probeIndex(ctx context.Context, q graph.NodeID, k int, rec *core.Reclustering) (Community, bool) {
	r := obs.FromContext(ctx)
	lookup := r.StartSpan(obs.StageHimorLookup)
	anc := e.tree.Ancestors(rec.CL)
	for i := len(anc) - 1; i >= -1; i-- {
		v := rec.CL
		if i >= 0 {
			v = anc[i]
		}
		if rk := e.index.Rank(q, v); rk < k {
			lookup.EndItems(len(anc) - i)
			r.CountIndexHit()
			return Community{Nodes: e.tree.Members(v), Found: true, Level: -1,
				FromIndex: true, Rank: rk + 1}, true
		}
	}
	lookup.EndItems(len(anc) + 1)
	return Community{}, false
}

// sampleShared fills the θ·N whole-graph pool: from the per-predicate cache
// when enabled (the query rng is then unused — pool content is a pure
// function of seed, predicate key and epoch), else from the query rng
// (already bound to the scratch sampler) into the scratch arena,
// byte-identical to the historical influence.BatchCtx stream. The outcome
// labels the step span: cache_hit/cache_miss through the cache, sampled
// without one.
func (e *Engine) sampleShared(ctx context.Context, sc *queryScratch, pk predKey) ([]*influence.RRGraph, string, error) {
	count := e.p.Theta * e.g.N()
	if e.cache != nil {
		rrs, hit, err := e.cache.get(ctx, e, pk, count)
		if hit {
			return rrs, "cache_hit", err
		}
		return rrs, "cache_miss", err
	}
	rrs, err := influence.BatchIntoCtx(ctx, sc.sampler, count, sc.arena)
	return rrs, "sampled", err
}

// sampleRestricted draws θ·|C_ℓ| RR graphs confined to C_ℓ, sources drawn
// uniformly from the members by the query rng — the same draw order as the
// historical CODL loop, arena-backed.
func (e *Engine) sampleRestricted(ctx context.Context, sc *queryScratch, rec *core.Reclustering, rng *rand.Rand) ([]*influence.RRGraph, error) {
	members := rec.Sub.ToParent
	in := sc.memberMask(members)
	member := func(u graph.NodeID) bool { return in[u] }
	total := e.p.Theta * len(members)
	sample := obs.FromContext(ctx).StartSpan(obs.StageRRSample)
	for i := 0; i < total; i++ {
		if i%influence.PollEvery == 0 {
			if err := ctx.Err(); err != nil {
				sample.EndItems(i)
				return nil, &influence.CanceledError{
					Op: "engine: restricted rr sampling", Done: i, Total: total, Cause: err}
			}
		}
		sc.sampler.RRGraphWithinInto(sc.arena, members[rng.IntN(len(members))], member)
	}
	sample.EndItems(total)
	return sc.arena.Finalize(), nil
}

func communityFromChain(ch *core.Chain, res core.EvalResult) Community {
	if res.Level < 0 {
		return Community{Found: false, Level: -1}
	}
	com := Community{Nodes: ch.Members(res.Level), Found: true, Level: res.Level}
	if res.Ranks != nil {
		com.Rank = int(res.Ranks[res.Level])
	}
	return com
}

// predMask evaluates the predicate over every node into the scratch's mask
// (or a fresh slice when sc is nil). Consumers must finish with the mask
// before the scratch's member mask is next taken — both share storage.
func (e *Engine) predMask(sc *queryScratch, d *query.DNF) []bool {
	var in []bool
	if sc != nil {
		clear(sc.mask)
		in = sc.mask
	} else {
		in = make([]bool, e.g.N())
	}
	var node graph.NodeID
	has := func(a graph.AttrID) bool { return e.g.HasAttr(node, a) }
	for v := range in {
		node = graph.NodeID(v)
		in[v] = d.Eval(has)
	}
	return in
}

// applyFilters returns the largest chain level where q is top-k AND every
// community filter accepts the level's measures (-1 when none qualifies).
// Measures follow graph/metrics.go exactly: density = edges within / node
// pairs (0 below two nodes), conductance = cut / min(vol, 2M−vol) (0 for a
// whole zero-cut side, 1 otherwise on zero volume). All levels are measured
// in one O(N + M) pass: an edge is inside C_h iff both endpoint levels are
// ≤ h, and crosses C_h's cut iff exactly one is.
func (e *Engine) applyFilters(ch *core.Chain, res core.EvalResult, filters []query.Filter) int {
	L := ch.Len()
	if L == 0 || res.TopK == nil {
		return res.Level
	}
	within := make([]int64, L)  // edges whose outermost endpoint level is h
	cutDiff := make([]int64, L) // cut-interval difference array
	degSum := make([]int64, L)  // degree mass entering at level h
	e.g.ForEachEdge(func(u, v graph.NodeID, _ float64) {
		lo, hi := int(ch.Level(u)), int(ch.Level(v))
		if lo > hi {
			lo, hi = hi, lo
		}
		if hi < L {
			within[hi]++
		}
		if lo < L && lo != hi {
			cutDiff[lo]++
			if hi < L {
				cutDiff[hi]--
			}
		}
	})
	for u := 0; u < e.g.N(); u++ {
		if l := int(ch.Level(graph.NodeID(u))); l < L {
			degSum[l] += int64(e.g.Degree(graph.NodeID(u)))
		}
	}
	total := 2 * int64(e.g.M())
	best := -1
	var withinCum, cutCum, volCum int64
	for h := 0; h < L; h++ {
		withinCum += within[h]
		cutCum += cutDiff[h]
		volCum += degSum[h]
		if !res.TopK[h] {
			continue
		}
		if filtersAccept(filters, ch.Size(h), withinCum, cutCum, volCum, total) {
			best = h
		}
	}
	return best
}

// filtersAccept evaluates every filter against one community's measures.
func filtersAccept(filters []query.Filter, size int, within, cut, vol, total int64) bool {
	for _, f := range filters {
		var v float64
		switch f.Field {
		case query.FieldSize:
			v = float64(size)
		case query.FieldDensity:
			if size >= 2 {
				pairs := float64(size) * float64(size-1) / 2
				v = float64(within) / pairs
			}
		case query.FieldConductance:
			minVol := vol
			if out := total - vol; out < minVol {
				minVol = out
			}
			switch {
			case minVol > 0:
				v = float64(cut) / float64(minVol)
			case cut != 0:
				v = 1
			}
		}
		if !f.Accept(v) {
			return false
		}
	}
	return true
}
