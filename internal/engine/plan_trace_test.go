package engine

import (
	"context"
	"testing"

	"github.com/codsearch/cod/internal/graph"
	"github.com/codsearch/cod/internal/obs"
)

// These tests lock the PR-5 step-span contract: Execute records exactly one
// step span per executed plan step, labeled with the variant, the step kind,
// and an outcome from the step's documented vocabulary.

var stepOutcomes = map[string]map[string]bool{
	"weight":      {"lore": true, "global": true, "predicate": true},
	"index_probe": {"hit": true, "miss": true},
	"chain":       {"tree": true, "attr": true, "inner": true, "merged": true},
	"sample":      {"restricted": true, "cache_hit": true, "cache_miss": true, "sampled": true},
	"evaluate":    {"ok": true, "staged": true},
	"filter":      {"pass": true, "cut": true},
	"extract":     {"found": true, "not_found": true},
}

func traceSteps(t *testing.T, eng *Engine, variant Variant, q graph.NodeID, attr graph.AttrID, seed uint64) []obs.StepRecord {
	t.Helper()
	tr := obs.NewTrace()
	ctx := obs.WithRecorder(context.Background(), obs.NewRecorder(nil, tr))
	if _, err := eng.Execute(ctx, eng.Compile(variant, q, attr), graph.NewRand(seed)); err != nil {
		t.Fatalf("%v q=%d: %v", variant, q, err)
	}
	return tr.Steps()
}

func TestExecuteRecordsStepSpans(t *testing.T) {
	g, _ := attrGraph(t, 21)
	eng, err := Build(context.Background(), g, Params{K: 3, Theta: 3, Seed: 21}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, variant := range []Variant{VariantCODU, VariantCODR, VariantCODL, VariantCODLNoIndex} {
		for _, q := range queryNodes(g, 4) {
			steps := traceSteps(t, eng, variant, q, 0, 7)
			if len(steps) == 0 {
				t.Fatalf("%v q=%d: no step spans recorded", variant, q)
			}
			pl := eng.Compile(variant, q, 0)
			if len(steps) > len(pl.Steps) {
				t.Errorf("%v q=%d: %d step spans exceed the plan's %d steps",
					variant, q, len(steps), len(pl.Steps))
			}
			for i, st := range steps {
				if st.Variant != variant.String() {
					t.Errorf("%v q=%d step %d: variant label %q", variant, q, i, st.Variant)
				}
				if st.Kind != pl.Steps[i].Kind.String() {
					t.Errorf("%v q=%d step %d: kind %q, plan says %q",
						variant, q, i, st.Kind, pl.Steps[i].Kind)
				}
				valid := stepOutcomes[st.Kind]
				if valid == nil {
					t.Errorf("%v q=%d step %d: unknown kind %q", variant, q, i, st.Kind)
				} else if !valid[st.Outcome] {
					t.Errorf("%v q=%d step %d (%s): outcome %q outside the documented vocabulary",
						variant, q, i, st.Kind, st.Outcome)
				}
				if st.SpanStart < 0 || st.SpanEnd < st.SpanStart {
					t.Errorf("%v q=%d step %d: bad span range [%d,%d)",
						variant, q, i, st.SpanStart, st.SpanEnd)
				}
			}
			// A query either ran the full plan (last step is extract, which is
			// terminal) or ended early on an index-probe hit.
			last := steps[len(steps)-1]
			if len(steps) < len(pl.Steps) && !(last.Kind == "index_probe" && last.Outcome == "hit") {
				t.Errorf("%v q=%d: plan ended early at step %d/%d (%s/%s) without an index hit",
					variant, q, len(steps), len(pl.Steps), last.Kind, last.Outcome)
			}
		}
	}
}

// TestExecuteStepSpansNestStageSpans checks the index ranges: stage spans
// recorded while a step runs land inside that step's [SpanStart, SpanEnd)
// window, so the flight recorder can nest them.
func TestExecuteStepSpansNestStageSpans(t *testing.T) {
	g, _ := attrGraph(t, 21)
	eng, err := Build(context.Background(), g, Params{K: 3, Theta: 3, Seed: 21}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace()
	ctx := obs.WithRecorder(context.Background(), obs.NewRecorder(nil, tr))
	q := queryNodes(g, 1)[0]
	if _, err := eng.Execute(ctx, eng.Compile(VariantCODU, q, 0), graph.NewRand(7)); err != nil {
		t.Fatal(err)
	}
	steps, spans := tr.Steps(), tr.Spans()
	if len(spans) == 0 {
		t.Fatal("no stage spans recorded under the steps")
	}
	claimed := 0
	for _, st := range steps {
		if st.SpanEnd > len(spans) {
			t.Fatalf("step %s/%s span range [%d,%d) exceeds %d recorded spans",
				st.Variant, st.Kind, st.SpanStart, st.SpanEnd, len(spans))
		}
		claimed += st.SpanEnd - st.SpanStart
	}
	if claimed == 0 {
		t.Error("no stage span fell inside any step window; nesting is not wired")
	}
}

// TestExecuteWithStepTraceByteIdentical re-locks §9 at the engine layer for
// the step instrumentation specifically: tracing a plan's steps must not
// perturb the result.
func TestExecuteWithStepTraceByteIdentical(t *testing.T) {
	g, _ := attrGraph(t, 21)
	eng, err := Build(context.Background(), g, Params{K: 3, Theta: 3, Seed: 21}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, variant := range []Variant{VariantCODU, VariantCODR, VariantCODL, VariantCODLNoIndex} {
		for _, q := range queryNodes(g, 4) {
			want, err := eng.Execute(context.Background(), eng.Compile(variant, q, 0), graph.NewRand(7))
			if err != nil {
				t.Fatal(err)
			}
			ctx := obs.WithRecorder(context.Background(), obs.NewRecorder(nil, obs.NewTrace()))
			got, err := eng.Execute(ctx, eng.Compile(variant, q, 0), graph.NewRand(7))
			if err != nil {
				t.Fatal(err)
			}
			if comBytes(got) != comBytes(want) {
				t.Errorf("%v q=%d: step-traced run differs:\n got %s\nwant %s",
					variant, q, comBytes(got), comBytes(want))
			}
		}
	}
}

func TestEngineOccupancyStats(t *testing.T) {
	g, _ := attrGraph(t, 21)
	eng, err := Build(context.Background(), g, Params{K: 3, Theta: 3, Seed: 21}, Config{SampleCache: 4})
	if err != nil {
		t.Fatal(err)
	}
	if live, alloc := eng.PoolStats(); live != 0 || alloc != 0 {
		t.Errorf("fresh engine pool stats live=%d alloc=%d, want 0/0", live, alloc)
	}
	q := queryNodes(g, 1)[0]
	if _, err := eng.Execute(context.Background(), eng.Compile(VariantCODR, q, 0), graph.NewRand(7)); err != nil {
		t.Fatal(err)
	}
	live, alloc := eng.PoolStats()
	if live != 0 {
		t.Errorf("scratch live = %d after Execute returned, want 0", live)
	}
	if alloc < 1 {
		t.Errorf("scratch allocated = %d after a query, want >= 1", alloc)
	}
	pools, rrs := eng.SampleCacheStats()
	if pools < 1 || rrs < 1 {
		t.Errorf("sample cache stats pools=%d rrgraphs=%d after a CODR query with the cache on, want >= 1",
			pools, rrs)
	}
	// The RRGraph count must equal the sum over resident pools.
	if eng.cache != nil {
		var sum int64
		eng.cache.mu.Lock()
		for _, en := range eng.cache.entries {
			sum += en.counted
		}
		eng.cache.mu.Unlock()
		if sum != rrs {
			t.Errorf("rrgraphs gauge %d != sum of counted entries %d", rrs, sum)
		}
	}
}

func TestEngineStatsWithoutCache(t *testing.T) {
	g, _ := attrGraph(t, 21)
	eng, err := Build(context.Background(), g, Params{K: 3, Theta: 3, Seed: 21}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if pools, rrs := eng.SampleCacheStats(); pools != 0 || rrs != 0 {
		t.Errorf("cache-disabled stats pools=%d rrgraphs=%d, want 0/0", pools, rrs)
	}
}
