package engine

import (
	"context"
	"testing"

	"github.com/codsearch/cod/internal/graph"
	"github.com/codsearch/cod/internal/obs"
	"github.com/codsearch/cod/internal/query"
)

// These tests lock the PR-9 typed-query contract at the engine layer:
// CompileSpec lowering, predicate weighting, community filters, and the
// predicate-keyed sample cache.

// specDNF parses and normalizes a numeric-ID predicate expression.
func specDNF(t *testing.T, expr string) *query.DNF {
	t.Helper()
	p, err := query.Parse(expr)
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	if err := p.Resolve(nil, 1<<20); err != nil {
		t.Fatalf("resolve %q: %v", expr, err)
	}
	d, err := query.Normalize(p.Pred)
	if err != nil {
		t.Fatalf("normalize %q: %v", expr, err)
	}
	return d
}

// specFilters parses the filters out of a full query expression.
func specFilters(t *testing.T, expr string) []query.Filter {
	t.Helper()
	p, err := query.Parse(expr)
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	return p.Filters
}

// execSpec executes a compiled spec under a step trace and returns the
// community plus the recorded step spans.
func execSpec(t *testing.T, eng *Engine, sp Spec, seed uint64) (Community, []obs.StepRecord) {
	t.Helper()
	tr := obs.NewTrace()
	ctx := obs.WithRecorder(context.Background(), obs.NewRecorder(nil, tr))
	com, err := eng.Execute(ctx, eng.CompileSpec(sp), graph.NewRand(seed))
	if err != nil {
		t.Fatalf("execute spec %+v: %v", sp, err)
	}
	return com, tr.Steps()
}

// outcomeOf returns the recorded outcome of the first step of the kind,
// or "" when the step never ran.
func outcomeOf(steps []obs.StepRecord, kind string) string {
	for _, st := range steps {
		if st.Kind == kind {
			return st.Outcome
		}
	}
	return ""
}

func specEngine(t *testing.T, cfg Config) (*Engine, *graph.Graph) {
	t.Helper()
	g, _ := attrGraph(t, 21)
	eng, err := Build(context.Background(), g, Params{K: 3, Theta: 3, Seed: 21}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, g
}

// TestCompileSpecLowersSingleLiteral: a single-positive-literal predicate
// compiles to exactly the legacy single-attribute plan, and executes
// byte-identically to it.
func TestCompileSpecLowersSingleLiteral(t *testing.T) {
	eng, g := specEngine(t, Config{})
	d := specDNF(t, "1")
	for _, variant := range []Variant{VariantCODU, VariantCODR, VariantCODL, VariantCODLNoIndex} {
		for _, q := range queryNodes(g, 3) {
			legacy := eng.Compile(variant, q, 1)
			lowered := eng.CompileSpec(Spec{Variant: variant, Q: q, Pred: d})
			if lowered.Attr != 1 || lowered.Pred != nil {
				t.Fatalf("%v: single literal not lowered: attr=%d pred=%v",
					variant, lowered.Attr, lowered.Pred)
			}
			if lowered.K != legacy.K || len(lowered.Steps) != len(legacy.Steps) {
				t.Fatalf("%v: lowered plan shape differs: K=%d/%d steps=%d/%d",
					variant, lowered.K, legacy.K, len(lowered.Steps), len(legacy.Steps))
			}
			if lowered.predCacheKey() != legacy.predCacheKey() {
				t.Fatalf("%v: lowered cache key %+v != legacy %+v",
					variant, lowered.predCacheKey(), legacy.predCacheKey())
			}
			want, err := eng.Execute(context.Background(), legacy, graph.NewRand(7))
			if err != nil {
				t.Fatal(err)
			}
			got, err := eng.Execute(context.Background(), lowered, graph.NewRand(7))
			if err != nil {
				t.Fatal(err)
			}
			if comBytes(got) != comBytes(want) {
				t.Errorf("%v q=%d: lowered DSL run differs:\n got %s\nwant %s",
					variant, q, comBytes(got), comBytes(want))
			}
		}
	}
}

// TestCompileSpecFiltersReshapeSteps: filters drop the index probe and
// insert a filter step immediately before extract; the K override and
// per-plan adaptive override are carried through.
func TestCompileSpecFiltersReshapeSteps(t *testing.T) {
	eng, _ := specEngine(t, Config{})
	fs := specFilters(t, "0 and size>=3")
	ad := &Adaptive{Enabled: true}
	pl := eng.CompileSpec(Spec{Variant: VariantCODL, Q: 0, Attr: 0, Filters: fs, K: 2, Adaptive: ad})
	if pl.K != 2 {
		t.Errorf("K override lost: %d", pl.K)
	}
	if pl.Adaptive != ad {
		t.Errorf("adaptive override lost")
	}
	var kinds []string
	for _, st := range pl.Steps {
		kinds = append(kinds, st.Kind.String())
	}
	want := []string{"weight", "chain", "sample", "evaluate", "filter", "extract"}
	if len(kinds) != len(want) {
		t.Fatalf("filtered CODL steps %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("filtered CODL steps %v, want %v", kinds, want)
		}
	}
	// Without filters the probe stays and no filter step is compiled.
	plain := eng.CompileSpec(Spec{Variant: VariantCODL, Q: 0, Attr: 0})
	if plain.K != eng.Params().K {
		t.Errorf("default K not filled: %d", plain.K)
	}
	for _, st := range plain.Steps {
		if st.Kind == StepFilter {
			t.Fatalf("unfiltered plan compiled a filter step")
		}
	}
}

// TestPredCacheKey locks the cache identity: single-attribute plans keep the
// legacy (attr, 0) key, compound predicates key by canonical hash —
// however the predicate was spelled.
func TestPredCacheKey(t *testing.T) {
	eng, _ := specEngine(t, Config{})
	single := eng.CompileSpec(Spec{Variant: VariantCODU, Q: 0, Attr: 1})
	if k := single.predCacheKey(); k != (predKey{attr: 1}) {
		t.Errorf("single-attr key %+v, want {1 0}", k)
	}
	a := eng.CompileSpec(Spec{Variant: VariantCODU, Q: 0, Pred: specDNF(t, "0 OR 1")})
	b := eng.CompileSpec(Spec{Variant: VariantCODU, Q: 0, Pred: specDNF(t, "1 | 0")})
	ka, kb := a.predCacheKey(), b.predCacheKey()
	if ka != kb {
		t.Errorf("equivalent predicates key differently: %+v vs %+v", ka, kb)
	}
	if ka.attr != -1 || ka.hash == 0 {
		t.Errorf("compound key %+v, want attr -1 and nonzero hash", ka)
	}
}

// TestPoolSeedPreservesLegacySingleAttrSeeds: a zero predicate hash must
// reproduce the pre-DSL pool seed formula exactly, so pools for
// single-attribute queries stay hot across the migration.
func TestPoolSeedPreservesLegacySingleAttrSeeds(t *testing.T) {
	for _, seed := range []uint64{0, 21, 1 << 40} {
		for _, attr := range []graph.AttrID{0, 1, 7} {
			for _, epoch := range []uint64{0, 1, 9} {
				got := poolSeed(seed, predKey{attr: attr}, epoch)
				want := graph.ItemSeed(graph.ItemSeed(seed^0xcac4ed, int(attr)+1), int(epoch))
				if got != want {
					t.Fatalf("poolSeed(%d, attr=%d, epoch=%d) = %#x, want legacy %#x",
						seed, attr, epoch, got, want)
				}
			}
		}
	}
	// Distinct compound hashes must separate streams.
	a := poolSeed(21, predKey{attr: -1, hash: 0x1234}, 0)
	b := poolSeed(21, predKey{attr: -1, hash: 0x5678}, 0)
	if a == b {
		t.Errorf("distinct predicate hashes share a pool seed")
	}
}

// TestPredicateWeightOutcomes: compound predicates run the predicate
// weighting in every weighted variant, deterministically, with step
// outcomes inside the documented vocabulary.
func TestPredicateWeightOutcomes(t *testing.T) {
	eng, g := specEngine(t, Config{})
	d := specDNF(t, "0 | 1")
	for _, variant := range []Variant{VariantCODR, VariantCODL, VariantCODLNoIndex} {
		for _, q := range queryNodes(g, 3) {
			sp := Spec{Variant: variant, Q: q, Pred: d}
			com, steps := execSpec(t, eng, sp, 7)
			if got := outcomeOf(steps, "weight"); got != "predicate" {
				t.Errorf("%v q=%d: weight outcome %q, want predicate", variant, q, got)
			}
			for _, st := range steps {
				valid := stepOutcomes[st.Kind]
				if valid == nil || !valid[st.Outcome] {
					t.Errorf("%v q=%d: step %s outcome %q outside vocabulary",
						variant, q, st.Kind, st.Outcome)
				}
			}
			again, _ := execSpec(t, eng, sp, 7)
			if comBytes(again) != comBytes(com) {
				t.Errorf("%v q=%d: predicate run not deterministic:\n got %s\nwant %s",
					variant, q, comBytes(again), comBytes(com))
			}
		}
	}
}

// TestFilterPassAndCut: a trivially satisfied filter records pass and leaves
// the answer unchanged; an unsatisfiable one records cut and forces
// not-found.
func TestFilterPassAndCut(t *testing.T) {
	eng, g := specEngine(t, Config{})
	passed, cut := 0, 0
	for _, q := range queryNodes(g, 5) {
		base, _ := execSpec(t, eng, Spec{Variant: VariantCODU, Q: q, Attr: 0}, 7)

		com, steps := execSpec(t, eng,
			Spec{Variant: VariantCODU, Q: q, Attr: 0, Filters: specFilters(t, "0 and size>=1")}, 7)
		if got := outcomeOf(steps, "filter"); got != "pass" {
			t.Errorf("q=%d: size>=1 filter outcome %q, want pass", q, got)
		} else {
			passed++
		}
		if comBytes(com) != comBytes(base) {
			t.Errorf("q=%d: size>=1 filter changed the answer:\n got %s\nwant %s",
				q, comBytes(com), comBytes(base))
		}

		com, steps = execSpec(t, eng,
			Spec{Variant: VariantCODU, Q: q, Attr: 0, Filters: specFilters(t, "0 and size>=100000")}, 7)
		if com.Found {
			t.Errorf("q=%d: impossible size filter still found %s", q, comBytes(com))
		}
		if base.Found {
			if got := outcomeOf(steps, "filter"); got != "cut" {
				t.Errorf("q=%d: impossible filter outcome %q, want cut", q, got)
			} else {
				cut++
			}
		}
	}
	if passed == 0 || cut == 0 {
		t.Fatalf("filter outcomes not exercised: pass=%d cut=%d", passed, cut)
	}
}

// TestFilteredCommunitySatisfiesFilters cross-checks applyFilters against
// the ground-truth metrics: every community returned under filters must
// satisfy them when re-measured with graph.TopologyDensity / Conductance
// on the extracted node set.
func TestFilteredCommunitySatisfiesFilters(t *testing.T) {
	eng, g := specEngine(t, Config{})
	fs := specFilters(t, "0 and size>=3 and density>=0.05 and conductance<=0.95")
	found := 0
	for _, variant := range []Variant{VariantCODU, VariantCODR, VariantCODL, VariantCODLNoIndex} {
		for _, q := range queryNodes(g, 5) {
			com, _ := execSpec(t, eng, Spec{Variant: variant, Q: q, Attr: 0, Filters: fs}, 7)
			if !com.Found {
				continue
			}
			found++
			size := float64(com.Size())
			den := graph.TopologyDensity(g, com.Nodes)
			con := graph.Conductance(g, com.Nodes)
			for _, f := range fs {
				v := 0.0
				switch f.Field {
				case query.FieldSize:
					v = size
				case query.FieldDensity:
					v = den
				case query.FieldConductance:
					v = con
				}
				if !f.Accept(v) {
					t.Errorf("%v q=%d: community violates %s (measured %g): %s",
						variant, q, f, v, comBytes(com))
				}
			}
		}
	}
	if found == 0 {
		t.Fatal("no filtered query found a community; filters never validated")
	}
}

// TestCompoundPredSampleCacheShared: semantically equal compound predicates
// share one cached sample pool — the second spelling hits — and a lowered
// single-literal DSL query hits the pool a legacy query populated.
func TestCompoundPredSampleCacheShared(t *testing.T) {
	eng, g := specEngine(t, Config{SampleCache: 4})
	q := queryNodes(g, 1)[0]

	first, steps := execSpec(t, eng, Spec{Variant: VariantCODLNoIndex, Q: q, Pred: specDNF(t, "0 OR 1")}, 7)
	if got := outcomeOf(steps, "sample"); got != "cache_miss" {
		t.Fatalf("first compound query sample outcome %q, want cache_miss", got)
	}
	second, steps := execSpec(t, eng, Spec{Variant: VariantCODLNoIndex, Q: q, Pred: specDNF(t, "1 | 0")}, 7)
	if got := outcomeOf(steps, "sample"); got != "cache_hit" {
		t.Errorf("respelled compound query sample outcome %q, want cache_hit", got)
	}
	if comBytes(second) != comBytes(first) {
		t.Errorf("cache hit differs from miss:\n got %s\nwant %s", comBytes(second), comBytes(first))
	}

	// Legacy single-attribute pool, then the lowered DSL equivalent hits it.
	want, err := eng.Execute(context.Background(), eng.Compile(VariantCODU, q, 1), graph.NewRand(9))
	if err != nil {
		t.Fatal(err)
	}
	got, steps := execSpec(t, eng, Spec{Variant: VariantCODU, Q: q, Pred: specDNF(t, "1")}, 9)
	if o := outcomeOf(steps, "sample"); o != "cache_hit" {
		t.Errorf("lowered single-literal query sample outcome %q, want cache_hit", o)
	}
	if comBytes(got) != comBytes(want) {
		t.Errorf("lowered DSL run differs from legacy over the shared pool:\n got %s\nwant %s",
			comBytes(got), comBytes(want))
	}
}

// TestKOverrideMonotone: k=1 is strictly harder than the default k=3 over
// the same chain and pool, so any k=1 find implies a k=3 find and carries
// rank 1.
func TestKOverrideMonotone(t *testing.T) {
	eng, g := specEngine(t, Config{})
	for _, q := range queryNodes(g, 6) {
		strict, _ := execSpec(t, eng, Spec{Variant: VariantCODU, Q: q, Attr: 0, K: 1}, 7)
		loose, _ := execSpec(t, eng, Spec{Variant: VariantCODU, Q: q, Attr: 0, K: 3}, 7)
		if strict.Found {
			if !loose.Found {
				t.Errorf("q=%d: found at k=1 but not k=3", q)
			}
			if strict.Rank != 1 {
				t.Errorf("q=%d: k=1 community has rank %d, want 1", q, strict.Rank)
			}
		}
	}
}

// TestRankReported: found communities report q's influence rank within
// [1, k] on the evaluation path.
func TestRankReported(t *testing.T) {
	eng, g := specEngine(t, Config{})
	checked := 0
	for _, q := range queryNodes(g, 6) {
		com, _ := execSpec(t, eng, Spec{Variant: VariantCODU, Q: q, Attr: 0}, 7)
		if !com.Found {
			continue
		}
		checked++
		if com.Rank < 1 || com.Rank > eng.Params().K {
			t.Errorf("q=%d: rank %d outside [1, %d]", q, com.Rank, eng.Params().K)
		}
	}
	if checked == 0 {
		t.Fatal("no community found; rank reporting never checked")
	}
}

// TestAdaptivePerPlanOverride: a single-stage per-plan adaptive override on
// a non-adaptive engine exhausts the full budget and is byte-identical to
// the plain evaluation; filters compose with the staged path.
func TestAdaptivePerPlanOverride(t *testing.T) {
	eng, g := specEngine(t, Config{})
	for _, q := range queryNodes(g, 4) {
		want, _ := execSpec(t, eng, Spec{Variant: VariantCODU, Q: q, Attr: 0}, 7)
		sp := Spec{Variant: VariantCODU, Q: q, Attr: 0, Adaptive: &Adaptive{Enabled: true, Stages: 1}}
		got, steps := execSpec(t, eng, sp, 7)
		if o := outcomeOf(steps, "sample"); o != "exhausted" {
			t.Errorf("q=%d: single-stage adaptive sample outcome %q, want exhausted", q, o)
		}
		if o := outcomeOf(steps, "evaluate"); o != "staged" {
			t.Errorf("q=%d: adaptive evaluate outcome %q, want staged", q, o)
		}
		if comBytes(got) != comBytes(want) {
			t.Errorf("q=%d: single-stage adaptive differs:\n got %s\nwant %s",
				q, comBytes(got), comBytes(want))
		}
	}
	// Adaptive + filters: the staged path must honor filters too.
	fs := specFilters(t, "0 and size>=100000")
	for _, q := range queryNodes(g, 3) {
		sp := Spec{Variant: VariantCODU, Q: q, Attr: 0, Filters: fs,
			Adaptive: &Adaptive{Enabled: true}}
		com, _ := execSpec(t, eng, sp, 7)
		if com.Found {
			t.Errorf("q=%d: impossible filter passed under adaptive evaluation: %s",
				q, comBytes(com))
		}
	}
}
