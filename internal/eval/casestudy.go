package eval

import (
	"github.com/codsearch/cod/internal/acs"
	"github.com/codsearch/cod/internal/core"
	"github.com/codsearch/cod/internal/dataset"
	"github.com/codsearch/cod/internal/graph"
)

// CaseCommunity describes one method's answer in the §V-E case study.
type CaseCommunity struct {
	Method      string
	Size        int
	QueryRank   int // ground-truth influence rank of q inside the community (0-based)
	Conductance float64
	Found       bool
}

// CaseStudy is the §V-E comparison for one query node at k=1.
type CaseStudy struct {
	Query   graph.NodeID
	Attr    graph.AttrID
	Results []CaseCommunity
}

// RunCaseStudy mirrors §V-E: for up to maxCases query nodes where CODL (at
// k=1) discovers a characteristic community, compare the communities found
// by CODL, ATC, ACQ and CAC on size, the query node's ground-truth influence
// rank inside each community, and conductance.
func RunCaseStudy(cfg Config, maxCases int) ([]CaseStudy, error) {
	cfg = cfg.withDefaults()
	e, err := newEnv(cfg, true)
	if err != nil {
		return nil, err
	}
	lc := newLoreCache(e)
	acsIdx := acs.NewIndex(e.g)
	rankRng := e.rng(0x9999)

	build := func(q dataset.Query, requireATC bool) (CaseStudy, bool, error) {
		codlAns, err := codlAnswer(e, lc, q, []int{1}, 0xaaaa)
		if err != nil {
			return CaseStudy{}, false, err
		}
		codlNodes := codlAns[1]
		if len(codlNodes) < 5 || len(codlNodes) == e.g.N() {
			return CaseStudy{}, false, nil // uninformative case
		}
		atc, _ := acsIdx.ATC(q.Node, q.Attr)
		if requireATC && len(atc) == 0 {
			return CaseStudy{}, false, nil
		}
		cs := CaseStudy{Query: q.Node, Attr: q.Attr}
		add := func(method string, nodes []graph.NodeID) {
			cc := CaseCommunity{Method: method, Found: len(nodes) > 0}
			if cc.Found {
				cc.Size = len(nodes)
				cc.QueryRank = core.ExactRankWithin(e.g, e.model, nodes, q.Node, cfg.PrecisionSets, rankRng)
				cc.Conductance = graph.Conductance(e.g, nodes)
			}
			cs.Results = append(cs.Results, cc)
		}
		add(MethodCODL, codlNodes)
		add(MethodATC, atc)
		acq, _ := acsIdx.ACQ(q.Node, q.Attr)
		add(MethodACQ, acq)
		cac, _ := acsIdx.CAC(q.Node, q.Attr)
		add(MethodCAC, cac)
		return cs, true, nil
	}

	var out []CaseStudy
	used := map[graph.NodeID]bool{}
	// First pass prefers queries where ATC also answers, like the paper's
	// side-by-side comparison; the second pass fills with CODL-only cases.
	for _, requireATC := range []bool{true, false} {
		for _, q := range e.queries {
			if len(out) >= maxCases {
				return out, nil
			}
			if used[q.Node] {
				continue
			}
			cs, ok, err := build(q, requireATC)
			if err != nil {
				return nil, err
			}
			if ok {
				used[q.Node] = true
				out = append(out, cs)
			}
		}
	}
	return out, nil
}
