package eval

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func tinyConfig() Config {
	return Config{
		Dataset:       "tiny",
		Seed:          1,
		NumQueries:    8,
		Theta:         5,
		Ks:            []int{1, 3, 5},
		PrecisionSets: 40,
	}
}

func TestRunEffectivenessTiny(t *testing.T) {
	res, err := RunEffectiveness(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Dataset != "tiny" || len(res.PerMethod) != 6 {
		t.Fatalf("result shape: %+v", res)
	}
	for _, m := range AllMethods() {
		perK := res.PerMethod[m]
		if len(perK) != 3 {
			t.Errorf("%s: %d ks", m, len(perK))
		}
		// Monotonicity of |C*| in k for hierarchical methods: a looser rank
		// requirement can only enlarge the characteristic community.
		if m == MethodCODU || m == MethodCODL {
			if perK[1].AvgSize > perK[5].AvgSize+1e-9 {
				t.Errorf("%s: avg size not monotone in k: k1=%.2f k5=%.2f",
					m, perK[1].AvgSize, perK[5].AvgSize)
			}
		}
		for k, meas := range perK {
			if meas.Total != 8 {
				t.Errorf("%s k=%d: total %d", m, k, meas.Total)
			}
			if meas.Served > meas.Total {
				t.Errorf("%s k=%d: served > total", m, k)
			}
			if meas.AvgTopoDensity < 0 || meas.AvgTopoDensity > 1 ||
				meas.AvgAttrDensity < 0 || meas.AvgAttrDensity > 1 {
				t.Errorf("%s k=%d: densities out of range: %+v", m, k, meas)
			}
		}
	}
	// The hierarchical methods must serve queries on this easy dataset.
	if res.PerMethod[MethodCODL][5].Served == 0 {
		t.Error("CODL served no queries at k=5")
	}
	var buf bytes.Buffer
	WriteEffectiveness(&buf, res)
	if !strings.Contains(buf.String(), "CODL") {
		t.Error("report missing CODL")
	}
}

func TestRunFiveDeepestTiny(t *testing.T) {
	res, err := RunFiveDeepest(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{MethodCODU, MethodCODR, MethodCODL} {
		s, ok := res.AvgSize[m]
		if !ok {
			t.Fatalf("missing %s", m)
		}
		for i := 1; i < 5; i++ {
			if s[i] < s[i-1]-1e-9 {
				t.Errorf("%s: five-deepest sizes not monotone: %v", m, s)
			}
		}
		if s[0] < 1 {
			t.Errorf("%s: deepest community smaller than 1: %v", m, s)
		}
	}
	var buf bytes.Buffer
	WriteFig4(&buf, res)
	if !strings.Contains(buf.String(), "Fig.4") {
		t.Error("report header missing")
	}
}

func TestRunNetworkStatsTiny(t *testing.T) {
	res, err := RunNetworkStats(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 120 {
		t.Errorf("N = %d", res.N)
	}
	if res.AvgHLen <= 1 {
		t.Errorf("avg |H| = %f", res.AvgHLen)
	}
	var buf bytes.Buffer
	WriteTableI(&buf, []*HierarchyStats{res})
	if !strings.Contains(buf.String(), "tiny") {
		t.Error("table I missing row")
	}
}

func TestRunCompressedVsIndependentTiny(t *testing.T) {
	cfg := tinyConfig()
	cfg.NumQueries = 4
	cfg.Thetas = []int{5, 10}
	rows, err := RunCompressedVsIndependent(cfg, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 (2 thetas x 2 methods)", len(rows))
	}
	for _, r := range rows {
		if r.Total != 4 {
			t.Errorf("%s θ=%d: total %d", r.Method, r.Theta, r.Total)
		}
		if r.Precision < 0 || r.Precision > 1 {
			t.Errorf("precision out of range: %v", r.Precision)
		}
	}
	var buf bytes.Buffer
	WriteFig8(&buf, rows)
	if !strings.Contains(buf.String(), "Compressed") {
		t.Error("fig8 report missing")
	}
}

func TestRunRuntimeTiny(t *testing.T) {
	cfg := tinyConfig()
	cfg.NumQueries = 4
	rows, err := RunRuntime(cfg, 5, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Method] = true
		if r.Queries == 0 && !r.TimedOut {
			t.Errorf("%s: no queries processed", r.Method)
		}
	}
	if !names[MethodCODL] || !names[MethodCODLMinus] || !names[MethodCODR] {
		t.Errorf("missing method rows: %v", names)
	}
	var buf bytes.Buffer
	WriteFig9(&buf, rows)
	if !strings.Contains(buf.String(), "CODL") {
		t.Error("fig9 report missing")
	}
}

func TestRunIndexOverheadTiny(t *testing.T) {
	row, err := RunIndexOverhead(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if row.IndexMB <= 0 || row.InputMB <= 0 || row.BuildTime <= 0 {
		t.Errorf("degenerate overhead row: %+v", row)
	}
	var buf bytes.Buffer
	WriteTableII(&buf, []*TableIIRow{row})
	if !strings.Contains(buf.String(), "tiny") {
		t.Error("table II missing row")
	}
}

func TestRunCaseStudyTiny(t *testing.T) {
	cfg := tinyConfig()
	cases, err := RunCaseStudy(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, cs := range cases {
		if len(cs.Results) != 4 {
			t.Errorf("case q=%d has %d results", cs.Query, len(cs.Results))
		}
		if cs.Results[0].Method != MethodCODL || !cs.Results[0].Found {
			t.Errorf("first result must be a found CODL community: %+v", cs.Results[0])
		}
	}
	var buf bytes.Buffer
	WriteCaseStudies(&buf, cases)
	_ = buf
}

func TestGlobalInfluences(t *testing.T) {
	cfg := tinyConfig()
	e, err := newEnv(cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	infl := e.glInfl
	if len(infl) != e.g.N() {
		t.Fatalf("length %d", len(infl))
	}
	for v, x := range infl {
		if x < 0 || x > float64(e.g.N()) {
			t.Errorf("influence(%d) = %f out of range", v, x)
		}
	}
	// influence is at least ~1 in expectation for any node (it activates itself)
	sum := 0.0
	for _, x := range infl {
		sum += x
	}
	if sum/float64(len(infl)) < 0.5 {
		t.Errorf("average influence %.2f implausibly low", sum/float64(len(infl)))
	}
}
