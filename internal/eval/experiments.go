package eval

import (
	"fmt"
	"math/rand/v2"

	"github.com/codsearch/cod/internal/core"
	"github.com/codsearch/cod/internal/dataset"
	"github.com/codsearch/cod/internal/graph"
	"github.com/codsearch/cod/internal/hac"
	"github.com/codsearch/cod/internal/hier"
	"github.com/codsearch/cod/internal/influence"
)

// Config parameterizes the experiment runners. Zero values take the paper's
// defaults (k ∈ 1..5, θ = 10, β = 1, 100 queries).
type Config struct {
	Dataset       string
	Seed          uint64
	NumQueries    int
	Theta         int
	Ks            []int
	Beta          float64
	Thetas        []int // Fig. 8 sweep; default {10, 20, 40, 80}
	PrecisionSets int   // ground-truth RR sets per community node; default 200
	Linkage       hac.Linkage
}

func (c Config) withDefaults() Config {
	if c.Dataset == "" {
		c.Dataset = "cora"
	}
	if c.NumQueries <= 0 {
		c.NumQueries = 100
	}
	if c.Theta <= 0 {
		c.Theta = 10
	}
	if len(c.Ks) == 0 {
		c.Ks = []int{1, 2, 3, 4, 5}
	}
	if c.Beta <= 0 {
		c.Beta = 1
	}
	if len(c.Thetas) == 0 {
		c.Thetas = []int{10, 20, 40, 80}
	}
	if c.PrecisionSets <= 0 {
		c.PrecisionSets = 200
	}
	return c
}

// env bundles the per-dataset state shared across experiment runners.
type env struct {
	cfg     Config
	ds      *dataset.Dataset
	g       *graph.Graph
	model   influence.Model
	tree    *hier.Tree
	index   *core.Himor
	queries []dataset.Query
	// glInfl[v] is the estimated influence of v on the whole graph.
	glInfl []float64
}

// newEnv loads the dataset, clusters it, optionally builds the HIMOR index,
// samples the query workload and precomputes global influences.
func newEnv(cfg Config, buildIndex bool) (*env, error) {
	cfg = cfg.withDefaults()
	ds, err := dataset.Load(cfg.Dataset, cfg.Seed)
	if err != nil {
		return nil, err
	}
	e := &env{cfg: cfg, ds: ds, g: ds.G, model: influence.NewWeightedCascade(ds.G)}
	e.tree, err = hac.Cluster(e.g, cfg.Linkage)
	if err != nil {
		return nil, fmt.Errorf("eval: clustering %s: %w", cfg.Dataset, err)
	}
	if buildIndex {
		e.index = core.BuildHimor(e.g, e.tree, e.model, cfg.Theta, graph.NewRand(cfg.Seed^0xbeef))
	}
	e.queries = dataset.Queries(e.g, cfg.NumQueries, graph.NewRand(cfg.Seed^0xcafe))
	e.glInfl = GlobalInfluences(e.g, cfg.Theta, graph.NewRand(cfg.Seed^0xfeed))
	return e, nil
}

func (e *env) rng(salt uint64) *rand.Rand { return graph.NewRand(e.cfg.Seed ^ salt) }

// sharedPool samples one Θ = θ·n pool of RR graphs reused across queries in
// effectiveness experiments (sampling is query-independent, so reuse is
// unbiased per query; timing experiments sample per query instead).
func (e *env) sharedPool(salt uint64) []*influence.RRGraph {
	s := influence.NewSampler(e.g, e.model, e.rng(salt))
	return s.Batch(e.cfg.Theta * e.g.N())
}

// loreCache runs LORE for one query against the non-attributed tree. (The
// attribute weighting is applied to C_ℓ's induced subgraph inside Lore, so
// no per-attribute caching is needed anymore; the type remains as the
// harness's seam for LORE invocations.)
type loreCache struct {
	e *env
}

func newLoreCache(e *env) *loreCache { return &loreCache{e: e} }

func (lc *loreCache) run(q dataset.Query) (*core.Reclustering, error) {
	return core.Lore(lc.e.g, lc.e.tree, q.Node, q.Attr, lc.e.cfg.Beta, lc.e.cfg.Linkage)
}

// codlAnswer evaluates Algorithm 3 for one query and every k in ks, reusing
// the LORE reclustering and one restricted sample pool across the ks.
func codlAnswer(e *env, lc *loreCache, q dataset.Query, ks []int, salt uint64) (map[int][]graph.NodeID, error) {
	rec, err := lc.run(q)
	if err != nil {
		return nil, err
	}
	out := make(map[int][]graph.NodeID, len(ks))
	anc := e.tree.Ancestors(rec.CL)
	var innerRes map[int]int // k -> level, computed lazily
	var inner *core.Chain
	for _, k := range ks {
		served := false
		for i := len(anc) - 1; i >= -1; i-- {
			v := rec.CL
			if i >= 0 {
				v = anc[i]
			}
			if e.index.Rank(q.Node, v) < k {
				out[k] = e.tree.Members(v)
				served = true
				break
			}
		}
		if served {
			continue
		}
		if innerRes == nil {
			innerRes = map[int]int{}
			inner = core.InnerChain(e.g, e.tree, rec, q.Node)
			members := rec.Sub.ToParent
			in := make([]bool, e.g.N())
			for _, v := range members {
				in[v] = true
			}
			member := func(u graph.NodeID) bool { return in[u] }
			rng := e.rng(salt ^ uint64(q.Node)<<16)
			s := influence.NewSampler(e.g, e.model, rng)
			rrs := make([]*influence.RRGraph, e.cfg.Theta*len(members))
			for i := range rrs {
				rrs[i] = s.RRGraphWithin(members[rng.IntN(len(members))], member)
			}
			for _, kk := range ks {
				innerRes[kk] = core.CompressedEvaluate(inner, rrs, kk).Level
			}
		}
		if lvl := innerRes[k]; lvl >= 0 {
			out[k] = inner.Members(lvl)
		}
	}
	return out, nil
}
