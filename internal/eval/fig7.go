package eval

import (
	"github.com/codsearch/cod/internal/acs"
	"github.com/codsearch/cod/internal/core"
	"github.com/codsearch/cod/internal/dataset"
	"github.com/codsearch/cod/internal/engine"
	"github.com/codsearch/cod/internal/graph"
)

// Method names, in the paper's legend order.
const (
	MethodACQ  = "ACQ"
	MethodATC  = "ATC"
	MethodCAC  = "CAC"
	MethodCODU = "CODU"
	MethodCODR = "CODR"
	MethodCODL = "CODL"
)

// AllMethods lists every compared method.
func AllMethods() []string {
	return []string{MethodACQ, MethodATC, MethodCAC, MethodCODU, MethodCODR, MethodCODL}
}

// EffectivenessResult holds Fig. 7 data for one dataset: per method, per k,
// the four effectiveness measures.
type EffectivenessResult struct {
	Dataset string
	Ks      []int
	// PerMethod[method][k] -> Measures
	PerMethod map[string]map[int]Measures
}

// RunEffectiveness regenerates the Fig. 7 rows for one dataset: average
// |C*|, ρ(C*), φ(C*) and I(q) for k = 1..5 across the six methods.
func RunEffectiveness(cfg Config) (*EffectivenessResult, error) {
	cfg = cfg.withDefaults()
	e, err := newEnv(cfg, true)
	if err != nil {
		return nil, err
	}
	res := &EffectivenessResult{
		Dataset:   cfg.Dataset,
		Ks:        cfg.Ks,
		PerMethod: map[string]map[int]Measures{},
	}

	// Per-query answers per method per k.
	type answer map[int][]graph.NodeID // k -> community (nil = unserved)
	answers := map[string][]answer{}
	for _, m := range AllMethods() {
		answers[m] = make([]answer, len(e.queries))
	}

	// --- ACS baselines: structure independent of k; a community only counts
	// when q is top-k influential in it (the paper's protocol). The shared
	// acs.Index caches the core/truss decompositions across queries.
	acsIdx := acs.NewIndex(e.g)
	rankRng := e.rng(0x1111)
	for qi, q := range e.queries {
		for _, m := range []string{MethodACQ, MethodATC, MethodCAC} {
			var comm []graph.NodeID
			switch m {
			case MethodACQ:
				comm, _ = acsIdx.ACQ(q.Node, q.Attr)
			case MethodATC:
				comm, _ = acsIdx.ATC(q.Node, q.Attr)
			case MethodCAC:
				comm, _ = acsIdx.CAC(q.Node, q.Attr)
			}
			ans := answer{}
			if len(comm) > 1 {
				rank := core.ExactRankWithin(e.g, e.model, comm, q.Node, cfg.PrecisionSets/4+1, rankRng)
				for _, k := range cfg.Ks {
					if rank < k {
						ans[k] = comm
					}
				}
			}
			answers[m][qi] = ans
		}
	}

	// --- CODU: one chain per query over the shared non-attributed tree.
	pool := e.sharedPool(0x2222)
	for qi, q := range e.queries {
		ch := core.ChainFromTree(e.tree, q.Node)
		ans := answer{}
		for _, k := range cfg.Ks {
			if lvl := core.CompressedEvaluate(ch, pool, k).Level; lvl >= 0 {
				ans[k] = ch.Members(lvl)
			}
		}
		answers[MethodCODU][qi] = ans
	}

	// --- CODR: recluster g_ℓ per attribute (cached), shared sample pool.
	codr := engine.NewCODR(e.g, engine.Params{K: 5, Theta: cfg.Theta, Beta: cfg.Beta, Linkage: cfg.Linkage})
	codr.CacheHierarchies = true
	for qi, q := range e.queries {
		t, err := codr.Hierarchy(q.Attr)
		if err != nil {
			return nil, err
		}
		ch := core.ChainFromTree(t, q.Node)
		ans := answer{}
		for _, k := range cfg.Ks {
			if lvl := core.CompressedEvaluate(ch, pool, k).Level; lvl >= 0 {
				ans[k] = ch.Members(lvl)
			}
		}
		answers[MethodCODR][qi] = ans
	}

	// --- CODL: LORE + HIMOR (Algorithm 3) per query.
	lc := newLoreCache(e)
	for qi, q := range e.queries {
		got, err := codlAnswer(e, lc, q, cfg.Ks, 0x3333)
		if err != nil {
			return nil, err
		}
		answers[MethodCODL][qi] = got
	}

	// Aggregate.
	for _, m := range AllMethods() {
		perK := map[int]Measures{}
		for _, k := range cfg.Ks {
			acc := NewAccumulator(e.g)
			for qi, q := range e.queries {
				nodes := answers[m][qi][k]
				acc.Add(nodes, q.Attr, e.glInfl[q.Node])
			}
			perK[k] = acc.Result()
		}
		res.PerMethod[m] = perK
	}
	return res, nil
}

// Fig4Result reports the average size of the five deepest communities
// containing a query node, per hierarchy-construction method.
type Fig4Result struct {
	Dataset string
	// AvgSize[method][i] = average size of the i-th deepest community, i<5.
	AvgSize map[string][5]float64
}

// RunFiveDeepest regenerates Fig. 4 for one dataset: the skew of the
// hierarchies produced by CODU (non-attributed), CODR (global reclustering)
// and CODL (LORE local reclustering).
func RunFiveDeepest(cfg Config) (*Fig4Result, error) {
	cfg = cfg.withDefaults()
	e, err := newEnv(cfg, false)
	if err != nil {
		return nil, err
	}
	res := &Fig4Result{Dataset: cfg.Dataset, AvgSize: map[string][5]float64{}}

	addChain := func(sums *[5]float64, ch *core.Chain) {
		for i := 0; i < 5; i++ {
			h := i
			if h >= ch.Len() {
				h = ch.Len() - 1
			}
			sums[i] += float64(ch.Size(h))
		}
	}

	var uSums, rSums, lSums [5]float64
	codr := engine.NewCODR(e.g, engine.Params{Theta: cfg.Theta, Beta: cfg.Beta, Linkage: cfg.Linkage})
	codr.CacheHierarchies = true
	lc := newLoreCache(e)
	for _, q := range e.queries {
		addChain(&uSums, core.ChainFromTree(e.tree, q.Node))
		t, err := codr.Hierarchy(q.Attr)
		if err != nil {
			return nil, err
		}
		addChain(&rSums, core.ChainFromTree(t, q.Node))
		rec, err := lc.run(q)
		if err != nil {
			return nil, err
		}
		addChain(&lSums, core.MergedChain(e.g, e.tree, rec, q.Node))
	}
	n := float64(len(e.queries))
	var u, r, l [5]float64
	for i := 0; i < 5; i++ {
		u[i], r[i], l[i] = uSums[i]/n, rSums[i]/n, lSums[i]/n
	}
	res.AvgSize[MethodCODU] = u
	res.AvgSize[MethodCODR] = r
	res.AvgSize[MethodCODL] = l
	return res, nil
}

// HierarchyStats reports Table I's measured |H̄_ℓ(q)| plus basic shape.
type HierarchyStats struct {
	Dataset  string
	N, M, A  int
	AvgHLen  float64 // measured |H̄_ℓ(q)| over the query workload
	SumDepth int64   // Σ_v dep(v), the HIMOR balance measure
	Paper    dataset.PaperScale
}

// RunNetworkStats regenerates Table I for one dataset.
func RunNetworkStats(cfg Config) (*HierarchyStats, error) {
	cfg = cfg.withDefaults()
	e, err := newEnv(cfg, false)
	if err != nil {
		return nil, err
	}
	spec, err := dataset.SpecOf(cfg.Dataset)
	if err != nil {
		return nil, err
	}
	lc := newLoreCache(e)
	var sum float64
	for _, q := range e.queries {
		rec, err := lc.run(q)
		if err != nil {
			return nil, err
		}
		merged := core.MergedChain(e.g, e.tree, rec, q.Node)
		sum += float64(merged.Len())
	}
	return &HierarchyStats{
		Dataset:  cfg.Dataset,
		N:        e.g.N(),
		M:        e.g.M(),
		A:        e.g.NumAttrs(),
		AvgHLen:  sum / float64(len(e.queries)),
		SumDepth: e.tree.SumLeafDepths(),
		Paper:    spec.Paper,
	}, nil
}
