package eval

import (
	"time"

	"github.com/codsearch/cod/internal/core"
	"github.com/codsearch/cod/internal/engine"
	"github.com/codsearch/cod/internal/influence"
)

// Fig8Row is one point of the Compressed-vs-Independent comparison (§V-C):
// one dataset, one θ, one method.
type Fig8Row struct {
	Dataset   string
	Theta     int
	Method    string // "Compressed" | "Independent"
	Precision float64
	AvgSize   float64
	MinSize   int
	MaxSize   int
	AvgTime   time.Duration
	Served    int
	Total     int
	// TimedOut counts queries where Independent exceeded its budget.
	TimedOut int
}

// CompressedMethod and IndependentMethod label Fig. 8 rows.
const (
	CompressedMethod  = "Compressed"
	IndependentMethod = "Independent"
)

// RunCompressedVsIndependent regenerates Fig. 8 for one dataset: for each θ
// in cfg.Thetas, the top-k precision, size distribution and execution time
// of the compressed evaluation versus the per-community Independent
// baseline, both running over the CODR-style attribute-aware hierarchy. The
// budget caps Independent's total RR sets per query (0 = unlimited) so large
// configurations terminate, mirroring the paper's 36-hour cutoff.
func RunCompressedVsIndependent(cfg Config, k int, budget int) ([]Fig8Row, error) {
	cfg = cfg.withDefaults()
	if k <= 0 {
		k = 5
	}
	e, err := newEnv(cfg, false)
	if err != nil {
		return nil, err
	}
	codr := engine.NewCODR(e.g, engine.Params{K: k, Theta: cfg.Theta, Beta: cfg.Beta, Linkage: cfg.Linkage})
	codr.CacheHierarchies = true

	var rows []Fig8Row
	for _, theta := range cfg.Thetas {
		comp := Fig8Row{Dataset: cfg.Dataset, Theta: theta, Method: CompressedMethod, MinSize: 1 << 30}
		ind := Fig8Row{Dataset: cfg.Dataset, Theta: theta, Method: IndependentMethod, MinSize: 1 << 30}
		precRng := e.rng(uint64(theta) * 7919)
		for qi, q := range e.queries {
			t, err := codr.Hierarchy(q.Attr)
			if err != nil {
				return nil, err
			}
			ch := core.ChainFromTree(t, q.Node)

			// Compressed: θ·n shared RR graphs, one pass.
			start := time.Now()
			s := influence.NewSampler(e.g, e.model, e.rng(uint64(qi)<<8^uint64(theta)))
			rrs := s.Batch(theta * e.g.N())
			lvl := core.CompressedEvaluate(ch, rrs, k).Level
			comp.AvgTime += time.Since(start)
			comp.Total++
			if lvl >= 0 {
				nodes := ch.Members(lvl)
				comp.Served++
				comp.AvgSize += float64(len(nodes))
				comp.MinSize = min(comp.MinSize, len(nodes))
				comp.MaxSize = max(comp.MaxSize, len(nodes))
				rank := core.ExactRankWithin(e.g, e.model, nodes, q.Node, cfg.PrecisionSets, precRng)
				if rank < k {
					comp.Precision++
				}
			}

			// Independent: θ·|C| RR sets per community, from scratch each.
			start = time.Now()
			res, done := core.IndependentEvaluate(e.g, e.model, ch, k, theta,
				e.rng(uint64(qi)<<8^uint64(theta)^0x5555), budget)
			ind.AvgTime += time.Since(start)
			ind.Total++
			if !done {
				ind.TimedOut++
			}
			if res.Level >= 0 {
				nodes := ch.Members(res.Level)
				ind.Served++
				ind.AvgSize += float64(len(nodes))
				ind.MinSize = min(ind.MinSize, len(nodes))
				ind.MaxSize = max(ind.MaxSize, len(nodes))
				rank := core.ExactRankWithin(e.g, e.model, nodes, q.Node, cfg.PrecisionSets, precRng)
				if rank < k {
					ind.Precision++
				}
			}
		}
		finalizeFig8Row(&comp)
		finalizeFig8Row(&ind)
		rows = append(rows, comp, ind)
	}
	return rows, nil
}

func finalizeFig8Row(r *Fig8Row) {
	if r.Served > 0 {
		r.Precision /= float64(r.Served)
		r.AvgSize /= float64(r.Served)
	}
	if r.MinSize == 1<<30 {
		r.MinSize = 0
	}
	if r.Total > 0 {
		r.AvgTime /= time.Duration(r.Total)
	}
}
