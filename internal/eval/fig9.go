package eval

import (
	"math/rand/v2"
	"time"

	"github.com/codsearch/cod/internal/core"
	"github.com/codsearch/cod/internal/dataset"
	"github.com/codsearch/cod/internal/engine"
)

// Fig9Row reports the average query latency of one method on one dataset
// (§V-D). Offline costs (clustering, HIMOR construction) are excluded, as
// in the paper; they are reported separately in Table II.
type Fig9Row struct {
	Dataset string
	Method  string // "CODL" | "CODL-" | "CODR"
	AvgTime time.Duration
	Queries int
	// TimedOut is set when the method hit the per-method time limit before
	// finishing the workload (the paper's "cannot process within the time
	// limit" on LiveJournal).
	TimedOut bool
}

// MethodCODLMinus labels the CODL⁻ rows of Fig. 9.
const MethodCODLMinus = "CODL-"

// RunRuntime regenerates Fig. 9 for one dataset: average per-query wall time
// of fully optimized CODL versus CODL⁻ (LORE without the HIMOR index) and
// CODR (global reclustering per query, no hierarchy cache). limit, when
// positive, bounds the total time per method.
func RunRuntime(cfg Config, k int, limit time.Duration) ([]Fig9Row, error) {
	cfg = cfg.withDefaults()
	if k <= 0 {
		k = 5
	}
	e, err := newEnv(cfg, true)
	if err != nil {
		return nil, err
	}
	params := engine.Params{K: k, Theta: cfg.Theta, Beta: cfg.Beta, Linkage: cfg.Linkage, Seed: cfg.Seed}
	codl := engine.NewCODLWithTree(e.g, e.tree, e.index, params)
	codr := engine.NewCODR(e.g, params)
	codr.CacheHierarchies = false // CODR pays the reclustering on every query

	type queryFn func(q dataset.Query, rng *rand.Rand) error
	run := func(method string, fn queryFn) Fig9Row {
		row := Fig9Row{Dataset: cfg.Dataset, Method: method}
		start := time.Now()
		for qi, q := range e.queries {
			if limit > 0 && time.Since(start) > limit {
				row.TimedOut = true
				break
			}
			if err := fn(q, e.rng(uint64(qi)*31+uint64(len(method)))); err == nil {
				row.Queries++
			}
		}
		if row.Queries > 0 {
			row.AvgTime = time.Since(start) / time.Duration(row.Queries)
		}
		return row
	}

	rows := []Fig9Row{
		run(MethodCODL, func(q dataset.Query, rng *rand.Rand) error {
			_, err := codl.Query(q.Node, q.Attr, rng)
			return err
		}),
		run(MethodCODLMinus, func(q dataset.Query, rng *rand.Rand) error {
			_, err := codl.QueryNoIndex(q.Node, q.Attr, rng)
			return err
		}),
		run(MethodCODR, func(q dataset.Query, rng *rand.Rand) error {
			_, err := codr.Query(q.Node, q.Attr, rng)
			return err
		}),
	}
	return rows, nil
}

// TableIIRow reports the HIMOR construction overhead for one dataset.
type TableIIRow struct {
	Dataset   string
	BuildTime time.Duration
	IndexMB   float64
	InputMB   float64
	SumDepth  int64
}

// RunIndexOverhead regenerates Table II for one dataset: HIMOR build time,
// index memory, and the input size (graph + hierarchy) for comparison.
func RunIndexOverhead(cfg Config) (*TableIIRow, error) {
	cfg = cfg.withDefaults()
	e, err := newEnv(cfg, false)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	idx := core.BuildHimor(e.g, e.tree, e.model, cfg.Theta, e.rng(0x7777))
	build := time.Since(start)

	// Input size: CSR adjacency (2m int32 + n+1 offsets), attributes, plus
	// the dendrogram parent array (2n-1 int32).
	inputBytes := int64(4*(2*e.g.M()+e.g.N()+1)) + int64(4*e.tree.NumVertices())
	for v := 0; v < e.g.N(); v++ {
		inputBytes += int64(4 * len(e.g.Attrs(int32(v))))
	}
	return &TableIIRow{
		Dataset:   cfg.Dataset,
		BuildTime: build,
		IndexMB:   float64(idx.ApproxBytes()) / (1 << 20),
		InputMB:   float64(inputBytes) / (1 << 20),
		SumDepth:  e.tree.SumLeafDepths(),
	}, nil
}
