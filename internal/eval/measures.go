// Package eval implements the paper's experimental harness: the evaluation
// measures of §V-A (community size, topology density ρ, attribute density
// φ, query influence I(q), top-k precision) and one runner per table and
// figure of the evaluation section. The runners are shared between the
// codbench CLI and the repository-level benchmarks.
package eval

import (
	"math/rand/v2"

	"github.com/codsearch/cod/internal/graph"
	"github.com/codsearch/cod/internal/influence"
)

// Measures aggregates the per-query effectiveness measures over a query set,
// following the paper's protocol: queries for which a method finds no
// characteristic community contribute 0 to every measure; I(q) is averaged
// only over served queries.
type Measures struct {
	// AvgSize is the mean |C*| over all queries (0 for unserved).
	AvgSize float64
	// AvgTopoDensity is the mean ρ(C*) over all queries.
	AvgTopoDensity float64
	// AvgAttrDensity is the mean φ(C*) over all queries.
	AvgAttrDensity float64
	// AvgQueryInfluence is the mean I(q) over the *served* queries.
	AvgQueryInfluence float64
	// Served counts queries with a characteristic community.
	Served int
	// Total counts all queries.
	Total int
}

// Accumulator builds Measures incrementally.
type Accumulator struct {
	g       *graph.Graph
	m       Measures
	sumSize float64
	sumRho  float64
	sumPhi  float64
	sumInfl float64
}

// NewAccumulator returns an accumulator over graph g.
func NewAccumulator(g *graph.Graph) *Accumulator { return &Accumulator{g: g} }

// Add records one query outcome. nodes is nil/empty when the method found no
// characteristic community; qInfluence is I(q) on the whole graph.
func (a *Accumulator) Add(nodes []graph.NodeID, attr graph.AttrID, qInfluence float64) {
	a.m.Total++
	if len(nodes) == 0 {
		return
	}
	a.m.Served++
	a.sumSize += float64(len(nodes))
	a.sumRho += graph.TopologyDensity(a.g, nodes)
	a.sumPhi += graph.AttributeDensity(a.g, nodes, attr)
	a.sumInfl += qInfluence
}

// Result finalizes the averages.
func (a *Accumulator) Result() Measures {
	m := a.m
	if m.Total > 0 {
		m.AvgSize = a.sumSize / float64(m.Total)
		m.AvgTopoDensity = a.sumRho / float64(m.Total)
		m.AvgAttrDensity = a.sumPhi / float64(m.Total)
	}
	if m.Served > 0 {
		m.AvgQueryInfluence = a.sumInfl / float64(m.Served)
	}
	return m
}

// GlobalInfluences estimates σ_g(v) for every node with a shared pool of
// theta·n RR sets (Theorem 1), returning per-node influence values.
func GlobalInfluences(g *graph.Graph, theta int, rng *rand.Rand) []float64 {
	model := influence.NewWeightedCascade(g)
	s := influence.NewSampler(g, model, rng)
	counts := make([]int, g.N())
	total := theta * g.N()
	for i := 0; i < total; i++ {
		for _, v := range s.RRSet() {
			counts[v]++
		}
	}
	out := make([]float64, g.N())
	for v, c := range counts {
		out[v] = influence.InfluenceFromCount(c, total, g.N())
	}
	return out
}
