package eval

import (
	"math"
	"testing"

	"github.com/codsearch/cod/internal/graph"
)

func TestAccumulator(t *testing.T) {
	b := graph.NewBuilder(4, 2)
	_ = b.AddEdge(0, 1)
	_ = b.AddEdge(1, 2)
	_ = b.AddEdge(0, 2)
	_ = b.AddEdge(2, 3)
	_ = b.SetAttrs(0, 1)
	_ = b.SetAttrs(1, 1)
	_ = b.SetAttrs(2, 0)
	g := b.Build()

	acc := NewAccumulator(g)
	acc.Add([]graph.NodeID{0, 1, 2}, 1, 2.5) // triangle, φ=2/3
	acc.Add(nil, 1, 99)                      // unserved: contributes zeros
	m := acc.Result()

	if m.Total != 2 || m.Served != 1 {
		t.Fatalf("counts: %+v", m)
	}
	if math.Abs(m.AvgSize-1.5) > 1e-12 { // (3+0)/2
		t.Errorf("AvgSize = %f", m.AvgSize)
	}
	if math.Abs(m.AvgTopoDensity-0.5) > 1e-12 { // (1.0+0)/2
		t.Errorf("AvgTopoDensity = %f", m.AvgTopoDensity)
	}
	if math.Abs(m.AvgAttrDensity-(2.0/3)/2) > 1e-12 {
		t.Errorf("AvgAttrDensity = %f", m.AvgAttrDensity)
	}
	// I(q) averaged over served only
	if math.Abs(m.AvgQueryInfluence-2.5) > 1e-12 {
		t.Errorf("AvgQueryInfluence = %f", m.AvgQueryInfluence)
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	g, err := graph.FromEdges(2, [][2]graph.NodeID{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	m := NewAccumulator(g).Result()
	if m.Total != 0 || m.AvgSize != 0 || m.AvgQueryInfluence != 0 {
		t.Errorf("empty accumulator: %+v", m)
	}
}
