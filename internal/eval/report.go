package eval

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"
)

// This file renders experiment results as the aligned text tables printed by
// cmd/codbench and recorded in EXPERIMENTS.md.

// WriteEffectiveness renders a Fig. 7 block (one dataset, all methods × ks).
func WriteEffectiveness(w io.Writer, r *EffectivenessResult) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Fig.7 %s\tmeasure", r.Dataset)
	for _, k := range r.Ks {
		fmt.Fprintf(tw, "\tk=%d", k)
	}
	fmt.Fprintln(tw)
	for _, m := range AllMethods() {
		perK := r.PerMethod[m]
		for _, row := range []struct {
			label string
			get   func(Measures) float64
		}{
			{"|C*|", func(x Measures) float64 { return x.AvgSize }},
			{"rho", func(x Measures) float64 { return x.AvgTopoDensity }},
			{"phi", func(x Measures) float64 { return x.AvgAttrDensity }},
			{"I(q)", func(x Measures) float64 { return x.AvgQueryInfluence }},
		} {
			fmt.Fprintf(tw, "%s\t%s", m, row.label)
			for _, k := range r.Ks {
				fmt.Fprintf(tw, "\t%.3f", row.get(perK[k]))
			}
			fmt.Fprintln(tw)
		}
	}
	tw.Flush()
}

// WriteFig4 renders the five-deepest-community table.
func WriteFig4(w io.Writer, r *Fig4Result) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Fig.4 %s\t1st\t2nd\t3rd\t4th\t5th\n", r.Dataset)
	for _, m := range []string{MethodCODU, MethodCODR, MethodCODL} {
		s := r.AvgSize[m]
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\n", m, s[0], s[1], s[2], s[3], s[4])
	}
	tw.Flush()
}

// WriteFig8 renders the Compressed-vs-Independent rows.
func WriteFig8(w io.Writer, rows []Fig8Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Fig.8\ttheta\tmethod\tprecision\tavg|C*|\tmin\tmax\tavg time\tserved\ttimeouts")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%s\t%.3f\t%.1f\t%d\t%d\t%v\t%d/%d\t%d\n",
			r.Dataset, r.Theta, r.Method, r.Precision, r.AvgSize, r.MinSize, r.MaxSize,
			r.AvgTime.Round(timeUnit(r.AvgTime)), r.Served, r.Total, r.TimedOut)
	}
	tw.Flush()
}

// WriteFig9 renders the runtime rows.
func WriteFig9(w io.Writer, rows []Fig9Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Fig.9\tmethod\tavg query time\tqueries\ttimed out")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%v\t%d\t%t\n",
			r.Dataset, r.Method, r.AvgTime.Round(timeUnit(r.AvgTime)), r.Queries, r.TimedOut)
	}
	tw.Flush()
}

// WriteTableII renders the index-overhead row.
func WriteTableII(w io.Writer, rows []*TableIIRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Table II\tbuild time\tindex MB\tinput MB\tsum-depth")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%v\t%.2f\t%.2f\t%d\n",
			r.Dataset, r.BuildTime.Round(timeUnit(r.BuildTime)), r.IndexMB, r.InputMB, r.SumDepth)
	}
	tw.Flush()
}

// WriteTableI renders the network-statistics rows with the paper's values.
func WriteTableI(w io.Writer, rows []*HierarchyStats) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Table I\t|V|\t|E|\t|A|\t|H|avg\tpaper |V|\tpaper |E|\tpaper |H|avg")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.1f\t%d\t%d\t%.1f\n",
			r.Dataset, r.N, r.M, r.A, r.AvgHLen, r.Paper.V, r.Paper.E, r.Paper.AvgH)
	}
	tw.Flush()
}

// WriteCaseStudies renders §V-E comparisons.
func WriteCaseStudies(w io.Writer, cases []CaseStudy) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for _, cs := range cases {
		fmt.Fprintf(tw, "case q=%d attr=%d\tsize\trank(q)\tconductance\n", cs.Query, cs.Attr)
		for _, r := range cs.Results {
			if !r.Found {
				fmt.Fprintf(tw, "%s\t-\t-\t-\n", r.Method)
				continue
			}
			fmt.Fprintf(tw, "%s\t%d\t%d\t%.3f\n", r.Method, r.Size, r.QueryRank, r.Conductance)
		}
		fmt.Fprintln(tw, strings.Repeat("-", 8))
	}
	tw.Flush()
}

// timeUnit picks a rounding granularity that keeps durations readable.
func timeUnit(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return 10 * time.Millisecond
	case d >= time.Millisecond:
		return 10 * time.Microsecond
	default:
		return time.Microsecond
	}
}
