// Package faultfs provides fault-injecting io.Reader and io.Writer wrappers
// for exercising persistence and serving failure paths in tests: hard I/O
// errors after a byte budget, short writes, silent truncation, single-bit
// corruption, and per-call latency. The wrappers are deterministic — faults
// trigger at exact byte offsets, never randomly — so failure tests replay
// identically.
package faultfs

import (
	"errors"
	"io"
	"sync/atomic"
	"time"
)

// ErrInjected is the default fault returned by ErrWriter and ErrReader when
// no explicit error is configured.
var ErrInjected = errors.New("faultfs: injected fault")

// ErrWriter passes writes through to W until FailAfter total bytes have been
// written, then fails every subsequent write with Err (ErrInjected when nil).
// A write straddling the budget is partially applied, modeling a disk that
// fills or dies mid-write.
type ErrWriter struct {
	W         io.Writer
	FailAfter int64
	Err       error

	written int64
}

// Write implements io.Writer.
func (w *ErrWriter) Write(p []byte) (int, error) {
	fail := w.Err
	if fail == nil {
		fail = ErrInjected
	}
	remain := w.FailAfter - w.written
	if remain <= 0 {
		return 0, fail
	}
	if int64(len(p)) <= remain {
		n, err := w.W.Write(p)
		w.written += int64(n)
		return n, err
	}
	n, err := w.W.Write(p[:remain])
	w.written += int64(n)
	if err == nil {
		err = fail
	}
	return n, err
}

// ShortWriter writes at most Max bytes of each call to W and reports
// io.ErrShortWrite for the remainder, modeling a transport that cannot
// accept a full buffer.
type ShortWriter struct {
	W   io.Writer
	Max int
}

// Write implements io.Writer.
func (w *ShortWriter) Write(p []byte) (int, error) {
	if len(p) <= w.Max {
		return w.W.Write(p)
	}
	n, err := w.W.Write(p[:w.Max])
	if err == nil {
		err = io.ErrShortWrite
	}
	return n, err
}

// LatencyWriter sleeps Delay before every write, modeling a slow device;
// combine with context deadlines to test bounded-latency contracts.
type LatencyWriter struct {
	W     io.Writer
	Delay time.Duration
}

// Write implements io.Writer.
func (w *LatencyWriter) Write(p []byte) (int, error) {
	time.Sleep(w.Delay)
	return w.W.Write(p)
}

// ErrReader passes reads through to R until FailAfter total bytes have been
// read, then fails with Err (ErrInjected when nil). A read straddling the
// budget returns the bytes up to it together with the error.
type ErrReader struct {
	R         io.Reader
	FailAfter int64
	Err       error

	read int64
}

// Read implements io.Reader.
func (r *ErrReader) Read(p []byte) (int, error) {
	fail := r.Err
	if fail == nil {
		fail = ErrInjected
	}
	remain := r.FailAfter - r.read
	if remain <= 0 {
		return 0, fail
	}
	if int64(len(p)) > remain {
		p = p[:remain]
	}
	n, err := r.R.Read(p)
	r.read += int64(n)
	if err == nil && int64(n) == remain {
		// The next call fails; this one delivers the last healthy bytes.
		return n, nil
	}
	return n, err
}

// TruncateReader yields at most N bytes of R and then reports io.EOF,
// modeling a file truncated by a crash: the reader ends cleanly, and the
// consumer must detect the missing tail itself.
type TruncateReader struct {
	R io.Reader
	N int64

	read int64
}

// Read implements io.Reader.
func (r *TruncateReader) Read(p []byte) (int, error) {
	remain := r.N - r.read
	if remain <= 0 {
		return 0, io.EOF
	}
	if int64(len(p)) > remain {
		p = p[:remain]
	}
	n, err := r.R.Read(p)
	r.read += int64(n)
	return n, err
}

// FlipReader passes R through with a single bit inverted: bit Mask of the
// byte at stream offset Offset, modeling silent media corruption. Mask 0
// flips the low bit.
type FlipReader struct {
	R      io.Reader
	Offset int64
	Mask   byte

	read int64
}

// Read implements io.Reader.
func (r *FlipReader) Read(p []byte) (int, error) {
	n, err := r.R.Read(p)
	if i := r.Offset - r.read; i >= 0 && i < int64(n) {
		mask := r.Mask
		if mask == 0 {
			mask = 1
		}
		p[i] ^= mask
	}
	r.read += int64(n)
	return n, err
}

// LatencyReader sleeps Delay before every read, modeling a slow device.
type LatencyReader struct {
	R     io.Reader
	Delay time.Duration
}

// Read implements io.Reader.
func (r *LatencyReader) Read(p []byte) (int, error) {
	time.Sleep(r.Delay)
	return r.R.Read(p)
}

// TornWriter passes the first Keep bytes through to W and silently discards
// everything after, while reporting complete success to the caller — the
// most insidious write fault: a torn write (power loss between a page write
// and its tail, a lying RAID cache) that the writing process cannot observe.
// Only read-back verification catches it, which is exactly what the
// blobstore publish path does.
type TornWriter struct {
	W    io.Writer
	Keep int64

	written int64
}

// Write implements io.Writer.
func (w *TornWriter) Write(p []byte) (int, error) {
	remain := w.Keep - w.written
	if remain <= 0 {
		w.written += int64(len(p))
		return len(p), nil
	}
	keep := int64(len(p))
	if keep > remain {
		keep = remain
	}
	n, err := w.W.Write(p[:keep])
	w.written += int64(n)
	if err != nil || int64(n) < keep {
		// The underlying device failed before the tear point; surface that
		// honestly rather than masking a real error with fake success.
		if err == nil {
			err = io.ErrShortWrite
		}
		return n, err
	}
	w.written += int64(len(p)) - keep
	return len(p), nil
}

// BitErrReader passes R through with one bit flipped at each stream offset
// in Offsets (bit Mask; 0 flips the low bit), generalizing FlipReader to
// multi-bit rot across a stream. Offsets must be ascending.
type BitErrReader struct {
	R       io.Reader
	Offsets []int64
	Mask    byte

	read int64
}

// Read implements io.Reader.
func (r *BitErrReader) Read(p []byte) (int, error) {
	n, err := r.R.Read(p)
	for _, off := range r.Offsets {
		if i := off - r.read; i >= 0 && i < int64(n) {
			mask := r.Mask
			if mask == 0 {
				mask = 1
			}
			p[i] ^= mask
		}
	}
	r.read += int64(n)
	return n, err
}

// Seq schedules faults deterministically across a numbered sequence of
// operations: the n-th Next call (counting from 1) fails iff ShouldFail(n)
// reports an error. It is safe for concurrent use — concurrent callers draw
// distinct sequence numbers — which makes it the clock of chaos tests: wire
// ShouldFail to a pure function of n (e.g. "every 5th operation") and the
// fault schedule replays identically while never failing the same logical
// operation twice in a row (a retry draws a fresh n).
type Seq struct {
	n atomic.Int64
	// ShouldFail maps an operation's sequence number to the fault it
	// suffers (nil = healthy). It must be a pure function for the schedule
	// to be deterministic.
	ShouldFail func(n int64) error
}

// NewSeq returns a Seq driven by shouldFail.
func NewSeq(shouldFail func(n int64) error) *Seq {
	return &Seq{ShouldFail: shouldFail}
}

// Next draws the next sequence number and returns its scheduled fault, if
// any.
func (s *Seq) Next() error {
	n := s.n.Add(1)
	if s.ShouldFail == nil {
		return nil
	}
	return s.ShouldFail(n)
}

// Count returns how many operations have drawn a sequence number so far.
func (s *Seq) Count() int64 { return s.n.Load() }
