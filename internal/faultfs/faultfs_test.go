package faultfs

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

func TestErrWriterFailsAfterBudget(t *testing.T) {
	var buf bytes.Buffer
	w := &ErrWriter{W: &buf, FailAfter: 5}
	n, err := w.Write([]byte("abc"))
	if n != 3 || err != nil {
		t.Fatalf("first write: n=%d err=%v", n, err)
	}
	n, err = w.Write([]byte("defg"))
	if n != 2 || !errors.Is(err, ErrInjected) {
		t.Fatalf("straddling write: n=%d err=%v", n, err)
	}
	if buf.String() != "abcde" {
		t.Errorf("written %q, want abcde", buf.String())
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Errorf("post-budget write err = %v", err)
	}
}

func TestErrWriterCustomError(t *testing.T) {
	sentinel := errors.New("disk on fire")
	w := &ErrWriter{W: io.Discard, FailAfter: 0, Err: sentinel}
	if _, err := w.Write([]byte("a")); !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want sentinel", err)
	}
}

func TestShortWriter(t *testing.T) {
	var buf bytes.Buffer
	w := &ShortWriter{W: &buf, Max: 4}
	n, err := w.Write([]byte("ab"))
	if n != 2 || err != nil {
		t.Fatalf("small write: n=%d err=%v", n, err)
	}
	n, err = w.Write([]byte("cdefgh"))
	if n != 4 || !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("large write: n=%d err=%v", n, err)
	}
	if buf.String() != "abcdef" {
		t.Errorf("written %q", buf.String())
	}
}

func TestErrReaderFailsAfterBudget(t *testing.T) {
	r := &ErrReader{R: strings.NewReader("abcdefgh"), FailAfter: 5}
	got, err := io.ReadAll(r)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	if string(got) != "abcde" {
		t.Errorf("read %q, want abcde", got)
	}
}

func TestTruncateReader(t *testing.T) {
	r := &TruncateReader{R: strings.NewReader("abcdefgh"), N: 3}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("truncation must end in clean EOF, got %v", err)
	}
	if string(got) != "abc" {
		t.Errorf("read %q, want abc", got)
	}
}

func TestFlipReader(t *testing.T) {
	src := []byte("abcdefgh")
	r := &FlipReader{R: bytes.NewReader(src), Offset: 6, Mask: 0x10}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), src...)
	want[6] ^= 0x10
	if !bytes.Equal(got, want) {
		t.Errorf("read %q, want %q", got, want)
	}
	// Exactly one byte differs.
	diff := 0
	for i := range got {
		if got[i] != src[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("%d bytes differ, want 1", diff)
	}
}

func TestFlipReaderAcrossSmallReads(t *testing.T) {
	src := []byte("abcdefgh")
	r := &FlipReader{R: iotest{bytes.NewReader(src)}, Offset: 5}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if got[5] != src[5]^1 {
		t.Errorf("bit not flipped across chunked reads: %q", got)
	}
}

// iotest yields at most 2 bytes per read to exercise offset bookkeeping.
type iotest struct{ r io.Reader }

func (t iotest) Read(p []byte) (int, error) {
	if len(p) > 2 {
		p = p[:2]
	}
	return t.r.Read(p)
}

func TestLatencyWrappers(t *testing.T) {
	start := time.Now()
	w := &LatencyWriter{W: io.Discard, Delay: time.Millisecond}
	if _, err := w.Write([]byte("a")); err != nil {
		t.Fatal(err)
	}
	r := &LatencyReader{R: strings.NewReader("a"), Delay: time.Millisecond}
	if _, err := io.ReadAll(r); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Errorf("latency wrappers too fast: %v", elapsed)
	}
}
