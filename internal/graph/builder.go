package graph

import (
	"fmt"
	"math"
	"slices"
)

// Builder accumulates edges and attributes and produces an immutable Graph.
// Duplicate edges are merged (weights summed for weighted builders); self
// loops are rejected. A Builder must be created with NewBuilder.
type Builder struct {
	n        int
	us, vs   []NodeID
	ws       []float64
	weighted bool
	attrs    [][]AttrID
	numAttr  int
}

// NewBuilder returns a Builder for a graph with n nodes and an attribute
// universe of numAttr attributes (0 for an unattributed graph).
func NewBuilder(n, numAttr int) *Builder {
	return &Builder{n: n, attrs: make([][]AttrID, n), numAttr: numAttr}
}

// AddEdge records the undirected edge (u,v) with weight 1.
func (b *Builder) AddEdge(u, v NodeID) error { return b.AddWeightedEdge(u, v, 1) }

// AddWeightedEdge records the undirected edge (u,v) with weight w. Adding any
// edge with weight != 1 makes the built graph weighted.
func (b *Builder) AddWeightedEdge(u, v NodeID, w float64) error {
	if u == v {
		return fmt.Errorf("graph: self loop on node %d", u)
	}
	if u < 0 || int(u) >= b.n || v < 0 || int(v) >= b.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n)
	}
	if !(w > 0) || math.IsInf(w, 1) {
		// !(w > 0) also rejects NaN, which w <= 0 would let through.
		return fmt.Errorf("graph: edge (%d,%d) has non-positive or non-finite weight %g", u, v, w)
	}
	if u > v {
		u, v = v, u
	}
	b.us = append(b.us, u)
	b.vs = append(b.vs, v)
	b.ws = append(b.ws, w)
	if w != 1 {
		b.weighted = true
	}
	return nil
}

// SetAttrs assigns the attribute set of node v, replacing any previous one.
func (b *Builder) SetAttrs(v NodeID, attrs ...AttrID) error {
	if v < 0 || int(v) >= b.n {
		return fmt.Errorf("graph: node %d out of range [0,%d)", v, b.n)
	}
	for _, a := range attrs {
		if a < 0 || int(a) >= b.numAttr {
			return fmt.Errorf("graph: attribute %d out of range [0,%d)", a, b.numAttr)
		}
	}
	cp := slices.Clone(attrs)
	slices.Sort(cp)
	b.attrs[v] = slices.Compact(cp)
	return nil
}

// AddAttr adds one attribute to node v, keeping previous ones.
func (b *Builder) AddAttr(v NodeID, a AttrID) error {
	if v < 0 || int(v) >= b.n {
		return fmt.Errorf("graph: node %d out of range [0,%d)", v, b.n)
	}
	if a < 0 || int(a) >= b.numAttr {
		return fmt.Errorf("graph: attribute %d out of range [0,%d)", a, b.numAttr)
	}
	if !slices.Contains(b.attrs[v], a) {
		b.attrs[v] = append(b.attrs[v], a)
		slices.Sort(b.attrs[v])
	}
	return nil
}

// Build assembles the immutable Graph. Parallel edges are merged: the merged
// weight is the sum of the duplicates' weights.
func (b *Builder) Build() *Graph {
	type edge struct {
		u, v NodeID
		w    float64
	}
	edges := make([]edge, len(b.us))
	for i := range b.us {
		edges[i] = edge{b.us[i], b.vs[i], b.ws[i]}
	}
	slices.SortFunc(edges, func(a, c edge) int {
		if a.u != c.u {
			return int(a.u - c.u)
		}
		return int(a.v - c.v)
	})
	// Merge duplicates.
	out := edges[:0]
	for _, e := range edges {
		if len(out) > 0 && out[len(out)-1].u == e.u && out[len(out)-1].v == e.v {
			out[len(out)-1].w += e.w
			b.weighted = b.weighted || out[len(out)-1].w != 1
			continue
		}
		out = append(out, e)
	}
	edges = out

	g := &Graph{numAttr: b.numAttr, m: len(edges)}
	deg := make([]int32, b.n)
	for _, e := range edges {
		deg[e.u]++
		deg[e.v]++
	}
	g.off = make([]int32, b.n+1)
	for v := 0; v < b.n; v++ {
		g.off[v+1] = g.off[v] + deg[v]
	}
	g.adj = make([]NodeID, 2*len(edges))
	if b.weighted {
		g.wts = make([]float64, 2*len(edges))
	}
	cursor := make([]int32, b.n)
	copy(cursor, g.off[:b.n])
	place := func(u, v NodeID, w float64) {
		i := cursor[u]
		cursor[u]++
		g.adj[i] = v
		if g.wts != nil {
			g.wts[i] = w
		}
	}
	// Edges are sorted by (u,v); placing (u,v) then (v,u) in this order keeps
	// every adjacency list sorted ascending because for a fixed row r the
	// entries arrive in increasing order of the opposite endpoint.
	for _, e := range edges {
		place(e.u, e.v, e.w)
	}
	// Second pass for the reverse direction, ordered by (v,u).
	rev := slices.Clone(edges)
	slices.SortFunc(rev, func(a, c edge) int {
		if a.v != c.v {
			return int(a.v - c.v)
		}
		return int(a.u - c.u)
	})
	for _, e := range rev {
		place(e.v, e.u, e.w)
	}
	// Interleaving the two passes can break per-row ordering (forward entries
	// v>u were placed before reverse entries u'<v could arrive), so fix up by
	// sorting each row, keeping weights aligned.
	for v := 0; v < b.n; v++ {
		lo, hi := g.off[v], g.off[v+1]
		row := g.adj[lo:hi]
		if slices.IsSorted(row) {
			continue
		}
		if g.wts == nil {
			slices.Sort(row)
			continue
		}
		wrow := g.wts[lo:hi]
		idx := make([]int, len(row))
		for i := range idx {
			idx[i] = i
		}
		slices.SortFunc(idx, func(a, c int) int { return int(row[a] - row[c]) })
		nr := make([]NodeID, len(row))
		nw := make([]float64, len(row))
		for i, j := range idx {
			nr[i], nw[i] = row[j], wrow[j]
		}
		copy(row, nr)
		copy(wrow, nw)
	}

	// Attributes.
	g.attrOff = make([]int32, b.n+1)
	total := 0
	for v := 0; v < b.n; v++ {
		total += len(b.attrs[v])
	}
	g.attrs = make([]AttrID, 0, total)
	for v := 0; v < b.n; v++ {
		g.attrOff[v+1] = g.attrOff[v] + int32(len(b.attrs[v]))
		g.attrs = append(g.attrs, b.attrs[v]...)
	}
	return g
}

// FromEdges is a convenience constructor for tests and examples: it builds an
// unattributed, unweighted graph with n nodes from an edge list.
func FromEdges(n int, edges [][2]NodeID) (*Graph, error) {
	b := NewBuilder(n, 0)
	for _, e := range edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}
