package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Loaders for common external formats, so the library runs on the paper's
// real datasets when they are available: SNAP-style edge lists (one
// "u<TAB>v" pair per line, '#' comments) and simple per-line attribute
// files. Node ids in the wild are arbitrary integers; they are remapped to
// a dense 0..n-1 space and the mapping is returned.

// EdgeListResult is the outcome of ReadEdgeList.
type EdgeListResult struct {
	// G is the loaded graph (attributes empty unless added later).
	G *Graph
	// OrigID maps dense node ids back to the file's original ids.
	OrigID []int64
	// DenseID maps original ids to dense ids.
	DenseID map[int64]NodeID
}

// ReadEdgeList parses a SNAP-style undirected edge list: every non-comment
// line holds two whitespace-separated integer node ids. Self loops are
// skipped, duplicates merged. numAttrs sizes the attribute universe of the
// resulting graph (attributes can be attached afterwards via ReadAttrFile
// or programmatically).
func ReadEdgeList(r io.Reader, numAttrs int) (*EdgeListResult, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<26)
	res := &EdgeListResult{DenseID: make(map[int64]NodeID)}
	type rawEdge struct{ u, v int64 }
	var edges []rawEdge
	dense := func(x int64) NodeID {
		id, ok := res.DenseID[x]
		if !ok {
			id = NodeID(len(res.OrigID))
			res.DenseID[x] = id
			res.OrigID = append(res.OrigID, x)
		}
		return id
	}
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") || strings.HasPrefix(s, "%") {
			continue
		}
		fields := strings.Fields(s)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: edge list line %d: %q", line, s)
		}
		u, err1 := strconv.ParseInt(fields[0], 10, 64)
		v, err2 := strconv.ParseInt(fields[1], 10, 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("graph: edge list line %d: %q", line, s)
		}
		if u == v {
			continue
		}
		edges = append(edges, rawEdge{u, v})
		dense(u)
		dense(v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(res.OrigID) == 0 {
		return nil, fmt.Errorf("graph: empty edge list")
	}
	b := NewBuilder(len(res.OrigID), numAttrs)
	for _, e := range edges {
		if err := b.AddEdge(res.DenseID[e.u], res.DenseID[e.v]); err != nil {
			return nil, err
		}
	}
	res.G = b.Build()
	return res, nil
}

// ReadAttrFile attaches attributes from a file with lines
// "<orig-node-id> <attr> [attr...]" to a graph loaded by ReadEdgeList.
// Unknown node ids are reported as errors; attribute ids must fit the
// graph's universe. It returns a new Graph (graphs are immutable).
func ReadAttrFile(res *EdgeListResult, r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<26)
	attrs := make([][]AttrID, res.G.N())
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") || strings.HasPrefix(s, "%") {
			continue
		}
		fields := strings.Fields(s)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: attr line %d: %q", line, s)
		}
		orig, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: attr line %d: %q", line, s)
		}
		v, ok := res.DenseID[orig]
		if !ok {
			return nil, fmt.Errorf("graph: attr line %d: unknown node %d", line, orig)
		}
		for _, f := range fields[1:] {
			a, err := strconv.Atoi(f)
			// Range-check before the int32 conversion so oversized attribute
			// ids error out instead of wrapping into the universe.
			if err != nil || a < 0 || a >= res.G.NumAttrs() {
				return nil, fmt.Errorf("graph: attr line %d: %q", line, s)
			}
			attrs[v] = append(attrs[v], AttrID(a))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	b := NewBuilder(res.G.N(), res.G.NumAttrs())
	res.G.ForEachEdge(func(u, v NodeID, w float64) { _ = b.AddWeightedEdge(u, v, w) })
	for v, as := range attrs {
		if len(as) == 0 {
			continue
		}
		if err := b.SetAttrs(NodeID(v), as...); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}
