package graph

import (
	"strings"
	"testing"
)

func TestReadEdgeList(t *testing.T) {
	in := `# SNAP-style comment
% pajek-style comment
100	200
200	300
100	300
300	300
100	200
`
	res, err := ReadEdgeList(strings.NewReader(in), 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.G.N() != 3 {
		t.Fatalf("N = %d, want 3 (dense remap)", res.G.N())
	}
	if res.G.M() != 3 {
		t.Fatalf("M = %d, want 3 (self loop skipped, dup merged)", res.G.M())
	}
	// dense mapping round-trips
	for dense, orig := range res.OrigID {
		if res.DenseID[orig] != NodeID(dense) {
			t.Fatalf("mapping broken at %d", dense)
		}
	}
	u, v := res.DenseID[100], res.DenseID[300]
	if !res.G.HasEdge(u, v) {
		t.Error("edge (100,300) lost")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"",
		"1\n",
		"a b\n",
		"# only comments\n",
	}
	for i, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in), 0); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestReadAttrFile(t *testing.T) {
	res, err := ReadEdgeList(strings.NewReader("10 20\n20 30\n"), 3)
	if err != nil {
		t.Fatal(err)
	}
	g, err := ReadAttrFile(res, strings.NewReader("# attrs\n10 0 2\n30 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasAttr(res.DenseID[10], 0) || !g.HasAttr(res.DenseID[10], 2) {
		t.Error("attrs of node 10 lost")
	}
	if !g.HasAttr(res.DenseID[30], 1) {
		t.Error("attr of node 30 lost")
	}
	if len(g.Attrs(res.DenseID[20])) != 0 {
		t.Error("node 20 should have no attrs")
	}
	// topology preserved
	if g.M() != res.G.M() || g.N() != res.G.N() {
		t.Error("attr attach changed topology")
	}
}

func TestReadAttrFileErrors(t *testing.T) {
	res, err := ReadEdgeList(strings.NewReader("1 2\n"), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range []string{
		"99 0\n",  // unknown node
		"1 7\n",   // attr out of universe
		"1\n",     // missing attr
		"x 0\n",   // bad id
		"1 zzz\n", // bad attr
	} {
		if _, err := ReadAttrFile(res, strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
