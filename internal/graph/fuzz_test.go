package graph

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets for the text parsers. The contract under test: arbitrary
// input never panics — it either parses into a well-formed graph or returns
// an error. Run the smoke pass with `make fuzz`.

// headerTooBig cheaply pre-parses a cod-graph header and reports whether it
// declares sizes large enough to make Read's up-front allocations dominate
// the fuzz run. Such inputs are valid, just too expensive to execute en
// masse; the parser itself still guards against them (32-bit id space).
func headerTooBig(data []byte, cap int64) bool {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		if !strings.HasPrefix(s, "cod-graph ") {
			return false // Read will reject it before allocating
		}
		if !sc.Scan() {
			return false
		}
		var n, m, na int64
		for i, f := range strings.Fields(strings.TrimSpace(sc.Text())) {
			var x int64
			for _, c := range f {
				if c < '0' || c > '9' || x > cap {
					break
				}
				x = x*10 + int64(c-'0')
			}
			switch i {
			case 0:
				n = x
			case 1:
				m = x
			case 2:
				na = x
			}
		}
		return n > cap || m > cap || na > cap
	}
	return false
}

func FuzzRead(f *testing.F) {
	f.Add([]byte("cod-graph 1\n3 2 2 0\ne 0 1\ne 1 2\na 0 1\n"))
	f.Add([]byte("cod-graph 1\n3 2 0 1\ne 0 1 0.5\ne 1 2 2\n"))
	f.Add([]byte("cod-graph 1\n2 1 1 0\n# comment\ne 0 1\na 1 0\n"))
	f.Add([]byte("cod-graph 1\n-1 0 0 0\n"))
	f.Add([]byte("cod-graph 1\n3 1 0 0\ne 0 1 NaN\n"))
	f.Add([]byte("cod-graph 1\n3 1 0 0\ne 0 99999999999\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 || headerTooBig(data, 1<<20) {
			t.Skip()
		}
		g, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Round-trip invariant: re-serializing and re-reading an accepted
		// graph is a fixed point.
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo on accepted graph: %v", err)
		}
		g2, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-reading serialized graph: %v\n%s", err, buf.Bytes())
		}
		var buf2 bytes.Buffer
		if _, err := g2.WriteTo(&buf2); err != nil {
			t.Fatalf("WriteTo on round-tripped graph: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("round-trip is not a fixed point:\n--- first\n%s--- second\n%s", buf.Bytes(), buf2.Bytes())
		}
	})
}

func FuzzReadEdgeList(f *testing.F) {
	f.Add([]byte("# snap comment\n0\t1\n1\t2\n2\t0\n"))
	f.Add([]byte("% konect comment\n10 20\n20 30\n"))
	f.Add([]byte("5 5\n"))
	f.Add([]byte("-3 4\n4 -3\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip()
		}
		res, err := ReadEdgeList(bytes.NewReader(data), 4)
		if err != nil {
			return
		}
		if res.G == nil || res.G.N() != len(res.OrigID) || len(res.DenseID) != len(res.OrigID) {
			t.Fatalf("inconsistent id mapping: N=%d orig=%d dense=%d",
				res.G.N(), len(res.OrigID), len(res.DenseID))
		}
		for dense, orig := range res.OrigID {
			if res.DenseID[orig] != NodeID(dense) {
				t.Fatalf("id mapping not a bijection at dense id %d", dense)
			}
		}
	})
}

func FuzzReadAttrFile(f *testing.F) {
	edges := "0 1\n1 2\n2 3\n3 0\n"
	f.Add([]byte("0 0\n1 1 2\n"))
	f.Add([]byte("# comment\n3 0 0 0\n"))
	f.Add([]byte("7 0\n"))
	f.Add([]byte("0 99999999999\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip()
		}
		res, err := ReadEdgeList(strings.NewReader(edges), 4)
		if err != nil {
			t.Fatalf("fixed edge list rejected: %v", err)
		}
		g, err := ReadAttrFile(res, bytes.NewReader(data))
		if err != nil {
			return
		}
		if g.N() != res.G.N() || g.M() != res.G.M() {
			t.Fatalf("attr attach changed topology: %d/%d -> %d/%d",
				res.G.N(), res.G.M(), g.N(), g.M())
		}
		for v := NodeID(0); int(v) < g.N(); v++ {
			for _, a := range g.Attrs(v) {
				if a < 0 || int(a) >= g.NumAttrs() {
					t.Fatalf("node %d has out-of-universe attribute %d", v, a)
				}
			}
		}
	})
}
